// Benchmark harness reproducing every table and figure of the POIESIS paper
// (EDBT 2015), plus the demo-walkthrough claims (P1-P3), the §2.2 space-
// growth claim (S1) and design ablations (A1-A3). Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark prints (once) the rows/series the corresponding figure
// reports; EXPERIMENTS.md records the paper-vs-measured comparison.
package poiesis_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"poiesis"
	"poiesis/internal/core"
	"poiesis/internal/data"
	"poiesis/internal/etl"
	"poiesis/internal/fcp"
	"poiesis/internal/measures"
	"poiesis/internal/policy"
	"poiesis/internal/sim"
	"poiesis/internal/skyline"
	"poiesis/internal/tpcds"
	"poiesis/internal/tpch"
	"poiesis/internal/viz"
)

// benchSim keeps per-alternative evaluation cheap enough to explore
// thousand-design spaces inside a benchmark iteration.
func benchSim(rows int) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.DefaultRows = rows
	cfg.Runs = 32
	return cfg
}

var printOnce sync.Map

// once prints a figure's series a single time per benchmark, however many
// iterations the harness runs.
func once(key string, f func()) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		f()
	}
}

// -----------------------------------------------------------------------
// F1 — Fig. 1 (table): example quality measures for ETL processes.

func BenchmarkFig1MeasureEstimation(b *testing.B) {
	type workload struct {
		name string
		g    *etl.Graph
		bind sim.Binding
	}
	flows := []workload{
		{"tpcds_purchases", tpcds.PurchasesFlow(), nil},
		{"tpch_revenue", tpch.RevenueETL(), nil},
	}
	flows[0].bind = tpcds.Binding(flows[0].g, 2000, 1)
	flows[1].bind = tpch.Binding(flows[1].g, 2000, 1)

	engine := sim.NewEngine(benchSim(2000))
	est := measures.NewEstimator(measures.Config{})

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, w := range flows {
			p, batch, err := engine.Evaluate(w.g, w.bind)
			if err != nil {
				b.Fatal(err)
			}
			r := est.Estimate(w.g, p, batch)
			if i == 0 {
				r := r
				w := w
				once("fig1:"+w.name, func() { printFig1(w.name, r) })
			}
		}
	}
}

func printFig1(name string, r *measures.Report) {
	rows := [][]string{}
	add := func(char measures.Characteristic, m string, unit string) {
		v, _ := r.MeasureValue(char, m)
		rows = append(rows, []string{string(char), m, fmt.Sprintf("%.4g", v), unit})
	}
	// The exact measure set of Fig. 1.
	add(measures.Performance, measures.MCycleTime, "ms")
	add(measures.Performance, measures.MLatencyPerTup, "ms/tuple")
	add(measures.DataQuality, measures.MFreshness, "h (request time - last update)")
	add(measures.DataQuality, measures.MCurrency, "1/(1 - age*update freq)")
	add(measures.Manageability, measures.MLongestPath, "ops (longest path)")
	add(measures.Manageability, measures.MCoupling, "edges/node (coupling)")
	add(measures.Manageability, measures.MMergeCount, "ops (# merge elements)")
	fmt.Printf("\n[Fig.1] quality measures — %s\n%s\n", name,
		viz.Table([]string{"characteristic", "measure", "value", "unit"}, rows))
}

// -----------------------------------------------------------------------
// F2a — Fig. 2a: performance goal => horizontal partition + parallel derive.

func BenchmarkFig2aPerformanceRewrite(b *testing.B) {
	for _, k := range []int{2, 4, 8} {
		k := k
		b.Run(fmt.Sprintf("degree=%d", k), func(b *testing.B) {
			initial := tpcds.PurchasesFlow()
			bind := tpcds.Binding(initial, 4000, 1)
			engine := sim.NewEngine(benchSim(4000))
			p0, b0, err := engine.Evaluate(initial, bind)
			if err != nil {
				b.Fatal(err)
			}
			pat := fcp.NewParallelizeTask(k)

			var cyc1 float64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g := initial.Clone()
				if _, err := pat.Apply(g, fcp.AtNode("derive_values")); err != nil {
					b.Fatal(err)
				}
				p1, b1, err := engine.Evaluate(g, bind)
				if err != nil {
					b.Fatal(err)
				}
				_ = p1
				cyc1 = b1.MeanCycleTime()
			}
			b.StopTimer()
			cyc0 := b0.MeanCycleTime()
			b.ReportMetric(cyc0/cyc1, "speedup")
			_ = p0
			once(fmt.Sprintf("fig2a:%d", k), func() {
				fmt.Printf("[Fig.2a] ParallelizeTask degree=%d: cycle time %.1f ms -> %.1f ms (speedup %.2fx)\n",
					k, cyc0, cyc1, cyc0/cyc1)
			})
		})
	}
}

// -----------------------------------------------------------------------
// F2b — Fig. 2b: reliability goal => savepoints around the costly derive.

func BenchmarkFig2bReliabilityRewrite(b *testing.B) {
	// Failures are injected downstream of the expensive derive (the load):
	// the savepoint after the process-intensive task is exactly what avoids
	// "the repetition of process-intensive tasks in case of a recovery".
	for _, fr := range []float64{0.05, 0.15, 0.30} {
		fr := fr
		b.Run(fmt.Sprintf("failure=%.2f", fr), func(b *testing.B) {
			initial := tpcds.PurchasesFlow()
			initial.Node("ld_p3").Cost.FailureRate = fr
			bind := tpcds.Binding(initial, 4000, 1)
			engine := sim.NewEngine(benchSim(4000))
			_, b0, err := engine.Evaluate(initial, bind)
			if err != nil {
				b.Fatal(err)
			}
			pat := fcp.NewAddCheckpoint(2)

			var rec1, within1 float64
			deadline := 1.5 * b0.MeanCycleTime()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g := initial.Clone()
				pts := fcp.RankedPoints(pat, g)
				if len(pts) == 0 {
					b.Fatal("no checkpoint points")
				}
				if _, err := pat.Apply(g, pts[0]); err != nil {
					b.Fatal(err)
				}
				_, b1, err := engine.Evaluate(g, bind)
				if err != nil {
					b.Fatal(err)
				}
				rec1 = b1.MeanRecoveryTime()
				within1 = b1.WithinDeadlineRate(deadline)
			}
			b.StopTimer()
			rec0 := b0.MeanRecoveryTime()
			within0 := b0.WithinDeadlineRate(deadline)
			b.ReportMetric(rec0/rec1, "recovery_reduction")
			once(fmt.Sprintf("fig2b:%f", fr), func() {
				fmt.Printf("[Fig.2b] AddCheckpoint @ failure=%.2f: mean recovery %.1f -> %.1f ms, within-deadline %.2f -> %.2f\n",
					fr, rec0, rec1, within0, within1)
			})
		})
	}
}

// -----------------------------------------------------------------------
// F3 — Fig. 3: the Planner pipeline (generation -> application -> estimation).

func BenchmarkFig3PlannerPipeline(b *testing.B) {
	flow := tpch.RevenueETL()
	bind := tpch.Binding(flow, 1000, 1)
	for _, mode := range []struct {
		name string
		m    core.StreamingMode
	}{
		{"streaming", core.StreamingOn},
		{"sequential", core.StreamingOff},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			planner := core.NewPlanner(nil, core.Options{
				Policy:    policy.Greedy{TopK: 2},
				Depth:     2,
				Sim:       benchSim(1000),
				Streaming: mode.m,
			})
			b.ReportAllocs()
			b.ResetTimer()
			var res *core.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = planner.Plan(flow, bind)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(len(res.Alternatives)), "alternatives")
			once("fig3:"+mode.name, func() {
				fmt.Printf("[Fig.3] planner pipeline (%s) on %q: %d candidates -> %d generated -> %d evaluated -> %d skyline\n",
					mode.name, flow.Name, res.Stats.CandidatesSeen, res.Stats.Generated,
					res.Stats.Evaluated, len(res.SkylineIdx))
			})
		})
	}
}

// -----------------------------------------------------------------------
// F4 — Fig. 4: multidimensional scatter plot; thousands of alternatives,
// only the Pareto frontier presented.

func BenchmarkFig4SkylineOfAlternatives(b *testing.B) {
	flow := tpcds.SalesETL()
	bind := tpcds.Binding(flow, 300, 1)
	planner := core.NewPlanner(nil, core.Options{
		Policy:          policy.Exhaustive{},
		Depth:           2,
		MaxAlternatives: 4096,
		Sim:             benchSim(300),
	})
	b.ReportAllocs()
	b.ResetTimer()
	var res *core.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = planner.Plan(flow, bind)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(res.Alternatives)), "alternatives")
	b.ReportMetric(float64(len(res.SkylineIdx)), "skyline")
	once("fig4", func() {
		fmt.Printf("\n[Fig.4] %d alternative flows, skyline %d (%.1f%%)\n",
			len(res.Alternatives), len(res.SkylineIdx),
			100*float64(len(res.SkylineIdx))/float64(len(res.Alternatives)))
		fmt.Printf("%-72s %8s %8s %8s\n", "skyline design", "perf", "dq", "rel")
		for _, a := range res.Skyline() {
			v := a.Report.Vector(res.Dims)
			label := a.Label()
			if len(label) > 72 {
				label = label[:69] + "..."
			}
			fmt.Printf("%-72s %8.4f %8.4f %8.4f\n", label, v[0], v[1], v[2])
		}
	})
}

// -----------------------------------------------------------------------
// F5 — Fig. 5: relative change of measures vs the initial flow.

func BenchmarkFig5RelativeChange(b *testing.B) {
	flow := tpcds.PurchasesFlow()
	bind := tpcds.Binding(flow, 2000, 1)
	planner := core.NewPlanner(nil, core.Options{
		Policy: policy.Greedy{TopK: 2},
		Depth:  2,
		Sim:    benchSim(2000),
	})
	res, err := planner.Plan(flow, bind)
	if err != nil {
		b.Fatal(err)
	}
	goals := policy.NewGoals(map[measures.Characteristic]float64{
		measures.Performance: 1, measures.DataQuality: 1, measures.Reliability: 1,
	})
	best := res.Best(goals)

	b.ReportAllocs()
	b.ResetTimer()
	var rel []measures.CharRelChange
	var rendered string
	for i := 0; i < b.N; i++ {
		rel = measures.Relative(best.Report, res.Initial.Report)
		rendered = viz.ASCIIBars(viz.RelativeBars(rel), map[string]bool{"*": true})
	}
	b.StopTimer()
	once("fig5", func() {
		fmt.Printf("\n[Fig.5] relative change of measures — %s vs initial\n%s", best.Label(), rendered)
	})
}

// -----------------------------------------------------------------------
// F6 — Fig. 6 (table): every palette FCP improves its related attribute.

func BenchmarkFig6PatternPalette(b *testing.B) {
	flow := tpcds.PurchasesFlow()
	// Give the reliability axis headroom: a flaky load after the expensive
	// derive, so AddCheckpoint has failures to protect against.
	flow.Node("ld_p3").Cost.FailureRate = 0.15
	bind := tpcds.Binding(flow, 2000, 1)
	engine := sim.NewEngine(benchSim(2000))
	p0, b0, err := engine.Evaluate(flow, bind)
	if err != nil {
		b.Fatal(err)
	}
	est := measures.NewEstimator(measures.BaselineConfig(flow, p0, b0))
	base := est.Estimate(flow, p0, b0)
	reg := fcp.DefaultRegistry()

	type rowT struct {
		pattern string
		char    measures.Characteristic
		before  float64
		after   float64
	}
	var rows []rowT

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, name := range reg.Names() {
			pat, _ := reg.Get(name)
			pts := fcp.RankedPoints(pat, flow)
			if len(pts) == 0 {
				continue
			}
			g := flow.Clone()
			if _, err := pat.Apply(g, pts[0]); err != nil {
				b.Fatal(err)
			}
			p1, b1, err := engine.Evaluate(g, bind)
			if err != nil {
				b.Fatal(err)
			}
			r := est.Estimate(g, p1, b1)
			rows = append(rows, rowT{
				pattern: name,
				char:    pat.Improves(),
				before:  base.Score(pat.Improves()),
				after:   r.Score(pat.Improves()),
			})
		}
	}
	b.StopTimer()
	once("fig6", func() {
		out := [][]string{}
		for _, r := range rows {
			verdict := "improved"
			if r.after <= r.before {
				verdict = "NOT improved"
			}
			out = append(out, []string{
				r.pattern, string(r.char),
				fmt.Sprintf("%.4f", r.before), fmt.Sprintf("%.4f", r.after), verdict,
			})
		}
		fmt.Printf("\n[Fig.6] FCP palette vs related quality attribute (best application point)\n%s\n",
			viz.Table([]string{"FCP", "related attribute", "initial score", "score after", "verdict"}, out))
	})
}

// -----------------------------------------------------------------------
// P2 — different pattern subsets and policies produce different collections.

func BenchmarkP2PolicySweep(b *testing.B) {
	flow := tpcds.PurchasesFlow()
	bind := tpcds.Binding(flow, 500, 1)
	type cfg struct {
		name    string
		palette []string
		pol     policy.Policy
	}
	cfgs := []cfg{
		{"exhaustive/full", nil, policy.Exhaustive{}},
		{"greedy2/full", nil, policy.Greedy{TopK: 2}},
		{"exhaustive/dq-only", []string{
			fcp.NameRemoveDuplicateEntries, fcp.NameFilterNullValues, fcp.NameCrosscheckSources,
		}, policy.Exhaustive{}},
		{"random8/full", nil, policy.RandomSample{N: 8, Seed: 9}},
	}
	for _, c := range cfgs {
		c := c
		b.Run(c.name, func(b *testing.B) {
			planner := core.NewPlanner(nil, core.Options{
				Palette: c.palette,
				Policy:  c.pol,
				Depth:   2,
				Sim:     benchSim(500),
			})
			var res *core.Result
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				res, err = planner.Plan(flow, bind)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(len(res.Alternatives)), "alternatives")
			once("p2:"+c.name, func() {
				fmt.Printf("[P2] policy %-22s -> %4d alternatives, %2d skyline\n",
					c.name, len(res.Alternatives), len(res.SkylineIdx))
			})
		})
	}
}

// -----------------------------------------------------------------------
// P3 — user-defined patterns extend the palette.

func BenchmarkP3CustomPattern(b *testing.B) {
	flow := tpcds.SalesETL()
	bind := tpcds.Binding(flow, 500, 1)
	b.ReportAllocs()
	b.ResetTimer()
	var res *core.Result
	for i := 0; i < b.N; i++ {
		reg := fcp.DefaultRegistry()
		custom, err := fcp.NewCustomPattern(fcp.CustomSpec{
			Name:     "EncryptInTransit",
			Kind:     fcp.EdgePoint,
			Improves: measures.Manageability,
			OpKind:   etl.OpEncrypt,
			Conditions: []fcp.Condition{
				fcp.UpstreamDistanceAtMost(1),
				fcp.NoAdjacentKind(etl.OpEncrypt),
			},
			FitnessNearSource: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := reg.Register(custom); err != nil {
			b.Fatal(err)
		}
		planner := core.NewPlanner(reg, core.Options{
			Palette: []string{"EncryptInTransit"},
			Policy:  policy.Exhaustive{},
			Depth:   1,
			Sim:     benchSim(500),
		})
		res, err = planner.Plan(flow, bind)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	once("p3", func() {
		fmt.Printf("[P3] custom pattern EncryptInTransit: %d application points became %d alternatives\n",
			len(res.Alternatives), len(res.Alternatives))
	})
}

// -----------------------------------------------------------------------
// S1 — §2.2: the analysis space grows combinatorially with graph size.

func BenchmarkS1SpaceGrowth(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32} {
		n := n
		b.Run(fmt.Sprintf("ops=%d", n), func(b *testing.B) {
			g := chainFlow(n)
			var points int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				counts, err := core.CountApplicationPoints(nil, g)
				if err != nil {
					b.Fatal(err)
				}
				points = 0
				for _, c := range counts {
					points += c
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(points), "application_points")
			once(fmt.Sprintf("s1:%d", n), func() {
				// Depth-2 space size ~ points^2 before dedup.
				fmt.Printf("[S1] |V|=%2d: %3d application points (depth-2 space ~ %d combinations)\n",
					n, points, points*points)
			})
		})
	}
}

// chainFlow builds extract -> n derives -> load with nullable+key schema so
// every pattern finds points.
func chainFlow(n int) *etl.Graph {
	s := etl.NewSchema(
		etl.Attribute{Name: "id", Type: etl.TypeInt, Key: true},
		etl.Attribute{Name: "v", Type: etl.TypeFloat},
		etl.Attribute{Name: "note", Type: etl.TypeString, Nullable: true},
	)
	bld := etl.NewBuilder(fmt.Sprintf("chain_%d", n)).
		Op("src", "S", etl.OpExtract, s)
	for i := 0; i < n; i++ {
		bld = bld.Op(etl.NodeID(fmt.Sprintf("d%d", i)), fmt.Sprintf("derive_%d", i), etl.OpDerive, s)
	}
	return bld.Op("ld", "DW", etl.OpLoad, etl.Schema{}).MustBuild()
}

// -----------------------------------------------------------------------
// A1 — skyline algorithm ablation.

func BenchmarkA1SkylineAlgorithms(b *testing.B) {
	rng := data.NewRNG(1)
	sizes := []int{1000, 10000}
	for _, n := range sizes {
		pts := make([][]float64, n)
		for i := range pts {
			x := rng.Float64()
			pts[i] = []float64{x, 1 - x + 0.05*rng.Float64(), rng.Float64()}
		}
		b.Run(fmt.Sprintf("naive/n=%d", n), func(b *testing.B) {
			if n > 1000 {
				b.Skip("naive is quadratic; skip large input")
			}
			for i := 0; i < b.N; i++ {
				skyline.Naive(pts)
			}
		})
		b.Run(fmt.Sprintf("sortfilter/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				skyline.SortFilter(pts)
			}
		})
		b.Run(fmt.Sprintf("incremental/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				inc := skyline.NewIncremental()
				for j, p := range pts {
					inc.Add(j, p)
				}
				inc.Indices()
			}
		})
	}
	pts2 := make([][]float64, 10000)
	for i := range pts2 {
		x := rng.Float64()
		pts2[i] = []float64{x, 1 - x + 0.05*rng.Float64()}
	}
	b.Run("sweep2d/n=10000", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			skyline.Sweep2D(pts2)
		}
	})
}

// -----------------------------------------------------------------------
// A2 — sequential vs concurrent evaluation (the EC2 substitution).

func BenchmarkA2EvalWorkers(b *testing.B) {
	flow := tpcds.PurchasesFlow()
	bind := tpcds.Binding(flow, 1500, 1)
	for _, w := range []int{1, 2, 4, 8} {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			planner := core.NewPlanner(nil, core.Options{
				Policy:  policy.Exhaustive{},
				Depth:   1,
				Workers: w,
				Sim:     benchSim(1500),
			})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := planner.Plan(flow, bind); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// -----------------------------------------------------------------------
// A3 — fingerprint dedup ablation.

func BenchmarkA3Dedup(b *testing.B) {
	flow := tpcds.PurchasesFlow()
	bind := tpcds.Binding(flow, 300, 1)
	for _, disable := range []bool{false, true} {
		disable := disable
		name := "dedup=on"
		if disable {
			name = "dedup=off"
		}
		b.Run(name, func(b *testing.B) {
			planner := core.NewPlanner(nil, core.Options{
				Policy:       policy.Exhaustive{},
				Depth:        2,
				DisableDedup: disable,
				Sim:          benchSim(300),
			})
			var res *core.Result
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				res, err = planner.Plan(flow, bind)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(len(res.Alternatives)), "alternatives")
			b.ReportMetric(float64(res.Stats.Deduped), "deduped")
			once("a3:"+name, func() {
				fmt.Printf("[A3] %s: %d alternatives evaluated, %d duplicates removed\n",
					name, len(res.Alternatives), res.Stats.Deduped)
			})
		})
	}
}

// -----------------------------------------------------------------------
// A5 — delta evaluation ablation: the shared-prefix simulation cache makes
// per-alternative evaluation cost proportional to the changed region of the
// flow instead of its size. Fig.4-scale planning (exhaustive, depth 2,
// thousands of alternatives) with DeltaEval on vs off; identical results are
// enforced by core's TestDeltaEquivalenceMatrix.

func BenchmarkA5DeltaEval(b *testing.B) {
	flow := tpcds.SalesETL()
	bind := tpcds.Binding(flow, 300, 1)
	for _, mode := range []struct {
		name string
		m    core.DeltaMode
	}{
		{"delta=on", core.DeltaOn},
		{"delta=off", core.DeltaOff},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			planner := core.NewPlanner(nil, core.Options{
				Policy:          policy.Exhaustive{},
				Depth:           2,
				MaxAlternatives: 4096,
				Sim:             benchSim(300),
				DeltaEval:       mode.m,
			})
			b.ReportAllocs()
			b.ResetTimer()
			var res *core.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = planner.Plan(flow, bind)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(len(res.Alternatives)), "alternatives")
			once("a5:"+mode.name, func() {
				fmt.Printf("[A5] %s: %d alternatives evaluated, skyline %d\n",
					mode.name, len(res.Alternatives), len(res.SkylineIdx))
			})
		})
	}
}

// -----------------------------------------------------------------------
// A8 — columnar engine ablation: the simulator over typed column batches
// with selection vectors and column-wise hashing vs the row-at-a-time
// oracle. Both modes run full evaluation (DeltaOff) so the comparison
// isolates the operator data path rather than cache hit rates; identical
// results are enforced by core's TestColumnarEquivalenceMatrix.

func BenchmarkA8Columnar(b *testing.B) {
	flow := tpcds.SalesETL()
	bind := tpcds.Binding(flow, 300, 1)
	for _, mode := range []struct {
		name string
		m    core.ColumnarMode
	}{
		{"columnar=on", core.ColumnarOn},
		{"columnar=off", core.ColumnarOff},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			planner := core.NewPlanner(nil, core.Options{
				Policy:          policy.Exhaustive{},
				Depth:           2,
				MaxAlternatives: 4096,
				Sim:             benchSim(300),
				DeltaEval:       core.DeltaOff,
				Columnar:        mode.m,
			})
			b.ReportAllocs()
			b.ResetTimer()
			var res *core.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = planner.Plan(flow, bind)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(len(res.Alternatives)), "alternatives")
			once("a8:"+mode.name, func() {
				fmt.Printf("[A8] %s: %d alternatives evaluated, skyline %d\n",
					mode.name, len(res.Alternatives), len(res.SkylineIdx))
			})
		})
	}
}

// -----------------------------------------------------------------------
// A4 — pipeline-overlap model ablation: how much of the cycle time comes
// from the partial pipelining assumption of the simulator.

func BenchmarkA4PipelineOverlap(b *testing.B) {
	flow := tpch.RevenueETL()
	bind := tpch.Binding(flow, 3000, 1)
	for _, overlap := range []float64{0, 0.5, 0.9} {
		overlap := overlap
		b.Run(fmt.Sprintf("overlap=%.1f", overlap), func(b *testing.B) {
			cfg := benchSim(3000)
			cfg.PipelineOverlap = overlap
			engine := sim.NewEngine(cfg)
			var cycle float64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, err := engine.Execute(flow, bind)
				if err != nil {
					b.Fatal(err)
				}
				cycle = p.FirstPassMs
			}
			b.StopTimer()
			b.ReportMetric(cycle, "cycle_ms")
			once(fmt.Sprintf("a4:%f", overlap), func() {
				fmt.Printf("[A4] pipeline overlap %.1f: first-pass makespan %.1f ms\n", overlap, cycle)
			})
		})
	}
}

// -----------------------------------------------------------------------
// E1 — extension: the PushDownSelection optimization pattern (beyond the
// Fig. 6 palette) moves a selective filter before an expensive derive.

func BenchmarkE1PushDownSelection(b *testing.B) {
	s := etl.NewSchema(
		etl.Attribute{Name: "id", Type: etl.TypeInt, Key: true},
		etl.Attribute{Name: "v", Type: etl.TypeFloat},
	)
	derived := s.With(etl.Attribute{Name: "computed", Type: etl.TypeFloat})
	initial := etl.New("late_filter")
	initial.MustAddNode(etl.NewNode("src", "S", etl.OpExtract, s))
	drv := etl.NewNode("drv", "derive", etl.OpDerive, derived)
	drv.Cost.PerTuple = 0.05
	initial.MustAddNode(drv)
	flt := etl.NewNode("flt", "filter", etl.OpFilter, s)
	flt.Cost.Selectivity = 0.3
	initial.MustAddNode(flt)
	initial.MustAddNode(etl.NewNode("ld", "DW", etl.OpLoad, etl.Schema{}))
	initial.MustAddEdge("src", "drv")
	initial.MustAddEdge("drv", "flt")
	initial.MustAddEdge("flt", "ld")
	if err := initial.Validate(); err != nil {
		b.Fatal(err)
	}

	engine := sim.NewEngine(benchSim(4000))
	_, b0, err := engine.Evaluate(initial, nil)
	if err != nil {
		b.Fatal(err)
	}
	pat := fcp.NewPushDownSelection()

	var cyc1 float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := initial.Clone()
		pts := fcp.ApplicationPoints(pat, g)
		if len(pts) != 1 {
			b.Fatalf("points = %v", pts)
		}
		if _, err := pat.Apply(g, pts[0]); err != nil {
			b.Fatal(err)
		}
		_, b1, err := engine.Evaluate(g, nil)
		if err != nil {
			b.Fatal(err)
		}
		cyc1 = b1.MeanCycleTime()
	}
	b.StopTimer()
	cyc0 := b0.MeanCycleTime()
	b.ReportMetric(cyc0/cyc1, "speedup")
	once("e1", func() {
		fmt.Printf("[E1] PushDownSelection (selectivity 0.3 past a heavy derive): cycle time %.1f -> %.1f ms (%.2fx)\n",
			cyc0, cyc1, cyc0/cyc1)
	})
}

// -----------------------------------------------------------------------
// E2 — extension: the iterative redesign loop converges ("new iteration
// cycles commence, until the user considers that the flow adequately
// satisfies quality goals").

func BenchmarkE2IterativeSession(b *testing.B) {
	flow := tpcds.PurchasesFlow()
	bind := tpcds.Binding(flow, 800, 1)
	goals := policy.NewGoals(map[measures.Characteristic]float64{
		measures.Reliability: 2, measures.DataQuality: 1, measures.Performance: 1,
	})
	var history []core.SelectionRecord
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		planner := core.NewPlanner(nil, core.Options{
			Policy: policy.Greedy{TopK: 2},
			Depth:  1,
			Sim:    benchSim(800),
		})
		session := core.NewSession(planner, flow, bind)
		for it := 0; it < 3; it++ {
			res, err := session.Explore()
			if err != nil {
				b.Fatal(err)
			}
			if len(res.SkylineIdx) == 0 {
				break
			}
			bestIdx, bestU := 0, -1.0
			for j, alt := range res.Skyline() {
				if u := goals.Utility(alt.Report); u > bestU {
					bestIdx, bestU = j, u
				}
			}
			if _, err := session.Select(bestIdx); err != nil {
				b.Fatal(err)
			}
		}
		history = session.History()
	}
	b.StopTimer()
	once("e2", func() {
		fmt.Println("[E2] iterative session (reliability-weighted goals):")
		for _, rec := range history {
			fmt.Printf("  iteration %d: %-64s mean score %.4f -> %.4f\n",
				rec.Iteration, rec.Label, rec.ScoreBefore, rec.ScoreAfter)
		}
	})
}

// -----------------------------------------------------------------------
// SV1 — service path: throughput of the HTTP planning service for the hot
// case, a planning request served from the fingerprint-keyed plan cache.
// This is the steady-state cost of the REST + JSON layer per request once
// many analysts share one plan, the multi-user story of the ROADMAP.

func BenchmarkServePlan(b *testing.B) {
	benchServePlan(b, poiesis.ServerConfig{})
}

// BenchmarkServePlanNoTrace is SV1 with tracing disabled (TraceSample < 0):
// the delta against BenchmarkServePlan is the whole cost of span collection
// on the hot path, which the obs kit promises is within the ≤2% budget
// sampled and ~0 disabled.
func BenchmarkServePlanNoTrace(b *testing.B) {
	benchServePlan(b, poiesis.ServerConfig{TraceSample: -1})
}

// BenchmarkServePlanDiskStore is SV1 with the crash-safe disk session
// backend: every plan response additionally snapshots the session and
// fsyncs the record, so the delta against BenchmarkServePlan is the
// write-through cost of durability on the hot path.
func BenchmarkServePlanDiskStore(b *testing.B) {
	backend, err := poiesis.NewDiskSessionBackend(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	benchServePlan(b, poiesis.ServerConfig{Backend: backend})
}

func benchServePlan(b *testing.B, cfg poiesis.ServerConfig) {
	srv := poiesis.NewServer(cfg)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	createBody := `{
		"flow": {"builtin": "tpcds-purchases"},
		"scale": 300,
		"config": {"policy": "greedy", "topK": 2, "depth": 1, "sim": {"runs": 16, "defaultRows": 300}}
	}`
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(createBody))
	if err != nil {
		b.Fatal(err)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	planURL := ts.URL + "/v1/sessions/" + created.ID + "/plan"

	// Warm the cache: the first request computes, all timed ones hit.
	warm, err := http.Post(planURL, "application/json", nil)
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, warm.Body)
	warm.Body.Close()
	if warm.StatusCode != http.StatusOK {
		b.Fatalf("warm plan: %d", warm.StatusCode)
	}

	var bytesRead int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(planURL, "application/json", nil)
		if err != nil {
			b.Fatal(err)
		}
		n, _ := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("plan: %d", resp.StatusCode)
		}
		bytesRead += n
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(bytesRead)/float64(b.N), "respB/op")
	}
	once("sv1", func() {
		fmt.Printf("[SV1] service path: cached plan responses of %d bytes per request\n",
			bytesRead/int64(b.N))
	})
}

// -----------------------------------------------------------------------
// SV2 — cluster path: the same cached plan request issued through a replica
// that does NOT own the session, so every iteration pays the full forwarding
// hop (proxy dial/reuse, header rewrite, chunk-flushed relay) on top of SV1's
// REST + JSON cost. The delta against BenchmarkServePlan is the price of
// "talk to any replica" transparency.

func BenchmarkServePlanForwarded(b *testing.B) {
	// Two shard-aware replicas on real sockets; membership URLs must exist
	// before the servers do, so the handlers late-bind.
	var handlers [2]atomic.Pointer[poiesis.PlanServer]
	var urls [2]string
	for i := 0; i < 2; i++ {
		i := i
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			h := handlers[i].Load()
			if h == nil {
				http.Error(w, "starting", http.StatusServiceUnavailable)
				return
			}
			h.ServeHTTP(w, r)
		}))
		defer ts.Close()
		urls[i] = ts.URL
	}
	names := [2]string{"a", "b"}
	members := []poiesis.ClusterMember{{ID: "a", URL: urls[0]}, {ID: "b", URL: urls[1]}}
	for i := 0; i < 2; i++ {
		cl, err := poiesis.NewCluster(names[i], members)
		if err != nil {
			b.Fatal(err)
		}
		handlers[i].Store(poiesis.NewServer(poiesis.ServerConfig{Cluster: cl}))
	}

	createBody := `{
		"flow": {"builtin": "tpcds-purchases"},
		"scale": 300,
		"config": {"policy": "greedy", "topK": 2, "depth": 1, "sim": {"runs": 16, "defaultRows": 300}}
	}`
	resp, err := http.Post(urls[0]+"/v1/sessions", "application/json", strings.NewReader(createBody))
	if err != nil {
		b.Fatal(err)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()

	// Replica a owns the session (created there); every request below goes
	// to replica b and is forwarded.
	planURL := urls[1] + "/v1/sessions/" + created.ID + "/plan"
	warm, err := http.Post(planURL, "application/json", nil)
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, warm.Body)
	warm.Body.Close()
	if warm.StatusCode != http.StatusOK {
		b.Fatalf("warm forwarded plan: %d", warm.StatusCode)
	}

	var bytesRead int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(planURL, "application/json", nil)
		if err != nil {
			b.Fatal(err)
		}
		n, _ := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("forwarded plan: %d", resp.StatusCode)
		}
		bytesRead += n
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(bytesRead)/float64(b.N), "respB/op")
	}
	once("sv2", func() {
		fmt.Printf("[SV2] cluster path: forwarded cached plan responses of %d bytes per request\n",
			bytesRead/int64(b.N))
	})
}

// -----------------------------------------------------------------------
// Sanity: the public facade compiles against a realistic use (kept as a
// benchmark-file test so `go test` at the root exercises the API).

func TestFacadeEndToEnd(t *testing.T) {
	flow := poiesis.TPCDSPurchases()
	planner := poiesis.NewPlanner(nil, poiesis.Options{
		Policy: poiesis.GreedyPolicy{TopK: 2},
		Depth:  1,
		Sim:    benchSim(300),
	})
	res, err := planner.Plan(flow, poiesis.TPCDSBinding(flow, 300, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SkylineIdx) == 0 {
		t.Fatal("no skyline")
	}
	if s := poiesis.RenderScatterASCII(res, poiesis.ScatterOptions{Title: "t"}); s == "" {
		t.Error("no scatter output")
	}
	best := res.Best(poiesis.NewGoals(map[poiesis.Characteristic]float64{
		poiesis.Performance: 1,
	}))
	if s := poiesis.RenderRelativeBars(best, res, map[string]bool{"*": true}); s == "" {
		t.Error("no bars output")
	}
}
