module poiesis

go 1.24
