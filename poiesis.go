// Package poiesis is the public API of the POIESIS reproduction: a tool for
// quality-aware ETL process redesign (Theodorou, Abelló, Thiele, Lehner —
// EDBT 2015).
//
// POIESIS takes an initial ETL flow (imported from xLM or PDI, or built with
// the Builder), automatically generates alternative flows by adding Flow
// Component Patterns at valid application points in varying positions and
// combinations, estimates quality measures (performance, data quality,
// manageability, reliability, cost) for every alternative, and presents the
// Pareto frontier so an analyst can iteratively select and integrate
// redesigns.
//
// Quickstart:
//
//	flow := poiesis.TPCDSPurchases()
//	planner := poiesis.NewPlanner(nil, poiesis.Options{})
//	result, err := planner.Plan(flow, poiesis.AutoBinding(flow, 5000, 1))
//	for _, alt := range result.Skyline() { fmt.Println(alt.Label()) }
//
// Planning runs as a concurrent streaming pipeline by default: pattern
// application feeds a bounded channel, the evaluation worker pool consumes
// alternatives as they are generated, constraints filter in-stream, and the
// Pareto frontier is maintained incrementally. Options.Streaming =
// StreamingOff restores the strictly sequential three-stage path; both
// produce identical results. Long runs can be cancelled mid-flight with
// Planner.PlanContext (or Session.ExploreContext), and Options.Progress —
// also installable late via Planner.WithProgress — receives one ProgressEvent
// per alternative as the pipeline processes it.
package poiesis

import (
	"fmt"
	"os"

	"poiesis/internal/cluster"
	"poiesis/internal/config"
	"poiesis/internal/core"
	"poiesis/internal/data"
	"poiesis/internal/etl"
	"poiesis/internal/fcp"
	"poiesis/internal/measures"
	"poiesis/internal/obs"
	"poiesis/internal/pdi"
	"poiesis/internal/policy"
	"poiesis/internal/server"
	"poiesis/internal/sim"
	"poiesis/internal/tpcds"
	"poiesis/internal/tpch"
	"poiesis/internal/trace"
	"poiesis/internal/viz"
	"poiesis/internal/workloads"
	"poiesis/internal/xlm"
)

// Flow model ---------------------------------------------------------------

// Graph is an ETL process flow: a DAG of operations connected by transitions.
type Graph = etl.Graph

// Node is one ETL flow operation.
type Node = etl.Node

// NodeID identifies a node within a flow.
type NodeID = etl.NodeID

// Schema is the attribute schema of a rowset.
type Schema = etl.Schema

// Attribute is one schema attribute.
type Attribute = etl.Attribute

// Builder assembles flows fluently.
type Builder = etl.Builder

// NewFlow creates an empty flow graph.
func NewFlow(name string) *Graph { return etl.New(name) }

// NewBuilder starts a flow builder.
func NewBuilder(name string) *Builder { return etl.NewBuilder(name) }

// Patterns ------------------------------------------------------------------

// Pattern is a Flow Component Pattern.
type Pattern = fcp.Pattern

// PatternRegistry is the repository of available patterns.
type PatternRegistry = fcp.Registry

// CustomPatternSpec declares a user-defined pattern (demo part P3).
type CustomPatternSpec = fcp.CustomSpec

// DefaultPatterns returns the registry with the Fig. 6 palette
// (RemoveDuplicateEntries, FilterNullValues, CrosscheckSources,
// ParallelizeTask, AddCheckpoint) plus the graph-wide management patterns.
func DefaultPatterns() *PatternRegistry { return fcp.DefaultRegistry() }

// NewCustomPattern builds a pattern from a declarative spec.
func NewCustomPattern(spec CustomPatternSpec) (Pattern, error) {
	return fcp.NewCustomPattern(spec)
}

// Planning ------------------------------------------------------------------

// Options configures a planning run.
type Options = core.Options

// Planner generates and evaluates alternative designs.
type Planner = core.Planner

// Result is the outcome of one planning run.
type Result = core.Result

// Alternative is one generated design.
type Alternative = core.Alternative

// Session drives the iterative explore-select loop.
type Session = core.Session

// StreamingMode selects the planner's execution pipeline (Options.Streaming).
type StreamingMode = core.StreamingMode

// Pipeline modes: StreamingOn (the zero value, hence the default) overlaps
// generation, evaluation and skyline maintenance; StreamingOff runs the
// stages strictly in sequence.
const (
	StreamingOn  = core.StreamingOn
	StreamingOff = core.StreamingOff
)

// DeltaMode selects the per-alternative evaluation strategy
// (Options.DeltaEval).
type DeltaMode = core.DeltaMode

// Evaluation modes: DeltaOn (the zero value, hence the default) memoizes
// per-node simulation results by upstream-cone fingerprint so each candidate
// re-simulates only the region its pattern application changed; DeltaOff
// re-executes every alternative from its sources. Both produce identical
// results.
const (
	DeltaOn  = core.DeltaOn
	DeltaOff = core.DeltaOff
)

// ColumnarMode selects the simulation engine's data representation
// (Options.Columnar).
type ColumnarMode = core.ColumnarMode

// Engine modes: ColumnarOn (the zero value, hence the default) executes
// flows over typed column batches with selection vectors and column-wise
// hashing; ColumnarOff keeps the row-at-a-time oracle engine. Both produce
// byte-identical results.
const (
	ColumnarOn  = core.ColumnarOn
	ColumnarOff = core.ColumnarOff
)

// ProgressEvent is delivered to Options.Progress once per alternative as the
// streaming pipeline finishes processing it.
type ProgressEvent = core.ProgressEvent

// Binding connects extract operations to synthetic sources.
type Binding = sim.Binding

// SourceSpec describes one synthetic source.
type SourceSpec = data.SourceSpec

// Defects configures injected data-quality defects.
type Defects = data.Defects

// SimConfig tunes the execution engine.
type SimConfig = sim.Config

// NewPlanner builds a planner; a nil registry uses DefaultPatterns().
func NewPlanner(reg *PatternRegistry, opts Options) *Planner {
	return core.NewPlanner(reg, opts)
}

// NewSession starts an iterative redesign session. Sessions are safe for
// concurrent use: explorations serialize against Select, and a second
// operation issued while an exploration is in flight fails fast with
// ErrSessionBusy (see core.Session's concurrency contract).
func NewSession(p *Planner, initial *Graph, bind Binding) *Session {
	return core.NewSession(p, initial, bind)
}

// ErrSessionBusy is returned by Session operations rejected because an
// exploration is in flight on another goroutine.
var ErrSessionBusy = core.ErrSessionBusy

// PlanCacheKey returns a canonical cache key identifying a planning request
// (flow fingerprint + canonicalized options + binding). Planning is
// deterministic in these inputs, so equal keys yield identical Results; the
// HTTP service's plan cache is keyed by it. ok is false when the options
// contain components that cannot be canonicalized (custom measures or a
// non-built-in policy), in which case the request must not be cached.
func PlanCacheKey(g *Graph, bind Binding, opts Options) (string, bool) {
	return core.PlanKey(g, bind, opts)
}

// Service -------------------------------------------------------------------

// ServerConfig tunes the HTTP planning service (session TTL, session cap,
// plan cache capacity).
type ServerConfig = server.Config

// PlanServer is the multi-session HTTP planning service: it exposes the
// full explore-select loop over REST + Server-Sent Events, backed by a
// TTL-evicting session store and a fingerprint-keyed plan cache. It
// implements http.Handler; mount it on any http.Server (the `poiesis serve`
// command does exactly that).
type PlanServer = server.Server

// NewServer builds the HTTP planning service. When ServerConfig.Backend is a
// disk backend holding records from a previous run, the non-expired sessions
// are restored before the first request is served.
func NewServer(cfg ServerConfig) *PlanServer { return server.New(cfg) }

// BuildInfo reports the binary's module version and VCS revision as stamped
// by the Go toolchain ("unknown" when unstamped). The same identity appears
// in GET /v1/healthz and the service's poiesis_build_info metric.
func BuildInfo() (version, revision string) { return obs.BuildInfo() }

// SessionBackend is the pluggable persistence layer of the service's session
// registry: reads stay in-memory-fast, every state-changing operation writes
// a versioned session record through, and startup restores the backend's
// records. Implementations must be safe for concurrent use and have exactly
// one writing server process.
type SessionBackend = server.SessionBackend

// SessionRecord is the unit of session persistence: service metadata plus
// the core SessionSnapshot.
type SessionRecord = server.SessionRecord

// SessionSnapshot is the versioned, self-contained serialized form of a
// Session (current flow, binding, selection history, last result). Produce
// one with Session.Snapshot and rebuild with RestoreSession.
type SessionSnapshot = core.SessionSnapshot

// RestoreSession rebuilds a Session from a snapshot; the planner is supplied
// by the caller (nil uses the default) because planner options do not
// serialize.
func RestoreSession(p *Planner, snap *SessionSnapshot) (*Session, error) {
	return core.RestoreSession(p, snap)
}

// Cluster mode ---------------------------------------------------------------

// ClusterMember identifies one replica of a `poiesis serve` cluster: a
// stable node ID (the consistent-hash ring operates on IDs) and the base
// URL peers reach the replica at.
type ClusterMember = cluster.Member

// Cluster is the shard-aware replica runtime handed to ServerConfig.Cluster:
// a consistent-hash ring over the static membership, the forwarding client
// that proxies session requests (SSE included) to their owning replica, and
// the shared plan-cache tier that asks a plan key's owner before evaluating
// and writes results through to it. Every replica must be constructed with
// the same membership list.
type Cluster = cluster.Cluster

// NewCluster builds the cluster runtime for the replica named self; members
// is the full static membership including self's own entry.
func NewCluster(self string, members []ClusterMember) (*Cluster, error) {
	return cluster.New(cluster.Config{Self: self, Members: members})
}

// ParseClusterPeers parses the `-peers` CLI membership spec:
// comma-separated id=url pairs, e.g. "a=http://10.0.0.1:8080,b=http://10.0.0.2:8080".
func ParseClusterPeers(spec string) ([]ClusterMember, error) {
	return cluster.ParsePeers(spec)
}

// NewMemorySessionBackend returns the in-process session backend (the
// default): sessions die with the process.
func NewMemorySessionBackend() SessionBackend { return server.NewMemoryBackend() }

// NewDiskSessionBackend returns the crash-safe disk session backend rooted
// at dir: each session is one atomic, fsync'd JSON snapshot file, restored
// on the next NewServer over the same directory.
func NewDiskSessionBackend(dir string) (*server.DiskBackend, error) {
	return server.NewDiskBackend(dir)
}

// NewSQLSessionBackend returns the SQL session backend: one versioned row
// per session reached through database/sql, so the session tier can live in
// any store with a conforming driver. An empty driverName selects the
// built-in dependency-free engine, for which the DSN is a log-file path or
// ":memory:". Call Close when done; the *sql.DB is held open otherwise.
func NewSQLSessionBackend(driverName, dsn string) (*server.SQLBackend, error) {
	return server.NewSQLBackend(driverName, dsn)
}

// Measures ------------------------------------------------------------------

// Characteristic is a quality characteristic.
type Characteristic = measures.Characteristic

// Quality characteristics (Fig. 1 plus reliability and cost).
const (
	Performance   = measures.Performance
	DataQuality   = measures.DataQuality
	Manageability = measures.Manageability
	Reliability   = measures.Reliability
	CostChar      = measures.Cost
)

// Report is the estimated measure tree of one design.
type Report = measures.Report

// CustomMeasure is a user-defined quality metric (P3); add via
// Options.CustomMeasures.
type CustomMeasure = measures.CustomMeasure

// RelativeChanges compares a design against the baseline (Fig. 5).
func RelativeChanges(alt, baseline *Report) []measures.CharRelChange {
	return measures.Relative(alt, baseline)
}

// Policies ------------------------------------------------------------------

// Policy decides which pattern applications to explore.
type Policy = policy.Policy

// Deployment policies.
type (
	// ExhaustivePolicy checks every valid application point.
	ExhaustivePolicy = policy.Exhaustive
	// GreedyPolicy keeps the TopK best-fitness points per pattern.
	GreedyPolicy = policy.Greedy
	// GoalDrivenPolicy weights patterns by the user's goal priorities.
	GoalDrivenPolicy = policy.GoalDriven
	// RandomSamplePolicy samples the candidate space uniformly.
	RandomSamplePolicy = policy.RandomSample
)

// Goals is the user-defined prioritisation of characteristics.
type Goals = policy.Goals

// NewGoals builds a goal set from characteristic weights.
func NewGoals(weights map[Characteristic]float64) Goals {
	return policy.NewGoals(weights)
}

// Constraint rejects designs violating measure bounds.
type Constraint = policy.Constraint

// Constraint builders.
var (
	MaxMeasure = policy.MaxMeasure
	MinMeasure = policy.MinMeasure
	MinScore   = policy.MinScore
)

// Import / export -----------------------------------------------------------

// LoadXLM reads an xLM flow from a file.
func LoadXLM(path string) (*Graph, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("poiesis: %w", err)
	}
	return xlm.Decode(b)
}

// DecodeXLM parses an xLM document.
func DecodeXLM(b []byte) (*Graph, error) { return xlm.Decode(b) }

// EncodeXLM serialises a flow to xLM.
func EncodeXLM(g *Graph) ([]byte, error) { return xlm.Encode(g) }

// SaveXLM writes a flow to a file in xLM.
func SaveXLM(path string, g *Graph) error {
	b, err := xlm.Encode(g)
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// LoadPDI reads a Pentaho .ktr transformation from a file.
func LoadPDI(path string) (*Graph, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("poiesis: %w", err)
	}
	return pdi.Decode(b)
}

// DecodePDI parses a .ktr document.
func DecodePDI(b []byte) (*Graph, error) { return pdi.Decode(b) }

// EncodePDI serialises a flow to a minimal .ktr document.
func EncodePDI(g *Graph) ([]byte, error) { return pdi.Encode(g) }

// Demo workloads -------------------------------------------------------------

// TPCDSPurchases builds the Fig. 2 S_Purchases flow.
func TPCDSPurchases() *Graph { return tpcds.PurchasesFlow() }

// TPCDSSales builds the larger TPC-DS-based demo process.
func TPCDSSales() *Graph { return tpcds.SalesETL() }

// TPCDSInventory builds the union/dedup-heavy TPC-DS inventory process.
func TPCDSInventory() *Graph { return tpcds.InventoryETL() }

// TPCHRevenue builds the TPC-H-based demo process.
func TPCHRevenue() *Graph { return tpch.RevenueETL() }

// TPCHPricingSummary builds the TPC-H Q1-style pricing summary process.
func TPCHPricingSummary() *Graph { return tpch.PricingSummaryETL() }

// BuiltinFlow builds a demo flow by its registry name (the names the CLI
// accepts for FLOW arguments and the HTTP service accepts in flow uploads);
// ok is false for unknown names.
func BuiltinFlow(name string) (*Graph, bool) { return workloads.Get(name) }

// BuiltinFlowNames lists the built-in demo flow names, sorted.
func BuiltinFlowNames() []string { return workloads.Names() }

// AutoBinding generates synthetic source bindings for any flow: every
// extract node receives a deterministic source of the given scale with
// moderate defect rates. Use tpcds.Binding / tpch.Binding proportions via
// TPCDSBinding / TPCHBinding for the demo flows.
func AutoBinding(g *Graph, scale int, seed uint64) Binding {
	return sim.AutoBinding(g, scale, seed)
}

// TPCDSBinding returns the TPC-DS-proportioned binding for flows from this
// package.
func TPCDSBinding(g *Graph, scale int, seed uint64) Binding {
	return tpcds.Binding(g, scale, seed)
}

// TPCHBinding returns the TPC-H-proportioned binding.
func TPCHBinding(g *Graph, scale int, seed uint64) Binding {
	return tpch.Binding(g, scale, seed)
}

// Visualization ---------------------------------------------------------------

// ScatterOptions labels the Fig. 4 scatter plot.
type ScatterOptions = viz.ScatterConfig

// RenderScatterASCII renders the alternative space with the skyline
// highlighted, using the first two skyline dimensions as axes.
func RenderScatterASCII(res *Result, cfg ScatterOptions) string {
	return viz.ASCIIScatter(scatterPoints(res), fillLabels(res, cfg))
}

// RenderScatterSVG renders the Fig. 4 scatter as an SVG document (third
// dimension as marker size).
func RenderScatterSVG(res *Result, cfg ScatterOptions) string {
	return viz.SVGScatter(scatterPoints(res), fillLabels(res, cfg))
}

func fillLabels(res *Result, cfg ScatterOptions) ScatterOptions {
	if cfg.XLabel == "" && len(res.Dims) > 0 {
		cfg.XLabel = string(res.Dims[0])
	}
	if cfg.YLabel == "" && len(res.Dims) > 1 {
		cfg.YLabel = string(res.Dims[1])
	}
	if cfg.ZLabel == "" && len(res.Dims) > 2 {
		cfg.ZLabel = string(res.Dims[2])
	}
	return cfg
}

func scatterPoints(res *Result) []viz.ScatterPoint {
	sky := map[int]bool{}
	for _, i := range res.SkylineIdx {
		sky[i] = true
	}
	pts := make([]viz.ScatterPoint, 0, len(res.Alternatives))
	for i, a := range res.Alternatives {
		v := a.Report.Vector(res.Dims)
		p := viz.ScatterPoint{Label: a.Label(), Skyline: sky[i]}
		if len(v) > 0 {
			p.X = v[0]
		}
		if len(v) > 1 {
			p.Y = v[1]
		}
		if len(v) > 2 {
			p.Z = v[2]
		}
		pts = append(pts, p)
	}
	return pts
}

// RenderRelativeBars renders the Fig. 5 relative-change bars for an
// alternative against the run's initial flow; expand selects characteristics
// to drill into ("*" expands all).
func RenderRelativeBars(alt *Alternative, res *Result, expand map[string]bool) string {
	rel := measures.Relative(alt.Report, res.Initial.Report)
	return viz.ASCIIBars(viz.RelativeBars(rel), expand)
}

// OpBottleneck aggregates one operation's simulated behaviour over a trace
// batch (bottlenecks first).
type OpBottleneck = trace.OpAgg

// EvaluateFlow executes a flow once with Monte-Carlo failure sampling and
// returns its measure report plus the per-operation bottleneck summary.
// A zero SimConfig uses the defaults.
func EvaluateFlow(g *Graph, bind Binding, cfg SimConfig) (*Report, []OpBottleneck, error) {
	if cfg.Runs == 0 {
		cfg = sim.DefaultConfig()
	}
	engine := sim.NewEngine(cfg)
	profile, batch, err := engine.Evaluate(g, bind)
	if err != nil {
		return nil, nil, err
	}
	report := measures.NewEstimator(measures.Config{}).Estimate(g, profile, batch)
	return report, batch.OpSummary(), nil
}

// RenderRelativeBarsSVG renders the Fig. 5 bars as an SVG document.
func RenderRelativeBarsSVG(alt *Alternative, res *Result, expand map[string]bool, title string) string {
	rel := measures.Relative(alt.Report, res.Initial.Report)
	return viz.SVGBars(viz.RelativeBars(rel), expand, title)
}

// Selection replay and skyline analysis ---------------------------------------

// Replay re-applies a recorded application history onto a fresh clone of the
// initial flow (how a selection is integrated into the real process).
func Replay(reg *PatternRegistry, initial *Graph, apps []fcp.Application) (*Graph, error) {
	return core.Replay(reg, initial, apps)
}

// ReplayVerified replays and checks the result against the alternative's
// fingerprint.
func ReplayVerified(reg *PatternRegistry, initial *Graph, alt *Alternative) (*Graph, error) {
	return core.ReplayVerified(reg, initial, alt)
}

// Explanation says why a skyline member is presented.
type Explanation = core.Explanation

// ExplainSkyline explains every frontier member of a result.
func ExplainSkyline(res *Result) []Explanation { return core.ExplainSkyline(res) }

// PatternUsage counts pattern occurrences across a result.
type PatternUsage = core.PatternUsage

// AnalyzePatternUsage aggregates which patterns appear in the space and on
// the frontier.
func AnalyzePatternUsage(res *Result) []PatternUsage { return core.AnalyzePatternUsage(res) }

// FrontierSpread reports per-dimension [min,max] across the skyline.
func FrontierSpread(res *Result) map[Characteristic][2]float64 {
	return core.FrontierSpread(res)
}

// Flow export -----------------------------------------------------------------

// FlowDiff describes the structural difference between two flows.
type FlowDiff = etl.Diff

// DiffFlows compares two flows by node identity.
func DiffFlows(base, next *Graph) FlowDiff { return etl.DiffFlows(base, next) }

// ExportDOT renders a flow in Graphviz DOT format.
func ExportDOT(g *Graph) string { return g.DOT() }

// EncodeJSON serialises a flow to the JSON wire format.
func EncodeJSON(g *Graph) ([]byte, error) { return g.MarshalJSON() }

// DecodeJSON parses a JSON flow document.
func DecodeJSON(b []byte) (*Graph, error) {
	var g Graph
	if err := g.UnmarshalJSON(b); err != nil {
		return nil, err
	}
	return &g, nil
}

// Extension patterns -----------------------------------------------------------

// NewPushDownSelection builds the selection push-down optimization pattern
// (beyond the Fig. 6 palette; register it to enable).
func NewPushDownSelection() Pattern { return fcp.NewPushDownSelection() }

// User configuration -------------------------------------------------------------

// ConfigDocument is a parsed user-configuration document (the second input
// of the Fig. 3 architecture): palette, policy, goals, constraints, custom
// patterns and simulation parameters as JSON.
type ConfigDocument = config.Document

// ParseConfig decodes a configuration document.
func ParseConfig(b []byte) (*ConfigDocument, error) { return config.Parse(b) }

// LoadConfig reads a configuration document from a file.
func LoadConfig(path string) (*ConfigDocument, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("poiesis: %w", err)
	}
	return config.Parse(b)
}

// ServeConfig is a parsed `poiesis serve` configuration document: the
// operational knobs (listen address, session TTL and cap, cache bounds, and
// the storeDir key that enables the persistent disk session store).
type ServeConfig = config.ServeDoc

// ParseServeConfig decodes a serve configuration document; unknown keys and
// malformed durations are rejected.
func ParseServeConfig(b []byte) (*ServeConfig, error) { return config.ParseServe(b) }

// LoadServeConfig reads a serve configuration document from a file.
func LoadServeConfig(path string) (*ServeConfig, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("poiesis: %w", err)
	}
	return config.ParseServe(b)
}

// PlannerFromConfig materialises a planner (registry + options) from a
// configuration document.
func PlannerFromConfig(doc *ConfigDocument) (*Planner, error) {
	reg, err := doc.Registry()
	if err != nil {
		return nil, err
	}
	opts, err := doc.Options()
	if err != nil {
		return nil, err
	}
	return core.NewPlanner(reg, opts), nil
}
