package poiesis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"poiesis"
	"poiesis/internal/etl"
	"poiesis/internal/fcp"
)

func TestWorkloadBuilders(t *testing.T) {
	flows := map[string]*poiesis.Graph{
		"purchases": poiesis.TPCDSPurchases(),
		"sales":     poiesis.TPCDSSales(),
		"inventory": poiesis.TPCDSInventory(),
		"revenue":   poiesis.TPCHRevenue(),
		"pricing":   poiesis.TPCHPricingSummary(),
	}
	for name, g := range flows {
		if err := g.Validate(); err != nil {
			t.Errorf("%s invalid: %v", name, err)
		}
	}
}

func TestXLMFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "flow.xlm")
	g := poiesis.TPCDSPurchases()
	if err := poiesis.SaveXLM(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := poiesis.LoadXLM(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Fingerprint() != g.Fingerprint() {
		t.Error("file round trip changed the flow")
	}
	if _, err := poiesis.LoadXLM(filepath.Join(dir, "missing.xlm")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestPDIFileLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "flow.ktr")
	b, err := poiesis.EncodePDI(poiesis.TPCHPricingSummary())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := poiesis.LoadPDI(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() == 0 {
		t.Error("empty flow loaded")
	}
	if _, err := poiesis.LoadPDI(filepath.Join(dir, "missing.ktr")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestJSONFacade(t *testing.T) {
	g := poiesis.TPCDSPurchases()
	b, err := poiesis.EncodeJSON(g)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := poiesis.DecodeJSON(b)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Fingerprint() != g.Fingerprint() {
		t.Error("JSON round trip changed the flow")
	}
	if _, err := poiesis.DecodeJSON([]byte("{")); err == nil {
		t.Error("bad JSON should fail")
	}
}

func TestDecodeXLMAndPDIFacade(t *testing.T) {
	g := poiesis.TPCDSPurchases()
	xb, err := poiesis.EncodeXLM(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := poiesis.DecodeXLM(xb); err != nil {
		t.Error(err)
	}
	pb, err := poiesis.EncodePDI(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := poiesis.DecodePDI(pb); err != nil {
		t.Error(err)
	}
}

func TestExportDOTFacade(t *testing.T) {
	dot := poiesis.ExportDOT(poiesis.TPCDSPurchases())
	if !strings.Contains(dot, "digraph") {
		t.Error("not DOT output")
	}
}

func TestAutoBinding(t *testing.T) {
	g := poiesis.TPCHRevenue()
	b := poiesis.AutoBinding(g, 100, 1)
	if len(b) != len(g.Sources()) {
		t.Errorf("binding covers %d of %d sources", len(b), len(g.Sources()))
	}
	for id, spec := range b {
		if spec.Rows != 100 {
			t.Errorf("%s rows = %d", id, spec.Rows)
		}
	}
	// Zero scale falls back to a usable default.
	b2 := poiesis.AutoBinding(g, 0, 1)
	for _, spec := range b2 {
		if spec.Rows <= 0 {
			t.Error("default scale missing")
		}
	}
}

func TestSessionFacade(t *testing.T) {
	flow := poiesis.TPCDSPurchases()
	planner := poiesis.NewPlanner(nil, poiesis.Options{
		Policy: poiesis.GreedyPolicy{TopK: 1},
		Depth:  1,
		Sim:    benchSim(200),
	})
	s := poiesis.NewSession(planner, flow, poiesis.TPCDSBinding(flow, 200, 1))
	res, err := s.Explore()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SkylineIdx) == 0 {
		t.Fatal("no skyline")
	}
	if _, err := s.Select(0); err != nil {
		t.Fatal(err)
	}
	if len(s.History()) != 1 {
		t.Error("history not recorded")
	}
}

func TestReplayFacade(t *testing.T) {
	flow := poiesis.TPCDSPurchases()
	planner := poiesis.NewPlanner(nil, poiesis.Options{
		Policy: poiesis.GreedyPolicy{TopK: 1},
		Depth:  1,
		Sim:    benchSim(200),
	})
	res, err := planner.Plan(flow, poiesis.TPCDSBinding(flow, 200, 1))
	if err != nil {
		t.Fatal(err)
	}
	alt := &res.Alternatives[0]
	g, err := poiesis.Replay(nil, flow, alt.Applications)
	if err != nil {
		t.Fatal(err)
	}
	if g.Fingerprint() != alt.Graph.Fingerprint() {
		t.Error("facade replay mismatch")
	}
	if _, err := poiesis.ReplayVerified(nil, flow, alt); err != nil {
		t.Error(err)
	}
	exps := poiesis.ExplainSkyline(res)
	if len(exps) != len(res.SkylineIdx) {
		t.Error("explanations incomplete")
	}
	if len(poiesis.AnalyzePatternUsage(res)) == 0 {
		t.Error("no usage analysis")
	}
	if len(poiesis.FrontierSpread(res)) == 0 {
		t.Error("no spread")
	}
}

func TestDiffFlowsFacade(t *testing.T) {
	base := poiesis.TPCDSPurchases()
	next := base.Clone()
	pat := poiesis.NewPushDownSelection()
	_ = pat // push-down has no point on this flow (filter precedes derive)
	cp := etl.NewNode(next.FreshID("sp"), "savepoint", etl.OpCheckpoint, next.Node("flt_current").Out)
	if err := next.InsertOnEdge("flt_current", "split_req", cp); err != nil {
		t.Fatal(err)
	}
	d := poiesis.DiffFlows(base, next)
	if d.IsEmpty() || len(d.AddedNodes) != 1 {
		t.Errorf("diff = %v", d)
	}
}

func TestRelativeChangesFacade(t *testing.T) {
	flow := poiesis.TPCDSPurchases()
	planner := poiesis.NewPlanner(nil, poiesis.Options{
		Policy: poiesis.GreedyPolicy{TopK: 1},
		Depth:  1,
		Sim:    benchSim(200),
	})
	res, err := planner.Plan(flow, poiesis.TPCDSBinding(flow, 200, 1))
	if err != nil {
		t.Fatal(err)
	}
	rel := poiesis.RelativeChanges(res.Alternatives[0].Report, res.Initial.Report)
	if len(rel) == 0 {
		t.Error("no relative changes")
	}
	svg := poiesis.RenderScatterSVG(res, poiesis.ScatterOptions{Title: "t"})
	if !strings.Contains(svg, "<svg") {
		t.Error("no SVG")
	}
}

func TestConstraintBuildersExported(t *testing.T) {
	cs := []poiesis.Constraint{
		poiesis.MaxMeasure(poiesis.Performance, "process_cycle_time", 1e9),
		poiesis.MinMeasure(poiesis.DataQuality, "completeness", 0),
		poiesis.MinScore(poiesis.Reliability, 0),
	}
	for _, c := range cs {
		if c.Name() == "" {
			t.Error("constraint without name")
		}
	}
}

func TestCustomPatternFacade(t *testing.T) {
	pat, err := poiesis.NewCustomPattern(poiesis.CustomPatternSpec{
		Name:     "NoopPattern",
		Kind:     fcp.EdgePoint,
		Improves: poiesis.Manageability,
		OpKind:   etl.OpNoop,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := poiesis.DefaultPatterns()
	if err := reg.Register(pat); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(poiesis.NewPushDownSelection()); err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Get("NoopPattern"); !ok {
		t.Error("custom pattern not registered")
	}
}

func TestConfigFacade(t *testing.T) {
	doc, err := poiesis.ParseConfig([]byte(`{
		"palette": ["FilterNullValues"],
		"policy": "greedy", "topK": 1, "depth": 1,
		"sim": {"defaultRows": 200, "runs": 8}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	planner, err := poiesis.PlannerFromConfig(doc)
	if err != nil {
		t.Fatal(err)
	}
	flow := poiesis.TPCDSPurchases()
	res, err := planner.Plan(flow, poiesis.TPCDSBinding(flow, 200, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Alternatives {
		for _, app := range a.Applications {
			if app.Pattern != "FilterNullValues" {
				t.Errorf("pattern %s outside configured palette", app.Pattern)
			}
		}
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "cfg.json")
	if err := os.WriteFile(path, []byte(`{"depth": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := poiesis.LoadConfig(path); err != nil {
		t.Error(err)
	}
	if _, err := poiesis.LoadConfig(filepath.Join(dir, "nope.json")); err == nil {
		t.Error("missing config should fail")
	}
	if _, err := poiesis.ParseConfig([]byte("{")); err == nil {
		t.Error("bad config should fail")
	}
}

func TestBuilderFacade(t *testing.T) {
	s := poiesis.Schema{Attrs: []poiesis.Attribute{
		{Name: "id", Type: etl.TypeInt, Key: true},
	}}
	g, err := poiesis.NewBuilder("mini").
		Op("src", "S", etl.OpExtract, s).
		Op("ld", "DW", etl.OpLoad, poiesis.Schema{}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 {
		t.Error("builder facade broken")
	}
	if poiesis.NewFlow("x").Len() != 0 {
		t.Error("NewFlow broken")
	}
}
