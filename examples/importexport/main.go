// Import/export pipeline: build a flow with the API, persist it as xLM,
// reload it, apply a redesign, and push the result out as PDI (.ktr),
// Graphviz DOT and JSON — the interchange surface that lets POIESIS sit
// between an existing ETL tool and the analyst.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"poiesis"
	"poiesis/internal/etl"
)

func main() {
	dir, err := os.MkdirTemp("", "poiesis-io-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Build a small flow with the public builder.
	schema := poiesis.Schema{Attrs: []poiesis.Attribute{
		{Name: "order_id", Type: etl.TypeInt, Key: true},
		{Name: "amount", Type: etl.TypeFloat},
		{Name: "comment", Type: etl.TypeString, Nullable: true},
	}}
	flow := poiesis.NewBuilder("orders_staging").
		Op("src", "orders_source", etl.OpExtract, schema).
		Op("flt", "filter_positive", etl.OpFilter, schema).
		Op("drv", "derive_tax", etl.OpDerive,
			schema.With(poiesis.Attribute{Name: "tax", Type: etl.TypeFloat})).
		Op("ld", "dw_orders", etl.OpLoad, poiesis.Schema{}).
		MustBuild()

	// 2. Persist as xLM and reload: the canonical fingerprint must survive.
	xlmPath := filepath.Join(dir, "orders.xlm")
	if err := poiesis.SaveXLM(xlmPath, flow); err != nil {
		log.Fatal(err)
	}
	reloaded, err := poiesis.LoadXLM(xlmPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("xLM round trip: fingerprints match = %v\n",
		flow.Fingerprint() == reloaded.Fingerprint())

	// 3. Plan one redesign round and integrate the best design.
	planner := poiesis.NewPlanner(nil, poiesis.Options{
		Policy: poiesis.GreedyPolicy{TopK: 1},
		Depth:  1,
	})
	res, err := planner.Plan(reloaded, poiesis.AutoBinding(reloaded, 1000, 1))
	if err != nil {
		log.Fatal(err)
	}
	best := res.Best(poiesis.NewGoals(map[poiesis.Characteristic]float64{
		poiesis.DataQuality: 1, poiesis.Reliability: 1,
	}))
	fmt.Printf("selected redesign: %s\n", best.Label())
	fmt.Printf("structural delta: %s\n", poiesis.DiffFlows(reloaded, best.Graph))

	// 4. Replay the selection onto the (reloaded) production flow — this is
	// what "integrating the corresponding patterns to the existing process"
	// means operationally — and verify the result.
	integrated, err := poiesis.ReplayVerified(nil, reloaded, best)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Export the integrated design to every supported format.
	outputs := map[string]func() ([]byte, error){
		"orders_redesigned.ktr":  func() ([]byte, error) { return poiesis.EncodePDI(integrated) },
		"orders_redesigned.xlm":  func() ([]byte, error) { return poiesis.EncodeXLM(integrated) },
		"orders_redesigned.json": func() ([]byte, error) { return poiesis.EncodeJSON(integrated) },
		"orders_redesigned.dot":  func() ([]byte, error) { return []byte(poiesis.ExportDOT(integrated)), nil },
	}
	for name, enc := range outputs {
		b, err := enc()
		if err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, b, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %-24s %6d bytes\n", name, len(b))
	}
}
