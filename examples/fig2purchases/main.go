// Fig. 2 reproduction: the two goal-driven rewrites of the S_Purchases flow.
//
// (a) improved performance — the goal of improving time performance results
// in horizontal partitioning and parallelism within the computational-
// intensive DERIVE VALUES task;
//
// (b) improved reliability — the goal of improving reliability brings about
// the addition of recovery points (savepoints) to the sub-process.
//
// The example applies each pattern explicitly at its best-ranked application
// point and compares the estimated measures against the initial flow.
package main

import (
	"fmt"
	"log"

	"poiesis"
)

func main() {
	initial := poiesis.TPCDSPurchases()
	bind := poiesis.TPCDSBinding(initial, 4000, 1)

	// Restrict the palette to one pattern per run so that the generated
	// space is exactly the Fig. 2 rewrite family.
	for _, scenario := range []struct {
		title   string
		pattern string
		goal    poiesis.Characteristic
	}{
		{"Fig. 2a — improved performance (ParallelizeTask)", "ParallelizeTask", poiesis.Performance},
		{"Fig. 2b — improved reliability (AddCheckpoint)", "AddCheckpoint", poiesis.Reliability},
	} {
		fmt.Println(scenario.title)
		fmt.Println()

		planner := poiesis.NewPlanner(nil, poiesis.Options{
			Palette: []string{scenario.pattern},
			Policy:  poiesis.GreedyPolicy{TopK: 1},
			Depth:   1,
		})
		res, err := planner.Plan(initial, bind)
		if err != nil {
			log.Fatal(err)
		}
		if len(res.Alternatives) == 0 {
			log.Fatalf("%s produced no rewrite", scenario.pattern)
		}
		alt := &res.Alternatives[0]
		fmt.Printf("  rewrite: %s\n", alt.Label())
		fmt.Printf("  flow grew %d -> %d operations\n", initial.Len(), alt.Graph.Len())
		fmt.Printf("  %-14s initial=%.4f rewritten=%.4f\n", scenario.goal,
			res.Initial.Report.Score(scenario.goal), alt.Report.Score(scenario.goal))

		cyc0, _ := res.Initial.Report.MeasureValue(poiesis.Performance, "process_cycle_time")
		cyc1, _ := alt.Report.MeasureValue(poiesis.Performance, "process_cycle_time")
		rec0, _ := res.Initial.Report.MeasureValue(poiesis.Reliability, "mean_recovery_time")
		rec1, _ := alt.Report.MeasureValue(poiesis.Reliability, "mean_recovery_time")
		fmt.Printf("  cycle time: %.1f ms -> %.1f ms | mean recovery: %.1f ms -> %.1f ms\n",
			cyc0, cyc1, rec0, rec1)

		fmt.Println("\n  relative change vs initial flow:")
		fmt.Print(indent(poiesis.RenderRelativeBars(alt, res, nil), "  "))
		fmt.Println()

		// Show the rewritten sub-flow topology.
		fmt.Println("  rewritten flow:")
		fmt.Print(indent(alt.Graph.String(), "  "))
		fmt.Println()
	}
}

func indent(s, pad string) string {
	out := ""
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			if start < i {
				out += pad + s[start:i] + "\n"
			} else if i < len(s) {
				out += "\n"
			}
			start = i + 1
		}
	}
	return out
}
