// Custom pattern definition (demo part P3): "users will be guided through
// defining their own Flow Component Patterns, quality metrics and deployment
// policies, by extending and pre-configuring the existing ones. They will be
// able to save their custom processing preferences, adding them to the
// palette of available patterns for future execution."
//
// This example defines two custom patterns — an edge pattern that encrypts
// data in transit right after extraction, and a graph-wide pattern enabling
// role-based access control — registers them alongside the builtin palette,
// and plans with the extended palette.
package main

import (
	"fmt"
	"log"

	"poiesis"
	"poiesis/internal/etl"
	"poiesis/internal/fcp"
)

func main() {
	reg := poiesis.DefaultPatterns()

	// Edge pattern: interpose an encryption operation near the sources. The
	// prerequisites and the fitness heuristic are declared, not coded.
	encrypt, err := poiesis.NewCustomPattern(poiesis.CustomPatternSpec{
		Name:     "EncryptInTransit",
		Kind:     fcp.EdgePoint,
		Improves: poiesis.Manageability,
		OpKind:   etl.OpEncrypt,
		OpName:   "encrypt_stream",
		Params:   map[string]string{"algo": "aes-256-gcm"},
		Conditions: []fcp.Condition{
			fcp.UpstreamDistanceAtMost(1),
			fcp.NoAdjacentKind(etl.OpEncrypt),
		},
		FitnessNearSource: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := reg.Register(encrypt); err != nil {
		log.Fatal(err)
	}

	// Graph-wide pattern: a pure configuration change.
	rbac, err := poiesis.NewCustomPattern(poiesis.CustomPatternSpec{
		Name:     "EnableRBAC",
		Kind:     fcp.GraphPoint,
		Improves: poiesis.Manageability,
		Params:   map[string]string{"security.rbac": "1"},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := reg.Register(rbac); err != nil {
		log.Fatal(err)
	}

	fmt.Println("extended palette:")
	for _, name := range reg.Names() {
		p, _ := reg.Get(name)
		fmt.Printf("  %-26s (%s, improves %s)\n", name, p.Kind(), p.Improves())
	}

	// Plan using only the custom patterns to see exactly what they add.
	flow := poiesis.TPCDSSales()
	planner := poiesis.NewPlanner(reg, poiesis.Options{
		Palette: []string{"EncryptInTransit", "EnableRBAC"},
		Policy:  poiesis.ExhaustivePolicy{},
		Depth:   1,
	})
	res, err := planner.Plan(flow, poiesis.TPCDSBinding(flow, 1500, 3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncustom patterns produced %d alternatives on %q:\n",
		len(res.Alternatives), flow.Name)
	for _, alt := range res.Alternatives {
		fmt.Printf("  %-60s manageability=%.4f performance=%.4f\n",
			alt.Label(),
			alt.Report.Score(poiesis.Manageability),
			alt.Report.Score(poiesis.Performance))
	}
}
