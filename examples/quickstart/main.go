// Quickstart: load a demo ETL flow, generate alternative designs with the
// default pattern palette, and print the Pareto frontier with quality
// measures — the minimal end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"poiesis"
)

func main() {
	// The Fig. 2 purchases flow from the TPC-DS-based demo process.
	flow := poiesis.TPCDSPurchases()
	fmt.Printf("initial flow %q: %d operations, %d transitions\n\n",
		flow.Name, flow.Len(), flow.EdgeCount())

	// Plan with defaults: greedy policy, depth 2, skyline over performance /
	// data quality / reliability.
	planner := poiesis.NewPlanner(nil, poiesis.Options{})
	result, err := planner.Plan(flow, poiesis.TPCDSBinding(flow, 2000, 1))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("generated %d alternatives (%d duplicates removed); skyline has %d designs\n\n",
		len(result.Alternatives), result.Stats.Deduped, len(result.SkylineIdx))

	fmt.Print(poiesis.RenderScatterASCII(result, poiesis.ScatterOptions{
		Title: "Alternative ETL flows — skyline highlighted (@)",
	}))

	fmt.Println("\nPareto-frontier designs:")
	for i, alt := range result.Skyline() {
		fmt.Printf("  [%d] %s\n", i, alt.Label())
		fmt.Printf("      performance=%.3f data_quality=%.3f reliability=%.3f\n",
			alt.Report.Score(poiesis.Performance),
			alt.Report.Score(poiesis.DataQuality),
			alt.Report.Score(poiesis.Reliability))
	}

	// Pick the best design under equal-weight goals and show the Fig. 5
	// relative-change bars against the initial flow.
	goals := poiesis.NewGoals(map[poiesis.Characteristic]float64{
		poiesis.Performance: 1, poiesis.DataQuality: 1, poiesis.Reliability: 1,
	})
	best := result.Best(goals)
	fmt.Printf("\nbest design: %s\n\n", best.Label())
	fmt.Print(poiesis.RenderRelativeBars(best, result, nil))
}
