// Iterative redesign session on the TPC-H-based demo process: the analyst
// explores the alternative space, selects a skyline design, and iterates —
// "new iteration cycles commence, until the user considers that the flow
// adequately satisfies quality goals". Goals prioritise reliability; a
// constraint keeps the cycle time within an SLA.
package main

import (
	"fmt"
	"log"

	"poiesis"
)

func main() {
	flow := poiesis.TPCHRevenue()
	bind := poiesis.TPCHBinding(flow, 3000, 7)

	goals := poiesis.NewGoals(map[poiesis.Characteristic]float64{
		poiesis.Reliability: 2,
		poiesis.DataQuality: 1,
		poiesis.Performance: 1,
	})

	planner := poiesis.NewPlanner(nil, poiesis.Options{
		Policy: poiesis.GoalDrivenPolicy{Goals: goals, TopK: 12},
		Depth:  2,
		Constraints: []poiesis.Constraint{
			// SLA: composite performance must not collapse below 0.35 while
			// we chase reliability.
			poiesis.MinScore(poiesis.Performance, 0.35),
		},
	})
	session := poiesis.NewSession(planner, flow, bind)

	const iterations = 3
	for it := 1; it <= iterations; it++ {
		res, err := session.Explore()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("iteration %d: %d alternatives, %d on the skyline (%d rejected by constraints)\n",
			it, len(res.Alternatives), len(res.SkylineIdx), res.Stats.ConstraintRejected)

		if len(res.SkylineIdx) == 0 {
			fmt.Println("no admissible designs left; stopping")
			break
		}
		// Auto-select the skyline member with the best goal utility,
		// simulating the analyst's click.
		bestIdx, bestU := 0, -1.0
		for i, alt := range res.Skyline() {
			if u := goals.Utility(alt.Report); u > bestU {
				bestIdx, bestU = i, u
			}
		}
		alt, err := session.Select(bestIdx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  selected: %s (utility %.4f)\n", alt.Label(), bestU)
		fmt.Printf("  reliability %.4f -> %.4f | flow now %d operations\n\n",
			res.Initial.Report.Score(poiesis.Reliability),
			alt.Report.Score(poiesis.Reliability),
			alt.Graph.Len())
	}

	fmt.Println("session history:")
	for _, rec := range session.History() {
		fmt.Printf("  #%d %-60s mean skyline score %.4f -> %.4f\n",
			rec.Iteration, rec.Label, rec.ScoreBefore, rec.ScoreAfter)
	}

	// The final design can be exported back to xLM for deployment.
	out, err := poiesis.EncodeXLM(session.Current())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal design exports to %d bytes of xLM (%d operations)\n",
		len(out), session.Current().Len())
}
