// Interactive exploration (demo part P1), scripted: generate the alternative
// space for the TPC-DS sales process, render the multidimensional scatter
// plot with the skyline, "click" a skyline point to see the flow and its
// measures, and expand a composite measure into its detailed composing
// metrics. Also writes the Fig. 4 scatter as an SVG document.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"poiesis"
)

func main() {
	flow := poiesis.TPCDSSales()
	planner := poiesis.NewPlanner(nil, poiesis.Options{
		Policy: poiesis.GreedyPolicy{TopK: 2},
		Depth:  2,
	})
	res, err := planner.Plan(flow, poiesis.TPCDSBinding(flow, 1500, 11))
	if err != nil {
		log.Fatal(err)
	}

	// The scatter plot the user scrolls over (Fig. 4).
	fmt.Print(poiesis.RenderScatterASCII(res, poiesis.ScatterOptions{
		Title: "Multidimensional scatter-plot of alternative ETL flows",
	}))

	// "By selecting one point — corresponding to one ETL flow — the process
	// representation and the measures for this flow will appear."
	if len(res.SkylineIdx) == 0 {
		log.Fatal("empty skyline")
	}
	selected := res.Skyline()[0]
	fmt.Printf("\nselected point: %s\n\n", selected.Label())
	fmt.Println("process representation:")
	fmt.Print(selected.Graph.String())
	fmt.Println("\nmeasures:")
	fmt.Print(selected.Report.String())

	// "Click on any measure so that it expands to more detailed composing
	// metrics": drill into data quality only.
	fmt.Println("relative change vs initial (data_quality expanded):")
	fmt.Print(poiesis.RenderRelativeBars(selected, res, map[string]bool{
		"data_quality": true,
	}))

	// Persist both figures for the write-up.
	out := filepath.Join(os.TempDir(), "poiesis_fig4.svg")
	svg := poiesis.RenderScatterSVG(res, poiesis.ScatterOptions{
		Title: "Alternative ETL flows",
	})
	if err := os.WriteFile(out, []byte(svg), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %s (%d bytes)\n", out, len(svg))

	outBars := filepath.Join(os.TempDir(), "poiesis_fig5.svg")
	bars := poiesis.RenderRelativeBarsSVG(selected, res, map[string]bool{"*": true},
		"Relative change vs initial flow")
	if err := os.WriteFile(outBars, []byte(bars), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", outBars, len(bars))
}
