// Package sim executes ETL flows on synthetic data and produces the run
// traces that the quality measures consume. It substitutes the runtime
// monitoring infrastructure of the POIESIS deployment: the paper's dynamic
// measures are "obtained from analysis of historical traces capturing the
// runtime behaviour of ETL components", and this engine generates those
// traces deterministically.
//
// The engine separates the deterministic data path (executed once per design)
// from the stochastic failure path (sampled many times per design via
// Monte-Carlo), so evaluating reliability over N runs does not re-execute
// the row pipeline N times.
//
// For the planner's explore loop — thousands of alternatives that each differ
// from a parent flow by a single pattern application — the engine supports
// delta evaluation: ExecuteDelta memoizes every node's materialized output in
// an EvalCache keyed by the node's upstream-cone fingerprint
// (etl.Graph.ConeKeys), so a candidate flow re-simulates only the dirty cone
// downstream of the application point and splices cached upstream results in.
package sim

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"poiesis/internal/data"
	"poiesis/internal/etl"
)

// Binding connects the extract operations of a flow to synthetic sources.
// Keys are node IDs of OpExtract nodes; missing bindings get a default
// source derived from the node's output schema.
type Binding map[etl.NodeID]data.SourceSpec

// Config tunes the engine.
type Config struct {
	// DefaultRows is the cardinality used for extract nodes without an
	// explicit binding.
	DefaultRows int
	// Seed drives defect injection for unbound sources and failure
	// sampling.
	Seed uint64
	// RetryBudget is how many operation failures a run may absorb before it
	// is declared failed.
	RetryBudget int
	// Runs is the Monte-Carlo sample size for failure behaviour.
	Runs int
	// PipelineOverlap in [0,1] models how much of a non-blocking operation's
	// busy time overlaps with its upstream producer (1 = perfect pipelining,
	// 0 = staged execution). Blocking operations never overlap.
	PipelineOverlap float64
}

// DefaultConfig returns the configuration used by the benchmarks.
func DefaultConfig() Config {
	return Config{
		DefaultRows:     5000,
		Seed:            1,
		RetryBudget:     8,
		Runs:            64,
		PipelineOverlap: 0.7,
	}
}

// Profile is the deterministic execution profile of one flow: per-node
// timings and cardinalities plus output data quality. The failure sampler
// and the measures both read it.
//
// Per-node values are stored in dense slices indexed by the node's position
// in Order (the topological order of the flow), not in maps: the planner
// builds one profile per alternative, and the dense layout removes a map
// allocation and hashing per node per field. Use IndexOf (or the *Of
// accessors) to address a node by ID.
type Profile struct {
	Flow  string
	Order []etl.NodeID
	pos   map[etl.NodeID]int

	// RowsIn and RowsOut are per-node input/output cardinalities, indexed by
	// topo position (aligned with Order).
	RowsIn  []int
	RowsOut []int
	// TimeMs is the busy time of each node (startup + per-tuple work over
	// parallelism).
	TimeMs []float64
	// Completion is the finish time of each node under the (partially
	// pipelined) stage model.
	Completion []float64
	// RestartMs is, per node, the re-execution time needed when the node
	// fails: time back to the nearest upstream savepoint (or the sources).
	RestartMs []float64
	// RestartFromCheckpoint marks nodes whose recovery starts at a savepoint.
	RestartFromCheckpoint []bool

	// FirstPassMs is the failure-free makespan.
	FirstPassMs float64
	// LatencyPerTupleMs is the per-tuple latency along the critical path.
	LatencyPerTupleMs float64

	RowsLoaded int
	// Output quality at the sinks.
	OutRows      int
	OutNullCells int
	OutCells     int
	OutDupRows   int
	OutErrRows   int

	// MemRowsPeak is the largest materialisation by a blocking operation.
	MemRowsPeak int
}

func newProfile(flow string, order []etl.NodeID) *Profile {
	nn := len(order)
	pos := make(map[etl.NodeID]int, nn)
	for i, id := range order {
		pos[id] = i
	}
	return &Profile{
		Flow:                  flow,
		Order:                 order,
		pos:                   pos,
		RowsIn:                make([]int, nn),
		RowsOut:               make([]int, nn),
		TimeMs:                make([]float64, nn),
		Completion:            make([]float64, nn),
		RestartMs:             make([]float64, nn),
		RestartFromCheckpoint: make([]bool, nn),
	}
}

// IndexOf returns the topo position of the node in the profile's Order, or
// -1 when the node is unknown.
func (p *Profile) IndexOf(id etl.NodeID) int {
	if i, ok := p.pos[id]; ok {
		return i
	}
	return -1
}

// RowsInOf returns the input cardinality of the node, 0 for unknown IDs.
func (p *Profile) RowsInOf(id etl.NodeID) int {
	if i, ok := p.pos[id]; ok {
		return p.RowsIn[i]
	}
	return 0
}

// RowsOutOf returns the output cardinality of the node, 0 for unknown IDs.
func (p *Profile) RowsOutOf(id etl.NodeID) int {
	if i, ok := p.pos[id]; ok {
		return p.RowsOut[i]
	}
	return 0
}

// TimeOf returns the busy time of the node, 0 for unknown IDs.
func (p *Profile) TimeOf(id etl.NodeID) float64 {
	if i, ok := p.pos[id]; ok {
		return p.TimeMs[i]
	}
	return 0
}

// CompletionOf returns the completion time of the node, 0 for unknown IDs.
func (p *Profile) CompletionOf(id etl.NodeID) float64 {
	if i, ok := p.pos[id]; ok {
		return p.Completion[i]
	}
	return 0
}

// RestartOf returns the recovery re-execution time of the node, 0 for
// unknown IDs.
func (p *Profile) RestartOf(id etl.NodeID) float64 {
	if i, ok := p.pos[id]; ok {
		return p.RestartMs[i]
	}
	return 0
}

// RestartsFromCheckpoint reports whether the node recovers from a savepoint.
func (p *Profile) RestartsFromCheckpoint(id etl.NodeID) bool {
	if i, ok := p.pos[id]; ok {
		return p.RestartFromCheckpoint[i]
	}
	return false
}

// Engine executes flows. It is stateless; methods are safe for concurrent
// use with distinct arguments.
type Engine struct {
	cfg Config
	// row selects the row-at-a-time oracle data path instead of the default
	// columnar one. The two paths produce byte-identical profiles.
	row bool
}

// NewEngine returns an engine with the given configuration, running the
// columnar data path (typed column batches, selection vectors, column-wise
// hashing).
func NewEngine(cfg Config) *Engine {
	if cfg.DefaultRows <= 0 {
		cfg.DefaultRows = 1000
	}
	if cfg.Runs <= 0 {
		cfg.Runs = 32
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = 8
	}
	if cfg.PipelineOverlap < 0 {
		cfg.PipelineOverlap = 0
	}
	if cfg.PipelineOverlap > 1 {
		cfg.PipelineOverlap = 1
	}
	return &Engine{cfg: cfg}
}

// NewRowEngine returns an engine that executes row-at-a-time — the oracle the
// columnar path is validated against. Profiles are byte-identical to
// NewEngine's; only the internal representation (and its cost) differs.
func NewRowEngine(cfg Config) *Engine {
	e := NewEngine(cfg)
	e.row = true
	return e
}

// Columnar reports whether the engine runs the columnar data path.
func (e *Engine) Columnar() bool { return !e.row }

// subPool recycles backing arrays of one element type inside a batchArena.
// get hands out zero-length buffers; reset makes every buffer reusable.
type subPool[T any] struct {
	bufs [][]T
	next int
}

// get returns a zero-length buffer with at least the given capacity,
// reusing a pooled backing array when one is large enough.
func (p *subPool[T]) get(n int) []T {
	for i := p.next; i < len(p.bufs); i++ {
		if cap(p.bufs[i]) >= n {
			p.bufs[i], p.bufs[p.next] = p.bufs[p.next], p.bufs[i]
			b := p.bufs[p.next][:0]
			p.next++
			return b
		}
	}
	b := make([]T, 0, n)
	p.bufs = append(p.bufs, b)
	last := len(p.bufs) - 1
	p.bufs[last], p.bufs[p.next] = p.bufs[p.next], p.bufs[last]
	p.next++
	return b
}

func (p *subPool[T]) reset() { p.next = 0 }

// batchArena recycles the backing arrays the engine uses for routing,
// flattening and per-operator scratch: row batches for the row oracle, plus
// typed sub-pools (selection vectors, hash scratch, column storage) for the
// columnar path. Arenas are pooled via sync.Pool: a full (uncached) execution
// borrows one, hands out buffers as needed and returns the arena — with all
// its buffers — when the execution's profile has been assembled, so
// steady-state full evaluations allocate no new batch arrays.
//
// Arenas are only used when no EvalCache is in play: cached node outputs (and
// everything they alias through pass-through operations) outlive the
// execution, so delta evaluation allocates its batches normally.
type batchArena struct {
	rows  subPool[etl.Row]
	sels  subPool[int32]
	u64s  subPool[uint64]
	i64s  subPool[int64]
	f64s  subPool[float64]
	strs  subPool[string]
	bools subPool[bool]
	anys  subPool[etl.Value]
}

var arenaPool = sync.Pool{New: func() any { return &batchArena{} }}

// get returns a zero-length row buffer with at least the given capacity.
func (a *batchArena) get(n int) []etl.Row {
	return a.rows.get(n)
}

// release makes every buffer reusable and returns the arena to the pool. Cell
// pointers linger in the backing arrays until the next reuse or pool GC; the
// data is per-execution synthetic scratch, so the retention window is short.
func (a *batchArena) release() {
	a.rows.reset()
	a.sels.reset()
	a.u64s.reset()
	a.i64s.reset()
	a.f64s.reset()
	a.strs.reset()
	a.bools.reset()
	a.anys.reset()
	arenaPool.Put(a)
}

// scratchFor returns an output buffer for a row-dropping operation over rows:
// arena-backed during full executions, freshly allocated (zero-cap append)
// when results may be retained by an EvalCache.
func scratchFor(ar *batchArena, rows []etl.Row) []etl.Row {
	if ar != nil {
		return ar.get(len(rows))
	}
	return rows[:0:0]
}

// ExecStats reports how one execution's data path was served: ConeHits
// nodes were spliced from the cone cache, Executed nodes were actually
// simulated. It lives outside Profile on purpose — profiles from delta and
// full evaluations must stay byte-identical, so bookkeeping about *how* a
// profile was obtained is returned out-of-band to callers that ask (the
// planner's tracing instrumentation).
type ExecStats struct {
	Nodes    int // nodes in the flow
	ConeHits int // nodes served from the cone cache
	Executed int // nodes simulated this run
}

// Execute runs the data path of the flow once and returns its profile.
func (e *Engine) Execute(g *etl.Graph, bind Binding) (*Profile, error) {
	if e.row {
		return e.execute(g, bind, nil, nil)
	}
	return e.executeCols(g, bind, nil, nil)
}

// ExecuteDelta runs the data path reusing (and populating) the per-node
// results memoized in cache; a nil cache degenerates to Execute. Nodes whose
// upstream-cone fingerprint hits the cache contribute their materialized
// outputs without re-simulation, so the row-level work is proportional to
// the dirty region of the flow, not its size. The resulting profile is
// byte-identical to a full execution.
//
// The cache must only be shared between evaluations that use the same engine
// configuration and the same binding (the planner scopes one cache per
// planning run). Sharing a cache across concurrent goroutines is safe.
func (e *Engine) ExecuteDelta(g *etl.Graph, bind Binding, cache *EvalCache) (*Profile, error) {
	return e.ExecuteDeltaStats(g, bind, cache, nil)
}

// ExecuteDeltaStats is ExecuteDelta reporting splice accounting into stats
// (ignored when nil). Collection is a few integer increments; callers that
// do not need the numbers pass nil and pay nothing.
func (e *Engine) ExecuteDeltaStats(g *etl.Graph, bind Binding, cache *EvalCache, stats *ExecStats) (*Profile, error) {
	if e.row {
		return e.execute(g, bind, cache, stats)
	}
	return e.executeCols(g, bind, cache, stats)
}

func (e *Engine) execute(g *etl.Graph, bind Binding, cache *EvalCache, stats *ExecStats) (*Profile, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	p := newProfile(g.Name, order)
	nn := len(order)

	var keys []etl.ConeKey
	var recs []*coneRecord
	if cache != nil {
		keys = g.ConeKeys(order)
		recs = make([]*coneRecord, nn)
	}
	var ar *batchArena
	if cache == nil {
		ar = arenaPool.Get().(*batchArena)
		defer ar.release()
	}

	// outs[i] holds node i's pre-routing output batches; routing to specific
	// successors is derived lazily, only when a (dirty) consumer needs it.
	outs := make([][][]etl.Row, nn)
	flat := make([]int, nn)
	var routed []map[etl.NodeID][]etl.Row
	routedFor := func(i int) map[etl.NodeID][]etl.Row {
		if routed == nil {
			routed = make([]map[etl.NodeID][]etl.Row, nn)
		}
		if routed[i] == nil {
			id := order[i]
			routed[i] = route(g.Node(id), outs[i], g.SuccView(id), ar)
		}
		return routed[i]
	}

	if stats != nil {
		stats.Nodes += nn
	}
	for i, id := range order {
		n := g.Node(id)
		nsucc := len(g.SuccView(id))
		if cache != nil {
			if rec := cache.lookup(keys[i]); rec != nil {
				if stats != nil {
					stats.ConeHits++
				}
				recs[i] = rec
				outs[i], flat[i] = rec.rowBatches(), rec.flat
				p.RowsIn[i] = rec.rowsIn
				e.finishNode(p, n, i, flat[i], nsucc)
				continue
			}
		}
		if stats != nil {
			stats.Executed++
		}

		var in [][]etl.Row
		rowsIn := 0
		for _, pred := range g.PredView(id) {
			b := routedFor(p.pos[pred])[id]
			in = append(in, b)
			rowsIn += len(b)
		}
		out, err := e.apply(g, n, in, bind, ar)
		if err != nil {
			return nil, fmt.Errorf("sim: executing %s: %w", n, err)
		}
		outs[i] = out
		f := 0
		for _, b := range out {
			f += len(b)
		}
		flat[i] = f
		if n.Kind.IsSource() {
			rowsIn = f
		}
		p.RowsIn[i] = rowsIn
		e.finishNode(p, n, i, f, nsucc)

		if cache != nil {
			rec := newRowRecord(out, rowsIn, f)
			if n.Kind.IsSink() && nsucc == 0 {
				rows := flatten(out, nil)
				schema := g.InputSchema(id)
				rec.sink = true
				rec.sinkStats = data.Measure(schema, rows)
				rec.sinkRows = len(rows)
				rec.sinkCells = rec.sinkStats.Rows * schema.Len()
			}
			recs[i] = cache.store(keys[i], rec)
		}
	}

	e.computeSchedule(g, p)
	e.computeRecovery(g, p)
	e.measureOutputs(g, p, outs, recs)
	return p, nil
}

// finishNode derives the routing-dependent profile values of node i from its
// flattened output cardinality. Both the full and the cached path go through
// this single formula, which is what makes delta profiles byte-identical to
// full ones: timing is always recomputed from the concrete graph (so cached
// rows can be shared across designs that differ only in cost parameters).
func (e *Engine) finishNode(p *Profile, n *etl.Node, i, flat, nsucc int) {
	totalOut := flat
	if nsucc > 1 {
		switch {
		case n.Kind == etl.OpPartition:
			// Rows are distributed, not copied.
		case n.Kind == etl.OpSplit && n.Param("route") == "hash":
			// Ditto for hash routing.
		default:
			// Copy semantics: every successor receives the full stream.
			totalOut = nsucc * flat
		}
	}
	p.RowsOut[i] = totalOut
	work := float64(p.RowsIn[i])
	if n.Kind.IsSource() {
		work = float64(totalOut)
	}
	p.TimeMs[i] = n.Cost.Startup + work*n.WorkPerTuple()
	if n.Kind.IsBlocking() && p.RowsIn[i] > p.MemRowsPeak {
		p.MemRowsPeak = p.RowsIn[i]
	}
}

// flatten merges output batches into one stream; a single batch is returned
// as-is. With an arena the merge buffer is recycled scratch.
func flatten(batches [][]etl.Row, ar *batchArena) []etl.Row {
	if len(batches) == 1 {
		return batches[0]
	}
	total := 0
	for _, b := range batches {
		total += len(b)
	}
	var out []etl.Row
	if ar != nil {
		out = ar.get(total)
	} else if total > 0 {
		out = make([]etl.Row, 0, total)
	}
	for _, b := range batches {
		out = append(out, b...)
	}
	return out
}

// route distributes a node's output rows across its successors according to
// the node's routing semantics.
func route(n *etl.Node, out [][]etl.Row, succs []etl.NodeID, ar *batchArena) map[etl.NodeID][]etl.Row {
	m := make(map[etl.NodeID][]etl.Row, len(succs))
	if len(succs) == 0 {
		return m
	}
	all := flatten(out, ar)
	switch n.Kind {
	case etl.OpPartition:
		// Horizontal partition: round-robin across branches.
		k := len(succs)
		dests := make([][]etl.Row, k)
		for j := range dests {
			cnt := len(all) / k
			if j < len(all)%k {
				cnt++
			}
			if ar != nil {
				dests[j] = ar.get(cnt)
			} else if cnt > 0 {
				dests[j] = make([]etl.Row, 0, cnt)
			}
		}
		for i, r := range all {
			j := i % k
			dests[j] = append(dests[j], r)
		}
		for j, s := range succs {
			m[s] = dests[j]
		}
	case etl.OpSplit:
		if n.Param("route") == "hash" && len(succs) > 1 {
			k := len(succs)
			dests := make([][]etl.Row, k)
			if ar != nil {
				for j := range dests {
					dests[j] = ar.get(len(all)/k + 8)
				}
			}
			for i, r := range all {
				j := int(hashRow(r, i) % uint64(k))
				dests[j] = append(dests[j], r)
			}
			for j, s := range succs {
				m[s] = dests[j]
			}
		} else {
			// Copy semantics: each branch receives the full stream (vertical
			// split of required attributes happens in downstream projects).
			for _, s := range succs {
				m[s] = all
			}
		}
	default:
		if len(succs) == 1 {
			m[succs[0]] = all
		} else {
			for _, s := range succs {
				m[s] = all
			}
		}
	}
	return m
}

// hashRow hashes the row's first value (FNV-1a over its rendered form) mixed
// with the row ordinal. The common value types take allocation-free fast
// paths that hash exactly the bytes fmt.Sprintf("%v", ...) would produce, so
// routing decisions are unchanged while hash-split flows stop paying one
// allocation per routed row. It is the oracle the columnar path's
// selectHashes reproduces byte for byte.
func hashRow(r etl.Row, i int) uint64 {
	h := hashOrdinal(i)
	if len(r) > 0 && r[0] != nil {
		h = hashValue(h, r[0])
	}
	return h
}

// hashOrdinal seeds the row hash with the row ordinal, FNV-mixed before any
// value bytes so per-row hashes cannot be factored into a per-value hash.
func hashOrdinal(i int) uint64 {
	h := uint64(1469598103934665603)
	h ^= uint64(i)
	h *= 1099511628211
	return h
}

// Type tags folded into the hash for values outside the fast paths, so two
// distinct values that happen to render identically (a []byte and its string,
// a fmt.Stringer and its output) cannot collide deterministically in dedup or
// hash-partition decisions.
const (
	hashTagBytes = 0x01
	hashTagTime  = 0x02
	hashTagOther = 0x03
)

// hashValue folds one value into h. The int/float/string/bool fast paths hash
// exactly the bytes their %v rendering produces (no tag — their renderings
// cannot collide across these types in practice and changing them would
// reshuffle every simulated routing decision). Other types hash a type tag
// alongside the rendered form: []byte and time.Time explicitly, and everything
// else as tag + dynamic type + rendering.
func hashValue(h uint64, val etl.Value) uint64 {
	var buf [48]byte
	switch v := val.(type) {
	case string:
		return hashStringInto(h, v)
	case int64:
		return hashBytes(h, strconv.AppendInt(buf[:0], v, 10))
	case int:
		return hashBytes(h, strconv.AppendInt(buf[:0], int64(v), 10))
	case float64:
		return hashBytes(h, strconv.AppendFloat(buf[:0], v, 'g', -1, 64))
	case bool:
		if v {
			return hashStringInto(h, "true")
		}
		return hashStringInto(h, "false")
	case []byte:
		h ^= hashTagBytes
		h *= 1099511628211
		return hashBytes(h, v)
	case time.Time:
		h ^= hashTagTime
		h *= 1099511628211
		return hashBytes(h, v.AppendFormat(buf[:0], time.RFC3339Nano))
	default:
		h ^= hashTagOther
		h *= 1099511628211
		// Cold fallback for dynamic types no column kind covers; never hit
		// by the typed kernels, and the rendered form is the documented
		// canonical identity (colAny equality renders the same way).
		//lint:ignore nofmtkernel off-hot-path fallback for unknown dynamic types
		h = hashStringInto(h, fmt.Sprintf("%T", val))
		h ^= 0x00
		h *= 1099511628211
		//lint:ignore nofmtkernel off-hot-path fallback for unknown dynamic types
		return hashStringInto(h, fmt.Sprintf("%v", val))
	}
}

func hashStringInto(h uint64, s string) uint64 {
	for j := 0; j < len(s); j++ {
		h ^= uint64(s[j])
		h *= 1099511628211
	}
	return h
}

func hashBytes(h uint64, b []byte) uint64 {
	for j := 0; j < len(b); j++ {
		h ^= uint64(b[j])
		h *= 1099511628211
	}
	return h
}

// computeSchedule derives completion times under a partially pipelined stage
// model: a node may start before its producer finished when both are
// non-blocking, controlled by cfg.PipelineOverlap.
func (e *Engine) computeSchedule(g *etl.Graph, p *Profile) {
	for i, id := range p.Order {
		n := g.Node(id)
		start := 0.0
		latestPred := 0.0
		for _, pred := range g.PredView(id) {
			pi := p.pos[pred]
			pn := g.Node(pred)
			pc := p.Completion[pi]
			if pc > latestPred {
				latestPred = pc
			}
			if !n.Kind.IsBlocking() && !pn.Kind.IsBlocking() {
				// Overlap with the producer's busy window.
				pc -= e.cfg.PipelineOverlap * p.TimeMs[pi]
				if floor := p.Completion[pi] - p.TimeMs[pi]; pc < floor {
					pc = floor
				}
			}
			if pc > start {
				start = pc
			}
		}
		c := start + p.TimeMs[i]
		// A consumer cannot finish before its producers stop delivering.
		if c < latestPred {
			c = latestPred
		}
		p.Completion[i] = c
		if c > p.FirstPassMs {
			p.FirstPassMs = c
		}
	}
	// Per-tuple latency along the critical path.
	_, lat := g.CriticalPath(func(n *etl.Node) float64 { return n.WorkPerTuple() })
	p.LatencyPerTupleMs = lat
}

// computeRecovery precomputes, for every node, how much work must be redone
// when it fails: the completion time distance back to the nearest upstream
// savepoint, or back to time zero when none exists.
func (e *Engine) computeRecovery(g *etl.Graph, p *Profile) {
	// best[i] = max completion time over upstream checkpoints of node i.
	nn := len(p.Order)
	best := make([]float64, nn)
	hasCP := make([]bool, nn)
	for i, id := range p.Order {
		b, ok := 0.0, false
		for _, pred := range g.PredView(id) {
			pi := p.pos[pred]
			pb, pok := best[pi], hasCP[pi]
			if g.Node(pred).Kind == etl.OpCheckpoint {
				pb, pok = p.Completion[pi], true
			}
			if pok && pb > b {
				b, ok = pb, true
			}
		}
		best[i], hasCP[i] = b, ok
		restart := p.Completion[i] - b
		if restart < 0 {
			restart = 0
		}
		p.RestartMs[i] = restart
		p.RestartFromCheckpoint[i] = ok
	}
}

// measureOutputs scans the rows delivered to the sinks and records quality
// statistics. Sinks whose upstream cone hit the cache contribute their
// memoized statistics without re-scanning rows.
func (e *Engine) measureOutputs(g *etl.Graph, p *Profile, outs [][][]etl.Row, recs []*coneRecord) {
	var sinks []int
	for i, id := range p.Order {
		if g.Node(id).Kind.IsSink() && len(g.SuccView(id)) == 0 {
			sinks = append(sinks, i)
		}
	}
	sort.Slice(sinks, func(a, b int) bool { return p.Order[sinks[a]] < p.Order[sinks[b]] })
	for _, i := range sinks {
		if recs != nil && recs[i] != nil && recs[i].sink {
			rec := recs[i]
			p.RowsLoaded += rec.sinkRows
			p.OutRows += rec.sinkStats.Rows
			p.OutNullCells += rec.sinkStats.NullCells
			p.OutCells += rec.sinkCells
			p.OutDupRows += rec.sinkStats.Duplicates
			p.OutErrRows += rec.sinkStats.Errors
			continue
		}
		id := p.Order[i]
		rows := flatten(outs[i], nil)
		schema := g.InputSchema(id)
		st := data.Measure(schema, rows)
		p.RowsLoaded += len(rows)
		p.OutRows += st.Rows
		p.OutNullCells += st.NullCells
		p.OutCells += st.Rows * schema.Len()
		p.OutDupRows += st.Duplicates
		p.OutErrRows += st.Errors
	}
}

// defaultSpec synthesises a binding for an unbound extract node.
func (e *Engine) defaultSpec(n *etl.Node) data.SourceSpec {
	return data.SourceSpec{
		Name:   n.Name,
		Schema: n.Out,
		Rows:   e.cfg.DefaultRows,
		Defects: data.Defects{
			NullRate:  0.05,
			DupRate:   0.02,
			ErrorRate: 0.03,
		},
		UpdatesPerHour: 1,
		Seed:           e.cfg.Seed ^ hashString(string(n.ID)),
	}
}

func hashString(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// SourceUpdatesPerHour returns the maximum refresh frequency over the flow's
// bound sources (default 1/h for unbound ones).
func (e *Engine) SourceUpdatesPerHour(g *etl.Graph, bind Binding) float64 {
	max := 0.0
	for _, n := range g.Sources() {
		f := 1.0
		if spec, ok := bind[n.ID]; ok && spec.UpdatesPerHour > 0 {
			f = spec.UpdatesPerHour
		}
		if f > max {
			max = f
		}
	}
	if max == 0 {
		max = 1
	}
	return max
}

// describe is used in error paths and tests.
func describe(batches [][]etl.Row) string {
	parts := make([]string, len(batches))
	for i, b := range batches {
		parts[i] = strconv.Itoa(len(b))
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// executeCols is the columnar twin of execute: identical control flow, cache
// protocol and profile formulas, with node outputs held as column batches
// instead of row slices. Both paths go through finishNode, computeSchedule
// and computeRecovery, and the data kernels are value-equivalent, so the
// resulting profile is byte-identical to the row oracle's.
func (e *Engine) executeCols(g *etl.Graph, bind Binding, cache *EvalCache, stats *ExecStats) (*Profile, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	p := newProfile(g.Name, order)
	nn := len(order)

	var keys []etl.ConeKey
	var recs []*coneRecord
	if cache != nil {
		keys = g.ConeKeys(order)
		recs = make([]*coneRecord, nn)
	}
	var ar *batchArena
	if cache == nil {
		ar = arenaPool.Get().(*batchArena)
		defer ar.release()
	}

	// outs[i] holds node i's pre-routing output batches; routing to specific
	// successors is derived lazily, only when a (dirty) consumer needs it.
	outs := make([][]*colBatch, nn)
	flat := make([]int, nn)
	var routed []map[etl.NodeID]*colBatch
	routedFor := func(i int) map[etl.NodeID]*colBatch {
		if routed == nil {
			routed = make([]map[etl.NodeID]*colBatch, nn)
		}
		if routed[i] == nil {
			id := order[i]
			routed[i] = colRoute(g.Node(id), outs[i], g.SuccView(id), ar)
		}
		return routed[i]
	}

	if stats != nil {
		stats.Nodes += nn
	}
	for i, id := range order {
		n := g.Node(id)
		nsucc := len(g.SuccView(id))
		if cache != nil {
			if rec := cache.lookup(keys[i]); rec != nil {
				if stats != nil {
					stats.ConeHits++
				}
				recs[i] = rec
				outs[i], flat[i] = rec.colBatches(), rec.flat
				p.RowsIn[i] = rec.rowsIn
				e.finishNode(p, n, i, flat[i], nsucc)
				continue
			}
		}
		if stats != nil {
			stats.Executed++
		}

		var in []*colBatch
		rowsIn := 0
		for _, pred := range g.PredView(id) {
			b := routedFor(p.pos[pred])[id]
			in = append(in, b)
			rowsIn += b.len()
		}
		out, err := e.applyCols(g, n, in, bind, ar)
		if err != nil {
			return nil, fmt.Errorf("sim: executing %s: %w", n, err)
		}
		outs[i] = out
		f := 0
		for _, b := range out {
			f += b.len()
		}
		flat[i] = f
		if n.Kind.IsSource() {
			rowsIn = f
		}
		p.RowsIn[i] = rowsIn
		e.finishNode(p, n, i, f, nsucc)

		if cache != nil {
			rec := newColRecord(out, rowsIn, f)
			if n.Kind.IsSink() && nsucc == 0 {
				all := colFlatten(out, nil)
				schema := g.InputSchema(id)
				rec.sink = true
				rec.sinkStats = measureColumns(schema, all)
				rec.sinkRows = all.len()
				rec.sinkCells = rec.sinkStats.Rows * schema.Len()
			}
			recs[i] = cache.store(keys[i], rec)
		}
	}

	e.computeSchedule(g, p)
	e.computeRecovery(g, p)
	e.measureOutputsCols(g, p, outs, recs)
	return p, nil
}

// colRoute distributes a node's output batches across its successors with the
// same semantics as route, but partition and hash-split emit selection
// vectors over the shared flattened batch instead of copying rows.
func colRoute(n *etl.Node, out []*colBatch, succs []etl.NodeID, ar *batchArena) map[etl.NodeID]*colBatch {
	m := make(map[etl.NodeID]*colBatch, len(succs))
	if len(succs) == 0 {
		return m
	}
	all := colFlatten(out, ar)
	if all.len() == 0 {
		for _, s := range succs {
			m[s] = nil
		}
		return m
	}
	switch n.Kind {
	case etl.OpPartition:
		// Horizontal partition: round-robin across branches.
		k := len(succs)
		nrows := all.len()
		dests := make([][]int32, k)
		for j := range dests {
			cnt := nrows / k
			if j < nrows%k {
				cnt++
			}
			dests[j] = selScratch(ar, cnt)
		}
		for i := 0; i < nrows; i++ {
			j := i % k
			dests[j] = append(dests[j], int32(all.phys(i)))
		}
		for j, s := range succs {
			m[s] = withSel(all, dests[j])
		}
	case etl.OpSplit:
		if n.Param("route") == "hash" && len(succs) > 1 {
			k := len(succs)
			nrows := all.len()
			hashes := u64Scratch(ar, nrows)
			all.selectHashes(hashes)
			dests := make([][]int32, k)
			for j := range dests {
				dests[j] = selScratch(ar, nrows/k+8)
			}
			for i := 0; i < nrows; i++ {
				j := int(hashes[i] % uint64(k))
				dests[j] = append(dests[j], int32(all.phys(i)))
			}
			for j, s := range succs {
				m[s] = withSel(all, dests[j])
			}
		} else {
			// Copy semantics: each branch receives the full stream.
			for _, s := range succs {
				m[s] = all
			}
		}
	default:
		for _, s := range succs {
			m[s] = all
		}
	}
	return m
}

// measureOutputsCols is measureOutputs over columnar sink outputs: the same
// statistics, produced by per-column scans instead of row materialization.
func (e *Engine) measureOutputsCols(g *etl.Graph, p *Profile, outs [][]*colBatch, recs []*coneRecord) {
	var sinks []int
	for i, id := range p.Order {
		if g.Node(id).Kind.IsSink() && len(g.SuccView(id)) == 0 {
			sinks = append(sinks, i)
		}
	}
	sort.Slice(sinks, func(a, b int) bool { return p.Order[sinks[a]] < p.Order[sinks[b]] })
	for _, i := range sinks {
		if recs != nil && recs[i] != nil && recs[i].sink {
			rec := recs[i]
			p.RowsLoaded += rec.sinkRows
			p.OutRows += rec.sinkStats.Rows
			p.OutNullCells += rec.sinkStats.NullCells
			p.OutCells += rec.sinkCells
			p.OutDupRows += rec.sinkStats.Duplicates
			p.OutErrRows += rec.sinkStats.Errors
			continue
		}
		id := p.Order[i]
		all := colFlatten(outs[i], nil)
		schema := g.InputSchema(id)
		st := measureColumns(schema, all)
		p.RowsLoaded += all.len()
		p.OutRows += st.Rows
		p.OutNullCells += st.NullCells
		p.OutCells += st.Rows * schema.Len()
		p.OutDupRows += st.Duplicates
		p.OutErrRows += st.Errors
	}
}

// colDescribe is describe for columnar batches (error paths).
func colDescribe(batches []*colBatch) string {
	parts := make([]string, len(batches))
	for i, b := range batches {
		parts[i] = strconv.Itoa(b.len())
	}
	return "[" + strings.Join(parts, ",") + "]"
}
