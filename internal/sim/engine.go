// Package sim executes ETL flows on synthetic data and produces the run
// traces that the quality measures consume. It substitutes the runtime
// monitoring infrastructure of the POIESIS deployment: the paper's dynamic
// measures are "obtained from analysis of historical traces capturing the
// runtime behaviour of ETL components", and this engine generates those
// traces deterministically.
//
// The engine separates the deterministic data path (executed once per design)
// from the stochastic failure path (sampled many times per design via
// Monte-Carlo), so evaluating reliability over N runs does not re-execute
// the row pipeline N times.
package sim

import (
	"fmt"
	"sort"
	"strings"

	"poiesis/internal/data"
	"poiesis/internal/etl"
)

// Binding connects the extract operations of a flow to synthetic sources.
// Keys are node IDs of OpExtract nodes; missing bindings get a default
// source derived from the node's output schema.
type Binding map[etl.NodeID]data.SourceSpec

// Config tunes the engine.
type Config struct {
	// DefaultRows is the cardinality used for extract nodes without an
	// explicit binding.
	DefaultRows int
	// Seed drives defect injection for unbound sources and failure
	// sampling.
	Seed uint64
	// RetryBudget is how many operation failures a run may absorb before it
	// is declared failed.
	RetryBudget int
	// Runs is the Monte-Carlo sample size for failure behaviour.
	Runs int
	// PipelineOverlap in [0,1] models how much of a non-blocking operation's
	// busy time overlaps with its upstream producer (1 = perfect pipelining,
	// 0 = staged execution). Blocking operations never overlap.
	PipelineOverlap float64
}

// DefaultConfig returns the configuration used by the benchmarks.
func DefaultConfig() Config {
	return Config{
		DefaultRows:     5000,
		Seed:            1,
		RetryBudget:     8,
		Runs:            64,
		PipelineOverlap: 0.7,
	}
}

// Profile is the deterministic execution profile of one flow: per-node
// timings and cardinalities plus output data quality. The failure sampler
// and the measures both read it.
type Profile struct {
	Flow  string
	Order []etl.NodeID

	RowsIn  map[etl.NodeID]int
	RowsOut map[etl.NodeID]int
	// TimeMs is the busy time of each node (startup + per-tuple work over
	// parallelism).
	TimeMs map[etl.NodeID]float64
	// Completion is the finish time of each node under the (partially
	// pipelined) stage model.
	Completion map[etl.NodeID]float64
	// RestartMs is, per node, the re-execution time needed when the node
	// fails: time back to the nearest upstream savepoint (or the sources).
	RestartMs map[etl.NodeID]float64
	// RestartFromCheckpoint marks nodes whose recovery starts at a savepoint.
	RestartFromCheckpoint map[etl.NodeID]bool

	// FirstPassMs is the failure-free makespan.
	FirstPassMs float64
	// LatencyPerTupleMs is the per-tuple latency along the critical path.
	LatencyPerTupleMs float64

	RowsLoaded int
	// Output quality at the sinks.
	OutRows      int
	OutNullCells int
	OutCells     int
	OutDupRows   int
	OutErrRows   int

	// MemRowsPeak is the largest materialisation by a blocking operation.
	MemRowsPeak int
}

// Engine executes flows. It is stateless; methods are safe for concurrent
// use with distinct arguments.
type Engine struct {
	cfg Config
}

// NewEngine returns an engine with the given configuration.
func NewEngine(cfg Config) *Engine {
	if cfg.DefaultRows <= 0 {
		cfg.DefaultRows = 1000
	}
	if cfg.Runs <= 0 {
		cfg.Runs = 32
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = 8
	}
	if cfg.PipelineOverlap < 0 {
		cfg.PipelineOverlap = 0
	}
	if cfg.PipelineOverlap > 1 {
		cfg.PipelineOverlap = 1
	}
	return &Engine{cfg: cfg}
}

// Execute runs the data path of the flow once and returns its profile.
func (e *Engine) Execute(g *etl.Graph, bind Binding) (*Profile, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	p := &Profile{
		Flow:                  g.Name,
		Order:                 order,
		RowsIn:                map[etl.NodeID]int{},
		RowsOut:               map[etl.NodeID]int{},
		TimeMs:                map[etl.NodeID]float64{},
		Completion:            map[etl.NodeID]float64{},
		RestartMs:             map[etl.NodeID]float64{},
		RestartFromCheckpoint: map[etl.NodeID]bool{},
	}

	// outputs[n][succ] holds the rows node n sends to successor succ.
	outputs := map[etl.NodeID]map[etl.NodeID][]etl.Row{}
	sinkRows := map[etl.NodeID][]etl.Row{}
	sinkSchema := map[etl.NodeID]etl.Schema{}

	for _, id := range order {
		n := g.Node(id)
		in := gatherInputs(g, outputs, id)
		rowsIn := 0
		for _, batch := range in {
			rowsIn += len(batch)
		}
		out, err := e.apply(g, n, in, bind)
		if err != nil {
			return nil, fmt.Errorf("sim: executing %s: %w", n, err)
		}
		p.RowsIn[id] = rowsIn
		if n.Kind.IsSource() {
			p.RowsIn[id] = len(flatten(out))
		}

		// Route output rows to successors.
		succs := g.Succ(id)
		routed := route(n, out, succs)
		outputs[id] = routed
		totalOut := 0
		for _, batch := range routed {
			totalOut += len(batch)
		}
		if len(succs) == 0 {
			all := flatten(out)
			totalOut = len(all)
			if n.Kind.IsSink() {
				sinkRows[id] = all
				sinkSchema[id] = g.InputSchema(id)
			}
		}
		p.RowsOut[id] = totalOut

		// Timing: startup + per-tuple work over parallelism.
		work := float64(p.RowsIn[id])
		if n.Kind.IsSource() {
			work = float64(p.RowsOut[id])
		}
		t := n.Cost.Startup + work*n.WorkPerTuple()
		p.TimeMs[id] = t
		if n.Kind.IsBlocking() {
			if m := p.RowsIn[id]; m > p.MemRowsPeak {
				p.MemRowsPeak = m
			}
		}
	}

	e.computeSchedule(g, p)
	e.computeRecovery(g, p)
	e.measureOutputs(g, p, sinkRows, sinkSchema)
	return p, nil
}

// gatherInputs collects the row batches addressed to node id by its
// predecessors, in predecessor order.
func gatherInputs(g *etl.Graph, outputs map[etl.NodeID]map[etl.NodeID][]etl.Row, id etl.NodeID) [][]etl.Row {
	var in [][]etl.Row
	for _, pred := range g.Pred(id) {
		if m := outputs[pred]; m != nil {
			in = append(in, m[id])
		}
	}
	return in
}

func flatten(batches [][]etl.Row) []etl.Row {
	if len(batches) == 1 {
		return batches[0]
	}
	var out []etl.Row
	for _, b := range batches {
		out = append(out, b...)
	}
	return out
}

// route distributes a node's output rows across its successors according to
// the node's routing semantics.
func route(n *etl.Node, out [][]etl.Row, succs []etl.NodeID) map[etl.NodeID][]etl.Row {
	m := make(map[etl.NodeID][]etl.Row, len(succs))
	if len(succs) == 0 {
		return m
	}
	all := flatten(out)
	switch n.Kind {
	case etl.OpPartition:
		// Horizontal partition: round-robin across branches.
		for _, s := range succs {
			m[s] = nil
		}
		for i, r := range all {
			s := succs[i%len(succs)]
			m[s] = append(m[s], r)
		}
	case etl.OpSplit:
		if n.Param("route") == "hash" && len(succs) > 1 {
			for i, r := range all {
				s := succs[hashRow(r, i)%uint64(len(succs))]
				m[s] = append(m[s], r)
			}
		} else {
			// Copy semantics: each branch receives the full stream (vertical
			// split of required attributes happens in downstream projects).
			for _, s := range succs {
				m[s] = all
			}
		}
	default:
		if len(succs) == 1 {
			m[succs[0]] = all
		} else {
			for _, s := range succs {
				m[s] = all
			}
		}
	}
	return m
}

func hashRow(r etl.Row, i int) uint64 {
	h := uint64(1469598103934665603)
	h ^= uint64(i)
	h *= 1099511628211
	if len(r) > 0 && r[0] != nil {
		s := fmt.Sprintf("%v", r[0])
		for j := 0; j < len(s); j++ {
			h ^= uint64(s[j])
			h *= 1099511628211
		}
	}
	return h
}

// computeSchedule derives completion times under a partially pipelined stage
// model: a node may start before its producer finished when both are
// non-blocking, controlled by cfg.PipelineOverlap.
func (e *Engine) computeSchedule(g *etl.Graph, p *Profile) {
	for _, id := range p.Order {
		n := g.Node(id)
		start := 0.0
		latestPred := 0.0
		for _, pred := range g.Pred(id) {
			pn := g.Node(pred)
			pc := p.Completion[pred]
			if pc > latestPred {
				latestPred = pc
			}
			if !n.Kind.IsBlocking() && !pn.Kind.IsBlocking() {
				// Overlap with the producer's busy window.
				pc -= e.cfg.PipelineOverlap * p.TimeMs[pred]
				if floor := p.Completion[pred] - p.TimeMs[pred]; pc < floor {
					pc = floor
				}
			}
			if pc > start {
				start = pc
			}
		}
		c := start + p.TimeMs[id]
		// A consumer cannot finish before its producers stop delivering.
		if c < latestPred {
			c = latestPred
		}
		p.Completion[id] = c
		if c > p.FirstPassMs {
			p.FirstPassMs = c
		}
	}
	// Per-tuple latency along the critical path.
	_, lat := g.CriticalPath(func(n *etl.Node) float64 { return n.WorkPerTuple() })
	p.LatencyPerTupleMs = lat
}

// computeRecovery precomputes, for every node, how much work must be redone
// when it fails: the completion time distance back to the nearest upstream
// savepoint, or back to time zero when none exists.
func (e *Engine) computeRecovery(g *etl.Graph, p *Profile) {
	// bestCheckpoint[id] = max completion time over upstream checkpoints.
	best := map[etl.NodeID]float64{}
	hasCP := map[etl.NodeID]bool{}
	for _, id := range p.Order {
		b, ok := 0.0, false
		for _, pred := range g.Pred(id) {
			pb, pok := best[pred], hasCP[pred]
			if g.Node(pred).Kind == etl.OpCheckpoint {
				pb, pok = p.Completion[pred], true
			}
			if pok && pb > b {
				b, ok = pb, true
			}
		}
		best[id], hasCP[id] = b, ok
		restart := p.Completion[id] - b
		if restart < 0 {
			restart = 0
		}
		p.RestartMs[id] = restart
		p.RestartFromCheckpoint[id] = ok
	}
}

// measureOutputs scans the rows delivered to the sinks and records quality
// statistics.
func (e *Engine) measureOutputs(g *etl.Graph, p *Profile, sinkRows map[etl.NodeID][]etl.Row, sinkSchema map[etl.NodeID]etl.Schema) {
	ids := make([]string, 0, len(sinkRows))
	for id := range sinkRows {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	for _, ids := range ids {
		id := etl.NodeID(ids)
		rows := sinkRows[id]
		schema := sinkSchema[id]
		st := data.Measure(schema, rows)
		p.RowsLoaded += len(rows)
		p.OutRows += st.Rows
		p.OutNullCells += st.NullCells
		p.OutCells += st.Rows * schema.Len()
		p.OutDupRows += st.Duplicates
		p.OutErrRows += st.Errors
	}
}

// defaultSpec synthesises a binding for an unbound extract node.
func (e *Engine) defaultSpec(n *etl.Node) data.SourceSpec {
	return data.SourceSpec{
		Name:   n.Name,
		Schema: n.Out,
		Rows:   e.cfg.DefaultRows,
		Defects: data.Defects{
			NullRate:  0.05,
			DupRate:   0.02,
			ErrorRate: 0.03,
		},
		UpdatesPerHour: 1,
		Seed:           e.cfg.Seed ^ hashString(string(n.ID)),
	}
}

func hashString(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// SourceUpdatesPerHour returns the maximum refresh frequency over the flow's
// bound sources (default 1/h for unbound ones).
func (e *Engine) SourceUpdatesPerHour(g *etl.Graph, bind Binding) float64 {
	max := 0.0
	for _, n := range g.Sources() {
		f := 1.0
		if spec, ok := bind[n.ID]; ok && spec.UpdatesPerHour > 0 {
			f = spec.UpdatesPerHour
		}
		if f > max {
			max = f
		}
	}
	if max == 0 {
		max = 1
	}
	return max
}

// describe is used in error paths and tests.
func describe(batches [][]etl.Row) string {
	parts := make([]string, len(batches))
	for i, b := range batches {
		parts[i] = fmt.Sprintf("%d", len(b))
	}
	return "[" + strings.Join(parts, ",") + "]"
}
