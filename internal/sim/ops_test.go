package sim

import (
	"testing"

	"poiesis/internal/data"
	"poiesis/internal/etl"
)

func TestProjectNarrowsRows(t *testing.T) {
	s := purchasesSchema()
	g := etl.NewBuilder("proj").
		Op("src", "S", etl.OpExtract, s).
		Op("prj", "project", etl.OpProject, s.Project("item_id", "price")).
		Op("ld", "DW", etl.OpLoad, etl.Schema{}).
		MustBuild()
	e := NewEngine(DefaultConfig())
	p, err := e.Execute(g, binding(g, 500, data.Defects{}))
	if err != nil {
		t.Fatal(err)
	}
	// Sink schema = project output: 2 attributes per row.
	if p.OutCells != p.OutRows*2 {
		t.Errorf("cells %d for %d rows", p.OutCells, p.OutRows)
	}
	if p.RowsLoaded != 500 {
		t.Errorf("project dropped rows: %d", p.RowsLoaded)
	}
}

func TestSurrogateAssignsDenseKeys(t *testing.T) {
	s := purchasesSchema()
	out := s.With(etl.Attribute{Name: "sk", Type: etl.TypeInt, Key: true})
	g := etl.NewBuilder("sk").
		Op("src", "S", etl.OpExtract, s).
		Op("sur", "surrogate", etl.OpSurrogate, out).
		Op("ld", "DW", etl.OpLoad, etl.Schema{}).
		MustBuild()
	e := NewEngine(DefaultConfig())
	p, err := e.Execute(g, binding(g, 300, data.Defects{}))
	if err != nil {
		t.Fatal(err)
	}
	if p.RowsLoaded != 300 {
		t.Errorf("rows = %d", p.RowsLoaded)
	}
}

func TestSplitHashRoutesDisjointly(t *testing.T) {
	s := purchasesSchema()
	g := etl.New("hashsplit")
	g.MustAddNode(etl.NewNode("src", "S", etl.OpExtract, s))
	spl := etl.NewNode("spl", "split", etl.OpSplit, s)
	spl.SetParam("route", "hash")
	g.MustAddNode(spl)
	g.MustAddNode(etl.NewNode("ld1", "A", etl.OpLoad, etl.Schema{}))
	g.MustAddNode(etl.NewNode("ld2", "B", etl.OpLoad, etl.Schema{}))
	g.MustAddEdge("src", "spl")
	g.MustAddEdge("spl", "ld1")
	g.MustAddEdge("spl", "ld2")
	e := NewEngine(DefaultConfig())
	p, err := e.Execute(g, binding(g, 1000, data.Defects{}))
	if err != nil {
		t.Fatal(err)
	}
	// Hash routing partitions: totals add up, neither branch empty.
	if p.RowsInOf("ld1")+p.RowsInOf("ld2") != 1000 {
		t.Errorf("hash split lost rows: %d + %d", p.RowsInOf("ld1"), p.RowsInOf("ld2"))
	}
	if p.RowsInOf("ld1") == 0 || p.RowsInOf("ld2") == 0 {
		t.Error("hash split sent everything one way")
	}

	// Copy routing (default) duplicates the stream instead.
	g2 := g.Clone()
	g2.MutableNode("spl").SetParam("route", "copy")
	p2, err := e.Execute(g2, binding(g2, 1000, data.Defects{}))
	if err != nil {
		t.Fatal(err)
	}
	if p2.RowsInOf("ld1") != 1000 || p2.RowsInOf("ld2") != 1000 {
		t.Errorf("copy split rows: %d / %d", p2.RowsInOf("ld1"), p2.RowsInOf("ld2"))
	}
}

func TestLookupKeepsUnmatchedRows(t *testing.T) {
	left := etl.NewSchema(
		etl.Attribute{Name: "k", Type: etl.TypeInt, Key: true},
		etl.Attribute{Name: "v", Type: etl.TypeInt},
	)
	right := etl.NewSchema(
		etl.Attribute{Name: "k", Type: etl.TypeInt, Key: true},
		etl.Attribute{Name: "extra", Type: etl.TypeString},
	)
	g := etl.New("lkp")
	g.MustAddNode(etl.NewNode("l", "L", etl.OpExtract, left))
	g.MustAddNode(etl.NewNode("r", "R", etl.OpExtract, right))
	g.MustAddNode(etl.NewNode("lkp", "lookup", etl.OpLookup, left.Union(right)))
	g.MustAddNode(etl.NewNode("ld", "DW", etl.OpLoad, etl.Schema{}))
	g.MustAddEdge("l", "lkp")
	g.MustAddEdge("r", "lkp")
	g.MustAddEdge("lkp", "ld")
	b := Binding{
		"l": {Name: "L", Schema: left, Rows: 1000, Seed: 1},
		"r": {Name: "R", Schema: right, Rows: 400, Seed: 2},
	}
	e := NewEngine(DefaultConfig())
	p, err := e.Execute(g, b)
	if err != nil {
		t.Fatal(err)
	}
	// Lookup (outer) keeps all left rows; join (inner) would keep 400.
	if p.RowsLoaded != 1000 {
		t.Errorf("lookup dropped unmatched rows: %d", p.RowsLoaded)
	}
	// Unmatched enrichment is NULL: null cells appear at the sink.
	if p.OutNullCells == 0 {
		t.Error("unmatched lookups should produce NULL enrichment")
	}
}

func TestJoinWithoutSharedKeysDegenerates(t *testing.T) {
	left := etl.NewSchema(etl.Attribute{Name: "a", Type: etl.TypeInt, Key: true})
	right := etl.NewSchema(etl.Attribute{Name: "b", Type: etl.TypeInt, Key: true})
	g := etl.New("nokey")
	g.MustAddNode(etl.NewNode("l", "L", etl.OpExtract, left))
	g.MustAddNode(etl.NewNode("r", "R", etl.OpExtract, right))
	g.MustAddNode(etl.NewNode("j", "join", etl.OpJoin, left))
	g.MustAddNode(etl.NewNode("ld", "DW", etl.OpLoad, etl.Schema{}))
	g.MustAddEdge("l", "j")
	g.MustAddEdge("r", "j")
	g.MustAddEdge("j", "ld")
	e := NewEngine(DefaultConfig())
	p, err := e.Execute(g, Binding{
		"l": {Name: "L", Schema: left, Rows: 100, Seed: 1},
		"r": {Name: "R", Schema: right, Rows: 100, Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	// No shared attributes: degenerate to the left input.
	if p.RowsLoaded != 100 {
		t.Errorf("degenerate join rows = %d", p.RowsLoaded)
	}
}

func TestEncryptAndNoopPassThrough(t *testing.T) {
	s := purchasesSchema()
	g := etl.NewBuilder("enc").
		Op("src", "S", etl.OpExtract, s).
		Op("enc", "encrypt", etl.OpEncrypt, s).
		Op("nop", "noop", etl.OpNoop, s).
		Op("ld", "DW", etl.OpLoad, etl.Schema{}).
		MustBuild()
	e := NewEngine(DefaultConfig())
	p, err := e.Execute(g, binding(g, 250, data.Defects{}))
	if err != nil {
		t.Fatal(err)
	}
	if p.RowsLoaded != 250 {
		t.Errorf("pass-through ops changed cardinality: %d", p.RowsLoaded)
	}
}

func TestConfigClamping(t *testing.T) {
	e := NewEngine(Config{DefaultRows: -1, Runs: -5, RetryBudget: 0, PipelineOverlap: 7})
	if e.cfg.DefaultRows <= 0 || e.cfg.Runs <= 0 || e.cfg.RetryBudget <= 0 {
		t.Errorf("defaults not applied: %+v", e.cfg)
	}
	if e.cfg.PipelineOverlap > 1 {
		t.Errorf("overlap not clamped: %f", e.cfg.PipelineOverlap)
	}
	e2 := NewEngine(Config{PipelineOverlap: -3})
	if e2.cfg.PipelineOverlap < 0 {
		t.Errorf("negative overlap not clamped: %f", e2.cfg.PipelineOverlap)
	}
}

func TestPipelineOverlapShortensMakespan(t *testing.T) {
	g := simpleFlow(t)
	mk := func(overlap float64) float64 {
		cfg := DefaultConfig()
		cfg.PipelineOverlap = overlap
		e := NewEngine(cfg)
		p, err := e.Execute(g, binding(g, 3000, data.Defects{}))
		if err != nil {
			t.Fatal(err)
		}
		return p.FirstPassMs
	}
	staged, pipelined := mk(0), mk(0.9)
	if pipelined >= staged {
		t.Errorf("pipelining did not shorten makespan: %f vs %f", pipelined, staged)
	}
}

func TestUnboundExtractGetsDefaultSpec(t *testing.T) {
	g := simpleFlow(t)
	e := NewEngine(DefaultConfig())
	p, err := e.Execute(g, nil) // no binding at all
	if err != nil {
		t.Fatal(err)
	}
	// The default spec injects duplicates, so physical rows slightly exceed
	// the logical DefaultRows.
	want := DefaultConfig().DefaultRows
	if p.RowsInOf("src") < want || p.RowsInOf("src") > want+want/10 {
		t.Errorf("default rows = %d, want ~%d", p.RowsInOf("src"), want)
	}
	if f := e.SourceUpdatesPerHour(g, nil); f != 1 {
		t.Errorf("default update frequency = %f", f)
	}
}
