package sim

import (
	"poiesis/internal/data"
	"poiesis/internal/etl"
	"poiesis/internal/trace"
)

// Sample runs the Monte-Carlo failure model over a precomputed profile and
// returns one trace.Run per sampled execution. The data path is not
// re-executed: failures perturb timing (recovery re-execution) and success,
// not row contents — the savepoints guarantee the same rows are reproduced
// on restart, which is exactly what the AddCheckpoint pattern is for.
func (e *Engine) Sample(g *etl.Graph, p *Profile, runs int) []trace.Run {
	if runs <= 0 {
		runs = e.cfg.Runs
	}
	root := data.NewRNG(e.cfg.Seed ^ hashString(p.Flow) ^ 0x5851F42D4C957F2D)
	out := make([]trace.Run, 0, runs)
	// One backing array serves every run's Ops slice: each run appends at
	// most |V| entries into its own capacity-clamped segment, turning
	// runs-many allocations into one. The per-node attributes the inner loop
	// reads are gathered into dense topo-ordered columns once, so the
	// runs×nodes hot loop does no graph map lookups.
	nn := len(p.Order)
	backing := make([]trace.OpStats, runs*nn)
	nodes := nodeColumns{
		kinds:    make([]etl.OpKind, nn),
		rates:    make([]float64, nn),
		blocking: make([]bool, nn),
	}
	for i, id := range p.Order {
		n := g.Node(id)
		nodes.kinds[i] = n.Kind
		nodes.rates[i] = n.Cost.FailureRate
		nodes.blocking[i] = n.Kind.IsBlocking()
	}
	for i := 0; i < runs; i++ {
		rng := root.Fork()
		seg := backing[i*nn : i*nn : (i+1)*nn]
		out = append(out, e.sampleOne(nodes, p, i, rng, seg))
	}
	return out
}

// nodeColumns carries the per-node attributes of the failure model in dense
// topo-ordered slices, mirroring the profile's layout.
type nodeColumns struct {
	kinds    []etl.OpKind
	rates    []float64
	blocking []bool
}

func (e *Engine) sampleOne(nodes nodeColumns, p *Profile, seq int, rng *data.RNG, ops []trace.OpStats) trace.Run {
	run := trace.Run{
		Flow:        p.Flow,
		Seq:         seq,
		FirstPassMs: p.FirstPassMs,
		RowsLoaded:  p.RowsLoaded,
		Succeeded:   true,

		OutRows:      p.OutRows,
		OutNullCells: p.OutNullCells,
		OutDupRows:   p.OutDupRows,
		OutErrRows:   p.OutErrRows,
		OutCells:     p.OutCells,
	}
	budget := e.cfg.RetryBudget
	run.Ops = ops
	for i, id := range p.Order {
		st := trace.OpStats{
			Node:    id,
			Kind:    nodes.kinds[i],
			RowsIn:  p.RowsIn[i],
			RowsOut: p.RowsOut[i],
			TimeMs:  p.TimeMs[i],
		}
		if nodes.blocking[i] {
			st.MemRows = p.RowsIn[i]
		}
		// Each attempt of the operation may fail independently; a failed
		// attempt forces re-execution from the nearest upstream savepoint.
		for rng.Bool(nodes.rates[i]) {
			st.Failures++
			run.FailureCount++
			run.RecoveryMs += p.RestartMs[i]
			if p.RestartFromCheckpoint[i] {
				run.CheckpointsUsed++
			}
			if run.FailureCount > budget {
				run.Succeeded = false
				break
			}
		}
		run.Ops = append(run.Ops, st)
		if !run.Succeeded {
			break
		}
	}
	run.CycleTimeMs = run.FirstPassMs + run.RecoveryMs
	if !run.Succeeded {
		run.RowsLoaded = 0
	}
	return run
}

// Evaluate executes the flow once and samples its failure behaviour,
// returning the full trace batch plus the profile. This is the per-design
// evaluation step of the Planner's "Measures Estimation" stage (Fig. 3).
func (e *Engine) Evaluate(g *etl.Graph, bind Binding) (*Profile, *trace.Batch, error) {
	return e.EvaluateDelta(g, bind, nil)
}

// EvaluateDelta is Evaluate with delta evaluation of the data path: node
// results memoized in cache (keyed by upstream-cone fingerprint) are spliced
// in instead of re-simulated, so only the dirty cone of the flow runs. A nil
// cache is a full evaluation. Results are identical to Evaluate; see
// ExecuteDelta for the cache-sharing contract.
func (e *Engine) EvaluateDelta(g *etl.Graph, bind Binding, cache *EvalCache) (*Profile, *trace.Batch, error) {
	return e.EvaluateDeltaStats(g, bind, cache, nil)
}

// EvaluateDeltaStats is EvaluateDelta reporting splice accounting into stats
// (ignored when nil) — see ExecuteDeltaStats.
func (e *Engine) EvaluateDeltaStats(g *etl.Graph, bind Binding, cache *EvalCache, stats *ExecStats) (*Profile, *trace.Batch, error) {
	p, err := e.ExecuteDeltaStats(g, bind, cache, stats)
	if err != nil {
		return nil, nil, err
	}
	batch := &trace.Batch{
		Flow:                 g.Name,
		Runs:                 e.Sample(g, p, e.cfg.Runs),
		SourceUpdatesPerHour: e.SourceUpdatesPerHour(g, bind),
		PeriodMinutes:        periodMinutes(g),
	}
	return p, batch, nil
}

// periodMinutes reads the process recurrence period from the graph-wide
// "schedule.period_minutes" convention (set by graph patterns); default 60.
func periodMinutes(g *etl.Graph) float64 {
	for _, n := range g.Nodes() {
		if v := n.Param("schedule.period_minutes"); v != "" {
			if f := parseFloat(v); f > 0 {
				return f
			}
		}
	}
	return 60
}

func parseFloat(s string) float64 {
	var f float64
	var frac float64
	var seenDot bool
	div := 1.0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			if seenDot {
				div *= 10
				frac = frac + float64(c-'0')/div
			} else {
				f = f*10 + float64(c-'0')
			}
		case c == '.' && !seenDot:
			seenDot = true
		default:
			return 0
		}
	}
	return f + frac
}
