// Columnar batch representation: the default data path of the engine.
//
// A colBatch stores one typed slice per attribute position (int64, float64,
// string, bool — with a []etl.Value fallback for mixed or unknown types) plus
// a packed null bitmap per column, built from the binding's generators and
// converted back to rows only at cache/representation boundaries. Operators
// run as tight per-column loops and communicate row subsets through selection
// vectors (a []int32 of physical row indices) instead of materializing
// filtered copies, so a chain of filters over one extract shares a single set
// of column arrays.
//
// Hashing is column-wise where the hash is an internal detail (dedup,
// aggregate, join build keys: one typed pass per key column folds value
// hashes into a per-row key hash, verified by typed equality on collision so
// grouping semantics stay exactly "group by value") and byte-compatible with
// hashRow where the hash value itself decides simulation results (filter keep
// decisions, hash-split routing) — that is what keeps the columnar engine
// byte-identical to the row oracle.
package sim

import (
	"fmt"
	"math"
	"math/bits"
	"strconv"
	"strings"

	"poiesis/internal/data"
	"poiesis/internal/etl"
)

// colKind is the physical storage of one column. The zero value is colNull —
// a column of all NULLs with no storage — so zero-value padding columns are
// safe to read.
type colKind uint8

const (
	colNull colKind = iota
	colInt
	colFloat
	colStr
	colBool
	colAny
)

// column is one attribute position across a batch. Exactly the slice matching
// kind is populated; nulls is the packed null bitmap (bit set = NULL), nil
// when no cell is NULL. colAny columns represent NULL as a nil element and
// carry no bitmap. Slots under a set null bit hold the zero value.
type column struct {
	kind   colKind
	ints   []int64
	floats []float64
	strs   []string
	bools  []bool
	anys   []etl.Value
	nulls  []uint64
}

func nullWords(n int) int { return (n + 63) >> 6 }

func setBit(words []uint64, p int) { words[p>>6] |= 1 << (uint(p) & 63) }

func (c *column) nullAt(p int) bool {
	switch c.kind {
	case colNull:
		return true
	case colAny:
		return c.anys[p] == nil
	default:
		return c.nulls != nil && c.nulls[p>>6]&(1<<(uint(p)&63)) != 0
	}
}

// value boxes the cell back into an etl.Value (conversion boundaries only).
func (c *column) value(p int) etl.Value {
	if c.nullAt(p) {
		return nil
	}
	switch c.kind {
	case colInt:
		return c.ints[p]
	case colFloat:
		return c.floats[p]
	case colStr:
		return c.strs[p]
	case colBool:
		return c.bools[p]
	case colAny:
		return c.anys[p]
	default:
		return nil
	}
}

// colBatch is one logical stream of rows in columnar form. n is the physical
// row count (the length of every column); sel, when non-nil, is the selection
// vector: the batch's logical rows are sel's physical indices, in order.
// Batches share column storage freely and never mutate it — operators either
// narrow a batch with a new selection vector or build new columns.
type colBatch struct {
	cols []column
	n    int
	sel  []int32
}

// len is the logical row count; a nil batch is empty.
func (b *colBatch) len() int {
	if b == nil {
		return 0
	}
	if b.sel != nil {
		return len(b.sel)
	}
	return b.n
}

// phys maps a logical row index to its physical index.
func (b *colBatch) phys(i int) int {
	if b.sel != nil {
		return int(b.sel[i])
	}
	return i
}

// withSel narrows the batch to the given physical row indices, sharing
// column storage.
func withSel(b *colBatch, keep []int32) *colBatch {
	return &colBatch{cols: b.cols, n: b.n, sel: keep}
}

// ---------------------------------------------------------------------------
// Cell references: a boxed-free discriminated view of one cell, used by the
// equality checks that verify hash-bucket collisions. int normalizes into
// int64 (both render identically and compare equal under the row oracle's
// rendered-key semantics).

type cellClass uint8

const (
	cellNull cellClass = iota
	cellInt
	cellFloat
	cellStr
	cellBool
	cellOther
)

type cellRef struct {
	cls cellClass
	i   int64
	f   uint64 // float64 bits: -0 and +0 render differently, so compare bits
	s   string
	b   bool
	v   etl.Value // cellOther only
}

func cellOf(v etl.Value) cellRef {
	switch x := v.(type) {
	case nil:
		return cellRef{}
	case int64:
		return cellRef{cls: cellInt, i: x}
	case int:
		return cellRef{cls: cellInt, i: int64(x)}
	case float64:
		return cellRef{cls: cellFloat, f: math.Float64bits(x)}
	case string:
		return cellRef{cls: cellStr, s: x}
	case bool:
		return cellRef{cls: cellBool, b: x}
	default:
		return cellRef{cls: cellOther, v: x}
	}
}

// cell views the cell at physical index p.
func (c *column) cell(p int) cellRef {
	if c.nullAt(p) {
		return cellRef{}
	}
	switch c.kind {
	case colInt:
		return cellRef{cls: cellInt, i: c.ints[p]}
	case colFloat:
		return cellRef{cls: cellFloat, f: math.Float64bits(c.floats[p])}
	case colStr:
		return cellRef{cls: cellStr, s: c.strs[p]}
	case colBool:
		return cellRef{cls: cellBool, b: c.bools[p]}
	default:
		return cellOf(c.anys[p])
	}
}

// colCell views the cell at (column j, physical row p); out-of-range columns
// are NULL, mirroring Row.IsNullAt for rows shorter than the schema.
func colCell(b *colBatch, j, p int) cellRef {
	if j < 0 || j >= len(b.cols) {
		return cellRef{}
	}
	return b.cols[j].cell(p)
}

func cellEqual(a, b cellRef) bool {
	if a.cls != b.cls {
		return false
	}
	switch a.cls {
	case cellNull:
		return true
	case cellInt:
		return a.i == b.i
	case cellFloat:
		return a.f == b.f
	case cellStr:
		return a.s == b.s
	case cellBool:
		return a.b == b.b
	default:
		// Oddball types compare by the same canonical identity hashValue
		// hashes: dynamic type plus rendered form.
		//lint:ignore nofmtkernel off-hot-path fallback mirroring hashValue's canonical identity
		return fmt.Sprintf("%T\x00%v", a.v, a.v) == fmt.Sprintf("%T\x00%v", b.v, b.v)
	}
}

// ---------------------------------------------------------------------------
// Hashing.

const (
	fnvOffset = uint64(1469598103934665603)
	fnvPrime  = uint64(1099511628211)

	// Key-hash seeds separate the value classes so e.g. int64(1) and true
	// land apart; collisions are verified by cellEqual regardless.
	keyNullHash  = uint64(0x9E3779B97F4A7C15)
	keySeedInt   = uint64(0xA24BAED4963EE407)
	keySeedFloat = uint64(0x9FB21C651E98DF25)
	keySeedStr   = uint64(0xC2B2AE3D27D4EB4F)
	keySeedBool  = uint64(0x165667B19E3779F9)
)

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// keyHash is the value-identity hash used by group and join tables. It
// depends only on the value (not on which column kind stores it), so typed
// and fallback columns hash consistently; equal values always hash equal.
func (r cellRef) keyHash() uint64 {
	switch r.cls {
	case cellNull:
		return keyNullHash
	case cellInt:
		return mix64(uint64(r.i) + keySeedInt)
	case cellFloat:
		return mix64(r.f + keySeedFloat)
	case cellStr:
		return mix64(hashString(r.s) + keySeedStr)
	case cellBool:
		x := uint64(0)
		if r.b {
			x = 1
		}
		return mix64(x + keySeedBool)
	default:
		return mix64(hashValue(fnvOffset, r.v))
	}
}

// foldKeyHash folds column j into the per-logical-row key hashes in dst
// (seeded by the caller): one typed pass over the column per key attribute,
// so composite keys hash without rendering any value.
func (b *colBatch) foldKeyHash(j int, dst []uint64) {
	n := b.len()
	if j < 0 || j >= len(b.cols) {
		for i := 0; i < n; i++ {
			dst[i] = (dst[i] ^ keyNullHash) * fnvPrime
		}
		return
	}
	c := &b.cols[j]
	sel := b.sel
	switch c.kind {
	case colNull:
		for i := 0; i < n; i++ {
			dst[i] = (dst[i] ^ keyNullHash) * fnvPrime
		}
	case colInt:
		for i := 0; i < n; i++ {
			p := i
			if sel != nil {
				p = int(sel[i])
			}
			vh := keyNullHash
			if !c.nullAt(p) {
				vh = mix64(uint64(c.ints[p]) + keySeedInt)
			}
			dst[i] = (dst[i] ^ vh) * fnvPrime
		}
	case colFloat:
		for i := 0; i < n; i++ {
			p := i
			if sel != nil {
				p = int(sel[i])
			}
			vh := keyNullHash
			if !c.nullAt(p) {
				vh = mix64(math.Float64bits(c.floats[p]) + keySeedFloat)
			}
			dst[i] = (dst[i] ^ vh) * fnvPrime
		}
	case colStr:
		for i := 0; i < n; i++ {
			p := i
			if sel != nil {
				p = int(sel[i])
			}
			vh := keyNullHash
			if !c.nullAt(p) {
				vh = mix64(hashString(c.strs[p]) + keySeedStr)
			}
			dst[i] = (dst[i] ^ vh) * fnvPrime
		}
	case colBool:
		for i := 0; i < n; i++ {
			p := i
			if sel != nil {
				p = int(sel[i])
			}
			vh := keyNullHash
			if !c.nullAt(p) {
				x := uint64(0)
				if c.bools[p] {
					x = 1
				}
				vh = mix64(x + keySeedBool)
			}
			dst[i] = (dst[i] ^ vh) * fnvPrime
		}
	default:
		for i := 0; i < n; i++ {
			p := i
			if sel != nil {
				p = int(sel[i])
			}
			vh := cellOf(c.anys[p]).keyHash()
			dst[i] = (dst[i] ^ vh) * fnvPrime
		}
	}
}

// keyHashes computes the per-logical-row composite key hash over positions.
func (b *colBatch) keyHashes(positions []int, dst []uint64) {
	for i := range dst {
		dst[i] = fnvOffset
	}
	for _, j := range positions {
		b.foldKeyHash(j, dst)
	}
}

// selectHashes fills dst with, per logical row i, exactly the hash the row
// oracle's hashRow(row, i) produces — the value that decides filter keeps and
// hash-split routing, so it must be byte-compatible, not merely consistent.
// The type switch is hoisted out of the row loop.
func (b *colBatch) selectHashes(dst []uint64) {
	n := b.len()
	if b == nil || len(b.cols) == 0 {
		for i := 0; i < n; i++ {
			dst[i] = hashOrdinal(i)
		}
		return
	}
	c := &b.cols[0]
	sel := b.sel
	var buf [32]byte
	switch c.kind {
	case colNull:
		for i := 0; i < n; i++ {
			dst[i] = hashOrdinal(i)
		}
	case colInt:
		for i := 0; i < n; i++ {
			p := i
			if sel != nil {
				p = int(sel[i])
			}
			h := hashOrdinal(i)
			if !c.nullAt(p) {
				h = hashBytes(h, strconv.AppendInt(buf[:0], c.ints[p], 10))
			}
			dst[i] = h
		}
	case colFloat:
		for i := 0; i < n; i++ {
			p := i
			if sel != nil {
				p = int(sel[i])
			}
			h := hashOrdinal(i)
			if !c.nullAt(p) {
				h = hashBytes(h, strconv.AppendFloat(buf[:0], c.floats[p], 'g', -1, 64))
			}
			dst[i] = h
		}
	case colStr:
		for i := 0; i < n; i++ {
			p := i
			if sel != nil {
				p = int(sel[i])
			}
			h := hashOrdinal(i)
			if !c.nullAt(p) {
				h = hashStringInto(h, c.strs[p])
			}
			dst[i] = h
		}
	case colBool:
		for i := 0; i < n; i++ {
			p := i
			if sel != nil {
				p = int(sel[i])
			}
			h := hashOrdinal(i)
			if !c.nullAt(p) {
				s := "false"
				if c.bools[p] {
					s = "true"
				}
				h = hashStringInto(h, s)
			}
			dst[i] = h
		}
	default:
		for i := 0; i < n; i++ {
			p := i
			if sel != nil {
				p = int(sel[i])
			}
			h := hashOrdinal(i)
			if v := c.anys[p]; v != nil {
				h = hashValue(h, v)
			}
			dst[i] = h
		}
	}
}

// ---------------------------------------------------------------------------
// Group and join tables: hash buckets verified by typed equality, so grouping
// is exactly "group by value" (which, over the engine's homogeneous typed
// columns, matches the row oracle's rendered-key grouping).

func (b *colBatch) keyEqualAt(p, q int, positions []int) bool {
	for _, j := range positions {
		if !cellEqual(colCell(b, j, p), colCell(b, j, q)) {
			return false
		}
	}
	return true
}

// groupTable deduplicates rows of one batch by key positions in first-seen
// order. m maps key hash to the first physical row with that hash; true
// 64-bit collisions between distinct keys spill into over.
type groupTable struct {
	b    *colBatch
	pos  []int
	m    map[uint64]int32
	over map[uint64][]int32
}

func newGroupTable(b *colBatch, pos []int, capHint int) *groupTable {
	return &groupTable{b: b, pos: pos, m: make(map[uint64]int32, capHint)}
}

// insert reports whether physical row p is the first occurrence of its key.
func (t *groupTable) insert(p int32, h uint64) bool {
	q, ok := t.m[h]
	if !ok {
		t.m[h] = p
		return true
	}
	if t.b.keyEqualAt(int(p), int(q), t.pos) {
		return false
	}
	for _, r := range t.over[h] {
		if t.b.keyEqualAt(int(p), int(r), t.pos) {
			return false
		}
	}
	if t.over == nil {
		t.over = make(map[uint64][]int32)
	}
	t.over[h] = append(t.over[h], p)
	return true
}

// firstByKey keeps the first logical row of every distinct key — the shared
// kernel of dedup and aggregate (and the duplicate count of measureColumns).
func firstByKey(b *colBatch, positions []int, ar *batchArena) *colBatch {
	n := b.len()
	if n == 0 {
		return b
	}
	hashes := u64Scratch(ar, n)
	b.keyHashes(positions, hashes)
	t := newGroupTable(b, positions, n)
	keep := selScratch(ar, n)
	for i := 0; i < n; i++ {
		p := int32(b.phys(i))
		if t.insert(p, hashes[i]) {
			keep = append(keep, p)
		}
	}
	return withSel(b, keep)
}

// crossKeyEqual compares left row lp (at lpos) with right row rp (at rpos).
func crossKeyEqual(lb *colBatch, lp int, lpos []int, rb *colBatch, rp int, rpos []int) bool {
	for k := range lpos {
		if !cellEqual(colCell(lb, lpos[k], lp), colCell(rb, rpos[k], rp)) {
			return false
		}
	}
	return true
}

// joinTable indexes the right batch by key; like the row oracle's map build,
// the last right row wins for duplicate keys. Buckets hold one slot per
// distinct key.
type joinTable struct {
	left, right *colBatch
	lpos, rpos  []int
	m           map[uint64][]int32
}

func (t *joinTable) put(p int32, h uint64) {
	bucket := t.m[h]
	for k, q := range bucket {
		if t.right.keyEqualAt(int(p), int(q), t.rpos) {
			bucket[k] = p
			return
		}
	}
	t.m[h] = append(bucket, p)
}

func (t *joinTable) get(lp int32, h uint64) (int32, bool) {
	for _, q := range t.m[h] {
		if crossKeyEqual(t.left, int(lp), t.lpos, t.right, int(q), t.rpos) {
			return q, true
		}
	}
	return 0, false
}

// ---------------------------------------------------------------------------
// Building, gathering, flattening, conversion.

// colBuilder accumulates one output column cell by cell. Every appended cell
// consumes one slot (nulls append the zero value), so slots and bitmap stay
// aligned and no stale scratch value is ever observable.
type colBuilder struct {
	col   column
	n     int
	total int
}

func newColBuilder(kind colKind, total int, ar *batchArena) *colBuilder {
	w := &colBuilder{col: column{kind: kind}, total: total}
	switch kind {
	case colInt:
		w.col.ints = i64Scratch(ar, total)
	case colFloat:
		w.col.floats = f64Scratch(ar, total)
	case colStr:
		w.col.strs = strScratch(ar, total)
	case colBool:
		w.col.bools = boolScratch(ar, total)
	case colAny:
		w.col.anys = anyScratch(ar, total)
	}
	return w
}

func (w *colBuilder) markNull() {
	if w.col.kind == colAny || w.col.kind == colNull {
		return
	}
	if w.col.nulls == nil {
		w.col.nulls = make([]uint64, nullWords(w.total))
	}
	setBit(w.col.nulls, w.n)
}

func (w *colBuilder) appendNull() {
	w.markNull()
	switch w.col.kind {
	case colInt:
		w.col.ints = append(w.col.ints, 0)
	case colFloat:
		w.col.floats = append(w.col.floats, 0)
	case colStr:
		w.col.strs = append(w.col.strs, "")
	case colBool:
		w.col.bools = append(w.col.bools, false)
	case colAny:
		w.col.anys = append(w.col.anys, nil)
	}
	w.n++
}

// appendFrom appends cells idx of source column c (physical indices; -1
// appends NULL). The source must either match the builder's kind, be all-NULL,
// or the builder must be colAny.
func (w *colBuilder) appendFrom(c *column, idx []int32) {
	if c.kind == w.col.kind && c.kind != colAny && c.kind != colNull {
		for _, p := range idx {
			if p < 0 || c.nullAt(int(p)) {
				w.appendNull()
				continue
			}
			switch w.col.kind {
			case colInt:
				w.col.ints = append(w.col.ints, c.ints[p])
			case colFloat:
				w.col.floats = append(w.col.floats, c.floats[p])
			case colStr:
				w.col.strs = append(w.col.strs, c.strs[p])
			case colBool:
				w.col.bools = append(w.col.bools, c.bools[p])
			}
			w.n++
		}
		return
	}
	if c.kind == colNull {
		for range idx {
			w.appendNull()
		}
		return
	}
	// Fallback: box through values (builder is colAny, or kinds diverged).
	for _, p := range idx {
		if p < 0 {
			w.appendNull()
			continue
		}
		v := c.value(int(p))
		if v == nil {
			w.appendNull()
			continue
		}
		w.col.anys = append(w.col.anys, v)
		w.n++
	}
}

func (w *colBuilder) build() column { return w.col }

// gatherColumn materializes the cells of c at idx into a dense column.
func gatherColumn(c *column, idx []int32, ar *batchArena) column {
	kind := c.kind
	if kind == colNull {
		return column{kind: colNull}
	}
	w := newColBuilder(kind, len(idx), ar)
	w.appendFrom(c, idx)
	return w.build()
}

// compact materializes the selection vector into dense columns. Operators
// that add dense per-logical-row columns (derive, surrogate) compact first so
// new and existing columns share indexing.
func (b *colBatch) compact(ar *batchArena) *colBatch {
	if b == nil || b.sel == nil {
		return b
	}
	nb := &colBatch{n: len(b.sel), cols: make([]column, len(b.cols))}
	for j := range b.cols {
		nb.cols[j] = gatherColumn(&b.cols[j], b.sel, ar)
	}
	return nb
}

// colFlatten merges output batches into one logical stream; a single batch is
// returned as-is (selection intact). Multi-input merges pad narrower batches
// with NULL columns, mirroring how the row path's ragged rows read as NULL
// beyond their width.
func colFlatten(batches []*colBatch, ar *batchArena) *colBatch {
	if len(batches) == 1 {
		return batches[0]
	}
	total, width := 0, 0
	for _, b := range batches {
		total += b.len()
		if b != nil && len(b.cols) > width {
			width = len(b.cols)
		}
	}
	if total == 0 {
		return nil
	}
	out := &colBatch{n: total, cols: make([]column, width)}
	for j := 0; j < width; j++ {
		// Unify the column kind across inputs; mixed kinds fall back to any.
		kind := colNull
		for _, b := range batches {
			if b == nil || b.len() == 0 || j >= len(b.cols) {
				continue
			}
			k := b.cols[j].kind
			if k == colNull {
				continue
			}
			if kind == colNull {
				kind = k
			} else if kind != k {
				kind = colAny
				break
			}
		}
		if kind == colNull {
			continue
		}
		w := newColBuilder(kind, total, ar)
		for _, b := range batches {
			n := b.len()
			if n == 0 {
				continue
			}
			if j >= len(b.cols) {
				for i := 0; i < n; i++ {
					w.appendNull()
				}
				continue
			}
			if b.sel != nil {
				w.appendFrom(&b.cols[j], b.sel)
			} else {
				w.appendFrom(&b.cols[j], identSel(ar, n))
			}
		}
		out.cols[j] = w.build()
	}
	return out
}

// identSel returns the identity selection [0..n).
func identSel(ar *batchArena, n int) []int32 {
	s := selScratch(ar, n)
	for i := 0; i < n; i++ {
		s = append(s, int32(i))
	}
	return s
}

// colFromRows builds a batch from generated rows using the schema's physical
// kinds as typed-storage hints; cells that do not match their hint demote the
// column to the any fallback. Missing trailing cells (rows shorter than the
// widest) read as NULL.
func colFromRows(rows []etl.Row, kinds []etl.ValueKind) *colBatch {
	width := len(kinds)
	for _, r := range rows {
		if len(r) > width {
			width = len(r)
		}
	}
	b := &colBatch{n: len(rows), cols: make([]column, width)}
	for j := 0; j < width; j++ {
		hint := etl.KindAny
		if j < len(kinds) {
			hint = kinds[j]
		}
		b.cols[j] = columnFromRows(rows, j, hint)
	}
	return b
}

func inferKind(rows []etl.Row, j int) colKind {
	for _, r := range rows {
		if j >= len(r) || r[j] == nil {
			continue
		}
		switch r[j].(type) {
		case int64:
			return colInt
		case float64:
			return colFloat
		case string:
			return colStr
		case bool:
			return colBool
		default:
			return colAny
		}
	}
	return colNull
}

func hintKind(h etl.ValueKind) colKind {
	switch h {
	case etl.KindInt64:
		return colInt
	case etl.KindFloat64:
		return colFloat
	case etl.KindString:
		return colStr
	case etl.KindBool:
		return colBool
	default:
		return colAny
	}
}

func columnFromRows(rows []etl.Row, j int, hint etl.ValueKind) column {
	kind := hintKind(hint)
	if kind == colAny {
		kind = inferKind(rows, j)
	}
	if kind == colNull {
		return column{kind: colNull}
	}
	if kind == colAny {
		return anyColumnFromRows(rows, j)
	}
	c := column{kind: kind}
	switch kind {
	case colInt:
		c.ints = make([]int64, len(rows))
	case colFloat:
		c.floats = make([]float64, len(rows))
	case colStr:
		c.strs = make([]string, len(rows))
	case colBool:
		c.bools = make([]bool, len(rows))
	}
	for i, r := range rows {
		if j >= len(r) || r[j] == nil {
			if c.nulls == nil {
				c.nulls = make([]uint64, nullWords(len(rows)))
			}
			setBit(c.nulls, i)
			continue
		}
		ok := false
		switch kind {
		case colInt:
			var v int64
			v, ok = r[j].(int64)
			c.ints[i] = v
		case colFloat:
			var v float64
			v, ok = r[j].(float64)
			c.floats[i] = v
		case colStr:
			var v string
			v, ok = r[j].(string)
			c.strs[i] = v
		case colBool:
			var v bool
			v, ok = r[j].(bool)
			c.bools[i] = v
		}
		if !ok {
			return anyColumnFromRows(rows, j)
		}
	}
	return c
}

func anyColumnFromRows(rows []etl.Row, j int) column {
	vals := make([]etl.Value, len(rows))
	for i, r := range rows {
		if j < len(r) {
			vals[i] = r[j]
		}
	}
	return column{kind: colAny, anys: vals}
}

// toRows materializes the batch back into rows (full batch width, explicit
// nils for NULL cells) — the representation boundary for cross-engine cache
// sharing.
func (b *colBatch) toRows() []etl.Row {
	n := b.len()
	if n == 0 {
		return nil
	}
	w := len(b.cols)
	cells := make([]etl.Value, n*w)
	out := make([]etl.Row, n)
	for i := 0; i < n; i++ {
		out[i] = etl.Row(cells[i*w : (i+1)*w : (i+1)*w])
	}
	for j := range b.cols {
		c := &b.cols[j]
		for i := 0; i < n; i++ {
			out[i][j] = c.value(b.phys(i))
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Quality measurement: measureColumns mirrors data.Measure cell for cell,
// without materializing rows.

func (b *colBatch) nullCountAt(j int) int {
	n := b.len()
	if j < 0 || j >= len(b.cols) {
		return n
	}
	c := &b.cols[j]
	switch c.kind {
	case colNull:
		return n
	case colAny:
		cnt := 0
		for i := 0; i < n; i++ {
			if c.anys[b.phys(i)] == nil {
				cnt++
			}
		}
		return cnt
	default:
		if c.nulls == nil {
			return 0
		}
		if b.sel == nil {
			cnt := 0
			for _, wd := range c.nulls {
				cnt += bits.OnesCount64(wd)
			}
			return cnt
		}
		cnt := 0
		for _, p := range b.sel {
			if c.nulls[p>>6]&(1<<(uint(p)&63)) != 0 {
				cnt++
			}
		}
		return cnt
	}
}

// markErroneous sets bad[i] for logical rows whose cell in this column is an
// injected defect (the data.IsErroneous oracle, specialized per kind).
func (c *column) markErroneous(b *colBatch, bad []bool) {
	n := b.len()
	switch c.kind {
	case colInt:
		for i := 0; i < n; i++ {
			p := b.phys(i)
			if !c.nullAt(p) {
				if v := c.ints[p]; v <= -1_000_000 || v == -1 {
					bad[i] = true
				}
			}
		}
	case colFloat:
		for i := 0; i < n; i++ {
			p := b.phys(i)
			if !c.nullAt(p) && c.floats[p] <= -1e9 {
				bad[i] = true
			}
		}
	case colStr:
		for i := 0; i < n; i++ {
			p := b.phys(i)
			if !c.nullAt(p) && strings.HasPrefix(c.strs[p], data.ErrMarker) {
				bad[i] = true
			}
		}
	case colAny:
		for i := 0; i < n; i++ {
			if data.IsErroneous(c.anys[b.phys(i)]) {
				bad[i] = true
			}
		}
	}
}

func schemaKeyPositions(s etl.Schema) []int {
	var out []int
	for i, a := range s.Attrs {
		if a.Key {
			out = append(out, i)
		}
	}
	return out
}

// measureColumns is the columnar data.Measure: same Stats from the same
// logical rows, produced by per-column scans.
func measureColumns(schema etl.Schema, b *colBatch) data.Stats {
	n := b.len()
	if n == 0 {
		return data.Stats{}
	}
	st := data.Stats{Rows: n}
	for i := range schema.Attrs {
		st.NullCells += b.nullCountAt(i)
	}
	if n > 0 {
		bad := make([]bool, n)
		for j := range b.cols {
			b.cols[j].markErroneous(b, bad)
		}
		for _, x := range bad {
			if x {
				st.Errors++
			}
		}
		if keyPos := schemaKeyPositions(schema); len(keyPos) > 0 {
			hashes := make([]uint64, n)
			b.keyHashes(keyPos, hashes)
			t := newGroupTable(b, keyPos, n)
			for i := 0; i < n; i++ {
				if !t.insert(int32(b.phys(i)), hashes[i]) {
					st.Duplicates++
				}
			}
		}
	}
	return st
}

// ---------------------------------------------------------------------------
// Typed scratch: arena-backed during full executions, freshly allocated when
// results may be retained by an EvalCache (ar == nil), mirroring scratchFor.

func selScratch(ar *batchArena, n int) []int32 {
	if ar != nil {
		return ar.sels.get(n)
	}
	return make([]int32, 0, n)
}

// u64Scratch returns a length-n buffer; callers overwrite every element.
func u64Scratch(ar *batchArena, n int) []uint64 {
	if ar != nil {
		b := ar.u64s.get(n)
		return b[:n]
	}
	return make([]uint64, n)
}

func i64Scratch(ar *batchArena, n int) []int64 {
	if ar != nil {
		return ar.i64s.get(n)
	}
	return make([]int64, 0, n)
}

func f64Scratch(ar *batchArena, n int) []float64 {
	if ar != nil {
		return ar.f64s.get(n)
	}
	return make([]float64, 0, n)
}

func strScratch(ar *batchArena, n int) []string {
	if ar != nil {
		return ar.strs.get(n)
	}
	return make([]string, 0, n)
}

func boolScratch(ar *batchArena, n int) []bool {
	if ar != nil {
		return ar.bools.get(n)
	}
	return make([]bool, 0, n)
}

func anyScratch(ar *batchArena, n int) []etl.Value {
	if ar != nil {
		return ar.anys.get(n)
	}
	return make([]etl.Value, 0, n)
}

// zeroedBools returns an all-false length-n buffer.
func zeroedBools(ar *batchArena, n int) []bool {
	if ar == nil {
		return make([]bool, n)
	}
	b := ar.bools.get(n)[:n]
	for i := range b {
		b[i] = false
	}
	return b
}

// zeroedFloats returns an all-zero length-n buffer.
func zeroedFloats(ar *batchArena, n int) []float64 {
	if ar == nil {
		return make([]float64, n)
	}
	b := ar.f64s.get(n)[:n]
	for i := range b {
		b[i] = 0
	}
	return b
}

// markNullRows sets dst[i] for logical rows whose cell in column j is NULL.
func (b *colBatch) markNullRows(j int, dst []bool) {
	n := b.len()
	if j < 0 || j >= len(b.cols) {
		for i := 0; i < n; i++ {
			dst[i] = true
		}
		return
	}
	c := &b.cols[j]
	switch c.kind {
	case colNull:
		for i := 0; i < n; i++ {
			dst[i] = true
		}
	case colAny:
		for i := 0; i < n; i++ {
			if c.anys[b.phys(i)] == nil {
				dst[i] = true
			}
		}
	default:
		if c.nulls == nil {
			return
		}
		for i := 0; i < n; i++ {
			p := b.phys(i)
			if c.nulls[p>>6]&(1<<(uint(p)&63)) != 0 {
				dst[i] = true
			}
		}
	}
}

// addNumeric adds column j's non-NULL numeric cells into the per-logical-row
// accumulator — the columnar half of computeDerived.
func (b *colBatch) addNumeric(j int, acc []float64) {
	if j < 0 || j >= len(b.cols) {
		return
	}
	c := &b.cols[j]
	n := b.len()
	switch c.kind {
	case colInt:
		for i := 0; i < n; i++ {
			p := b.phys(i)
			if !c.nullAt(p) {
				acc[i] += float64(c.ints[p])
			}
		}
	case colFloat:
		for i := 0; i < n; i++ {
			p := b.phys(i)
			if !c.nullAt(p) {
				acc[i] += c.floats[p]
			}
		}
	case colAny:
		for i := 0; i < n; i++ {
			switch v := c.anys[b.phys(i)].(type) {
			case int64:
				acc[i] += float64(v)
			case float64:
				acc[i] += v
			}
		}
	}
}

// derivedColumn materializes one derived attribute from the accumulator,
// matching computeDerived value for value (including the rendered form of
// string derivations).
func derivedColumn(a etl.Attribute, acc []float64, ar *batchArena) column {
	n := len(acc)
	switch a.Type {
	case etl.TypeInt:
		vals := i64Scratch(ar, n)
		for _, x := range acc {
			vals = append(vals, int64(x))
		}
		return column{kind: colInt, ints: vals}
	case etl.TypeFloat:
		vals := f64Scratch(ar, n)
		for _, x := range acc {
			vals = append(vals, x*1.1)
		}
		return column{kind: colFloat, floats: vals}
	case etl.TypeString:
		vals := strScratch(ar, n)
		var buf [40]byte
		for _, x := range acc {
			b := append(buf[:0], 'd')
			b = strconv.AppendFloat(b, x, 'f', 0, 64)
			vals = append(vals, string(b))
		}
		return column{kind: colStr, strs: vals}
	case etl.TypeBool:
		vals := boolScratch(ar, n)
		for _, x := range acc {
			vals = append(vals, x > 0)
		}
		return column{kind: colBool, bools: vals}
	case etl.TypeDate:
		vals := i64Scratch(ar, n)
		for range acc {
			vals = append(vals, int64(17000))
		}
		return column{kind: colInt, ints: vals}
	default:
		return column{}
	}
}
