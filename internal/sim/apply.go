package sim

import (
	"fmt"
	"strconv"

	"poiesis/internal/data"
	"poiesis/internal/etl"
)

// apply executes one operation on its input batches and returns the output
// batches (one logical output stream; routing to successors happens later).
func (e *Engine) apply(g *etl.Graph, n *etl.Node, in [][]etl.Row, bind Binding, ar *batchArena) ([][]etl.Row, error) {
	switch n.Kind {
	case etl.OpExtract:
		spec, ok := bind[n.ID]
		if !ok {
			spec = e.defaultSpec(n)
		}
		rs := data.Generate(spec)
		return [][]etl.Row{rs.Rows}, nil

	case etl.OpRecovery:
		// During profiling the recovery source is inert (it only feeds rows
		// after a failure); contribute no rows.
		return [][]etl.Row{nil}, nil

	case etl.OpLoad:
		return in, nil

	case etl.OpFilter:
		return [][]etl.Row{e.filter(g, n, flatten(in, ar), ar)}, nil

	case etl.OpFilterNull:
		return [][]etl.Row{filterNulls(g, n, flatten(in, ar), ar)}, nil

	case etl.OpDedup:
		return [][]etl.Row{dedup(g, n, flatten(in, ar), ar)}, nil

	case etl.OpCrosscheck:
		return [][]etl.Row{crosscheck(n, in, ar)}, nil

	case etl.OpDerive:
		return [][]etl.Row{derive(g, n, flatten(in, ar))}, nil

	case etl.OpProject:
		return [][]etl.Row{project(g, n, flatten(in, ar))}, nil

	case etl.OpConvert, etl.OpEncrypt, etl.OpNoop, etl.OpCheckpoint,
		etl.OpSplit, etl.OpPartition, etl.OpMerge, etl.OpUnion, etl.OpSort:
		// Pass-through for data purposes (sort order is irrelevant to the
		// measures; checkpoint persists a snapshot which costs time, modelled
		// in the cost model).
		return [][]etl.Row{flatten(in, ar)}, nil

	case etl.OpSurrogate:
		return [][]etl.Row{surrogate(g, n, flatten(in, ar))}, nil

	case etl.OpJoin, etl.OpLookup:
		if len(in) < 2 {
			// Degenerate join with a single input behaves as pass-through.
			return [][]etl.Row{flatten(in, ar)}, nil
		}
		out, err := join(g, n, in[0], in[1])
		if err != nil {
			return nil, err
		}
		return [][]etl.Row{out}, nil

	case etl.OpAggregate:
		return [][]etl.Row{aggregate(g, n, flatten(in, ar), ar)}, nil

	default:
		return nil, fmt.Errorf("unsupported operation kind %s (inputs %s)", n.Kind, describe(in))
	}
}

// filter drops rows according to the node's selectivity, deterministically
// (hash of the row ordinal), keeping erroneous rows in the stream so that
// downstream cleaning patterns still have work to do.
func (e *Engine) filter(g *etl.Graph, n *etl.Node, rows []etl.Row, ar *batchArena) []etl.Row {
	sel := n.Cost.Selectivity
	if sel >= 1 {
		return rows
	}
	out := scratchFor(ar, rows)
	for i, r := range rows {
		// Deterministic pseudo-random keep decision per row.
		h := hashRow(r, i) % 10000
		if float64(h) < sel*10000 {
			out = append(out, r)
		}
	}
	return out
}

// filterNulls drops rows that carry NULL in any attribute named in the
// "attrs" parameter (comma-separated), or in any attribute when unset. This
// is the FilterNullValues pattern's operation: "a filter that deletes
// entries with null values from its input".
func filterNulls(g *etl.Graph, n *etl.Node, rows []etl.Row, ar *batchArena) []etl.Row {
	schema := g.InputSchema(n.ID)
	positions := attrPositions(schema, n.Param("attrs"))
	out := scratchFor(ar, rows)
	for _, r := range rows {
		null := false
		if len(positions) == 0 {
			for i := range schema.Attrs {
				if r.IsNullAt(i) {
					null = true
					break
				}
			}
		} else {
			for _, i := range positions {
				if r.IsNullAt(i) {
					null = true
					break
				}
			}
		}
		if !null {
			out = append(out, r)
		}
	}
	return out
}

// dedup removes duplicate rows by key attributes (or all attributes when the
// schema has no keys): the RemoveDuplicateEntries pattern's operation.
func dedup(g *etl.Graph, n *etl.Node, rows []etl.Row, ar *batchArena) []etl.Row {
	schema := g.InputSchema(n.ID)
	positions := keyOrAllPositions(schema)
	seen := make(map[string]bool, len(rows))
	out := scratchFor(ar, rows)
	for _, r := range rows {
		k := r.KeyString(positions)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
	}
	return out
}

// crosscheck validates the primary input (in[0]) against an alternative
// source (in[1], when present): rows whose values look erroneous are dropped
// when the alternative disagrees. Detection power comes from the oracle on
// injected defects, mirroring how a real crosscheck would catch out-of-domain
// values.
func crosscheck(n *etl.Node, in [][]etl.Row, ar *batchArena) []etl.Row {
	primary := in[0]
	out := scratchFor(ar, primary)
	for _, r := range primary {
		bad := false
		for _, v := range r {
			if data.IsErroneous(v) {
				bad = true
				break
			}
		}
		if !bad {
			out = append(out, r)
		}
	}
	return out
}

// derive appends computed values for every output attribute that the input
// schema lacks. The computation itself is synthetic (a numeric expression
// over existing fields) but burns the per-tuple cost that makes DERIVE
// VALUES the expensive operation of Fig. 2.
func derive(g *etl.Graph, n *etl.Node, rows []etl.Row) []etl.Row {
	in := g.InputSchema(n.ID)
	var newAttrs []etl.Attribute
	for _, a := range n.Out.Attrs {
		if !in.Has(a.Name) {
			newAttrs = append(newAttrs, a)
		}
	}
	if len(newAttrs) == 0 {
		return rows
	}
	numPos := numericPositions(in)
	out := make([]etl.Row, len(rows))
	for i, r := range rows {
		nr := make(etl.Row, len(r), len(r)+len(newAttrs))
		copy(nr, r)
		for _, a := range newAttrs {
			nr = append(nr, computeDerived(a, r, numPos))
		}
		out[i] = nr
	}
	return out
}

func computeDerived(a etl.Attribute, r etl.Row, numPos []int) etl.Value {
	acc := 0.0
	for _, p := range numPos {
		if p < len(r) && r[p] != nil {
			switch v := r[p].(type) {
			case int64:
				acc += float64(v)
			case float64:
				acc += v
			}
		}
	}
	switch a.Type {
	case etl.TypeInt:
		return int64(acc)
	case etl.TypeFloat:
		return acc * 1.1
	case etl.TypeString:
		return "d" + strconv.FormatFloat(acc, 'f', 0, 64)
	case etl.TypeBool:
		return acc > 0
	case etl.TypeDate:
		return int64(17000)
	default:
		return nil
	}
}

// project keeps only the attributes of the node's output schema, in order.
func project(g *etl.Graph, n *etl.Node, rows []etl.Row) []etl.Row {
	in := g.InputSchema(n.ID)
	positions := make([]int, 0, n.Out.Len())
	for _, a := range n.Out.Attrs {
		positions = append(positions, in.Index(a.Name))
	}
	out := make([]etl.Row, len(rows))
	for i, r := range rows {
		nr := make(etl.Row, len(positions))
		for j, p := range positions {
			if p >= 0 && p < len(r) {
				nr[j] = r[p]
			}
		}
		out[i] = nr
	}
	return out
}

// surrogate assigns a dense surrogate key in the first integer key position
// of the output schema (appending when absent).
func surrogate(g *etl.Graph, n *etl.Node, rows []etl.Row) []etl.Row {
	in := g.InputSchema(n.ID)
	pos := -1
	for _, a := range n.Out.Attrs {
		if a.Key && a.Type == etl.TypeInt && !in.Has(a.Name) {
			pos = n.Out.Index(a.Name)
			break
		}
	}
	out := make([]etl.Row, len(rows))
	for i, r := range rows {
		nr := r.Clone()
		if pos >= 0 {
			for len(nr) <= pos {
				nr = append(nr, nil)
			}
			nr[pos] = int64(i + 1)
		}
		out[i] = nr
	}
	return out
}

// join hash-joins left and right on their shared key attributes (falling
// back to the first shared attribute name).
func join(g *etl.Graph, n *etl.Node, left, right []etl.Row) ([]etl.Row, error) {
	preds := g.Pred(n.ID)
	if len(preds) < 2 {
		return left, nil
	}
	ls := g.Node(preds[0]).Out
	rs := g.Node(preds[1]).Out
	lpos, rpos := sharedKeyPositions(ls, rs)
	if len(lpos) == 0 {
		// No shared attributes: degenerate to the left input (cross products
		// would explode and teach the measures nothing).
		return left, nil
	}
	idx := make(map[string]etl.Row, len(right))
	for _, r := range right {
		idx[r.KeyString(rpos)] = r
	}
	// Output: left row extended by the right row's non-shared attributes.
	extra := nonSharedPositions(rs, ls)
	out := make([]etl.Row, 0, len(left))
	for _, l := range left {
		r, ok := idx[l.KeyString(lpos)]
		if !ok {
			if n.Kind == etl.OpLookup {
				// Lookup keeps unmatched rows with NULL enrichment.
				nr := l.Clone()
				for range extra {
					nr = append(nr, nil)
				}
				out = append(out, nr)
			}
			continue
		}
		nr := l.Clone()
		for _, p := range extra {
			if p < len(r) {
				nr = append(nr, r[p])
			} else {
				nr = append(nr, nil)
			}
		}
		out = append(out, nr)
	}
	return out, nil
}

// aggregate groups rows by the "group_by" parameter attributes (or key
// attributes, or the first attribute) and emits one representative row per
// group.
func aggregate(g *etl.Graph, n *etl.Node, rows []etl.Row, ar *batchArena) []etl.Row {
	in := g.InputSchema(n.ID)
	positions := attrPositions(in, n.Param("group_by"))
	if len(positions) == 0 {
		positions = keyOrAllPositions(in)
		if len(positions) > 1 {
			positions = positions[:1]
		}
	}
	seen := make(map[string]bool, len(rows)/4)
	out := scratchFor(ar, rows)
	for _, r := range rows {
		k := r.KeyString(positions)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
	}
	return out
}

func attrPositions(s etl.Schema, csv string) []int {
	if csv == "" {
		return nil
	}
	var out []int
	start := 0
	for i := 0; i <= len(csv); i++ {
		if i == len(csv) || csv[i] == ',' {
			name := trimSpace(csv[start:i])
			if p := s.Index(name); p >= 0 {
				out = append(out, p)
			}
			start = i + 1
		}
	}
	return out
}

func trimSpace(s string) string {
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\t') {
		s = s[1:]
	}
	for len(s) > 0 && (s[len(s)-1] == ' ' || s[len(s)-1] == '\t') {
		s = s[:len(s)-1]
	}
	return s
}

func keyOrAllPositions(s etl.Schema) []int {
	var out []int
	for i, a := range s.Attrs {
		if a.Key {
			out = append(out, i)
		}
	}
	if len(out) == 0 {
		for i := range s.Attrs {
			out = append(out, i)
		}
	}
	return out
}

func numericPositions(s etl.Schema) []int {
	var out []int
	for i, a := range s.Attrs {
		if a.Type.IsNumeric() {
			out = append(out, i)
		}
	}
	return out
}

func sharedKeyPositions(left, right etl.Schema) (lpos, rpos []int) {
	// Prefer shared key attributes, fall back to any shared attribute.
	for i, a := range left.Attrs {
		if !a.Key {
			continue
		}
		if j := right.Index(a.Name); j >= 0 {
			lpos = append(lpos, i)
			rpos = append(rpos, j)
		}
	}
	if len(lpos) > 0 {
		return lpos, rpos
	}
	for i, a := range left.Attrs {
		if j := right.Index(a.Name); j >= 0 {
			lpos = append(lpos, i)
			rpos = append(rpos, j)
			return lpos, rpos
		}
	}
	return nil, nil
}

func nonSharedPositions(from, other etl.Schema) []int {
	var out []int
	for i, a := range from.Attrs {
		if !other.Has(a.Name) {
			out = append(out, i)
		}
	}
	return out
}

// applyCols executes one operation on its columnar input batches — the same
// dispatch and per-operation semantics as apply, expressed as per-column
// kernels over selection vectors.
func (e *Engine) applyCols(g *etl.Graph, n *etl.Node, in []*colBatch, bind Binding, ar *batchArena) ([]*colBatch, error) {
	switch n.Kind {
	case etl.OpExtract:
		spec, ok := bind[n.ID]
		if !ok {
			spec = e.defaultSpec(n)
		}
		rs := data.Generate(spec)
		return []*colBatch{colFromRows(rs.Rows, spec.Schema.ValueKinds())}, nil

	case etl.OpRecovery:
		return []*colBatch{nil}, nil

	case etl.OpLoad:
		return in, nil

	case etl.OpFilter:
		return []*colBatch{e.colFilter(n, colFlatten(in, ar), ar)}, nil

	case etl.OpFilterNull:
		return []*colBatch{colFilterNulls(g, n, colFlatten(in, ar), ar)}, nil

	case etl.OpDedup:
		return []*colBatch{colDedup(g, n, colFlatten(in, ar), ar)}, nil

	case etl.OpCrosscheck:
		return []*colBatch{colCrosscheck(in[0], ar)}, nil

	case etl.OpDerive:
		return []*colBatch{colDerive(g, n, colFlatten(in, ar), ar)}, nil

	case etl.OpProject:
		return []*colBatch{colProject(g, n, colFlatten(in, ar))}, nil

	case etl.OpConvert, etl.OpEncrypt, etl.OpNoop, etl.OpCheckpoint,
		etl.OpSplit, etl.OpPartition, etl.OpMerge, etl.OpUnion, etl.OpSort:
		return []*colBatch{colFlatten(in, ar)}, nil

	case etl.OpSurrogate:
		return []*colBatch{colSurrogate(g, n, colFlatten(in, ar), ar)}, nil

	case etl.OpJoin, etl.OpLookup:
		if len(in) < 2 {
			return []*colBatch{colFlatten(in, ar)}, nil
		}
		out, err := colJoin(g, n, in[0], in[1], ar)
		if err != nil {
			return nil, err
		}
		return []*colBatch{out}, nil

	case etl.OpAggregate:
		return []*colBatch{colAggregate(g, n, colFlatten(in, ar), ar)}, nil

	default:
		return nil, fmt.Errorf("unsupported operation kind %s (inputs %s)", n.Kind, colDescribe(in))
	}
}

// colFilter drops rows with the exact keep decisions of filter: the per-row
// hash is computed by one typed pass over the first column (selectHashes) and
// the survivors become a selection vector over the shared batch.
func (e *Engine) colFilter(n *etl.Node, b *colBatch, ar *batchArena) *colBatch {
	sel := n.Cost.Selectivity
	if sel >= 1 || b.len() == 0 {
		return b
	}
	nrows := b.len()
	hashes := u64Scratch(ar, nrows)
	b.selectHashes(hashes)
	keep := selScratch(ar, nrows)
	thresh := sel * 10000
	for i := 0; i < nrows; i++ {
		if float64(hashes[i]%10000) < thresh {
			keep = append(keep, int32(b.phys(i)))
		}
	}
	return withSel(b, keep)
}

// colFilterNulls drops rows with a NULL in the named (or all) attributes: one
// bitmap/nil scan per tested column marks the victims, then a single pass
// builds the selection vector.
func colFilterNulls(g *etl.Graph, n *etl.Node, b *colBatch, ar *batchArena) *colBatch {
	nrows := b.len()
	if nrows == 0 {
		return b
	}
	schema := g.InputSchema(n.ID)
	positions := attrPositions(schema, n.Param("attrs"))
	if len(positions) == 0 {
		for i := range schema.Attrs {
			positions = append(positions, i)
		}
		if len(positions) == 0 {
			return b
		}
	}
	null := zeroedBools(ar, nrows)
	for _, j := range positions {
		b.markNullRows(j, null)
	}
	keep := selScratch(ar, nrows)
	for i := 0; i < nrows; i++ {
		if !null[i] {
			keep = append(keep, int32(b.phys(i)))
		}
	}
	return withSel(b, keep)
}

// colDedup keeps the first row of every distinct key without rendering keys:
// column-wise key hashing plus typed-equality verification.
func colDedup(g *etl.Graph, n *etl.Node, b *colBatch, ar *batchArena) *colBatch {
	if b.len() == 0 {
		return b
	}
	return firstByKey(b, keyOrAllPositions(g.InputSchema(n.ID)), ar)
}

// colCrosscheck drops rows carrying an injected defect in any cell, using the
// per-kind defect scans of markErroneous.
func colCrosscheck(b *colBatch, ar *batchArena) *colBatch {
	nrows := b.len()
	if nrows == 0 {
		return b
	}
	bad := zeroedBools(ar, nrows)
	for j := range b.cols {
		b.cols[j].markErroneous(b, bad)
	}
	keep := selScratch(ar, nrows)
	for i := 0; i < nrows; i++ {
		if !bad[i] {
			keep = append(keep, int32(b.phys(i)))
		}
	}
	return withSel(b, keep)
}

// colDerive appends computed columns: the numeric accumulator is built by one
// typed pass per numeric input column, then each new attribute materializes as
// a dense column. The input compacts first so new and shared columns index
// identically.
func colDerive(g *etl.Graph, n *etl.Node, b *colBatch, ar *batchArena) *colBatch {
	in := g.InputSchema(n.ID)
	var newAttrs []etl.Attribute
	for _, a := range n.Out.Attrs {
		if !in.Has(a.Name) {
			newAttrs = append(newAttrs, a)
		}
	}
	if len(newAttrs) == 0 || b.len() == 0 {
		return b
	}
	d := b.compact(ar)
	acc := zeroedFloats(ar, d.n)
	for _, p := range numericPositions(in) {
		d.addNumeric(p, acc)
	}
	cols := make([]column, len(d.cols), len(d.cols)+len(newAttrs))
	copy(cols, d.cols)
	for _, a := range newAttrs {
		cols = append(cols, derivedColumn(a, acc, ar))
	}
	return &colBatch{cols: cols, n: d.n}
}

// colProject picks the output schema's columns by reference — a pure
// metadata operation sharing storage and selection with the input.
func colProject(g *etl.Graph, n *etl.Node, b *colBatch) *colBatch {
	if b.len() == 0 {
		return b
	}
	in := g.InputSchema(n.ID)
	cols := make([]column, 0, n.Out.Len())
	for _, a := range n.Out.Attrs {
		if p := in.Index(a.Name); p >= 0 && p < len(b.cols) {
			cols = append(cols, b.cols[p])
		} else {
			cols = append(cols, column{})
		}
	}
	return &colBatch{cols: cols, n: b.n, sel: b.sel}
}

// colSurrogate writes the dense surrogate key as one int64 column.
func colSurrogate(g *etl.Graph, n *etl.Node, b *colBatch, ar *batchArena) *colBatch {
	in := g.InputSchema(n.ID)
	pos := -1
	for _, a := range n.Out.Attrs {
		if a.Key && a.Type == etl.TypeInt && !in.Has(a.Name) {
			pos = n.Out.Index(a.Name)
			break
		}
	}
	if pos < 0 || b.len() == 0 {
		return b
	}
	d := b.compact(ar)
	width := len(d.cols)
	if pos+1 > width {
		width = pos + 1
	}
	cols := make([]column, width)
	copy(cols, d.cols)
	ids := i64Scratch(ar, d.n)
	for i := 0; i < d.n; i++ {
		ids = append(ids, int64(i+1))
	}
	cols[pos] = column{kind: colInt, ints: ids}
	return &colBatch{cols: cols, n: d.n}
}

// colJoin hash-joins left and right on their shared key attributes: the right
// side is indexed by column-wise key hash (last row wins per key, like the
// row oracle's map build), the left side probes with typed cross-batch
// equality, and the output gathers both sides by match vectors.
func colJoin(g *etl.Graph, n *etl.Node, left, right *colBatch, ar *batchArena) (*colBatch, error) {
	preds := g.Pred(n.ID)
	if len(preds) < 2 {
		return left, nil
	}
	ls := g.Node(preds[0]).Out
	rs := g.Node(preds[1]).Out
	lpos, rpos := sharedKeyPositions(ls, rs)
	if len(lpos) == 0 {
		// No shared attributes: degenerate to the left input.
		return left, nil
	}
	ln := left.len()
	if ln == 0 {
		return left, nil
	}
	rn := right.len()
	jt := &joinTable{left: left, right: right, lpos: lpos, rpos: rpos, m: make(map[uint64][]int32, rn)}
	if rn > 0 {
		rh := u64Scratch(ar, rn)
		right.keyHashes(rpos, rh)
		for i := 0; i < rn; i++ {
			jt.put(int32(right.phys(i)), rh[i])
		}
	}
	extra := nonSharedPositions(rs, ls)
	lidx := selScratch(ar, ln)
	ridx := selScratch(ar, ln)
	lh := u64Scratch(ar, ln)
	left.keyHashes(lpos, lh)
	lookup := n.Kind == etl.OpLookup
	for i := 0; i < ln; i++ {
		lp := int32(left.phys(i))
		q, ok := jt.get(lp, lh[i])
		if !ok {
			if lookup {
				// Lookup keeps unmatched rows with NULL enrichment.
				lidx = append(lidx, lp)
				ridx = append(ridx, -1)
			}
			continue
		}
		lidx = append(lidx, lp)
		ridx = append(ridx, q)
	}
	rw := 0
	if right != nil {
		rw = len(right.cols)
	}
	out := &colBatch{n: len(lidx), cols: make([]column, 0, len(left.cols)+len(extra))}
	for j := range left.cols {
		out.cols = append(out.cols, gatherColumn(&left.cols[j], lidx, ar))
	}
	for _, p := range extra {
		if p < rw {
			out.cols = append(out.cols, gatherColumn(&right.cols[p], ridx, ar))
		} else {
			out.cols = append(out.cols, column{})
		}
	}
	return out, nil
}

// colAggregate emits one representative row per group, keyed like aggregate.
func colAggregate(g *etl.Graph, n *etl.Node, b *colBatch, ar *batchArena) *colBatch {
	if b.len() == 0 {
		return b
	}
	in := g.InputSchema(n.ID)
	positions := attrPositions(in, n.Param("group_by"))
	if len(positions) == 0 {
		positions = keyOrAllPositions(in)
		if len(positions) > 1 {
			positions = positions[:1]
		}
	}
	return firstByKey(b, positions, ar)
}
