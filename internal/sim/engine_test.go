package sim

import (
	"testing"

	"poiesis/internal/data"
	"poiesis/internal/etl"
)

func purchasesSchema() etl.Schema {
	return etl.NewSchema(
		etl.Attribute{Name: "item_id", Type: etl.TypeInt, Key: true},
		etl.Attribute{Name: "qty", Type: etl.TypeInt},
		etl.Attribute{Name: "price", Type: etl.TypeFloat},
		etl.Attribute{Name: "note", Type: etl.TypeString, Nullable: true},
	)
}

// simpleFlow: extract -> filter -> derive -> load
func simpleFlow(t testing.TB) *etl.Graph {
	t.Helper()
	s := purchasesSchema()
	return etl.NewBuilder("simple").
		Op("src", "S_Purchases", etl.OpExtract, s).
		Op("flt", "filter", etl.OpFilter, s).
		Op("drv", "derive", etl.OpDerive, s.With(etl.Attribute{Name: "total", Type: etl.TypeFloat})).
		Op("ld", "DW", etl.OpLoad, etl.Schema{}).
		MustBuild()
}

func binding(g *etl.Graph, rows int, d data.Defects) Binding {
	b := Binding{}
	for _, src := range g.Sources() {
		b[src.ID] = data.SourceSpec{
			Name:           src.Name,
			Schema:         src.Out,
			Rows:           rows,
			Defects:        d,
			UpdatesPerHour: 2,
			Seed:           99,
		}
	}
	return b
}

func TestExecuteSimpleFlow(t *testing.T) {
	g := simpleFlow(t)
	e := NewEngine(DefaultConfig())
	p, err := e.Execute(g, binding(g, 2000, data.Defects{}))
	if err != nil {
		t.Fatal(err)
	}
	if p.RowsInOf("src") != 2000 {
		t.Errorf("source rows = %d", p.RowsInOf("src"))
	}
	// Filter selectivity 0.9 by default.
	if p.RowsInOf("drv") < 1500 || p.RowsInOf("drv") > 2000 {
		t.Errorf("derive input rows = %d", p.RowsInOf("drv"))
	}
	if p.RowsLoaded != p.RowsInOf("ld") {
		t.Errorf("rows loaded %d != sink input %d", p.RowsLoaded, p.RowsInOf("ld"))
	}
	if p.FirstPassMs <= 0 {
		t.Error("first pass time must be positive")
	}
	if p.LatencyPerTupleMs <= 0 {
		t.Error("latency per tuple must be positive")
	}
	// Completion times must be monotone along edges.
	for _, e := range g.Edges() {
		if p.CompletionOf(e.From) > p.CompletionOf(e.To) {
			t.Errorf("completion not monotone on %v", e)
		}
	}
}

func TestExecuteDeterministic(t *testing.T) {
	g := simpleFlow(t)
	e := NewEngine(DefaultConfig())
	b := binding(g, 1000, data.Defects{NullRate: 0.1, DupRate: 0.05, ErrorRate: 0.05})
	p1, err := e.Execute(g, b)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := e.Execute(g, b)
	if err != nil {
		t.Fatal(err)
	}
	if p1.RowsLoaded != p2.RowsLoaded || p1.FirstPassMs != p2.FirstPassMs ||
		p1.OutNullCells != p2.OutNullCells || p1.OutErrRows != p2.OutErrRows {
		t.Error("execution not deterministic")
	}
}

func TestDeriveAddsAttribute(t *testing.T) {
	g := simpleFlow(t)
	e := NewEngine(DefaultConfig())
	p, err := e.Execute(g, binding(g, 100, data.Defects{}))
	if err != nil {
		t.Fatal(err)
	}
	// OutCells counts sink schema width: 5 attrs after derive.
	if p.OutRows == 0 || p.OutCells != p.OutRows*5 {
		t.Errorf("out cells %d for %d rows", p.OutCells, p.OutRows)
	}
}

func TestFilterNullCleansData(t *testing.T) {
	s := purchasesSchema()
	g := etl.NewBuilder("cleaning").
		Op("src", "S", etl.OpExtract, s).
		Op("fnv", "filter_nulls", etl.OpFilterNull, s).
		Op("ld", "DW", etl.OpLoad, etl.Schema{}).
		MustBuild()
	e := NewEngine(DefaultConfig())
	b := binding(g, 3000, data.Defects{NullRate: 0.2})
	p, err := e.Execute(g, b)
	if err != nil {
		t.Fatal(err)
	}
	if p.OutNullCells != 0 {
		t.Errorf("nulls at sink after FilterNull: %d", p.OutNullCells)
	}
	if p.RowsLoaded >= 3000 {
		t.Errorf("FilterNull dropped nothing: %d rows", p.RowsLoaded)
	}

	// Without the cleaner, nulls arrive at the sink.
	g2 := etl.NewBuilder("dirty").
		Op("src", "S", etl.OpExtract, s).
		Op("ld", "DW", etl.OpLoad, etl.Schema{}).
		MustBuild()
	p2, err := e.Execute(g2, binding(g2, 3000, data.Defects{NullRate: 0.2}))
	if err != nil {
		t.Fatal(err)
	}
	if p2.OutNullCells == 0 {
		t.Error("expected nulls at sink without cleaning")
	}
}

func TestDedupRemovesDuplicates(t *testing.T) {
	s := purchasesSchema()
	g := etl.NewBuilder("dedup").
		Op("src", "S", etl.OpExtract, s).
		Op("dd", "dedup", etl.OpDedup, s).
		Op("ld", "DW", etl.OpLoad, etl.Schema{}).
		MustBuild()
	e := NewEngine(DefaultConfig())
	p, err := e.Execute(g, binding(g, 2000, data.Defects{DupRate: 0.15}))
	if err != nil {
		t.Fatal(err)
	}
	if p.OutDupRows != 0 {
		t.Errorf("duplicates at sink after dedup: %d", p.OutDupRows)
	}
	if p.RowsLoaded != 2000 {
		t.Errorf("dedup should restore logical cardinality, got %d", p.RowsLoaded)
	}
}

func TestCrosscheckRemovesErrors(t *testing.T) {
	s := purchasesSchema()
	g := etl.NewBuilder("xcheck").
		Op("src", "S", etl.OpExtract, s).
		Op("cc", "crosscheck", etl.OpCrosscheck, s).
		Op("ld", "DW", etl.OpLoad, etl.Schema{}).
		MustBuild()
	e := NewEngine(DefaultConfig())
	p, err := e.Execute(g, binding(g, 2000, data.Defects{ErrorRate: 0.1}))
	if err != nil {
		t.Fatal(err)
	}
	if p.OutErrRows != 0 {
		t.Errorf("erroneous rows at sink after crosscheck: %d", p.OutErrRows)
	}
	if p.RowsLoaded >= 2000 {
		t.Error("crosscheck should have dropped defective rows")
	}
}

func TestPartitionMergePreservesRows(t *testing.T) {
	s := purchasesSchema()
	g := etl.New("par")
	g.MustAddNode(etl.NewNode("src", "S", etl.OpExtract, s))
	g.MustAddNode(etl.NewNode("part", "partition", etl.OpPartition, s))
	g.MustAddNode(etl.NewNode("d1", "derive1", etl.OpDerive, s))
	g.MustAddNode(etl.NewNode("d2", "derive2", etl.OpDerive, s))
	g.MustAddNode(etl.NewNode("mrg", "merge", etl.OpMerge, s))
	g.MustAddNode(etl.NewNode("ld", "DW", etl.OpLoad, etl.Schema{}))
	g.MustAddEdge("src", "part")
	g.MustAddEdge("part", "d1")
	g.MustAddEdge("part", "d2")
	g.MustAddEdge("d1", "mrg")
	g.MustAddEdge("d2", "mrg")
	g.MustAddEdge("mrg", "ld")
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(DefaultConfig())
	p, err := e.Execute(g, binding(g, 1000, data.Defects{}))
	if err != nil {
		t.Fatal(err)
	}
	if p.RowsLoaded != 1000 {
		t.Errorf("partition+merge lost rows: %d", p.RowsLoaded)
	}
	// Round-robin split: each branch sees about half.
	if p.RowsInOf("d1") != 500 || p.RowsInOf("d2") != 500 {
		t.Errorf("branch rows = %d / %d", p.RowsInOf("d1"), p.RowsInOf("d2"))
	}
}

func TestParallelismSpeedsUpDerive(t *testing.T) {
	mk := func(par int) float64 {
		g := simpleFlow(t)
		g.Node("drv").Cost.PerTuple = 0.05 // make derive dominant
		g.Node("drv").Parallelism = par
		e := NewEngine(DefaultConfig())
		p, err := e.Execute(g, binding(g, 4000, data.Defects{}))
		if err != nil {
			t.Fatal(err)
		}
		return p.FirstPassMs
	}
	t1, t4 := mk(1), mk(4)
	if t4 >= t1 {
		t.Errorf("parallelism 4 (%f) not faster than 1 (%f)", t4, t1)
	}
	if t4 > t1/2 {
		t.Errorf("parallelism 4 gave < 2x speedup on a dominant op: %f vs %f", t4, t1)
	}
}

func TestJoinFlow(t *testing.T) {
	left := etl.NewSchema(
		etl.Attribute{Name: "item_id", Type: etl.TypeInt, Key: true},
		etl.Attribute{Name: "qty", Type: etl.TypeInt},
	)
	right := etl.NewSchema(
		etl.Attribute{Name: "item_id", Type: etl.TypeInt, Key: true},
		etl.Attribute{Name: "label", Type: etl.TypeString},
	)
	joined := left.Union(right)
	g := etl.New("join")
	g.MustAddNode(etl.NewNode("l", "L", etl.OpExtract, left))
	g.MustAddNode(etl.NewNode("r", "R", etl.OpExtract, right))
	g.MustAddNode(etl.NewNode("j", "join", etl.OpJoin, joined))
	g.MustAddNode(etl.NewNode("ld", "DW", etl.OpLoad, etl.Schema{}))
	g.MustAddEdge("l", "j")
	g.MustAddEdge("r", "j")
	g.MustAddEdge("j", "ld")
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	b := Binding{
		"l": {Name: "L", Schema: left, Rows: 1000, Seed: 5},
		"r": {Name: "R", Schema: right, Rows: 800, Seed: 6},
	}
	e := NewEngine(DefaultConfig())
	p, err := e.Execute(g, b)
	if err != nil {
		t.Fatal(err)
	}
	// Keys are ordinals 0..N-1 in both sources: inner join = min(1000, 800).
	if p.RowsLoaded != 800 {
		t.Errorf("join produced %d rows, want 800", p.RowsLoaded)
	}
}

func TestAggregateReducesCardinality(t *testing.T) {
	s := etl.NewSchema(
		etl.Attribute{Name: "grp", Type: etl.TypeString},
		etl.Attribute{Name: "v", Type: etl.TypeInt},
	)
	g := etl.NewBuilder("agg").
		Op("src", "S", etl.OpExtract, s).
		Op("agg", "aggregate", etl.OpAggregate, s).
		Configure(func(n *etl.Node) { n.SetParam("group_by", "grp") }).
		Op("ld", "DW", etl.OpLoad, etl.Schema{}).
		MustBuild()
	e := NewEngine(DefaultConfig())
	p, err := e.Execute(g, binding(g, 5000, data.Defects{}))
	if err != nil {
		t.Fatal(err)
	}
	// grp draws from a 20-word vocabulary.
	if p.RowsLoaded > 20 || p.RowsLoaded == 0 {
		t.Errorf("aggregate output = %d rows, want <= 20", p.RowsLoaded)
	}
}

func TestBlockingMemPeak(t *testing.T) {
	s := purchasesSchema()
	g := etl.NewBuilder("sortmem").
		Op("src", "S", etl.OpExtract, s).
		Op("srt", "sort", etl.OpSort, s).
		Op("ld", "DW", etl.OpLoad, etl.Schema{}).
		MustBuild()
	e := NewEngine(DefaultConfig())
	p, err := e.Execute(g, binding(g, 1234, data.Defects{}))
	if err != nil {
		t.Fatal(err)
	}
	if p.MemRowsPeak != 1234 {
		t.Errorf("mem peak = %d, want 1234", p.MemRowsPeak)
	}
}

func TestCheckpointReducesRestartCost(t *testing.T) {
	g := simpleFlow(t)
	e := NewEngine(DefaultConfig())
	p1, err := e.Execute(g, binding(g, 2000, data.Defects{}))
	if err != nil {
		t.Fatal(err)
	}
	// Insert a savepoint before the expensive derive.
	g2 := g.Clone()
	cp := etl.NewNode(g2.FreshID("cp"), "savepoint", etl.OpCheckpoint, g2.Node("flt").Out)
	if err := g2.InsertOnEdge("flt", "drv", cp); err != nil {
		t.Fatal(err)
	}
	p2, err := e.Execute(g2, binding(g2, 2000, data.Defects{}))
	if err != nil {
		t.Fatal(err)
	}
	if !p2.RestartsFromCheckpoint("drv") {
		t.Error("derive should restart from checkpoint")
	}
	if p2.RestartOf("drv") >= p1.RestartOf("drv") {
		t.Errorf("restart cost with checkpoint (%f) not below without (%f)",
			p2.RestartOf("drv"), p1.RestartOf("drv"))
	}
	if p1.RestartsFromCheckpoint("drv") {
		t.Error("no checkpoint in base flow")
	}
}

func TestRecoverySourceInert(t *testing.T) {
	s := purchasesSchema()
	g := etl.New("rec")
	g.MustAddNode(etl.NewNode("src", "S", etl.OpExtract, s))
	g.MustAddNode(etl.NewNode("rcv", "from_savepoint", etl.OpRecovery, s))
	g.MustAddNode(etl.NewNode("mrg", "merge", etl.OpMerge, s))
	g.MustAddNode(etl.NewNode("ld", "DW", etl.OpLoad, etl.Schema{}))
	g.MustAddEdge("src", "mrg")
	g.MustAddEdge("rcv", "mrg")
	g.MustAddEdge("mrg", "ld")
	e := NewEngine(DefaultConfig())
	p, err := e.Execute(g, binding(g, 500, data.Defects{}))
	if err != nil {
		t.Fatal(err)
	}
	if p.RowsLoaded != 500 {
		t.Errorf("recovery source should add no rows during profiling, got %d", p.RowsLoaded)
	}
}
