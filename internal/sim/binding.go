package sim

import (
	"poiesis/internal/data"
	"poiesis/internal/etl"
)

// AutoBinding generates synthetic source bindings for any flow: every
// extract node receives a deterministic source of the given scale with
// moderate defect rates. The per-source seed mixes the caller's seed with
// the node ID so distinct sources draw independent random streams while the
// whole binding stays reproducible.
func AutoBinding(g *etl.Graph, scale int, seed uint64) Binding {
	if scale <= 0 {
		scale = 5000
	}
	b := Binding{}
	for _, src := range g.Sources() {
		b[src.ID] = data.SourceSpec{
			Name:           src.Name,
			Schema:         src.Out,
			Rows:           scale,
			UpdatesPerHour: 1,
			Seed:           seed ^ hashNodeID(src.ID),
			Defects: data.Defects{
				NullRate:  0.05,
				DupRate:   0.02,
				ErrorRate: 0.03,
			},
		}
	}
	return b
}

func hashNodeID(id etl.NodeID) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return h
}
