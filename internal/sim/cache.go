package sim

import (
	"sync"
	"sync/atomic"

	"poiesis/internal/data"
	"poiesis/internal/etl"
)

// EvalCache memoizes per-node simulation results across the alternative
// flows of one planning run, keyed by upstream-cone fingerprint
// (etl.Graph.ConeKeys). Two nodes with equal cone keys consume byte-identical
// inputs and therefore produce byte-identical outputs, so a candidate flow
// that differs from an already-evaluated design only downstream of some point
// re-simulates nothing upstream of it — the shared-prefix property of the
// planner's explore loop, where every candidate is its parent plus one
// pattern application.
//
// An EvalCache is safe for concurrent use by many evaluation workers. It must
// only be shared between evaluations with the same engine configuration and
// the same source binding: both are inputs to the simulation that the cone
// key deliberately does not capture (the planner creates one cache per
// planning run, which pins both).
//
// Cached outputs are immutable once stored. Operations never mutate their
// input rows, and pass-through operations alias rather than copy, so records
// freely share row storage with one another.
type EvalCache struct {
	mu sync.RWMutex
	m  map[etl.ConeKey]*coneRecord

	// rows counts the flattened row cardinality of stored records; once it
	// exceeds budget, store becomes a no-op. This bounds a run's resident
	// memory: without it, every terminal-depth alternative would park its
	// freshly simulated dirty cone in the cache even though most of those
	// cones are never looked up again. The early, high-value entries — the
	// initial flow and the shallow rounds, which are prefixes of everything
	// generated later — always land before the budget runs out. The count
	// overstates physical memory (pass-through outputs alias their inputs),
	// which errs on the bounded side.
	rows   int64
	budget int64

	hits   atomic.Int64
	misses atomic.Int64
}

// coneRecord is the memoized simulation result of one node cone: the
// pre-routing output batches plus the cardinalities the profile needs.
// Routing to concrete successors is recomputed per graph (it depends on
// downstream wiring, which the cone key deliberately excludes), as is all
// timing. Sink nodes additionally memoize their output-quality scan.
//
// The output is representation-independent: it is stored in whichever form
// the producing engine ran (row batches or column batches) and converted —
// once, memoized — when an engine of the other representation looks the cone
// up, so row and columnar evaluations can share one cache. The cardinalities
// and sink statistics are plain values, identical whichever path computed
// them.
type coneRecord struct {
	rows atomic.Pointer[[][]etl.Row]
	cols atomic.Pointer[[]*colBatch]
	conv sync.Mutex

	rowsIn int
	flat   int

	sink      bool
	sinkStats data.Stats
	sinkRows  int
	sinkCells int
}

// newRowRecord wraps a row-engine node output.
func newRowRecord(out [][]etl.Row, rowsIn, flat int) *coneRecord {
	rec := &coneRecord{rowsIn: rowsIn, flat: flat}
	rec.rows.Store(&out)
	return rec
}

// newColRecord wraps a columnar-engine node output.
func newColRecord(out []*colBatch, rowsIn, flat int) *coneRecord {
	rec := &coneRecord{rowsIn: rowsIn, flat: flat}
	rec.cols.Store(&out)
	return rec
}

// rowBatches returns the output as row batches, lazily converting (and
// memoizing) from the columnar representation when needed.
func (rec *coneRecord) rowBatches() [][]etl.Row {
	if p := rec.rows.Load(); p != nil {
		return *p
	}
	rec.conv.Lock()
	defer rec.conv.Unlock()
	if p := rec.rows.Load(); p != nil {
		return *p
	}
	cb := *rec.cols.Load()
	out := make([][]etl.Row, len(cb))
	for i, b := range cb {
		out[i] = b.toRows()
	}
	rec.rows.Store(&out)
	return out
}

// colBatches returns the output as column batches, lazily converting (and
// memoizing) from the row representation when needed.
func (rec *coneRecord) colBatches() []*colBatch {
	if p := rec.cols.Load(); p != nil {
		return *p
	}
	rec.conv.Lock()
	defer rec.conv.Unlock()
	if p := rec.cols.Load(); p != nil {
		return *p
	}
	rows := *rec.rows.Load()
	out := make([]*colBatch, len(rows))
	for i, b := range rows {
		out[i] = colFromRows(b, nil)
	}
	rec.cols.Store(&out)
	return out
}

// DefaultEvalCacheRows is the default row budget of an evaluation cache
// (counted rows, see EvalCache.budget).
const DefaultEvalCacheRows = 4 << 20

// NewEvalCache returns an empty evaluation cache with the default row
// budget.
func NewEvalCache() *EvalCache {
	return NewEvalCacheWithBudget(DefaultEvalCacheRows)
}

// NewEvalCacheWithBudget returns an empty evaluation cache that stops
// admitting new records once the counted stored rows exceed maxRows
// (lookups of already-stored cones keep hitting); maxRows <= 0 means
// unbounded.
func NewEvalCacheWithBudget(maxRows int64) *EvalCache {
	return &EvalCache{m: map[etl.ConeKey]*coneRecord{}, budget: maxRows}
}

func (c *EvalCache) lookup(k etl.ConeKey) *coneRecord {
	c.mu.RLock()
	rec := c.m[k]
	c.mu.RUnlock()
	if rec == nil {
		c.misses.Add(1)
		return nil
	}
	c.hits.Add(1)
	return rec
}

// store keeps the first record for a key: concurrent workers may simulate
// the same cone simultaneously, and since equal keys imply equal results the
// duplicates are interchangeable. Stores past the row budget are dropped.
// The canonical record for the key is returned (the already-stored one when
// this store lost the race), maximizing representation-conversion sharing.
func (c *EvalCache) store(k etl.ConeKey, rec *coneRecord) *coneRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	if got, ok := c.m[k]; ok {
		return got
	}
	if c.budget <= 0 || c.rows <= c.budget {
		c.m[k] = rec
		c.rows += int64(rec.flat)
	}
	return rec
}

// Len returns the number of memoized node cones.
func (c *EvalCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Stats returns the cumulative node-level hit/miss counters.
func (c *EvalCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
