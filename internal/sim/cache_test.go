package sim

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"poiesis/internal/data"
	"poiesis/internal/etl"
)

// profilesEqual compares two profiles field by field (including the dense
// per-node slices, which are aligned with Order).
func profilesEqual(t *testing.T, full, delta *Profile) {
	t.Helper()
	if !reflect.DeepEqual(full, delta) {
		t.Errorf("delta profile differs from full evaluation:\nfull:  %+v\ndelta: %+v", full, delta)
	}
}

// mutations applies a spread of pattern-like edits covering insertion near
// the source, insertion near the sink, a structural replace, and a
// cost-only change.
func deltaMutations(t *testing.T, base *etl.Graph) map[string]*etl.Graph {
	t.Helper()
	out := map[string]*etl.Graph{}

	nearSrc := base.Clone()
	n1 := etl.NewNode(nearSrc.FreshID("fnv"), "filter_null_values", etl.OpFilterNull,
		nearSrc.Node("src").Out.WithoutNullability())
	if err := nearSrc.InsertOnEdge("src", "flt", n1); err != nil {
		t.Fatal(err)
	}
	out["insert-near-source"] = nearSrc

	nearSink := base.Clone()
	n2 := etl.NewNode(nearSink.FreshID("sp"), "persist", etl.OpCheckpoint, nearSink.Node("drv").Out)
	if err := nearSink.InsertOnEdge("drv", "ld", n2); err != nil {
		t.Fatal(err)
	}
	out["insert-near-sink"] = nearSink

	costOnly := base.Clone()
	costOnly.MutableNode("drv").Cost.PerTuple *= 0.5
	costOnly.MutableNode("drv").Cost.Startup *= 0.5
	out["cost-only"] = costOnly

	sel := base.Clone()
	sel.MutableNode("flt").Cost.Selectivity = 0.42
	out["selectivity"] = sel

	return out
}

// TestDeltaExecuteEquivalence is the engine-level oracle: for a family of
// mutated flows evaluated through one shared cache, every delta profile must
// be byte-identical to an independent full execution.
func TestDeltaExecuteEquivalence(t *testing.T) {
	base := simpleFlow(t)
	bind := binding(base, 1500, data.Defects{NullRate: 0.05, DupRate: 0.02, ErrorRate: 0.03})
	e := NewEngine(DefaultConfig())
	cache := NewEvalCache()

	graphs := deltaMutations(t, base)
	graphs["base"] = base

	// Seed the cache with the base flow, as the planner does.
	if _, err := e.ExecuteDelta(base, bind, cache); err != nil {
		t.Fatal(err)
	}
	for name, g := range graphs {
		full, err := e.Execute(g, bind)
		if err != nil {
			t.Fatalf("%s: full: %v", name, err)
		}
		delta, err := e.ExecuteDelta(g, bind, cache)
		if err != nil {
			t.Fatalf("%s: delta: %v", name, err)
		}
		profilesEqual(t, full, delta)
	}
	if hits, _ := cache.Stats(); hits == 0 {
		t.Error("shared-prefix evaluation produced no cache hits")
	}
	// Cost-only changes must share the entire row simulation with the base
	// flow: evaluating the cost-only variant again misses nothing.
	h0, m0 := cache.Stats()
	if _, err := e.ExecuteDelta(graphs["cost-only"], bind, cache); err != nil {
		t.Fatal(err)
	}
	h1, m1 := cache.Stats()
	if m1 != m0 {
		t.Errorf("cost-only re-evaluation missed the cache %d times", m1-m0)
	}
	if h1-h0 != int64(base.Len()) {
		t.Errorf("cost-only re-evaluation hit %d cones, want %d", h1-h0, base.Len())
	}
}

// TestDeltaEvaluateEquivalence covers the full Evaluate path (profile +
// Monte-Carlo batch) and multi-sink / split routing shapes.
func TestDeltaEvaluateEquivalence(t *testing.T) {
	s := purchasesSchema()
	g := etl.New("split_two_sinks")
	g.MustAddNode(etl.NewNode("src", "S", etl.OpExtract, s))
	spl := etl.NewNode("spl", "route", etl.OpSplit, s)
	spl.SetParam("route", "hash")
	g.MustAddNode(spl)
	g.MustAddNode(etl.NewNode("d1", "d1", etl.OpDerive, s))
	g.MustAddNode(etl.NewNode("d2", "d2", etl.OpDerive, s))
	g.MustAddNode(etl.NewNode("ld1", "DW1", etl.OpLoad, etl.Schema{}))
	g.MustAddNode(etl.NewNode("ld2", "DW2", etl.OpLoad, etl.Schema{}))
	g.MustAddEdge("src", "spl")
	g.MustAddEdge("spl", "d1")
	g.MustAddEdge("spl", "d2")
	g.MustAddEdge("d1", "ld1")
	g.MustAddEdge("d2", "ld2")
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}

	bind := binding(g, 900, data.Defects{NullRate: 0.1})
	e := NewEngine(DefaultConfig())
	cache := NewEvalCache()
	if _, _, err := e.EvaluateDelta(g, bind, cache); err != nil {
		t.Fatal(err)
	}

	// Mutate one branch; the other branch and the source stay cached.
	g2 := g.Clone()
	cp := etl.NewNode(g2.FreshID("sp"), "persist", etl.OpCheckpoint, s)
	if err := g2.InsertOnEdge("d1", "ld1", cp); err != nil {
		t.Fatal(err)
	}
	pFull, bFull, err := e.Evaluate(g2, bind)
	if err != nil {
		t.Fatal(err)
	}
	pDelta, bDelta, err := e.EvaluateDelta(g2, bind, cache)
	if err != nil {
		t.Fatal(err)
	}
	profilesEqual(t, pFull, pDelta)
	if !reflect.DeepEqual(bFull, bDelta) {
		t.Error("delta trace batch differs from full evaluation")
	}
}

// TestEvalCacheConcurrent stresses one shared cache from many goroutines
// evaluating overlapping flows; run with -race in CI.
func TestEvalCacheConcurrent(t *testing.T) {
	base := simpleFlow(t)
	bind := binding(base, 400, data.Defects{NullRate: 0.05})
	e := NewEngine(DefaultConfig())
	cache := NewEvalCache()

	variants := []*etl.Graph{base}
	for i := 0; i < 6; i++ {
		c := base.Clone()
		n := etl.NewNode(c.FreshID("sp"), fmt.Sprintf("persist%d", i), etl.OpCheckpoint, c.Node("flt").Out)
		edge := []string{"src", "flt"}
		if i%2 == 1 {
			edge = []string{"drv", "ld"}
		}
		if err := c.InsertOnEdge(etl.NodeID(edge[0]), etl.NodeID(edge[1]), n); err != nil {
			t.Fatal(err)
		}
		variants = append(variants, c)
	}
	want := make([]*Profile, len(variants))
	for i, g := range variants {
		p, err := e.Execute(g, bind)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = p
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 4; rep++ {
				g := variants[(w+rep)%len(variants)]
				p, err := e.ExecuteDelta(g, bind, cache)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(p, want[(w+rep)%len(variants)]) {
					errs <- fmt.Errorf("worker %d rep %d: delta profile mismatch", w, rep)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
