package sim

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"poiesis/internal/data"
	"poiesis/internal/etl"
)

// columnFixture is one (flow, binding) pair of the columnar-vs-row oracle
// suite. The set covers every operator kernel: filter, filter-null, dedup,
// crosscheck, derive, project, surrogate, join, lookup, aggregate, partition,
// hash- and copy-split, checkpoint, sort and union.
type columnFixture struct {
	name string
	g    *etl.Graph
	bind Binding
}

func columnFixtures(t *testing.T) []columnFixture {
	t.Helper()
	dirty := data.Defects{NullRate: 0.12, DupRate: 0.15, ErrorRate: 0.08}
	var out []columnFixture

	base := simpleFlow(t)
	out = append(out, columnFixture{"simple", base, binding(base, 600, data.Defects{})})
	out = append(out, columnFixture{"simple-dirty", base, binding(base, 600, dirty)})
	for name, g := range deltaMutations(t, base) {
		out = append(out, columnFixture{"mut-" + name, g, binding(g, 600, dirty)})
	}

	s := purchasesSchema()
	clean := etl.NewBuilder("cleaning").
		Op("src", "S", etl.OpExtract, s).
		Op("fnv", "filter_null_values", etl.OpFilterNull, s.WithoutNullability()).
		Op("ddp", "dedup", etl.OpDedup, s).
		Op("xck", "crosscheck", etl.OpCrosscheck, s).
		Op("agg", "aggregate", etl.OpAggregate, s).
		Op("ld", "DW", etl.OpLoad, etl.Schema{}).
		MustBuild()
	out = append(out, columnFixture{"cleaning", clean, binding(clean, 700, dirty)})

	proj := etl.NewBuilder("shape").
		Op("src", "S", etl.OpExtract, s).
		Op("prj", "project", etl.OpProject, s.Project("item_id", "price")).
		Op("srg", "surrogate", etl.OpSurrogate,
			s.Project("item_id", "price").With(etl.Attribute{Name: "sk", Type: etl.TypeInt, Key: true})).
		Op("srt", "sort", etl.OpSort, s.Project("item_id", "price")).
		Op("ld", "DW", etl.OpLoad, etl.Schema{}).
		MustBuild()
	out = append(out, columnFixture{"project-surrogate", proj, binding(proj, 500, dirty)})

	hashsplit := etl.New("hashsplit")
	hashsplit.MustAddNode(etl.NewNode("src", "S", etl.OpExtract, s))
	spl := etl.NewNode("spl", "split", etl.OpSplit, s)
	spl.SetParam("route", "hash")
	hashsplit.MustAddNode(spl)
	hashsplit.MustAddNode(etl.NewNode("ddp", "dedup", etl.OpDedup, s))
	hashsplit.MustAddNode(etl.NewNode("ld1", "A", etl.OpLoad, etl.Schema{}))
	hashsplit.MustAddNode(etl.NewNode("ld2", "B", etl.OpLoad, etl.Schema{}))
	hashsplit.MustAddEdge("src", "spl")
	hashsplit.MustAddEdge("spl", "ddp")
	hashsplit.MustAddEdge("ddp", "ld1")
	hashsplit.MustAddEdge("spl", "ld2")
	out = append(out, columnFixture{"hash-split", hashsplit, binding(hashsplit, 900, dirty)})

	part := etl.New("partition")
	part.MustAddNode(etl.NewNode("src", "S", etl.OpExtract, s))
	part.MustAddNode(etl.NewNode("prt", "partition", etl.OpPartition, s))
	part.MustAddNode(etl.NewNode("d1", "derive1", etl.OpDerive, s.With(etl.Attribute{Name: "t1", Type: etl.TypeString})))
	part.MustAddNode(etl.NewNode("d2", "derive2", etl.OpDerive, s.With(etl.Attribute{Name: "t2", Type: etl.TypeBool})))
	part.MustAddNode(etl.NewNode("mrg", "merge", etl.OpMerge, s))
	part.MustAddNode(etl.NewNode("ld", "DW", etl.OpLoad, etl.Schema{}))
	part.MustAddEdge("src", "prt")
	part.MustAddEdge("prt", "d1")
	part.MustAddEdge("prt", "d2")
	part.MustAddEdge("d1", "mrg")
	part.MustAddEdge("d2", "mrg")
	part.MustAddEdge("mrg", "ld")
	out = append(out, columnFixture{"partition-merge", part, binding(part, 800, dirty)})

	left := etl.NewSchema(
		etl.Attribute{Name: "item_id", Type: etl.TypeInt, Key: true},
		etl.Attribute{Name: "qty", Type: etl.TypeInt},
	)
	right := etl.NewSchema(
		etl.Attribute{Name: "item_id", Type: etl.TypeInt, Key: true},
		etl.Attribute{Name: "label", Type: etl.TypeString},
	)
	for _, kind := range []etl.OpKind{etl.OpJoin, etl.OpLookup} {
		g := etl.New("join-" + kind.String())
		g.MustAddNode(etl.NewNode("l", "L", etl.OpExtract, left))
		g.MustAddNode(etl.NewNode("r", "R", etl.OpExtract, right))
		g.MustAddNode(etl.NewNode("j", "join", kind, left.Union(right)))
		g.MustAddNode(etl.NewNode("ld", "DW", etl.OpLoad, etl.Schema{}))
		g.MustAddEdge("l", "j")
		g.MustAddEdge("r", "j")
		g.MustAddEdge("j", "ld")
		out = append(out, columnFixture{g.Name, g, Binding{
			"l": {Name: "L", Schema: left, Rows: 900, Seed: 5, Defects: dirty},
			"r": {Name: "R", Schema: right, Rows: 400, Seed: 6, Defects: dirty},
		}})
	}
	return out
}

// TestColumnarRowEquivalence is the engine-level oracle: for every fixture
// flow, the columnar engine's profile and trace batch must be byte-identical
// to the row engine's.
func TestColumnarRowEquivalence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Runs = 16
	for _, fx := range columnFixtures(t) {
		t.Run(fx.name, func(t *testing.T) {
			colP, colB, err := NewEngine(cfg).Evaluate(fx.g, fx.bind)
			if err != nil {
				t.Fatal(err)
			}
			rowP, rowB, err := NewRowEngine(cfg).Evaluate(fx.g, fx.bind)
			if err != nil {
				t.Fatal(err)
			}
			profilesEqual(t, rowP, colP)
			if !reflect.DeepEqual(rowB, colB) {
				t.Error("trace batches differ between columnar and row engines")
			}
		})
	}
}

// TestColumnarDeltaEquivalence exercises delta splicing with columnar cone
// records: mutated flows evaluated through one shared cache must match both a
// full columnar run and the row oracle.
func TestColumnarDeltaEquivalence(t *testing.T) {
	base := simpleFlow(t)
	bind := binding(base, 500, data.Defects{NullRate: 0.1, DupRate: 0.1, ErrorRate: 0.05})
	cfg := DefaultConfig()
	e := NewEngine(cfg)
	row := NewRowEngine(cfg)
	cache := NewEvalCache()
	if _, err := e.ExecuteDelta(base, bind, cache); err != nil {
		t.Fatal(err)
	}
	for name, g := range deltaMutations(t, base) {
		delta, err := e.ExecuteDelta(g, bind, cache)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		full, err := e.Execute(g, bind)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		oracle, err := row.Execute(g, bind)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		profilesEqual(t, full, delta)
		profilesEqual(t, oracle, delta)
	}
}

// TestCrossRepresentationCacheSharing shares one EvalCache between a row and
// a columnar engine in both directions: records stored by one representation
// must splice correctly (via lazy conversion) into executions of the other.
func TestCrossRepresentationCacheSharing(t *testing.T) {
	base := simpleFlow(t)
	bind := binding(base, 500, data.Defects{NullRate: 0.1, DupRate: 0.1, ErrorRate: 0.05})
	cfg := DefaultConfig()
	col := NewEngine(cfg)
	row := NewRowEngine(cfg)

	for _, first := range []struct {
		name         string
		seed, splice *Engine
	}{
		{"row-then-columnar", row, col},
		{"columnar-then-row", col, row},
	} {
		t.Run(first.name, func(t *testing.T) {
			cache := NewEvalCache()
			if _, err := first.seed.ExecuteDelta(base, bind, cache); err != nil {
				t.Fatal(err)
			}
			for name, g := range deltaMutations(t, base) {
				delta, err := first.splice.ExecuteDelta(g, bind, cache)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				oracle, err := row.Execute(g, bind)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				profilesEqual(t, oracle, delta)
			}
		})
	}
}

// TestColumnarSharedCacheRace runs concurrent columnar and row evaluations of
// flow variants against one shared cache (run with -race).
func TestColumnarSharedCacheRace(t *testing.T) {
	base := simpleFlow(t)
	bind := binding(base, 300, data.Defects{NullRate: 0.1, DupRate: 0.1, ErrorRate: 0.05})
	cfg := DefaultConfig()
	cfg.Runs = 8
	variants := []*etl.Graph{base}
	for _, g := range deltaMutations(t, base) {
		variants = append(variants, g)
	}
	want := make([]*Profile, len(variants))
	row := NewRowEngine(cfg)
	for i, g := range variants {
		p, err := row.Execute(g, bind)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = p
	}

	cache := NewEvalCache()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		e := NewEngine(cfg)
		if w%4 == 3 {
			e = NewRowEngine(cfg)
		}
		wg.Add(1)
		go func(w int, e *Engine) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				for i, g := range variants {
					p, err := e.ExecuteDelta(g, bind, cache)
					if err != nil {
						errs <- err
						return
					}
					if !reflect.DeepEqual(want[i], p) {
						errs <- fmt.Errorf("worker %d: variant %d diverged from oracle", w, i)
						return
					}
				}
			}
		}(w, e)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type renderedAsX struct{}

func (renderedAsX) String() string { return "x" }

// TestHashValueTypeTags pins the hashRow fallback bugfix: values of distinct
// types that render identically must not collide, while the fast paths keep
// their historical (rendering-compatible) hashes.
func TestHashValueTypeTags(t *testing.T) {
	h := func(v etl.Value) uint64 { return hashRow(etl.Row{v}, 7) }

	if h("x") == h([]byte("x")) {
		t.Error("string and []byte with equal rendering collide")
	}
	if h("x") == h(renderedAsX{}) {
		t.Error("string and fmt.Stringer with equal rendering collide")
	}
	ts := time.Date(2015, 3, 23, 10, 0, 0, 0, time.UTC)
	if h(ts) == h(ts.Format(time.RFC3339Nano)) {
		t.Error("time.Time and its rendered string collide")
	}
	if h(ts) != h(ts) {
		t.Error("time.Time hash not deterministic")
	}
	if h(ts) == h(ts.Add(time.Nanosecond)) {
		t.Error("distinct times collide")
	}

	// Fast paths are unchanged: they hash exactly the %v rendering.
	for _, v := range []etl.Value{int64(42), 3.25, "abc", true, false} {
		want := hashBytes(hashOrdinal(7), []byte(fmt.Sprintf("%v", v)))
		if got := h(v); got != want {
			t.Errorf("fast-path hash of %v changed: got %d want %d", v, got, want)
		}
	}
}

// TestColumnarConversionRoundTrip checks the representation boundary: rows →
// columns → rows is lossless, including NULLs, short rows and mixed-type
// fallback columns.
func TestColumnarConversionRoundTrip(t *testing.T) {
	rows := []etl.Row{
		{int64(1), 2.5, "a", true},
		{int64(2), nil, "b", false},
		{nil, 7.25, nil, true},
		{int64(4), 0.0, "d"}, // short row: trailing cell reads as NULL
	}
	kinds := []etl.ValueKind{etl.KindInt64, etl.KindFloat64, etl.KindString, etl.KindBool}
	got := colFromRows(rows, kinds).toRows()
	want := []etl.Row{
		{int64(1), 2.5, "a", true},
		{int64(2), nil, "b", false},
		{nil, 7.25, nil, true},
		{int64(4), 0.0, "d", nil},
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("round trip:\n got %v\nwant %v", got, want)
	}

	// A column whose cells contradict the typed hint demotes to the any
	// fallback rather than corrupting values.
	mixed := []etl.Row{{int64(1)}, {"two"}, {nil}}
	back := colFromRows(mixed, []etl.ValueKind{etl.KindInt64}).toRows()
	if !reflect.DeepEqual(mixed, back) {
		t.Errorf("mixed column round trip: got %v", back)
	}
}
