package sim

import (
	"testing"
	"testing/quick"

	"poiesis/internal/data"
	"poiesis/internal/etl"
)

func TestSampleDeterministic(t *testing.T) {
	g := simpleFlow(t)
	e := NewEngine(DefaultConfig())
	p, err := e.Execute(g, binding(g, 500, data.Defects{}))
	if err != nil {
		t.Fatal(err)
	}
	a := e.Sample(g, p, 32)
	b := e.Sample(g, p, 32)
	if len(a) != 32 || len(b) != 32 {
		t.Fatalf("run counts: %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i].CycleTimeMs != b[i].CycleTimeMs || a[i].Succeeded != b[i].Succeeded ||
			a[i].FailureCount != b[i].FailureCount {
			t.Fatal("sampling not deterministic")
		}
	}
}

func TestSampleFailureFree(t *testing.T) {
	g := simpleFlow(t)
	for _, n := range g.Nodes() {
		n.Cost.FailureRate = 0
	}
	e := NewEngine(DefaultConfig())
	p, err := e.Execute(g, binding(g, 500, data.Defects{}))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range e.Sample(g, p, 50) {
		if !r.Succeeded || r.FailureCount != 0 || r.RecoveryMs != 0 {
			t.Fatalf("failure-free flow produced failures: %+v", r)
		}
		if r.CycleTimeMs != r.FirstPassMs {
			t.Error("cycle time should equal first pass without failures")
		}
	}
}

func TestSampleAlwaysFailing(t *testing.T) {
	g := simpleFlow(t)
	g.Node("drv").Cost.FailureRate = 1 // fails every attempt
	cfg := DefaultConfig()
	cfg.RetryBudget = 3
	e := NewEngine(cfg)
	p, err := e.Execute(g, binding(g, 100, data.Defects{}))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range e.Sample(g, p, 10) {
		if r.Succeeded {
			t.Fatal("flow with p(fail)=1 op cannot succeed")
		}
		if r.RowsLoaded != 0 {
			t.Error("failed runs load no rows")
		}
	}
}

func TestCheckpointImprovesRecoveryTime(t *testing.T) {
	mk := func(withCP bool) (*etl.Graph, float64) {
		g := simpleFlow(t)
		g.Node("drv").Cost.PerTuple = 0.05
		g.Node("drv").Cost.FailureRate = 0.4 // flaky expensive op
		if withCP {
			cp := etl.NewNode(g.FreshID("cp"), "savepoint", etl.OpCheckpoint, g.Node("flt").Out)
			if err := g.InsertOnEdge("flt", "drv", cp); err != nil {
				t.Fatal(err)
			}
		}
		e := NewEngine(DefaultConfig())
		p, err := e.Execute(g, binding(g, 3000, data.Defects{}))
		if err != nil {
			t.Fatal(err)
		}
		runs := e.Sample(g, p, 200)
		sum := 0.0
		for _, r := range runs {
			sum += r.RecoveryMs
		}
		return g, sum / float64(len(runs))
	}
	_, recBase := mk(false)
	gCP, recCP := mk(true)
	if recCP >= recBase {
		t.Errorf("checkpoint did not reduce mean recovery: %f vs %f", recCP, recBase)
	}
	if gCP.GeneratedCount() != 1 {
		t.Error("fixture should have one generated node")
	}
}

func TestCheckpointsUsedCounted(t *testing.T) {
	g := simpleFlow(t)
	g.Node("drv").Cost.FailureRate = 0.9
	cp := etl.NewNode(g.FreshID("cp"), "savepoint", etl.OpCheckpoint, g.Node("flt").Out)
	if err := g.InsertOnEdge("flt", "drv", cp); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(DefaultConfig())
	p, err := e.Execute(g, binding(g, 100, data.Defects{}))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, r := range e.Sample(g, p, 100) {
		total += r.CheckpointsUsed
	}
	if total == 0 {
		t.Error("recoveries from savepoint never counted")
	}
}

func TestEvaluateProducesBatch(t *testing.T) {
	g := simpleFlow(t)
	e := NewEngine(DefaultConfig())
	p, batch, err := e.Evaluate(g, binding(g, 500, data.Defects{}))
	if err != nil {
		t.Fatal(err)
	}
	if p == nil || batch == nil {
		t.Fatal("nil results")
	}
	if len(batch.Runs) != DefaultConfig().Runs {
		t.Errorf("runs = %d", len(batch.Runs))
	}
	if batch.SourceUpdatesPerHour != 2 {
		t.Errorf("updates/hour = %f", batch.SourceUpdatesPerHour)
	}
	if batch.PeriodMinutes != 60 {
		t.Errorf("default period = %f", batch.PeriodMinutes)
	}
	if batch.SuccessRate() <= 0 {
		t.Error("healthy flow should mostly succeed")
	}
	if batch.MeanCycleTime() < p.FirstPassMs {
		t.Error("mean cycle time below first pass")
	}
}

func TestPeriodMinutesParam(t *testing.T) {
	g := simpleFlow(t)
	g.Node("src").SetParam("schedule.period_minutes", "15")
	if got := periodMinutes(g); got != 15 {
		t.Errorf("period = %f", got)
	}
	g.Node("src").SetParam("schedule.period_minutes", "7.5")
	if got := periodMinutes(g); got != 7.5 {
		t.Errorf("period = %f", got)
	}
	g.Node("src").SetParam("schedule.period_minutes", "bogus")
	if got := periodMinutes(g); got != 60 {
		t.Errorf("period with bad param = %f", got)
	}
}

func TestParseFloat(t *testing.T) {
	cases := map[string]float64{
		"15": 15, "7.5": 7.5, "0.25": 0.25, "": 0, "x": 0, "1.2.3": 0,
	}
	for in, want := range cases {
		if got := parseFloat(in); got != want {
			t.Errorf("parseFloat(%q) = %f, want %f", in, got, want)
		}
	}
}

// Property: cycle time always equals first pass plus recovery, and failed
// runs never load rows.
func TestSampleInvariants(t *testing.T) {
	g := simpleFlow(t)
	e := NewEngine(DefaultConfig())
	p, err := e.Execute(g, binding(g, 200, data.Defects{}))
	if err != nil {
		t.Fatal(err)
	}
	prop := func(frPct uint8, runs uint8) bool {
		g2 := g.Clone()
		g2.MutableNode("drv").Cost.FailureRate = float64(frPct%90) / 100
		p2, err := e.Execute(g2, binding(g2, 200, data.Defects{}))
		if err != nil {
			return false
		}
		for _, r := range e.Sample(g2, p2, int(runs%40)+1) {
			if r.CycleTimeMs != r.FirstPassMs+r.RecoveryMs {
				return false
			}
			if !r.Succeeded && r.RowsLoaded != 0 {
				return false
			}
			if r.RecoveryMs < 0 {
				return false
			}
		}
		_ = p
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkExecute(b *testing.B) {
	g := simpleFlow(b)
	e := NewEngine(DefaultConfig())
	bind := binding(g, 5000, data.Defects{NullRate: 0.05, DupRate: 0.02, ErrorRate: 0.03})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Execute(g, bind); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSample64(b *testing.B) {
	g := simpleFlow(b)
	e := NewEngine(DefaultConfig())
	p, err := e.Execute(g, binding(g, 5000, data.Defects{}))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Sample(g, p, 64)
	}
}
