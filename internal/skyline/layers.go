package skyline

// Layers peels successive skylines off the point set ("onion layers"):
// layer 0 is the Pareto frontier, layer 1 the frontier of the remainder, and
// so on. The UI uses it to offer "next best" designs when the analyst
// rejects the whole frontier. maxLayers <= 0 peels until exhausted.
func Layers(points [][]float64, maxLayers int) [][]int {
	remaining := make([]int, len(points))
	for i := range remaining {
		remaining[i] = i
	}
	var layers [][]int
	for len(remaining) > 0 {
		if maxLayers > 0 && len(layers) == maxLayers {
			break
		}
		sub := make([][]float64, len(remaining))
		for i, idx := range remaining {
			sub[i] = points[idx]
		}
		subSky := Compute(sub)
		layer := make([]int, len(subSky))
		inLayer := make(map[int]bool, len(subSky))
		for i, s := range subSky {
			layer[i] = remaining[s]
			inLayer[remaining[s]] = true
		}
		layers = append(layers, layer)
		next := remaining[:0]
		for _, idx := range remaining {
			if !inLayer[idx] {
				next = append(next, idx)
			}
		}
		remaining = next
	}
	return layers
}

// LayerOf returns the layer index of each point (0 = frontier), peeling all
// layers.
func LayerOf(points [][]float64) []int {
	out := make([]int, len(points))
	for l, layer := range Layers(points, 0) {
		for _, idx := range layer {
			out[idx] = l
		}
	}
	return out
}
