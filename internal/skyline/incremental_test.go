package skyline

import (
	"math/rand"
	"testing"
)

func TestIncrementalEmpty(t *testing.T) {
	inc := NewIncremental()
	if inc.Len() != 0 {
		t.Fatalf("Len = %d", inc.Len())
	}
	if got := inc.Indices(); len(got) != 0 {
		t.Fatalf("Indices = %v", got)
	}
}

func TestIncrementalBasic(t *testing.T) {
	inc := NewIncremental()
	if !inc.Add(0, []float64{1, 1}) {
		t.Error("first point rejected")
	}
	if inc.Add(1, []float64{0.5, 0.5}) {
		t.Error("dominated point accepted")
	}
	if !inc.Add(2, []float64{2, 0.5}) {
		t.Error("incomparable point rejected")
	}
	// Dominates both current members: they must be evicted.
	if !inc.Add(3, []float64{3, 3}) {
		t.Error("dominating point rejected")
	}
	if got := inc.Indices(); len(got) != 1 || got[0] != 3 {
		t.Errorf("Indices = %v, want [3]", got)
	}
}

func TestIncrementalKeepsDuplicates(t *testing.T) {
	inc := NewIncremental()
	inc.Add(0, []float64{1, 2})
	if !inc.Add(1, []float64{1, 2}) {
		t.Error("duplicate of a frontier point rejected; Dominates requires a strict improvement")
	}
	if got := inc.Indices(); len(got) != 2 {
		t.Errorf("Indices = %v, want both duplicates", got)
	}
}

func TestIncrementalMismatchedDimensions(t *testing.T) {
	inc := NewIncremental()
	inc.Add(0, []float64{1, 1})
	// Different-length vectors are incomparable, so both stay.
	if !inc.Add(1, []float64{0.5, 0.5, 0.5}) {
		t.Error("incomparable (different dims) point rejected")
	}
	if inc.Len() != 2 {
		t.Errorf("Len = %d", inc.Len())
	}
}

// TestIncrementalMatchesNaive cross-checks the streaming frontier against the
// O(n²) oracle over random point clouds in several dimensions, including
// clouds with many duplicates.
func TestIncrementalMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, dims := range []int{1, 2, 3, 5} {
		for trial := 0; trial < 20; trial++ {
			n := 1 + rng.Intn(200)
			pts := make([][]float64, n)
			for i := range pts {
				p := make([]float64, dims)
				for d := range p {
					// Coarse grid so dominance and duplicates both occur.
					p[d] = float64(rng.Intn(8))
				}
				pts[i] = p
			}
			inc := NewIncremental()
			for i, p := range pts {
				inc.Add(i, p)
			}
			got := inc.Indices()
			want := Naive(pts)
			if len(got) != len(want) {
				t.Fatalf("dims=%d trial=%d: incremental %v != naive %v", dims, trial, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("dims=%d trial=%d: incremental %v != naive %v", dims, trial, got, want)
				}
			}
		}
	}
}

func BenchmarkIncrementalAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	pts := make([][]float64, 10000)
	for i := range pts {
		x := rng.Float64()
		pts[i] = []float64{x, 1 - x + 0.05*rng.Float64(), rng.Float64()}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inc := NewIncremental()
		for j, p := range pts {
			inc.Add(j, p)
		}
	}
}
