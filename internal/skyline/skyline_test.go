package skyline

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"poiesis/internal/data"
)

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{1, 1}, []float64{0, 0}, true},
		{[]float64{1, 0}, []float64{0, 1}, false},
		{[]float64{1, 1}, []float64{1, 1}, false}, // equal: no strict gain
		{[]float64{1, 2}, []float64{1, 1}, true},
		{[]float64{0, 2}, []float64{1, 1}, false},
	}
	for _, c := range cases {
		if got := Dominates(c.a, c.b); got != c.want {
			t.Errorf("Dominates(%v, %v) = %v", c.a, c.b, got)
		}
	}
}

func TestKnownSkyline(t *testing.T) {
	pts := [][]float64{
		{1, 1, 1}, // 0: dominated by 3
		{5, 0, 0}, // 1: skyline
		{0, 5, 0}, // 2: skyline
		{2, 2, 2}, // 3: skyline
		{2, 2, 1}, // 4: dominated by 3
		{5, 0, 0}, // 5: duplicate of 1 -> also skyline (no strict dominator)
	}
	want := []int{1, 2, 3, 5}
	for name, fn := range map[string]func([][]float64) []int{
		"naive": Naive, "sortfilter": SortFilter, "compute": Compute,
	} {
		got := fn(pts)
		sort.Ints(got)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
}

func TestEmptyAndSingle(t *testing.T) {
	for name, fn := range map[string]func([][]float64) []int{
		"naive": Naive, "sortfilter": SortFilter, "sweep2d": Sweep2D, "compute": Compute,
	} {
		if got := fn(nil); len(got) != 0 {
			t.Errorf("%s(nil) = %v", name, got)
		}
	}
	if got := Compute([][]float64{{1, 2}}); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("single point skyline = %v", got)
	}
}

func TestSweep2DMatchesNaive(t *testing.T) {
	rng := data.NewRNG(3)
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(60) + 1
		pts := make([][]float64, n)
		for i := range pts {
			// Coarse grid provokes ties and duplicates.
			pts[i] = []float64{float64(rng.Intn(8)), float64(rng.Intn(8))}
		}
		a, b := Naive(pts), Sweep2D(pts)
		sort.Ints(a)
		sort.Ints(b)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("trial %d: naive %v != sweep %v (points %v)", trial, a, b, pts)
		}
	}
}

func TestSweep2DPanicsOnWrongDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Sweep2D should panic on 3D input")
		}
	}()
	Sweep2D([][]float64{{1, 2, 3}})
}

func TestComputeUsesSweepOnlyWhenAll2D(t *testing.T) {
	// Mixed dimensionality must not reach Sweep2D's panic.
	pts := [][]float64{{1, 2}, {1, 2, 3}}
	defer func() {
		if r := recover(); r != nil {
			t.Errorf("Compute panicked on mixed dims: %v", r)
		}
	}()
	_ = Compute(pts)
}

// skylineProperties checks the two defining properties of a skyline:
// (1) no member is dominated; (2) every non-member is dominated by a member.
func skylineProperties(pts [][]float64, sky []int) bool {
	in := map[int]bool{}
	for _, i := range sky {
		in[i] = true
	}
	for _, i := range sky {
		for j := range pts {
			if i != j && Dominates(pts[j], pts[i]) {
				return false
			}
		}
	}
	for i := range pts {
		if in[i] {
			continue
		}
		dominated := false
		for _, j := range sky {
			if Dominates(pts[j], pts[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			return false
		}
	}
	return true
}

func TestSkylinePropertiesRandom(t *testing.T) {
	prop := func(seed uint64, n uint8, d uint8) bool {
		rng := data.NewRNG(seed)
		dims := int(d%4) + 2
		count := int(n%100) + 1
		pts := make([][]float64, count)
		for i := range pts {
			pts[i] = make([]float64, dims)
			for j := range pts[i] {
				pts[i][j] = float64(rng.Intn(10))
			}
		}
		for _, fn := range []func([][]float64) []int{Naive, SortFilter, Compute} {
			if !skylineProperties(pts, fn(pts)) {
				return false
			}
		}
		// Algorithms agree.
		a, b := Naive(pts), SortFilter(pts)
		sort.Ints(a)
		sort.Ints(b)
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestSkylineShrinksSpace(t *testing.T) {
	// On anti-correlated random data the skyline is a strict subset.
	rng := data.NewRNG(11)
	pts := make([][]float64, 2000)
	for i := range pts {
		x := rng.Float64()
		pts[i] = []float64{x, 1 - x + 0.1*rng.Float64(), rng.Float64()}
	}
	sky := Compute(pts)
	if len(sky) == 0 || len(sky) >= len(pts) {
		t.Errorf("skyline size = %d of %d", len(sky), len(pts))
	}
}

func randomPoints(rng *data.RNG, n, d int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = make([]float64, d)
		for j := range pts[i] {
			pts[i][j] = rng.Float64()
		}
	}
	return pts
}

func BenchmarkNaive1k3d(b *testing.B)      { benchAlgo(b, Naive, 1000, 3) }
func BenchmarkSortFilter1k3d(b *testing.B) { benchAlgo(b, SortFilter, 1000, 3) }
func BenchmarkSortFilter10k3d(b *testing.B) {
	benchAlgo(b, SortFilter, 10000, 3)
}
func BenchmarkSweep2D10k(b *testing.B) { benchAlgo(b, Sweep2D, 10000, 2) }

func benchAlgo(b *testing.B, fn func([][]float64) []int, n, d int) {
	pts := randomPoints(data.NewRNG(1), n, d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = fn(pts)
	}
}
