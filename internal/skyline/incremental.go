package skyline

import "sort"

// Incremental maintains a Pareto frontier under streaming insertion. The
// planner's streaming pipeline offers each evaluated alternative as it
// arrives instead of collecting the full design space and running one O(n²)
// pass at the end; at any moment the structure holds exactly the
// non-dominated subset of the points offered so far.
//
// Each Add compares the candidate against the current frontier only (at most
// |frontier| dominance checks): a point dominated by any frontier member is
// rejected outright — dominance is transitive, so a point dominated by a
// *dropped* member is also dominated by whichever member dropped it — and an
// accepted point evicts the frontier members it dominates. The final frontier
// is therefore identical, as a set, to Naive/SortFilter/Compute over the same
// points. Duplicates of frontier points are kept, matching Dominates'
// strict-improvement requirement.
//
// Incremental is not safe for concurrent use; the planner's collector stage
// is its single writer.
type Incremental struct {
	ids  []int
	vecs [][]float64
}

// NewIncremental returns an empty frontier.
func NewIncremental() *Incremental { return &Incremental{} }

// Add offers a point with an external identifier. It returns true when the
// point joins the frontier, false when an existing member dominates it. The
// vector is retained; callers must not mutate it afterwards.
func (inc *Incremental) Add(id int, vec []float64) bool {
	for _, v := range inc.vecs {
		if Dominates(v, vec) {
			return false
		}
	}
	keep := 0
	for i := range inc.vecs {
		if !Dominates(vec, inc.vecs[i]) {
			inc.ids[keep], inc.vecs[keep] = inc.ids[i], inc.vecs[i]
			keep++
		}
	}
	inc.ids, inc.vecs = inc.ids[:keep], inc.vecs[:keep]
	inc.ids = append(inc.ids, id)
	inc.vecs = append(inc.vecs, vec)
	return true
}

// Len returns the current frontier size.
func (inc *Incremental) Len() int { return len(inc.ids) }

// Indices returns the identifiers of the current frontier in ascending
// order, matching the output convention of Compute.
func (inc *Incremental) Indices() []int {
	out := append([]int(nil), inc.ids...)
	sort.Ints(out)
	return out
}
