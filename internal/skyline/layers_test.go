package skyline

import (
	"sort"
	"testing"
	"testing/quick"

	"poiesis/internal/data"
)

func TestLayersKnown(t *testing.T) {
	pts := [][]float64{
		{3, 3}, // layer 0
		{2, 2}, // layer 1
		{1, 1}, // layer 2
		{3, 1}, // dominated by {3,3} -> layer 1
	}
	layers := Layers(pts, 0)
	if len(layers) != 3 {
		t.Fatalf("layers = %v", layers)
	}
	if len(layers[0]) != 1 || layers[0][0] != 0 {
		t.Errorf("layer 0 = %v", layers[0])
	}
	got1 := append([]int(nil), layers[1]...)
	sort.Ints(got1)
	if len(got1) != 2 || got1[0] != 1 || got1[1] != 3 {
		t.Errorf("layer 1 = %v", layers[1])
	}
	if len(layers[2]) != 1 || layers[2][0] != 2 {
		t.Errorf("layer 2 = %v", layers[2])
	}
}

func TestLayersMaxCap(t *testing.T) {
	pts := [][]float64{{3, 3}, {2, 2}, {1, 1}}
	layers := Layers(pts, 2)
	if len(layers) != 2 {
		t.Errorf("capped layers = %d", len(layers))
	}
	if got := Layers(nil, 0); got != nil {
		t.Errorf("empty input layers = %v", got)
	}
}

func TestLayerOf(t *testing.T) {
	pts := [][]float64{{3, 3}, {2, 2}, {1, 1}, {3, 1}}
	lo := LayerOf(pts)
	want := []int{0, 1, 2, 1}
	for i := range want {
		if lo[i] != want[i] {
			t.Errorf("LayerOf[%d] = %d, want %d", i, lo[i], want[i])
		}
	}
}

// Properties: layers partition the point set; layer 0 equals the skyline;
// every point in layer k+1 is dominated by some point in layer k.
func TestLayersProperties(t *testing.T) {
	prop := func(seed uint64, n uint8) bool {
		rng := data.NewRNG(seed)
		count := int(n%60) + 1
		pts := make([][]float64, count)
		for i := range pts {
			pts[i] = []float64{float64(rng.Intn(6)), float64(rng.Intn(6)), float64(rng.Intn(6))}
		}
		layers := Layers(pts, 0)
		seen := map[int]bool{}
		total := 0
		for _, l := range layers {
			for _, idx := range l {
				if seen[idx] {
					return false // overlap
				}
				seen[idx] = true
			}
			total += len(l)
		}
		if total != count {
			return false // not a partition
		}
		// Layer 0 = skyline.
		sky := Compute(pts)
		l0 := append([]int(nil), layers[0]...)
		sort.Ints(l0)
		sort.Ints(sky)
		if len(sky) != len(l0) {
			return false
		}
		for i := range sky {
			if sky[i] != l0[i] {
				return false
			}
		}
		// Each deeper point dominated by something one layer up.
		for k := 1; k < len(layers); k++ {
			for _, idx := range layers[k] {
				dominated := false
				for _, up := range layers[k-1] {
					if Dominates(pts[up], pts[idx]) {
						dominated = true
						break
					}
				}
				if !dominated {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
