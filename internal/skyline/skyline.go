// Package skyline computes Pareto frontiers over multidimensional quality
// vectors. POIESIS presents to the user "only the Pareto frontier (skyline)
// of the complete set of alternative designs, based on their evaluation
// according to the examined quality dimensions, where larger values are
// preferred to smaller ones": a design is dropped when another design is at
// least as good in every dimension and strictly better in one.
//
// Three algorithms are provided — naive O(n²), block-nested-loop with a
// monotone presort, and a dedicated two-dimensional sweep — so the planner
// can pick per workload and the benchmarks can ablate the choice.
package skyline

import "sort"

// Dominates reports whether a Pareto-dominates b under maximisation: a is at
// least as large in every dimension and strictly larger in at least one.
// Vectors of different lengths are incomparable (never dominate).
func Dominates(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	strict := false
	for i := range a {
		if a[i] < b[i] {
			return false
		}
		if a[i] > b[i] {
			strict = true
		}
	}
	return strict
}

// Naive computes the skyline by comparing every pair: O(n²·d). It is the
// correctness oracle for the faster variants and wins on tiny inputs.
func Naive(points [][]float64) []int {
	var out []int
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i != j && Dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

// SortFilter computes the skyline with a monotone presort: points are
// processed in decreasing order of coordinate sum, and each point is only
// compared against the skyline found so far. Because no later point in this
// order can dominate an earlier one, a single pass suffices (the classic
// presort BNL of Chomicki et al.).
func SortFilter(points [][]float64) []int {
	n := len(points)
	if n == 0 {
		return nil
	}
	idx := make([]int, n)
	sums := make([]float64, n)
	for i, p := range points {
		idx[i] = i
		s := 0.0
		for _, v := range p {
			s += v
		}
		sums[i] = s
	}
	sort.SliceStable(idx, func(a, b int) bool { return sums[idx[a]] > sums[idx[b]] })

	var sky []int
	for _, i := range idx {
		dominated := false
		for _, j := range sky {
			if Dominates(points[j], points[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			sky = append(sky, i)
		}
	}
	sort.Ints(sky)
	return sky
}

// Sweep2D computes the 2-dimensional skyline in O(n log n): sort by x
// descending (y descending as tie-break) and keep points with strictly
// increasing y. Panics if any point is not 2-dimensional.
func Sweep2D(points [][]float64) []int {
	n := len(points)
	if n == 0 {
		return nil
	}
	idx := make([]int, n)
	for i := range idx {
		if len(points[i]) != 2 {
			panic("skyline: Sweep2D requires 2-dimensional points")
		}
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		pa, pb := points[idx[a]], points[idx[b]]
		if pa[0] != pb[0] {
			return pa[0] > pb[0]
		}
		return pa[1] > pb[1]
	})
	var sky []int
	bestY := 0.0
	first := true
	lastX := 0.0
	for _, i := range idx {
		p := points[i]
		if first {
			sky = append(sky, i)
			bestY, lastX, first = p[1], p[0], false
			continue
		}
		if p[0] == lastX && p[1] == bestY {
			// Duplicate of the current frontier point: not dominated
			// (domination requires a strict improvement), keep it.
			sky = append(sky, i)
			continue
		}
		if p[1] > bestY {
			sky = append(sky, i)
			bestY, lastX = p[1], p[0]
		}
	}
	sort.Ints(sky)
	return sky
}

// Compute picks the best algorithm for the input: the 2D sweep when
// applicable, otherwise the presorted filter.
func Compute(points [][]float64) []int {
	if len(points) > 0 && len(points[0]) == 2 {
		ok := true
		for _, p := range points {
			if len(p) != 2 {
				ok = false
				break
			}
		}
		if ok {
			return Sweep2D(points)
		}
	}
	return SortFilter(points)
}
