package etl

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// DOT renders the flow in Graphviz DOT format: operation kinds select node
// shapes, pattern-generated nodes are highlighted, and edges follow the
// transition order. Useful to inspect redesigns visually.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Name)
	b.WriteString("  rankdir=LR;\n  node [fontsize=10];\n")
	for _, n := range g.Nodes() {
		shape := "box"
		switch {
		case n.Kind.IsSource():
			shape = "invhouse"
		case n.Kind.IsSink():
			shape = "house"
		case n.Kind == OpSplit || n.Kind == OpPartition || n.Kind == OpMerge || n.Kind == OpUnion:
			shape = "diamond"
		case n.Kind == OpCheckpoint:
			shape = "cylinder"
		}
		style := ""
		if n.Generated {
			style = `, style=filled, fillcolor="#ffd8a8"`
		}
		fmt.Fprintf(&b, "  %q [label=\"%s\\n(%s)\", shape=%s%s];\n",
			string(n.ID), escapeDOT(n.Name), n.Kind, shape, style)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  %q -> %q;\n", string(e.From), string(e.To))
	}
	b.WriteString("}\n")
	return b.String()
}

func escapeDOT(s string) string {
	return strings.NewReplacer(`"`, `\"`, "\n", `\n`).Replace(s)
}

// jsonGraph is the JSON wire format of a flow (used by the CLI export and
// intended for UI consumption).
type jsonGraph struct {
	Name  string     `json:"name"`
	Nodes []jsonNode `json:"nodes"`
	Edges []jsonEdge `json:"edges"`
}

type jsonNode struct {
	ID          string            `json:"id"`
	Name        string            `json:"name"`
	Kind        string            `json:"kind"`
	Parallelism int               `json:"parallelism,omitempty"`
	Generated   bool              `json:"generated,omitempty"`
	Pattern     string            `json:"pattern,omitempty"`
	Schema      []jsonAttr        `json:"schema,omitempty"`
	Params      map[string]string `json:"params,omitempty"`
	Cost        jsonCost          `json:"cost"`
}

type jsonAttr struct {
	Name     string `json:"name"`
	Type     string `json:"type"`
	Nullable bool   `json:"nullable,omitempty"`
	Key      bool   `json:"key,omitempty"`
}

type jsonCost struct {
	Startup     float64 `json:"startup"`
	PerTuple    float64 `json:"perTuple"`
	Selectivity float64 `json:"selectivity"`
	FailureRate float64 `json:"failureRate"`
	MemPerTuple float64 `json:"memPerTuple,omitempty"`
}

type jsonEdge struct {
	From string `json:"from"`
	To   string `json:"to"`
}

// MarshalJSON renders the attribute in the same shape the flow wire format
// uses for node schemas (type as its lower-case name), so schemas embedded in
// other documents — e.g. session snapshots carrying source bindings — share
// one serialization with the graph export.
func (a Attribute) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonAttr{
		Name: a.Name, Type: a.Type.String(), Nullable: a.Nullable, Key: a.Key,
	})
}

// UnmarshalJSON is the inverse of Attribute.MarshalJSON.
func (a *Attribute) UnmarshalJSON(b []byte) error {
	var ja jsonAttr
	if err := json.Unmarshal(b, &ja); err != nil {
		return fmt.Errorf("etl: parsing attribute: %w", err)
	}
	*a = Attribute{Name: ja.Name, Type: ParseAttrType(ja.Type), Nullable: ja.Nullable, Key: ja.Key}
	return nil
}

// MarshalJSON implements json.Marshaler with a stable, UI-friendly format.
func (g *Graph) MarshalJSON() ([]byte, error) {
	doc := jsonGraph{Name: g.Name}
	for _, n := range g.Nodes() {
		jn := jsonNode{
			ID:          string(n.ID),
			Name:        n.Name,
			Kind:        n.Kind.String(),
			Parallelism: n.Parallelism,
			Generated:   n.Generated,
			Pattern:     n.PatternName,
			Cost: jsonCost{
				Startup:     n.Cost.Startup,
				PerTuple:    n.Cost.PerTuple,
				Selectivity: n.Cost.Selectivity,
				FailureRate: n.Cost.FailureRate,
				MemPerTuple: n.Cost.MemPerTuple,
			},
		}
		for _, a := range n.Out.Attrs {
			jn.Schema = append(jn.Schema, jsonAttr{
				Name: a.Name, Type: a.Type.String(), Nullable: a.Nullable, Key: a.Key,
			})
		}
		if len(n.Params) > 0 {
			jn.Params = make(map[string]string, len(n.Params))
			for k, v := range n.Params {
				jn.Params[k] = v
			}
		}
		doc.Nodes = append(doc.Nodes, jn)
	}
	for _, e := range g.Edges() {
		doc.Edges = append(doc.Edges, jsonEdge{From: string(e.From), To: string(e.To)})
	}
	return json.Marshal(doc)
}

// UnmarshalJSON implements json.Unmarshaler; the result is validated.
func (g *Graph) UnmarshalJSON(b []byte) error {
	var doc jsonGraph
	if err := json.Unmarshal(b, &doc); err != nil {
		return fmt.Errorf("etl: parsing JSON flow: %w", err)
	}
	fresh := New(doc.Name)
	for _, jn := range doc.Nodes {
		kind := ParseOpKind(jn.Kind)
		if kind == OpUnknown {
			return fmt.Errorf("etl: node %s has unknown kind %q", jn.ID, jn.Kind)
		}
		var schema Schema
		for _, a := range jn.Schema {
			schema.Attrs = append(schema.Attrs, Attribute{
				Name: a.Name, Type: ParseAttrType(a.Type), Nullable: a.Nullable, Key: a.Key,
			})
		}
		n := NewNode(NodeID(jn.ID), jn.Name, kind, schema)
		if jn.Parallelism > 0 {
			n.Parallelism = jn.Parallelism
		}
		n.Generated = jn.Generated
		n.PatternName = jn.Pattern
		n.Cost = Cost{
			Startup:     jn.Cost.Startup,
			PerTuple:    jn.Cost.PerTuple,
			Selectivity: jn.Cost.Selectivity,
			FailureRate: jn.Cost.FailureRate,
			MemPerTuple: jn.Cost.MemPerTuple,
		}
		for k, v := range jn.Params {
			n.SetParam(k, v)
		}
		if err := fresh.AddNode(n); err != nil {
			return err
		}
	}
	for _, e := range doc.Edges {
		if err := fresh.AddEdge(NodeID(e.From), NodeID(e.To)); err != nil {
			return err
		}
	}
	if err := fresh.Validate(); err != nil {
		return fmt.Errorf("etl: invalid JSON flow: %w", err)
	}
	g.adopt(fresh)
	return nil
}

// Diff describes the structural difference between two flows, typically an
// initial design and a redesign: which operations and transitions were
// added or removed. The Planner's selection UI uses it to summarise "what
// this alternative changes".
type Diff struct {
	AddedNodes   []NodeID
	RemovedNodes []NodeID
	AddedEdges   []Edge
	RemovedEdges []Edge
	// ChangedNodes lists nodes present in both flows whose configuration
	// (kind, name, schema, params, cost, parallelism) differs.
	ChangedNodes []NodeID
}

// IsEmpty reports whether the flows are structurally identical.
func (d Diff) IsEmpty() bool {
	return len(d.AddedNodes) == 0 && len(d.RemovedNodes) == 0 &&
		len(d.AddedEdges) == 0 && len(d.RemovedEdges) == 0 && len(d.ChangedNodes) == 0
}

// String renders a compact +/-/~ summary.
func (d Diff) String() string {
	var parts []string
	for _, n := range d.AddedNodes {
		parts = append(parts, "+"+string(n))
	}
	for _, n := range d.RemovedNodes {
		parts = append(parts, "-"+string(n))
	}
	for _, n := range d.ChangedNodes {
		parts = append(parts, "~"+string(n))
	}
	for _, e := range d.AddedEdges {
		parts = append(parts, "+"+e.String())
	}
	for _, e := range d.RemovedEdges {
		parts = append(parts, "-"+e.String())
	}
	if len(parts) == 0 {
		return "(identical)"
	}
	return strings.Join(parts, " ")
}

// DiffFlows compares base with next by node ID.
func DiffFlows(base, next *Graph) Diff {
	var d Diff
	baseIDs := map[NodeID]bool{}
	for _, id := range base.NodeIDs() {
		baseIDs[id] = true
	}
	for _, id := range next.NodeIDs() {
		if !baseIDs[id] {
			d.AddedNodes = append(d.AddedNodes, id)
		} else if base.Node(id).canonical() != next.Node(id).canonical() {
			d.ChangedNodes = append(d.ChangedNodes, id)
		}
	}
	nextIDs := map[NodeID]bool{}
	for _, id := range next.NodeIDs() {
		nextIDs[id] = true
	}
	for _, id := range base.NodeIDs() {
		if !nextIDs[id] {
			d.RemovedNodes = append(d.RemovedNodes, id)
		}
	}
	baseEdges := map[Edge]bool{}
	for _, e := range base.Edges() {
		baseEdges[e] = true
	}
	for _, e := range next.Edges() {
		if !baseEdges[e] {
			d.AddedEdges = append(d.AddedEdges, e)
		}
	}
	nextEdges := map[Edge]bool{}
	for _, e := range next.Edges() {
		nextEdges[e] = true
	}
	for _, e := range base.Edges() {
		if !nextEdges[e] {
			d.RemovedEdges = append(d.RemovedEdges, e)
		}
	}
	sort.Slice(d.AddedNodes, func(i, j int) bool { return d.AddedNodes[i] < d.AddedNodes[j] })
	sort.Slice(d.RemovedNodes, func(i, j int) bool { return d.RemovedNodes[i] < d.RemovedNodes[j] })
	sort.Slice(d.ChangedNodes, func(i, j int) bool { return d.ChangedNodes[i] < d.ChangedNodes[j] })
	return d
}
