package etl

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Common graph construction and validation errors.
var (
	ErrDuplicateNode = errors.New("etl: duplicate node id")
	ErrUnknownNode   = errors.New("etl: unknown node id")
	ErrDuplicateEdge = errors.New("etl: duplicate edge")
	ErrSelfLoop      = errors.New("etl: self loop")
	ErrCycle         = errors.New("etl: graph contains a cycle")
	ErrNotConnected  = errors.New("etl: node not connected to any sink")
	ErrArity         = errors.New("etl: operation arity violated")
	ErrNoSource      = errors.New("etl: graph has no source operation")
	ErrNoSink        = errors.New("etl: graph has no sink operation")
	ErrSchema        = errors.New("etl: schema incompatibility")
)

// Graph is an ETL process flow: a DAG whose vertices are ETL operations and
// whose directed edges are transitions between consecutive operations.
//
// The zero value is not usable; create graphs with New.
//
// Cloning is copy-on-write: Clone copies the adjacency indexes but shares the
// Node values (and their schemas and parameter maps) between the original and
// the copy. Structural mutations (AddNode, AddEdge, InsertOnEdge, ...) are
// always safe on either graph; to modify a node in place after a Clone, use
// MutableNode, which unshares the node first. Mutating a Node obtained from
// Node() directly on a graph that has live clones writes through to every
// clone sharing it.
type Graph struct {
	// Name labels the process (e.g. "tpcds_purchases").
	Name string

	nodes map[NodeID]*Node
	succ  map[NodeID][]NodeID
	pred  map[NodeID][]NodeID

	// order preserves insertion order of nodes for deterministic iteration.
	order []NodeID

	// seq generates fresh node IDs for pattern-inserted operations.
	seq int

	// epoch counts how many times this graph has been cloned; 0 means never,
	// so every node is exclusively owned. owned records, per node, the epoch
	// at which this graph unshared (or added) it — entries stamped with an
	// older epoch are stale, because a clone taken since then shares the
	// node again. The counter is atomic so that many workers may clone the
	// same parent flow concurrently; the owned map itself is only touched by
	// mutations, which are single-goroutine by the graph's contract.
	epoch atomic.Uint64
	owned map[NodeID]uint64

	// topo caches the topological order and fp the canonical fingerprint;
	// mutators (and MutableNode, for fp) invalidate them. The cached values
	// are immutable: invalidation swaps the pointer, never the contents, so
	// previously returned values stay valid. Atomic so that concurrent
	// readers (evaluation workers cloning the same parent flow) may fill
	// them lazily without a lock.
	topo atomic.Pointer[[]NodeID]
	fp   atomic.Pointer[string]
}

// adopt moves the fully built src graph's state into g (UnmarshalJSON
// decodes into a temporary and installs it here). A plain struct assignment
// would copy the atomic topo cache, which the race detector forbids.
func (g *Graph) adopt(src *Graph) {
	g.Name = src.Name
	g.nodes = src.nodes
	g.succ = src.succ
	g.pred = src.pred
	g.order = src.order
	g.seq = src.seq
	g.owned = src.owned
	g.epoch.Store(src.epoch.Load())
	g.topo.Store(src.topo.Load())
	g.fp.Store(src.fp.Load())
}

// New creates an empty graph with the given name.
func New(name string) *Graph {
	return &Graph{
		Name:  name,
		nodes: map[NodeID]*Node{},
		succ:  map[NodeID][]NodeID{},
		pred:  map[NodeID][]NodeID{},
	}
}

// Len returns the number of nodes |V|.
func (g *Graph) Len() int { return len(g.nodes) }

// EdgeCount returns the number of edges |E|.
func (g *Graph) EdgeCount() int {
	n := 0
	for _, s := range g.succ {
		n += len(s)
	}
	return n
}

// AddNode inserts a node. It fails if the ID is already taken.
func (g *Graph) AddNode(n *Node) error {
	if n == nil || n.ID == "" {
		return fmt.Errorf("%w: empty node", ErrUnknownNode)
	}
	if _, ok := g.nodes[n.ID]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateNode, n.ID)
	}
	g.nodes[n.ID] = n
	g.order = append(g.order, n.ID)
	if ep := g.epoch.Load(); ep != 0 {
		if g.owned == nil {
			g.owned = map[NodeID]uint64{}
		}
		g.owned[n.ID] = ep
	}
	g.topo.Store(nil)
	g.fp.Store(nil)
	return nil
}

// MustAddNode inserts a node and panics on error. Intended for builders of
// fixed fixture flows where an error is a programming bug.
func (g *Graph) MustAddNode(n *Node) *Node {
	if err := g.AddNode(n); err != nil {
		panic(err)
	}
	return n
}

// RemoveNode deletes a node and every edge touching it.
func (g *Graph) RemoveNode(id NodeID) error {
	if _, ok := g.nodes[id]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, id)
	}
	for _, p := range append([]NodeID(nil), g.pred[id]...) {
		g.removeEdge(p, id)
	}
	for _, s := range append([]NodeID(nil), g.succ[id]...) {
		g.removeEdge(id, s)
	}
	delete(g.nodes, id)
	delete(g.succ, id)
	delete(g.pred, id)
	delete(g.owned, id)
	for i, o := range g.order {
		if o == id {
			g.order = append(g.order[:i], g.order[i+1:]...)
			break
		}
	}
	g.topo.Store(nil)
	g.fp.Store(nil)
	return nil
}

// AddEdge inserts the transition from -> to. Both endpoints must exist; self
// loops and duplicate edges are rejected.
func (g *Graph) AddEdge(from, to NodeID) error {
	if from == to {
		return fmt.Errorf("%w: %s", ErrSelfLoop, from)
	}
	if _, ok := g.nodes[from]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, from)
	}
	if _, ok := g.nodes[to]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, to)
	}
	for _, s := range g.succ[from] {
		if s == to {
			return fmt.Errorf("%w: %s->%s", ErrDuplicateEdge, from, to)
		}
	}
	g.succ[from] = append(g.succ[from], to)
	g.pred[to] = append(g.pred[to], from)
	g.topo.Store(nil)
	g.fp.Store(nil)
	return nil
}

// MustAddEdge inserts an edge and panics on error.
func (g *Graph) MustAddEdge(from, to NodeID) {
	if err := g.AddEdge(from, to); err != nil {
		panic(err)
	}
}

// RemoveEdge deletes the transition from -> to.
func (g *Graph) RemoveEdge(from, to NodeID) error {
	for _, s := range g.succ[from] {
		if s == to {
			g.removeEdge(from, to)
			return nil
		}
	}
	return fmt.Errorf("%w: %s->%s", ErrUnknownNode, from, to)
}

func (g *Graph) removeEdge(from, to NodeID) {
	g.succ[from] = removeID(g.succ[from], to)
	g.pred[to] = removeID(g.pred[to], from)
	g.topo.Store(nil)
	g.fp.Store(nil)
}

// removeID returns list without id. It always allocates a fresh slice: the
// adjacency slices may be shared with clones of the graph (copy-on-write
// Clone), so shifting elements in place would corrupt the sharers' views.
func removeID(list []NodeID, id NodeID) []NodeID {
	for i, v := range list {
		if v == id {
			out := make([]NodeID, 0, len(list)-1)
			out = append(out, list[:i]...)
			return append(out, list[i+1:]...)
		}
	}
	return list
}

// HasEdge reports whether the transition from -> to exists.
func (g *Graph) HasEdge(from, to NodeID) bool {
	for _, s := range g.succ[from] {
		if s == to {
			return true
		}
	}
	return false
}

// Node returns the node with the given ID, or nil. The returned node may be
// shared with clones of this graph; callers that intend to modify it must go
// through MutableNode instead.
func (g *Graph) Node(id NodeID) *Node { return g.nodes[id] }

// MutableNode returns the node with the given ID for in-place modification,
// first unsharing it (deep copy) when it is shared with clones of this graph.
// Pattern implementations and any other code that edits node fields, params
// or costs on a cloned flow must use this accessor; plain Node() reads stay
// allocation-free.
func (g *Graph) MutableNode(id NodeID) *Node {
	n := g.nodes[id]
	if n == nil {
		return nil
	}
	ep := g.epoch.Load()
	if ep == 0 || g.owned[id] == ep {
		// Never cloned, or unshared since the most recent clone. The caller
		// is about to modify the node, so the cached fingerprint dies here
		// too.
		g.fp.Store(nil)
		return n
	}
	c := n.Clone()
	g.nodes[id] = c
	if g.owned == nil {
		g.owned = map[NodeID]uint64{}
	}
	g.owned[id] = ep
	g.fp.Store(nil)
	return c
}

// Nodes returns all nodes in insertion order.
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, 0, len(g.order))
	for _, id := range g.order {
		out = append(out, g.nodes[id])
	}
	return out
}

// NodeIDs returns all node IDs in insertion order.
func (g *Graph) NodeIDs() []NodeID {
	return append([]NodeID(nil), g.order...)
}

// Edges returns all edges ordered by source insertion order then target
// order, which keeps iteration deterministic.
func (g *Graph) Edges() []Edge {
	var out []Edge
	for _, id := range g.order {
		for _, s := range g.succ[id] {
			out = append(out, Edge{From: id, To: s})
		}
	}
	return out
}

// Succ returns the successors of id in insertion order of edges.
func (g *Graph) Succ(id NodeID) []NodeID {
	return append([]NodeID(nil), g.succ[id]...)
}

// Pred returns the predecessors of id.
func (g *Graph) Pred(id NodeID) []NodeID {
	return append([]NodeID(nil), g.pred[id]...)
}

// SuccView returns the successors of id without copying. The returned slice
// is a view into the graph's adjacency index: callers must not modify it, and
// it is only valid until the next graph mutation. Hot paths (the simulator)
// use it to avoid one allocation per node per execution.
func (g *Graph) SuccView(id NodeID) []NodeID { return g.succ[id] }

// PredView returns the predecessors of id without copying; same contract as
// SuccView.
func (g *Graph) PredView(id NodeID) []NodeID { return g.pred[id] }

// InDegree returns the number of incoming edges of id.
func (g *Graph) InDegree(id NodeID) int { return len(g.pred[id]) }

// OutDegree returns the number of outgoing edges of id.
func (g *Graph) OutDegree(id NodeID) int { return len(g.succ[id]) }

// Sources returns the nodes with no incoming edges, in insertion order.
func (g *Graph) Sources() []*Node {
	var out []*Node
	for _, id := range g.order {
		if len(g.pred[id]) == 0 {
			out = append(out, g.nodes[id])
		}
	}
	return out
}

// Sinks returns the nodes with no outgoing edges, in insertion order.
func (g *Graph) Sinks() []*Node {
	var out []*Node
	for _, id := range g.order {
		if len(g.succ[id]) == 0 {
			out = append(out, g.nodes[id])
		}
	}
	return out
}

// FreshID mints a node ID that does not collide with any existing node.
// Pattern applications use it when weaving generated operations into a flow.
func (g *Graph) FreshID(prefix string) NodeID {
	for {
		g.seq++
		id := NodeID(fmt.Sprintf("%s_%d", prefix, g.seq))
		if _, ok := g.nodes[id]; !ok {
			return id
		}
	}
}

// Clone returns a copy-on-write copy of the graph. Node IDs are preserved.
//
// The adjacency indexes are copied, but the Node values (with their schemas
// and parameter maps) are shared between the two graphs until one of them
// modifies a node through MutableNode — the planner clones every frontier
// design once per candidate pattern application, and deep-copying ~|V| nodes
// per clone dominated generation cost. Structural mutations on either graph
// never affect the other: the shared adjacency slices are capacity-clamped so
// appends reallocate, and removeID always copies.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		Name:  g.Name,
		seq:   g.seq,
		nodes: make(map[NodeID]*Node, len(g.nodes)),
		succ:  make(map[NodeID][]NodeID, len(g.succ)),
		pred:  make(map[NodeID][]NodeID, len(g.pred)),
		order: append(make([]NodeID, 0, len(g.order)), g.order...),
	}
	c.epoch.Store(1)
	for id, n := range g.nodes {
		c.nodes[id] = n
	}
	for id, s := range g.succ {
		if len(s) > 0 {
			c.succ[id] = s[:len(s):len(s)]
		}
	}
	for id, p := range g.pred {
		if len(p) > 0 {
			c.pred[id] = p[:len(p):len(p)]
		}
	}
	// The structure is identical, so the clone inherits the cached topological
	// order and fingerprint; its own mutations will invalidate only its
	// copies of the pointers.
	c.topo.Store(g.topo.Load())
	c.fp.Store(g.fp.Load())
	// From now on this graph's nodes are shared too: bumping the epoch makes
	// every existing ownership entry stale, so further in-place edits on
	// either side go back through MutableNode's unsharing copy. The bump is
	// atomic because many evaluation workers clone the same parent flow
	// concurrently.
	g.epoch.Add(1)
	return c
}

// TopoSort returns the node IDs in a deterministic topological order
// (Kahn's algorithm with insertion-order tie-breaking). It fails with
// ErrCycle if the graph is not acyclic. The result is a fresh slice the
// caller may keep or modify; TopoOrder returns the shared cached order.
func (g *Graph) TopoSort() ([]NodeID, error) {
	t, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	return append([]NodeID(nil), t...), nil
}

// TopoOrder returns the graph's topological order without copying. The slice
// is cached on the graph (mutations invalidate it) and must be treated as
// read-only; it stays valid even after later mutations, which replace rather
// than rewrite it. Lazy fills from concurrent readers are safe.
func (g *Graph) TopoOrder() ([]NodeID, error) {
	if t := g.topo.Load(); t != nil {
		return *t, nil
	}
	out, err := g.topoSortUncached()
	if err != nil {
		return nil, err
	}
	g.topo.Store(&out)
	return out, nil
}

func (g *Graph) topoSortUncached() ([]NodeID, error) {
	indeg := make(map[NodeID]int, len(g.nodes))
	for _, id := range g.order {
		indeg[id] = len(g.pred[id])
	}
	// ready is kept sorted by insertion position for determinism.
	pos := make(map[NodeID]int, len(g.order))
	for i, id := range g.order {
		pos[id] = i
	}
	var ready []NodeID
	for _, id := range g.order {
		if indeg[id] == 0 {
			ready = append(ready, id)
		}
	}
	var out []NodeID
	for len(ready) > 0 {
		sort.Slice(ready, func(i, j int) bool { return pos[ready[i]] < pos[ready[j]] })
		id := ready[0]
		ready = ready[1:]
		out = append(out, id)
		for _, s := range g.succ[id] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(out) != len(g.nodes) {
		return nil, ErrCycle
	}
	return out, nil
}

// Validate checks structural well-formedness: the graph is a non-empty DAG,
// every operation respects its arity bounds, there is at least one source and
// one sink, every node reaches a sink and is reachable from a source, and
// every edge is schema-compatible (the producer's output can feed the
// consumer). It returns the first problem found.
func (g *Graph) Validate() error {
	if len(g.nodes) == 0 {
		return ErrNoSource
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	srcs, sinks := g.Sources(), g.Sinks()
	if len(srcs) == 0 {
		return ErrNoSource
	}
	if len(sinks) == 0 {
		return ErrNoSink
	}
	for _, id := range g.order {
		n := g.nodes[id]
		if maxIn := n.Kind.MaxInputs(); maxIn >= 0 && len(g.pred[id]) > maxIn {
			return fmt.Errorf("%w: %s accepts at most %d inputs, has %d",
				ErrArity, n, maxIn, len(g.pred[id]))
		}
		if maxOut := n.Kind.MaxOutputs(); maxOut >= 0 && len(g.succ[id]) > maxOut {
			return fmt.Errorf("%w: %s accepts at most %d outputs, has %d",
				ErrArity, n, maxOut, len(g.succ[id]))
		}
		if n.Kind.IsSource() && len(g.pred[id]) > 0 {
			return fmt.Errorf("%w: source %s has inputs", ErrArity, n)
		}
		if !n.Kind.IsSource() && len(g.pred[id]) == 0 {
			return fmt.Errorf("%w: %s has no input", ErrArity, n)
		}
		if n.Kind.IsSink() && len(g.succ[id]) > 0 {
			return fmt.Errorf("%w: sink %s has outputs", ErrArity, n)
		}
		if !n.Kind.IsSink() && len(g.succ[id]) == 0 {
			return fmt.Errorf("%w: %s", ErrNotConnected, n)
		}
	}
	// Schema compatibility along every edge: the consumer's declared output
	// must be derivable, which we approximate by requiring that consumers
	// that pass attributes through see them on some input.
	for _, e := range g.Edges() {
		from, to := g.nodes[e.From], g.nodes[e.To]
		if err := checkEdgeSchema(from, to); err != nil {
			return fmt.Errorf("%w: %s -> %s: %v", ErrSchema, from, to, err)
		}
	}
	return nil
}

// checkEdgeSchema validates that the consumer can be fed by the producer.
// Pass-through operations must not invent attributes that the producer does
// not emit; transforming operations (derive, aggregate, join...) may.
func checkEdgeSchema(from, to *Node) error {
	if to.Out.IsEmpty() || from.Out.IsEmpty() {
		return nil // schemata optional on imported flows
	}
	switch to.Kind {
	case OpFilter, OpFilterNull, OpDedup, OpSort, OpCheckpoint, OpEncrypt,
		OpMerge, OpUnion, OpNoop, OpLoad, OpSplit, OpPartition, OpCrosscheck:
		// Pure pass-through (possibly row-removing): output attributes must
		// be a subset of the input's.
		for _, a := range to.Out.Attrs {
			got, ok := from.Out.Attr(a.Name)
			if !ok {
				return fmt.Errorf("attribute %q not produced upstream", a.Name)
			}
			if got.Type != a.Type {
				return fmt.Errorf("attribute %q type mismatch: %s vs %s",
					a.Name, got.Type, a.Type)
			}
		}
	}
	return nil
}

// String renders a compact multi-line description of the flow, one node per
// line with its successors: useful in CLI output and debugging.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "flow %q: %d nodes, %d edges\n", g.Name, g.Len(), g.EdgeCount())
	order, err := g.TopoOrder()
	if err != nil {
		order = g.NodeIDs()
	}
	for _, id := range order {
		n := g.nodes[id]
		succs := make([]string, 0, len(g.succ[id]))
		for _, s := range g.succ[id] {
			succs = append(succs, string(s))
		}
		marker := ""
		if n.Generated {
			marker = " [+" + n.PatternName + "]"
		}
		fmt.Fprintf(&b, "  %-28s %-12s -> %s%s\n", n.ID, n.Kind, strings.Join(succs, ", "), marker)
	}
	return b.String()
}

// GeneratedCount returns how many nodes were introduced by patterns.
func (g *Graph) GeneratedCount() int {
	n := 0
	for _, id := range g.order {
		if g.nodes[id].Generated {
			n++
		}
	}
	return n
}
