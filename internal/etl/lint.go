package etl

import (
	"fmt"
	"math"
	"sort"

	"poiesis/internal/lint/diag"
)

// This file is the flow-level half of the poiesis static-analysis suite: the
// same diagnostics model the Go-source analyzers of internal/lint speak,
// applied to ETL process graphs and quality-constraint sets. Where Validate
// stops at the first structural error (its callers want a yes/no), Lint
// collects every problem it can see, so a session-create request comes back
// with the complete list instead of one error per round trip.
//
// The achievability layer follows Chirkova/Doyle/Reutter (arXiv:1703.09141):
// decide, before any simulation, whether a constraint set is satisfiable
// anywhere in the pattern space. The decision procedure here is interval
// propagation: each measure's reachable values form an interval, and every
// pattern application moves the structural measures monotonically, so a
// bound that excludes the whole interval can be rejected statically.

// QualityBound is one bound on a quality measure, in the string-typed form
// this package can reason about without importing the measures/policy layers
// (which sit above etl in the dependency order). Characteristic and Measure
// use the canonical names of internal/measures; Measure is empty when the
// bound applies to the characteristic's composite score.
type QualityBound struct {
	Characteristic string
	Measure        string
	Min            *float64
	Max            *float64
	// Label identifies the bound in diagnostics (e.g. the constraint's
	// human-readable name). Empty labels fall back to a derived one.
	Label string
}

func (b QualityBound) label() string {
	if b.Label != "" {
		return b.Label
	}
	name := b.Measure
	if name == "" {
		name = "score"
	}
	return b.Characteristic + "." + name
}

func (b QualityBound) target() string {
	if b.Measure == "" {
		return "score(" + b.Characteristic + ")"
	}
	return b.Characteristic + "." + b.Measure
}

// interval is a closed reachable-value interval [lo, hi] (hi may be +Inf).
type interval struct{ lo, hi float64 }

var inf = math.Inf(1)

// measureIntervals maps canonical measure names to the interval of values
// the estimator can produce on ANY flow. Rates and coverage ratios live in
// [0,1]; times, counts and costs are non-negative; structural counts of a
// non-empty flow are at least 1. The names are string literals because
// importing internal/measures here would be a cycle; the measures package
// carries a consistency test asserting this table matches its constants.
var measureIntervals = map[string]interval{
	"process_cycle_time":    {0, inf},
	"avg_latency_per_tuple": {0, inf},
	"throughput":            {0, inf},
	"staleness_age":         {0, inf},
	"currency_factor":       {0, inf},
	"completeness":          {0, 1},
	"uniqueness":            {0, 1},
	"accuracy":              {0, 1},
	"longest_path":          {1, inf},
	"coupling":              {0, inf},
	"merge_elements":        {0, inf},
	"flow_size":             {1, inf},
	"cyclomatic_complexity": {1, inf},
	"success_rate":          {0, 1},
	"within_deadline_rate":  {0, 1},
	"mean_recovery_time":    {0, inf},
	"checkpoint_coverage":   {0, 1},
	"total_work":            {0, inf},
	"memory_peak_rows":      {0, inf},
	"resource_cost":         {0, inf},
}

// scoreInterval bounds every composite characteristic score.
var scoreInterval = interval{0, 1}

// KnownMeasures lists the measure names the interval table covers, sorted.
// The measures package's consistency test checks this list against its
// canonical name constants (the table must use string literals: importing
// internal/measures here would be an import cycle).
func KnownMeasures() []string {
	names := make([]string, 0, len(measureIntervals))
	for name := range measureIntervals {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// StructuralMeasures lists the measures that are (a) computed exactly from
// the graph structure by the estimator — no simulation, no noise — and
// (b) monotonically non-decreasing under every pattern in the space: builtin
// patterns insert nodes (dedup/filter/crosscheck/parallelize/checkpoint),
// edit only node parameters (tune/upgrade), or swap two adjacent
// single-in/single-out nodes (pushdown), and custom patterns insert one
// operation. None of those moves can shrink the node count, the longest
// path, the merge count or the cyclomatic complexity. A Max bound below the
// initial flow's value on one of these is therefore unachievable across the
// entire pattern space, not just on the initial flow.
func StructuralMeasures() []string {
	return []string{"flow_size", "longest_path", "merge_elements", "cyclomatic_complexity"}
}

// StructuralValue computes a structural measure's exact value on g; ok is
// false for non-structural (simulated) measures.
func (g *Graph) StructuralValue(measure string) (float64, bool) {
	switch measure {
	case "flow_size":
		return float64(g.Len()), true
	case "longest_path":
		return float64(g.LongestPath()), true
	case "merge_elements":
		return float64(g.MergeCount()), true
	case "cyclomatic_complexity":
		return float64(g.CyclomaticComplexity()), true
	}
	return 0, false
}

// Lint statically validates a flow and its quality bounds, returning every
// problem found (empty means statically clean). The graph half reports
// structural defects: cycles, missing sources/sinks, arity violations,
// operations whose output dangles or that no source feeds, unreachable
// sinks, and schema/type mismatches along edges. The constraint half
// reports bounds that no flow in the pattern space can satisfy:
// range-infeasible bounds, mutually conflicting bounds, and Max bounds on
// monotone structural measures that the initial flow already exceeds.
func Lint(g *Graph, bounds []QualityBound) []diag.Diagnostic {
	var ds []diag.Diagnostic
	ds = append(ds, lintFlow(g)...)
	ds = append(ds, lintBounds(g, bounds)...)
	diag.Sort(ds)
	return ds
}

func (g *Graph) pos(id NodeID) string {
	name := g.Name
	if name == "" {
		name = "flow"
	}
	return name + "/" + string(id)
}

func (g *Graph) edgePos(e Edge) string {
	name := g.Name
	if name == "" {
		name = "flow"
	}
	return fmt.Sprintf("%s/%s->%s", name, e.From, e.To)
}

func lintFlow(g *Graph) []diag.Diagnostic {
	var ds []diag.Diagnostic
	report := func(check, pos, format string, args ...any) {
		ds = append(ds, diag.Diagnostic{Check: check, Pos: pos, Message: fmt.Sprintf(format, args...)})
	}
	flowPos := g.Name
	if flowPos == "" {
		flowPos = "flow"
	}
	if g.Len() == 0 {
		report("flow/empty", flowPos, "flow has no operations")
		return ds
	}
	acyclic := true
	if _, err := g.TopoOrder(); err != nil {
		acyclic = false
		report("flow/cycle", flowPos, "flow contains a cycle: an ETL process must be a DAG")
	}
	// Source/sink sets are by operation kind, not by degree: an in-degree-0
	// transform is a dangling node, not a source, and a well-formed island
	// behind one must still count as unreachable.
	var srcs, sinks []*Node
	for _, id := range g.NodeIDs() {
		n := g.Node(id)
		if n.Kind.IsSource() {
			srcs = append(srcs, n)
		}
		if n.Kind.IsSink() {
			sinks = append(sinks, n)
		}
	}
	if len(srcs) == 0 && acyclic {
		report("flow/source", flowPos, "flow has no source operation")
	}
	if len(sinks) == 0 && acyclic {
		report("flow/sink", flowPos, "flow has no sink operation")
	}

	// Arity: the same per-node conditions Validate enforces, all collected.
	// flagged remembers nodes already reported so the reachability pass
	// doesn't re-report the same defect under another name.
	flagged := map[NodeID]bool{}
	for _, id := range g.NodeIDs() {
		n := g.Node(id)
		in, out := g.InDegree(id), g.OutDegree(id)
		if maxIn := n.Kind.MaxInputs(); maxIn >= 0 && in > maxIn {
			report("flow/arity", g.pos(id), "%s accepts at most %d inputs, has %d", n, maxIn, in)
			flagged[id] = true
		}
		if maxOut := n.Kind.MaxOutputs(); maxOut >= 0 && out > maxOut {
			report("flow/arity", g.pos(id), "%s accepts at most %d outputs, has %d", n, maxOut, out)
			flagged[id] = true
		}
		if n.Kind.IsSource() && in > 0 {
			report("flow/arity", g.pos(id), "source %s has inputs", n)
			flagged[id] = true
		}
		if !n.Kind.IsSource() && in == 0 {
			report("flow/dangling", g.pos(id), "%s has no input: nothing feeds it", n)
			flagged[id] = true
		}
		if n.Kind.IsSink() && out > 0 {
			report("flow/arity", g.pos(id), "sink %s has outputs", n)
			flagged[id] = true
		}
		if !n.Kind.IsSink() && out == 0 {
			report("flow/dangling", g.pos(id), "%s has no output: its result dangles instead of reaching a sink", n)
			flagged[id] = true
		}
	}

	// Reachability: forward from sources, backward from sinks. Catches what
	// local arity cannot: well-formed-looking islands that no source feeds
	// (unreachable sinks) or whose output never reaches a sink.
	if acyclic {
		fromSource := reach(g, srcs, g.SuccView)
		toSink := reach(g, sinks, g.PredView)
		for _, id := range g.NodeIDs() {
			if flagged[id] {
				continue
			}
			n := g.Node(id)
			if !fromSource[id] {
				if n.Kind.IsSink() {
					report("flow/unreachable", g.pos(id), "sink %s is not reachable from any source", n)
				} else {
					report("flow/unreachable", g.pos(id), "%s is not reachable from any source", n)
				}
			} else if !toSink[id] {
				report("flow/unreachable", g.pos(id), "%s never reaches a sink", n)
			}
		}
	}

	// Schema compatibility along every edge (type mismatches and attributes
	// a pass-through consumer expects but no producer emits).
	for _, e := range g.Edges() {
		if err := checkEdgeSchema(g.Node(e.From), g.Node(e.To)); err != nil {
			report("flow/schema", g.edgePos(e), "%v", err)
		}
	}
	return ds
}

// reach flood-fills from the given start nodes along next (successors for
// forward reachability, predecessors for backward).
func reach(g *Graph, starts []*Node, next func(NodeID) []NodeID) map[NodeID]bool {
	seen := map[NodeID]bool{}
	var stack []NodeID
	for _, n := range starts {
		seen[n.ID] = true
		stack = append(stack, n.ID)
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range next(cur) {
			if !seen[nb] {
				seen[nb] = true
				stack = append(stack, nb)
			}
		}
	}
	return seen
}

func lintBounds(g *Graph, bounds []QualityBound) []diag.Diagnostic {
	var ds []diag.Diagnostic
	report := func(check string, b QualityBound, format string, args ...any) {
		ds = append(ds, diag.Diagnostic{
			Check:   check,
			Pos:     "constraint:" + b.label(),
			Message: fmt.Sprintf(format, args...),
		})
	}

	// Pass 1: each bound against the measure's reachable interval.
	type key struct{ c, m string }
	effective := map[key]interval{}
	for _, b := range bounds {
		iv, known := measureIntervals[b.Measure]
		if b.Measure == "" {
			iv, known = scoreInterval, true
		}
		if known {
			if b.Max != nil && *b.Max < iv.lo {
				report("constraint/range", b, "unachievable: %s <= %g, but the measure's minimum possible value is %g", b.target(), *b.Max, iv.lo)
			}
			if b.Min != nil && *b.Min > iv.hi {
				report("constraint/range", b, "unachievable: %s >= %g, but the measure's maximum possible value is %g", b.target(), *b.Min, iv.hi)
			}
		}
		// Fold into the effective interval per (characteristic, measure) for
		// the conflict pass. Unknown (custom) measures still participate:
		// min > max is contradictory regardless of what the measure means.
		k := key{b.Characteristic, b.Measure}
		cur, ok := effective[k]
		if !ok {
			cur = interval{math.Inf(-1), inf}
		}
		if b.Min != nil && *b.Min > cur.lo {
			cur.lo = *b.Min
		}
		if b.Max != nil && *b.Max < cur.hi {
			cur.hi = *b.Max
		}
		effective[k] = cur
	}

	// Pass 2: conflicting bounds on the same target (empty intersection).
	reported := map[key]bool{}
	for _, b := range bounds {
		k := key{b.Characteristic, b.Measure}
		if reported[k] {
			continue
		}
		if iv := effective[k]; iv.lo > iv.hi {
			reported[k] = true
			report("constraint/conflict", b, "unachievable: bounds on %s require >= %g and <= %g simultaneously", b.target(), iv.lo, iv.hi)
		}
	}

	// Pass 3: monotone achievability of structural bounds. The reachable
	// interval of a structural measure over the whole pattern space is
	// [value(initial flow), +inf): interval propagation over the pattern
	// moves (every move inserts operations, edits parameters, or swaps two
	// chain-adjacent operations) never lowers it. A Max below the initial
	// value excludes the entire space.
	if g == nil || g.Len() == 0 {
		return ds
	}
	if _, err := g.TopoOrder(); err != nil {
		return ds // structural values are meaningless on a cyclic graph
	}
	for _, b := range bounds {
		if b.Max == nil || b.Characteristic != "manageability" {
			continue
		}
		v0, ok := g.StructuralValue(b.Measure)
		if !ok {
			continue
		}
		if *b.Max < v0 {
			report("constraint/achievability", b,
				"unachievable anywhere in the pattern space: %s <= %g, but the initial flow already measures %g and every pattern application is monotone non-decreasing on this measure",
				b.target(), *b.Max, v0)
		}
	}
	return ds
}
