package etl

import "sort"

// LongestPath returns the number of nodes on the longest source-to-sink path.
// It is the manageability measure "length of process workflow's longest path"
// of Fig. 1. Returns 0 for an empty or cyclic graph.
func (g *Graph) LongestPath() int {
	order, err := g.TopoOrder()
	if err != nil {
		return 0
	}
	best := 0
	dist := make(map[NodeID]int, len(order))
	for _, id := range order {
		d := 1
		for _, p := range g.pred[id] {
			if dist[p]+1 > d {
				d = dist[p] + 1
			}
		}
		dist[id] = d
		if d > best {
			best = d
		}
	}
	return best
}

// CriticalPath returns the node IDs along a maximum-weight source-to-sink
// path, where the weight of a node is given by weight. The simulator uses it
// with per-node execution time to obtain the process cycle time contribution
// of pipelined segments.
func (g *Graph) CriticalPath(weight func(*Node) float64) ([]NodeID, float64) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, 0
	}
	dist := make(map[NodeID]float64, len(order))
	prev := make(map[NodeID]NodeID, len(order))
	var bestID NodeID
	best := -1.0
	for _, id := range order {
		w := weight(g.nodes[id])
		d := w
		for _, p := range g.pred[id] {
			if dist[p]+w > d {
				d = dist[p] + w
				prev[id] = p
			}
		}
		dist[id] = d
		if d > best {
			best, bestID = d, id
		}
	}
	if best < 0 {
		return nil, 0
	}
	var path []NodeID
	for id := bestID; ; {
		path = append(path, id)
		p, ok := prev[id]
		if !ok {
			break
		}
		id = p
	}
	// reverse
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, best
}

// Coupling is the manageability measure "coupling of process workflow" of
// Fig. 1: the mean number of connections per node (2|E|/|V|). Higher coupling
// means operations are harder to modify in isolation.
func (g *Graph) Coupling() float64 {
	if g.Len() == 0 {
		return 0
	}
	return 2 * float64(g.EdgeCount()) / float64(g.Len())
}

// MergeCount is the manageability measure "# of merge elements in the process
// model" of Fig. 1: nodes that fuse several incoming branches (in-degree > 1,
// plus explicit merge/union operations).
func (g *Graph) MergeCount() int {
	n := 0
	for _, id := range g.order {
		if len(g.pred[id]) > 1 || g.nodes[id].Kind == OpMerge || g.nodes[id].Kind == OpUnion {
			n++
		}
	}
	return n
}

// CyclomaticComplexity is |E| - |V| + 2*components, a structural complexity
// proxy used as a detailed manageability metric.
func (g *Graph) CyclomaticComplexity() int {
	return g.EdgeCount() - g.Len() + 2*g.Components()
}

// Components returns the number of weakly connected components.
func (g *Graph) Components() int {
	seen := map[NodeID]bool{}
	n := 0
	for _, id := range g.order {
		if seen[id] {
			continue
		}
		n++
		stack := []NodeID{id}
		seen[id] = true
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, nb := range append(g.Succ(cur), g.Pred(cur)...) {
				if !seen[nb] {
					seen[nb] = true
					stack = append(stack, nb)
				}
			}
		}
	}
	return n
}

// Reachable returns the set of nodes reachable from id (excluding id itself
// unless it lies on a cycle, which Validate forbids).
func (g *Graph) Reachable(id NodeID) map[NodeID]bool {
	out := map[NodeID]bool{}
	stack := append([]NodeID(nil), g.succ[id]...)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if out[cur] {
			continue
		}
		out[cur] = true
		stack = append(stack, g.succ[cur]...)
	}
	return out
}

// UpstreamDistance returns, for every node, the minimum number of edges from
// any source operation. Cleaning-pattern heuristics prefer application points
// with a small upstream distance ("as close as possible to the operations for
// inputting data sources").
func (g *Graph) UpstreamDistance() map[NodeID]int {
	order, err := g.TopoOrder()
	if err != nil {
		return map[NodeID]int{}
	}
	dist := make(map[NodeID]int, len(order))
	for _, id := range order {
		if len(g.pred[id]) == 0 {
			dist[id] = 0
			continue
		}
		best := -1
		for _, p := range g.pred[id] {
			if d, ok := dist[p]; ok && (best < 0 || d+1 < best) {
				best = d + 1
			}
		}
		if best < 0 {
			best = 0
		}
		dist[id] = best
	}
	return dist
}

// DownstreamCheckpointFree reports whether no checkpoint operation exists
// within maxHops edges downstream of id. The AddCheckpoint prerequisite uses
// it to avoid stacking savepoints.
func (g *Graph) DownstreamCheckpointFree(id NodeID, maxHops int) bool {
	type item struct {
		id   NodeID
		hops int
	}
	queue := []item{{id, 0}}
	seen := map[NodeID]bool{id: true}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.hops >= maxHops {
			continue
		}
		for _, s := range g.succ[cur.id] {
			if seen[s] {
				continue
			}
			seen[s] = true
			if g.nodes[s].Kind == OpCheckpoint {
				return false
			}
			queue = append(queue, item{s, cur.hops + 1})
		}
	}
	return true
}

// UpstreamCheckpointFree is the mirror of DownstreamCheckpointFree, looking
// at predecessors.
func (g *Graph) UpstreamCheckpointFree(id NodeID, maxHops int) bool {
	type item struct {
		id   NodeID
		hops int
	}
	queue := []item{{id, 0}}
	seen := map[NodeID]bool{id: true}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.hops >= maxHops {
			continue
		}
		for _, p := range g.pred[cur.id] {
			if seen[p] {
				continue
			}
			seen[p] = true
			if g.nodes[p].Kind == OpCheckpoint {
				return false
			}
			queue = append(queue, item{p, cur.hops + 1})
		}
	}
	return true
}

// InputSchema returns the effective input schema of a node: the union of its
// predecessors' output schemata (first predecessor first). For source nodes
// it is empty.
func (g *Graph) InputSchema(id NodeID) Schema {
	var s Schema
	for _, p := range g.pred[id] {
		s = s.Union(g.nodes[p].Out)
	}
	return s
}

// SortedNodeIDs returns node IDs sorted lexicographically; used where a
// canonical (insertion-order independent) ordering is required.
func (g *Graph) SortedNodeIDs() []NodeID {
	ids := g.NodeIDs()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
