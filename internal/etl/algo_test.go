package etl

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLongestPath(t *testing.T) {
	if got := linearFlow(t).LongestPath(); got != 4 {
		t.Errorf("linear longest path = %d, want 4", got)
	}
	if got := diamondFlow(t).LongestPath(); got != 5 {
		t.Errorf("diamond longest path = %d, want 5", got)
	}
	if got := New("empty").LongestPath(); got != 0 {
		t.Errorf("empty longest path = %d", got)
	}
}

func TestCriticalPath(t *testing.T) {
	g := diamondFlow(t)
	g.Node("a").Cost.PerTuple = 10
	g.Node("b").Cost.PerTuple = 1
	path, w := g.CriticalPath(func(n *Node) float64 { return n.Cost.PerTuple })
	if w <= 0 {
		t.Fatalf("critical path weight = %f", w)
	}
	foundA := false
	for _, id := range path {
		if id == "a" {
			foundA = true
		}
		if id == "b" {
			t.Error("critical path went through the cheap branch")
		}
	}
	if !foundA {
		t.Errorf("critical path %v should include expensive node a", path)
	}
	// Path must follow edges.
	for i := 0; i+1 < len(path); i++ {
		if !g.HasEdge(path[i], path[i+1]) {
			t.Errorf("critical path hop %s->%s is not an edge", path[i], path[i+1])
		}
	}
}

func TestCoupling(t *testing.T) {
	g := linearFlow(t) // 4 nodes, 3 edges -> 1.5
	if got := g.Coupling(); got != 1.5 {
		t.Errorf("coupling = %f, want 1.5", got)
	}
	if got := New("empty").Coupling(); got != 0 {
		t.Errorf("empty coupling = %f", got)
	}
}

func TestMergeCount(t *testing.T) {
	if got := linearFlow(t).MergeCount(); got != 0 {
		t.Errorf("linear merge count = %d", got)
	}
	if got := diamondFlow(t).MergeCount(); got != 1 {
		t.Errorf("diamond merge count = %d", got)
	}
}

func TestCyclomaticAndComponents(t *testing.T) {
	g := diamondFlow(t) // 6 nodes, 6 edges, 1 component -> 6-6+2 = 2
	if got := g.Components(); got != 1 {
		t.Errorf("components = %d", got)
	}
	if got := g.CyclomaticComplexity(); got != 2 {
		t.Errorf("cyclomatic = %d", got)
	}
	// Two disjoint linear flows in one graph (not valid for Validate, fine
	// for the metric).
	g2 := New("two")
	g2.MustAddNode(NewNode("a", "a", OpExtract, Schema{}))
	g2.MustAddNode(NewNode("b", "b", OpLoad, Schema{}))
	g2.MustAddEdge("a", "b")
	g2.MustAddNode(NewNode("c", "c", OpExtract, Schema{}))
	g2.MustAddNode(NewNode("d", "d", OpLoad, Schema{}))
	g2.MustAddEdge("c", "d")
	if got := g2.Components(); got != 2 {
		t.Errorf("components = %d", got)
	}
}

func TestReachable(t *testing.T) {
	g := diamondFlow(t)
	r := g.Reachable("split")
	for _, want := range []NodeID{"a", "b", "merge", "load"} {
		if !r[want] {
			t.Errorf("%s should be reachable from split", want)
		}
	}
	if r["src"] || r["split"] {
		t.Error("reachability includes non-descendants")
	}
}

func TestUpstreamDistance(t *testing.T) {
	g := diamondFlow(t)
	d := g.UpstreamDistance()
	want := map[NodeID]int{"src": 0, "split": 1, "a": 2, "b": 2, "merge": 3, "load": 4}
	for id, w := range want {
		if d[id] != w {
			t.Errorf("dist[%s] = %d, want %d", id, d[id], w)
		}
	}
}

func TestCheckpointFree(t *testing.T) {
	g := linearFlow(t)
	if !g.DownstreamCheckpointFree("src", 10) {
		t.Error("flow without checkpoints should be checkpoint free")
	}
	cp := NewNode(g.FreshID("cp"), "savepoint", OpCheckpoint, g.Node("flt").Out)
	if err := g.InsertOnEdge("flt", "drv", cp); err != nil {
		t.Fatal(err)
	}
	if g.DownstreamCheckpointFree("src", 10) {
		t.Error("downstream checkpoint not detected")
	}
	if g.UpstreamCheckpointFree("load", 10) {
		t.Error("upstream checkpoint not detected")
	}
	if !g.DownstreamCheckpointFree("drv", 10) {
		t.Error("checkpoint is upstream of drv, not downstream")
	}
	// Horizon limits detection.
	if !g.DownstreamCheckpointFree("src", 1) {
		t.Error("checkpoint beyond horizon should be ignored")
	}
}

func TestInputSchema(t *testing.T) {
	g := diamondFlow(t)
	in := g.InputSchema("merge")
	if !in.Has("id") || !in.Has("grp") {
		t.Errorf("merge input schema = %v", in)
	}
	if got := g.InputSchema("src"); !got.IsEmpty() {
		t.Errorf("source input schema = %v", got)
	}
}

// randomDAG builds a random layered DAG with n nodes; edges only go from
// lower to higher layers, so it is acyclic by construction.
func randomDAG(rng *rand.Rand, n int) *Graph {
	g := New("rand")
	if n < 2 {
		n = 2
	}
	ids := make([]NodeID, n)
	s := NewSchema(Attribute{Name: "x", Type: TypeInt})
	for i := 0; i < n; i++ {
		kind := OpDerive
		if i == 0 {
			kind = OpExtract
		}
		if i == n-1 {
			kind = OpLoad
		}
		ids[i] = NodeID(rune('a'+i%26)) + NodeID(rune('0'+i/26))
		g.MustAddNode(NewNode(ids[i], string(ids[i]), kind, s))
	}
	for i := 1; i < n; i++ {
		// connect to a random earlier node (keeps it connected)
		from := ids[rng.Intn(i)]
		if !g.HasEdge(from, ids[i]) {
			g.MustAddEdge(from, ids[i])
		}
		// plus a second random forward edge sometimes
		if rng.Intn(3) == 0 {
			j := rng.Intn(i)
			if !g.HasEdge(ids[j], ids[i]) && g.OutDegree(ids[j]) < 1 {
				g.MustAddEdge(ids[j], ids[i])
			}
		}
	}
	return g
}

// Property: TopoSort on random DAGs never errors and respects all edges.
func TestTopoSortPropertyRandomDAGs(t *testing.T) {
	prop := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, int(size%40)+2)
		order, err := g.TopoSort()
		if err != nil {
			return false
		}
		pos := map[NodeID]int{}
		for i, id := range order {
			pos[id] = i
		}
		for _, e := range g.Edges() {
			if pos[e.From] >= pos[e.To] {
				return false
			}
		}
		return len(order) == g.Len()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: LongestPath is between 1 and |V| and never smaller than the
// number of nodes on the critical path with unit weights.
func TestLongestPathProperty(t *testing.T) {
	prop := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, int(size%40)+2)
		lp := g.LongestPath()
		if lp < 1 || lp > g.Len() {
			return false
		}
		path, _ := g.CriticalPath(func(*Node) float64 { return 1 })
		return len(path) == lp
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
