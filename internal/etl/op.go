package etl

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// OpKind classifies an ETL flow operation. The taxonomy follows Vassiliadis,
// Simitsis & Baikousi ("A taxonomy of ETL activities", DOLAP 2009), extended
// with the management operations POIESIS patterns introduce (checkpointing,
// crosscheck voting, partition/merge plumbing).
type OpKind int

// The operation kinds understood by the flow model, the simulator and the
// pattern prerequisites.
const (
	OpUnknown OpKind = iota

	// Row-set producers and consumers.
	OpExtract // read from a data source
	OpLoad    // write to a target

	// Row-level transformations.
	OpFilter     // keep rows satisfying a predicate
	OpFilterNull // drop rows with NULL in selected attributes (cleaning)
	OpDerive     // compute new attribute values (function application)
	OpProject    // keep a subset of attributes ("SPLIT required attributes")
	OpConvert    // type/format conversion
	OpSurrogate  // surrogate key assignment

	// Rowset-level (blocking or semi-blocking) transformations.
	OpJoin      // join two inputs
	OpLookup    // enrich against a reference input
	OpAggregate // group and aggregate
	OpSort      // order rows
	OpDedup     // remove duplicate entries (cleaning)
	OpUnion     // union of homogeneous inputs

	// Routing.
	OpSplit     // route rows to multiple outputs by predicate
	OpPartition // horizontal partition: distribute rows to k branches
	OpMerge     // merge partitioned/parallel branches back together

	// Quality / management operations added by patterns.
	OpCheckpoint // persist intermediary data to a savepoint
	OpRecovery   // extract from savepoint on restart
	OpCrosscheck // compare/vote rows against an alternative source
	OpEncrypt    // apply security configuration on the data in transit
	OpNoop       // placeholder used by tests and custom patterns
)

var opKindNames = [...]string{
	OpUnknown:    "unknown",
	OpExtract:    "extract",
	OpLoad:       "load",
	OpFilter:     "filter",
	OpFilterNull: "filter_null",
	OpDerive:     "derive",
	OpProject:    "project",
	OpConvert:    "convert",
	OpSurrogate:  "surrogate_key",
	OpJoin:       "join",
	OpLookup:     "lookup",
	OpAggregate:  "aggregate",
	OpSort:       "sort",
	OpDedup:      "dedup",
	OpUnion:      "union",
	OpSplit:      "split",
	OpPartition:  "partition",
	OpMerge:      "merge",
	OpCheckpoint: "checkpoint",
	OpRecovery:   "recovery",
	OpCrosscheck: "crosscheck",
	OpEncrypt:    "encrypt",
	OpNoop:       "noop",
}

// String returns the canonical lower-case name of the kind.
func (k OpKind) String() string {
	if k < 0 || int(k) >= len(opKindNames) {
		return "invalid"
	}
	return opKindNames[k]
}

// ParseOpKind maps a kind name back to an OpKind; unknown names yield
// OpUnknown.
func ParseOpKind(s string) OpKind {
	s = strings.ToLower(strings.TrimSpace(s))
	for k, name := range opKindNames {
		if name == s {
			return OpKind(k)
		}
	}
	return OpUnknown
}

// IsSource reports whether the kind produces rows without consuming any.
func (k OpKind) IsSource() bool { return k == OpExtract || k == OpRecovery }

// IsSink reports whether the kind consumes rows without producing any for a
// successor.
func (k OpKind) IsSink() bool { return k == OpLoad }

// IsBlocking reports whether the operation must consume its whole input
// before emitting output. Blocking operations add full materialisation
// latency on the critical path.
func (k OpKind) IsBlocking() bool {
	switch k {
	case OpAggregate, OpSort, OpDedup, OpJoin:
		return true
	}
	return false
}

// IsCleaning reports whether the operation improves data quality by removing
// or fixing defective rows. The clean-near-source heuristic binds to these.
func (k OpKind) IsCleaning() bool {
	switch k {
	case OpFilterNull, OpDedup, OpCrosscheck:
		return true
	}
	return false
}

// MaxInputs returns the maximum number of incoming edges an operation of
// this kind accepts; -1 means unbounded.
func (k OpKind) MaxInputs() int {
	switch k {
	case OpExtract, OpRecovery:
		return 0
	case OpJoin, OpLookup, OpCrosscheck:
		return 2
	case OpUnion, OpMerge:
		return -1
	default:
		return 1
	}
}

// MaxOutputs returns the maximum number of outgoing edges; -1 means
// unbounded.
func (k OpKind) MaxOutputs() int {
	switch k {
	case OpLoad:
		return 0
	case OpSplit, OpPartition:
		return -1
	case OpCheckpoint:
		return 2 // data continues + savepoint branch in Fig. 2b style flows
	default:
		return 1
	}
}

// Cost describes the cost model of one operation instance, used by the
// simulator and by the static complexity estimates. Times are abstract cost
// units (interpreted as milliseconds by the simulator).
type Cost struct {
	// Startup is paid once per run (connection setup, plan compilation).
	Startup float64
	// PerTuple is paid for every input tuple, divided by Parallelism.
	PerTuple float64
	// Selectivity is the expected output/input row ratio (1 = pass-through).
	Selectivity float64
	// FailureRate is the probability that one run of this operation fails
	// (per run, not per tuple).
	FailureRate float64
	// MemPerTuple models the working-set footprint of blocking operations.
	MemPerTuple float64
}

// DefaultCost returns a reasonable default cost model for the kind. Builders
// and importers start from these and override per instance.
func DefaultCost(k OpKind) Cost {
	c := Cost{Startup: 1, PerTuple: 0.001, Selectivity: 1, FailureRate: 0.002}
	switch k {
	case OpExtract:
		c.Startup, c.PerTuple, c.FailureRate = 5, 0.002, 0.01
	case OpRecovery:
		c.Startup, c.PerTuple, c.FailureRate = 2, 0.001, 0.002
	case OpLoad:
		c.Startup, c.PerTuple, c.FailureRate = 5, 0.004, 0.008
	case OpFilter, OpFilterNull:
		c.PerTuple, c.Selectivity = 0.0008, 0.9
	case OpDerive:
		c.PerTuple = 0.006
	case OpProject, OpConvert:
		c.PerTuple = 0.0006
	case OpSurrogate:
		c.PerTuple = 0.0012
	case OpJoin:
		c.PerTuple, c.MemPerTuple, c.FailureRate = 0.005, 1, 0.004
	case OpLookup:
		c.PerTuple, c.MemPerTuple = 0.003, 0.5
	case OpAggregate:
		c.PerTuple, c.Selectivity, c.MemPerTuple = 0.004, 0.2, 1
	case OpSort:
		c.PerTuple, c.MemPerTuple = 0.004, 1
	case OpDedup:
		c.PerTuple, c.Selectivity, c.MemPerTuple = 0.003, 0.97, 1
	case OpUnion, OpMerge:
		c.PerTuple = 0.0004
	case OpSplit, OpPartition:
		c.PerTuple = 0.0005
	case OpCheckpoint:
		c.Startup, c.PerTuple, c.FailureRate = 3, 0.002, 0.001
	case OpCrosscheck:
		c.PerTuple, c.MemPerTuple, c.Selectivity = 0.005, 1, 0.98
	case OpEncrypt:
		c.PerTuple = 0.002
	case OpNoop:
		c.Startup, c.PerTuple = 0, 0
	}
	return c
}

// NodeID identifies a node inside one Graph. IDs are unique per graph and
// survive cloning, which lets patterns refer to application points across
// copies.
type NodeID string

// Node is one ETL flow operation: the vertex set V of the process graph.
type Node struct {
	ID   NodeID
	Name string
	Kind OpKind

	// Out is the output schema of the operation. Input schemata are implied
	// by the predecessors' output schemata.
	Out Schema

	// Params holds operation-specific configuration (predicates, group-by
	// attributes, target tables...). Keys are sorted when fingerprinting so
	// the map is safe to mutate.
	Params map[string]string

	// Cost is the instance cost model.
	Cost Cost

	// Parallelism is the degree of intra-operation parallelism (>=1). The
	// ParallelizeTask pattern raises it on the cloned branches.
	Parallelism int

	// Generated marks nodes that were added by a pattern application rather
	// than present in the imported flow.
	Generated bool

	// PatternName records which pattern generated the node, when Generated.
	PatternName string
}

// NewNode builds a node of the given kind with default cost model and
// parallelism 1.
func NewNode(id NodeID, name string, kind OpKind, out Schema) *Node {
	return &Node{
		ID:          id,
		Name:        name,
		Kind:        kind,
		Out:         out,
		Params:      map[string]string{},
		Cost:        DefaultCost(kind),
		Parallelism: 1,
	}
}

// Clone returns a deep copy of the node.
func (n *Node) Clone() *Node {
	c := *n
	c.Out = n.Out.Clone()
	c.Params = make(map[string]string, len(n.Params))
	for k, v := range n.Params {
		c.Params[k] = v
	}
	return &c
}

// Param returns the parameter value for key, or "".
func (n *Node) Param(key string) string { return n.Params[key] }

// SetParam sets a parameter value and returns the node for chaining.
func (n *Node) SetParam(key, value string) *Node {
	if n.Params == nil {
		n.Params = map[string]string{}
	}
	n.Params[key] = value
	return n
}

// WorkPerTuple is the abstract per-tuple work of the node after accounting
// for parallelism. It is the quantity the performance measures integrate
// along the critical path.
func (n *Node) WorkPerTuple() float64 {
	p := n.Parallelism
	if p < 1 {
		p = 1
	}
	return n.Cost.PerTuple / float64(p)
}

// Complexity is a static proxy for how process-intensive the node is; the
// checkpoint-after-complex-operation heuristic ranks nodes by it.
func (n *Node) Complexity() float64 {
	w := n.Cost.PerTuple
	if n.Kind.IsBlocking() {
		w *= 2
	}
	return w + n.Cost.Startup/1000
}

// String renders the node as id(kind:name).
func (n *Node) String() string {
	return fmt.Sprintf("%s(%s:%s)", n.ID, n.Kind, n.Name)
}

// canonical renders a deterministic node description for fingerprinting.
// Node identity (ID) is excluded so that two graphs with identical structure
// but different ID spellings hash alike once positions are accounted for.
func (n *Node) canonical() string {
	keys := make([]string, 0, len(n.Params))
	for k := range n.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(n.Kind.String())
	b.WriteByte('/')
	b.WriteString(n.Name)
	b.WriteByte('/')
	b.WriteString(n.Out.canonical())
	fmt.Fprintf(&b, "/p%d", n.Parallelism)
	for _, k := range keys {
		b.WriteByte('/')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(n.Params[k])
	}
	return b.String()
}

// appendCone appends the node's data-semantic description for upstream-cone
// fingerprinting (Graph.ConeKeys): the canonical form plus the cost fields
// that influence row contents. Selectivity drives the filter operation's
// keep decisions; the remaining cost fields only shape timing, which the
// simulator derives from the concrete graph on every run, so they are
// excluded to maximise cache sharing.
func (n *Node) appendCone(b []byte) []byte {
	b = append(b, n.canonical()...)
	b = append(b, 0)
	bits := math.Float64bits(n.Cost.Selectivity)
	return append(b,
		byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24),
		byte(bits>>32), byte(bits>>40), byte(bits>>48), byte(bits>>56))
}

// Edge is one transition between two operations: the edge set E of the
// process graph.
type Edge struct {
	From, To NodeID
}

// String renders the edge as from->to.
func (e Edge) String() string { return string(e.From) + "->" + string(e.To) }
