package etl

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestDOT(t *testing.T) {
	g := diamondFlow(t)
	gen := NewNode(g.FreshID("gen"), "added", OpFilterNull, g.Node("src").Out)
	gen.PatternName = "FilterNullValues"
	if err := g.InsertOnEdge("src", "split", gen); err != nil {
		t.Fatal(err)
	}
	dot := g.DOT()
	for _, want := range []string{
		"digraph", `"src"`, `"load"`, "invhouse", "house", "diamond",
		`fillcolor="#ffd8a8"`, `"src" -> `,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestDOTEscaping(t *testing.T) {
	g := New("q")
	n := NewNode("a", `na"me`, OpExtract, Schema{})
	g.MustAddNode(n)
	dot := g.DOT()
	if strings.Contains(dot, `na"me`) && !strings.Contains(dot, `na\"me`) {
		t.Error("quote not escaped in DOT label")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := linearFlow(t)
	g.Node("flt").SetParam("predicate", "amount > 0")
	g.Node("drv").Parallelism = 4
	b, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var g2 Graph
	if err := json.Unmarshal(b, &g2); err != nil {
		t.Fatal(err)
	}
	if g2.Fingerprint() != g.Fingerprint() {
		t.Error("JSON round trip changed the fingerprint")
	}
	if g2.Node("flt").Param("predicate") != "amount > 0" {
		t.Error("params lost")
	}
	if g2.Node("drv").Parallelism != 4 {
		t.Error("parallelism lost")
	}
	if g2.Node("src").Cost != g.Node("src").Cost {
		t.Error("cost lost")
	}
}

func TestJSONUnmarshalErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":      `{{{`,
		"unknown kind": `{"name":"x","nodes":[{"id":"a","name":"a","kind":"teleport"}]}`,
		"bad edge":     `{"name":"x","nodes":[{"id":"a","name":"a","kind":"extract"}],"edges":[{"from":"a","to":"b"}]}`,
		"invalid flow": `{"name":"x","nodes":[{"id":"a","name":"a","kind":"filter"}]}`,
	}
	for label, doc := range cases {
		var g Graph
		if err := json.Unmarshal([]byte(doc), &g); err == nil {
			t.Errorf("%s: expected error", label)
		}
	}
}

func TestDiffFlows(t *testing.T) {
	base := linearFlow(t)
	next := base.Clone()
	if d := DiffFlows(base, next); !d.IsEmpty() || d.String() != "(identical)" {
		t.Errorf("identical flows diff = %v", d)
	}
	// Add a node on an edge.
	n := NewNode(next.FreshID("x"), "cleaner", OpFilterNull, next.Node("src").Out)
	if err := next.InsertOnEdge("src", "flt", n); err != nil {
		t.Fatal(err)
	}
	// And change a node's configuration.
	next.MutableNode("drv").SetParam("expr", "a+b")
	d := DiffFlows(base, next)
	if len(d.AddedNodes) != 1 || d.AddedNodes[0] != n.ID {
		t.Errorf("added nodes = %v", d.AddedNodes)
	}
	if len(d.RemovedNodes) != 0 {
		t.Errorf("removed nodes = %v", d.RemovedNodes)
	}
	if len(d.ChangedNodes) != 1 || d.ChangedNodes[0] != "drv" {
		t.Errorf("changed nodes = %v", d.ChangedNodes)
	}
	if len(d.AddedEdges) != 2 || len(d.RemovedEdges) != 1 {
		t.Errorf("edges: +%v -%v", d.AddedEdges, d.RemovedEdges)
	}
	s := d.String()
	for _, want := range []string{"+" + string(n.ID), "~drv", "-src->flt"} {
		if !strings.Contains(s, want) {
			t.Errorf("diff string missing %q: %s", want, s)
		}
	}
	// Reverse direction: the node appears as removed.
	rd := DiffFlows(next, base)
	if len(rd.RemovedNodes) != 1 || rd.RemovedNodes[0] != n.ID {
		t.Errorf("reverse removed = %v", rd.RemovedNodes)
	}
}

func TestSwapWithPredecessor(t *testing.T) {
	// src -> drv -> flt -> load, then push flt before drv.
	s := NewSchema(
		Attribute{Name: "id", Type: TypeInt, Key: true},
		Attribute{Name: "v", Type: TypeFloat},
	)
	g := NewBuilder("swap").
		Op("src", "S", OpExtract, s).
		Op("drv", "derive", OpDerive, s).
		Op("flt", "filter", OpFilter, s).
		Op("ld", "DW", OpLoad, Schema{}).
		MustBuild()
	if err := g.SwapWithPredecessor("flt"); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge("src", "flt") || !g.HasEdge("flt", "drv") || !g.HasEdge("drv", "ld") {
		t.Errorf("swap wiring wrong:\n%s", g)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("invalid after swap: %v", err)
	}
	if g.Len() != 4 || g.EdgeCount() != 3 {
		t.Error("swap changed the node/edge count")
	}
}

func TestSwapWithPredecessorErrors(t *testing.T) {
	g := diamondFlow(t)
	if err := g.SwapWithPredecessor("zz"); err == nil {
		t.Error("unknown node should fail")
	}
	// merge has two inputs.
	if err := g.SwapWithPredecessor("merge"); err == nil {
		t.Error("multi-input node should fail")
	}
	// a's predecessor (split) has two outputs.
	if err := g.SwapWithPredecessor("a"); err == nil {
		t.Error("branching predecessor should fail")
	}
	// src has no predecessor.
	if err := g.SwapWithPredecessor("src"); err == nil {
		t.Error("source should fail")
	}
}
