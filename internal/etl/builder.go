package etl

import "fmt"

// Builder offers a fluent way to assemble flows in fixtures, importers and
// examples. Errors are accumulated and surfaced by Build, so call sites stay
// linear.
type Builder struct {
	g    *Graph
	last NodeID
	err  error
	n    int
}

// NewBuilder starts a builder for a flow with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{g: New(name)}
}

func (b *Builder) fail(err error) *Builder {
	if b.err == nil {
		b.err = err
	}
	return b
}

// nextID generates builder-local node IDs n1, n2, ...
func (b *Builder) nextID() NodeID {
	b.n++
	return NodeID(fmt.Sprintf("n%d", b.n))
}

// Add inserts a node without wiring it and makes it the cursor node.
func (b *Builder) Add(n *Node) *Builder {
	if b.err != nil {
		return b
	}
	if n.ID == "" {
		n.ID = b.nextID()
	}
	if err := b.g.AddNode(n); err != nil {
		return b.fail(err)
	}
	b.last = n.ID
	return b
}

// Op adds a node of the given kind, wired after the cursor node (if any),
// and moves the cursor. The out schema defaults to the cursor's schema.
func (b *Builder) Op(id NodeID, name string, kind OpKind, out Schema) *Builder {
	if b.err != nil {
		return b
	}
	if id == "" {
		id = b.nextID()
	}
	if out.IsEmpty() && b.last != "" {
		out = b.g.Node(b.last).Out.Clone()
	}
	n := NewNode(id, name, kind, out)
	prev := b.last
	if err := b.g.AddNode(n); err != nil {
		return b.fail(err)
	}
	b.last = n.ID
	if prev != "" && !kind.IsSource() {
		if err := b.g.AddEdge(prev, id); err != nil {
			return b.fail(err)
		}
	}
	return b
}

// Chain wires an edge cursor -> id and moves the cursor to id. Use it to fan
// existing nodes together.
func (b *Builder) Chain(id NodeID) *Builder {
	if b.err != nil {
		return b
	}
	if b.last != "" {
		if err := b.g.AddEdge(b.last, id); err != nil {
			return b.fail(err)
		}
	}
	b.last = id
	return b
}

// Edge adds an explicit edge without moving the cursor.
func (b *Builder) Edge(from, to NodeID) *Builder {
	if b.err != nil {
		return b
	}
	if err := b.g.AddEdge(from, to); err != nil {
		return b.fail(err)
	}
	return b
}

// At moves the cursor to an existing node.
func (b *Builder) At(id NodeID) *Builder {
	if b.err != nil {
		return b
	}
	if b.g.Node(id) == nil {
		return b.fail(fmt.Errorf("%w: %s", ErrUnknownNode, id))
	}
	b.last = id
	return b
}

// Configure runs fn on the node under the cursor, for cost or parameter
// overrides.
func (b *Builder) Configure(fn func(*Node)) *Builder {
	if b.err != nil {
		return b
	}
	if b.last == "" {
		return b.fail(fmt.Errorf("etl: Configure with no cursor node"))
	}
	fn(b.g.Node(b.last))
	return b
}

// Graph returns the graph under construction (may be incomplete).
func (b *Builder) Graph() *Graph { return b.g }

// Build validates and returns the flow.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.g.Validate(); err != nil {
		return nil, err
	}
	return b.g, nil
}

// MustBuild is Build that panics on error, for fixture flows.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
