package etl

import (
	"sort"
	"testing"
)

func fptr(v float64) *float64 { return &v }

// lintKeys renders Lint's findings as "check pos" strings for set comparison.
func lintKeys(g *Graph, bounds []QualityBound) []string {
	var out []string
	for _, d := range Lint(g, bounds) {
		out = append(out, d.Check+" "+d.Pos)
	}
	sort.Strings(out)
	return out
}

func TestLintFlow(t *testing.T) {
	s := NewSchema(
		Attribute{Name: "id", Type: TypeInt, Key: true},
		Attribute{Name: "amount", Type: TypeFloat},
	)

	clean := linearFlow(t)

	// flt's output never reaches a sink (the split keeps everyone's arity
	// legal, so only the dangling output is reported).
	dangling := New("dangling")
	dangling.MustAddNode(NewNode("src", "S", OpExtract, s))
	dangling.MustAddNode(NewNode("split", "route", OpSplit, s))
	dangling.MustAddNode(NewNode("flt", "filter", OpFilter, s))
	dangling.MustAddNode(NewNode("load", "DW", OpLoad, Schema{}))
	dangling.MustAddEdge("src", "split")
	dangling.MustAddEdge("split", "flt")
	dangling.MustAddEdge("split", "load")

	// A locally well-formed island: nothing feeds flt2, so load2 — whose
	// arity is fine — is a sink no source can reach.
	island := New("island")
	island.MustAddNode(NewNode("src", "S", OpExtract, s))
	island.MustAddNode(NewNode("load", "DW", OpLoad, Schema{}))
	island.MustAddNode(NewNode("flt2", "filter", OpFilter, s))
	island.MustAddNode(NewNode("load2", "DW2", OpLoad, Schema{}))
	island.MustAddEdge("src", "load")
	island.MustAddEdge("flt2", "load2")

	// The filter claims attributes its producer does not emit / emits with
	// another type.
	mismatched := New("mismatched")
	mismatched.MustAddNode(NewNode("src", "S", OpExtract, s))
	mismatched.MustAddNode(NewNode("flt", "filter", OpFilter, NewSchema(
		Attribute{Name: "id", Type: TypeString},
		Attribute{Name: "missing", Type: TypeInt},
	)))
	mismatched.MustAddNode(NewNode("load", "DW", OpLoad, Schema{}))
	mismatched.MustAddEdge("src", "flt")
	mismatched.MustAddEdge("flt", "load")

	cyclic := New("cyclic")
	cyclic.MustAddNode(NewNode("a", "da", OpDerive, s))
	cyclic.MustAddNode(NewNode("b", "db", OpDerive, s))
	cyclic.MustAddEdge("a", "b")
	cyclic.MustAddEdge("b", "a")

	// An edge into a source: two arity violations on the source itself (the
	// 0-input cap and the source-has-inputs rule).
	backfed := New("backfed")
	backfed.MustAddNode(NewNode("src2", "S2", OpExtract, s))
	backfed.MustAddNode(NewNode("src", "S", OpExtract, s))
	backfed.MustAddNode(NewNode("drv", "derive", OpDerive, s))
	backfed.MustAddNode(NewNode("load", "DW", OpLoad, Schema{}))
	backfed.MustAddEdge("src2", "src")
	backfed.MustAddEdge("src", "drv")
	backfed.MustAddEdge("drv", "load")

	cases := []struct {
		name string
		g    *Graph
		want []string
	}{
		{"clean", clean, nil},
		{"empty", New("empty"), []string{"flow/empty empty"}},
		{"dangling", dangling, []string{"flow/dangling dangling/flt"}},
		{"island", island, []string{
			"flow/dangling island/flt2",
			"flow/unreachable island/load2",
		}},
		{"mismatched", mismatched, []string{
			// checkEdgeSchema reports the first problem per edge.
			"flow/schema mismatched/src->flt",
		}},
		{"cyclic", cyclic, []string{"flow/cycle cyclic"}},
		{"backfed", backfed, []string{
			"flow/arity backfed/src",
			"flow/arity backfed/src",
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := lintKeys(c.g, nil)
			want := append([]string(nil), c.want...)
			sort.Strings(want)
			if !equalStrings(got, want) {
				t.Errorf("Lint = %v, want %v", got, want)
			}
		})
	}
}

func TestLintBounds(t *testing.T) {
	g := linearFlow(t) // 4 nodes, longest path 4

	cases := []struct {
		name   string
		bounds []QualityBound
		want   []string
	}{
		{"achievable", []QualityBound{
			{Characteristic: "manageability", Measure: "flow_size", Max: fptr(10)},
			{Characteristic: "performance", Measure: "process_cycle_time", Max: fptr(1e9)},
		}, nil},
		{"range-below-min", []QualityBound{
			{Characteristic: "data_quality", Measure: "completeness", Max: fptr(-0.5)},
		}, []string{"constraint/range constraint:data_quality.completeness"}},
		{"range-above-max", []QualityBound{
			{Characteristic: "data_quality", Measure: "completeness", Min: fptr(1.5)},
		}, []string{"constraint/range constraint:data_quality.completeness"}},
		{"score-range", []QualityBound{
			{Characteristic: "performance", Min: fptr(2)},
		}, []string{"constraint/range constraint:performance.score"}},
		{"conflict", []QualityBound{
			{Characteristic: "performance", Measure: "process_cycle_time", Min: fptr(10), Label: "ct >= 10"},
			{Characteristic: "performance", Measure: "process_cycle_time", Max: fptr(5), Label: "ct <= 5"},
		}, []string{"constraint/conflict constraint:ct >= 10"}},
		{"achievability", []QualityBound{
			{Characteristic: "manageability", Measure: "flow_size", Max: fptr(3)},
		}, []string{"constraint/achievability constraint:manageability.flow_size"}},
		{"min-structural-cannot-prune", []QualityBound{
			// A structural Min below the current value is satisfiable deeper
			// in the space, so it must not be reported.
			{Characteristic: "manageability", Measure: "flow_size", Min: fptr(6)},
		}, nil},
		{"unknown-measure-conflict", []QualityBound{
			// Custom measures skip the range pass but a contradictory pair is
			// still a conflict.
			{Characteristic: "cost", Measure: "custom_units", Min: fptr(4), Label: "cu >= 4"},
			{Characteristic: "cost", Measure: "custom_units", Max: fptr(2), Label: "cu <= 2"},
		}, []string{"constraint/conflict constraint:cu >= 4"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := lintKeys(g, c.bounds)
			want := append([]string(nil), c.want...)
			sort.Strings(want)
			if !equalStrings(got, want) {
				t.Errorf("Lint = %v, want %v", got, want)
			}
		})
	}
}

// TestLintConstraintLabels pins the derived label and target fallbacks.
func TestLintConstraintLabels(t *testing.T) {
	b := QualityBound{Characteristic: "performance", Measure: "throughput"}
	if b.label() != "performance.throughput" {
		t.Errorf("label = %q", b.label())
	}
	b.Measure = ""
	if b.label() != "performance.score" || b.target() != "score(performance)" {
		t.Errorf("score label = %q target = %q", b.label(), b.target())
	}
	b.Label = "custom"
	if b.label() != "custom" {
		t.Errorf("explicit label = %q", b.label())
	}
}

func TestStructuralValue(t *testing.T) {
	g := diamondFlow(t) // 6 nodes, split+merge
	checks := []struct {
		measure string
		want    float64
	}{
		{"flow_size", float64(g.Len())},
		{"longest_path", float64(g.LongestPath())},
		{"merge_elements", float64(g.MergeCount())},
		{"cyclomatic_complexity", float64(g.CyclomaticComplexity())},
	}
	for _, c := range checks {
		v, ok := g.StructuralValue(c.measure)
		if !ok || v != c.want {
			t.Errorf("StructuralValue(%s) = %v, %v; want %v", c.measure, v, ok, c.want)
		}
	}
	if _, ok := g.StructuralValue("throughput"); ok {
		t.Error("throughput must not be structural")
	}
	for _, m := range StructuralMeasures() {
		if _, ok := g.StructuralValue(m); !ok {
			t.Errorf("StructuralMeasures lists %s but StructuralValue rejects it", m)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
