package etl

import (
	"strings"
	"testing"
)

func allKinds() []OpKind {
	return []OpKind{
		OpExtract, OpLoad, OpFilter, OpFilterNull, OpDerive, OpProject,
		OpConvert, OpSurrogate, OpJoin, OpLookup, OpAggregate, OpSort,
		OpDedup, OpUnion, OpSplit, OpPartition, OpMerge, OpCheckpoint,
		OpRecovery, OpCrosscheck, OpEncrypt, OpNoop,
	}
}

func TestOpKindStringRoundTrip(t *testing.T) {
	for _, k := range allKinds() {
		if got := ParseOpKind(k.String()); got != k {
			t.Errorf("round trip %v -> %q -> %v", k, k.String(), got)
		}
	}
	if ParseOpKind("bogus") != OpUnknown {
		t.Error("unknown name should parse to OpUnknown")
	}
	if OpKind(99).String() != "invalid" || OpKind(-1).String() != "invalid" {
		t.Error("out-of-range kinds should render invalid")
	}
	if ParseOpKind("  Filter ") != OpFilter {
		t.Error("parse should trim and lower-case")
	}
}

func TestOpKindClassification(t *testing.T) {
	if !OpExtract.IsSource() || !OpRecovery.IsSource() || OpFilter.IsSource() {
		t.Error("IsSource misbehaves")
	}
	if !OpLoad.IsSink() || OpMerge.IsSink() {
		t.Error("IsSink misbehaves")
	}
	for _, k := range []OpKind{OpAggregate, OpSort, OpDedup, OpJoin} {
		if !k.IsBlocking() {
			t.Errorf("%v should be blocking", k)
		}
	}
	for _, k := range []OpKind{OpFilter, OpDerive, OpExtract, OpLoad} {
		if k.IsBlocking() {
			t.Errorf("%v should not be blocking", k)
		}
	}
	for _, k := range []OpKind{OpFilterNull, OpDedup, OpCrosscheck} {
		if !k.IsCleaning() {
			t.Errorf("%v should be cleaning", k)
		}
	}
	if OpFilter.IsCleaning() {
		t.Error("plain filter is not a cleaning op")
	}
}

func TestOpKindArity(t *testing.T) {
	cases := []struct {
		k             OpKind
		maxIn, maxOut int
	}{
		{OpExtract, 0, 1},
		{OpLoad, 1, 0},
		{OpJoin, 2, 1},
		{OpCrosscheck, 2, 1},
		{OpUnion, -1, 1},
		{OpMerge, -1, 1},
		{OpSplit, 1, -1},
		{OpPartition, 1, -1},
		{OpCheckpoint, 1, 2},
		{OpFilter, 1, 1},
	}
	for _, c := range cases {
		if got := c.k.MaxInputs(); got != c.maxIn {
			t.Errorf("%v MaxInputs = %d, want %d", c.k, got, c.maxIn)
		}
		if got := c.k.MaxOutputs(); got != c.maxOut {
			t.Errorf("%v MaxOutputs = %d, want %d", c.k, got, c.maxOut)
		}
	}
}

func TestDefaultCostSanity(t *testing.T) {
	for _, k := range allKinds() {
		c := DefaultCost(k)
		if c.Selectivity <= 0 || c.Selectivity > 1 {
			t.Errorf("%v selectivity = %f", k, c.Selectivity)
		}
		if c.PerTuple < 0 || c.Startup < 0 || c.FailureRate < 0 || c.FailureRate >= 1 {
			t.Errorf("%v cost out of range: %+v", k, c)
		}
	}
	// Derive is the canonical expensive row-level op.
	if DefaultCost(OpDerive).PerTuple <= DefaultCost(OpProject).PerTuple {
		t.Error("derive should cost more than project")
	}
	// Cleaning ops drop rows.
	if DefaultCost(OpFilterNull).Selectivity >= 1 {
		t.Error("null filter should have selectivity < 1")
	}
}

func TestNodeHelpers(t *testing.T) {
	n := NewNode("a", "derive_x", OpDerive, NewSchema(Attribute{Name: "x", Type: TypeInt}))
	if n.Parallelism != 1 {
		t.Error("default parallelism should be 1")
	}
	if got := n.String(); !strings.Contains(got, "a") || !strings.Contains(got, "derive") {
		t.Errorf("String = %q", got)
	}
	w1 := n.WorkPerTuple()
	n.Parallelism = 4
	if got := n.WorkPerTuple(); got != w1/4 {
		t.Errorf("WorkPerTuple with parallelism = %f, want %f", got, w1/4)
	}
	n.Parallelism = 0 // degenerate: clamped to 1
	if got := n.WorkPerTuple(); got != w1 {
		t.Errorf("WorkPerTuple with parallelism 0 = %f", got)
	}
	n.SetParam("k", "v")
	if n.Param("k") != "v" || n.Param("missing") != "" {
		t.Error("params misbehave")
	}
	// SetParam on a node with nil map must not panic.
	m := &Node{ID: "m"}
	m.SetParam("a", "b")
	if m.Param("a") != "b" {
		t.Error("SetParam on nil map")
	}
}

func TestComplexityOrdersBlockingHigher(t *testing.T) {
	s := NewSchema(Attribute{Name: "x", Type: TypeInt})
	sortN := NewNode("s", "sort", OpSort, s)
	convN := NewNode("c", "conv", OpConvert, s)
	sortN.Cost.PerTuple = convN.Cost.PerTuple
	sortN.Cost.Startup = convN.Cost.Startup
	if sortN.Complexity() <= convN.Complexity() {
		t.Error("blocking op should be more complex at equal cost")
	}
}

func TestEdgeString(t *testing.T) {
	e := Edge{From: "a", To: "b"}
	if e.String() != "a->b" {
		t.Errorf("Edge.String = %q", e.String())
	}
}

func TestBuilderErrorPaths(t *testing.T) {
	// Configure without cursor.
	if _, err := NewBuilder("x").Configure(func(*Node) {}).Build(); err == nil {
		t.Error("Configure without cursor should fail")
	}
	// At unknown node.
	if _, err := NewBuilder("x").At("zz").Build(); err == nil {
		t.Error("At unknown should fail")
	}
	// Duplicate explicit IDs.
	s := NewSchema(Attribute{Name: "x", Type: TypeInt})
	if _, err := NewBuilder("x").
		Op("a", "a", OpExtract, s).
		Op("a", "dup", OpLoad, Schema{}).
		Build(); err == nil {
		t.Error("duplicate ID should fail")
	}
	// Errors stick: later calls are no-ops.
	b := NewBuilder("x").At("zz")
	b.Op("a", "a", OpExtract, s).Edge("a", "b")
	if _, err := b.Build(); err == nil {
		t.Error("error should persist")
	}
	// MustBuild panics on invalid flows.
	defer func() {
		if recover() == nil {
			t.Error("MustBuild should panic")
		}
	}()
	NewBuilder("x").Op("only", "f", OpFilter, s).MustBuild()
}

func TestBuilderChainAndAdd(t *testing.T) {
	s := NewSchema(Attribute{Name: "x", Type: TypeInt})
	b := NewBuilder("x")
	b.Add(NewNode("src", "S", OpExtract, s))
	b.Add(NewNode("mid", "conv", OpConvert, s))
	b.At("src").Chain("mid")
	b.Op("ld", "DW", OpLoad, Schema{})
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge("src", "mid") || !g.HasEdge("mid", "ld") {
		t.Errorf("chain wiring wrong:\n%s", g)
	}
	// Add with empty ID mints one.
	b2 := NewBuilder("y")
	b2.Add(NewNode("", "anon", OpExtract, s))
	if b2.Graph().Len() != 1 {
		t.Error("anonymous Add failed")
	}
}

func TestBuilderCursorSchemaDefault(t *testing.T) {
	s := NewSchema(Attribute{Name: "x", Type: TypeInt})
	g := NewBuilder("d").
		Op("src", "S", OpExtract, s).
		Op("f", "filter", OpFilter, Schema{}). // inherits cursor schema
		Op("ld", "DW", OpLoad, Schema{}).
		MustBuild()
	if !g.Node("f").Out.Has("x") {
		t.Error("cursor schema not inherited")
	}
}
