package etl

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFingerprintStable(t *testing.T) {
	g := linearFlow(t)
	f1 := g.Fingerprint()
	f2 := g.Fingerprint()
	if f1 != f2 {
		t.Error("fingerprint not stable across calls")
	}
	if f1 != linearFlow(t).Fingerprint() {
		t.Error("identical construction should fingerprint identically")
	}
}

func TestFingerprintIgnoresInsertionOrder(t *testing.T) {
	s := NewSchema(Attribute{Name: "x", Type: TypeInt})
	mk := func(reverse bool) *Graph {
		g := New("f")
		nodes := []*Node{
			NewNode("a", "a", OpExtract, s),
			NewNode("b", "b", OpDerive, s),
			NewNode("c", "c", OpLoad, Schema{}),
		}
		if reverse {
			for i := len(nodes) - 1; i >= 0; i-- {
				g.MustAddNode(nodes[i])
			}
		} else {
			for _, n := range nodes {
				g.MustAddNode(n)
			}
		}
		g.MustAddEdge("a", "b")
		g.MustAddEdge("b", "c")
		return g
	}
	if mk(false).Fingerprint() != mk(true).Fingerprint() {
		t.Error("fingerprint should not depend on node insertion order")
	}
}

func TestFingerprintIgnoresIDSpelling(t *testing.T) {
	s := NewSchema(Attribute{Name: "x", Type: TypeInt})
	mk := func(ids [3]NodeID) *Graph {
		g := New("f")
		g.MustAddNode(NewNode(ids[0], "ext", OpExtract, s))
		g.MustAddNode(NewNode(ids[1], "drv", OpDerive, s))
		g.MustAddNode(NewNode(ids[2], "ld", OpLoad, Schema{}))
		g.MustAddEdge(ids[0], ids[1])
		g.MustAddEdge(ids[1], ids[2])
		return g
	}
	a := mk([3]NodeID{"a", "b", "c"})
	b := mk([3]NodeID{"x1", "x2", "x3"})
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("fingerprint should not depend on node ID spelling")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := linearFlow(t)

	// Changing a parameter changes the fingerprint.
	g2 := base.Clone()
	g2.MutableNode("flt").SetParam("predicate", "amount > 10")
	if base.Fingerprint() == g2.Fingerprint() {
		t.Error("parameter change should change fingerprint")
	}

	// Changing parallelism changes the fingerprint.
	g3 := base.Clone()
	g3.MutableNode("drv").Parallelism = 4
	if base.Fingerprint() == g3.Fingerprint() {
		t.Error("parallelism change should change fingerprint")
	}

	// Changing structure changes the fingerprint.
	g4 := base.Clone()
	n := NewNode(g4.FreshID("x"), "x", OpFilterNull, g4.Node("src").Out)
	if err := g4.InsertOnEdge("src", "flt", n); err != nil {
		t.Fatal(err)
	}
	if base.Fingerprint() == g4.Fingerprint() {
		t.Error("structural change should change fingerprint")
	}

	// Same pattern at different positions -> different fingerprints.
	g5 := base.Clone()
	n5 := NewNode(g5.FreshID("x"), "x", OpFilterNull, g5.Node("flt").Out)
	if err := g5.InsertOnEdge("flt", "drv", n5); err != nil {
		t.Fatal(err)
	}
	if g4.Fingerprint() == g5.Fingerprint() {
		t.Error("same insertion at different points should differ")
	}
}

func TestFingerprintPositionIndependentGeneration(t *testing.T) {
	// Apply the same two insertions in opposite orders; the resulting flows
	// are identical designs and must deduplicate, even though FreshID
	// numbering differs.
	mk := func(firstEdge bool) *Graph {
		g := linearFlow(t)
		insert := func(from, to NodeID, name string) {
			n := NewNode(g.FreshID("gen"), name, OpFilterNull, g.Node(from).Out)
			if err := g.InsertOnEdge(from, to, n); err != nil {
				t.Fatal(err)
			}
		}
		if firstEdge {
			insert("src", "flt", "clean")
			insert("drv", "load", "clean")
		} else {
			insert("drv", "load", "clean")
			insert("src", "flt", "clean")
		}
		return g
	}
	if mk(true).Fingerprint() != mk(false).Fingerprint() {
		t.Error("order of independent pattern applications should not matter")
	}
}

// Property: clones always fingerprint identically; a random structural edit
// (node insertion on an edge) always changes the fingerprint.
func TestFingerprintCloneProperty(t *testing.T) {
	prop := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, int(size%25)+3)
		c := g.Clone()
		if g.Fingerprint() != c.Fingerprint() {
			return false
		}
		edges := c.Edges()
		e := edges[rng.Intn(len(edges))]
		n := NewNode(c.FreshID("mut"), "mut", OpNoop, Schema{})
		if err := c.InsertOnEdge(e.From, e.To, n); err != nil {
			return false
		}
		return g.Fingerprint() != c.Fingerprint()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func BenchmarkFingerprint(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	g := randomDAG(rng, 60)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Fingerprint()
	}
}

// Cone keys: the upstream-cone fingerprint of a node changes exactly when
// its own configuration or anything upstream of it changes — downstream
// edits leave it untouched, which is what lets the simulator splice cached
// upstream results into a modified flow.
func TestConeKeys(t *testing.T) {
	keysOf := func(g *Graph) map[NodeID]ConeKey {
		order, err := g.TopoOrder()
		if err != nil {
			t.Fatal(err)
		}
		keys := g.ConeKeys(order)
		out := make(map[NodeID]ConeKey, len(order))
		for i, id := range order {
			out[id] = keys[i]
		}
		return out
	}
	base := linearFlow(t)
	k0 := keysOf(base)

	// Insertion in the middle: upstream cones unchanged, the insertion point
	// and everything downstream dirty.
	g2 := base.Clone()
	n := NewNode(g2.FreshID("x"), "x", OpFilterNull, g2.Node("src").Out)
	if err := g2.InsertOnEdge("flt", "drv", n); err != nil {
		t.Fatal(err)
	}
	k2 := keysOf(g2)
	if k2["src"] != k0["src"] || k2["flt"] != k0["flt"] {
		t.Error("upstream cone keys should survive a downstream insertion")
	}
	if k2["drv"] == k0["drv"] || k2["load"] == k0["load"] {
		t.Error("nodes downstream of the insertion must get new cone keys")
	}

	// Selectivity is row-semantic and must dirty the downstream cone;
	// per-tuple cost is timing-only and must not.
	g3 := base.Clone()
	g3.MutableNode("flt").Cost.Selectivity = 0.123
	k3 := keysOf(g3)
	if k3["flt"] == k0["flt"] || k3["load"] == k0["load"] {
		t.Error("selectivity change should dirty the node and its downstream cone")
	}
	g4 := base.Clone()
	g4.MutableNode("flt").Cost.PerTuple *= 7
	k4 := keysOf(g4)
	if k4["load"] != k0["load"] {
		t.Error("timing-only cost change should not dirty cone keys")
	}
}
