package etl

import (
	"testing"
	"testing/quick"
)

func TestParseAttrType(t *testing.T) {
	cases := map[string]AttrType{
		"int": TypeInt, "Integer": TypeInt, "BIGINT": TypeInt, "long": TypeInt,
		"float": TypeFloat, "double": TypeFloat, "Decimal": TypeFloat, "numeric": TypeFloat,
		"string": TypeString, "VARCHAR": TypeString, "text": TypeString,
		"date": TypeDate, "timestamp": TypeDate, "datetime": TypeDate,
		"bool": TypeBool, "Boolean": TypeBool, "bit": TypeBool,
		"blob": TypeUnknown, "": TypeUnknown,
	}
	for in, want := range cases {
		if got := ParseAttrType(in); got != want {
			t.Errorf("ParseAttrType(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestAttrTypeRoundTrip(t *testing.T) {
	for _, typ := range []AttrType{TypeInt, TypeFloat, TypeString, TypeDate, TypeBool} {
		if got := ParseAttrType(typ.String()); got != typ {
			t.Errorf("round trip %v -> %q -> %v", typ, typ.String(), got)
		}
	}
}

func TestAttrTypeString_OutOfRange(t *testing.T) {
	if got := AttrType(99).String(); got != "invalid" {
		t.Errorf("AttrType(99).String() = %q", got)
	}
	if got := AttrType(-1).String(); got != "invalid" {
		t.Errorf("AttrType(-1).String() = %q", got)
	}
}

func TestIsNumeric(t *testing.T) {
	if !TypeInt.IsNumeric() || !TypeFloat.IsNumeric() {
		t.Error("int/float should be numeric")
	}
	if TypeString.IsNumeric() || TypeDate.IsNumeric() || TypeBool.IsNumeric() {
		t.Error("string/date/bool should not be numeric")
	}
}

func testSchema() Schema {
	return NewSchema(
		Attribute{Name: "id", Type: TypeInt, Key: true},
		Attribute{Name: "name", Type: TypeString, Nullable: true},
		Attribute{Name: "price", Type: TypeFloat},
	)
}

func TestSchemaBasics(t *testing.T) {
	s := testSchema()
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.IsEmpty() {
		t.Fatal("IsEmpty on non-empty schema")
	}
	if s.Index("name") != 1 {
		t.Errorf("Index(name) = %d", s.Index("name"))
	}
	if s.Index("missing") != -1 {
		t.Errorf("Index(missing) = %d", s.Index("missing"))
	}
	if !s.Has("price") || s.Has("qty") {
		t.Error("Has misbehaves")
	}
	a, ok := s.Attr("id")
	if !ok || a.Type != TypeInt || !a.Key {
		t.Errorf("Attr(id) = %+v, %v", a, ok)
	}
	if got := s.Names(); len(got) != 3 || got[0] != "id" || got[2] != "price" {
		t.Errorf("Names = %v", got)
	}
	if keys := s.Keys(); len(keys) != 1 || keys[0].Name != "id" {
		t.Errorf("Keys = %v", keys)
	}
	if !s.HasNullable() || !s.HasNumeric() || !s.HasKey() {
		t.Error("Has* predicates misbehave")
	}
}

func TestSchemaCloneIndependence(t *testing.T) {
	s := testSchema()
	c := s.Clone()
	c.Attrs[0].Name = "changed"
	if s.Attrs[0].Name != "id" {
		t.Error("Clone shares backing array")
	}
}

func TestSchemaProject(t *testing.T) {
	s := testSchema()
	p := s.Project("price", "id", "bogus")
	if p.Len() != 2 || p.Attrs[0].Name != "price" || p.Attrs[1].Name != "id" {
		t.Errorf("Project = %v", p)
	}
}

func TestSchemaUnion(t *testing.T) {
	s := testSchema()
	other := NewSchema(
		Attribute{Name: "id", Type: TypeInt},
		Attribute{Name: "qty", Type: TypeInt},
	)
	u := s.Union(other)
	if u.Len() != 4 || !u.Has("qty") {
		t.Errorf("Union = %v", u)
	}
	// first occurrence wins
	a, _ := u.Attr("id")
	if !a.Key {
		t.Error("Union did not preserve first occurrence of id")
	}
}

func TestSchemaWith(t *testing.T) {
	s := testSchema()
	s2 := s.With(Attribute{Name: "qty", Type: TypeInt})
	if s2.Len() != 4 || s.Len() != 3 {
		t.Errorf("With should add and not mutate: %v / %v", s2, s)
	}
	s3 := s2.With(Attribute{Name: "qty", Type: TypeFloat})
	a, _ := s3.Attr("qty")
	if s3.Len() != 4 || a.Type != TypeFloat {
		t.Errorf("With should replace in place: %v", s3)
	}
}

func TestSchemaWithoutNullability(t *testing.T) {
	s := testSchema().WithoutNullability()
	if s.HasNullable() {
		t.Error("WithoutNullability left nullable attributes")
	}
}

func TestSchemaEqualAndCompatible(t *testing.T) {
	s := testSchema()
	if !s.Equal(s.Clone()) {
		t.Error("schema not equal to its clone")
	}
	if s.Equal(s.Project("id")) {
		t.Error("different schemata reported equal")
	}
	sub := s.Project("id", "price")
	if !s.Compatible(sub) {
		t.Error("superset schema should be compatible with subset")
	}
	if sub.Compatible(s) {
		t.Error("subset schema should not satisfy superset")
	}
	wrongType := NewSchema(Attribute{Name: "id", Type: TypeString})
	if s.Compatible(wrongType) {
		t.Error("type mismatch should break compatibility")
	}
}

func TestSchemaString(t *testing.T) {
	s := NewSchema(
		Attribute{Name: "a", Type: TypeInt, Key: true},
		Attribute{Name: "b", Type: TypeString, Nullable: true},
	)
	want := "(a:int!, b:string?)"
	if got := s.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestSchemaCanonicalOrderIndependent(t *testing.T) {
	s1 := NewSchema(
		Attribute{Name: "a", Type: TypeInt},
		Attribute{Name: "b", Type: TypeString},
	)
	s2 := NewSchema(
		Attribute{Name: "b", Type: TypeString},
		Attribute{Name: "a", Type: TypeInt},
	)
	if s1.canonical() != s2.canonical() {
		t.Error("canonical form should ignore attribute order")
	}
}

func TestRowHelpers(t *testing.T) {
	r := Row{int64(1), nil, "x"}
	if !r.IsNullAt(1) || r.IsNullAt(0) {
		t.Error("IsNullAt misbehaves")
	}
	if !r.IsNullAt(99) || !r.IsNullAt(-1) {
		t.Error("IsNullAt should treat out-of-range as null")
	}
	c := r.Clone()
	c[0] = int64(2)
	if r[0] != int64(1) {
		t.Error("Clone shares storage")
	}
	k1 := r.KeyString([]int{0, 2})
	k2 := Row{int64(1), "y", "x"}.KeyString([]int{0, 2})
	if k1 != k2 {
		t.Errorf("KeyString mismatch: %q vs %q", k1, k2)
	}
	empty := Row{Value("")}
	if r.KeyString([]int{1}) == empty.KeyString([]int{0}) {
		t.Error("NULL key must differ from empty string key")
	}
}

// Property: Union is idempotent and its length is bounded by the sum of
// operand lengths.
func TestSchemaUnionProperties(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e"}
	mk := func(mask uint8) Schema {
		var s Schema
		for i, n := range names {
			if mask&(1<<i) != 0 {
				s.Attrs = append(s.Attrs, Attribute{Name: n, Type: TypeInt})
			}
		}
		return s
	}
	prop := func(m1, m2 uint8) bool {
		s1, s2 := mk(m1&31), mk(m2&31)
		u := s1.Union(s2)
		if u.Len() > s1.Len()+s2.Len() {
			return false
		}
		if !u.Union(s2).Equal(u) { // idempotence
			return false
		}
		for _, a := range s1.Attrs {
			if !u.Has(a.Name) {
				return false
			}
		}
		for _, a := range s2.Attrs {
			if !u.Has(a.Name) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
