package etl

import (
	"fmt"
)

// InsertOnEdge interposes a linear chain of new nodes on the edge from->to,
// in the order given: from -> chain[0] -> ... -> chain[n-1] -> to. This is
// the primitive behind edge-applicable patterns (P_E): "when the
// FilterNullValues pattern is deployed on the initial ETL flow, it is
// interposed between two consecutive operations".
//
// The chain nodes must not be present in the graph yet; they are marked
// Generated. The graph is modified in place; callers that need the original
// should Clone first.
func (g *Graph) InsertOnEdge(from, to NodeID, chain ...*Node) error {
	if len(chain) == 0 {
		return fmt.Errorf("etl: InsertOnEdge with empty chain")
	}
	if !g.HasEdge(from, to) {
		return fmt.Errorf("%w: %s->%s", ErrUnknownNode, from, to)
	}
	for _, n := range chain {
		n.Generated = true
		if err := g.AddNode(n); err != nil {
			return err
		}
	}
	if err := g.RemoveEdge(from, to); err != nil {
		return err
	}
	prev := from
	for _, n := range chain {
		if err := g.AddEdge(prev, n.ID); err != nil {
			return err
		}
		prev = n.ID
	}
	return g.AddEdge(prev, to)
}

// ReplaceNode substitutes node id by a sub-flow. Every predecessor of id is
// connected to entry, every successor to exit; the replaced node is removed.
// entry and exit may be the same node. All sub-flow nodes must already be in
// the graph (use Weave to add them first) or be supplied via nodes.
//
// This is the primitive behind node-applicable patterns (P_V): "a valid
// application point for the ParallelizeTask pattern is a node that can be
// replaced by multiple copies of itself".
func (g *Graph) ReplaceNode(id NodeID, entry, exit NodeID, nodes ...*Node) error {
	old := g.Node(id)
	if old == nil {
		return fmt.Errorf("%w: %s", ErrUnknownNode, id)
	}
	for _, n := range nodes {
		n.Generated = true
		if err := g.AddNode(n); err != nil {
			return err
		}
	}
	if g.Node(entry) == nil {
		return fmt.Errorf("%w: entry %s", ErrUnknownNode, entry)
	}
	if g.Node(exit) == nil {
		return fmt.Errorf("%w: exit %s", ErrUnknownNode, exit)
	}
	preds := g.Pred(id)
	succs := g.Succ(id)
	if err := g.RemoveNode(id); err != nil {
		return err
	}
	for _, p := range preds {
		if err := g.AddEdge(p, entry); err != nil {
			return err
		}
	}
	for _, s := range succs {
		if err := g.AddEdge(exit, s); err != nil {
			return err
		}
	}
	return nil
}

// Weave adds all nodes and internal edges of a sub-flow to the graph without
// connecting it to anything. The caller wires entry/exit edges afterwards.
// All sub-flow nodes are marked Generated with the given pattern name.
func (g *Graph) Weave(sub *Graph, pattern string) error {
	for _, n := range sub.Nodes() {
		c := n.Clone()
		c.Generated = true
		c.PatternName = pattern
		if err := g.AddNode(c); err != nil {
			return err
		}
	}
	for _, e := range sub.Edges() {
		if err := g.AddEdge(e.From, e.To); err != nil {
			return err
		}
	}
	return nil
}

// Merge integrates another flow into g (disjoint node sets required). It is
// the process-integration step of Jovanovic et al. (DaWaK 2012) that the
// Planner performs when the user accepts a design: "these patterns are in
// the form of process components and the Planner carefully merges them to
// the existing process".
func (g *Graph) Merge(other *Graph) error {
	for _, n := range other.Nodes() {
		if err := g.AddNode(n.Clone()); err != nil {
			return err
		}
	}
	for _, e := range other.Edges() {
		if err := g.AddEdge(e.From, e.To); err != nil {
			return err
		}
	}
	return nil
}

// SwapWithPredecessor reorders a node with its single predecessor:
//
//	gp -> p -> n -> s   becomes   gp -> n -> p -> s
//
// Both n and p must have exactly one input and one output. This is the
// primitive behind selection push-down style optimization patterns: a filter
// moved before an expensive transformation reduces the rows the
// transformation processes without altering the flow's functionality.
// Callers are responsible for schema feasibility (Validate catches the
// rest).
func (g *Graph) SwapWithPredecessor(id NodeID) error {
	n := g.Node(id)
	if n == nil {
		return fmt.Errorf("%w: %s", ErrUnknownNode, id)
	}
	if len(g.pred[id]) != 1 || len(g.succ[id]) != 1 {
		return fmt.Errorf("%w: %s must have exactly one input and one output", ErrArity, id)
	}
	p := g.pred[id][0]
	if len(g.pred[p]) != 1 || len(g.succ[p]) != 1 {
		return fmt.Errorf("%w: predecessor %s must have exactly one input and one output", ErrArity, p)
	}
	gp := g.pred[p][0]
	s := g.succ[id][0]
	g.removeEdge(gp, p)
	g.removeEdge(p, id)
	g.removeEdge(id, s)
	if err := g.AddEdge(gp, id); err != nil {
		return err
	}
	if err := g.AddEdge(id, p); err != nil {
		return err
	}
	if err := g.AddEdge(p, s); err != nil {
		return err
	}
	return nil
}

// Subflow extracts the induced sub-graph over the given node IDs as a new
// Graph (deep copies). Edges with an endpoint outside the set are dropped.
func (g *Graph) Subflow(name string, ids ...NodeID) (*Graph, error) {
	sub := New(name)
	in := map[NodeID]bool{}
	for _, id := range ids {
		n := g.Node(id)
		if n == nil {
			return nil, fmt.Errorf("%w: %s", ErrUnknownNode, id)
		}
		in[id] = true
		if err := sub.AddNode(n.Clone()); err != nil {
			return nil, err
		}
	}
	for _, e := range g.Edges() {
		if in[e.From] && in[e.To] {
			if err := sub.AddEdge(e.From, e.To); err != nil {
				return nil, err
			}
		}
	}
	return sub, nil
}
