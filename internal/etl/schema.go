// Package etl models ETL processes as directed acyclic flow graphs, following
// the process perspective used by POIESIS (Theodorou et al., EDBT 2015): each
// node is an ETL flow operation and each directed edge is a transition from an
// operation to a successor one.
//
// The package provides the operation taxonomy, attribute schemata, graph
// construction and validation, the graph algorithms that the quality measures
// need (topological order, longest path, coupling), and the mutation
// primitives used by Flow Component Patterns (insertion on an edge,
// replacement of a node by a sub-flow, graph merge).
package etl

import (
	"fmt"
	"sort"
	"strings"
)

// AttrType is the data type of a schema attribute.
type AttrType int

// Attribute types supported by the flow model. They deliberately mirror the
// coarse types that logical ETL models (xLM, PDI) expose.
const (
	TypeUnknown AttrType = iota
	TypeInt
	TypeFloat
	TypeString
	TypeDate
	TypeBool
)

var attrTypeNames = [...]string{
	TypeUnknown: "unknown",
	TypeInt:     "int",
	TypeFloat:   "float",
	TypeString:  "string",
	TypeDate:    "date",
	TypeBool:    "bool",
}

// String returns the lower-case name of the type.
func (t AttrType) String() string {
	if t < 0 || int(t) >= len(attrTypeNames) {
		return "invalid"
	}
	return attrTypeNames[t]
}

// ParseAttrType converts a type name (as found in xLM or PDI files) to an
// AttrType. Unrecognised names map to TypeUnknown.
func ParseAttrType(s string) AttrType {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "int", "integer", "bigint", "smallint", "long":
		return TypeInt
	case "float", "double", "decimal", "number", "numeric", "real":
		return TypeFloat
	case "string", "varchar", "char", "text":
		return TypeString
	case "date", "timestamp", "datetime", "time":
		return TypeDate
	case "bool", "boolean", "bit":
		return TypeBool
	default:
		return TypeUnknown
	}
}

// IsNumeric reports whether the type is numeric. Several pattern
// prerequisites (e.g. derive-value parallelisation) require numeric fields.
func (t AttrType) IsNumeric() bool { return t == TypeInt || t == TypeFloat }

// ValueKind is the physical Go representation that cells of an attribute
// type use inside a Row. Execution engines that lay rows out column-wise use
// it as the typed-storage hint for each attribute: TypeDate values are
// int64 days-since-epoch, so dates share the int64 kind.
type ValueKind uint8

// Physical value kinds. KindAny is the fallback for attributes whose cells
// have no single Go representation (TypeUnknown, mixed data).
const (
	KindAny ValueKind = iota
	KindInt64
	KindFloat64
	KindString
	KindBool
)

// ValueKind maps the attribute type to its physical cell representation.
func (t AttrType) ValueKind() ValueKind {
	switch t {
	case TypeInt, TypeDate:
		return KindInt64
	case TypeFloat:
		return KindFloat64
	case TypeString:
		return KindString
	case TypeBool:
		return KindBool
	default:
		return KindAny
	}
}

// ValueKinds returns the per-attribute physical kinds in schema order — the
// typed-storage hint a columnar engine uses to build one slice per attribute.
func (s Schema) ValueKinds() []ValueKind {
	out := make([]ValueKind, len(s.Attrs))
	for i, a := range s.Attrs {
		out[i] = a.Type.ValueKind()
	}
	return out
}

// Attribute is a single named, typed field of an operation schema.
type Attribute struct {
	Name     string
	Type     AttrType
	Nullable bool
	// Key marks attributes that participate in the logical key of the rowset;
	// duplicate detection and crosschecking patterns bind to key attributes.
	Key bool
}

// String renders the attribute as name:type with nullable/key markers.
func (a Attribute) String() string {
	s := a.Name + ":" + a.Type.String()
	if a.Nullable {
		s += "?"
	}
	if a.Key {
		s += "!"
	}
	return s
}

// Schema is an ordered list of attributes describing the rowset that flows
// along an edge of the graph.
type Schema struct {
	Attrs []Attribute
}

// NewSchema builds a schema from the given attributes.
func NewSchema(attrs ...Attribute) Schema {
	return Schema{Attrs: append([]Attribute(nil), attrs...)}
}

// Clone returns a deep copy of the schema.
func (s Schema) Clone() Schema {
	return Schema{Attrs: append([]Attribute(nil), s.Attrs...)}
}

// Len returns the number of attributes.
func (s Schema) Len() int { return len(s.Attrs) }

// IsEmpty reports whether the schema has no attributes.
func (s Schema) IsEmpty() bool { return len(s.Attrs) == 0 }

// Index returns the position of the attribute with the given name, or -1.
func (s Schema) Index(name string) int {
	for i, a := range s.Attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Has reports whether the schema contains an attribute with the given name.
func (s Schema) Has(name string) bool { return s.Index(name) >= 0 }

// Attr returns the attribute with the given name.
func (s Schema) Attr(name string) (Attribute, bool) {
	if i := s.Index(name); i >= 0 {
		return s.Attrs[i], true
	}
	return Attribute{}, false
}

// Names returns the attribute names in schema order.
func (s Schema) Names() []string {
	out := make([]string, len(s.Attrs))
	for i, a := range s.Attrs {
		out[i] = a.Name
	}
	return out
}

// Keys returns the key attributes in schema order.
func (s Schema) Keys() []Attribute {
	var out []Attribute
	for _, a := range s.Attrs {
		if a.Key {
			out = append(out, a)
		}
	}
	return out
}

// HasNullable reports whether any attribute is nullable. The
// FilterNullValues pattern is only applicable where nullable fields exist.
func (s Schema) HasNullable() bool {
	for _, a := range s.Attrs {
		if a.Nullable {
			return true
		}
	}
	return false
}

// HasNumeric reports whether any attribute is numeric.
func (s Schema) HasNumeric() bool {
	for _, a := range s.Attrs {
		if a.Type.IsNumeric() {
			return true
		}
	}
	return false
}

// HasKey reports whether any attribute is marked as key.
func (s Schema) HasKey() bool {
	for _, a := range s.Attrs {
		if a.Key {
			return true
		}
	}
	return false
}

// Project returns a schema restricted to the named attributes, in the order
// given. Unknown names are skipped.
func (s Schema) Project(names ...string) Schema {
	var out Schema
	for _, n := range names {
		if a, ok := s.Attr(n); ok {
			out.Attrs = append(out.Attrs, a)
		}
	}
	return out
}

// Union merges two schemata: attributes of s first, then attributes of other
// whose names are not already present.
func (s Schema) Union(other Schema) Schema {
	out := s.Clone()
	for _, a := range other.Attrs {
		if !out.Has(a.Name) {
			out.Attrs = append(out.Attrs, a)
		}
	}
	return out
}

// With returns a copy of the schema with the attribute appended (or replaced
// in place when an attribute of the same name already exists).
func (s Schema) With(a Attribute) Schema {
	out := s.Clone()
	if i := out.Index(a.Name); i >= 0 {
		out.Attrs[i] = a
		return out
	}
	out.Attrs = append(out.Attrs, a)
	return out
}

// WithoutNullability returns a copy in which every attribute is non-nullable.
// Cleaning operations that remove rows with nulls produce such schemata.
func (s Schema) WithoutNullability() Schema {
	out := s.Clone()
	for i := range out.Attrs {
		out.Attrs[i].Nullable = false
	}
	return out
}

// Equal reports whether two schemata have identical attribute lists.
func (s Schema) Equal(other Schema) bool {
	if len(s.Attrs) != len(other.Attrs) {
		return false
	}
	for i := range s.Attrs {
		if s.Attrs[i] != other.Attrs[i] {
			return false
		}
	}
	return true
}

// Compatible reports whether rows of schema s can be consumed by an operation
// expecting schema other: every attribute of other must exist in s with the
// same type. Extra attributes in s are allowed (they are projected away).
func (s Schema) Compatible(other Schema) bool {
	for _, want := range other.Attrs {
		got, ok := s.Attr(want.Name)
		if !ok || got.Type != want.Type {
			return false
		}
	}
	return true
}

// String renders the schema as (a:int, b:string?, ...).
func (s Schema) String() string {
	parts := make([]string, len(s.Attrs))
	for i, a := range s.Attrs {
		parts[i] = a.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// canonical renders a deterministic representation used by fingerprinting:
// attributes sorted by name so that attribute order does not affect identity.
func (s Schema) canonical() string {
	parts := make([]string, len(s.Attrs))
	for i, a := range s.Attrs {
		parts[i] = a.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// Value is a single cell of a row. A nil Value models SQL NULL.
type Value any

// Row is one tuple flowing through the pipeline. Positions correspond to
// schema attributes.
type Row []Value

// Clone returns a copy of the row.
func (r Row) Clone() Row { return append(Row(nil), r...) }

// IsNullAt reports whether the cell at position i is NULL.
func (r Row) IsNullAt(i int) bool { return i < 0 || i >= len(r) || r[i] == nil }

// KeyString renders the values at the given positions as a composite key.
func (r Row) KeyString(positions []int) string {
	var b strings.Builder
	for i, p := range positions {
		if i > 0 {
			b.WriteByte('|')
		}
		if p >= 0 && p < len(r) && r[p] != nil {
			fmt.Fprintf(&b, "%v", r[p])
		} else {
			b.WriteString("\x00NULL")
		}
	}
	return b.String()
}
