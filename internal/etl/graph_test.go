package etl

import (
	"errors"
	"strings"
	"testing"
)

// linearFlow builds extract -> filter -> derive -> load over a small schema.
func linearFlow(t testing.TB) *Graph {
	t.Helper()
	s := NewSchema(
		Attribute{Name: "id", Type: TypeInt, Key: true},
		Attribute{Name: "amount", Type: TypeFloat},
		Attribute{Name: "note", Type: TypeString, Nullable: true},
	)
	return NewBuilder("linear").
		Op("src", "S_Orders", OpExtract, s).
		Op("flt", "filter_valid", OpFilter, s).
		Op("drv", "derive_tax", OpDerive, s.With(Attribute{Name: "tax", Type: TypeFloat})).
		Op("load", "DW_Orders", OpLoad, Schema{}).
		MustBuild()
}

// diamondFlow builds a flow with a split and a merge:
//
//	src -> split -> a -> merge -> load
//	            \-> b ->/
func diamondFlow(t testing.TB) *Graph {
	t.Helper()
	s := NewSchema(
		Attribute{Name: "id", Type: TypeInt, Key: true},
		Attribute{Name: "grp", Type: TypeString},
	)
	g := New("diamond")
	g.MustAddNode(NewNode("src", "S_Data", OpExtract, s))
	g.MustAddNode(NewNode("split", "route", OpSplit, s))
	g.MustAddNode(NewNode("a", "derive_a", OpDerive, s))
	g.MustAddNode(NewNode("b", "derive_b", OpDerive, s))
	g.MustAddNode(NewNode("merge", "merge", OpMerge, s))
	g.MustAddNode(NewNode("load", "DW", OpLoad, Schema{}))
	g.MustAddEdge("src", "split")
	g.MustAddEdge("split", "a")
	g.MustAddEdge("split", "b")
	g.MustAddEdge("a", "merge")
	g.MustAddEdge("b", "merge")
	g.MustAddEdge("merge", "load")
	if err := g.Validate(); err != nil {
		t.Fatalf("diamond flow invalid: %v", err)
	}
	return g
}

func TestGraphBasics(t *testing.T) {
	g := linearFlow(t)
	if g.Len() != 4 || g.EdgeCount() != 3 {
		t.Fatalf("len=%d edges=%d", g.Len(), g.EdgeCount())
	}
	if g.Node("src") == nil || g.Node("nope") != nil {
		t.Error("Node lookup misbehaves")
	}
	if !g.HasEdge("src", "flt") || g.HasEdge("flt", "src") {
		t.Error("HasEdge misbehaves")
	}
	srcs, sinks := g.Sources(), g.Sinks()
	if len(srcs) != 1 || srcs[0].ID != "src" {
		t.Errorf("Sources = %v", srcs)
	}
	if len(sinks) != 1 || sinks[0].ID != "load" {
		t.Errorf("Sinks = %v", sinks)
	}
	if got := g.Succ("src"); len(got) != 1 || got[0] != "flt" {
		t.Errorf("Succ = %v", got)
	}
	if got := g.Pred("load"); len(got) != 1 || got[0] != "drv" {
		t.Errorf("Pred = %v", got)
	}
	if g.InDegree("flt") != 1 || g.OutDegree("flt") != 1 {
		t.Error("degree misbehaves")
	}
}

func TestGraphErrors(t *testing.T) {
	g := New("err")
	n := NewNode("a", "a", OpExtract, Schema{})
	if err := g.AddNode(n); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(NewNode("a", "dup", OpLoad, Schema{})); !errors.Is(err, ErrDuplicateNode) {
		t.Errorf("dup node: %v", err)
	}
	if err := g.AddEdge("a", "a"); !errors.Is(err, ErrSelfLoop) {
		t.Errorf("self loop: %v", err)
	}
	if err := g.AddEdge("a", "zz"); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown endpoint: %v", err)
	}
	g.MustAddNode(NewNode("b", "b", OpLoad, Schema{}))
	g.MustAddEdge("a", "b")
	if err := g.AddEdge("a", "b"); !errors.Is(err, ErrDuplicateEdge) {
		t.Errorf("dup edge: %v", err)
	}
	if err := g.RemoveEdge("b", "a"); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("remove missing edge: %v", err)
	}
	if err := g.RemoveNode("zz"); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("remove missing node: %v", err)
	}
}

func TestRemoveNodeCleansEdges(t *testing.T) {
	g := diamondFlow(t)
	if err := g.RemoveNode("a"); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge("split", "a") || g.HasEdge("a", "merge") {
		t.Error("edges to removed node survive")
	}
	if g.Len() != 5 {
		t.Errorf("len = %d", g.Len())
	}
	for _, e := range g.Edges() {
		if e.From == "a" || e.To == "a" {
			t.Errorf("stale edge %v", e)
		}
	}
}

func TestTopoSortDeterministic(t *testing.T) {
	g := diamondFlow(t)
	first, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		got, err := g.TopoSort()
		if err != nil {
			t.Fatal(err)
		}
		for j := range got {
			if got[j] != first[j] {
				t.Fatalf("topo order not deterministic: %v vs %v", got, first)
			}
		}
	}
	pos := map[NodeID]int{}
	for i, id := range first {
		pos[id] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("edge %v violates topo order", e)
		}
	}
}

func TestTopoSortCycle(t *testing.T) {
	g := New("cycle")
	g.MustAddNode(NewNode("a", "a", OpDerive, Schema{}))
	g.MustAddNode(NewNode("b", "b", OpDerive, Schema{}))
	g.MustAddEdge("a", "b")
	g.MustAddEdge("b", "a")
	if _, err := g.TopoSort(); !errors.Is(err, ErrCycle) {
		t.Errorf("want ErrCycle, got %v", err)
	}
	if err := g.Validate(); !errors.Is(err, ErrCycle) {
		t.Errorf("Validate: want ErrCycle, got %v", err)
	}
}

func TestValidateArity(t *testing.T) {
	// A load with outgoing edge is invalid.
	g := New("bad")
	g.MustAddNode(NewNode("src", "s", OpExtract, Schema{}))
	g.MustAddNode(NewNode("ld", "l", OpLoad, Schema{}))
	g.MustAddNode(NewNode("flt", "f", OpFilter, Schema{}))
	g.MustAddEdge("src", "ld")
	g.MustAddEdge("ld", "flt")
	// flt has no outgoing edge -> also invalid, but arity on ld fires first.
	err := g.Validate()
	if !errors.Is(err, ErrArity) {
		t.Errorf("want ErrArity, got %v", err)
	}

	// A filter with two inputs is invalid.
	g2 := New("bad2")
	s := NewSchema(Attribute{Name: "x", Type: TypeInt})
	g2.MustAddNode(NewNode("s1", "s1", OpExtract, s))
	g2.MustAddNode(NewNode("s2", "s2", OpExtract, s))
	g2.MustAddNode(NewNode("f", "f", OpFilter, s))
	g2.MustAddNode(NewNode("l", "l", OpLoad, Schema{}))
	g2.MustAddEdge("s1", "f")
	g2.MustAddEdge("s2", "f")
	g2.MustAddEdge("f", "l")
	if err := g2.Validate(); !errors.Is(err, ErrArity) {
		t.Errorf("want ErrArity, got %v", err)
	}
}

func TestValidateEmptyAndDisconnected(t *testing.T) {
	if err := New("empty").Validate(); !errors.Is(err, ErrNoSource) {
		t.Errorf("empty graph: %v", err)
	}
	g := New("nosink")
	g.MustAddNode(NewNode("a", "a", OpExtract, Schema{}))
	g.MustAddNode(NewNode("b", "b", OpFilter, Schema{}))
	g.MustAddEdge("a", "b")
	// b is a filter with no output: not connected to any sink.
	if err := g.Validate(); err == nil {
		t.Error("expected validation failure for dangling filter")
	}
}

func TestValidateSchemaMismatch(t *testing.T) {
	s := NewSchema(Attribute{Name: "id", Type: TypeInt})
	other := NewSchema(Attribute{Name: "ghost", Type: TypeInt})
	g := New("schema")
	g.MustAddNode(NewNode("src", "s", OpExtract, s))
	// filter claims to output an attribute the source does not produce
	g.MustAddNode(NewNode("f", "f", OpFilter, other))
	g.MustAddNode(NewNode("l", "l", OpLoad, Schema{}))
	g.MustAddEdge("src", "f")
	g.MustAddEdge("f", "l")
	if err := g.Validate(); !errors.Is(err, ErrSchema) {
		t.Errorf("want ErrSchema, got %v", err)
	}
}

func TestCloneIsolation(t *testing.T) {
	g := linearFlow(t)
	c := g.Clone()
	// Node edits go through MutableNode, which unshares copy-on-write nodes.
	c.MutableNode("src").Name = "changed"
	c.MutableNode("src").SetParam("k", "v")
	if g.Node("src").Name == "changed" {
		t.Error("MutableNode edit leaked into the original")
	}
	if g.Node("src").Param("k") != "" {
		t.Error("MutableNode params leaked into the original")
	}
	if c.Node("src").Name != "changed" || c.Node("src").Param("k") != "v" {
		t.Error("MutableNode edit not visible on the clone")
	}
	// Unmodified nodes stay shared (the point of copy-on-write).
	if g.Node("drv") != c.Node("drv") {
		t.Error("untouched nodes should be shared between clone and original")
	}
	if err := c.RemoveNode("flt"); err != nil {
		t.Fatal(err)
	}
	if g.Node("flt") == nil {
		t.Error("Clone shares structure")
	}
	if g.Fingerprint() == c.Fingerprint() {
		t.Error("structurally different clones should fingerprint differently")
	}
}

func TestCloneStructuralIndependence(t *testing.T) {
	g := linearFlow(t)
	a := g.Clone()
	b := g.Clone()
	// Divergent structural mutations on two clones of the same parent must
	// not interfere with each other or the parent (shared adjacency slices
	// are capacity-clamped, removals copy).
	x := NewNode(a.FreshID("x"), "x", OpFilterNull, a.Node("src").Out)
	if err := a.InsertOnEdge("src", "flt", x); err != nil {
		t.Fatal(err)
	}
	y := NewNode(b.FreshID("y"), "y", OpCheckpoint, b.Node("src").Out)
	if err := b.InsertOnEdge("src", "flt", y); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge("src", "flt") {
		t.Error("parent lost its edge after clone mutations")
	}
	if a.HasEdge("src", "flt") || b.HasEdge("src", "flt") {
		t.Error("clones kept the replaced edge")
	}
	if a.Node("y_1") != nil || b.Node("x_1") != nil {
		t.Error("clone mutations leaked across siblings")
	}
	for _, gr := range []*Graph{g, a, b} {
		if err := gr.Validate(); err != nil {
			t.Errorf("graph %q invalid after COW mutations: %v", gr.Name, err)
		}
	}
}

func TestMutableNodeOnFreshGraph(t *testing.T) {
	g := linearFlow(t)
	if g.Node("src") != g.MutableNode("src") {
		t.Error("MutableNode on a never-cloned graph should not copy")
	}
	if g.MutableNode("absent") != nil {
		t.Error("MutableNode of unknown id should be nil")
	}
}

func TestFreshIDNoCollision(t *testing.T) {
	g := linearFlow(t)
	seen := map[NodeID]bool{}
	for _, id := range g.NodeIDs() {
		seen[id] = true
	}
	for i := 0; i < 100; i++ {
		id := g.FreshID("gen")
		if seen[id] {
			t.Fatalf("FreshID returned duplicate %s", id)
		}
		seen[id] = true
		g.MustAddNode(NewNode(id, "x", OpNoop, Schema{}))
	}
}

func TestGraphString(t *testing.T) {
	g := linearFlow(t)
	s := g.String()
	for _, want := range []string{"linear", "src", "flt", "drv", "load", "extract"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestEdgesDeterministic(t *testing.T) {
	g := diamondFlow(t)
	first := g.Edges()
	for i := 0; i < 5; i++ {
		got := g.Edges()
		if len(got) != len(first) {
			t.Fatal("edge count varies")
		}
		for j := range got {
			if got[j] != first[j] {
				t.Fatalf("edge order not deterministic")
			}
		}
	}
}

func TestGeneratedCount(t *testing.T) {
	g := linearFlow(t)
	if g.GeneratedCount() != 0 {
		t.Fatal("fresh flow should have no generated nodes")
	}
	n := NewNode(g.FreshID("gen"), "x", OpFilterNull, g.Node("src").Out)
	if err := g.InsertOnEdge("src", "flt", n); err != nil {
		t.Fatal(err)
	}
	if g.GeneratedCount() != 1 {
		t.Errorf("GeneratedCount = %d", g.GeneratedCount())
	}
}
