package etl

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestRandomMutationSequences applies random valid mutation sequences
// (edge insertions, node replacements by partition/merge subflows, swaps)
// to random DAGs and checks the core invariants after every step: the graph
// stays acyclic, node/edge bookkeeping stays consistent, and clones remain
// unaffected.
func TestRandomMutationSequences(t *testing.T) {
	prop := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 8)
		snapshot := g.Clone()
		snapFP := snapshot.Fingerprint()

		for i := 0; i < int(steps%12)+1; i++ {
			switch rng.Intn(3) {
			case 0: // insert a node on a random edge
				edges := g.Edges()
				if len(edges) == 0 {
					continue
				}
				e := edges[rng.Intn(len(edges))]
				n := NewNode(g.FreshID("ins"), "ins", OpNoop, g.Node(e.From).Out)
				if err := g.InsertOnEdge(e.From, e.To, n); err != nil {
					return false
				}
			case 1: // replace a mid node with partition -> copies -> merge
				ids := g.NodeIDs()
				id := ids[rng.Intn(len(ids))]
				n := g.Node(id)
				if n.Kind.IsSource() || n.Kind.IsSink() {
					continue
				}
				in := g.InputSchema(id)
				part := NewNode(g.FreshID("p"), "part", OpPartition, in)
				mrg := NewNode(g.FreshID("m"), "mrg", OpMerge, n.Out)
				c1 := n.Clone()
				c1.ID = g.FreshID("c")
				c2 := n.Clone()
				c2.ID = g.FreshID("c")
				if err := g.ReplaceNode(id, part.ID, mrg.ID, part, mrg, c1, c2); err != nil {
					return false
				}
				for _, cp := range []*Node{c1, c2} {
					if err := g.AddEdge(part.ID, cp.ID); err != nil {
						return false
					}
					if err := g.AddEdge(cp.ID, mrg.ID); err != nil {
						return false
					}
				}
			case 2: // swap a single-in/single-out node with its predecessor
				ids := g.NodeIDs()
				id := ids[rng.Intn(len(ids))]
				if len(g.Pred(id)) != 1 || len(g.Succ(id)) != 1 {
					continue
				}
				p := g.Pred(id)[0]
				if len(g.Pred(p)) != 1 || len(g.Succ(p)) != 1 {
					continue
				}
				if err := g.SwapWithPredecessor(id); err != nil {
					return false
				}
			}
			// Invariants after every step.
			if _, err := g.TopoSort(); err != nil {
				return false
			}
			// Edge bookkeeping symmetric: every succ edge has a pred entry.
			for _, e := range g.Edges() {
				found := false
				for _, p := range g.Pred(e.To) {
					if p == e.From {
						found = true
					}
				}
				if !found {
					return false
				}
			}
		}
		// The snapshot is untouched by all mutations.
		return snapshot.Fingerprint() == snapFP
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
