package etl

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"sort"
)

// Fingerprint returns a canonical hash of the flow structure and operation
// configurations. Two alternative designs produced by applying the same
// patterns at the same application points hash identically even when the
// generation order (and hence node ID numbering) differs, which lets the
// Planner deduplicate the alternative space.
//
// The canonical form is position-based: nodes are labelled by their
// canonical() description plus the multiset of their predecessors' labels,
// iterated to a fixpoint (a Weisfeiler-Leman style refinement bounded by the
// longest path), then sorted.
//
// The result is cached on the graph and invalidated by structural mutations
// and MutableNode, so the planner's dedup probe and the measure report pay
// for one computation per design. Like the topo cache, the cached value is
// swapped atomically: concurrent readers may fill it lazily.
func (g *Graph) Fingerprint() string {
	if fp := g.fp.Load(); fp != nil {
		return *fp
	}
	s := g.fingerprintUncached()
	g.fp.Store(&s)
	return s
}

type wlLabel [16]byte

func (g *Graph) fingerprintUncached() string {
	n := len(g.order)
	idx := make(map[NodeID]int, n)
	for i, id := range g.order {
		idx[id] = i
	}
	// Refinement labels are fixed-size hashes, not hex strings: one WL round
	// over a flow of |V| nodes is allocation-free, which matters because the
	// planner fingerprints every generated alternative.
	labels := make([]wlLabel, n)
	buf := make([]byte, 0, 256)
	for i, id := range g.order {
		buf = append(buf[:0], g.nodes[id].canonical()...)
		sum := sha256.Sum256(buf)
		copy(labels[i][:], sum[:16])
	}
	// Refine along topological depth; for a DAG one pass per depth level
	// suffices, and LongestPath bounds the number of levels. A fixed small
	// cap guards pathological inputs.
	rounds := g.LongestPath()
	if rounds > 64 {
		rounds = 64
	}
	next := make([]wlLabel, n)
	var preds []wlLabel
	for r := 0; r < rounds; r++ {
		changed := false
		for i, id := range g.order {
			preds = preds[:0]
			for _, p := range g.pred[id] {
				preds = append(preds, labels[idx[p]])
			}
			sort.Slice(preds, func(a, b int) bool {
				return bytes.Compare(preds[a][:], preds[b][:]) < 0
			})
			buf = append(buf[:0], labels[i][:]...)
			buf = append(buf, '<')
			for _, pl := range preds {
				buf = append(buf, pl[:]...)
			}
			sum := sha256.Sum256(buf)
			var nl wlLabel
			copy(nl[:], sum[:16])
			if nl != labels[i] {
				changed = true
			}
			next[i] = nl
		}
		labels, next = next, labels
		if !changed {
			break
		}
	}
	all := append([]wlLabel(nil), labels...)
	sort.Slice(all, func(a, b int) bool { return bytes.Compare(all[a][:], all[b][:]) < 0 })
	buf = append(buf[:0], g.Name...)
	buf = append(buf, '\n')
	for _, l := range all {
		buf = append(buf, l[:]...)
	}
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:16])
}

// ConeKey identifies the full upstream simulation history of one node: its
// own data-semantic configuration plus, transitively, that of every ancestor
// and the exact routing ports connecting them. Two nodes (possibly in
// different alternative flows cloned from the same parent) with equal cone
// keys consume byte-identical inputs and produce byte-identical outputs under
// the same engine configuration and binding — the property the simulator's
// delta-evaluation cache is keyed on.
type ConeKey [16]byte

// ConeKeys computes the upstream-cone fingerprint of every node, aligned
// with the given topological order (as returned by TopoOrder/TopoSort).
//
// The key of a node hashes:
//
//   - the node's ID (bindings and default source seeds are ID-keyed),
//   - its canonical description (kind, name, output schema, parallelism,
//     params) plus its row-semantic cost parameters (selectivity),
//   - for every predecessor, in input order: the predecessor's cone key, the
//     output port this node occupies among the predecessor's successors, and
//     the predecessor's fan-out — partition and hash-split routing assign
//     rows by port, so the port wiring is part of the input identity.
//
// Purely timing-related cost fields (startup, per-tuple work, failure rate)
// are deliberately excluded: the engine recomputes timing from the concrete
// graph on every evaluation, so designs that differ only in those fields
// (e.g. UpgradeResources rewrites) still share cached row simulation.
func (g *Graph) ConeKeys(order []NodeID) []ConeKey {
	keys := make([]ConeKey, len(order))
	pos := make(map[NodeID]int, len(order))
	buf := make([]byte, 0, 512)
	for i, id := range order {
		pos[id] = i
		n := g.nodes[id]
		buf = buf[:0]
		buf = append(buf, id...)
		buf = append(buf, 0)
		buf = n.appendCone(buf)
		for _, p := range g.pred[id] {
			pk := keys[pos[p]]
			buf = append(buf, pk[:]...)
			port, fan := 0, len(g.succ[p])
			for j, s := range g.succ[p] {
				if s == id {
					port = j
					break
				}
			}
			buf = append(buf, byte(port), byte(port>>8), byte(fan), byte(fan>>8))
		}
		sum := sha256.Sum256(buf)
		copy(keys[i][:], sum[:16])
	}
	return keys
}
