package etl

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strings"
)

// Fingerprint returns a canonical hash of the flow structure and operation
// configurations. Two alternative designs produced by applying the same
// patterns at the same application points hash identically even when the
// generation order (and hence node ID numbering) differs, which lets the
// Planner deduplicate the alternative space.
//
// The canonical form is position-based: nodes are labelled by their
// canonical() description plus the multiset of their predecessors' labels,
// iterated to a fixpoint (a Weisfeiler-Leman style refinement bounded by the
// longest path), then sorted.
func (g *Graph) Fingerprint() string {
	labels := make(map[NodeID]string, g.Len())
	for _, n := range g.Nodes() {
		labels[n.ID] = n.canonical()
	}
	// Refine along topological order; for a DAG one pass per depth level
	// suffices, and LongestPath bounds the number of levels. A fixed small
	// cap guards pathological inputs.
	rounds := g.LongestPath()
	if rounds > 64 {
		rounds = 64
	}
	for i := 0; i < rounds; i++ {
		next := make(map[NodeID]string, len(labels))
		changed := false
		for _, id := range g.order {
			preds := make([]string, 0, len(g.pred[id]))
			for _, p := range g.pred[id] {
				preds = append(preds, labels[p])
			}
			sort.Strings(preds)
			nl := shortHash(labels[id] + "<" + strings.Join(preds, ";"))
			if nl != labels[id] {
				changed = true
			}
			next[id] = nl
		}
		labels = next
		if !changed {
			break
		}
	}
	all := make([]string, 0, len(labels))
	for _, id := range g.order {
		all = append(all, labels[id])
	}
	sort.Strings(all)
	sum := sha256.Sum256([]byte(g.Name + "\n" + strings.Join(all, "\n")))
	return hex.EncodeToString(sum[:16])
}

func shortHash(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:12])
}
