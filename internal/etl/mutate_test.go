package etl

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInsertOnEdge(t *testing.T) {
	g := linearFlow(t)
	before := g.Len()
	n := NewNode(g.FreshID("fnv"), "filter_nulls", OpFilterNull, g.Node("src").Out.WithoutNullability())
	if err := g.InsertOnEdge("src", "flt", n); err != nil {
		t.Fatal(err)
	}
	if g.Len() != before+1 {
		t.Errorf("len = %d", g.Len())
	}
	if g.HasEdge("src", "flt") {
		t.Error("original edge should be gone")
	}
	if !g.HasEdge("src", n.ID) || !g.HasEdge(n.ID, "flt") {
		t.Error("chain not wired")
	}
	if !n.Generated {
		t.Error("inserted node should be marked Generated")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("flow invalid after insertion: %v", err)
	}
}

func TestInsertOnEdgeChain(t *testing.T) {
	g := linearFlow(t)
	s := g.Node("flt").Out
	a := NewNode(g.FreshID("cp"), "persist", OpCheckpoint, s)
	b := NewNode(g.FreshID("enc"), "encrypt", OpEncrypt, s)
	if err := g.InsertOnEdge("flt", "drv", a, b); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge("flt", a.ID) || !g.HasEdge(a.ID, b.ID) || !g.HasEdge(b.ID, "drv") {
		t.Error("chain of two not wired in order")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("invalid after chain insertion: %v", err)
	}
}

func TestInsertOnEdgeErrors(t *testing.T) {
	g := linearFlow(t)
	if err := g.InsertOnEdge("src", "flt"); err == nil {
		t.Error("empty chain should fail")
	}
	n := NewNode("x", "x", OpNoop, Schema{})
	if err := g.InsertOnEdge("src", "load", n); err == nil {
		t.Error("nonexistent edge should fail")
	}
	// failed insertion must not leave the node behind
	if g.Node("x") != nil {
		t.Error("failed InsertOnEdge leaked a node")
	}
}

func TestReplaceNodeWithSubflow(t *testing.T) {
	g := linearFlow(t)
	in := g.InputSchema("drv") // schema flowing into the replaced node
	out := g.Node("drv").Out
	part := NewNode("part", "partition", OpPartition, in)
	c1 := NewNode("c1", "derive_copy1", OpDerive, out)
	c2 := NewNode("c2", "derive_copy2", OpDerive, out)
	mrg := NewNode("mrg", "merge", OpMerge, out)
	if err := g.ReplaceNode("drv", "part", "mrg", part, c1, c2, mrg); err != nil {
		t.Fatal(err)
	}
	g.MustAddEdge("part", "c1")
	g.MustAddEdge("part", "c2")
	g.MustAddEdge("c1", "mrg")
	g.MustAddEdge("c2", "mrg")
	if g.Node("drv") != nil {
		t.Error("replaced node still present")
	}
	if !g.HasEdge("flt", "part") || !g.HasEdge("mrg", "load") {
		t.Error("entry/exit not rewired")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("invalid after replacement: %v", err)
	}
	if g.LongestPath() != 6 {
		t.Errorf("longest path = %d, want 6", g.LongestPath())
	}
}

func TestReplaceNodeErrors(t *testing.T) {
	g := linearFlow(t)
	if err := g.ReplaceNode("nope", "a", "b"); err == nil {
		t.Error("replacing unknown node should fail")
	}
	if err := g.ReplaceNode("drv", "nope", "nope"); err == nil {
		t.Error("unknown entry should fail")
	}
}

func TestWeaveAndMerge(t *testing.T) {
	g := linearFlow(t)
	sub := New("sub")
	s := NewSchema(Attribute{Name: "id", Type: TypeInt})
	sub.MustAddNode(NewNode("w1", "w1", OpNoop, s))
	sub.MustAddNode(NewNode("w2", "w2", OpNoop, s))
	sub.MustAddEdge("w1", "w2")
	if err := g.Weave(sub, "TestPattern"); err != nil {
		t.Fatal(err)
	}
	if g.Node("w1") == nil || g.Node("w2") == nil || !g.HasEdge("w1", "w2") {
		t.Error("weave did not copy subflow")
	}
	if !g.Node("w1").Generated || g.Node("w1").PatternName != "TestPattern" {
		t.Error("weave did not mark nodes")
	}
	// Merge requires disjoint IDs.
	if err := g.Merge(sub); err == nil {
		t.Error("merge with overlapping IDs should fail")
	}
	other := New("other")
	other.MustAddNode(NewNode("o1", "o1", OpExtract, s))
	other.MustAddNode(NewNode("o2", "o2", OpLoad, Schema{}))
	other.MustAddEdge("o1", "o2")
	if err := g.Merge(other); err != nil {
		t.Fatal(err)
	}
	if g.Node("o1") == nil || !g.HasEdge("o1", "o2") {
		t.Error("merge did not copy flow")
	}
}

func TestSubflow(t *testing.T) {
	g := diamondFlow(t)
	sub, err := g.Subflow("piece", "split", "a", "merge")
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 3 {
		t.Errorf("sub len = %d", sub.Len())
	}
	if !sub.HasEdge("split", "a") || !sub.HasEdge("a", "merge") {
		t.Error("internal edges missing")
	}
	if sub.HasEdge("split", "b") {
		t.Error("external edge leaked")
	}
	// Deep copy: mutating sub must not affect g.
	sub.Node("a").Name = "changed"
	if g.Node("a").Name == "changed" {
		t.Error("Subflow shares nodes")
	}
	if _, err := g.Subflow("bad", "zzz"); err == nil {
		t.Error("unknown id should fail")
	}
}

// Property: InsertOnEdge on a random edge of a random DAG preserves
// acyclicity, adds exactly one node, and preserves reachability from the
// edge source to the edge target.
func TestInsertOnEdgePreservesDAG(t *testing.T) {
	prop := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, int(size%30)+3)
		edges := g.Edges()
		if len(edges) == 0 {
			return true
		}
		e := edges[rng.Intn(len(edges))]
		n := NewNode(g.FreshID("ins"), "ins", OpNoop, g.Node(e.From).Out)
		before := g.Len()
		if err := g.InsertOnEdge(e.From, e.To, n); err != nil {
			return false
		}
		if g.Len() != before+1 {
			return false
		}
		if _, err := g.TopoSort(); err != nil {
			return false
		}
		return g.Reachable(e.From)[e.To]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the source schemata are never altered by insertions (POIESIS
// keeps "the data sources schemata constant").
func TestInsertKeepsSourceSchemata(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 10)
		var before []string
		for _, s := range g.Sources() {
			before = append(before, s.Out.String())
		}
		edges := g.Edges()
		e := edges[rng.Intn(len(edges))]
		n := NewNode(g.FreshID("x"), "x", OpNoop, g.Node(e.From).Out)
		if err := g.InsertOnEdge(e.From, e.To, n); err != nil {
			return false
		}
		var after []string
		for _, s := range g.Sources() {
			after = append(after, s.Out.String())
		}
		if len(before) != len(after) {
			return false
		}
		for i := range before {
			if before[i] != after[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
