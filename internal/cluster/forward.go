package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"poiesis/internal/obs"
)

// hopByHop lists headers that describe one TCP hop rather than the request
// itself; a proxy must not relay them (RFC 9110 §7.6.1).
var hopByHop = []string{
	"Connection", "Keep-Alive", "Proxy-Authenticate", "Proxy-Authorization",
	"Proxy-Connection", "Te", "Trailer", "Transfer-Encoding", "Upgrade",
}

// Forward proxies the request to the owning replica and streams the response
// back. It is the transparent half of session sharding: a client may talk to
// any replica, and a request for a session another replica owns is replayed
// there verbatim — method, path, query, headers and body — with the response
// relayed chunk-by-chunk (each chunk flushed, so forwarded SSE progress
// streams stay live). The outgoing request carries ForwardedHeader with this
// replica's node ID; the receiving replica serves it locally no matter what
// its own ring says, so a request hops at most once.
//
// A peer that cannot be reached is marked down for the cooldown and the
// client gets 503 with a Retry-After; while the cooldown lasts, requests for
// that peer's keys short-circuit without a connection attempt, and the first
// request after it must pass a /v1/readyz probe before forwarding resumes.
func (c *Cluster) Forward(w http.ResponseWriter, r *http.Request, ownerID string) {
	p := c.peers[ownerID]
	if p == nil {
		// Ring and membership are built from the same list, so an unknown
		// owner means a bug, not an operational state.
		forwardError(w, http.StatusInternalServerError, fmt.Sprintf("owner %q is not a known peer", ownerID))
		return
	}
	ctx, span := obs.StartSpan(r.Context(), "cluster.forward")
	defer span.End()
	span.SetAttr("peer.id", ownerID)
	if ok, retry := c.available(ctx, p); !ok {
		span.FailMsg("peer down")
		unavailable(w, p, retry)
		return
	}
	start := time.Now()

	req, err := http.NewRequestWithContext(ctx, r.Method, p.url+r.URL.RequestURI(), r.Body)
	if err != nil {
		span.Fail(err)
		forwardError(w, http.StatusInternalServerError, fmt.Sprintf("building forward request: %v", err))
		return
	}
	req.Header = r.Header.Clone()
	for _, h := range hopByHop {
		req.Header.Del(h)
	}
	req.Header.Set(ForwardedHeader, c.self)
	// Re-stamp the trace context with the forward span, so the peer's
	// fragment grafts under this hop instead of under our HTTP root.
	setTraceParent(ctx, req)
	req.ContentLength = r.ContentLength

	resp, err := c.client.Do(req)
	if err != nil {
		p.forwardErrors.Add(1)
		c.observe(p.id, "forward", start, true)
		if ctx.Err() != nil {
			// The client went away; nothing to report and nobody to report
			// it to — and no reason to penalize the peer.
			return
		}
		span.Fail(err)
		c.markDown(p)
		c.logf("cluster: forwarding %s %s to %s: %v", r.Method, r.URL.Path, p.id, err)
		unavailable(w, p, c.cooldown)
		return
	}
	defer resp.Body.Close()
	p.forwarded.Add(1)
	// Observed at headers-received: a forwarded SSE stream may stay open for
	// minutes, and the peer's responsiveness is what the histogram tracks.
	c.observe(p.id, "forward", start, false)

	h := w.Header()
	// The local middleware already stamped the request ID and trace ID and
	// the upstream echoes the same values; drop ours so the client sees
	// each exactly once.
	h.Del(obs.RequestIDHeader)
	h.Del(obs.TraceIDHeader)
	for k, vs := range resp.Header {
		for _, v := range vs {
			h.Add(k, v)
		}
	}
	for _, hh := range hopByHop {
		h.Del(hh)
	}
	w.WriteHeader(resp.StatusCode)
	flushCopy(w, resp)
}

// flushCopy relays the response body, flushing after every chunk so
// incremental payloads (SSE events, keepalive comments) reach the client as
// they are produced instead of sitting in the proxy's buffer.
func flushCopy(w http.ResponseWriter, resp *http.Response) {
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// unavailable reports a down peer: 503 with a Retry-After telling the load
// balancer (or client) when forwarding might succeed again.
func unavailable(w http.ResponseWriter, p *peer, retry time.Duration) {
	secs := int(retry / time.Second)
	if retry%time.Second != 0 || secs == 0 {
		secs++ // ceil: "Retry-After: 0" invites an immediate hammering
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	forwardError(w, http.StatusServiceUnavailable,
		fmt.Sprintf("replica %s (owner of this session) is unreachable; retry in %ds", p.id, secs))
}

func forwardError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
