package cluster

import (
	"context"
	"io"
	"net/http"
	"time"
)

// maxTraceFetchBytes bounds a fetched trace payload. Traces are capped at a
// few hundred spans per fragment, so 8 MiB is generous; the bound exists so
// a confused peer cannot make this replica buffer without limit.
const maxTraceFetchBytes = 8 << 20

// FetchTrace asks one peer for its locally retained fragment of a trace
// (GET /v1/traces/{id}?local=1). ok is false when the peer does not hold the
// trace, is down, or the call fails — trace assembly is best-effort
// introspection, so the caller just renders what it has. The payload is the
// peer's JSON trace document; the server layer decodes and merges it.
func (c *Cluster) FetchTrace(ctx context.Context, peerID, traceID string) (payload []byte, ok bool) {
	p := c.peers[peerID]
	if p == nil {
		return nil, false
	}
	if up, _ := c.available(ctx, p); !up {
		return nil, false
	}
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.url+"/v1/traces/"+traceID+"?local=1", nil)
	if err != nil {
		return nil, false
	}
	req.Header.Set(ForwardedHeader, c.self)
	setRequestID(ctx, req)
	resp, err := c.client.Do(req)
	if err != nil {
		c.observe(p.id, "trace_get", start, true)
		if ctx.Err() == nil {
			c.markDown(p)
		}
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		// A peer without the fragment answers 404; that is a normal outcome.
		c.observe(p.id, "trace_get", start, resp.StatusCode != http.StatusNotFound)
		return nil, false
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxTraceFetchBytes+1))
	if err != nil || int64(len(b)) > maxTraceFetchBytes {
		c.observe(p.id, "trace_get", start, true)
		return nil, false
	}
	c.observe(p.id, "trace_get", start, false)
	return b, true
}
