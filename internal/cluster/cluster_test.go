package cluster

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParsePeers(t *testing.T) {
	members, err := ParsePeers("a=http://10.0.0.1:8080, b=http://10.0.0.2:8080 ,c=https://etl.example")
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 3 || members[0].ID != "a" || members[1].URL != "http://10.0.0.2:8080" || members[2].ID != "c" {
		t.Fatalf("parsed %+v", members)
	}
	for _, bad := range []string{"", "nourl", "=http://x", "a=", ","} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q) accepted", bad)
		}
	}
}

func TestNewValidation(t *testing.T) {
	ab := []Member{{ID: "a", URL: "http://h1:1"}, {ID: "b", URL: "http://h2:2"}}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"missing self", Config{Members: ab}},
		{"self not a member", Config{Self: "zz", Members: ab}},
		{"empty membership", Config{Self: "a"}},
		{"duplicate ID", Config{Self: "a", Members: []Member{{ID: "a", URL: "http://h:1"}, {ID: "a", URL: "http://h:2"}}}},
		{"bad URL", Config{Self: "a", Members: []Member{{ID: "a", URL: "ftp://h:1"}, {ID: "b", URL: "http://h:2"}}}},
		{"ID with separator", Config{Self: "a", Members: []Member{{ID: "a", URL: "http://h:1"}, {ID: "x,y", URL: "http://h:2"}}}},
	}
	for _, c := range cases {
		if _, err := New(c.cfg); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	cl, err := New(Config{Self: "a", Members: ab})
	if err != nil {
		t.Fatal(err)
	}
	if cl.Self() != "a" || len(cl.Members()) != 2 {
		t.Errorf("cluster state: self %q members %v", cl.Self(), cl.Members())
	}
	if got := cl.Owner(SessionKey("x")); got != "a" && got != "b" {
		t.Errorf("owner %q not a member", got)
	}
}

// twoNodeCluster builds a cluster runtime for node "a" whose peer "b" is the
// given test server.
func twoNodeCluster(t *testing.T, peerURL string, now func() time.Time) *Cluster {
	t.Helper()
	cl, err := New(Config{
		Self: "a",
		Members: []Member{
			{ID: "a", URL: "http://unused.invalid"},
			{ID: "b", URL: peerURL},
		},
		Now:      now,
		Cooldown: 5 * time.Second,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestForwardProxiesVerbatim(t *testing.T) {
	var gotPath, gotForwarded, gotBody string
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotPath = r.URL.RequestURI()
		gotForwarded = r.Header.Get(ForwardedHeader)
		b, _ := io.ReadAll(r.Body)
		gotBody = string(b)
		w.Header().Set("X-Custom", "yes")
		w.WriteHeader(http.StatusTeapot)
		io.WriteString(w, `{"ok":true}`)
	}))
	defer peer.Close()

	cl := twoNodeCluster(t, peer.URL, nil)
	req := httptest.NewRequest("POST", "/v1/sessions/abc/plan?stream=sse&every=2", strings.NewReader(`{"x":1}`))
	rr := httptest.NewRecorder()
	cl.Forward(rr, req, "b")

	if gotPath != "/v1/sessions/abc/plan?stream=sse&every=2" {
		t.Errorf("path %q", gotPath)
	}
	if gotForwarded != "a" {
		t.Errorf("forwarded header %q", gotForwarded)
	}
	if gotBody != `{"x":1}` {
		t.Errorf("body %q", gotBody)
	}
	if rr.Code != http.StatusTeapot || rr.Body.String() != `{"ok":true}` {
		t.Errorf("relayed %d %q", rr.Code, rr.Body.String())
	}
	if rr.Header().Get("X-Custom") != "yes" {
		t.Error("custom response header dropped")
	}
	st := cl.Stats()
	if len(st.Peers) != 1 || st.Peers[0].Forwarded != 1 {
		t.Errorf("stats %+v", st.Peers)
	}
}

// TestForwardDeadPeer: an unreachable owner yields 503 + Retry-After, the
// cooldown short-circuits the next request, and after the cooldown a
// successful /v1/readyz probe revives the peer.
func TestForwardDeadPeer(t *testing.T) {
	var mu sync.Mutex
	alive := false
	var probes int
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		if r.URL.Path == "/v1/readyz" {
			probes++
			if !alive {
				w.WriteHeader(http.StatusServiceUnavailable)
				return
			}
			w.WriteHeader(http.StatusOK)
			return
		}
		io.WriteString(w, "served")
	}))
	defer peer.Close()

	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	// Point the cluster at a dead address first to trip the cooldown.
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close() // nothing listens here anymore

	cl := twoNodeCluster(t, deadURL, clock)
	req := httptest.NewRequest("GET", "/v1/sessions/abc", nil)
	rr := httptest.NewRecorder()
	cl.Forward(rr, req, "b")
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("dead peer: %d", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Fatal("no Retry-After on dead peer")
	}
	if st := cl.Stats(); !st.Peers[0].Down || st.Peers[0].ForwardErrors != 1 {
		t.Fatalf("peer not marked down: %+v", st.Peers[0])
	}

	// Within the cooldown: short-circuit, no connection attempt.
	rr = httptest.NewRecorder()
	cl.Forward(rr, httptest.NewRequest("GET", "/v1/sessions/abc", nil), "b")
	if rr.Code != http.StatusServiceUnavailable || rr.Header().Get("Retry-After") == "" {
		t.Fatalf("cooldown window: %d", rr.Code)
	}
	if st := cl.Stats(); st.Peers[0].ForwardErrors != 1 {
		t.Fatalf("short-circuit dialed anyway: %+v", st.Peers[0])
	}

	// Cooldown elapsed but the peer is still not ready: the probe fails and
	// re-arms the cooldown.
	cl.peers["b"].url = strings.TrimRight(peer.URL, "/")
	now = now.Add(6 * time.Second)
	rr = httptest.NewRecorder()
	cl.Forward(rr, httptest.NewRequest("GET", "/v1/sessions/abc", nil), "b")
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("not-ready peer: %d", rr.Code)
	}
	mu.Lock()
	if probes != 1 {
		t.Fatalf("probes = %d, want 1", probes)
	}
	alive = true
	mu.Unlock()

	// Cooldown elapsed and the peer answers the probe: traffic resumes.
	now = now.Add(6 * time.Second)
	rr = httptest.NewRecorder()
	cl.Forward(rr, httptest.NewRequest("GET", "/v1/sessions/abc", nil), "b")
	if rr.Code != http.StatusOK || rr.Body.String() != "served" {
		t.Fatalf("revived peer: %d %q", rr.Code, rr.Body.String())
	}
	if st := cl.Stats(); st.Peers[0].Down || st.Peers[0].Forwarded != 1 {
		t.Fatalf("peer not revived: %+v", st.Peers[0])
	}
}

func TestCachePeerRoundTrip(t *testing.T) {
	store := map[string][]byte{}
	var mu sync.Mutex
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := strings.TrimPrefix(r.URL.Path, "/v1/cache/")
		mu.Lock()
		defer mu.Unlock()
		switch r.Method {
		case http.MethodGet:
			if b, ok := store[key]; ok {
				w.Write(b)
				return
			}
			w.WriteHeader(http.StatusNotFound)
		case http.MethodPut:
			b, _ := io.ReadAll(r.Body)
			store[key] = b
			w.WriteHeader(http.StatusNoContent)
		}
	}))
	defer peer.Close()

	cl := twoNodeCluster(t, peer.URL, nil)
	ctx := context.Background()
	if _, ok := cl.FetchCachedResult(ctx, "b", "k1"); ok {
		t.Fatal("fetch hit on empty peer")
	}
	if err := cl.PushCachedResult(ctx, "b", "k1", []byte(`{"r":1}`)); err != nil {
		t.Fatal(err)
	}
	b, ok := cl.FetchCachedResult(ctx, "b", "k1")
	if !ok || string(b) != `{"r":1}` {
		t.Fatalf("fetch after push: %v %q", ok, b)
	}
	st := cl.Stats()
	p := st.Peers[0]
	if p.CacheGets != 2 || p.CacheHits != 1 || p.CachePuts != 1 {
		t.Errorf("cache counters %+v", p)
	}
	// Unknown peers are rejected, not dialed.
	if _, ok := cl.FetchCachedResult(ctx, "zz", "k1"); ok {
		t.Error("fetch from unknown peer succeeded")
	}
	if err := cl.PushCachedResult(ctx, "zz", "k1", nil); err == nil {
		t.Error("push to unknown peer succeeded")
	}
}
