package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

// sampleKeys returns n deterministic pseudo-session-IDs.
func sampleKeys(n int) []string {
	rng := rand.New(rand.NewSource(42))
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("session:%016x%016x", rng.Uint64(), rng.Uint64())
	}
	return out
}

func nodeNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("node-%d", i)
	}
	return out
}

// TestRingDistribution checks that for every cluster size the service
// targets (2–8 replicas), each member's share of a large key population
// stays within ±15% of uniform — the bound that makes "add a replica" mean
// "add capacity" rather than "move the hot spot".
func TestRingDistribution(t *testing.T) {
	keys := sampleKeys(20000)
	for n := 2; n <= 8; n++ {
		r, err := NewRing(nodeNames(n), 0)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[string]int{}
		for _, k := range keys {
			counts[r.Owner(k)]++
		}
		if len(counts) != n {
			t.Fatalf("n=%d: only %d nodes own keys", n, len(counts))
		}
		uniform := float64(len(keys)) / float64(n)
		for node, c := range counts {
			dev := (float64(c) - uniform) / uniform
			if dev < -0.15 || dev > 0.15 {
				t.Errorf("n=%d: %s owns %d keys (%.1f%% off uniform %0.f)", n, node, c, dev*100, uniform)
			}
		}
	}
}

// TestRingDeterministicOwnership: replicas build their rings independently,
// possibly from differently ordered membership lists; they must agree on
// every key, or sessions would be unreachable from some replicas.
func TestRingDeterministicOwnership(t *testing.T) {
	nodes := []string{"c", "a", "d", "b"}
	shuffled := []string{"b", "d", "a", "c"}
	r1, err := NewRing(nodes, 64)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing(shuffled, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range sampleKeys(2000) {
		if o1, o2 := r1.Owner(k), r2.Owner(k); o1 != o2 {
			t.Fatalf("key %s: owners disagree (%s vs %s)", k, o1, o2)
		}
	}
	// And the same ring twice is trivially stable.
	for _, k := range sampleKeys(100) {
		if r1.Owner(k) != r1.Owner(k) {
			t.Fatal("owner not stable")
		}
	}
}

// TestRingMinimalMovement: growing n→n+1 must move only keys that land on
// the new node (consistent hashing's defining property), and the moved share
// should be in the neighborhood of 1/(n+1), not a reshuffle.
func TestRingMinimalMovement(t *testing.T) {
	keys := sampleKeys(20000)
	for n := 2; n <= 7; n++ {
		before, err := NewRing(nodeNames(n), 0)
		if err != nil {
			t.Fatal(err)
		}
		after, err := NewRing(nodeNames(n+1), 0)
		if err != nil {
			t.Fatal(err)
		}
		newNode := fmt.Sprintf("node-%d", n)
		moved := 0
		for _, k := range keys {
			o1, o2 := before.Owner(k), after.Owner(k)
			if o1 == o2 {
				continue
			}
			if o2 != newNode {
				t.Fatalf("n=%d→%d: key moved %s→%s, not to the new node", n, n+1, o1, o2)
			}
			moved++
		}
		ideal := float64(len(keys)) / float64(n+1)
		if f := float64(moved); f < 0.5*ideal || f > 1.5*ideal {
			t.Errorf("n=%d→%d: %d keys moved, want ~%.0f (±50%%)", n, n+1, moved, ideal)
		}
	}
}

// TestRingRemovalMovement mirrors the growth property: removing a node must
// reassign only that node's keys.
func TestRingRemovalMovement(t *testing.T) {
	keys := sampleKeys(10000)
	before, err := NewRing(nodeNames(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRing(nodeNames(3), 0) // node-3 removed
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		o1, o2 := before.Owner(k), after.Owner(k)
		if o1 != "node-3" && o1 != o2 {
			t.Fatalf("key owned by surviving %s moved to %s on removal of node-3", o1, o2)
		}
		if o1 == "node-3" && o2 == "node-3" {
			t.Fatal("removed node still owns a key")
		}
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty node list accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Error("duplicate node accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Error("empty node ID accepted")
	}
	r, err := NewRing([]string{"solo"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Owner("anything"); got != "solo" {
		t.Errorf("single-node ring owner = %q", got)
	}
}
