package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"poiesis/internal/obs"
)

// The shared plan-cache tier. Every canonical plan key has exactly one
// owning replica (CacheKey on the ring); a replica that misses its local
// cache asks the owner before evaluating, and hands the owner the result
// after evaluating, so across the whole cluster each flow fingerprint is
// evaluated at most once and later requests — on any replica — are served
// from a cache at most one hop away. Payloads are opaque bytes here (the
// server layer speaks core.ResultSnapshot JSON); this package only moves
// and counts them.

// maxCacheFetchBytes bounds a fetched cache payload. Serialized results are
// usually well under the plan cache's own 64 MiB default budget; the bound
// exists so a confused peer cannot make this replica buffer without limit.
const maxCacheFetchBytes = 256 << 20

// FetchCachedResult asks the owning peer for the serialized result under
// wireKey (the base64url form of the canonical plan key). ok is false on a
// peer miss, a down peer, or any transport error — the caller then evaluates
// locally, which is always correct, just not shared.
func (c *Cluster) FetchCachedResult(ctx context.Context, ownerID, wireKey string) (payload []byte, ok bool) {
	p := c.peers[ownerID]
	if p == nil {
		return nil, false
	}
	ctx, span := obs.StartSpan(ctx, "cluster.cache_get")
	defer span.End()
	span.SetAttr("peer.id", ownerID)
	if up, _ := c.available(ctx, p); !up {
		span.FailMsg("peer down")
		return nil, false
	}
	p.cacheGets.Add(1)
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.url+"/v1/cache/"+wireKey, nil)
	if err != nil {
		p.cacheErrors.Add(1)
		span.Fail(err)
		return nil, false
	}
	req.Header.Set(ForwardedHeader, c.self)
	setRequestID(ctx, req)
	setTraceParent(ctx, req)
	resp, err := c.client.Do(req)
	if err != nil {
		p.cacheErrors.Add(1)
		c.observe(p.id, "cache_get", start, true)
		if ctx.Err() == nil {
			c.markDown(p)
			c.logf("cluster: cache fetch from %s: %v", p.id, err)
		}
		span.Fail(err)
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		// A miss is a normal outcome, not a failed call.
		c.observe(p.id, "cache_get", start, resp.StatusCode != http.StatusNotFound)
		span.SetBool("hit", false)
		if resp.StatusCode != http.StatusNotFound {
			p.cacheErrors.Add(1)
			c.logf("cluster: cache fetch from %s: status %d", p.id, resp.StatusCode)
			span.FailMsg("status " + resp.Status)
		}
		return nil, false
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxCacheFetchBytes+1))
	if err != nil || int64(len(b)) > maxCacheFetchBytes {
		p.cacheErrors.Add(1)
		c.observe(p.id, "cache_get", start, true)
		span.FailMsg("payload truncated or unreadable")
		return nil, false
	}
	p.cacheHits.Add(1)
	c.observe(p.id, "cache_get", start, false)
	span.SetBool("hit", true)
	span.SetInt("bytes", int64(len(b)))
	return b, true
}

// setRequestID stamps the context's request ID (if any) onto an
// intra-cluster request, so one analyst request keeps one ID across every
// hop — forwards clone the inbound headers, but cache calls build fresh
// requests and need the ID restated.
func setRequestID(ctx context.Context, req *http.Request) {
	if rid := obs.RequestIDFrom(ctx); rid != "" {
		req.Header.Set(obs.RequestIDHeader, rid)
	}
}

// setTraceParent stamps the context's active span as the W3C traceparent of
// an intra-cluster request, so the receiving replica's trace fragment grafts
// under the calling span and the whole exchange renders as one tree.
func setTraceParent(ctx context.Context, req *http.Request) {
	if sp := obs.SpanFrom(ctx); sp != nil {
		req.Header.Set(obs.TraceParentHeader, sp.TraceParent())
	}
}

// PushCachedResult writes a freshly computed result through to the key's
// owning peer, so the next replica that misses on this key finds it at the
// owner. Strictly best-effort: a failed push costs future sharing, never the
// current response.
func (c *Cluster) PushCachedResult(ctx context.Context, ownerID, wireKey string, payload []byte) error {
	p := c.peers[ownerID]
	if p == nil {
		return fmt.Errorf("cluster: unknown peer %q", ownerID)
	}
	ctx, span := obs.StartSpan(ctx, "cluster.cache_put")
	defer span.End()
	span.SetAttr("peer.id", ownerID)
	span.SetInt("bytes", int64(len(payload)))
	if up, _ := c.available(ctx, p); !up {
		span.FailMsg("peer down")
		return fmt.Errorf("cluster: peer %s is down", ownerID)
	}
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, p.url+"/v1/cache/"+wireKey, bytes.NewReader(payload))
	if err != nil {
		p.cacheErrors.Add(1)
		span.Fail(err)
		return err
	}
	req.Header.Set(ForwardedHeader, c.self)
	req.Header.Set("Content-Type", "application/json")
	setRequestID(ctx, req)
	setTraceParent(ctx, req)
	resp, err := c.client.Do(req)
	if err != nil {
		p.cacheErrors.Add(1)
		c.observe(p.id, "cache_put", start, true)
		if ctx.Err() == nil {
			c.markDown(p)
			c.logf("cluster: cache push to %s: %v", p.id, err)
		}
		span.Fail(err)
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		p.cacheErrors.Add(1)
		c.observe(p.id, "cache_put", start, true)
		c.logf("cluster: cache push to %s: status %d", p.id, resp.StatusCode)
		span.FailMsg("status " + resp.Status)
		return fmt.Errorf("cluster: cache push to %s: status %d", ownerID, resp.StatusCode)
	}
	p.cachePuts.Add(1)
	c.observe(p.id, "cache_put", start, false)
	return nil
}
