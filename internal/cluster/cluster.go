package cluster

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ForwardedHeader marks intra-cluster HTTP calls with the origin replica's
// node ID. A request carrying it is never forwarded again — whatever replica
// receives it serves it locally — so membership disagreements between
// replicas degrade to a 404 on the wrong replica instead of a proxy loop.
const ForwardedHeader = "X-Poiesis-Forwarded"

// Member identifies one replica of the cluster: its stable node ID (the hash
// ring operates on IDs) and the base URL peers reach it at.
type Member struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// Config assembles a Cluster.
type Config struct {
	// Self is this replica's node ID; it must appear in Members.
	Self string
	// Members is the full static membership, including self. Every replica
	// must be started with an identical list (order is irrelevant — the ring
	// sorts) or replicas will disagree about ownership.
	Members []Member
	// VNodes is the virtual points per member on the ring. Default
	// DefaultVNodes. All replicas must use the same value.
	VNodes int
	// Client performs intra-cluster HTTP calls. The default client dials
	// with a short timeout but never bounds the response body — forwarded
	// SSE streams are open-ended.
	Client *http.Client
	// Cooldown is how long a peer that failed a forward is considered down:
	// requests owned by it short-circuit to 503 + Retry-After until the
	// cooldown elapses and a readiness probe succeeds. Default 3s.
	Cooldown time.Duration
	// ResponseHeaderTimeout bounds how long a peer may sit on a request
	// before sending response headers (only used when Client is nil). It is
	// what turns a wedged-but-listening peer into a tripped cooldown instead
	// of an analyst request that hangs forever. SSE streams send headers
	// immediately and are unaffected; a forwarded non-streaming plan must
	// finish computing within this budget, so plans expected to run longer
	// should stream. Default 5m.
	ResponseHeaderTimeout time.Duration
	// ProbeTimeout bounds the /v1/readyz probe that revives a cooled-down
	// peer. Default 1s.
	ProbeTimeout time.Duration
	// Logf reports forward failures and peer state changes. Default: drop.
	Logf func(format string, args ...any)
	// Now is the clock; tests inject a fake. Default time.Now.
	Now func() time.Time
}

// Cluster is the replica-local view of the cluster: the ring, the peers and
// the counters. All methods are safe for concurrent use.
type Cluster struct {
	self         string
	ring         *Ring
	members      []Member // sorted by ID
	peers        map[string]*peer
	client       *http.Client
	cooldown     time.Duration
	probeTimeout time.Duration
	logf         func(format string, args ...any)
	now          func() time.Time
	observer     Observer
}

// Observer receives one sample per outbound peer call. op is "forward",
// "cache_get" or "cache_put"; failed marks transport errors and error
// statuses (a cache miss is not a failure). Calls are synchronous on the
// request path, so observers must be cheap.
type Observer func(peerID, op string, d time.Duration, failed bool)

// SetObserver installs the outbound-call observer. Wire it during server
// construction, before the cluster serves traffic; it is not synchronized
// against in-flight calls.
func (c *Cluster) SetObserver(fn Observer) { c.observer = fn }

// observe reports one finished outbound call to the observer, if any.
// Durations use the wall clock, not c.now — the fake test clock never
// advances mid-call and latency histograms want real elapsed time.
func (c *Cluster) observe(peerID, op string, start time.Time, failed bool) {
	if c.observer != nil {
		c.observer(peerID, op, time.Since(start), failed)
	}
}

// peer is one remote replica plus its health state and traffic counters.
type peer struct {
	id  string
	url string // base URL, no trailing slash

	// mu guards downUntil; counters are atomics.
	mu        sync.Mutex
	downUntil time.Time

	// Outbound: calls this replica made to the peer.
	forwarded     atomic.Int64
	forwardErrors atomic.Int64
	cacheGets     atomic.Int64
	cacheHits     atomic.Int64
	cachePuts     atomic.Int64
	cacheErrors   atomic.Int64

	// Inbound: calls the peer made to this replica (counted by the server
	// layer via the Note* hooks, keyed off ForwardedHeader).
	forwardedIn atomic.Int64
	cacheGetsIn atomic.Int64
	cachePutsIn atomic.Int64
}

// New validates the membership and builds the replica's cluster runtime.
func New(cfg Config) (*Cluster, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: missing node ID (which member of the peer list is this replica?)")
	}
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("cluster: empty membership")
	}
	members := append([]Member(nil), cfg.Members...)
	sort.Slice(members, func(i, j int) bool { return members[i].ID < members[j].ID })
	ids := make([]string, 0, len(members))
	selfSeen := false
	for i, m := range members {
		if err := validateMember(m); err != nil {
			return nil, err
		}
		if i > 0 && members[i-1].ID == m.ID {
			return nil, fmt.Errorf("cluster: duplicate node ID %q", m.ID)
		}
		if m.ID == cfg.Self {
			selfSeen = true
		}
		ids = append(ids, m.ID)
	}
	if !selfSeen {
		return nil, fmt.Errorf("cluster: node ID %q is not in the peer list %v", cfg.Self, ids)
	}
	ring, err := NewRing(ids, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		self:         cfg.Self,
		ring:         ring,
		members:      members,
		peers:        make(map[string]*peer, len(members)-1),
		client:       cfg.Client,
		cooldown:     cfg.Cooldown,
		probeTimeout: cfg.ProbeTimeout,
		logf:         cfg.Logf,
		now:          cfg.Now,
	}
	if c.client == nil {
		rht := cfg.ResponseHeaderTimeout
		if rht <= 0 {
			rht = 5 * time.Minute
		}
		c.client = defaultClient(rht)
	}
	if c.cooldown <= 0 {
		c.cooldown = 3 * time.Second
	}
	if c.probeTimeout <= 0 {
		c.probeTimeout = time.Second
	}
	if c.logf == nil {
		c.logf = func(string, ...any) {}
	}
	if c.now == nil {
		c.now = time.Now
	}
	for _, m := range members {
		if m.ID == cfg.Self {
			continue
		}
		c.peers[m.ID] = &peer{id: m.ID, url: strings.TrimRight(m.URL, "/")}
	}
	return c, nil
}

func validateMember(m Member) error {
	if m.ID == "" {
		return fmt.Errorf("cluster: member with empty node ID (url %q)", m.URL)
	}
	if strings.ContainsAny(m.ID, "=,/ ") {
		return fmt.Errorf("cluster: node ID %q must not contain '=', ',', '/' or spaces", m.ID)
	}
	u, err := url.Parse(m.URL)
	if err != nil {
		return fmt.Errorf("cluster: member %s: invalid URL %q: %w", m.ID, m.URL, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return fmt.Errorf("cluster: member %s: URL %q must be http(s)://host[:port]", m.ID, m.URL)
	}
	return nil
}

// defaultClient dials fast and fails fast on unreachable peers, and bounds
// the wait for response *headers* — an alive-but-wedged peer must become a
// client.Do error so the cooldown machinery sees it. The response *body*
// stays open-ended: a forwarded plan may legitimately stream SSE progress
// for minutes.
func defaultClient(responseHeaderTimeout time.Duration) *http.Client {
	return &http.Client{
		Transport: &http.Transport{
			DialContext:           (&net.Dialer{Timeout: 2 * time.Second}).DialContext,
			MaxIdleConnsPerHost:   32,
			IdleConnTimeout:       90 * time.Second,
			ResponseHeaderTimeout: responseHeaderTimeout,
		},
	}
}

// ParsePeers parses the -peers CLI spec: comma-separated id=url pairs, e.g.
// "a=http://10.0.0.1:8080,b=http://10.0.0.2:8080". Validation of IDs and
// URLs happens in New.
func ParsePeers(spec string) ([]Member, error) {
	var out []Member
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, u, ok := strings.Cut(part, "=")
		if !ok || id == "" || u == "" {
			return nil, fmt.Errorf("cluster: peer %q: want id=url", part)
		}
		out = append(out, Member{ID: strings.TrimSpace(id), URL: strings.TrimSpace(u)})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list %q", spec)
	}
	return out, nil
}

// Self returns this replica's node ID.
func (c *Cluster) Self() string { return c.self }

// Members returns the full membership sorted by node ID.
func (c *Cluster) Members() []Member { return append([]Member(nil), c.members...) }

// Owner returns the node ID owning a ring key (use SessionKey / CacheKey to
// namespace).
func (c *Cluster) Owner(key string) string { return c.ring.Owner(key) }

// IsLocal reports whether this replica owns the ring key.
func (c *Cluster) IsLocal(key string) bool { return c.ring.Owner(key) == c.self }

// markDown records a failed call to the peer; until the cooldown elapses,
// calls owned by it short-circuit.
func (c *Cluster) markDown(p *peer) {
	until := c.now().Add(c.cooldown)
	p.mu.Lock()
	wasUp := p.downUntil.Before(c.now())
	p.downUntil = until
	p.mu.Unlock()
	if wasUp {
		c.logf("cluster: peer %s (%s) unreachable, backing off %s", p.id, p.url, c.cooldown)
	}
}

// available reports whether the peer may be called. A peer inside its
// cooldown window is skipped outright (retryAfter says for how long); one
// whose cooldown has elapsed must first pass a /v1/readyz probe — the probe
// is what revives a dead peer, so a replica that restarted is picked back up
// within one cooldown without any background loop.
func (c *Cluster) available(ctx context.Context, p *peer) (ok bool, retryAfter time.Duration) {
	now := c.now()
	p.mu.Lock()
	down := p.downUntil.After(now)
	wasDown := !p.downUntil.IsZero()
	p.mu.Unlock()
	if down {
		p.mu.Lock()
		retryAfter = p.downUntil.Sub(now)
		p.mu.Unlock()
		return false, retryAfter
	}
	if wasDown {
		if !c.probe(ctx, p) {
			c.markDown(p)
			return false, c.cooldown
		}
		p.mu.Lock()
		p.downUntil = time.Time{}
		p.mu.Unlock()
		c.logf("cluster: peer %s (%s) ready again", p.id, p.url)
	}
	return true, 0
}

// probe asks the peer's readiness endpoint whether it can serve. It runs on
// a request path (the first request after a cooldown expires), so the probe
// deadline is layered onto the triggering request's context: the client
// hanging up cancels the probe too.
func (c *Cluster) probe(ctx context.Context, p *peer) bool {
	ctx, cancel := context.WithTimeout(ctx, c.probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.url+"/v1/readyz", nil)
	if err != nil {
		return false
	}
	req.Header.Set(ForwardedHeader, c.self)
	resp, err := c.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
	return resp.StatusCode == http.StatusOK
}

// KnownPeer reports whether origin names another member of this cluster.
// The peer-facing cache endpoints accept traffic only from known peers: the
// forwarded marker is no cryptographic credential, but it keeps stray or
// confused clients from reading or writing the cache tier by accident —
// network isolation of the replica group remains the real boundary.
func (c *Cluster) KnownPeer(origin string) bool {
	return c.peers[origin] != nil
}

// NoteForwardedIn counts a session request that arrived forwarded from the
// origin replica. Unknown origins (a peer list drifted) are ignored.
func (c *Cluster) NoteForwardedIn(origin string) {
	if p := c.peers[origin]; p != nil {
		p.forwardedIn.Add(1)
	}
}

// NoteCacheGetIn counts a plan-cache lookup served for the origin replica.
func (c *Cluster) NoteCacheGetIn(origin string) {
	if p := c.peers[origin]; p != nil {
		p.cacheGetsIn.Add(1)
	}
}

// NoteCachePutIn counts a plan-cache write-through received from the origin
// replica.
func (c *Cluster) NoteCachePutIn(origin string) {
	if p := c.peers[origin]; p != nil {
		p.cachePutsIn.Add(1)
	}
}

// PeerStats is a point-in-time snapshot of one peer's state and counters.
type PeerStats struct {
	ID   string `json:"id"`
	URL  string `json:"url"`
	Down bool   `json:"down"`

	Forwarded     int64 `json:"forwarded"`
	ForwardErrors int64 `json:"forwardErrors,omitempty"`
	CacheGets     int64 `json:"cacheGets"`
	CacheHits     int64 `json:"cacheHits"`
	CachePuts     int64 `json:"cachePuts"`
	CacheErrors   int64 `json:"cacheErrors,omitempty"`

	ForwardedIn int64 `json:"forwardedIn"`
	CacheGetsIn int64 `json:"cacheGetsIn"`
	CachePutsIn int64 `json:"cachePutsIn"`
}

// Stats is the cluster section of /v1/stats and /v1/cluster.
type Stats struct {
	Self   string      `json:"self"`
	VNodes int         `json:"vnodes"`
	Peers  []PeerStats `json:"peers"`
}

// Stats snapshots the per-peer counters, sorted by peer ID.
func (c *Cluster) Stats() Stats {
	out := Stats{Self: c.self, VNodes: c.ring.VNodes()}
	now := c.now()
	for _, m := range c.members {
		p := c.peers[m.ID]
		if p == nil {
			continue // self
		}
		p.mu.Lock()
		down := p.downUntil.After(now)
		p.mu.Unlock()
		out.Peers = append(out.Peers, PeerStats{
			ID:            p.id,
			URL:           p.url,
			Down:          down,
			Forwarded:     p.forwarded.Load(),
			ForwardErrors: p.forwardErrors.Load(),
			CacheGets:     p.cacheGets.Load(),
			CacheHits:     p.cacheHits.Load(),
			CachePuts:     p.cachePuts.Load(),
			CacheErrors:   p.cacheErrors.Load(),
			ForwardedIn:   p.forwardedIn.Load(),
			CacheGetsIn:   p.cacheGetsIn.Load(),
			CachePutsIn:   p.cachePutsIn.Load(),
		})
	}
	return out
}
