// Package cluster turns the poiesis planning service into a shard-aware
// replica. A static membership list (every replica knows the full list plus
// its own node ID) feeds a consistent-hash ring; sessions are owned by the
// replica their ID hashes to and plan-cache entries by the replica their
// canonical plan key hashes to. Requests for a session another replica owns
// are transparently proxied to it (including SSE progress streams), and on a
// local plan-cache miss the key's owner is asked for — and later handed —
// the result, so one flow fingerprint is evaluated on at most one replica.
//
// The package deliberately stays below the HTTP handler layer: it knows how
// to hash, route, proxy and count, while the server package decides *which*
// requests shard by *which* keys.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
)

// DefaultVNodes is the number of virtual nodes each member contributes to
// the ring. Imbalance between members shrinks roughly with 1/sqrt(vnodes);
// 512 points per member keeps every member's key share within ±15% of
// uniform across the 2–8 replica range (see TestRingDistribution), and ring
// construction — a few thousand hashes, once per process — stays trivial.
const DefaultVNodes = 512

// Ring is a consistent-hash ring over a static set of node IDs. Ownership is
// a pure function of (sorted member IDs, vnode count, key), so every replica
// that was started with the same membership list computes identical owners
// without any coordination. Adding or removing one member moves only the
// keys that land on that member's arcs (~1/n of the space); everything else
// keeps its owner — the property that makes rebalancing a file move rather
// than a full reshuffle.
type Ring struct {
	vnodes int
	nodes  []string // sorted unique member IDs
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds a ring with vnodes virtual points per node (<=0 uses
// DefaultVNodes). Node IDs must be non-empty and unique.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)
	for i, id := range sorted {
		if id == "" {
			return nil, fmt.Errorf("cluster: empty node ID")
		}
		if i > 0 && sorted[i-1] == id {
			return nil, fmt.Errorf("cluster: duplicate node ID %q", id)
		}
	}
	r := &Ring{
		vnodes: vnodes,
		nodes:  sorted,
		points: make([]ringPoint, 0, len(sorted)*vnodes),
	}
	for _, id := range sorted {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: hash64(id + "#" + strconv.Itoa(v)),
				node: id,
			})
		}
	}
	// Ties between different nodes' points are broken by node ID so that
	// replicas agree on ownership regardless of input order.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// Owner returns the node ID owning key: the first ring point clockwise from
// the key's hash.
func (r *Ring) Owner(key string) string {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest point
	}
	return r.points[i].node
}

// Nodes returns the sorted member IDs.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// VNodes reports the virtual points per member.
func (r *Ring) VNodes() int { return r.vnodes }

// hash64 maps a string onto the ring's key space. SHA-256 (truncated to 64
// bits) rather than a fast non-cryptographic hash: ring positions are
// computed once per membership and once per request, so quality of spread
// matters far more than nanoseconds, and session IDs are user-visible —
// a weak hash would let crafted IDs pile onto one replica.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// SessionKey namespaces a session ID for ring lookup, keeping session and
// plan-cache placements independent.
func SessionKey(id string) string { return "session:" + id }

// CacheKey namespaces a canonical plan key for ring lookup.
func CacheKey(planKey string) string { return "plan:" + planKey }
