package viz

import (
	"encoding/json"
	"math"
	"testing"
)

func TestScatterJSON(t *testing.T) {
	points := []ScatterPoint{
		{Label: "initial", X: 0.1, Y: 0.2, Z: 0.3},
		{Label: "alt", X: 0.4, Y: 0.5, Z: math.NaN(), Skyline: true},
	}
	b, err := ScatterJSON(points, ScatterConfig{
		Title: "t", XLabel: "performance", YLabel: "data_quality", ZLabel: "reliability",
	})
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Title  string `json:"title"`
		XLabel string `json:"xLabel"`
		Points []struct {
			Label   string   `json:"label"`
			X       float64  `json:"x"`
			Z       *float64 `json:"z"`
			Skyline bool     `json:"skyline"`
		} `json:"points"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("round trip: %v in %s", err, b)
	}
	if doc.Title != "t" || doc.XLabel != "performance" || len(doc.Points) != 2 {
		t.Fatalf("doc incomplete: %+v", doc)
	}
	if doc.Points[0].Z == nil || *doc.Points[0].Z != 0.3 {
		t.Error("finite Z dropped")
	}
	if doc.Points[1].Z != nil {
		t.Error("NaN Z must be omitted, not serialized")
	}
	if !doc.Points[1].Skyline || doc.Points[0].Skyline {
		t.Error("skyline flags wrong")
	}
}
