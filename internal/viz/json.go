package viz

import (
	"encoding/json"
	"math"
)

// scatterDoc is the JSON wire format of the Fig. 4 scatter: the alternative
// space with the Pareto frontier flagged, ready for a browser UI to plot
// without re-deriving axes. Z is omitted per-point when NaN.
type scatterDoc struct {
	Title  string             `json:"title,omitempty"`
	XLabel string             `json:"xLabel,omitempty"`
	YLabel string             `json:"yLabel,omitempty"`
	ZLabel string             `json:"zLabel,omitempty"`
	Points []scatterPointJSON `json:"points"`
}

type scatterPointJSON struct {
	Label   string   `json:"label"`
	X       float64  `json:"x"`
	Y       float64  `json:"y"`
	Z       *float64 `json:"z,omitempty"`
	Skyline bool     `json:"skyline,omitempty"`
}

// ScatterJSON exports the scatter plot data as a JSON document: the
// machine-readable counterpart of ASCIIScatter/SVGScatter for UI and API
// consumers.
func ScatterJSON(points []ScatterPoint, cfg ScatterConfig) ([]byte, error) {
	doc := scatterDoc{
		Title:  cfg.Title,
		XLabel: cfg.XLabel,
		YLabel: cfg.YLabel,
		ZLabel: cfg.ZLabel,
		Points: make([]scatterPointJSON, 0, len(points)),
	}
	for _, p := range points {
		jp := scatterPointJSON{Label: p.Label, X: p.X, Y: p.Y, Skyline: p.Skyline}
		if !math.IsNaN(p.Z) {
			z := p.Z
			jp.Z = &z
		}
		doc.Points = append(doc.Points, jp)
	}
	return json.Marshal(doc)
}
