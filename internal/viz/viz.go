// Package viz renders the POIESIS visualizations in terminal-friendly ASCII
// and standalone SVG: the multidimensional scatter plot of alternative ETL
// flows (Fig. 4) and the relative-change bar graph against the initial flow
// (Fig. 5), including the drill-down into detailed composing metrics.
package viz

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"poiesis/internal/measures"
)

// ScatterPoint is one design in the quality space.
type ScatterPoint struct {
	Label string
	// X, Y are the two plotted dimensions; Z (optional, NaN to omit) is
	// encoded as the marker glyph / radius.
	X, Y, Z float64
	// Skyline marks Pareto-frontier members, which render highlighted.
	Skyline bool
}

// ScatterConfig labels the plot.
type ScatterConfig struct {
	Title  string
	XLabel string
	YLabel string
	ZLabel string
	Width  int // characters (ASCII) — default 64
	Height int // rows (ASCII) — default 20
}

func (c ScatterConfig) withDefaults() ScatterConfig {
	if c.Width <= 0 {
		c.Width = 64
	}
	if c.Height <= 0 {
		c.Height = 20
	}
	return c
}

// ASCIIScatter renders the scatter plot as text: skyline members are '@',
// dominated designs '.', overlapping cells keep the skyline marker.
func ASCIIScatter(points []ScatterPoint, cfg ScatterConfig) string {
	cfg = cfg.withDefaults()
	var b strings.Builder
	if cfg.Title != "" {
		fmt.Fprintf(&b, "%s\n", cfg.Title)
	}
	if len(points) == 0 {
		b.WriteString("(no points)\n")
		return b.String()
	}
	minX, maxX := rangeOf(points, func(p ScatterPoint) float64 { return p.X })
	minY, maxY := rangeOf(points, func(p ScatterPoint) float64 { return p.Y })
	grid := make([][]byte, cfg.Height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cfg.Width))
	}
	for _, p := range points {
		col := scaleTo(p.X, minX, maxX, cfg.Width-1)
		row := cfg.Height - 1 - scaleTo(p.Y, minY, maxY, cfg.Height-1)
		mark := byte('.')
		if p.Skyline {
			mark = '@'
		}
		if grid[row][col] != '@' {
			grid[row][col] = mark
		}
	}
	fmt.Fprintf(&b, "%s\n", cfg.YLabel)
	for i, line := range grid {
		edge := "|"
		if i == len(grid)-1 {
			edge = "+"
		}
		fmt.Fprintf(&b, "  %s%s\n", edge, string(line))
	}
	fmt.Fprintf(&b, "   %s %s\n", strings.Repeat("-", cfg.Width-1), cfg.XLabel)
	fmt.Fprintf(&b, "  x:[%.3f,%.3f] y:[%.3f,%.3f]  @ skyline (%d)  . dominated (%d)\n",
		minX, maxX, minY, maxY, countSkyline(points), len(points)-countSkyline(points))
	return b.String()
}

// SVGScatter renders the scatter plot as a standalone SVG document. The
// optional Z dimension maps to circle radius, reproducing the paper's
// three-dimensional scatter (Fig. 4 plots performance, data quality and
// reliability).
func SVGScatter(points []ScatterPoint, cfg ScatterConfig) string {
	cfg = cfg.withDefaults()
	const w, h, pad = 640, 420, 48
	var b strings.Builder
	b.WriteString(`<?xml version="1.0" encoding="UTF-8"?>` + "\n")
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	fmt.Fprintf(&b, `  <rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	fmt.Fprintf(&b, `  <text x="%d" y="20" font-size="14" text-anchor="middle">%s</text>`+"\n", w/2, esc(cfg.Title))
	// Axes.
	fmt.Fprintf(&b, `  <line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", pad, h-pad, w-pad, h-pad)
	fmt.Fprintf(&b, `  <line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", pad, pad, pad, h-pad)
	fmt.Fprintf(&b, `  <text x="%d" y="%d" font-size="11" text-anchor="middle">%s</text>`+"\n", w/2, h-10, esc(cfg.XLabel))
	fmt.Fprintf(&b, `  <text x="14" y="%d" font-size="11" text-anchor="middle" transform="rotate(-90 14 %d)">%s</text>`+"\n", h/2, h/2, esc(cfg.YLabel))
	if len(points) > 0 {
		minX, maxX := rangeOf(points, func(p ScatterPoint) float64 { return p.X })
		minY, maxY := rangeOf(points, func(p ScatterPoint) float64 { return p.Y })
		minZ, maxZ := 0.0, 0.0
		hasZ := false
		for _, p := range points {
			if !math.IsNaN(p.Z) {
				if !hasZ {
					minZ, maxZ, hasZ = p.Z, p.Z, true
				} else {
					minZ, maxZ = math.Min(minZ, p.Z), math.Max(maxZ, p.Z)
				}
			}
		}
		for _, p := range points {
			x := float64(pad) + unit(p.X, minX, maxX)*float64(w-2*pad)
			y := float64(h-pad) - unit(p.Y, minY, maxY)*float64(h-2*pad)
			r := 4.0
			if hasZ && !math.IsNaN(p.Z) {
				r = 3 + 6*unit(p.Z, minZ, maxZ)
			}
			fill, opacity := "#888888", "0.55"
			if p.Skyline {
				fill, opacity = "#d62728", "0.95"
			}
			fmt.Fprintf(&b, `  <circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s" fill-opacity="%s"><title>%s</title></circle>`+"\n",
				x, y, r, fill, opacity, esc(p.Label))
		}
	}
	if cfg.ZLabel != "" {
		fmt.Fprintf(&b, `  <text x="%d" y="36" font-size="10" text-anchor="end">size: %s</text>`+"\n", w-pad, esc(cfg.ZLabel))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// BarRow is one bar of the Fig. 5 relative-change graph.
type BarRow struct {
	Label string
	// Pct is the improvement percentage (positive = better).
	Pct float64
	// Detail holds drill-down rows ("expands to more detailed composing
	// metrics").
	Detail []BarRow
}

// RelativeBars converts measure relative changes into bar rows, one bar per
// characteristic with measure-level drill-down.
func RelativeBars(rel []measures.CharRelChange) []BarRow {
	out := make([]BarRow, 0, len(rel))
	for _, c := range rel {
		row := BarRow{Label: string(c.Characteristic), Pct: c.ScoreDeltaPct}
		for _, m := range c.Measures {
			d := BarRow{Label: m.Name, Pct: m.ImprovementPct}
			for _, dd := range m.Detail {
				d.Detail = append(d.Detail, BarRow{Label: dd.Name, Pct: dd.ImprovementPct})
			}
			row.Detail = append(row.Detail, d)
		}
		out = append(out, row)
	}
	return out
}

// ASCIIBars renders the relative-change bars. expand selects labels whose
// drill-down is shown (nil = collapsed; the "*" entry expands everything),
// reproducing the click-to-expand interaction of P1.
func ASCIIBars(rows []BarRow, expand map[string]bool) string {
	var b strings.Builder
	maxAbs := 1.0
	for _, r := range rows {
		if a := math.Abs(r.Pct); a > maxAbs {
			maxAbs = a
		}
	}
	const halfWidth = 30
	for _, r := range rows {
		writeBar(&b, r, maxAbs, halfWidth, 0)
		if expand != nil && (expand["*"] || expand[r.Label]) {
			for _, d := range r.Detail {
				writeBar(&b, d, maxAbs, halfWidth, 1)
				for _, dd := range d.Detail {
					writeBar(&b, dd, maxAbs, halfWidth, 2)
				}
			}
		}
	}
	return b.String()
}

func writeBar(b *strings.Builder, r BarRow, maxAbs float64, halfWidth, indent int) {
	n := int(math.Round(math.Abs(r.Pct) / maxAbs * float64(halfWidth)))
	if n > halfWidth {
		n = halfWidth
	}
	neg := strings.Repeat(" ", halfWidth)
	pos := ""
	if r.Pct < 0 {
		neg = strings.Repeat(" ", halfWidth-n) + strings.Repeat("#", n)
	} else {
		pos = strings.Repeat("#", n)
	}
	fmt.Fprintf(b, "%-34s %s|%-*s %+7.1f%%\n",
		strings.Repeat("  ", indent)+r.Label, neg, halfWidth, pos, r.Pct)
}

// SVGBars renders the Fig. 5 relative-change bars as a standalone SVG
// document: one horizontal bar per characteristic, green for improvements
// and red for regressions, with the drill-down rows indented beneath when
// expand selects them.
func SVGBars(rows []BarRow, expand map[string]bool, title string) string {
	type flat struct {
		label  string
		pct    float64
		indent int
	}
	var items []flat
	for _, r := range rows {
		items = append(items, flat{r.Label, r.Pct, 0})
		if expand != nil && (expand["*"] || expand[r.Label]) {
			for _, d := range r.Detail {
				items = append(items, flat{d.Label, d.Pct, 1})
				for _, dd := range d.Detail {
					items = append(items, flat{dd.Label, dd.Pct, 2})
				}
			}
		}
	}
	const rowH, labelW, chartW, pad = 22, 240, 360, 16
	h := pad*2 + 28 + rowH*len(items)
	w := labelW + chartW + pad*2
	maxAbs := 1.0
	for _, it := range items {
		if a := math.Abs(it.pct); a > maxAbs {
			maxAbs = a
		}
	}
	mid := float64(labelW + pad + chartW/2)
	scale := float64(chartW/2-4) / maxAbs

	var b strings.Builder
	b.WriteString(`<?xml version="1.0" encoding="UTF-8"?>` + "\n")
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	fmt.Fprintf(&b, `  <rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	fmt.Fprintf(&b, `  <text x="%d" y="%d" font-size="13" text-anchor="middle">%s</text>`+"\n", w/2, pad+4, esc(title))
	fmt.Fprintf(&b, `  <line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#999"/>`+"\n", mid, pad+16, mid, h-pad)
	for i, it := range items {
		y := pad + 28 + i*rowH
		fmt.Fprintf(&b, `  <text x="%d" y="%d" font-size="10">%s</text>`+"\n",
			pad+it.indent*14, y+13, esc(it.label))
		width := math.Abs(it.pct) * scale
		x := mid
		fill := "#2ca02c"
		if it.pct < 0 {
			x = mid - width
			fill = "#d62728"
		}
		fmt.Fprintf(&b, `  <rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s" fill-opacity="0.8"/>`+"\n",
			x, y+3, width, rowH-8, fill)
		anchor, tx := "start", mid+width+4
		if it.pct < 0 {
			anchor, tx = "end", mid-width-4
		}
		fmt.Fprintf(&b, `  <text x="%.1f" y="%d" font-size="9" text-anchor="%s">%+.1f%%</text>`+"\n",
			tx, y+13, anchor, it.pct)
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// Table renders rows of cells with aligned columns; headers get an underline.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteString("\n")
	}
	writeRow(headers)
	underline := make([]string, len(headers))
	for i := range headers {
		underline[i] = strings.Repeat("-", widths[i])
	}
	writeRow(underline)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// SortPointsByX orders scatter points for stable output.
func SortPointsByX(points []ScatterPoint) {
	sort.SliceStable(points, func(i, j int) bool {
		if points[i].X != points[j].X {
			return points[i].X < points[j].X
		}
		return points[i].Label < points[j].Label
	})
}

func rangeOf(points []ScatterPoint, f func(ScatterPoint) float64) (lo, hi float64) {
	lo, hi = f(points[0]), f(points[0])
	for _, p := range points[1:] {
		v := f(p)
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	return lo, hi
}

func unit(v, lo, hi float64) float64 {
	if hi <= lo {
		return 0.5
	}
	return (v - lo) / (hi - lo)
}

func scaleTo(v, lo, hi float64, max int) int {
	u := unit(v, lo, hi)
	i := int(math.Round(u * float64(max)))
	if i < 0 {
		i = 0
	}
	if i > max {
		i = max
	}
	return i
}

func countSkyline(points []ScatterPoint) int {
	n := 0
	for _, p := range points {
		if p.Skyline {
			n++
		}
	}
	return n
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
