package viz

import (
	"math"
	"strings"
	"testing"

	"poiesis/internal/measures"
)

func pts() []ScatterPoint {
	return []ScatterPoint{
		{Label: "initial", X: 0.5, Y: 0.5, Z: 0.5},
		{Label: "alt1", X: 0.8, Y: 0.4, Z: 0.6, Skyline: true},
		{Label: "alt2", X: 0.3, Y: 0.9, Z: 0.7, Skyline: true},
		{Label: "alt3", X: 0.2, Y: 0.2, Z: 0.1},
	}
}

func TestASCIIScatter(t *testing.T) {
	s := ASCIIScatter(pts(), ScatterConfig{
		Title: "alternatives", XLabel: "performance", YLabel: "data quality",
	})
	if !strings.Contains(s, "alternatives") {
		t.Error("title missing")
	}
	if !strings.Contains(s, "@") || !strings.Contains(s, ".") {
		t.Error("markers missing")
	}
	if !strings.Contains(s, "performance") || !strings.Contains(s, "data quality") {
		t.Error("axis labels missing")
	}
	if !strings.Contains(s, "@ skyline (2)") {
		t.Errorf("legend missing:\n%s", s)
	}
}

func TestASCIIScatterEmpty(t *testing.T) {
	s := ASCIIScatter(nil, ScatterConfig{Title: "t"})
	if !strings.Contains(s, "(no points)") {
		t.Error("empty plot not handled")
	}
}

func TestASCIIScatterSinglePoint(t *testing.T) {
	// Degenerate ranges must not panic or divide by zero.
	s := ASCIIScatter([]ScatterPoint{{Label: "only", X: 1, Y: 1, Skyline: true}},
		ScatterConfig{Width: 10, Height: 5})
	if !strings.Contains(s, "@") {
		t.Error("single point not plotted")
	}
}

func TestSVGScatter(t *testing.T) {
	s := SVGScatter(pts(), ScatterConfig{
		Title: "alts", XLabel: "perf", YLabel: "dq", ZLabel: "reliability",
	})
	if !strings.HasPrefix(s, `<?xml`) || !strings.Contains(s, "<svg") {
		t.Error("not an SVG document")
	}
	if strings.Count(s, "<circle") != 4 {
		t.Errorf("circles = %d", strings.Count(s, "<circle"))
	}
	if !strings.Contains(s, "#d62728") {
		t.Error("skyline highlight missing")
	}
	if !strings.Contains(s, "reliability") {
		t.Error("z legend missing")
	}
	// Tooltips carry labels.
	if !strings.Contains(s, "<title>alt1</title>") {
		t.Error("tooltip missing")
	}
}

func TestSVGEscaping(t *testing.T) {
	s := SVGScatter([]ScatterPoint{{Label: `a<b>&"c`, X: 1, Y: 1}}, ScatterConfig{})
	if strings.Contains(s, `a<b>`) {
		t.Error("label not escaped")
	}
	if !strings.Contains(s, "a&lt;b&gt;&amp;&quot;c") {
		t.Error("escaped label missing")
	}
}

func relFixture() []measures.CharRelChange {
	return []measures.CharRelChange{
		{
			Characteristic: measures.Performance,
			ScoreDeltaPct:  25,
			Measures: []measures.RelChange{
				{Name: measures.MCycleTime, DeltaPct: -20, ImprovementPct: 20,
					Detail: []measures.RelChange{
						{Name: "first_pass_time", DeltaPct: -22, ImprovementPct: 22},
					}},
			},
		},
		{
			Characteristic: measures.Manageability,
			ScoreDeltaPct:  -10,
			Measures: []measures.RelChange{
				{Name: measures.MLongestPath, DeltaPct: 15, ImprovementPct: -15},
			},
		},
	}
}

func TestRelativeBars(t *testing.T) {
	rows := RelativeBars(relFixture())
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Label != "performance" || rows[0].Pct != 25 {
		t.Errorf("row0 = %+v", rows[0])
	}
	if len(rows[0].Detail) != 1 || rows[0].Detail[0].Pct != 20 {
		t.Errorf("drill-down = %+v", rows[0].Detail)
	}
	if len(rows[0].Detail[0].Detail) != 1 {
		t.Error("second-level drill-down missing")
	}
}

func TestASCIIBarsCollapsedAndExpanded(t *testing.T) {
	rows := RelativeBars(relFixture())
	collapsed := ASCIIBars(rows, nil)
	if !strings.Contains(collapsed, "performance") || !strings.Contains(collapsed, "+25.0%") {
		t.Errorf("collapsed bars:\n%s", collapsed)
	}
	if strings.Contains(collapsed, measures.MCycleTime) {
		t.Error("collapsed output leaked drill-down")
	}
	expanded := ASCIIBars(rows, map[string]bool{"performance": true})
	if !strings.Contains(expanded, measures.MCycleTime) {
		t.Error("expansion missing")
	}
	if strings.Contains(expanded, measures.MLongestPath) {
		t.Error("unexpanded characteristic leaked detail")
	}
	all := ASCIIBars(rows, map[string]bool{"*": true})
	if !strings.Contains(all, measures.MLongestPath) || !strings.Contains(all, "first_pass_time") {
		t.Error("expand-all missing details")
	}
	// Negative bars render on the left side of the axis.
	if !strings.Contains(all, "#|") {
		t.Errorf("negative bar missing:\n%s", all)
	}
}

func TestSVGBars(t *testing.T) {
	rows := RelativeBars(relFixture())
	s := SVGBars(rows, nil, "Relative change")
	if !strings.Contains(s, "<svg") || !strings.Contains(s, "Relative change") {
		t.Error("not an SVG bars document")
	}
	// One bar rect per top-level row when collapsed.
	if strings.Count(s, "<rect") != 1+2 { // background + 2 bars
		t.Errorf("rects = %d", strings.Count(s, "<rect"))
	}
	// Improvement green, regression red.
	if !strings.Contains(s, "#2ca02c") || !strings.Contains(s, "#d62728") {
		t.Error("bar colours missing")
	}
	expanded := SVGBars(rows, map[string]bool{"*": true}, "t")
	if strings.Count(expanded, "<rect") <= strings.Count(s, "<rect") {
		t.Error("expansion did not add bars")
	}
	if !strings.Contains(expanded, "first_pass_time") {
		t.Error("drill-down label missing")
	}
}

func TestTable(t *testing.T) {
	s := Table([]string{"flow", "score"}, [][]string{
		{"initial", "0.50"},
		{"alternative-with-long-name", "0.61"},
	})
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "----") {
		t.Error("underline missing")
	}
	// Alignment: the score column starts at the same offset on data rows.
	if strings.Index(lines[2], "0.50") < 0 {
		t.Error("missing cell")
	}
}

func TestSortPointsByX(t *testing.T) {
	p := pts()
	SortPointsByX(p)
	for i := 0; i+1 < len(p); i++ {
		if p[i].X > p[i+1].X {
			t.Fatal("not sorted")
		}
	}
}

func TestScaleToBounds(t *testing.T) {
	if scaleTo(5, 0, 10, 10) != 5 {
		t.Error("midpoint")
	}
	if scaleTo(-1, 0, 10, 10) != 0 || scaleTo(11, 0, 10, 10) != 10 {
		t.Error("clamping")
	}
	if scaleTo(3, 3, 3, 10) != 5 {
		t.Error("degenerate range should centre")
	}
	if got := unit(1, 1, 1); got != 0.5 {
		t.Errorf("unit degenerate = %f", got)
	}
	_ = math.NaN() // keep math import for Z tests readability
}
