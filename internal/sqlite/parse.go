package sqlite

import (
	"database/sql/driver"
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// statement is a parsed SQL statement ready for execution.
type statement interface{ stmt() }

type createStmt struct {
	table       string
	ifNotExists bool
	cols        []column
	pk          int // -1 when no column is PRIMARY KEY
}

type insertStmt struct {
	table     string
	orReplace bool
	cols      []string
	vals      []expr
}

type selectStmt struct {
	table    string
	cols     []string
	star     bool
	countAll bool
	where    *cond
	orderBy  string
	desc     bool
}

type deleteStmt struct {
	table string
	where *cond
}

func (*createStmt) stmt() {}
func (*insertStmt) stmt() {}
func (*selectStmt) stmt() {}
func (*deleteStmt) stmt() {}

// expr is a value position: either the n-th '?' placeholder or a literal.
type expr struct {
	placeholder int // -1 for literals
	lit         driver.Value
}

func (e expr) bind(args []driver.Value) (driver.Value, error) {
	if e.placeholder < 0 {
		return e.lit, nil
	}
	if e.placeholder >= len(args) {
		return nil, fmt.Errorf("sqlite: missing argument for placeholder %d", e.placeholder+1)
	}
	return args[e.placeholder], nil
}

// cond is a single `col OP value` predicate; nil means match-all.
type cond struct {
	col string
	op  string
	val expr
}

// matcher compiles the predicate against a table's layout once, returning a
// per-row filter.
func (c *cond) matcher(t *table, args []driver.Value) (func([]driver.Value) (bool, error), error) {
	if c == nil {
		return func([]driver.Value) (bool, error) { return true, nil }, nil
	}
	ci := t.colIndex(c.col)
	if ci < 0 {
		return nil, fmt.Errorf("sqlite: table %s has no column %s", t.name, c.col)
	}
	want, err := c.val.bind(args)
	if err != nil {
		return nil, err
	}
	if want, err = normalize(want); err != nil {
		return nil, err
	}
	op := c.op
	return func(row []driver.Value) (bool, error) {
		got := row[ci]
		// SQL three-valued logic collapsed to false: NULL compares with
		// nothing except via equality against an explicit NULL literal.
		if got == nil || want == nil {
			return op == "=" && got == nil && want == nil, nil
		}
		cmp, err := compare(got, want)
		if err != nil {
			return false, err
		}
		switch op {
		case "=":
			return cmp == 0, nil
		case "!=", "<>":
			return cmp != 0, nil
		case "<":
			return cmp < 0, nil
		case "<=":
			return cmp <= 0, nil
		case ">":
			return cmp > 0, nil
		case ">=":
			return cmp >= 0, nil
		}
		return false, fmt.Errorf("sqlite: unsupported operator %s", op)
	}, nil
}

// Tokenizer -------------------------------------------------------------------

type tokenKind int

const (
	tokWord tokenKind = iota // identifiers and keywords
	tokNumber
	tokString // single-quoted literal, quotes stripped
	tokPunct  // ( ) , ? * = != <> < <= > >= ;
)

type token struct {
	kind tokenKind
	text string
}

func tokenize(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			j := i + 1
			var b strings.Builder
			for {
				if j >= len(src) {
					return nil, fmt.Errorf("sqlite: unterminated string literal")
				}
				if src[j] == '\'' {
					if j+1 < len(src) && src[j+1] == '\'' { // '' escapes a quote
						b.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				b.WriteByte(src[j])
				j++
			}
			toks = append(toks, token{tokString, b.String()})
			i = j + 1
		case c == '<' || c == '>' || c == '!':
			op := string(c)
			if i+1 < len(src) && (src[i+1] == '=' || (c == '<' && src[i+1] == '>')) {
				op += string(src[i+1])
				i++
			}
			if op == "!" {
				return nil, fmt.Errorf("sqlite: unexpected character %q", c)
			}
			toks = append(toks, token{tokPunct, op})
			i++
		case strings.ContainsRune("(),?*=;", rune(c)):
			toks = append(toks, token{tokPunct, string(c)})
			i++
		case c == '-' || c == '+' || (c >= '0' && c <= '9'):
			j := i + 1
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.' || src[j] == 'e' || src[j] == 'E' || src[j] == '-' || src[j] == '+') {
				// Only allow sign characters right after an exponent marker.
				if (src[j] == '-' || src[j] == '+') && !(src[j-1] == 'e' || src[j-1] == 'E') {
					break
				}
				j++
			}
			toks = append(toks, token{tokNumber, src[i:j]})
			i = j
		case c == '_' || unicode.IsLetter(rune(c)):
			j := i + 1
			for j < len(src) && (src[j] == '_' || src[j] >= '0' && src[j] <= '9' || unicode.IsLetter(rune(src[j]))) {
				j++
			}
			toks = append(toks, token{tokWord, src[i:j]})
			i = j
		default:
			return nil, fmt.Errorf("sqlite: unexpected character %q", c)
		}
	}
	return toks, nil
}

// Parser ----------------------------------------------------------------------

type parser struct {
	toks         []token
	pos          int
	placeholders int
}

// parse turns one SQL statement into its executable form and reports how many
// '?' placeholders it binds.
func parse(src string) (statement, int, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, 0, err
	}
	p := &parser{toks: toks}
	var st statement
	switch {
	case p.acceptWord("CREATE"):
		st, err = p.parseCreate()
	case p.acceptWord("INSERT"):
		st, err = p.parseInsert()
	case p.acceptWord("SELECT"):
		st, err = p.parseSelect()
	case p.acceptWord("DELETE"):
		st, err = p.parseDelete()
	default:
		return nil, 0, fmt.Errorf("sqlite: unsupported statement %q", src)
	}
	if err != nil {
		return nil, 0, err
	}
	p.acceptPunct(";")
	if p.pos != len(p.toks) {
		return nil, 0, fmt.Errorf("sqlite: trailing tokens after statement in %q", src)
	}
	return st, p.placeholders, nil
}

func (p *parser) peek() (token, bool) {
	if p.pos >= len(p.toks) {
		return token{}, false
	}
	return p.toks[p.pos], true
}

func (p *parser) acceptWord(kw string) bool {
	if t, ok := p.peek(); ok && t.kind == tokWord && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectWord(kw string) error {
	if !p.acceptWord(kw) {
		return fmt.Errorf("sqlite: expected %s at token %d", kw, p.pos)
	}
	return nil
}

func (p *parser) acceptPunct(s string) bool {
	if t, ok := p.peek(); ok && t.kind == tokPunct && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return fmt.Errorf("sqlite: expected %q at token %d", s, p.pos)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t, ok := p.peek()
	if !ok || t.kind != tokWord {
		return "", fmt.Errorf("sqlite: expected identifier at token %d", p.pos)
	}
	p.pos++
	return t.text, nil
}

func (p *parser) parseCreate() (statement, error) {
	if err := p.expectWord("TABLE"); err != nil {
		return nil, err
	}
	s := &createStmt{pk: -1}
	if p.acceptWord("IF") {
		if err := p.expectWord("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectWord("EXISTS"); err != nil {
			return nil, err
		}
		s.ifNotExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	s.table = name
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		colName, err := p.ident()
		if err != nil {
			return nil, err
		}
		colType, err := p.ident()
		if err != nil {
			return nil, err
		}
		switch up := strings.ToUpper(colType); up {
		case "TEXT", "INTEGER", "REAL", "BLOB":
			colType = up
		default:
			return nil, fmt.Errorf("sqlite: unsupported column type %s", colType)
		}
		s.cols = append(s.cols, column{Name: colName, Type: colType})
		if p.acceptWord("PRIMARY") {
			if err := p.expectWord("KEY"); err != nil {
				return nil, err
			}
			if s.pk >= 0 {
				return nil, fmt.Errorf("sqlite: multiple PRIMARY KEY columns in %s", name)
			}
			s.pk = len(s.cols) - 1
		}
		if p.acceptPunct(",") {
			continue
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		break
	}
	return s, nil
}

func (p *parser) parseInsert() (statement, error) {
	s := &insertStmt{}
	if p.acceptWord("OR") {
		if err := p.expectWord("REPLACE"); err != nil {
			return nil, err
		}
		s.orReplace = true
	}
	if err := p.expectWord("INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	s.table = name
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		s.cols = append(s.cols, col)
		if p.acceptPunct(",") {
			continue
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		break
	}
	if err := p.expectWord("VALUES"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		e, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		s.vals = append(s.vals, e)
		if p.acceptPunct(",") {
			continue
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		break
	}
	if len(s.vals) != len(s.cols) {
		return nil, fmt.Errorf("sqlite: %d columns but %d values", len(s.cols), len(s.vals))
	}
	return s, nil
}

func (p *parser) parseSelect() (statement, error) {
	s := &selectStmt{}
	switch {
	case p.acceptPunct("*"):
		s.star = true
	case p.acceptWord("COUNT"):
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		if err := p.expectPunct("*"); err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		s.countAll = true
	default:
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			s.cols = append(s.cols, col)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if err := p.expectWord("FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	s.table = name
	if s.where, err = p.parseWhere(); err != nil {
		return nil, err
	}
	if p.acceptWord("ORDER") {
		if err := p.expectWord("BY"); err != nil {
			return nil, err
		}
		if s.orderBy, err = p.ident(); err != nil {
			return nil, err
		}
		switch {
		case p.acceptWord("DESC"):
			s.desc = true
		case p.acceptWord("ASC"):
		}
	}
	return s, nil
}

func (p *parser) parseDelete() (statement, error) {
	if err := p.expectWord("FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	s := &deleteStmt{table: name}
	if s.where, err = p.parseWhere(); err != nil {
		return nil, err
	}
	return s, nil
}

func (p *parser) parseWhere() (*cond, error) {
	if !p.acceptWord("WHERE") {
		return nil, nil
	}
	col, err := p.ident()
	if err != nil {
		return nil, err
	}
	t, ok := p.peek()
	if !ok || t.kind != tokPunct {
		return nil, fmt.Errorf("sqlite: expected comparison operator at token %d", p.pos)
	}
	switch t.text {
	case "=", "!=", "<>", "<", "<=", ">", ">=":
	default:
		return nil, fmt.Errorf("sqlite: unsupported operator %q", t.text)
	}
	p.pos++
	val, err := p.parseValue()
	if err != nil {
		return nil, err
	}
	return &cond{col: col, op: t.text, val: val}, nil
}

// parseValue parses a '?' placeholder or a literal (number, string, NULL).
func (p *parser) parseValue() (expr, error) {
	t, ok := p.peek()
	if !ok {
		return expr{}, fmt.Errorf("sqlite: expected value at token %d", p.pos)
	}
	switch {
	case t.kind == tokPunct && t.text == "?":
		p.pos++
		e := expr{placeholder: p.placeholders}
		p.placeholders++
		return e, nil
	case t.kind == tokString:
		p.pos++
		return expr{placeholder: -1, lit: t.text}, nil
	case t.kind == tokNumber:
		p.pos++
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return expr{}, fmt.Errorf("sqlite: bad numeric literal %q", t.text)
			}
			return expr{placeholder: -1, lit: f}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return expr{}, fmt.Errorf("sqlite: bad integer literal %q", t.text)
		}
		return expr{placeholder: -1, lit: n}, nil
	case t.kind == tokWord && strings.EqualFold(t.text, "NULL"):
		p.pos++
		return expr{placeholder: -1, lit: nil}, nil
	default:
		return expr{}, fmt.Errorf("sqlite: unexpected value token %q", t.text)
	}
}
