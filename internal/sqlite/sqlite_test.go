package sqlite

import (
	"database/sql"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

const testSchema = `CREATE TABLE IF NOT EXISTS kv (id TEXT PRIMARY KEY, version INTEGER, stamp INTEGER, payload BLOB)`

func openTestDB(t *testing.T, dsn string) *sql.DB {
	t.Helper()
	db, err := sql.Open(DriverName, dsn)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if _, err := db.Exec(testSchema); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCRUDRoundTrip(t *testing.T) {
	db := openTestDB(t, ":memory:")
	if _, err := db.Exec(`INSERT INTO kv (id, version, stamp, payload) VALUES (?, ?, ?, ?)`,
		"a", int64(1), int64(100), []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	// OR REPLACE updates in place; plain INSERT on a duplicate key fails.
	if _, err := db.Exec(`INSERT INTO kv (id, version, stamp, payload) VALUES (?, ?, ?, ?)`,
		"a", int64(1), int64(100), []byte("dup")); err == nil {
		t.Fatal("duplicate primary key accepted")
	}
	if _, err := db.Exec(`INSERT OR REPLACE INTO kv (id, version, stamp, payload) VALUES (?, ?, ?, ?)`,
		"a", int64(2), int64(200), []byte("beta")); err != nil {
		t.Fatal(err)
	}

	var version, stamp int64
	var payload []byte
	err := db.QueryRow(`SELECT version, stamp, payload FROM kv WHERE id = ?`, "a").
		Scan(&version, &stamp, &payload)
	if err != nil {
		t.Fatal(err)
	}
	if version != 2 || stamp != 200 || string(payload) != "beta" {
		t.Fatalf("got (%d, %d, %q)", version, stamp, payload)
	}

	if err := db.QueryRow(`SELECT id FROM kv WHERE id = ?`, "missing").Scan(new(string)); err != sql.ErrNoRows {
		t.Fatalf("missing row: %v, want ErrNoRows", err)
	}

	res, err := db.Exec(`DELETE FROM kv WHERE id = ?`, "a")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.RowsAffected(); n != 1 {
		t.Fatalf("delete affected %d rows", n)
	}
	// Deleting an absent row is a zero-row no-op, not an error.
	res, err = db.Exec(`DELETE FROM kv WHERE id = ?`, "a")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.RowsAffected(); n != 0 {
		t.Fatalf("re-delete affected %d rows", n)
	}
}

func TestWhereOperatorsAndOrderBy(t *testing.T) {
	db := openTestDB(t, ":memory:")
	for i, id := range []string{"c", "a", "b", "d"} {
		if _, err := db.Exec(`INSERT INTO kv (id, version, stamp, payload) VALUES (?, ?, ?, ?)`,
			id, int64(1), int64(10*(i+1)), []byte(nil)); err != nil {
			t.Fatal(err)
		}
	}
	collect := func(query string, args ...any) []string {
		t.Helper()
		rows, err := db.Query(query, args...)
		if err != nil {
			t.Fatal(err)
		}
		defer rows.Close()
		var out []string
		for rows.Next() {
			var id string
			if err := rows.Scan(&id); err != nil {
				t.Fatal(err)
			}
			out = append(out, id)
		}
		if err := rows.Err(); err != nil {
			t.Fatal(err)
		}
		return out
	}

	if got := collect(`SELECT id FROM kv ORDER BY id`); strings.Join(got, "") != "abcd" {
		t.Errorf("ORDER BY id: %v", got)
	}
	if got := collect(`SELECT id FROM kv ORDER BY id DESC`); strings.Join(got, "") != "dcba" {
		t.Errorf("ORDER BY id DESC: %v", got)
	}
	// stamp: c=10 a=20 b=30 d=40
	if got := collect(`SELECT id FROM kv WHERE stamp < ? ORDER BY stamp`, int64(30)); strings.Join(got, "") != "ca" {
		t.Errorf("stamp < 30: %v", got)
	}
	if got := collect(`SELECT id FROM kv WHERE stamp >= ? ORDER BY stamp`, int64(30)); strings.Join(got, "") != "bd" {
		t.Errorf("stamp >= 30: %v", got)
	}
	if got := collect(`SELECT id FROM kv WHERE id != ? ORDER BY id`, "b"); strings.Join(got, "") != "acd" {
		t.Errorf("id != b: %v", got)
	}

	var n int64
	if err := db.QueryRow(`SELECT COUNT(*) FROM kv WHERE stamp > ?`, int64(10)).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("COUNT(*) = %d, want 3", n)
	}
}

// TestFileDurability proves the log survives a full close/reopen cycle: the
// second sql.Open gets a fresh engine that must rebuild state by replay.
func TestFileDurability(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kv.db")
	db, err := sql.Open(DriverName, path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(testSchema); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO kv (id, version, stamp, payload) VALUES (?, ?, ?, ?)`,
		"keep", int64(1), int64(7), []byte{0x00, 0xff, 0x10}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO kv (id, version, stamp, payload) VALUES (?, ?, ?, ?)`,
		"drop", int64(1), int64(8), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`DELETE FROM kv WHERE id = ?`, "drop"); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openTestDB(t, path)
	var payload []byte
	if err := db2.QueryRow(`SELECT payload FROM kv WHERE id = ?`, "keep").Scan(&payload); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%x", payload) != "00ff10" {
		t.Fatalf("blob corrupted across reopen: %x", payload)
	}
	var n int64
	if err := db2.QueryRow(`SELECT COUNT(*) FROM kv`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("replay resurrected deleted rows: count %d", n)
	}
}

// TestTornTailDiscarded simulates a crash mid-append: a half-written final
// line must be dropped on replay, keeping every earlier committed write.
func TestTornTailDiscarded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kv.db")
	db, err := sql.Open(DriverName, path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(testSchema); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO kv (id, version, stamp, payload) VALUES (?, ?, ?, ?)`,
		"good", int64(1), int64(1), []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"put","table":"kv","key":"s:torn","vals":[{"t":"s","s":"tr`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	db2 := openTestDB(t, path)
	var n int64
	if err := db2.QueryRow(`SELECT COUNT(*) FROM kv`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("torn tail handling: count %d, want 1", n)
	}
	var payload []byte
	if err := db2.QueryRow(`SELECT payload FROM kv WHERE id = ?`, "good").Scan(&payload); err != nil {
		t.Fatalf("committed row lost after torn tail: %v", err)
	}
}

// TestCompactionBoundsLog hammers one key so the append log outgrows the live
// data, then checks the file was compacted back down and still replays.
func TestCompactionBoundsLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kv.db")
	db, err := sql.Open(DriverName, path+"?sync=off")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(testSchema); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 32<<10)
	for i := range payload {
		payload[i] = byte(i)
	}
	for i := 0; i < 200; i++ {
		if _, err := db.Exec(`INSERT OR REPLACE INTO kv (id, version, stamp, payload) VALUES (?, ?, ?, ?)`,
			"hot", int64(i), int64(i), payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// 200 writes × ~43KB encoded would be ~8.6MB unbounded; compaction must
	// keep the file within a few multiples of the single live row.
	if st.Size() > 1<<21 {
		t.Fatalf("log never compacted: %d bytes on disk for one ~32KB row", st.Size())
	}
	db2 := openTestDB(t, path)
	var version int64
	if err := db2.QueryRow(`SELECT version FROM kv WHERE id = ?`, "hot").Scan(&version); err != nil {
		t.Fatal(err)
	}
	if version != 199 {
		t.Fatalf("compacted db lost the last write: version %d", version)
	}
}

// TestMemoryDSNIsolation: each sql.Open(":memory:") is its own database, but
// all pooled connections within one sql.DB share state.
func TestMemoryDSNIsolation(t *testing.T) {
	db1 := openTestDB(t, ":memory:")
	db2 := openTestDB(t, ":memory:")
	if _, err := db1.Exec(`INSERT INTO kv (id, version, stamp, payload) VALUES (?, ?, ?, ?)`,
		"only-in-1", int64(1), int64(1), []byte("x")); err != nil {
		t.Fatal(err)
	}
	var n int64
	if err := db2.QueryRow(`SELECT COUNT(*) FROM kv`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf(":memory: databases leaked across sql.Open: %d rows", n)
	}
	// Force multiple connections on db1; they must all see the same row.
	db1.SetMaxIdleConns(4)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var id string
			if err := db1.QueryRow(`SELECT id FROM kv WHERE id = ?`, "only-in-1").Scan(&id); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("pooled connection missed shared state: %v", err)
	}
}

// TestSharedFileEngine: two sql.Open calls on one path share a single engine
// in-process, so writes through one are immediately visible to the other.
func TestSharedFileEngine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kv.db")
	db1 := openTestDB(t, path)
	db2 := openTestDB(t, path)
	if _, err := db1.Exec(`INSERT INTO kv (id, version, stamp, payload) VALUES (?, ?, ?, ?)`,
		"shared", int64(1), int64(1), []byte("x")); err != nil {
		t.Fatal(err)
	}
	var id string
	if err := db2.QueryRow(`SELECT id FROM kv WHERE id = ?`, "shared").Scan(&id); err != nil {
		t.Fatalf("second open of the same path missed the write: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	db := openTestDB(t, ":memory:")
	for _, bad := range []string{
		`UPDATE kv SET version = 1`,         // unsupported verb
		`SELECT id FROM kv WHERE id LIKE ?`, // unsupported operator
		`SELECT id FROM kv; DROP TABLE kv`,  // trailing statement
		`INSERT INTO kv (id) VALUES (?, ?)`, // arity mismatch
		`SELECT id FROM nope`,               // unknown table
		`SELECT ghost FROM kv`,              // unknown column
		`CREATE TABLE t2 (x JSONB)`,         // unsupported type
		`SELECT id FROM kv ORDER BY ghost`,  // unknown ORDER BY column
		`DELETE FROM kv WHERE ghost = ?`,    // unknown WHERE column
	} {
		if _, err := db.Query(bad, "x"); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
	if _, err := db.Exec(`SELECT id FROM kv`); err == nil {
		t.Error("Exec accepted a SELECT")
	}
	if _, err := db.Begin(); err == nil {
		t.Error("transactions unexpectedly supported")
	}
}

func TestStringLiteralsAndNull(t *testing.T) {
	db := openTestDB(t, ":memory:")
	if _, err := db.Exec(`INSERT INTO kv (id, version, stamp, payload) VALUES ('it''s', 3, NULL, ?)`,
		[]byte("lit")); err != nil {
		t.Fatal(err)
	}
	var version int64
	var stamp sql.NullInt64
	err := db.QueryRow(`SELECT version, stamp FROM kv WHERE id = 'it''s'`).Scan(&version, &stamp)
	if err != nil {
		t.Fatal(err)
	}
	if version != 3 || stamp.Valid {
		t.Fatalf("got version %d stamp %+v", version, stamp)
	}
}
