// Package sqlite is a minimal, dependency-free SQL engine exposed through
// database/sql/driver, registered as "poiesis-sqlite". It exists so the
// server's SQL session backend can be written against database/sql — the
// portable seam every networked SQL store (PostgreSQL, MySQL, a real sqlite
// driver) plugs into — without pulling a cgo or third-party module into the
// build. Swapping in a real driver is a driver-name change in the backend
// configuration; the SQL the backend issues is deliberately the common
// dialect subset.
//
// Supported statements (case-insensitive keywords, '?' placeholders):
//
//	CREATE TABLE [IF NOT EXISTS] tbl (col TYPE [PRIMARY KEY], ...)
//	INSERT [OR REPLACE] INTO tbl (cols...) VALUES (vals...)
//	SELECT cols... | COUNT(*) | * FROM tbl [WHERE col OP v] [ORDER BY col [ASC|DESC]]
//	DELETE FROM tbl [WHERE col OP v]
//
// where OP is one of = != <> < <= > >=. Values are NULL, INTEGER (int64),
// REAL (float64), TEXT and BLOB.
//
// Durability: a DSN of ":memory:" (or empty) is an independent in-process
// database per sql.Open. Any other DSN is a file path ("path" or
// "path?sync=off"): every mutation is appended to the file as one
// length-delimited JSON entry and fsync'd (unless sync=off), the log is
// replayed on open — a torn final line from a crash is discarded, matching
// the disk session backend's crash-safety posture — and compacted to a
// snapshot both on open and when it outgrows the live data. One process
// opening the same path twice shares one engine; the single-writer contract
// across processes is the caller's, exactly as for the disk backend.
package sqlite

import (
	"bufio"
	"context"
	"database/sql"
	"database/sql/driver"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// DriverName is the name the engine registers under with database/sql.
const DriverName = "poiesis-sqlite"

func init() { sql.Register(DriverName, &Driver{}) }

// Driver implements driver.Driver and driver.DriverContext.
type Driver struct{}

// Open opens a single connection (legacy path; database/sql prefers
// OpenConnector).
func (d *Driver) Open(name string) (driver.Conn, error) {
	c, err := d.OpenConnector(name)
	if err != nil {
		return nil, err
	}
	return c.Connect(context.Background())
}

// OpenConnector resolves the DSN to an engine instance once per sql.Open, so
// every pooled connection shares the same data — including for ":memory:",
// where each sql.Open is its own private database.
func (d *Driver) OpenConnector(name string) (driver.Connector, error) {
	db, err := openDatabase(name)
	if err != nil {
		return nil, err
	}
	return &connector{driver: d, db: db}, nil
}

type connector struct {
	driver    *Driver
	db        *database
	closeOnce sync.Once
}

func (c *connector) Connect(context.Context) (driver.Conn, error) {
	return &conn{db: c.db}, nil
}

func (c *connector) Driver() driver.Driver { return c.driver }

// Close releases the connector's engine reference; sql.DB.Close calls it.
// The last reference to a file-backed database flushes and closes the log,
// so a later open replays from disk.
func (c *connector) Close() error {
	var err error
	c.closeOnce.Do(func() { err = c.db.release() })
	return err
}

// conn is one pooled connection; all state lives in the shared database.
type conn struct{ db *database }

func (c *conn) Prepare(query string) (driver.Stmt, error) {
	parsed, n, err := parse(query)
	if err != nil {
		return nil, err
	}
	return &stmt{db: c.db, parsed: parsed, numInput: n}, nil
}

func (c *conn) Close() error { return nil }

// Begin is unsupported: the engine offers statement-level atomicity only,
// which is all the session backend needs (one record per statement).
func (c *conn) Begin() (driver.Tx, error) {
	return nil, errors.New("sqlite: transactions are not supported")
}

type stmt struct {
	db       *database
	parsed   statement
	numInput int
}

func (s *stmt) Close() error  { return nil }
func (s *stmt) NumInput() int { return s.numInput }

func (s *stmt) Exec(args []driver.Value) (driver.Result, error) {
	n, err := s.db.exec(s.parsed, args)
	if err != nil {
		return nil, err
	}
	return driver.RowsAffected(n), nil
}

func (s *stmt) Query(args []driver.Value) (driver.Rows, error) {
	sel, ok := s.parsed.(*selectStmt)
	if !ok {
		// Allow Exec-style statements through Query (database/sql never
		// needs it, but drivers conventionally permit it).
		if _, err := s.db.exec(s.parsed, args); err != nil {
			return nil, err
		}
		return &rows{}, nil
	}
	return s.db.query(sel, args)
}

// rows is a fully materialized result cursor.
type rows struct {
	cols []string
	data [][]driver.Value
	pos  int
}

func (r *rows) Columns() []string { return r.cols }
func (r *rows) Close() error      { return nil }

func (r *rows) Next(dest []driver.Value) error {
	if r.pos >= len(r.data) {
		return io.EOF
	}
	row := r.data[r.pos]
	r.pos++
	copy(dest, row)
	return nil
}

// Engine ----------------------------------------------------------------------

type column struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

type table struct {
	name string
	cols []column
	pk   int // column index of the PRIMARY KEY, -1 for rowid tables

	rows     map[string][]driver.Value
	rowSizes map[string]int64 // approximate logged size per live row
	nextRow  int64            // rowid allocator for tables without a PK
}

func (t *table) colIndex(name string) int {
	for i, c := range t.cols {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// key derives the row-map key for a primary-key value. The encoding is
// type-tagged so int64(1) and "1" cannot collide, and deterministic so log
// replay rebuilds identical keys.
func keyOf(v driver.Value) (string, error) {
	switch x := v.(type) {
	case int64:
		return "i:" + strconv.FormatInt(x, 10), nil
	case string:
		return "s:" + x, nil
	case []byte:
		return "b:" + string(x), nil
	case float64:
		return "f:" + strconv.FormatFloat(x, 'g', -1, 64), nil
	default:
		return "", fmt.Errorf("sqlite: unsupported PRIMARY KEY value of type %T", v)
	}
}

type database struct {
	mu     sync.Mutex
	tables map[string]*table

	// File-backed state; path is empty for :memory: databases.
	path      string
	syncOn    bool
	logFile   *os.File
	logBytes  int64
	liveBytes int64
	refs      int
}

// registry shares one engine per file path within the process, so two
// sql.Open calls on the same DSN see the same data (and cannot corrupt the
// log by double-appending).
var registry = struct {
	sync.Mutex
	m map[string]*database
}{m: map[string]*database{}}

func parseDSN(dsn string) (path string, syncOn bool, err error) {
	syncOn = true
	if dsn == "" || dsn == ":memory:" {
		return "", syncOn, nil
	}
	if i := strings.IndexByte(dsn, '?'); i >= 0 {
		for _, opt := range strings.Split(dsn[i+1:], "&") {
			switch opt {
			case "sync=off":
				syncOn = false
			case "sync=on", "":
				syncOn = true
			default:
				return "", false, fmt.Errorf("sqlite: unknown DSN option %q", opt)
			}
		}
		dsn = dsn[:i]
	}
	if dsn == "" || dsn == ":memory:" {
		return "", syncOn, nil
	}
	abs, err := filepath.Abs(dsn)
	if err != nil {
		return "", false, fmt.Errorf("sqlite: resolving DSN path: %w", err)
	}
	return abs, syncOn, nil
}

func openDatabase(dsn string) (*database, error) {
	path, syncOn, err := parseDSN(dsn)
	if err != nil {
		return nil, err
	}
	if path == "" {
		return &database{tables: map[string]*table{}}, nil
	}
	registry.Lock()
	defer registry.Unlock()
	if db, ok := registry.m[path]; ok {
		db.refs++
		return db, nil
	}
	db := &database{tables: map[string]*table{}, path: path, syncOn: syncOn, refs: 1}
	if err := db.load(); err != nil {
		return nil, err
	}
	registry.m[path] = db
	return db, nil
}

// release drops one engine reference; the last one on a file-backed database
// closes the log so a subsequent open replays from disk.
func (db *database) release() error {
	if db.path == "" {
		return nil
	}
	registry.Lock()
	db.refs--
	if db.refs > 0 {
		registry.Unlock()
		return nil
	}
	delete(registry.m, db.path)
	registry.Unlock()
	// Close outside both the registry and database locks: a slow flush must
	// not stall every concurrent Open on the registry mutex. os.File has no
	// userspace buffering, so a re-open racing the close still replays every
	// appended byte.
	db.mu.Lock()
	f := db.logFile
	db.logFile = nil
	db.mu.Unlock()
	if f == nil {
		return nil
	}
	return f.Close()
}

// Persistence log -------------------------------------------------------------

// logEntry is one persisted mutation, JSON-encoded one per line.
type logEntry struct {
	Op    string      `json:"op"` // "create" | "put" | "del"
	Table string      `json:"table"`
	Cols  []column    `json:"cols,omitempty"` // create
	PK    int         `json:"pk"`             // create; -1 = rowid table
	Key   string      `json:"key,omitempty"`  // put, del
	Vals  []wireValue `json:"vals,omitempty"` // put
}

// wireValue is a type-tagged driver.Value for the log.
type wireValue struct {
	T string  `json:"t"` // "n" null, "i" int, "f" float, "s" text, "b" blob
	I int64   `json:"i,omitempty"`
	F float64 `json:"f,omitempty"`
	S string  `json:"s,omitempty"`
	B []byte  `json:"b,omitempty"`
}

func toWire(v driver.Value) (wireValue, error) {
	switch x := v.(type) {
	case nil:
		return wireValue{T: "n"}, nil
	case int64:
		return wireValue{T: "i", I: x}, nil
	case float64:
		return wireValue{T: "f", F: x}, nil
	case string:
		return wireValue{T: "s", S: x}, nil
	case []byte:
		return wireValue{T: "b", B: x}, nil
	default:
		return wireValue{}, fmt.Errorf("sqlite: unsupported value type %T", v)
	}
}

func (w wireValue) value() (driver.Value, error) {
	switch w.T {
	case "n":
		return nil, nil
	case "i":
		return w.I, nil
	case "f":
		return w.F, nil
	case "s":
		return w.S, nil
	case "b":
		return w.B, nil
	default:
		return nil, fmt.Errorf("sqlite: unknown wire value tag %q", w.T)
	}
}

// load replays the log file (if any), discarding a torn final line, then
// compacts it to a fresh snapshot and leaves the handle open for appends.
func (db *database) load() error {
	f, err := os.OpenFile(db.path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("sqlite: opening database %s: %w", db.path, err)
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 64<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e logEntry
		if err := json.Unmarshal(line, &e); err != nil {
			// A torn tail from a crash mid-append: everything before it is
			// intact, everything after it never committed.
			break
		}
		if err := db.apply(&e); err != nil {
			f.Close()
			return fmt.Errorf("sqlite: replaying database %s: %w", db.path, err)
		}
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return fmt.Errorf("sqlite: reading database %s: %w", db.path, err)
	}
	f.Close()
	return db.compactLocked()
}

// apply replays one log entry into the in-memory state.
func (db *database) apply(e *logEntry) error {
	switch e.Op {
	case "create":
		if _, ok := db.tables[e.Table]; ok {
			return nil
		}
		db.tables[e.Table] = &table{
			name: e.Table, cols: e.Cols, pk: e.PK,
			rows: map[string][]driver.Value{}, rowSizes: map[string]int64{},
		}
	case "put":
		t, ok := db.tables[e.Table]
		if !ok {
			return fmt.Errorf("put into unknown table %s", e.Table)
		}
		row := make([]driver.Value, len(e.Vals))
		for i, w := range e.Vals {
			v, err := w.value()
			if err != nil {
				return err
			}
			row[i] = v
		}
		t.rows[e.Key] = row
		t.rowSizes[e.Key] = entrySize(e)
		if t.pk < 0 {
			if id, err := strconv.ParseInt(strings.TrimPrefix(e.Key, "r:"), 10, 64); err == nil && id >= t.nextRow {
				t.nextRow = id + 1
			}
		}
	case "del":
		if t, ok := db.tables[e.Table]; ok {
			delete(t.rows, e.Key)
			delete(t.rowSizes, e.Key)
		}
	default:
		return fmt.Errorf("unknown log op %q", e.Op)
	}
	return nil
}

func entrySize(e *logEntry) int64 {
	n := int64(len(e.Key) + 24)
	for _, w := range e.Vals {
		n += int64(len(w.S) + len(w.B) + 16)
	}
	return n
}

// logLocked appends one entry (caller holds db.mu) and fsyncs when sync is
// on; an in-memory database is a no-op. When the log has grown well past the
// live data, it is compacted in place.
func (db *database) logLocked(e *logEntry) error {
	if db.path == "" {
		return nil
	}
	if db.logFile == nil {
		return errors.New("sqlite: database is closed")
	}
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("sqlite: encoding log entry: %w", err)
	}
	line = append(line, '\n')
	if _, err := db.logFile.Write(line); err != nil {
		return fmt.Errorf("sqlite: appending to %s: %w", db.path, err)
	}
	if db.syncOn {
		if err := db.logFile.Sync(); err != nil {
			return fmt.Errorf("sqlite: syncing %s: %w", db.path, err)
		}
	}
	db.logBytes += int64(len(line))
	if db.logBytes > 1<<20 && db.logBytes > 4*db.liveBytes {
		return db.compactLocked()
	}
	return nil
}

// compactLocked rewrites the log as a minimal snapshot (schema plus live
// rows) via temp-file + fsync + atomic rename, then reopens it for appends.
func (db *database) compactLocked() error {
	if db.path == "" {
		return nil
	}
	if db.logFile != nil {
		db.logFile.Close()
		db.logFile = nil
	}
	tmp := db.path + ".compact"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("sqlite: compacting %s: %w", db.path, err)
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	var logBytes, liveBytes int64
	names := make([]string, 0, len(db.tables))
	for name := range db.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("sqlite: compacting %s: %w", db.path, err)
	}
	for _, name := range names {
		t := db.tables[name]
		if err := enc.Encode(logEntry{Op: "create", Table: name, Cols: t.cols, PK: t.pk}); err != nil {
			return fail(err)
		}
		keys := make([]string, 0, len(t.rows))
		for k := range t.rows {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			e := logEntry{Op: "put", Table: name, Key: k}
			for _, v := range t.rows[k] {
				wv, err := toWire(v)
				if err != nil {
					return fail(err)
				}
				e.Vals = append(e.Vals, wv)
			}
			if err := enc.Encode(e); err != nil {
				return fail(err)
			}
			liveBytes += entrySize(&e)
		}
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmp, db.path); err != nil {
		return fail(err)
	}
	if d, err := os.Open(filepath.Dir(db.path)); err == nil {
		_ = d.Sync()
		d.Close()
	}
	nf, err := os.OpenFile(db.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("sqlite: reopening %s after compaction: %w", db.path, err)
	}
	if st, err := nf.Stat(); err == nil {
		logBytes = st.Size()
	}
	db.logFile = nf
	db.logBytes = logBytes
	db.liveBytes = liveBytes
	return nil
}

// Execution -------------------------------------------------------------------

// normalize maps the driver.Value domain onto the engine's storage types;
// []byte is copied because the caller may reuse the backing array.
func normalize(v driver.Value) (driver.Value, error) {
	switch x := v.(type) {
	case nil, int64, float64, string:
		return v, nil
	case bool:
		if x {
			return int64(1), nil
		}
		return int64(0), nil
	case []byte:
		cp := make([]byte, len(x))
		copy(cp, x)
		return cp, nil
	case time.Time:
		return x.UnixNano(), nil
	default:
		return nil, fmt.Errorf("sqlite: unsupported argument type %T", v)
	}
}

func (db *database) exec(st statement, args []driver.Value) (int64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	switch s := st.(type) {
	case *createStmt:
		return db.execCreate(s)
	case *insertStmt:
		return db.execInsert(s, args)
	case *deleteStmt:
		return db.execDelete(s, args)
	case *selectStmt:
		return 0, errors.New("sqlite: SELECT is not an Exec statement")
	default:
		return 0, fmt.Errorf("sqlite: unsupported statement %T", st)
	}
}

func (db *database) execCreate(s *createStmt) (int64, error) {
	if _, ok := db.tables[s.table]; ok {
		if s.ifNotExists {
			return 0, nil
		}
		return 0, fmt.Errorf("sqlite: table %s already exists", s.table)
	}
	db.tables[s.table] = &table{
		name: s.table, cols: s.cols, pk: s.pk,
		rows: map[string][]driver.Value{}, rowSizes: map[string]int64{},
	}
	return 0, db.logLocked(&logEntry{Op: "create", Table: s.table, Cols: s.cols, PK: s.pk})
}

func (db *database) execInsert(s *insertStmt, args []driver.Value) (int64, error) {
	t, ok := db.tables[s.table]
	if !ok {
		return 0, fmt.Errorf("sqlite: unknown table %s", s.table)
	}
	row := make([]driver.Value, len(t.cols))
	for i, colName := range s.cols {
		ci := t.colIndex(colName)
		if ci < 0 {
			return 0, fmt.Errorf("sqlite: table %s has no column %s", s.table, colName)
		}
		v, err := s.vals[i].bind(args)
		if err != nil {
			return 0, err
		}
		if v, err = normalize(v); err != nil {
			return 0, err
		}
		row[ci] = v
	}
	var key string
	if t.pk >= 0 {
		pkVal := row[t.pk]
		if pkVal == nil {
			return 0, fmt.Errorf("sqlite: NULL PRIMARY KEY in %s", s.table)
		}
		k, err := keyOf(pkVal)
		if err != nil {
			return 0, err
		}
		if _, exists := t.rows[k]; exists && !s.orReplace {
			return 0, fmt.Errorf("sqlite: duplicate PRIMARY KEY in %s", s.table)
		}
		key = k
	} else {
		key = "r:" + strconv.FormatInt(t.nextRow, 10)
		t.nextRow++
	}
	e := logEntry{Op: "put", Table: s.table, Key: key}
	for _, v := range row {
		wv, err := toWire(v)
		if err != nil {
			return 0, err
		}
		e.Vals = append(e.Vals, wv)
	}
	t.rows[key] = row
	db.liveBytes += entrySize(&e) - t.rowSizes[key]
	t.rowSizes[key] = entrySize(&e)
	return 1, db.logLocked(&e)
}

func (db *database) execDelete(s *deleteStmt, args []driver.Value) (int64, error) {
	t, ok := db.tables[s.table]
	if !ok {
		return 0, fmt.Errorf("sqlite: unknown table %s", s.table)
	}
	match, err := s.where.matcher(t, args)
	if err != nil {
		return 0, err
	}
	var removed []string
	for k, row := range t.rows {
		ok, err := match(row)
		if err != nil {
			return 0, err
		}
		if ok {
			removed = append(removed, k)
		}
	}
	sort.Strings(removed)
	for _, k := range removed {
		delete(t.rows, k)
		db.liveBytes -= t.rowSizes[k]
		delete(t.rowSizes, k)
		if err := db.logLocked(&logEntry{Op: "del", Table: s.table, Key: k}); err != nil {
			return int64(len(removed)), err
		}
	}
	return int64(len(removed)), nil
}

func (db *database) query(s *selectStmt, args []driver.Value) (driver.Rows, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[s.table]
	if !ok {
		return nil, fmt.Errorf("sqlite: unknown table %s", s.table)
	}
	match, err := s.where.matcher(t, args)
	if err != nil {
		return nil, err
	}
	var matched [][]driver.Value
	for _, row := range t.rows {
		ok, err := match(row)
		if err != nil {
			return nil, err
		}
		if ok {
			matched = append(matched, row)
		}
	}
	if s.countAll {
		return &rows{cols: []string{"COUNT(*)"}, data: [][]driver.Value{{int64(len(matched))}}}, nil
	}
	if s.orderBy != "" {
		oi := t.colIndex(s.orderBy)
		if oi < 0 {
			return nil, fmt.Errorf("sqlite: ORDER BY unknown column %s", s.orderBy)
		}
		var sortErr error
		sort.SliceStable(matched, func(i, j int) bool {
			c, err := compare(matched[i][oi], matched[j][oi])
			if err != nil && sortErr == nil {
				sortErr = err
			}
			if s.desc {
				return c > 0
			}
			return c < 0
		})
		if sortErr != nil {
			return nil, sortErr
		}
	}
	cols := s.cols
	if s.star {
		cols = make([]string, len(t.cols))
		for i, c := range t.cols {
			cols[i] = c.Name
		}
	}
	idx := make([]int, len(cols))
	for i, name := range cols {
		ci := t.colIndex(name)
		if ci < 0 {
			return nil, fmt.Errorf("sqlite: table %s has no column %s", s.table, name)
		}
		idx[i] = ci
	}
	out := make([][]driver.Value, len(matched))
	for ri, row := range matched {
		pr := make([]driver.Value, len(idx))
		for i, ci := range idx {
			v := row[ci]
			// Hand out copies of blobs: the engine owns its row storage.
			if b, ok := v.([]byte); ok {
				cp := make([]byte, len(b))
				copy(cp, b)
				v = cp
			}
			pr[i] = v
		}
		out[ri] = pr
	}
	return &rows{cols: cols, data: out}, nil
}

// compare orders two stored values: nil first, then numerics, text, blobs.
func compare(a, b driver.Value) (int, error) {
	if a == nil || b == nil {
		switch {
		case a == nil && b == nil:
			return 0, nil
		case a == nil:
			return -1, nil
		default:
			return 1, nil
		}
	}
	switch x := a.(type) {
	case int64:
		switch y := b.(type) {
		case int64:
			switch {
			case x < y:
				return -1, nil
			case x > y:
				return 1, nil
			}
			return 0, nil
		case float64:
			return cmpFloat(float64(x), y), nil
		}
	case float64:
		switch y := b.(type) {
		case float64:
			return cmpFloat(x, y), nil
		case int64:
			return cmpFloat(x, float64(y)), nil
		}
	case string:
		if y, ok := b.(string); ok {
			return strings.Compare(x, y), nil
		}
	case []byte:
		if y, ok := b.([]byte); ok {
			return strings.Compare(string(x), string(y)), nil
		}
	}
	return 0, fmt.Errorf("sqlite: cannot compare %T with %T", a, b)
}

func cmpFloat(x, y float64) int {
	switch {
	case x < y:
		return -1
	case x > y:
		return 1
	}
	return 0
}
