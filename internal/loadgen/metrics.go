package loadgen

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// Server-side counters around a run. The generator scrapes the service's
// GET /metrics endpoint (Prometheus text format) after warm-up and again
// after the drain, and reports the deltas: what the *server* did — planner
// evaluations, cache traffic, backend I/O — next to what the client
// measured. The scraper is deliberately minimal and local to this package
// (loadgen imports nothing from the rest of the module): it aggregates every
// sample by metric name, summing across label sets, which is exactly what a
// delta over one server needs.

// ServerDelta is the change in the service's own counters across a run.
type ServerDelta struct {
	Evaluations   int64   `json:"evaluations"`
	PlansComputed int64   `json:"plans_computed"`
	PlansCached   int64   `json:"plans_cached"`
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	BackendOps    int64   `json:"backend_ops"`
	BackendMeanNs float64 `json:"backend_mean_ns,omitempty"`
}

// scrapeMetrics fetches baseURL/metrics and aggregates sample values by
// metric name (labels stripped, repeated series summed). A service without
// the endpoint, or any transport/parse trouble, yields nil — the run's
// client-side report is never hostage to the scrape.
func scrapeMetrics(client *http.Client, baseURL string) map[string]float64 {
	resp, err := client.Get(baseURL + "/metrics")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	return parseMetricsText(resp.Body)
}

// parseMetricsText reads Prometheus text exposition, summing values per
// metric name. Histogram series keep their _bucket/_sum/_count suffixes as
// distinct names; le buckets for one histogram are summed together (the
// deltas below only use _sum and _count, which carry no labels worth
// separating here).
func parseMetricsText(r io.Reader) map[string]float64 {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		rest := ""
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name, rest = line[:i], line[i:]
		}
		if strings.HasPrefix(rest, "{") {
			end := strings.Index(rest, "}")
			if end < 0 {
				continue
			}
			rest = rest[end+1:]
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			continue
		}
		v, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			continue
		}
		out[name] += v
	}
	if err := sc.Err(); err != nil {
		return nil
	}
	return out
}

// serverDelta folds two scrapes into the counters the report carries. Either
// scrape being nil (endpoint absent, scrape failed) yields nil.
func serverDelta(before, after map[string]float64) *ServerDelta {
	if before == nil || after == nil {
		return nil
	}
	d := func(name string) float64 { return after[name] - before[name] }
	sd := &ServerDelta{
		Evaluations:   int64(d("poiesis_evaluations_total")),
		PlansComputed: int64(d("poiesis_plans_computed_total")),
		PlansCached:   int64(d("poiesis_plans_cached_total")),
		CacheHits:     int64(d("poiesis_plan_cache_hits_total")),
		CacheMisses:   int64(d("poiesis_plan_cache_misses_total")),
		BackendOps:    int64(d("poiesis_backend_op_duration_seconds_count")),
	}
	if ops := d("poiesis_backend_op_duration_seconds_count"); ops > 0 {
		sd.BackendMeanNs = d("poiesis_backend_op_duration_seconds_sum") * 1e9 / ops
	}
	return sd
}

// writeServerText renders the server-side deltas under the per-op table.
func (sd *ServerDelta) writeText(w io.Writer) {
	fmt.Fprintf(w, "server: %d evaluations, %d plans computed, %d served cached, cache %d hit / %d miss, %d backend ops",
		sd.Evaluations, sd.PlansComputed, sd.PlansCached, sd.CacheHits, sd.CacheMisses, sd.BackendOps)
	if sd.BackendMeanNs > 0 {
		fmt.Fprintf(w, " (mean %s)", fmtNs(sd.BackendMeanNs))
	}
	fmt.Fprintln(w)
}
