package loadgen

import (
	"fmt"
	"io"
	"time"
)

// OpReport is the latency and error budget of one traffic class. Latency
// statistics cover successful completions only; conflicts (expected
// open-loop collisions: 404 after a concurrent delete, 409 on a busy
// session) and errors are counted separately so tail percentiles are not
// polluted by fast failures.
type OpReport struct {
	Op        string  `json:"op"`
	Count     int     `json:"count"`
	OK        int     `json:"ok"`
	Conflicts int     `json:"conflicts"`
	Errors    int     `json:"errors"`
	MeanNs    float64 `json:"mean_ns"`
	P50Ns     float64 `json:"p50_ns"`
	P95Ns     float64 `json:"p95_ns"`
	P99Ns     float64 `json:"p99_ns"`
	P999Ns    float64 `json:"p999_ns"`
	MaxNs     float64 `json:"max_ns"`
}

// SlowRequest links one slow completion to its server-side trace: fetch
// GET /v1/traces/{TraceID} on the target to see where the time went.
// TraceID is empty when the server ran with tracing disabled.
type SlowRequest struct {
	Op      string `json:"op"`
	Nanos   int64  `json:"ns"`
	TraceID string `json:"trace_id,omitempty"`
}

// Report is the outcome of one Run.
type Report struct {
	TargetQPS   float64    `json:"target_qps"`
	AchievedQPS float64    `json:"achieved_qps"`
	DurationNs  int64      `json:"duration_ns"`
	Arrivals    int        `json:"arrivals"`
	Dropped     int        `json:"dropped"`
	Ops         []OpReport `json:"ops"`
	// Slowest are the slowest successful requests across all ops (descending),
	// each carrying the trace ID the server stamped on the response, so a bad
	// tail links straight to a span tree.
	Slowest []SlowRequest `json:"slowest,omitempty"`
	// Server holds the service's own counter deltas over the measured
	// window, scraped from GET /metrics; nil when the target does not expose
	// the endpoint (or a scrape failed).
	Server *ServerDelta `json:"server,omitempty"`
}

// ErrorRate is the fraction of issued requests that failed outright
// (conflicts are not failures: an open-loop mix makes them inevitable).
func (r *Report) ErrorRate() float64 {
	var total, errs int
	for _, op := range r.Ops {
		total += op.Count
		errs += op.Errors
	}
	if total == 0 {
		return 0
	}
	return float64(errs) / float64(total)
}

// Record mirrors cmd/benchjson's record shape, so load reports land in the
// same BENCH_<n>.json trajectory format CI already archives for the
// microbenchmarks.
type Record struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_op"`
	BytesPerOp  float64            `json:"b_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Records flattens the report into benchjson-compatible records, one per
// operation plus an overall summary, all named under prefix (conventionally
// "LoadHTTP/<backend>").
func (r *Report) Records(prefix string) []Record {
	var out []Record
	var meanSum float64
	var okTotal, confTotal, errTotal int64
	for _, op := range r.Ops {
		out = append(out, Record{
			Name:       prefix + "/" + op.Op,
			Iterations: int64(op.OK),
			NsPerOp:    op.MeanNs,
			Metrics: map[string]float64{
				"p50-ns":    op.P50Ns,
				"p95-ns":    op.P95Ns,
				"p99-ns":    op.P99Ns,
				"p999-ns":   op.P999Ns,
				"max-ns":    op.MaxNs,
				"conflicts": float64(op.Conflicts),
				"errors":    float64(op.Errors),
			},
		})
		meanSum += op.MeanNs * float64(op.OK)
		okTotal += int64(op.OK)
		confTotal += int64(op.Conflicts)
		errTotal += int64(op.Errors)
	}
	overall := Record{
		Name:       prefix + "/overall",
		Iterations: int64(r.Arrivals),
		Metrics: map[string]float64{
			"target-qps":   r.TargetQPS,
			"achieved-qps": r.AchievedQPS,
			"dropped":      float64(r.Dropped),
			"conflicts":    float64(confTotal),
			"errors":       float64(errTotal),
		},
	}
	if okTotal > 0 {
		overall.NsPerOp = meanSum / float64(okTotal)
	}
	if r.Server != nil {
		overall.Metrics["srv-evaluations"] = float64(r.Server.Evaluations)
		overall.Metrics["srv-plans-computed"] = float64(r.Server.PlansComputed)
		overall.Metrics["srv-plans-cached"] = float64(r.Server.PlansCached)
		overall.Metrics["srv-cache-hits"] = float64(r.Server.CacheHits)
		overall.Metrics["srv-cache-misses"] = float64(r.Server.CacheMisses)
		overall.Metrics["srv-backend-ops"] = float64(r.Server.BackendOps)
		overall.Metrics["srv-backend-mean-ns"] = r.Server.BackendMeanNs
	}
	return append(out, overall)
}

// WriteText renders the report as an aligned human-readable table.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "open-loop run: %.1f qps target, %.1f achieved over %s (%d arrivals, %d dropped)\n",
		r.TargetQPS, r.AchievedQPS, time.Duration(r.DurationNs).Round(time.Millisecond), r.Arrivals, r.Dropped)
	fmt.Fprintf(w, "%-8s %8s %8s %9s %9s %9s %9s %9s %6s %6s\n",
		"op", "ok", "mean", "p50", "p95", "p99", "p99.9", "max", "conf", "err")
	for _, op := range r.Ops {
		fmt.Fprintf(w, "%-8s %8d %8s %9s %9s %9s %9s %9s %6d %6d\n",
			op.Op, op.OK,
			fmtNs(op.MeanNs), fmtNs(op.P50Ns), fmtNs(op.P95Ns), fmtNs(op.P99Ns), fmtNs(op.P999Ns), fmtNs(op.MaxNs),
			op.Conflicts, op.Errors)
	}
	if len(r.Slowest) > 0 {
		fmt.Fprintf(w, "top-%d slowest, by trace:\n", len(r.Slowest))
		for _, sl := range r.Slowest {
			tid := sl.TraceID
			if tid == "" {
				tid = "(tracing disabled)"
			}
			fmt.Fprintf(w, "  %-8s %9s  %s\n", sl.Op, fmtNs(float64(sl.Nanos)), tid)
		}
	}
	if r.Server != nil {
		r.Server.writeText(w)
	}
}

func fmtNs(ns float64) string {
	if ns == 0 {
		return "-"
	}
	return time.Duration(ns).Round(time.Microsecond).String()
}
