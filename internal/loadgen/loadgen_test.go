package loadgen_test

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"poiesis"
	"poiesis/internal/loadgen"
)

// startService mounts the real planning service on a real listener, so the
// generator exercises the same HTTP path (including SSE flushing) a remote
// run would.
func startService(t *testing.T) *httptest.Server {
	t.Helper()
	handler := poiesis.NewServer(poiesis.ServerConfig{Logf: t.Logf})
	srv := httptest.NewServer(handler)
	t.Cleanup(func() {
		srv.Close()
		handler.Close()
	})
	return srv
}

// TestOpenLoopSmoke is the short low-QPS harness smoke run CI executes under
// -race: a full mixed-traffic window against an in-process service, ending
// with every op class exercised and a near-zero error budget.
func TestOpenLoopSmoke(t *testing.T) {
	srv := startService(t)
	report, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:  srv.URL,
		QPS:      40,
		Duration: 1500 * time.Millisecond,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Arrivals == 0 {
		t.Fatal("open-loop run produced no arrivals")
	}
	if report.Dropped == report.Arrivals {
		t.Fatal("every arrival was shed")
	}
	if rate := report.ErrorRate(); rate > 0.01 {
		t.Errorf("error rate %.3f over budget against a local healthy server; report: %+v", rate, report)
	}
	seen := map[string]bool{}
	var okTotal int
	for _, op := range report.Ops {
		seen[op.Op] = true
		okTotal += op.OK
		if op.OK > 0 && (op.P50Ns <= 0 || op.P99Ns < op.P50Ns || op.P999Ns < op.P99Ns || op.MaxNs < op.P999Ns) {
			t.Errorf("%s percentiles incoherent: %+v", op.Op, op)
		}
	}
	// The default server samples every trace, so each slow sample must link
	// to a fetchable span tree, and the table must be sorted worst-first.
	if len(report.Slowest) == 0 {
		t.Error("no slow samples captured")
	}
	for i, sl := range report.Slowest {
		if sl.TraceID == "" {
			t.Errorf("slow sample %d (%s, %dns) lacks a trace ID", i, sl.Op, sl.Nanos)
		}
		if i > 0 && sl.Nanos > report.Slowest[i-1].Nanos {
			t.Errorf("slow samples out of order at %d: %d > %d", i, sl.Nanos, report.Slowest[i-1].Nanos)
		}
	}
	if okTotal == 0 {
		t.Fatal("no successful operations recorded")
	}
	// At 40 qps over 1.5s with the default mix, every class should fire; a
	// missing one means the dispatcher starved it.
	for _, op := range []string{"create", "plan", "select", "get", "sse", "delete"} {
		if !seen[op] {
			t.Errorf("op %s never dispatched", op)
		}
	}
}

// TestReportRecords checks the benchjson-compatible flattening: one record
// per op plus the overall summary, all under the prefix, with the percentile
// metrics present.
func TestReportRecords(t *testing.T) {
	srv := startService(t)
	report, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:  srv.URL,
		QPS:      30,
		Duration: time.Second,
		Mix:      loadgen.Mix{loadgen.OpCreate: 1, loadgen.OpGet: 3},
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	records := report.Records("LoadHTTP/memory")
	if len(records) < 2 {
		t.Fatalf("got %d records, want at least one op plus overall", len(records))
	}
	last := records[len(records)-1]
	if last.Name != "LoadHTTP/memory/overall" {
		t.Errorf("last record %q, want the overall summary", last.Name)
	}
	for _, key := range []string{"target-qps", "achieved-qps", "dropped", "errors"} {
		if _, ok := last.Metrics[key]; !ok {
			t.Errorf("overall record lacks %s: %+v", key, last.Metrics)
		}
	}
	for _, rec := range records[:len(records)-1] {
		if !strings.HasPrefix(rec.Name, "LoadHTTP/memory/") {
			t.Errorf("record %q escapes the prefix", rec.Name)
		}
		if rec.NsPerOp <= 0 {
			t.Errorf("record %q has no latency", rec.Name)
		}
		for _, key := range []string{"p50-ns", "p95-ns", "p99-ns", "max-ns", "errors", "conflicts"} {
			if _, ok := rec.Metrics[key]; !ok {
				t.Errorf("record %q lacks metric %s", rec.Name, key)
			}
		}
	}
}

// TestConfigValidation: bad configurations fail before any traffic.
func TestConfigValidation(t *testing.T) {
	for name, cfg := range map[string]loadgen.Config{
		"no url":       {QPS: 1, Duration: time.Second},
		"zero qps":     {BaseURL: "http://x", Duration: time.Second},
		"zero dur":     {BaseURL: "http://x", QPS: 1},
		"empty mix":    {BaseURL: "http://x", QPS: 1, Duration: time.Second, Mix: loadgen.Mix{}},
		"negative mix": {BaseURL: "http://x", QPS: 1, Duration: time.Second, Mix: loadgen.Mix{loadgen.OpGet: -1}},
	} {
		if _, err := loadgen.Run(context.Background(), cfg); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
