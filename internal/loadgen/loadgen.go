// Package loadgen is an open-loop HTTP load generator for the poiesis
// planning service. Open-loop means arrivals follow a Poisson process at a
// configured target rate regardless of how fast the server answers — the
// generator never waits for a response before issuing the next request — so
// queueing delay shows up in the measured latencies instead of silently
// throttling the offered load (the coordinated-omission trap of closed-loop
// harnesses).
//
// The package speaks plain HTTP against a base URL and deliberately imports
// nothing from the rest of the module: it can drive an in-process
// httptest.Server (see cmd/poiesis-bench) or a remote `poiesis serve`
// deployment with equal fidelity.
package loadgen

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Op names one traffic class of the mix.
type Op string

const (
	OpCreate Op = "create" // POST /v1/sessions
	OpPlan   Op = "plan"   // POST /v1/sessions/{id}/plan
	OpSelect Op = "select" // POST /v1/sessions/{id}/select
	OpGet    Op = "get"    // GET  /v1/sessions/{id}
	OpSSE    Op = "sse"    // POST /v1/sessions/{id}/plan?stream=sse, drained
	OpDelete Op = "delete" // DELETE /v1/sessions/{id}
)

// Mix weights the traffic classes; zero-weight ops never fire.
type Mix map[Op]int

// traceIDHeader is the response header the service stamps with the root
// span's trace ID (internal/obs.TraceIDHeader, spelled out here so loadgen
// keeps its zero-import property). Empty on servers with tracing disabled.
const traceIDHeader = "X-Poiesis-Trace-ID"

// slowestPerOp bounds how many slow samples each op retains; the report's
// "top-5 slowest, by trace" table is cut from their union.
const slowestPerOp = 5

// DefaultMix is read-heavy with a steady churn of plans, the profile of an
// interactive redesign session: mostly inspection, regular replanning, some
// session turnover.
func DefaultMix() Mix {
	return Mix{OpCreate: 1, OpPlan: 3, OpSelect: 2, OpGet: 5, OpSSE: 1, OpDelete: 1}
}

// DefaultSessionBody is the create-session request used unless Config
// overrides it: a small built-in flow with a fast greedy configuration, so
// smoke runs measure service overhead rather than planner depth.
const DefaultSessionBody = `{
	"name": "loadgen",
	"flow": {"builtin": "tpcds-purchases"},
	"scale": 100,
	"config": {"policy": "greedy", "topK": 1, "depth": 1, "sim": {"runs": 4, "defaultRows": 100}}
}`

// RowEngineSessionBody is DefaultSessionBody with the columnar simulation
// engine disabled ("rowEngine": true), so a load run can measure the
// row-at-a-time ablation under identical traffic.
const RowEngineSessionBody = `{
	"name": "loadgen",
	"flow": {"builtin": "tpcds-purchases"},
	"scale": 100,
	"config": {"policy": "greedy", "topK": 1, "depth": 1, "sim": {"runs": 4, "defaultRows": 100}, "rowEngine": true}
}`

// Config parameterizes one run.
type Config struct {
	// BaseURL roots every request, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client issues the requests; nil uses a fresh client with a 60s
	// timeout (the timeout covers SSE streams end-to-end).
	Client *http.Client
	// QPS is the target arrival rate (Poisson). Must be positive.
	QPS float64
	// Duration is how long arrivals are generated; in-flight requests are
	// drained afterwards and still measured. Must be positive.
	Duration time.Duration
	// Mix weights the operations; nil uses DefaultMix.
	Mix Mix
	// SessionBody is the JSON create-session request; empty uses
	// DefaultSessionBody (or RowEngineSessionBody when RowEngine is set).
	SessionBody string
	// RowEngine selects the row-at-a-time session body when SessionBody is
	// empty, so BENCH trajectories can compare simulation-engine modes.
	RowEngine bool
	// Seed fixes the arrival schedule and op choices; 0 means seed 1, so
	// runs are reproducible by default.
	Seed int64
	// WarmSessions are created (and planned) before the clock starts, so
	// session-targeted ops have targets from the first arrival. Default 2.
	WarmSessions int
	// MaxInFlight bounds concurrent requests; arrivals past the bound are
	// counted as dropped instead of queued (the generator must not become
	// the queue it is trying to measure). Default 256.
	MaxInFlight int
}

func (c *Config) withDefaults() (Config, error) {
	cfg := *c
	if cfg.BaseURL == "" {
		return cfg, errors.New("loadgen: BaseURL is required")
	}
	cfg.BaseURL = strings.TrimSuffix(cfg.BaseURL, "/")
	if cfg.QPS <= 0 {
		return cfg, errors.New("loadgen: QPS must be positive")
	}
	if cfg.Duration <= 0 {
		return cfg, errors.New("loadgen: Duration must be positive")
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 60 * time.Second}
	}
	if cfg.Mix == nil {
		cfg.Mix = DefaultMix()
	}
	total := 0
	for _, w := range cfg.Mix {
		if w < 0 {
			return cfg, errors.New("loadgen: negative mix weight")
		}
		total += w
	}
	if total == 0 {
		return cfg, errors.New("loadgen: mix has no positive weights")
	}
	if cfg.SessionBody == "" {
		cfg.SessionBody = DefaultSessionBody
		if cfg.RowEngine {
			cfg.SessionBody = RowEngineSessionBody
		}
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.WarmSessions == 0 {
		cfg.WarmSessions = 2
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = 256
	}
	return cfg, nil
}

// sessionPool tracks live session IDs and which of them have a plan result,
// so select ops target sessions where a select can succeed.
type sessionPool struct {
	mu      sync.Mutex
	ids     []string
	planned map[string]bool
}

func newSessionPool() *sessionPool {
	return &sessionPool{planned: map[string]bool{}}
}

func (p *sessionPool) add(id string) {
	p.mu.Lock()
	p.ids = append(p.ids, id)
	p.mu.Unlock()
}

func (p *sessionPool) markPlanned(id string) {
	p.mu.Lock()
	p.planned[id] = true
	p.mu.Unlock()
}

// clearPlanned marks a session as needing a fresh plan: a select consumes
// the skyline, so the next select on it must wait for another plan.
func (p *sessionPool) clearPlanned(id string) {
	p.mu.Lock()
	delete(p.planned, id)
	p.mu.Unlock()
}

func (p *sessionPool) size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.ids)
}

// pick returns a random live ID; preferPlanned narrows to sessions with a
// plan result when any exist. r is the dispatch goroutine's private rng.
func (p *sessionPool) pick(r *rand.Rand, preferPlanned bool) (string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.ids) == 0 {
		return "", false
	}
	if preferPlanned {
		var candidates []string
		for _, id := range p.ids {
			if p.planned[id] {
				candidates = append(candidates, id)
			}
		}
		if len(candidates) > 0 {
			return candidates[r.Intn(len(candidates))], true
		}
	}
	return p.ids[r.Intn(len(p.ids))], true
}

// take removes and returns a random ID (for deletes): removing at dispatch
// time keeps later arrivals from targeting a session scheduled to die, so
// races stay rare (and merely count as conflicts when they happen).
func (p *sessionPool) take(r *rand.Rand) (string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.ids) == 0 {
		return "", false
	}
	i := r.Intn(len(p.ids))
	id := p.ids[i]
	p.ids[i] = p.ids[len(p.ids)-1]
	p.ids = p.ids[:len(p.ids)-1]
	delete(p.planned, id)
	return id, true
}

// Run generates load until the duration elapses or ctx is cancelled, drains
// in-flight requests, and reports per-op latency and error statistics.
func Run(ctx context.Context, c Config) (*Report, error) {
	cfg, err := c.withDefaults()
	if err != nil {
		return nil, err
	}
	g := &generator{cfg: cfg, pool: newSessionPool(), stats: map[Op]*opStats{}}
	for _, op := range []Op{OpCreate, OpPlan, OpSelect, OpGet, OpSSE, OpDelete} {
		if cfg.Mix[op] > 0 {
			g.stats[op] = &opStats{}
		}
	}
	// Warm the pool synchronously so the measured window never starts
	// against an empty store; warm requests are not recorded.
	for i := 0; i < cfg.WarmSessions; i++ {
		id, status, _, err := g.create(ctx)
		if err != nil || status != http.StatusCreated {
			return nil, fmt.Errorf("loadgen: warm-up create failed (status %d): %v", status, err)
		}
		if status, _, err := g.plan(ctx, id, false); err != nil || status != http.StatusOK {
			return nil, fmt.Errorf("loadgen: warm-up plan failed (status %d): %v", status, err)
		}
		g.pool.markPlanned(id)
	}
	// Bracket the measured window (not the warm-up) with /metrics scrapes,
	// so the report can pair client-side latencies with what the server
	// actually did. Best-effort: a target without the endpoint reports
	// client-side numbers only.
	before := scrapeMetrics(cfg.Client, cfg.BaseURL)
	rep, err := g.run(ctx)
	if rep != nil {
		rep.Server = serverDelta(before, scrapeMetrics(cfg.Client, cfg.BaseURL))
	}
	return rep, err
}

type opStats struct {
	mu        sync.Mutex
	okNanos   []int64 // latencies of successful completions
	slowest   []SlowRequest
	conflicts int
	errors    int
}

func (s *opStats) record(d time.Duration, status int, traceID string, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case err == nil && status >= 200 && status < 300:
		s.okNanos = append(s.okNanos, int64(d))
		s.noteSlow(int64(d), traceID)
	case err == nil && (status == http.StatusNotFound || status == http.StatusConflict):
		// Expected open-loop collisions: the target was deleted or evicted
		// between dispatch and arrival, or two plans raced on one session.
		s.conflicts++
	default:
		s.errors++
	}
}

// noteSlow keeps the op's slowest completions (descending by latency) so the
// report can link tail latency to the server-side span tree by trace ID.
// Called with s.mu held.
func (s *opStats) noteSlow(nanos int64, traceID string) {
	i := len(s.slowest)
	for i > 0 && s.slowest[i-1].Nanos < nanos {
		i--
	}
	if i >= slowestPerOp {
		return
	}
	s.slowest = append(s.slowest, SlowRequest{})
	copy(s.slowest[i+1:], s.slowest[i:])
	s.slowest[i] = SlowRequest{Nanos: nanos, TraceID: traceID}
	if len(s.slowest) > slowestPerOp {
		s.slowest = s.slowest[:slowestPerOp]
	}
}

type generator struct {
	cfg   Config
	pool  *sessionPool
	stats map[Op]*opStats

	arrivals int
	dropped  int
}

// run is the open-loop dispatch loop: exponential inter-arrival sleeps at
// the target rate, one goroutine per admitted arrival.
func (g *generator) run(ctx context.Context) (*Report, error) {
	rng := rand.New(rand.NewSource(g.cfg.Seed))
	tokens := make(chan struct{}, g.cfg.MaxInFlight)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(g.cfg.Duration)

	for {
		// Exponential inter-arrival time for a Poisson process at QPS.
		wait := time.Duration(rng.ExpFloat64() / g.cfg.QPS * float64(time.Second))
		next := time.Now().Add(wait)
		if next.After(deadline) {
			break
		}
		select {
		case <-ctx.Done():
			wg.Wait()
			return nil, ctx.Err()
		case <-time.After(time.Until(next)):
		}

		op, id, ok := g.chooseOp(rng)
		if !ok {
			continue
		}
		g.arrivals++
		select {
		case tokens <- struct{}{}:
		default:
			g.dropped++ // the generator's queue is full: shed, don't stall
			continue
		}
		wg.Add(1)
		go func(op Op, id string) {
			defer wg.Done()
			defer func() { <-tokens }()
			g.issue(ctx, op, id)
		}(op, id)
	}
	wg.Wait()
	elapsed := time.Since(start)
	return g.report(elapsed), nil
}

// chooseOp draws an operation from the mix and resolves its target session.
// Session-targeted ops degrade to create when the pool is empty, and deletes
// hold a small floor of sessions so the mix cannot starve itself.
func (g *generator) chooseOp(rng *rand.Rand) (Op, string, bool) {
	total := 0
	for _, w := range g.cfg.Mix {
		total += w
	}
	n := rng.Intn(total)
	var op Op
	for _, candidate := range []Op{OpCreate, OpPlan, OpSelect, OpGet, OpSSE, OpDelete} {
		w := g.cfg.Mix[candidate]
		if n < w {
			op = candidate
			break
		}
		n -= w
	}
	switch op {
	case OpCreate:
		return op, "", true
	case OpDelete:
		if g.pool.size() <= g.cfg.WarmSessions {
			return OpCreate, "", true
		}
		id, ok := g.pool.take(rng)
		if !ok {
			return OpCreate, "", true
		}
		return op, id, true
	case OpSelect:
		id, ok := g.pool.pick(rng, true)
		if !ok {
			return OpCreate, "", true
		}
		return op, id, true
	default: // plan, get, sse
		id, ok := g.pool.pick(rng, false)
		if !ok {
			return OpCreate, "", true
		}
		return op, id, true
	}
}

// issue performs one operation and records its outcome. Requests carry the
// run's context so cancelling the run aborts in-flight requests instead of
// waiting out their server-side completion.
func (g *generator) issue(ctx context.Context, op Op, id string) {
	start := time.Now()
	var (
		status int
		tid    string
		err    error
	)
	switch op {
	case OpCreate:
		var newID string
		newID, status, tid, err = g.create(ctx)
		if err == nil && status == http.StatusCreated {
			g.pool.add(newID)
		}
	case OpPlan:
		status, tid, err = g.plan(ctx, id, false)
		if err == nil && status == http.StatusOK {
			g.pool.markPlanned(id)
		}
	case OpSSE:
		status, tid, err = g.plan(ctx, id, true)
		if err == nil && status == http.StatusOK {
			g.pool.markPlanned(id)
		}
	case OpSelect:
		status, tid, err = g.do(ctx, "POST", "/v1/sessions/"+id+"/select", `{"index":0}`, nil)
		if err == nil && status == http.StatusOK {
			g.pool.clearPlanned(id)
		}
		// A 400 here is the stale-skyline race: another select consumed the
		// result between dispatch and arrival. The request shape is fixed,
		// so this is open-loop contention, not a malformed request.
		if err == nil && status == http.StatusBadRequest {
			status = http.StatusConflict
		}
	case OpGet:
		status, tid, err = g.do(ctx, "GET", "/v1/sessions/"+id, "", nil)
	case OpDelete:
		status, tid, err = g.do(ctx, "DELETE", "/v1/sessions/"+id, "", nil)
		if status == http.StatusNoContent {
			status = http.StatusOK
		}
	}
	g.stats[op].record(time.Since(start), status, tid, err)
}

func (g *generator) create(ctx context.Context) (string, int, string, error) {
	var out struct {
		ID string `json:"id"`
	}
	status, tid, err := g.do(ctx, "POST", "/v1/sessions", g.cfg.SessionBody, &out)
	return out.ID, status, tid, err
}

// plan runs a plan request; when stream is set it subscribes to the SSE
// progress stream and drains it to the final event, so the measured latency
// is the full time-to-last-byte of the stream.
func (g *generator) plan(ctx context.Context, id string, stream bool) (int, string, error) {
	path := "/v1/sessions/" + id + "/plan"
	if !stream {
		return g.do(ctx, "POST", path, "", nil)
	}
	req, err := http.NewRequestWithContext(ctx, "POST", g.cfg.BaseURL+path+"?stream=sse", nil)
	if err != nil {
		return 0, "", err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := g.cfg.Client.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	tid := resp.Header.Get(traceIDHeader)
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return resp.StatusCode, tid, err
	}
	return resp.StatusCode, tid, nil
}

func (g *generator) do(ctx context.Context, method, path, body string, out any) (int, string, error) {
	var rdr io.Reader
	if body != "" {
		rdr = strings.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, g.cfg.BaseURL+path, rdr)
	if err != nil {
		return 0, "", err
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := g.cfg.Client.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	tid := resp.Header.Get(traceIDHeader)
	if out != nil && resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return resp.StatusCode, tid, json.NewDecoder(resp.Body).Decode(out)
	}
	_, err = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, tid, err
}

// report folds the per-op stats into a Report.
func (g *generator) report(elapsed time.Duration) *Report {
	r := &Report{
		TargetQPS:  g.cfg.QPS,
		DurationNs: int64(elapsed),
		Arrivals:   g.arrivals,
		Dropped:    g.dropped,
	}
	if elapsed > 0 {
		r.AchievedQPS = float64(g.arrivals-g.dropped) / elapsed.Seconds()
	}
	for _, op := range []Op{OpCreate, OpPlan, OpSelect, OpGet, OpSSE, OpDelete} {
		s, ok := g.stats[op]
		if !ok {
			continue
		}
		s.mu.Lock()
		or := OpReport{
			Op:        string(op),
			OK:        len(s.okNanos),
			Conflicts: s.conflicts,
			Errors:    s.errors,
		}
		or.Count = or.OK + or.Conflicts + or.Errors
		if len(s.okNanos) > 0 {
			nanos := append([]int64(nil), s.okNanos...)
			or.MeanNs = mean(nanos)
			sortInt64(nanos)
			or.P50Ns = percentile(nanos, 0.50)
			or.P95Ns = percentile(nanos, 0.95)
			or.P99Ns = percentile(nanos, 0.99)
			or.P999Ns = percentile(nanos, 0.999)
			or.MaxNs = float64(nanos[len(nanos)-1])
		}
		for _, sl := range s.slowest {
			sl.Op = string(op)
			r.Slowest = append(r.Slowest, sl)
		}
		s.mu.Unlock()
		if or.Count > 0 {
			r.Ops = append(r.Ops, or)
		}
	}
	// The per-op slow lists merge into one cross-op tail: the table answers
	// "which requests hurt most", not "which hurt most per class".
	sort.SliceStable(r.Slowest, func(i, j int) bool { return r.Slowest[i].Nanos > r.Slowest[j].Nanos })
	if len(r.Slowest) > slowestPerOp {
		r.Slowest = r.Slowest[:slowestPerOp]
	}
	return r
}

func mean(nanos []int64) float64 {
	var sum float64
	for _, n := range nanos {
		sum += float64(n)
	}
	return sum / float64(len(nanos))
}

func sortInt64(s []int64) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

// percentile reads the q-quantile from an ascending latency slice using the
// nearest-rank method (what "p99" means operationally: the smallest value
// ≥ 99% of samples).
func percentile(sorted []int64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return float64(sorted[rank])
}
