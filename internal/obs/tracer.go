package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SpanData is one completed span as stored and exported. Times are wall
// clock; the tree structure is ParentID links within one TraceID.
type SpanData struct {
	TraceID  string        `json:"traceId"`
	SpanID   string        `json:"spanId"`
	ParentID string        `json:"parentId,omitempty"`
	Name     string        `json:"name"`
	Service  string        `json:"service,omitempty"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"durationNs"`
	Attrs    []Attr        `json:"attrs,omitempty"`
	Events   []SpanEvent   `json:"events,omitempty"`
	Err      string        `json:"error,omitempty"`
}

// Trace is one collected trace fragment (or a cluster-merged tree): every
// completed span sharing a trace ID on this replica.
type Trace struct {
	ID       string        `json:"id"`
	Root     string        `json:"root"`
	Service  string        `json:"service"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"durationNs"`
	Errored  bool          `json:"errored"`
	Dropped  int           `json:"droppedSpans,omitempty"`
	Spans    []SpanData    `json:"spans"`
}

// TracerStats counts collector activity for /v1/stats.
type TracerStats struct {
	Roots        int64 `json:"roots"`
	Published    int64 `json:"published"`
	Discarded    int64 `json:"discarded"`
	DroppedSpans int64 `json:"droppedSpans"`
	Buffered     int   `json:"buffered"`
}

// traceBuf accumulates the completed spans of one local trace fragment.
// It is sealed when the fragment's local root ends; spans arriving after
// the seal (stray goroutines) are dropped and counted rather than leaking
// into a published trace.
type traceBuf struct {
	max int

	mu      sync.Mutex
	spans   []SpanData
	dropped int
	errored bool
	sealed  bool
}

func (b *traceBuf) add(sd SpanData) {
	b.mu.Lock()
	if b.sealed || len(b.spans) >= b.max {
		b.dropped++
		b.mu.Unlock()
		return
	}
	if sd.Err != "" {
		b.errored = true
	}
	b.spans = append(b.spans, sd)
	b.mu.Unlock()
}

func (b *traceBuf) noteError() {
	b.mu.Lock()
	b.errored = true
	b.mu.Unlock()
}

// Tracer is the in-process collector: it mints IDs, applies head sampling
// at local roots, and keeps the most recent published traces in a bounded
// ring. A nil *Tracer is a valid "tracing disabled" tracer: StartRequest
// and StartDetached return the context unchanged and a nil span, and the
// request path allocates nothing.
type Tracer struct {
	service  string
	every    int64 // publish 1 in N root traces; <=1 publishes all
	capacity int   // ring size
	maxSpans int   // per-fragment span cap

	roots atomic.Int64
	idc   atomic.Uint64

	published    atomic.Int64
	discarded    atomic.Int64
	droppedSpans atomic.Int64

	mu   sync.Mutex
	ring []string // trace IDs in publication order; evicts oldest
	byID map[string]*Trace
}

const (
	defaultTraceRing = 128
	defaultMaxSpans  = 512
)

// NewTracer builds a collector for one replica. service labels every
// exported span with the replica's identity (cluster self ID or "poiesis").
// sampleEvery publishes one in N root traces (<=1 publishes every trace);
// the first root and any errored fragment are always published. bufferCap
// bounds the ring of retained traces (<=0 uses 128).
func NewTracer(service string, sampleEvery, bufferCap int) *Tracer {
	if service == "" {
		service = "poiesis"
	}
	if bufferCap <= 0 {
		bufferCap = defaultTraceRing
	}
	t := &Tracer{
		service:  service,
		every:    int64(sampleEvery),
		capacity: bufferCap,
		maxSpans: defaultMaxSpans,
		byID:     make(map[string]*Trace),
	}
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err == nil {
		t.idc.Store(binary.BigEndian.Uint64(seed[:]))
	}
	return t
}

// Service returns the replica identity stamped on exported spans.
func (t *Tracer) Service() string {
	if t == nil {
		return ""
	}
	return t.service
}

func (t *Tracer) nextSpanID() SpanID {
	return spanIDFrom(splitmix64(t.idc.Add(1)))
}

func (t *Tracer) newTraceID() TraceID {
	a := splitmix64(t.idc.Add(1))
	b := splitmix64(t.idc.Add(1))
	return traceIDFrom(a, b)
}

// sampleRoot decides head sampling for a new root trace. The first root is
// always sampled so a fresh server's smoke request is inspectable at any
// sample rate.
func (t *Tracer) sampleRoot() bool {
	n := t.roots.Add(1)
	return t.every <= 1 || n%t.every == 1
}

func (t *Tracer) startLocalRoot(ctx context.Context, tid TraceID, parent SpanID, name string, sampled bool) (context.Context, *Span) {
	sp := &Span{
		tr:      t,
		buf:     &traceBuf{max: t.maxSpans},
		traceID: tid,
		tidStr:  tid.String(),
		spanID:  t.nextSpanID(),
		parent:  parent,
		name:    name,
		//lint:ignore nodeterminism span start times are wall-clock by definition, never fed to oracles
		start:     time.Now(),
		sampled:   sampled,
		localRoot: true,
		// Root spans accumulate the middleware's and the handler's
		// annotations; sizing for them up front keeps append growth off
		// the per-request path.
		attrs: make([]Attr, 0, 10),
	}
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// StartRequest roots this process's fragment of a trace. When traceparent
// carries a valid inbound context (a cluster forward or an instrumented
// client), the fragment continues that trace — same trace ID, remote
// parent span, and the caller's sampling decision — so the owner's spans
// graft under the proxy's forward span. Otherwise a fresh root trace is
// started and head sampling applies. Returns (ctx, nil) on a nil tracer.
func (t *Tracer) StartRequest(ctx context.Context, traceparent, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if tid, psid, sampled, ok := ParseTraceParent(traceparent); ok {
		return t.startLocalRoot(ctx, tid, psid, name, sampled)
	}
	return t.startLocalRoot(ctx, t.newTraceID(), SpanID{}, name, t.sampleRoot())
}

// StartDetached roots a background trace with no inbound parent (eviction
// queue work, TTL sweeps). Detached traces bypass head sampling only via
// the error override, like any other root.
func (t *Tracer) StartDetached(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	return t.startLocalRoot(ctx, t.newTraceID(), SpanID{}, name, t.sampleRoot())
}

// seal closes a fragment buffer and publishes it to the ring when the
// trace was sampled or the fragment errored (the always-sample-on-error
// override); otherwise the fragment is discarded.
func (t *Tracer) seal(b *traceBuf, tid TraceID, sampled bool) {
	b.mu.Lock()
	b.sealed = true
	spans := b.spans
	b.spans = nil
	dropped := b.dropped
	errored := b.errored
	b.mu.Unlock()

	t.droppedSpans.Add(int64(dropped))
	if !sampled && !errored {
		t.discarded.Add(1)
		return
	}
	if len(spans) == 0 {
		return
	}
	t.published.Add(1)
	t.publish(tid.String(), spans, dropped, errored)
}

// publish files a sealed fragment into the ring, merging with an existing
// entry for the same trace ID: a request that hops through this replica
// twice (proxy then peer-cache call) lands as one trace.
func (t *Tracer) publish(id string, spans []SpanData, dropped int, errored bool) {
	for i := range spans {
		if spans[i].Service == "" {
			spans[i].Service = t.service
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if tr := t.byID[id]; tr != nil {
		tr.Spans = append(tr.Spans, spans...)
		tr.Dropped += dropped
		tr.Errored = tr.Errored || errored
		summarize(tr)
		return
	}
	tr := &Trace{ID: id, Service: t.service, Errored: errored, Dropped: dropped, Spans: spans}
	summarize(tr)
	t.byID[id] = tr
	t.ring = append(t.ring, id)
	for len(t.ring) > t.capacity {
		delete(t.byID, t.ring[0])
		t.ring = t.ring[1:]
	}
}

// summarize recomputes the trace's root name, start, and duration from its
// spans: the span with no in-trace parent that starts earliest wins.
func summarize(tr *Trace) {
	ids := make(map[string]bool, len(tr.Spans))
	for i := range tr.Spans {
		ids[tr.Spans[i].SpanID] = true
	}
	var root *SpanData
	end := time.Time{}
	for i := range tr.Spans {
		sp := &tr.Spans[i]
		if e := sp.Start.Add(sp.Duration); e.After(end) {
			end = e
		}
		if sp.ParentID != "" && ids[sp.ParentID] {
			continue
		}
		if root == nil || sp.Start.Before(root.Start) {
			root = sp
		}
	}
	if root != nil {
		tr.Root = root.Name
		tr.Start = root.Start
		tr.Duration = end.Sub(root.Start)
	}
}

// Traces returns summaries of the retained traces, newest first. The span
// slices are shared with the ring; callers must not mutate them.
func (t *Tracer) Traces() []Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Trace, 0, len(t.ring))
	for i := len(t.ring) - 1; i >= 0; i-- {
		tr := t.byID[t.ring[i]]
		if tr == nil {
			continue
		}
		cp := *tr
		cp.Spans = nil
		out = append(out, cp)
	}
	return out
}

// Trace returns a copy of one retained trace with its spans sorted by
// start time, or false when the ID is unknown (not collected, sampled
// out, or already evicted).
func (t *Tracer) Trace(id string) (Trace, bool) {
	if t == nil {
		return Trace{}, false
	}
	t.mu.Lock()
	tr := t.byID[id]
	var cp Trace
	if tr != nil {
		cp = *tr
		cp.Spans = append([]SpanData(nil), tr.Spans...)
	}
	t.mu.Unlock()
	if tr == nil {
		return Trace{}, false
	}
	sort.SliceStable(cp.Spans, func(i, j int) bool { return cp.Spans[i].Start.Before(cp.Spans[j].Start) })
	return cp, true
}

// MergeTraces combines trace fragments collected on different replicas into
// one document: spans are deduplicated by span ID, sorted by start time, and
// the root/start/duration summary is recomputed over the union. The first
// fragment's ID and service label the merged trace.
func MergeTraces(frags ...Trace) Trace {
	var out Trace
	seen := make(map[string]bool)
	for i, frag := range frags {
		if i == 0 {
			out.ID = frag.ID
			out.Service = frag.Service
		}
		out.Errored = out.Errored || frag.Errored
		out.Dropped += frag.Dropped
		for _, sp := range frag.Spans {
			if seen[sp.SpanID] {
				continue
			}
			seen[sp.SpanID] = true
			out.Spans = append(out.Spans, sp)
		}
	}
	sort.SliceStable(out.Spans, func(i, j int) bool { return out.Spans[i].Start.Before(out.Spans[j].Start) })
	summarize(&out)
	return out
}

// Stats snapshots collector counters.
func (t *Tracer) Stats() TracerStats {
	if t == nil {
		return TracerStats{}
	}
	t.mu.Lock()
	buffered := len(t.ring)
	t.mu.Unlock()
	return TracerStats{
		Roots:        t.roots.Load(),
		Published:    t.published.Load(),
		Discarded:    t.discarded.Load(),
		DroppedSpans: t.droppedSpans.Load(),
		Buffered:     buffered,
	}
}
