// Package obs is a zero-dependency observability toolkit for the poiesis
// service: a metrics registry (counters, gauges, fixed-bucket latency
// histograms with quantile estimation) that renders in the Prometheus text
// exposition format, plus request-ID plumbing shared by the HTTP server and
// the cluster client so one request can be followed across replicas.
//
// The registry is safe for concurrent use. Metric handles are cheap atomic
// cells; looking one up through a *Vec takes a short-lived lock, so hot
// paths should resolve their handles once and keep them.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency histogram bounds in seconds: roughly
// exponential from 100µs to 60s, chosen so that cached plan serves (~1ms),
// fresh plan runs (tens of ms to seconds) and fsync-bound backend writes
// (~2ms) each land in a resolvable region.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Counter is a monotonically increasing metric. Set exists so the server can
// mirror pre-existing atomic counters into the registry at scrape time
// without double-counting; callers otherwise use Inc/Add.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the exposition to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Set overwrites the value. Only for mirroring an external monotonic source.
func (c *Counter) Set(n int64) { c.v.Store(n) }

// Value returns the current value.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set overwrites the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket latency histogram. Observations are recorded
// in nanoseconds and exposed in seconds (the Prometheus convention for
// *_duration_seconds families). All methods are safe for concurrent use.
type Histogram struct {
	bounds []float64 // upper bounds in seconds, ascending; +Inf is implicit
	counts []atomic.Int64
	sum    atomic.Int64 // nanoseconds
	count  atomic.Int64

	// Exemplars: per bucket, the trace ID of the slowest observation in
	// the current window (a window runs from one exposition scrape to the
	// next). Lazily allocated so histograms never fed through ObserveEx
	// pay nothing.
	exMu sync.Mutex
	ex   []exemplarSlot
}

type exemplarSlot struct {
	nanos   int64
	traceID string
}

// Exemplar links one histogram bucket to the trace of its slowest
// observation in the current scrape window.
type Exemplar struct {
	Bucket  string  `json:"bucket"` // upper bound in seconds; "+Inf" for the overflow bucket
	TraceID string  `json:"traceId"`
	Seconds float64 `json:"seconds"`
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	secs := d.Seconds()
	i := 0
	for i < len(h.bounds) && secs > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	h.count.Add(1)
}

// ObserveEx records one duration and, when traceID is non-empty and this
// observation is the slowest its bucket has seen this window, remembers
// the trace ID as the bucket's exemplar. The exemplar path takes a short
// mutex separate from the atomic counters, so plain Observe callers are
// unaffected.
func (h *Histogram) ObserveEx(d time.Duration, traceID string) {
	h.Observe(d)
	if traceID == "" {
		return
	}
	secs := d.Seconds()
	i := 0
	for i < len(h.bounds) && secs > h.bounds[i] {
		i++
	}
	h.exMu.Lock()
	if h.ex == nil {
		h.ex = make([]exemplarSlot, len(h.bounds)+1)
	}
	if int64(d) > h.ex[i].nanos {
		h.ex[i] = exemplarSlot{nanos: int64(d), traceID: traceID}
	}
	h.exMu.Unlock()
}

// exemplars snapshots the non-empty exemplar slots; reset starts a fresh
// window (done by the exposition writer, so a window is one scrape
// interval).
func (h *Histogram) exemplars(reset bool) []Exemplar {
	h.exMu.Lock()
	defer h.exMu.Unlock()
	if h.ex == nil {
		return nil
	}
	var out []Exemplar
	for i := range h.ex {
		if h.ex[i].nanos == 0 {
			continue
		}
		bucket := "+Inf"
		if i < len(h.bounds) {
			bucket = formatFloat(h.bounds[i])
		}
		out = append(out, Exemplar{
			Bucket:  bucket,
			TraceID: h.ex[i].traceID,
			Seconds: time.Duration(h.ex[i].nanos).Seconds(),
		})
		if reset {
			h.ex[i] = exemplarSlot{}
		}
	}
	return out
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Quantile estimates the q-th quantile (0 < q <= 1) in seconds by linear
// interpolation inside the bucket that contains it, the same estimate
// Prometheus' histogram_quantile computes. Returns 0 with no observations;
// observations beyond the last finite bound clamp to that bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var cum int64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= target {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (target - float64(cum)) / float64(n)
			return lo + (h.bounds[i]-lo)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// family is one named metric with a fixed label set and type.
type family struct {
	name   string
	help   string
	typ    string
	labels []string
	bounds []float64 // histogram families only

	mu       sync.RWMutex
	children map[string]*child
	order    []*child // insertion order; sorted at exposition time
}

type child struct {
	values []string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

func (f *family) child(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.RLock()
	ch := f.children[key]
	f.mu.RUnlock()
	if ch != nil {
		return ch
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if ch = f.children[key]; ch != nil {
		return ch
	}
	ch = &child{values: append([]string(nil), values...)}
	switch f.typ {
	case typeCounter:
		ch.c = &Counter{}
	case typeGauge:
		ch.g = &Gauge{}
	case typeHistogram:
		ch.h = newHistogram(f.bounds)
	}
	f.children[key] = ch
	f.order = append(f.order, ch)
	return ch
}

// Registry holds metric families and renders them as Prometheus text.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: make(map[string]*family)} }

// register returns the family with this name, creating it on first use.
// Re-registering with a different type or label arity is a programming
// error and panics.
func (r *Registry) register(name, help, typ string, labels []string, bounds []float64) *family {
	if !validMetricName(name) {
		panic("obs: invalid metric name " + name)
	}
	r.mu.RLock()
	f := r.fams[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		if f = r.fams[name]; f == nil {
			f = &family{
				name: name, help: help, typ: typ,
				labels:   append([]string(nil), labels...),
				bounds:   append([]float64(nil), bounds...),
				children: make(map[string]*child),
			}
			r.fams[name] = f
		}
		r.mu.Unlock()
	}
	if f.typ != typ || len(f.labels) != len(labels) {
		panic(fmt.Sprintf("obs: metric %s re-registered as %s/%d labels (was %s/%d)",
			name, typ, len(labels), f.typ, len(f.labels)))
	}
	return f
}

// Counter returns the unlabeled counter with this name.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, typeCounter, nil, nil).child(nil).c
}

// Gauge returns the unlabeled gauge with this name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, typeGauge, nil, nil).child(nil).g
}

// Histogram returns the unlabeled histogram with this name. Nil bounds use
// DefBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.register(name, help, typeHistogram, nil, bounds).child(nil).h
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec returns the labeled counter family with this name.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, typeCounter, labels, nil)}
}

// With returns the counter for these label values, creating it on first use.
func (v *CounterVec) With(values ...string) *Counter { return v.f.child(values).c }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec returns the labeled gauge family with this name.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, typeGauge, labels, nil)}
}

// With returns the gauge for these label values, creating it on first use.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.child(values).g }

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec returns the labeled histogram family with this name. Nil
// bounds use DefBuckets.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, typeHistogram, labels, bounds)}
}

// With returns the histogram for these label values, creating it on first use.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.child(values).h }

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// ExemplarSample is one bucket exemplar with its metric identity, as
// surfaced in /v1/stats.
type ExemplarSample struct {
	Metric  string  `json:"metric"`
	Labels  string  `json:"labels,omitempty"` // rendered {k="v",...}
	Bucket  string  `json:"bucket"`
	TraceID string  `json:"traceId"`
	Seconds float64 `json:"seconds"`
}

// Exemplars snapshots every histogram bucket exemplar in the current
// scrape window without resetting it (the exposition writer owns the
// reset).
func (r *Registry) Exemplars() []ExemplarSample {
	var out []ExemplarSample
	for _, f := range r.sortedFamilies() {
		if f.typ != typeHistogram {
			continue
		}
		f.mu.RLock()
		children := append([]*child(nil), f.order...)
		f.mu.RUnlock()
		sort.Slice(children, func(i, j int) bool {
			return labelKey(children[i].values) < labelKey(children[j].values)
		})
		for _, ch := range children {
			for _, ex := range ch.h.exemplars(false) {
				out = append(out, ExemplarSample{
					Metric:  f.name,
					Labels:  labelString(f.labels, ch.values, ""),
					Bucket:  ex.Bucket,
					TraceID: ex.TraceID,
					Seconds: ex.Seconds,
				})
			}
		}
	}
	return out
}

// sortedFamilies snapshots the families sorted by name.
func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}
