package obs

import (
	"context"
	"log/slog"
	"strconv"
	"strings"
)

// logfHandler adapts a printf-style sink (server Config.Logf, the stdlib
// log package, a test recorder) into a slog.Handler. Records render as one
// "msg key=val ..." line, so every logging style in the tree — server
// config logf, backend Logf views, and the old log.Printf fallbacks —
// funnels through one structured path and can carry rid/trace_id/span_id.
type logfHandler struct {
	logf   func(format string, args ...any)
	prefix string // pre-rendered " key=val" pairs from WithAttrs
	group  string // dotted group prefix from WithGroup
}

// NewLogfLogger wraps a printf-style sink in a structured logger. A nil
// sink discards everything (Enabled reports false, so record construction
// is skipped).
func NewLogfLogger(logf func(format string, args ...any)) *slog.Logger {
	return slog.New(&logfHandler{logf: logf})
}

func (h *logfHandler) Enabled(_ context.Context, level slog.Level) bool {
	return h.logf != nil && level >= slog.LevelInfo
}

func (h *logfHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	b.Grow(len(r.Message) + len(h.prefix) + 32)
	if r.Level >= slog.LevelWarn {
		b.WriteString(r.Level.String())
		b.WriteByte(' ')
	}
	b.WriteString(r.Message)
	b.WriteString(h.prefix)
	r.Attrs(func(a slog.Attr) bool {
		appendAttr(&b, h.group, a)
		return true
	})
	h.logf("%s", b.String())
	return nil
}

func (h *logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	var b strings.Builder
	b.WriteString(h.prefix)
	for _, a := range attrs {
		appendAttr(&b, h.group, a)
	}
	return &logfHandler{logf: h.logf, prefix: b.String(), group: h.group}
}

func (h *logfHandler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	return &logfHandler{logf: h.logf, prefix: h.prefix, group: h.group + name + "."}
}

func appendAttr(b *strings.Builder, group string, a slog.Attr) {
	if a.Value.Kind() == slog.KindGroup {
		sub := group
		if a.Key != "" {
			sub += a.Key + "."
		}
		for _, g := range a.Value.Group() {
			appendAttr(b, sub, g)
		}
		return
	}
	if a.Key == "" {
		return
	}
	b.WriteByte(' ')
	b.WriteString(group)
	b.WriteString(a.Key)
	b.WriteByte('=')
	v := a.Value.String()
	if strings.ContainsAny(v, " \t\n\"") {
		b.WriteString(strconv.Quote(v))
	} else {
		b.WriteString(v)
	}
}

// CtxAttrs returns the request-scoped identity attrs (rid, trace_id,
// span_id) found on the context, for attaching to a logger handling that
// request. Missing pieces are simply omitted.
func CtxAttrs(ctx context.Context) []slog.Attr {
	var attrs []slog.Attr
	if rid := RequestIDFrom(ctx); rid != "" {
		attrs = append(attrs, slog.String("rid", rid))
	}
	if sp := SpanFrom(ctx); sp != nil {
		attrs = append(attrs,
			slog.String("trace_id", sp.TraceIDString()),
			slog.String("span_id", sp.SpanIDString()))
	}
	return attrs
}
