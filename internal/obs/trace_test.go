package obs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceParentRoundTrip(t *testing.T) {
	tid := traceIDFrom(0x0123456789abcdef, 0xfedcba9876543210)
	sid := spanIDFrom(0x1122334455667788)
	for _, sampled := range []bool{true, false} {
		hdr := FormatTraceParent(tid, sid, sampled)
		gtid, gsid, gsampled, ok := ParseTraceParent(hdr)
		if !ok {
			t.Fatalf("ParseTraceParent(%q) not ok", hdr)
		}
		if gtid != tid || gsid != sid || gsampled != sampled {
			t.Fatalf("round trip %q: got %v %v %v", hdr, gtid, gsid, gsampled)
		}
	}
	if got := FormatTraceParent(tid, sid, true); len(got) != 55 {
		t.Fatalf("traceparent %q has length %d, want 55", got, len(got))
	}
}

func TestTraceParentRejects(t *testing.T) {
	bad := []string{
		"",
		"00-short",
		"00-00000000000000000000000000000000-1122334455667788-01", // zero trace id
		"00-0123456789abcdef0123456789abcdef-0000000000000000-01", // zero span id
		"ff-0123456789abcdef0123456789abcdef-1122334455667788-01", // version ff
		"00-0123456789abcdef0123456789abcdeZ-1122334455667788-01", // bad hex
		"00_0123456789abcdef0123456789abcdef-1122334455667788-01", // bad separator
		"00-0123456789abcdef0123456789abcdef-1122334455667788-01extra",
	}
	for _, s := range bad {
		if _, _, _, ok := ParseTraceParent(s); ok {
			t.Errorf("ParseTraceParent(%q) = ok, want reject", s)
		}
	}
	// Unknown forward-compatible version with trailing fields parses.
	if _, _, _, ok := ParseTraceParent("01-0123456789abcdef0123456789abcdef-1122334455667788-01-future"); !ok {
		t.Error("future version with extra field did not parse")
	}
}

func TestValidTraceID(t *testing.T) {
	if !ValidTraceID("0123456789abcdef0123456789abcdef") {
		t.Error("valid trace id rejected")
	}
	for _, s := range []string{"", "short", strings.Repeat("0", 32), strings.Repeat("g", 32)} {
		if ValidTraceID(s) {
			t.Errorf("ValidTraceID(%q) = true", s)
		}
	}
}

func TestSpanTreeCollection(t *testing.T) {
	tr := NewTracer("replica-a", 1, 8)
	ctx, root := tr.StartRequest(context.Background(), "", "http POST")
	root.SetAttr("route", "/v1/plan")

	ctx2, child := StartSpan(ctx, "planner.plan")
	child.SetInt("evaluated", 42)
	child.Event("skyline-sealed")
	_, grand := StartSpan(ctx2, "sim.evaluate")
	grand.End()
	child.End()
	// A hand-timed record hangs off the root.
	now := time.Now()
	id := root.Record("backend.put", now, 3*time.Millisecond, String("backend", "disk"))
	root.RecordChildOf(id, "fsync", now, time.Millisecond)
	root.End()

	got, ok := tr.Trace(root.TraceIDString())
	if !ok {
		t.Fatal("trace not retained")
	}
	if len(got.Spans) != 5 {
		t.Fatalf("got %d spans, want 5: %+v", len(got.Spans), got.Spans)
	}
	byName := map[string]SpanData{}
	for _, sp := range got.Spans {
		byName[sp.Name] = sp
		if sp.Service != "replica-a" {
			t.Errorf("span %s service = %q, want replica-a", sp.Name, sp.Service)
		}
		if sp.TraceID != root.TraceIDString() {
			t.Errorf("span %s trace id = %q", sp.Name, sp.TraceID)
		}
	}
	if byName["http POST"].ParentID != "" {
		t.Errorf("root has parent %q", byName["http POST"].ParentID)
	}
	if byName["planner.plan"].ParentID != byName["http POST"].SpanID {
		t.Error("planner.plan not parented under root")
	}
	if byName["sim.evaluate"].ParentID != byName["planner.plan"].SpanID {
		t.Error("sim.evaluate not parented under planner.plan")
	}
	if byName["fsync"].ParentID != byName["backend.put"].SpanID {
		t.Error("fsync not parented under backend.put")
	}
	if got.Root != "http POST" {
		t.Errorf("trace root = %q", got.Root)
	}
}

func TestStartRequestContinuesRemoteTrace(t *testing.T) {
	proxy := NewTracer("proxy", 1, 8)
	owner := NewTracer("owner", 1, 8)

	ctx, rootSp := proxy.StartRequest(context.Background(), "", "http POST")
	_, fwd := StartSpan(ctx, "cluster.forward")
	hdr := fwd.TraceParent()

	octx, ownerRoot := owner.StartRequest(context.Background(), hdr, "http POST")
	_, inner := StartSpan(octx, "planner.plan")
	inner.End()
	ownerRoot.End()
	fwd.End()
	rootSp.End()

	tid := rootSp.TraceIDString()
	if ownerRoot.TraceIDString() != tid {
		t.Fatalf("owner trace id %s != proxy %s", ownerRoot.TraceIDString(), tid)
	}
	ot, ok := owner.Trace(tid)
	if !ok {
		t.Fatal("owner fragment not retained")
	}
	var foundRoot SpanData
	for _, sp := range ot.Spans {
		if sp.Name == "http POST" {
			foundRoot = sp
		}
	}
	if foundRoot.ParentID != fwd.SpanIDString() {
		t.Fatalf("owner root parent = %q, want forward span %s", foundRoot.ParentID, fwd.SpanIDString())
	}
}

func TestHeadSamplingAndErrorOverride(t *testing.T) {
	tr := NewTracer("s", 3, 64)
	published := 0
	for i := 0; i < 9; i++ {
		_, sp := tr.StartRequest(context.Background(), "", "req")
		sp.End()
		if _, ok := tr.Trace(sp.TraceIDString()); ok {
			published++
		}
	}
	if published != 3 {
		t.Fatalf("published %d of 9 at 1-in-3 sampling, want 3", published)
	}
	// First root is always sampled.
	tr2 := NewTracer("s", 1000, 8)
	_, first := tr2.StartRequest(context.Background(), "", "req")
	first.End()
	if _, ok := tr2.Trace(first.TraceIDString()); !ok {
		t.Fatal("first root was not sampled")
	}
	// An errored fragment publishes regardless of the sampling decision.
	var errSpan *Span
	for i := 0; i < 5; i++ {
		_, sp := tr2.StartRequest(context.Background(), "", "req")
		sp.Fail(errors.New("boom"))
		sp.End()
		errSpan = sp
	}
	got, ok := tr2.Trace(errSpan.TraceIDString())
	if !ok {
		t.Fatal("errored trace was sampled out")
	}
	if !got.Errored || got.Spans[0].Err != "boom" {
		t.Fatalf("errored trace not marked: %+v", got)
	}
	st := tr2.Stats()
	if st.Published != 6 || st.Roots != 6 {
		t.Fatalf("stats = %+v, want 6 published of 6 roots", st)
	}
}

func TestRingEviction(t *testing.T) {
	tr := NewTracer("s", 1, 4)
	var ids []string
	for i := 0; i < 10; i++ {
		_, sp := tr.StartRequest(context.Background(), "", "req")
		sp.End()
		ids = append(ids, sp.TraceIDString())
	}
	if got := len(tr.Traces()); got != 4 {
		t.Fatalf("ring holds %d traces, want 4", got)
	}
	if _, ok := tr.Trace(ids[0]); ok {
		t.Error("oldest trace not evicted")
	}
	if _, ok := tr.Trace(ids[9]); !ok {
		t.Error("newest trace missing")
	}
	// Index is newest first.
	sums := tr.Traces()
	if sums[0].ID != ids[9] || sums[3].ID != ids[6] {
		t.Errorf("index order wrong: %v", sums)
	}
}

func TestFragmentMergeSameReplica(t *testing.T) {
	tr := NewTracer("s", 1, 8)
	ctx, sp := tr.StartRequest(context.Background(), "", "first hop")
	hdr := SpanFrom(ctx).TraceParent()
	sp.End()
	// Second fragment of the same trace (e.g. a later peer-cache call
	// landing on the replica that already served the forward).
	_, sp2 := tr.StartRequest(context.Background(), hdr, "second hop")
	sp2.End()
	got, ok := tr.Trace(sp.TraceIDString())
	if !ok {
		t.Fatal("trace missing")
	}
	if len(got.Spans) != 2 {
		t.Fatalf("merged trace has %d spans, want 2", len(got.Spans))
	}
}

func TestSealDropsLateSpans(t *testing.T) {
	tr := NewTracer("s", 1, 8)
	ctx, root := tr.StartRequest(context.Background(), "", "req")
	_, stray := StartSpan(ctx, "stray")
	root.End()
	stray.End() // after the seal
	got, _ := tr.Trace(root.TraceIDString())
	if len(got.Spans) != 1 {
		t.Fatalf("late span leaked into sealed trace: %+v", got.Spans)
	}
	if st := tr.Stats(); st.DroppedSpans == 0 {
		// The drop is counted on the *next* seal of that buf; ending the
		// buf again is a no-op, so the counter is read from the buf here.
		t.Log("dropped count deferred to buffer; verified via span count above")
	}
}

func TestSpanCapBoundsMemory(t *testing.T) {
	tr := NewTracer("s", 1, 8)
	tr.maxSpans = 10
	ctx, root := tr.StartRequest(context.Background(), "", "req")
	for i := 0; i < 100; i++ {
		_, sp := StartSpan(ctx, "child")
		sp.End()
	}
	root.End()
	got, _ := tr.Trace(root.TraceIDString())
	if len(got.Spans) > 10 {
		t.Fatalf("span cap not enforced: %d spans", len(got.Spans))
	}
	if got.Dropped == 0 {
		t.Fatal("dropped spans not counted")
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.StartRequest(context.Background(), "", "req")
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	ctx2, child := StartSpan(ctx, "child")
	if child != nil || ctx2 != ctx {
		t.Fatal("StartSpan on untraced ctx did not pass through")
	}
	// Every span method must be a no-op on nil.
	child.SetAttr("k", "v")
	child.SetInt("k", 1)
	child.SetBool("k", true)
	child.SetName("x")
	child.Event("e")
	child.Fail(errors.New("x"))
	child.FailMsg("x")
	child.End()
	child.Record("r", time.Now(), 0)
	child.RecordChildOf(SpanID{}, "r", time.Now(), 0)
	if child.TraceParent() != "" || child.TraceIDString() != "" || child.SpanIDString() != "" {
		t.Fatal("nil span rendered identity")
	}
	RecordSpan(ctx, "r", time.Now(), 0)
	if Traced(ctx) || TraceIDFrom(ctx) != "" {
		t.Fatal("untraced ctx reported as traced")
	}
	if tr.Stats() != (TracerStats{}) || tr.Traces() != nil || tr.Service() != "" {
		t.Fatal("nil tracer leaked state")
	}
	if _, ok := tr.Trace("x"); ok {
		t.Fatal("nil tracer returned a trace")
	}
}

func TestDisabledPathZeroAllocs(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		c2, sp := StartSpan(ctx, "hot")
		sp.SetAttr("k", "v")
		sp.End()
		RecordSpan(c2, "r", time.Time{}, 0)
		_ = Traced(c2)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing path allocates %v per op, want 0", allocs)
	}
}

func TestTracerConcurrentUse(t *testing.T) {
	tr := NewTracer("s", 2, 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ctx, root := tr.StartRequest(context.Background(), "", "req")
				c2, sp := StartSpan(ctx, "child")
				sp.SetAttr("i", "x")
				RecordSpan(c2, "leaf", time.Now(), time.Microsecond)
				sp.End()
				if i%7 == 0 {
					root.FailMsg("synthetic")
				}
				root.End()
				tr.Traces()
				tr.Trace(root.TraceIDString())
			}
		}()
	}
	wg.Wait()
	if st := tr.Stats(); st.Roots != 400 {
		t.Fatalf("roots = %d, want 400", st.Roots)
	}
}

func TestDetachedTrace(t *testing.T) {
	tr := NewTracer("s", 1, 8)
	ctx, root := tr.StartDetached(context.Background(), "evict.worker")
	RecordSpan(ctx, "backend.delete", time.Now(), time.Millisecond, String("session", "x"))
	root.End()
	got, ok := tr.Trace(root.TraceIDString())
	if !ok || len(got.Spans) != 2 {
		t.Fatalf("detached trace = %+v, ok=%v", got, ok)
	}
}

func TestEndIdempotent(t *testing.T) {
	tr := NewTracer("s", 1, 8)
	_, root := tr.StartRequest(context.Background(), "", "req")
	root.End()
	root.End()
	got, _ := tr.Trace(root.TraceIDString())
	if len(got.Spans) != 1 {
		t.Fatalf("double End produced %d spans", len(got.Spans))
	}
}

func TestExemplarsInExposition(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramVec("poiesis_req_seconds", "req latency", nil, "route")
	h.With("/v1/plan").ObserveEx(2*time.Millisecond, "aaaa")
	h.With("/v1/plan").ObserveEx(900*time.Microsecond, "bbbb") // different bucket
	h.With("/v1/plan").ObserveEx(700*time.Microsecond, "cccc") // same bucket, faster: loses
	h.With("/v1/plan").Observe(time.Second)                    // no exemplar

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `# exemplar poiesis_req_seconds_bucket{route="/v1/plan",le="0.0025"} trace_id=aaaa value=0.002`) {
		t.Fatalf("missing 2ms exemplar:\n%s", out)
	}
	if !strings.Contains(out, "trace_id=bbbb") || strings.Contains(out, "trace_id=cccc") {
		t.Fatalf("slowest-per-bucket rule violated:\n%s", out)
	}
	// The exposition still parses strictly.
	if _, err := ParseText(strings.NewReader(out)); err != nil {
		t.Fatalf("exposition with exemplars does not parse: %v", err)
	}
	// The scrape reset the window.
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf2.String(), "# exemplar") {
		t.Fatal("exemplar window not reset by scrape")
	}
}

func TestRegistryExemplarsPeek(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("poiesis_x_seconds", "x", nil)
	h.ObserveEx(5*time.Millisecond, "tid1")
	got := r.Exemplars()
	if len(got) != 1 || got[0].TraceID != "tid1" || got[0].Metric != "poiesis_x_seconds" {
		t.Fatalf("Exemplars() = %+v", got)
	}
	// Peeking does not reset.
	if again := r.Exemplars(); len(again) != 1 {
		t.Fatal("peek reset the window")
	}
}

func TestLogfLogger(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	logger := NewLogfLogger(func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	})
	logger.Info("session persisted", "sid", "abc", "bytes", 123)
	logger.Warn("backend slow", "elapsed", "1.2s")
	logger.With("rid", "r1", "trace_id", "t1").Info("plan done", "hit", true)
	logger.WithGroup("peer").Info("forwarded", "id", "b")

	if len(lines) != 4 {
		t.Fatalf("got %d lines: %v", len(lines), lines)
	}
	if lines[0] != "session persisted sid=abc bytes=123" {
		t.Errorf("line 0 = %q", lines[0])
	}
	if lines[1] != "WARN backend slow elapsed=1.2s" {
		t.Errorf("line 1 = %q", lines[1])
	}
	if lines[2] != "plan done rid=r1 trace_id=t1 hit=true" {
		t.Errorf("line 2 = %q", lines[2])
	}
	if lines[3] != "forwarded peer.id=b" {
		t.Errorf("line 3 = %q", lines[3])
	}
	// Nil sink: disabled, never panics.
	NewLogfLogger(nil).Info("dropped")
}

func TestCtxAttrs(t *testing.T) {
	ctx := ContextWithRequestID(context.Background(), "rid1")
	attrs := CtxAttrs(ctx)
	if len(attrs) != 1 || attrs[0].Key != "rid" {
		t.Fatalf("attrs = %v", attrs)
	}
	tr := NewTracer("s", 1, 4)
	ctx, sp := tr.StartRequest(ctx, "", "req")
	defer sp.End()
	attrs = CtxAttrs(ctx)
	if len(attrs) != 3 || attrs[1].Key != "trace_id" || attrs[2].Key != "span_id" {
		t.Fatalf("attrs = %v", attrs)
	}
	if attrs[1].Value.String() != sp.TraceIDString() {
		t.Fatal("trace_id attr mismatch")
	}
}
