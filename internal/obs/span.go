package obs

import (
	"context"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Values are plain strings so
// spans serialize without reflection; use String/Int to build them.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Value: itoa(v)} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr {
	if v {
		return Attr{Key: k, Value: "true"}
	}
	return Attr{Key: k, Value: "false"}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := v < 0
	if neg {
		v = -v
	}
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// SpanEvent is a point-in-time marker inside a span.
type SpanEvent struct {
	Name string    `json:"name"`
	At   time.Time `json:"at"`
}

// Span is one node of a trace tree. The zero value is not usable; spans
// come from Tracer.StartRequest/StartDetached or StartSpan. All methods
// are safe on a nil receiver — instrumented code never needs to check
// whether tracing is enabled before annotating.
type Span struct {
	tr      *Tracer
	buf     *traceBuf
	traceID TraceID
	spanID  SpanID
	parent  SpanID
	name    string
	// tidStr is the trace ID pre-rendered as hex: it is needed several
	// times per request (response header, exemplar, every SpanData), so
	// the root renders it once and children inherit it.
	tidStr  string
	start   time.Time
	sampled bool
	// localRoot marks the span whose End seals this process's fragment of
	// the trace and hands it to the collector.
	localRoot bool

	mu     sync.Mutex
	attrs  []Attr
	events []SpanEvent
	errMsg string
	ended  bool
}

// TraceID returns the trace this span belongs to, or "" on a nil span.
func (s *Span) TraceIDString() string {
	if s == nil {
		return ""
	}
	if s.tidStr != "" {
		return s.tidStr
	}
	return s.traceID.String()
}

// TraceParent renders the traceparent header value that makes a remote
// callee's spans children of this span. Empty on a nil span.
func (s *Span) TraceParent() string {
	if s == nil {
		return ""
	}
	return FormatTraceParent(s.traceID, s.spanID, s.sampled)
}

// SpanIDString returns this span's ID, or "" on a nil span.
func (s *Span) SpanIDString() string {
	if s == nil {
		return ""
	}
	return s.spanID.String()
}

// SetName renames the span (e.g. once the route pattern is known).
func (s *Span) SetName(name string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.name = name
	s.mu.Unlock()
}

// SetAttr attaches a string attribute.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: k, Value: v})
	s.mu.Unlock()
}

// SetInt attaches an integer attribute.
func (s *Span) SetInt(k string, v int64) {
	if s == nil {
		return
	}
	s.SetAttr(k, itoa(v))
}

// SetBool attaches a boolean attribute.
func (s *Span) SetBool(k string, v bool) {
	if s == nil {
		return
	}
	if v {
		s.SetAttr(k, "true")
	} else {
		s.SetAttr(k, "false")
	}
}

// Event records a point-in-time marker.
func (s *Span) Event(name string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	//lint:ignore nodeterminism span events are wall-clock timestamps by definition, never fed to oracles
	s.events = append(s.events, SpanEvent{Name: name, At: time.Now()})
	s.mu.Unlock()
}

// Fail marks the span (and therefore the whole trace fragment) as errored.
// An errored fragment is always published, overriding head sampling, so
// failures are never lost to the sample rate.
func (s *Span) Fail(err error) {
	if s == nil || err == nil {
		return
	}
	s.FailMsg(err.Error())
}

// FailMsg is Fail for callers that have a message but no error value.
func (s *Span) FailMsg(msg string) {
	if s == nil || msg == "" {
		return
	}
	s.mu.Lock()
	if s.errMsg == "" {
		s.errMsg = msg
	}
	s.mu.Unlock()
	s.buf.noteError()
}

// End completes the span and files it into the trace buffer. Ending the
// local root seals the fragment and publishes it to the collector (subject
// to sampling and the error override). End is idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	//lint:ignore nodeterminism span durations are wall-clock by definition, never fed to oracles
	end := time.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	sd := SpanData{
		TraceID:  s.TraceIDString(),
		SpanID:   s.spanID.String(),
		Name:     s.name,
		Start:    s.start,
		Duration: end.Sub(s.start),
		Attrs:    s.attrs,
		Events:   s.events,
		Err:      s.errMsg,
	}
	if !s.parent.IsZero() {
		sd.ParentID = s.parent.String()
	}
	s.mu.Unlock()
	s.buf.add(sd)
	if s.localRoot {
		s.tr.seal(s.buf, s.traceID, s.sampled)
	}
}

// Record files an already-measured operation as a completed child span of
// s and returns its ID so further children can hang off it via
// RecordChildOf. This is the zero-goroutine-overhead path for code that
// already tracks start/duration itself (stage clocks, backend timings).
func (s *Span) Record(name string, start time.Time, d time.Duration, attrs ...Attr) SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.RecordChildOf(s.spanID, name, start, d, attrs...)
}

// RecordChildOf files a completed span under an arbitrary parent span ID
// within the same trace.
func (s *Span) RecordChildOf(parent SpanID, name string, start time.Time, d time.Duration, attrs ...Attr) SpanID {
	if s == nil {
		return SpanID{}
	}
	id := s.tr.nextSpanID()
	s.buf.add(SpanData{
		TraceID:  s.TraceIDString(),
		SpanID:   id.String(),
		ParentID: parent.String(),
		Name:     name,
		Start:    start,
		Duration: d,
		Attrs:    attrs,
	})
	return id
}

type spanKey struct{}

// ContextWithSpan attaches a span to the context. Attaching nil returns
// the context unchanged.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFrom returns the span attached to the context, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// Traced reports whether the context carries an active span. Hot paths
// use it to skip attribute construction entirely when tracing is off.
func Traced(ctx context.Context) bool { return SpanFrom(ctx) != nil }

// TraceIDFrom returns the trace ID of the context's span, or "".
func TraceIDFrom(ctx context.Context) string { return SpanFrom(ctx).TraceIDString() }

// StartSpan opens a child span under the context's current span. When the
// context carries no span (tracing disabled, or an uninstrumented entry
// point) it returns the context unchanged and a nil span: the whole call
// tree below stays allocation-free.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFrom(ctx)
	if parent == nil {
		return ctx, nil
	}
	sp := &Span{
		tr:      parent.tr,
		buf:     parent.buf,
		traceID: parent.traceID,
		tidStr:  parent.tidStr,
		spanID:  parent.tr.nextSpanID(),
		parent:  parent.spanID,
		name:    name,
		//lint:ignore nodeterminism span start times are wall-clock by definition, never fed to oracles
		start:   time.Now(),
		sampled: parent.sampled,
	}
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// RecordSpan files an already-measured operation as a completed child of
// the context's current span; a no-op without one. Callers that build
// attrs should guard with Traced(ctx) to keep the untraced path free.
func RecordSpan(ctx context.Context, name string, start time.Time, d time.Duration, attrs ...Attr) {
	if sp := SpanFrom(ctx); sp != nil {
		sp.Record(name, start, d, attrs...)
	}
}
