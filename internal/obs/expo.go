package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4). Families are sorted by name and
// children by label values, so output is deterministic for a given state —
// tests can diff it and scrapes are stable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		f.mu.RLock()
		children := append([]*child(nil), f.order...)
		f.mu.RUnlock()
		if len(children) == 0 {
			continue
		}
		sort.Slice(children, func(i, j int) bool {
			return labelKey(children[i].values) < labelKey(children[j].values)
		})
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, ch := range children {
			base := labelString(f.labels, ch.values, "")
			switch f.typ {
			case typeCounter:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, base, ch.c.Value())
			case typeGauge:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, base, ch.g.Value())
			case typeHistogram:
				h := ch.h
				var cum int64
				for i, bound := range h.bounds {
					cum += h.counts[i].Load()
					le := labelString(f.labels, ch.values, formatFloat(bound))
					fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, le, cum)
				}
				cum += h.counts[len(h.bounds)].Load()
				fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, labelString(f.labels, ch.values, "+Inf"), cum)
				fmt.Fprintf(bw, "%s_sum%s %s\n", f.name, base, formatFloat(h.Sum().Seconds()))
				fmt.Fprintf(bw, "%s_count%s %d\n", f.name, base, h.Count())
				// Exemplar comments tie buckets to the slowest trace seen
				// since the previous scrape. Comment lines are ignored by
				// ParseText (only # TYPE is structural), so the exposition
				// stays parseable by strict consumers.
				for _, ex := range h.exemplars(true) {
					fmt.Fprintf(bw, "# exemplar %s_bucket%s trace_id=%s value=%s\n",
						f.name, labelString(f.labels, ch.values, ex.Bucket), ex.TraceID, formatFloat(ex.Seconds))
				}
			}
		}
	}
	return bw.Flush()
}

func labelKey(values []string) string { return strings.Join(values, "\x00") }

// labelString renders {k="v",...}; le is the extra histogram bucket label
// ("" for none). Returns "" when there are no labels at all.
func labelString(names, values []string, le string) string {
	if len(names) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if le != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, "\\", `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// Sample is one parsed exposition line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Key returns the sample identity as name{k="v",...} with labels sorted,
// convenient for map lookups in tests.
func (s Sample) Key() string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, s.Labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// ParseText parses Prometheus text exposition and returns every sample. It
// is strict about what the service itself emits: every sample must belong
// to a family announced by a preceding # TYPE line (histogram samples via
// their _bucket/_sum/_count suffixes), label syntax must be well-formed,
// and values must parse as floats. Used by the exposition round-trip tests
// and the CI scrape smoke check.
func ParseText(r io.Reader) ([]Sample, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	types := make(map[string]string)
	var samples []Sample
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				name, typ := fields[2], strings.TrimSpace(fields[3])
				switch typ {
				case typeCounter, typeGauge, typeHistogram, "summary", "untyped":
					types[name] = typ
				default:
					return nil, fmt.Errorf("line %d: unknown TYPE %q", lineNo, typ)
				}
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if familyOf(s.Name, types) == "" {
			return nil, fmt.Errorf("line %d: sample %s has no preceding # TYPE", lineNo, s.Name)
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return samples, nil
}

// familyOf resolves a sample name to its announced family, accounting for
// histogram/summary suffixes.
func familyOf(name string, types map[string]string) string {
	if _, ok := types[name]; ok {
		return name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if t, ok := types[base]; ok && (t == typeHistogram || t == "summary") {
				return base
			}
		}
	}
	return ""
}

func parseSample(line string) (Sample, error) {
	s := Sample{}
	rest := line
	// Metric name runs up to '{' or whitespace.
	end := strings.IndexAny(rest, "{ \t")
	if end < 0 {
		return s, fmt.Errorf("no value in %q", line)
	}
	s.Name = rest[:end]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[end:]
	if rest[0] == '{' {
		// The closing brace must be found outside quoted values: label
		// values legitimately contain '}' (mux route patterns like
		// "/v1/sessions/{id}/plan").
		close := closingBrace(rest)
		if close < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[1:close])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[close+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // value [timestamp]
		return s, fmt.Errorf("malformed sample %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", fields[0], err)
	}
	s.Value = v
	return s, nil
}

// closingBrace returns the index of the '}' that closes the label set
// opened at s[0], skipping braces inside quoted values (and their escapes);
// -1 when the set never closes.
func closingBrace(s string) int {
	inQuote := false
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++ // skip the escaped character
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return i
			}
		}
	}
	return -1
}

func parseLabels(body string) (map[string]string, error) {
	labels := make(map[string]string)
	for body != "" {
		eq := strings.IndexByte(body, '=')
		if eq < 0 {
			return nil, fmt.Errorf("malformed label in %q", body)
		}
		name := strings.TrimSpace(body[:eq])
		if !validMetricName(name) {
			return nil, fmt.Errorf("invalid label name %q", name)
		}
		body = body[eq+1:]
		if body == "" || body[0] != '"' {
			return nil, fmt.Errorf("label %s: value not quoted", name)
		}
		body = body[1:]
		var b strings.Builder
		for {
			if body == "" {
				return nil, fmt.Errorf("label %s: unterminated value", name)
			}
			c := body[0]
			body = body[1:]
			if c == '"' {
				break
			}
			if c == '\\' {
				if body == "" {
					return nil, fmt.Errorf("label %s: dangling escape", name)
				}
				switch body[0] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return nil, fmt.Errorf("label %s: bad escape \\%c", name, body[0])
				}
				body = body[1:]
				continue
			}
			b.WriteByte(c)
		}
		labels[name] = b.String()
		body = strings.TrimPrefix(strings.TrimSpace(body), ",")
		body = strings.TrimSpace(body)
	}
	return labels, nil
}
