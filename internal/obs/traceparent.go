package obs

import (
	"encoding/binary"
	"encoding/hex"
)

// TraceParentHeader is the W3C Trace Context header carrying the trace ID,
// parent span ID, and sampling decision across process boundaries. The
// server stamps it on inbound requests before forwarding so a plan that
// hops to its ring owner renders as one tree, and the intra-cluster cache
// client sets it explicitly on /v1/cache calls.
const TraceParentHeader = "traceparent"

// TraceIDHeader echoes the trace ID of the request's root span on every
// response, so clients (and the load harness) can tie an observed latency
// back to a server-side span tree without parsing traceparent.
const TraceIDHeader = "X-Poiesis-Trace-ID"

// TraceID identifies one end-to-end trace (16 bytes, rendered as 32 hex).
type TraceID [16]byte

// SpanID identifies one span within a trace (8 bytes, rendered as 16 hex).
type SpanID [8]byte

// IsZero reports whether the ID is all zeros (invalid per W3C trace
// context).
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is all zeros.
func (s SpanID) IsZero() bool { return s == SpanID{} }

func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// FormatTraceParent renders a version-00 traceparent header value:
// 00-<32 hex trace id>-<16 hex span id>-<2 hex flags>, flags bit 0 being
// the sampled bit.
func FormatTraceParent(tid TraceID, sid SpanID, sampled bool) string {
	b := make([]byte, 0, 55)
	b = append(b, '0', '0', '-')
	b = hex.AppendEncode(b, tid[:])
	b = append(b, '-')
	b = hex.AppendEncode(b, sid[:])
	if sampled {
		b = append(b, '-', '0', '1')
	} else {
		b = append(b, '-', '0', '0')
	}
	return string(b)
}

// ParseTraceParent parses a traceparent header value. It accepts any
// version except ff (per the W3C spec, unknown versions parse as version
// 00 if the shape matches) and rejects all-zero trace or span IDs.
func ParseTraceParent(s string) (tid TraceID, sid SpanID, sampled bool, ok bool) {
	if len(s) < 55 {
		return tid, sid, false, false
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return tid, sid, false, false
	}
	if s[0] == 'f' && s[1] == 'f' {
		return tid, sid, false, false
	}
	if len(s) > 55 && (s[0] == '0' && s[1] == '0' || s[55] != '-') {
		return tid, sid, false, false
	}
	if _, err := hex.Decode(tid[:], []byte(s[3:35])); err != nil {
		return tid, sid, false, false
	}
	if _, err := hex.Decode(sid[:], []byte(s[36:52])); err != nil {
		return tid, sid, false, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(s[53:55])); err != nil {
		return tid, sid, false, false
	}
	if tid.IsZero() || sid.IsZero() {
		return tid, sid, false, false
	}
	return tid, sid, flags[0]&1 != 0, true
}

// ValidTraceID reports whether s is a well-formed 32-hex-char trace ID,
// safe to use in URLs and log lines.
func ValidTraceID(s string) bool {
	if len(s) != 32 {
		return false
	}
	var t TraceID
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return false
	}
	return !t.IsZero()
}

// splitmix64 is the SplitMix64 output function: a cheap, well-mixed
// bijection used to derive span/trace IDs from an atomic counter seeded
// once from crypto/rand, avoiding a rand syscall per span.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func traceIDFrom(a, b uint64) TraceID {
	var t TraceID
	binary.BigEndian.PutUint64(t[:8], a)
	binary.BigEndian.PutUint64(t[8:], b)
	if t.IsZero() {
		t[15] = 1
	}
	return t
}

func spanIDFrom(a uint64) SpanID {
	var s SpanID
	binary.BigEndian.PutUint64(s[:], a)
	if s.IsZero() {
		s[7] = 1
	}
	return s
}
