package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"runtime/debug"
)

// RequestIDHeader carries the request ID across the wire: the server echoes
// it on every response, `cluster.Forward` propagates it to the session owner
// (headers are cloned wholesale), and the intra-cluster cache client stamps
// it on /v1/cache calls, so one slow request is greppable on every replica
// it touched.
const RequestIDHeader = "X-Poiesis-Request-ID"

// NewRequestID returns a fresh 16-hex-char random request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a zero ID is
		// still a valid (if non-unique) trace handle.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ValidRequestID reports whether a client-supplied ID is safe to adopt:
// non-empty, bounded, and limited to characters that cannot corrupt log
// lines or headers.
func ValidRequestID(s string) bool {
	if s == "" || len(s) > 64 {
		return false
	}
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return false
		}
	}
	return true
}

type requestIDKey struct{}

// ContextWithRequestID attaches a request ID to the context.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom returns the request ID attached to the context, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// BuildInfo returns the module version and VCS revision baked into the
// binary by the go toolchain. Either may be "unknown" for test binaries or
// builds outside a checkout; the revision is truncated to 12 characters.
func BuildInfo() (version, revision string) {
	version, revision = "unknown", "unknown"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return version, revision
	}
	if v := bi.Main.Version; v != "" {
		version = v
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && s.Value != "" {
			revision = s.Value
			if len(revision) > 12 {
				revision = revision[:12]
			}
		}
	}
	return version, revision
}
