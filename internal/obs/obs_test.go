package obs

import (
	"bytes"
	"context"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("poiesis_test_total", "a test counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("poiesis_test_total", "a test counter"); again != c {
		t.Fatal("re-registering returned a different counter")
	}
	g := r.Gauge("poiesis_test_gauge", "a test gauge")
	g.Set(7)
	g.Dec()
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %d, want 6", got)
	}
}

func TestCounterVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("poiesis_ops_total", "ops", "route", "code")
	v.With("/v1/plan", "2xx").Add(3)
	v.With("/v1/plan", "5xx").Inc()
	if got := v.With("/v1/plan", "2xx").Value(); got != 3 {
		t.Fatalf("labeled counter = %d, want 3", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity did not panic")
		}
	}()
	v.With("only-one")
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram(nil)
	// 100 observations spread uniformly inside the 1ms..2.5ms bucket.
	for i := 0; i < 100; i++ {
		h.Observe(2 * time.Millisecond)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	p50 := h.Quantile(0.5)
	if p50 < 0.001 || p50 > 0.0025 {
		t.Fatalf("p50 = %v, want within (0.001, 0.0025]", p50)
	}
	// Mixed distribution: p99 should land in a higher bucket than p50.
	h2 := newHistogram(nil)
	for i := 0; i < 99; i++ {
		h2.Observe(time.Millisecond)
	}
	h2.Observe(5 * time.Second)
	if p50, p99 := h2.Quantile(0.5), h2.Quantile(0.99); p99 <= p50 {
		t.Fatalf("p99 %v <= p50 %v", p99, p50)
	}
	if h.Quantile(1.0) > DefBuckets[len(DefBuckets)-1] {
		t.Fatal("quantile exceeded last finite bound")
	}
	var empty Histogram
	if got := (&empty).Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := newHistogram([]float64{0.001, 0.01})
	h.Observe(time.Minute) // beyond the last bound
	if got := h.Quantile(0.99); got != 0.01 {
		t.Fatalf("overflow quantile = %v, want clamp to 0.01", got)
	}
}

func TestWriteAndParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("poiesis_plans_total", "plans").Add(12)
	r.GaugeVec("poiesis_depth", "queue depth", "queue").With(`we"ird\lab` + "\n").Set(-3)
	hv := r.HistogramVec("poiesis_lat_seconds", "latency", []float64{0.001, 0.1}, "route")
	hv.With("/v1/plan").Observe(5 * time.Millisecond)
	hv.With("/v1/plan").Observe(50 * time.Millisecond)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE poiesis_plans_total counter",
		"poiesis_plans_total 12",
		"# TYPE poiesis_lat_seconds histogram",
		`poiesis_lat_seconds_bucket{route="/v1/plan",le="+Inf"} 2`,
		`poiesis_lat_seconds_count{route="/v1/plan"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	samples, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseText: %v\n%s", err, text)
	}
	byKey := make(map[string]float64)
	for _, s := range samples {
		byKey[s.Key()] = s.Value
	}
	if byKey["poiesis_plans_total"] != 12 {
		t.Fatalf("parsed counter = %v", byKey["poiesis_plans_total"])
	}
	wantGauge := `poiesis_depth{queue="we\"ird\\lab` + "\n" + `"}`
	if got := byKey[Sample{Name: "poiesis_depth", Labels: map[string]string{"queue": "we\"ird\\lab\n"}}.Key()]; got != -3 {
		t.Fatalf("escaped label round-trip failed (%q): got %v, keys %v", wantGauge, got, byKey)
	}
	if byKey[`poiesis_lat_seconds_bucket{le="+Inf",route="/v1/plan"}`] != 2 {
		t.Fatalf("histogram +Inf bucket missing: %v", byKey)
	}
	sum := byKey[`poiesis_lat_seconds_sum{route="/v1/plan"}`]
	if math.Abs(sum-0.055) > 1e-9 {
		t.Fatalf("histogram sum = %v, want 0.055", sum)
	}

	// Deterministic output: a second render is byte-identical.
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != text {
		t.Fatal("exposition not deterministic")
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"orphan_metric 1\n",                           // no TYPE
		"# TYPE m counter\nm{x=\"unterminated} 1\n",   // bad label quoting
		"# TYPE m counter\nm notanumber\n",            // bad value
		"# TYPE m sideways\nm 1\n",                    // unknown type
		"# TYPE m counter\n0bad{x=\"y\"} 1\n",         // invalid name
		"# TYPE m counter\nm{x=\"a\\q\"} 1\n",         // bad escape
		"# TYPE m histogram\nm_quantile{q=\"1\"} 1\n", // not a histogram suffix
		"# TYPE m counter\nm 1 2 3\n",                 // trailing junk
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText accepted %q", bad)
		}
	}
	// Timestamps are part of the format and accepted.
	if _, err := ParseText(strings.NewReader("# TYPE m counter\nm 1 1712000000\n")); err != nil {
		t.Errorf("timestamped sample rejected: %v", err)
	}
	// Braces inside quoted values must not terminate the label set: HTTP
	// route labels carry mux patterns like /v1/sessions/{id}/plan.
	in := "# TYPE m counter\nm{route=\"POST /v1/sessions/{id}/plan\"} 3\n"
	samples, err := ParseText(strings.NewReader(in))
	if err != nil {
		t.Fatalf("braced label value rejected: %v", err)
	}
	if len(samples) != 1 || samples[0].Labels["route"] != "POST /v1/sessions/{id}/plan" {
		t.Errorf("braced label value mangled: %+v", samples)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.CounterVec("poiesis_conc_total", "c", "worker").With("w").Inc()
				r.HistogramVec("poiesis_conc_seconds", "h", nil, "worker").With("w").Observe(time.Millisecond)
				r.Gauge("poiesis_conc_gauge", "g").Add(1)
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				var buf bytes.Buffer
				if err := r.WritePrometheus(&buf); err != nil {
					t.Error(err)
					return
				}
				if _, err := ParseText(&buf); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := r.CounterVec("poiesis_conc_total", "c", "worker").With("w").Value(); got != 8*500 {
		t.Fatalf("concurrent counter = %d, want %d", got, 8*500)
	}
}

func TestRequestID(t *testing.T) {
	id := NewRequestID()
	if len(id) != 16 || !ValidRequestID(id) {
		t.Fatalf("NewRequestID() = %q", id)
	}
	if id2 := NewRequestID(); id2 == id {
		t.Fatalf("two request IDs collided: %q", id)
	}
	for _, ok := range []string{"abc-DEF_0.9", "x"} {
		if !ValidRequestID(ok) {
			t.Errorf("ValidRequestID(%q) = false", ok)
		}
	}
	for _, bad := range []string{"", strings.Repeat("a", 65), "has space", "new\nline", "quo\"te"} {
		if ValidRequestID(bad) {
			t.Errorf("ValidRequestID(%q) = true", bad)
		}
	}
	ctx := ContextWithRequestID(context.Background(), id)
	if got := RequestIDFrom(ctx); got != id {
		t.Fatalf("RequestIDFrom = %q, want %q", got, id)
	}
	if got := RequestIDFrom(context.Background()); got != "" {
		t.Fatalf("RequestIDFrom(empty) = %q", got)
	}
}

func TestBuildInfo(t *testing.T) {
	v, rev := BuildInfo()
	if v == "" || rev == "" {
		t.Fatalf("BuildInfo() = %q, %q", v, rev)
	}
	if len(rev) > 12 {
		t.Fatalf("revision %q not truncated", rev)
	}
}
