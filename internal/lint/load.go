package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, parsed and type-checked target package.
type Package struct {
	// ImportPath is the package's canonical import path.
	ImportPath string
	// Dir is the package's source directory.
	Dir string
	// Fset maps token positions back to file:line:col (shared by all
	// packages of one Load call).
	Fset *token.FileSet
	// Files are the parsed non-test source files, in GoFiles order.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info carries the use/def/type maps the analyzers resolve names with.
	Info *types.Info
	// TypeErrors records type-check problems. Analysis proceeds on a
	// best-effort basis when non-empty; the driver surfaces them.
	TypeErrors []error
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
}

// Load expands the go-list patterns (e.g. "./..." or explicit directories)
// relative to dir, parses every matched package's non-test sources, and
// type-checks them against compiler export data. It shells out to the go
// command twice conceptually folded into one invocation: `go list -deps
// -export` both resolves the pattern set and produces export data for every
// dependency, which keeps the loader zero-dependency (stdlib go/ast +
// go/types + go/importer only).
func Load(dir string, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Standard",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := map[string]string{}
	var targets []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
		if !e.DepOnly && !e.Standard {
			targets = append(targets, e)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("lint: no packages matched %v", patterns)
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	})

	var pkgs []*Package
	for _, t := range targets {
		p, err := check(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// check parses and type-checks one target package.
func check(fset *token.FileSet, imp types.Importer, t listEntry) (*Package, error) {
	p := &Package{ImportPath: t.ImportPath, Dir: t.Dir, Fset: fset}
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %v", filepath.Join(t.Dir, name), err)
		}
		p.Files = append(p.Files, f)
	}
	p.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	// The checker returns an error when TypeErrors is non-empty; the errors
	// themselves are already collected, and analysis runs best-effort on
	// whatever was resolved.
	p.Pkg, _ = conf.Check(t.ImportPath, fset, p.Files, p.Info)
	return p, nil
}
