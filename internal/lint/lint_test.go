package lint

import (
	"sort"
	"strings"
	"testing"
)

// fixtureDirs lists every golden fixture package: for each analyzer a "bad"
// package seeded with violations and an "ok" clean twin, plus the
// suppression-machinery fixture. testdata is invisible to ./... so these
// packages never reach the repo build; they are loaded here (and by the CI
// self-test) as explicit directory arguments.
var fixtureDirs = []string{
	"./testdata/src/atomictypes/bad/pkg",
	"./testdata/src/atomictypes/ok/pkg",
	"./testdata/src/ctxpropagate/bad/internal/server",
	"./testdata/src/ctxpropagate/ok/internal/server",
	"./testdata/src/deferunlock/bad/pkg",
	"./testdata/src/deferunlock/ok/pkg",
	"./testdata/src/nodeterminism/bad/internal/etl",
	"./testdata/src/nodeterminism/ok/internal/etl",
	"./testdata/src/nofmtkernel/bad/internal/sim",
	"./testdata/src/nofmtkernel/ok/internal/sim",
	"./testdata/src/nolockio/bad/pkg",
	"./testdata/src/nolockio/ok/pkg",
	"./testdata/src/spanend/bad/pkg",
	"./testdata/src/spanend/ok/pkg",
	"./testdata/src/suppress/pkg",
}

// TestAnalyzersOnFixtures runs the full suite over the golden fixtures and
// compares the complete diagnostic set — exact files, exact lines. The ok
// packages are in the load precisely so that any spurious finding there
// shows up as an unexpected entry.
func TestAnalyzersOnFixtures(t *testing.T) {
	pkgs, err := Load(".", fixtureDirs)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		if len(p.TypeErrors) > 0 {
			t.Fatalf("fixture %s has type errors: %v", p.ImportPath, p.TypeErrors)
		}
	}

	got := []string{}
	for _, d := range Run(pkgs, All()) {
		file, line := posFileLine(d.Pos)
		// Strip the absolute prefix down to the fixture-relative path so the
		// expectations are stable across checkouts.
		if i := strings.Index(file, "testdata/src/"); i >= 0 {
			file = file[i+len("testdata/src/"):]
		}
		got = append(got, file+":"+itoa(line)+" "+d.Check)
	}
	want := []string{
		"atomictypes/bad/pkg/bad.go:11 atomictypes",
		"atomictypes/bad/pkg/bad.go:12 atomictypes",
		"ctxpropagate/bad/internal/server/bad.go:12 ctxpropagate",
		"ctxpropagate/bad/internal/server/bad.go:14 ctxpropagate",
		"deferunlock/bad/pkg/bad.go:15 deferunlock",
		"nodeterminism/bad/internal/etl/bad.go:15 nodeterminism",
		"nodeterminism/bad/internal/etl/bad.go:20 nodeterminism",
		"nodeterminism/bad/internal/etl/bad.go:25 nodeterminism",
		"nodeterminism/bad/internal/etl/bad.go:31 nodeterminism",
		"nofmtkernel/bad/internal/sim/bad.go:14 nofmtkernel",
		"nofmtkernel/bad/internal/sim/bad.go:19 nofmtkernel",
		"nofmtkernel/bad/internal/sim/bad.go:24 nofmtkernel",
		"nolockio/bad/pkg/bad.go:20 nolockio",
		"nolockio/bad/pkg/bad.go:33 nolockio",
		"spanend/bad/pkg/bad.go:13 spanend",
		"spanend/bad/pkg/bad.go:25 spanend",
		"spanend/bad/pkg/bad.go:31 spanend",
		"spanend/bad/pkg/bad.go:36 spanend",
		"suppress/pkg/suppress.go:18 lintdirective",
		"suppress/pkg/suppress.go:19 atomictypes",
	}
	sort.Strings(got)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("diagnostic count: got %d want %d\ngot:\n  %s",
			len(got), len(want), strings.Join(got, "\n  "))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diagnostic %d: got %q want %q", i, got[i], want[i])
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestRepoLintClean is the in-tree version of the CI gate: the repository's
// own packages must produce zero diagnostics. Every deliberate exception is
// expected to carry a //lint:ignore annotation with a reason.
func TestRepoLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole repo")
	}
	pkgs, err := Load("../..", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		if len(p.TypeErrors) > 0 {
			t.Errorf("%s has type errors: %v", p.ImportPath, p.TypeErrors)
		}
	}
	for _, d := range Run(pkgs, All()) {
		t.Errorf("repo not lint-clean: %s", d.String())
	}
}

func TestPathHasSuffix(t *testing.T) {
	cases := []struct {
		path, suffix string
		want         bool
	}{
		{"poiesis/internal/sim", "internal/sim", true},
		{"internal/sim", "internal/sim", true},
		{"poiesis/internal/lint/testdata/src/x/internal/sim", "internal/sim", true},
		{"poiesis/internal/simulator", "internal/sim", false},
		{"poiesis/xinternal/sim", "internal/sim", false},
		{"poiesis/internal/sim/sub", "internal/sim", false},
	}
	for _, c := range cases {
		if got := pathHasSuffix(c.path, c.suffix); got != c.want {
			t.Errorf("pathHasSuffix(%q, %q) = %v, want %v", c.path, c.suffix, got, c.want)
		}
	}
}

func TestHasPointerVerb(t *testing.T) {
	cases := []struct {
		s    string
		want bool
	}{
		{"%p", true},
		{"node-%p", true},
		{"%+p", true},
		{"%-8p", true},
		{"%%p", false},
		{"%d and %s", false},
		{"100%% pure", false},
		{"", false},
	}
	for _, c := range cases {
		if got := hasPointerVerb(c.s); got != c.want {
			t.Errorf("hasPointerVerb(%q) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestPosFileLine(t *testing.T) {
	file, line := posFileLine("/a/b/c.go:42:7")
	if file != "/a/b/c.go" || line != 42 {
		t.Errorf("posFileLine = %q, %d", file, line)
	}
	// Windows-style drive letters keep their colon.
	file, line = posFileLine("C:/a/c.go:9:1")
	if file != "C:/a/c.go" || line != 9 {
		t.Errorf("posFileLine drive = %q, %d", file, line)
	}
}
