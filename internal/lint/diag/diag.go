// Package diag is the shared diagnostics model of the poiesis static
// analysis tooling. Two producers speak it: the Go-source analyzers of
// internal/lint (positions are file:line:col) and the flow/constraint
// validator etl.Lint (positions name graph elements, e.g. "flow/node-id").
// Keeping the model in a leaf package lets etl report diagnostics without
// pulling the go/types machinery into its dependency tree.
package diag

import (
	"fmt"
	"sort"
	"strings"
)

// Diagnostic is one finding of one check.
type Diagnostic struct {
	// Check names the analyzer or flow check that produced the finding
	// (e.g. "nodeterminism", "flow/dangling-edge").
	Check string `json:"check"`
	// Pos locates the finding: "file.go:12:3" for source diagnostics,
	// "flowname/node-id" or "constraint:<label>" for flow diagnostics.
	Pos string `json:"pos"`
	// Message states the problem and, where possible, the fix.
	Message string `json:"message"`
}

// String renders "pos: check: message", the one-line CLI form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Check, d.Message)
}

// Sort orders diagnostics by position, then check, then message. Source
// positions of the form file:line:col sort numerically by line so output is
// stable and readable.
func Sort(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		fi, li, ci := splitPos(ds[i].Pos)
		fj, lj, cj := splitPos(ds[j].Pos)
		if fi != fj {
			return fi < fj
		}
		if li != lj {
			return li < lj
		}
		if ci != cj {
			return ci < cj
		}
		if ds[i].Check != ds[j].Check {
			return ds[i].Check < ds[j].Check
		}
		return ds[i].Message < ds[j].Message
	})
}

// splitPos decomposes "file:line:col" into comparable parts; positions that
// do not match the shape compare as plain strings with line/col zero.
func splitPos(pos string) (file string, line, col int) {
	// Scan from the right: the file part may itself contain colons on
	// Windows-style paths, which we don't produce but defend against.
	parts := strings.Split(pos, ":")
	if len(parts) >= 3 {
		if l, c, ok := parseInts(parts[len(parts)-2], parts[len(parts)-1]); ok {
			return strings.Join(parts[:len(parts)-2], ":"), l, c
		}
	}
	if len(parts) >= 2 {
		if l, _, ok := parseInts(parts[len(parts)-1], "0"); ok {
			return strings.Join(parts[:len(parts)-1], ":"), l, 0
		}
	}
	return pos, 0, 0
}

func parseInts(a, b string) (int, int, bool) {
	x, ok1 := atoi(a)
	y, ok2 := atoi(b)
	return x, y, ok1 && ok2
}

func atoi(s string) (int, bool) {
	if s == "" {
		return 0, false
	}
	n := 0
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, false
		}
		n = n*10 + int(s[i]-'0')
	}
	return n, true
}
