package lint

import (
	"go/ast"
)

// Atomictypes enforces the typed-atomics migration: the package-level
// sync/atomic functions (atomic.AddInt64 over a raw int64 field, etc.) make
// it possible to mix atomic and plain access to the same word; the typed
// values (atomic.Int64, atomic.Uint64, atomic.Bool, ...) make the atomicity
// part of the field's type and are self-aligning on 32-bit platforms.
var Atomictypes = &Analyzer{
	Name: "atomictypes",
	Doc:  "forbid package-level sync/atomic calls in favour of typed atomic values",
	Run:  runAtomictypes,
}

func runAtomictypes(p *Pass) {
	for _, f := range p.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Pkg.Info, call)
			if fn == nil || funcPkgPath(fn) != "sync/atomic" || recvNamed(fn) != nil {
				return true
			}
			p.Reportf(call.Pos(), "package-level atomic.%s on a raw word: migrate the field to a typed atomic value (atomic.Int64 and friends)", fn.Name())
			return true
		})
	}
}
