package lint

import (
	"go/ast"
)

// Nofmtkernel guards the simulator's column kernels against reflection-based
// rendering (the PR 8 bug class: fmt-rendered row keys cost an allocation
// per value and collide across types). Inside internal/sim, every fmt call
// except fmt.Errorf and every use of package reflect is flagged; the rare
// deliberate fallback (hashing a value of unknown dynamic type) carries a
// //lint:ignore annotation explaining why it is off the hot path.
var Nofmtkernel = &Analyzer{
	Name: "nofmtkernel",
	Doc:  "forbid fmt/reflect rendering in internal/sim column kernels",
	Applies: func(importPath string) bool {
		return pathHasSuffix(importPath, "internal/sim")
	},
	Run: runNofmtkernel,
}

func runNofmtkernel(p *Pass) {
	for _, f := range p.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Pkg.Info, call)
			if fn == nil {
				return true
			}
			switch funcPkgPath(fn) {
			case "fmt":
				if fn.Name() != "Errorf" {
					p.Reportf(call.Pos(), "fmt.%s in a simulator kernel package: fmt renders through reflection (allocates, and collides across types when used for keys); use strconv or typed appends", fn.Name())
				}
			case "reflect":
				p.Reportf(call.Pos(), "reflect.%s in a simulator kernel package: kernels must stay allocation-free and type-direct", fn.Name())
			}
			return true
		})
	}
}
