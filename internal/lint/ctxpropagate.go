package lint

import (
	"go/ast"
)

// Ctxpropagate keeps cancellation flowing through the request path: outbound
// HTTP in the server, cluster and load-generator packages must be built with
// http.NewRequestWithContext from a request-derived context. A bare
// http.NewRequest (context.Background under the hood) or an explicit
// context.Background()/TODO() on a request path survives client disconnects
// and deadlines, leaking goroutines and sockets under load. Background
// housekeeping loops that legitimately outlive requests carry //lint:ignore
// annotations.
var Ctxpropagate = &Analyzer{
	Name: "ctxpropagate",
	Doc:  "require context-derived http.NewRequestWithContext on server/cluster/loadgen request paths",
	Applies: func(importPath string) bool {
		return pathHasSuffix(importPath,
			"internal/server", "internal/cluster", "internal/loadgen")
	},
	Run: runCtxpropagate,
}

func runCtxpropagate(p *Pass) {
	for _, f := range p.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Pkg.Info, call)
			if fn == nil {
				return true
			}
			if isPkgFunc(fn, "net/http", "NewRequest") {
				p.Reportf(call.Pos(), "http.NewRequest never carries a context: use http.NewRequestWithContext with the caller's context")
			}
			if isPkgFunc(fn, "context", "Background") || isPkgFunc(fn, "context", "TODO") {
				p.Reportf(call.Pos(), "context.%s on a request-path package: derive the context from the incoming request so cancellation propagates", fn.Name())
			}
			return true
		})
	}
}
