// Package etl is the clean twin of nodeterminism/bad: seeded rand, value
// (not pointer) formatting, and sorted-key map rendering.
package etl

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Jitter draws from an explicitly seeded generator.
func Jitter(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// Key formats the value's identity, not its address.
func Key(v int) string {
	return fmt.Sprintf("node-%d", v)
}

// Render sorts the keys before emitting bytes.
func Render(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
	}
	return b.String()
}
