// Package etl seeds nodeterminism violations on a byte-deterministic scope
// (the internal/etl path suffix): wall clock, global rand, %p, and byte
// output while ranging a map.
package etl

import (
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// Stamp reads the wall clock.
func Stamp() string {
	return time.Now().String()
}

// Jitter draws from the shared seedless source.
func Jitter() int {
	return rand.Intn(10)
}

// Key formats a pointer address.
func Key(v *int) string {
	return fmt.Sprintf("node-%p", v)
}

// Render writes bytes in map-iteration order.
func Render(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k)
	}
	return b.String()
}
