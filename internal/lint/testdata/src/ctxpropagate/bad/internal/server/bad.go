// Package server seeds ctxpropagate violations on a request-path package
// scope (the internal/server path suffix puts it in the analyzer's scope).
package server

import (
	"context"
	"net/http"
)

// Probe builds an outbound request without propagating any caller context.
func Probe(url string) (*http.Request, error) {
	ctx := context.Background()
	_ = ctx
	return http.NewRequest("GET", url, nil)
}
