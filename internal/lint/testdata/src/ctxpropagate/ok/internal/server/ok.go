// Package server is the clean twin of ctxpropagate/bad: the request context
// flows into the outbound call.
package server

import (
	"context"
	"net/http"
)

// Probe threads the caller's context into the outbound request.
func Probe(ctx context.Context, url string) (*http.Request, error) {
	return http.NewRequestWithContext(ctx, "GET", url, nil)
}
