// Package pkg seeds spanend violations: spans that are started but not
// ended on every path, discarded at start, or lost to the blank identifier.
package pkg

import (
	"context"

	"poiesis/internal/lint/testdata/src/spanend/internal/obs"
)

// EarlyReturn leaks the span on the n < 0 path.
func EarlyReturn(ctx context.Context, n int) int {
	ctx2, span := obs.StartSpan(ctx, "work")
	if n < 0 {
		return -1
	}
	span.SetAttr("n", "ok")
	span.End()
	_ = ctx2
	return n
}

// NoEnd never ends the span at all.
func NoEnd(ctx context.Context, t *obs.Tracer) {
	_, span := t.StartDetached(ctx, "bg")
	span.SetAttr("k", "v")
}

// Discarded drops both return values, so nothing can ever End the span.
func Discarded(ctx context.Context) {
	obs.StartSpan(ctx, "lost")
}

// Blanked keeps the context but blanks the span.
func Blanked(ctx context.Context, t *obs.Tracer) context.Context {
	ctx2, _ := t.StartRequest(ctx, "", "req")
	return ctx2
}
