// Package obs is a stand-in for the repo's tracing kit: the import path
// suffix internal/obs puts its span-starting functions in the spanend
// analyzer's scope without the fixtures depending on the real package.
package obs

import "context"

// Span is the stand-in span handle.
type Span struct{}

// End completes the span.
func (s *Span) End() {}

// SetAttr annotates the span.
func (s *Span) SetAttr(k, v string) {}

// Tracer is the stand-in collector.
type Tracer struct{}

// StartRequest roots a request fragment.
func (t *Tracer) StartRequest(ctx context.Context, traceparent, name string) (context.Context, *Span) {
	return ctx, nil
}

// StartDetached roots a background trace.
func (t *Tracer) StartDetached(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, nil
}

// StartSpan opens a child span under the context's current span.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, nil
}
