// Package pkg is the clean twin: every sanctioned way of ending (or handing
// off) a started span, none of which may produce a spanend diagnostic.
package pkg

import (
	"context"

	"poiesis/internal/lint/testdata/src/spanend/internal/obs"
)

// DeferEnd is the canonical pattern: defer End on the next line.
func DeferEnd(ctx context.Context, n int) int {
	ctx2, span := obs.StartSpan(ctx, "work")
	defer span.End()
	_ = ctx2
	if n < 0 {
		return -1
	}
	return n
}

// DeferClosure ends the span inside a deferred closure.
func DeferClosure(ctx context.Context, t *obs.Tracer) {
	_, span := t.StartRequest(ctx, "", "req")
	defer func() {
		span.SetAttr("done", "true")
		span.End()
	}()
}

// EndBeforeReturn ends the span on the straight-line path before any
// return can leak it.
func EndBeforeReturn(ctx context.Context, n int) int {
	_, span := obs.StartSpan(ctx, "work")
	span.SetAttr("k", "v")
	span.End()
	if n < 0 {
		return -1
	}
	return n
}

// HandOff passes the span to a helper, which owns its End.
func HandOff(ctx context.Context, t *obs.Tracer) {
	_, span := t.StartDetached(ctx, "bg")
	finish(span)
}

func finish(s *obs.Span) { s.End() }
