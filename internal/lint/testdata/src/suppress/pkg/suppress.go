// Package pkg exercises the //lint:ignore machinery: a well-formed directive
// silences the next line's finding; a malformed one (no reason) is itself a
// lintdirective diagnostic and silences nothing.
package pkg

import "sync/atomic"

var word int64

// Suppressed is silenced by the directive above the offending line.
func Suppressed() int64 {
	//lint:ignore atomictypes fixture exercising suppression
	return atomic.LoadInt64(&word)
}

// Unsuppressed carries a directive with no reason: malformed, not honoured.
func Unsuppressed() int64 {
	//lint:ignore atomictypes
	return atomic.AddInt64(&word, 1)
}
