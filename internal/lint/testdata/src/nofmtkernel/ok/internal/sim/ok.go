// Package sim is the clean twin of nofmtkernel/bad: strconv on the hot path
// and fmt.Errorf (the one allowed fmt function) on error paths.
package sim

import (
	"fmt"
	"strconv"
)

// Describe renders a counter type-directly.
func Describe(n int) string {
	return "rows=" + strconv.Itoa(n)
}

// Fail constructs an error; fmt.Errorf is exempt.
func Fail(n int) error {
	return fmt.Errorf("bad batch size %d", n)
}
