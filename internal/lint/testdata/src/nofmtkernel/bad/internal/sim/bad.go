// Package sim seeds nofmtkernel violations on the kernel scope (the
// internal/sim path suffix): reflection-based rendering and reflect itself.
// The file deliberately avoids the nodeterminism triggers that share this
// scope, so only nofmtkernel fires.
package sim

import (
	"fmt"
	"reflect"
)

// Render formats through reflection.
func Render(v any) string {
	return fmt.Sprint(v)
}

// Describe renders a counter with fmt instead of strconv.
func Describe(n int) string {
	return fmt.Sprintf("rows=%d", n)
}

// Inspect uses package reflect in a kernel package.
func Inspect(v any) {
	_ = reflect.ValueOf(v)
}
