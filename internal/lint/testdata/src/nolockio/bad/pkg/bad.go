// Package pkg seeds nolockio violations: file and network I/O performed
// while a sync mutex is lexically held.
package pkg

import (
	"net/http"
	"os"
	"sync"
)

// Store keeps a path under a mutex.
type Store struct {
	mu   sync.Mutex
	path string
}

// Load reads the file while s.mu is held.
func (s *Store) Load() ([]byte, error) {
	s.mu.Lock()
	data, err := os.ReadFile(s.path)
	s.mu.Unlock()
	return data, err
}

// Cache guards nothing in particular with a read-write mutex.
type Cache struct {
	mu sync.RWMutex
}

// Fetch performs an HTTP round trip under the read lock.
func (c *Cache) Fetch(url string) error {
	c.mu.RLock()
	resp, err := http.Get(url)
	c.mu.RUnlock()
	if err != nil {
		return err
	}
	return resp.Body.Close()
}
