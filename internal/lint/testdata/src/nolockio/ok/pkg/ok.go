// Package pkg is the clean twin of nolockio/bad: copy what you need under
// the lock, release it, then do the I/O — and function literals built under
// a lock run later, outside the critical section.
package pkg

import (
	"os"
	"sync"
)

// Store keeps a path under a mutex.
type Store struct {
	mu   sync.Mutex
	path string
}

// Load snapshots the path under the lock and reads outside it.
func (s *Store) Load() ([]byte, error) {
	s.mu.Lock()
	path := s.path
	s.mu.Unlock()
	return os.ReadFile(path)
}

// Reader returns a closure; the I/O inside it executes after the unlock.
func (s *Store) Reader() func() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	path := s.path
	return func() ([]byte, error) {
		return os.ReadFile(path)
	}
}
