// Package pkg is the clean twin of deferunlock/bad: both sanctioned shapes —
// defer-immediately and unlock-on-every-path — must pass.
package pkg

import "sync"

// Box guards a counter.
type Box struct {
	mu sync.Mutex
	n  int
}

// BumpDeferred releases through a defer directly after the acquisition.
func (b *Box) BumpDeferred(limit int) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.n >= limit {
		return -1
	}
	b.n++
	return b.n
}

// BumpEarlyUnlock releases explicitly on the early-return path (the store's
// "lock, mutate, unlock-then-I/O" sequence).
func (b *Box) BumpEarlyUnlock(limit int) int {
	b.mu.Lock()
	if b.n >= limit {
		b.mu.Unlock()
		return -1
	}
	b.n++
	b.mu.Unlock()
	return b.n
}
