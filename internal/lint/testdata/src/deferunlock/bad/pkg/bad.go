// Package pkg seeds a deferunlock violation: a multi-return function whose
// early return leaks the mutex.
package pkg

import "sync"

// Box guards a counter.
type Box struct {
	mu sync.Mutex
	n  int
}

// Bump returns early while b.mu is still held.
func (b *Box) Bump(limit int) int {
	b.mu.Lock()
	if b.n >= limit {
		return -1
	}
	b.n++
	b.mu.Unlock()
	return b.n
}
