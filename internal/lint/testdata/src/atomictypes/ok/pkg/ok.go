// Package pkg is the clean twin of atomictypes/bad: typed atomic values,
// whose methods the analyzer must not flag.
package pkg

import "sync/atomic"

var counter atomic.Int64

// Bump uses the typed atomic API.
func Bump() int64 {
	counter.Add(1)
	return counter.Load()
}
