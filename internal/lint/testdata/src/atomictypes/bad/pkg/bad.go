// Package pkg seeds atomictypes violations: package-level sync/atomic calls
// on raw words. The lint test asserts the exact positions reported here.
package pkg

import "sync/atomic"

var counter int64

// Bump mixes package-level atomic calls over a raw int64 field.
func Bump() int64 {
	atomic.AddInt64(&counter, 1)
	return atomic.LoadInt64(&counter)
}
