// Package lint is the poiesis static-analysis framework: a small,
// zero-dependency analyzer driver (stdlib go/ast + go/types + go/importer)
// that encodes the engine's determinism and concurrency invariants as
// checked-in analyzers. The invariants it guards were all violated — and
// fixed by hand — in earlier PRs: `%p` cache-key aliasing, backend I/O under
// the store mutex, fmt-rendered hash collisions in the simulator. Each
// analyzer turns one of those reviewer-memory rules into a machine check.
//
// Findings use the shared diagnostics model of internal/lint/diag, which the
// flow validator etl.Lint also speaks; cmd/poiesis-lint is the CLI driver.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"

	"poiesis/internal/lint/diag"
)

// An Analyzer is one invariant check. Run inspects a loaded package through
// the Pass and reports findings.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:ignore comments.
	Name string
	// Doc is a one-line description for the CLI catalog.
	Doc string
	// Applies filters packages by import path; nil means all packages.
	Applies func(importPath string) bool
	// Run inspects one package.
	Run func(*Pass)
}

// Pass carries one analyzer over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    []diag.Diagnostic
}

// Files returns the package's parsed source files.
func (p *Pass) Files() []*ast.File { return p.Pkg.Files }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, diag.Diagnostic{
		Check:   p.Analyzer.Name,
		Pos:     p.Pkg.Fset.Position(pos).String(),
		Message: fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in catalog order.
func All() []*Analyzer {
	return []*Analyzer{
		Atomictypes,
		Ctxpropagate,
		Deferunlock,
		Nodeterminism,
		Nofmtkernel,
		Nolockio,
		Spanend,
	}
}

// Run applies the analyzers to the packages and returns the surviving
// diagnostics, sorted, with //lint:ignore suppressions applied. Malformed
// ignore directives (missing analyzer name or reason) are themselves
// reported under the check name "lintdirective".
func Run(pkgs []*Package, analyzers []*Analyzer) []diag.Diagnostic {
	var out []diag.Diagnostic
	for _, pkg := range pkgs {
		sup, bad := suppressions(pkg)
		out = append(out, bad...)
		for _, a := range analyzers {
			if a.Applies != nil && !a.Applies(pkg.ImportPath) {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg}
			a.Run(pass)
			for _, d := range pass.diags {
				if !sup.covers(a.Name, d.Pos) {
					out = append(out, d)
				}
			}
		}
	}
	diag.Sort(out)
	return out
}

// suppression is one //lint:ignore directive: it silences the named
// analyzers on its own line and on the line immediately below (so the
// directive can sit on the offending line or on its own line above it).
type suppression struct {
	file  string
	line  int
	names map[string]bool
}

type suppressionSet []suppression

func (s suppressionSet) covers(name, pos string) bool {
	file, line := posFileLine(pos)
	for _, sup := range s {
		if sup.file == file && (sup.line == line || sup.line == line-1) && sup.names[name] {
			return true
		}
	}
	return false
}

// suppressions scans a package's comments for //lint:ignore directives.
// Form: `//lint:ignore name1,name2 reason...` — a missing reason is a
// diagnostic in its own right, so silently-broad suppressions can't creep in.
func suppressions(pkg *Package) (suppressionSet, []diag.Diagnostic) {
	var set suppressionSet
	var bad []diag.Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				position := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, diag.Diagnostic{
						Check:   "lintdirective",
						Pos:     position.String(),
						Message: "malformed //lint:ignore: want \"//lint:ignore <name[,name]> reason\"",
					})
					continue
				}
				names := map[string]bool{}
				for _, n := range strings.Split(fields[0], ",") {
					names[strings.TrimSpace(n)] = true
				}
				set = append(set, suppression{file: position.Filename, line: position.Line, names: names})
			}
		}
	}
	return set, bad
}

// posFileLine splits a "file:line:col" position into file and line.
func posFileLine(pos string) (string, int) {
	parts := strings.Split(pos, ":")
	if len(parts) < 3 {
		return pos, 0
	}
	line := 0
	for _, ch := range parts[len(parts)-2] {
		if ch < '0' || ch > '9' {
			return pos, 0
		}
		line = line*10 + int(ch-'0')
	}
	return strings.Join(parts[:len(parts)-2], ":"), line
}

// pathHasSuffix reports whether importPath ends with one of the given
// package-path suffixes (matched on "/" boundaries). Matching by suffix lets
// the same analyzer scope cover both real repo packages
// ("poiesis/internal/sim") and lint test fixtures
// ("poiesis/internal/lint/testdata/src/case/internal/sim").
func pathHasSuffix(importPath string, suffixes ...string) bool {
	for _, s := range suffixes {
		if importPath == s || strings.HasSuffix(importPath, "/"+s) {
			return true
		}
	}
	return false
}
