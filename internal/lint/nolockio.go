package lint

import (
	"go/ast"
)

// Nolockio is the PR 6 bug class: blocking I/O — file, network or
// database/sql calls — performed while a sync.Mutex/RWMutex is held turns
// every concurrent request into a convoy behind one slow disk or socket.
// The store's write-through design is "mutate under lock, snapshot outside
// it"; this analyzer keeps it that way.
//
// Tracking is lexical and per-function: an ExprStmt calling Lock/RLock on a
// receiver marks that receiver held; a matching Unlock/RUnlock releases it;
// a deferred Unlock keeps it held to the end of the function. Function
// literals are not entered (they run later, usually after the unlock), and
// Try* acquisitions are ignored.
var Nolockio = &Analyzer{
	Name: "nolockio",
	Doc:  "forbid file/network/database I/O while a sync mutex is held",
	Run:  runNolockio,
}

func runNolockio(p *Pass) {
	for _, f := range p.Files() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			walkLocked(p, fd.Body.List, map[string]bool{})
		}
	}
}

// walkLocked processes a statement list, threading the held-mutex set
// through sequential statements and copying it into nested blocks (a lock
// acquired inside a branch does not lexically escape it).
func walkLocked(p *Pass, stmts []ast.Stmt, held map[string]bool) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				switch name, recv := mutexMethod(p.Pkg.Info, call); name {
				case "Lock", "RLock":
					held[exprKey(recv)] = true
					continue
				case "Unlock", "RUnlock":
					delete(held, exprKey(recv))
					continue
				}
			}
			checkIOUnderLock(p, s, held)
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the mutex held for the rest of the
			// function; I/O in the deferred call itself runs after all
			// sequential statements, so it is not inspected against the
			// current held set.
			continue
		case *ast.GoStmt:
			// The spawned goroutine runs concurrently without this
			// goroutine's locks; only the call operands are evaluated here.
			continue
		case *ast.BlockStmt:
			walkLocked(p, s.List, copyHeld(held))
		case *ast.IfStmt:
			if s.Init != nil {
				checkIOUnderLock(p, s.Init, held)
			}
			checkIOUnderLock(p, exprStmtOf(s.Cond), held)
			walkLocked(p, s.Body.List, copyHeld(held))
			if s.Else != nil {
				walkLocked(p, []ast.Stmt{s.Else}, copyHeld(held))
			}
		case *ast.ForStmt:
			walkLocked(p, s.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			walkLocked(p, s.Body.List, copyHeld(held))
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkLocked(p, cc.Body, copyHeld(held))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkLocked(p, cc.Body, copyHeld(held))
				}
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					walkLocked(p, cc.Body, copyHeld(held))
				}
			}
		case *ast.LabeledStmt:
			walkLocked(p, []ast.Stmt{s.Stmt}, held)
		default:
			checkIOUnderLock(p, s, held)
		}
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	cp := make(map[string]bool, len(held))
	for k, v := range held {
		cp[k] = v
	}
	return cp
}

// exprStmtOf wraps an expression so checkIOUnderLock can inspect it.
func exprStmtOf(e ast.Expr) ast.Stmt { return &ast.ExprStmt{X: e} }

// checkIOUnderLock reports every blocking I/O call inside stmt when at least
// one mutex is lexically held. Function literals are skipped: they execute
// later, outside the current critical section.
func checkIOUnderLock(p *Pass, stmt ast.Stmt, held map[string]bool) {
	if len(held) == 0 || stmt == nil {
		return
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if what := ioCallName(p, call); what != "" {
			p.Reportf(call.Pos(), "%s while %s is held: move the I/O outside the critical section (copy what you need under the lock, then release it)", what, anyHeld(held))
		}
		return true
	})
}

func anyHeld(held map[string]bool) string {
	best := ""
	for k := range held {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}

// ioCallName classifies a call as blocking file/network/database I/O and
// returns a human-readable name for it, or "".
func ioCallName(p *Pass, call *ast.CallExpr) string {
	fn := calleeFunc(p.Pkg.Info, call)
	if fn == nil {
		return ""
	}
	pkg, name := funcPkgPath(fn), fn.Name()
	if recvNamed(fn) == nil {
		switch pkg {
		case "os":
			switch name {
			case "Open", "OpenFile", "Create", "CreateTemp", "ReadFile", "WriteFile",
				"Remove", "RemoveAll", "Rename", "Mkdir", "MkdirAll", "MkdirTemp",
				"Stat", "Lstat", "ReadDir", "Truncate", "Chmod", "Chown", "Link", "Symlink":
				return "os." + name
			}
		case "net":
			switch name {
			case "Dial", "DialTimeout", "Listen", "ListenPacket":
				return "net." + name
			}
		case "net/http":
			switch name {
			case "Get", "Post", "PostForm", "Head":
				return "http." + name
			}
		case "io/ioutil":
			switch name {
			case "ReadFile", "WriteFile", "ReadDir", "TempFile", "TempDir":
				return "ioutil." + name
			}
		}
		return ""
	}
	recv := recvNamed(fn)
	rpkg := ""
	if recv.Obj().Pkg() != nil {
		rpkg = recv.Obj().Pkg().Path()
	}
	rname := recv.Obj().Name()
	qualified := rname + "." + name
	switch rpkg {
	case "os":
		if rname == "File" {
			switch name {
			case "Read", "ReadAt", "Write", "WriteAt", "WriteString", "Sync", "Close", "Seek", "Truncate", "ReadDir", "Readdir", "Readdirnames":
				return "os." + qualified
			}
		}
	case "net":
		if rname == "Dialer" && (name == "Dial" || name == "DialContext") {
			return "net." + qualified
		}
	case "net/http":
		if rname == "Client" {
			switch name {
			case "Do", "Get", "Post", "PostForm", "Head":
				return "http." + qualified
			}
		}
	case "database/sql":
		switch rname {
		case "DB", "Tx", "Stmt", "Conn":
			switch name {
			case "Exec", "ExecContext", "Query", "QueryContext", "QueryRow", "QueryRowContext",
				"Prepare", "PrepareContext", "Ping", "PingContext", "Begin", "BeginTx",
				"Commit", "Rollback", "Close":
				return "sql." + qualified
			}
		}
	case "os/exec":
		if rname == "Cmd" {
			switch name {
			case "Run", "Start", "Output", "CombinedOutput", "Wait":
				return "exec." + qualified
			}
		}
	}
	return ""
}
