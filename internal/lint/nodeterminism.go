package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// Nodeterminism guards the byte-identical oracle paths. Packages whose
// output feeds fingerprints, snapshots, wire encodings or the metrics
// exposition must not read wall clocks, draw from the global (seedless)
// math/rand source, format pointer addresses (`%p` — the PR 4 cache-key
// aliasing bug), or render bytes while ranging over a map in unspecified
// order.
var Nodeterminism = &Analyzer{
	Name: "nodeterminism",
	Doc:  "forbid time.Now/global rand/%p/ordered-output map ranges in byte-deterministic packages",
	Applies: func(importPath string) bool {
		return pathHasSuffix(importPath,
			"internal/sim", "internal/etl", "internal/skyline", "internal/obs",
			"internal/core")
	},
	Run: runNodeterminism,
}

func runNodeterminism(p *Pass) {
	// core legitimately reads the clock for stage timing (spans are
	// documented non-wire); everywhere else in scope, wall time is banned.
	timeBanned := !pathHasSuffix(p.Pkg.ImportPath, "internal/core")
	for _, f := range p.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDeterminismCall(p, n, timeBanned)
			case *ast.RangeStmt:
				checkMapRangeOutput(p, n)
			}
			return true
		})
	}
}

func checkDeterminismCall(p *Pass, call *ast.CallExpr, timeBanned bool) {
	fn := calleeFunc(p.Pkg.Info, call)
	if fn == nil {
		return
	}
	switch funcPkgPath(fn) {
	case "time":
		if timeBanned && recvNamed(fn) == nil {
			switch fn.Name() {
			case "Now", "Since", "Until":
				p.Reportf(call.Pos(), "time.%s in byte-deterministic package: results must not depend on the wall clock (inject a clock or move timing to the caller)", fn.Name())
			}
		}
	case "math/rand", "math/rand/v2":
		// Constructors (New, NewSource, NewZipf, ...) build seeded
		// generators and are fine; package-level draws use the shared
		// seedless source.
		if recvNamed(fn) == nil && !strings.HasPrefix(fn.Name(), "New") {
			p.Reportf(call.Pos(), "global %s.%s draws from the shared unseeded source: use a rand.New(rand.NewSource(seed)) instance", funcPkgPath(fn), fn.Name())
		}
	case "fmt":
		checkPointerVerb(p, call, fn)
	}
}

// checkPointerVerb flags %p verbs in fmt format strings: pointer addresses
// vary run to run, so they must never reach fingerprints or cache keys.
func checkPointerVerb(p *Pass, call *ast.CallExpr, fn *types.Func) {
	var formatArg int
	switch fn.Name() {
	case "Printf", "Sprintf", "Errorf":
		formatArg = 0
	case "Fprintf", "Appendf":
		formatArg = 1
	default:
		return
	}
	if len(call.Args) <= formatArg {
		return
	}
	lit, ok := ast.Unparen(call.Args[formatArg]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	if hasPointerVerb(s) {
		p.Reportf(lit.Pos(), "%%p formats a pointer address, which varies between runs: format the value's identity instead")
	}
}

// hasPointerVerb scans a format string for a %p verb, skipping %% escapes
// and flag/width/precision characters.
func hasPointerVerb(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '%' {
			continue
		}
		i++
		for i < len(s) && strings.ContainsRune("#+- 0123456789.*", rune(s[i])) {
			i++
		}
		if i < len(s) && s[i] == 'p' {
			return true
		}
	}
	return false
}

// checkMapRangeOutput flags ranges over maps whose body emits bytes (Write*
// methods or fmt.Fprint*): Go map iteration order is unspecified, so such
// loops produce different bytes on identical input. Sort the keys first.
func checkMapRangeOutput(p *Pass, rng *ast.RangeStmt) {
	tv, ok := p.Pkg.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	writes := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if writes {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(p.Pkg.Info, call)
		if fn == nil {
			return true
		}
		if funcPkgPath(fn) == "fmt" && strings.HasPrefix(fn.Name(), "Fprint") {
			writes = true
			return false
		}
		if recvNamed(fn) != nil {
			switch fn.Name() {
			case "Write", "WriteString", "WriteByte", "WriteRune":
				writes = true
				return false
			}
		}
		return true
	})
	if writes {
		p.Reportf(rng.Pos(), "byte output inside a map range: iteration order is unspecified, so the produced bytes are nondeterministic; sort the keys first")
	}
}
