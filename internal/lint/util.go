package lint

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves a call expression to the *types.Func it invokes, or
// nil when the callee is not a named function/method (e.g. a func-typed
// variable or a conversion).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := info.Uses[id].(*types.Func)
	return f
}

// funcPkgPath returns the import path of the package a function belongs to
// ("" for builtins and error.Error-style universe methods).
func funcPkgPath(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// recvNamed returns the named type of a method's receiver (unwrapping
// pointers), or nil for package-level functions.
func recvNamed(f *types.Func) *types.Named {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isPkgFunc reports whether f is the package-level function pkgPath.name
// (not a method).
func isPkgFunc(f *types.Func, pkgPath, name string) bool {
	return f != nil && funcPkgPath(f) == pkgPath && f.Name() == name &&
		recvNamed(f) == nil
}

// isMethodOf reports whether f is a method named name on the named type
// pkgPath.typeName.
func isMethodOf(f *types.Func, pkgPath, typeName, name string) bool {
	if f == nil || f.Name() != name {
		return false
	}
	n := recvNamed(f)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == typeName
}

// mutexMethod classifies a call as a sync.Mutex / sync.RWMutex method.
// Returns the method name ("Lock", "Unlock", "RLock", "RUnlock", "TryLock",
// "TryRLock") and the receiver expression, or "" when the call is not a
// mutex method.
func mutexMethod(info *types.Info, call *ast.CallExpr) (string, ast.Expr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	f, _ := info.Uses[sel.Sel].(*types.Func)
	if f == nil {
		return "", nil
	}
	n := recvNamed(f)
	if n == nil || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync" {
		return "", nil
	}
	switch n.Obj().Name() {
	case "Mutex", "RWMutex":
		return f.Name(), sel.X
	}
	return "", nil
}

// exprKey renders an expression to a comparable string so lock/unlock pairs
// on the same receiver can be matched lexically (s.mu.Lock / s.mu.Unlock).
func exprKey(e ast.Expr) string {
	return types.ExprString(e)
}
