package lint

import (
	"go/ast"
	"go/types"
)

// Spanend catches the never-ended span bug: a span minted by obs.StartSpan
// (or the Tracer methods StartRequest/StartDetached) that is not ended on
// every path never reaches the collector, and — when it is a local root —
// its whole trace fragment is silently lost. The sanctioned pattern is
// `ctx, span := obs.StartSpan(ctx, ...); defer span.End()`; also accepted
// are an explicit span.End() reached before any return in the same block,
// and handing the span to a helper (which is then responsible for it).
var Spanend = &Analyzer{
	Name: "spanend",
	Doc:  "require defer span.End() (or End on every path) after starting a span",
	Run:  runSpanend,
}

func runSpanend(p *Pass) {
	for _, f := range p.Files() {
		ast.Inspect(f, func(node ast.Node) bool {
			block, ok := node.(*ast.BlockStmt)
			if !ok {
				return true
			}
			for i, s := range block.List {
				switch st := s.(type) {
				case *ast.ExprStmt:
					if call, ok := st.X.(*ast.CallExpr); ok && spanStarter(p, call) {
						p.Reportf(call.Pos(), "span discarded at start: keep the span and defer its End()")
					}
				case *ast.AssignStmt:
					if len(st.Rhs) != 1 {
						continue
					}
					call, ok := st.Rhs[0].(*ast.CallExpr)
					if !ok || !spanStarter(p, call) {
						continue
					}
					id := spanResultIdent(p, st)
					if id == nil {
						p.Reportf(call.Pos(), "span assigned to the blank identifier: a span that is never ended is lost to the collector")
						continue
					}
					if !spanEndIsSafe(p, block.List[i+1:], id.Name) {
						p.Reportf(call.Pos(), "%s is started but not ended on every path: defer %s.End() on the next line", id.Name, id.Name)
					}
				}
			}
			return true
		})
	}
}

// spanStarter reports whether the call mints a span: obs.StartSpan, or the
// StartRequest/StartDetached Tracer methods, resolved to an internal/obs
// package by import path.
func spanStarter(p *Pass, call *ast.CallExpr) bool {
	f := calleeFunc(p.Pkg.Info, call)
	if f == nil {
		return false
	}
	switch f.Name() {
	case "StartSpan", "StartRequest", "StartDetached":
	default:
		return false
	}
	return pathHasSuffix(funcPkgPath(f), "internal/obs")
}

// spanResultIdent returns the assignment's span-typed LHS identifier, or
// nil when the span lands in the blank identifier.
func spanResultIdent(p *Pass, as *ast.AssignStmt) *ast.Ident {
	for _, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if isSpanPtr(p.Pkg.Info.TypeOf(id)) {
			return id
		}
	}
	return nil
}

// isSpanPtr reports whether t is *Span of an internal/obs package.
func isSpanPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := ptr.Elem().(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == "Span" && pathHasSuffix(n.Obj().Pkg().Path(), "internal/obs")
}

// spanEndIsSafe scans the statements following a span start in its block.
// The span is safe when a (deferred) End call on it appears before any
// returning statement, or when the span escapes — passed to another
// function, returned, or stored — which hands off the End responsibility.
// Reaching a return, or the end of the block, with the span neither ended
// nor escaped means some path leaks it.
func spanEndIsSafe(p *Pass, rest []ast.Stmt, name string) bool {
	for _, s := range rest {
		if stmtCallsEnd(s, name) {
			return true
		}
		if stmtEscapesSpan(s, name) {
			return true
		}
		if stmtContainsReturn(s) {
			return false
		}
	}
	return false
}

// stmtCallsEnd reports whether stmt calls (or defers, directly or inside a
// deferred closure) name.End(). Non-deferred function literals are not
// entered: a closure that might run later does not end the span on this
// path.
func stmtCallsEnd(stmt ast.Stmt, name string) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if found {
			return false
		}
		if d, ok := n.(*ast.DeferStmt); ok && deferCallsEnd(d, name) {
			found = true
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if isEndCall(n, name) {
			found = true
			return false
		}
		return true
	})
	return found
}

// deferCallsEnd matches `defer name.End()` and
// `defer func() { ...; name.End(); ... }()`.
func deferCallsEnd(d *ast.DeferStmt, name string) bool {
	if isEndCall(d.Call, name) {
		return true
	}
	lit, ok := d.Call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if isEndCall(n, name) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isEndCall matches the call expression name.End().
func isEndCall(n ast.Node, name string) bool {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == name
}

// stmtEscapesSpan reports whether stmt hands the span to other code: as a
// call argument, a return value, or the source of an assignment. An escaped
// span's End is the receiver's contract, which is beyond a lexical check.
func stmtEscapesSpan(stmt ast.Stmt, name string) bool {
	escaped := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if escaped {
			return false
		}
		switch v := n.(type) {
		case *ast.CallExpr:
			for _, a := range v.Args {
				if exprUsesIdent(a, name) {
					escaped = true
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, r := range v.Results {
				if exprUsesIdent(r, name) {
					escaped = true
					return false
				}
			}
		case *ast.AssignStmt:
			for _, r := range v.Rhs {
				if exprUsesIdent(r, name) {
					escaped = true
					return false
				}
			}
		}
		return true
	})
	return escaped
}

// exprUsesIdent reports whether the identifier appears anywhere in e.
func exprUsesIdent(e ast.Expr, name string) bool {
	used := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			used = true
			return false
		}
		return !used
	})
	return used
}
