package lint

import (
	"go/ast"
)

// Deferunlock catches the leak-on-early-return bug: in a function with more
// than one return statement, a bare x.Lock() whose unlock is neither
// deferred immediately nor reached before the next returning statement will
// leak the mutex on at least one path. The repo's sanctioned patterns both
// pass: `mu.Lock(); defer mu.Unlock()` and the store's
// "lock, mutate, unlock-then-I/O" sequence where every early-return
// statement performs its own unlock.
var Deferunlock = &Analyzer{
	Name: "deferunlock",
	Doc:  "require defer Unlock (or unlock-before-return) after Lock in multi-return functions",
	Run:  runDeferunlock,
}

func runDeferunlock(p *Pass) {
	for _, f := range p.Files() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if countReturns(fd.Body) < 2 {
				continue
			}
			checkLockPairs(p, fd.Body)
		}
	}
}

// countReturns counts return statements in the function body, not entering
// function literals.
func countReturns(body *ast.BlockStmt) int {
	n := 0
	ast.Inspect(body, func(node ast.Node) bool {
		switch node.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			n++
		}
		return true
	})
	return n
}

// checkLockPairs walks every block in the body and audits each bare
// Lock/RLock statement against the statements that follow it in the same
// block.
func checkLockPairs(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok {
			return false
		}
		block, ok := node.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, s := range block.List {
			es, ok := s.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			name, recv := mutexMethod(p.Pkg.Info, call)
			if name != "Lock" && name != "RLock" {
				continue
			}
			key := exprKey(recv)
			if !unlockIsSafe(p, block.List[i+1:], key, name) {
				p.Reportf(call.Pos(), "%s.%s() in a multi-return function without defer %s.%s(): an early return leaks the lock", key, name, key, unlockName(name))
			}
		}
		return true
	})
}

func unlockName(lockName string) string {
	if lockName == "RLock" {
		return "RUnlock"
	}
	return "Unlock"
}

// unlockIsSafe scans the statements following a Lock in its block. The lock
// is safe when the next statement defers the matching unlock (directly or
// inside a deferred closure), or when every statement up to the matching
// unlock is return-free. A returning statement encountered first means some
// path exits with the mutex held.
func unlockIsSafe(p *Pass, rest []ast.Stmt, key, lockName string) bool {
	want := unlockName(lockName)
	if len(rest) > 0 {
		if d, ok := rest[0].(*ast.DeferStmt); ok && deferContainsUnlock(p, d, key, want) {
			return true
		}
	}
	for _, s := range rest {
		if stmtContainsUnlock(p, s, key, want) {
			return true
		}
		if stmtContainsReturn(s) {
			return false
		}
	}
	// Neither an unlock nor a return follows in this block: the lock escapes
	// the block lexically (e.g. released by a helper); out of scope.
	return true
}

// deferContainsUnlock matches `defer mu.Unlock()` and
// `defer func() { ...; mu.Unlock(); ... }()`.
func deferContainsUnlock(p *Pass, d *ast.DeferStmt, key, want string) bool {
	if name, recv := mutexMethod(p.Pkg.Info, d.Call); name == want && exprKey(recv) == key {
		return true
	}
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		found := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if name, recv := mutexMethod(p.Pkg.Info, call); name == want && exprKey(recv) == key {
					found = true
					return false
				}
			}
			return true
		})
		return found
	}
	return false
}

// stmtContainsUnlock reports whether stmt performs (or defers) the matching
// unlock anywhere, not entering function literals except deferred ones.
func stmtContainsUnlock(p *Pass, stmt ast.Stmt, key, want string) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if d, ok := n.(*ast.DeferStmt); ok && deferContainsUnlock(p, d, key, want) {
			found = true
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if name, recv := mutexMethod(p.Pkg.Info, call); name == want && exprKey(recv) == key {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// stmtContainsReturn reports whether stmt contains a return statement, not
// entering function literals.
func stmtContainsReturn(stmt ast.Stmt) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			found = true
			return false
		}
		return !found
	})
	return found
}
