package trace

import (
	"math"
	"testing"
)

func batch() *Batch {
	return &Batch{
		Flow: "t",
		Runs: []Run{
			{Seq: 0, CycleTimeMs: 100, FirstPassMs: 100, RecoveryMs: 0, Succeeded: true},
			{Seq: 1, CycleTimeMs: 150, FirstPassMs: 100, RecoveryMs: 50, Succeeded: true},
			{Seq: 2, CycleTimeMs: 400, FirstPassMs: 100, RecoveryMs: 300, Succeeded: false},
			{Seq: 3, CycleTimeMs: 120, FirstPassMs: 100, RecoveryMs: 20, Succeeded: true},
		},
		SourceUpdatesPerHour: 2,
		PeriodMinutes:        60,
	}
}

func TestSuccessRate(t *testing.T) {
	if got := batch().SuccessRate(); got != 0.75 {
		t.Errorf("success rate = %f", got)
	}
	empty := &Batch{}
	if got := empty.SuccessRate(); got != 0 {
		t.Errorf("empty success rate = %f", got)
	}
}

func TestMeanCycleTime(t *testing.T) {
	// Mean over successful runs: (100+150+120)/3
	want := (100.0 + 150 + 120) / 3
	if got := batch().MeanCycleTime(); math.Abs(got-want) > 1e-9 {
		t.Errorf("mean cycle = %f, want %f", got, want)
	}
	// All failed: fall back to all runs.
	b := &Batch{Runs: []Run{
		{CycleTimeMs: 10}, {CycleTimeMs: 20},
	}}
	if got := b.MeanCycleTime(); got != 15 {
		t.Errorf("fallback mean = %f", got)
	}
	if got := (&Batch{}).MeanCycleTime(); got != 0 {
		t.Errorf("empty mean = %f", got)
	}
}

func TestMeanRecoveryTime(t *testing.T) {
	want := (0.0 + 50 + 300 + 20) / 4
	if got := batch().MeanRecoveryTime(); math.Abs(got-want) > 1e-9 {
		t.Errorf("mean recovery = %f, want %f", got, want)
	}
	if got := (&Batch{}).MeanRecoveryTime(); got != 0 {
		t.Errorf("empty = %f", got)
	}
}

func TestWithinDeadlineRate(t *testing.T) {
	b := batch()
	if got := b.WithinDeadlineRate(130); got != 0.5 {
		t.Errorf("rate(130) = %f", got) // runs 0 and 3
	}
	if got := b.WithinDeadlineRate(1000); got != 0.75 {
		t.Errorf("rate(1000) = %f", got) // failed run never counts
	}
	if got := b.WithinDeadlineRate(1); got != 0 {
		t.Errorf("rate(1) = %f", got)
	}
	if got := (&Batch{}).WithinDeadlineRate(10); got != 0 {
		t.Errorf("empty = %f", got)
	}
}

func TestPercentileCycleTime(t *testing.T) {
	b := batch() // successful cycle times: 100, 150, 120
	if got := b.PercentileCycleTime(0.5); got != 120 {
		t.Errorf("p50 = %f", got)
	}
	if got := b.PercentileCycleTime(1); got != 150 {
		t.Errorf("p100 = %f", got)
	}
	if got := b.PercentileCycleTime(0); got != 100 {
		t.Errorf("p0 = %f", got)
	}
	if got := b.PercentileCycleTime(0.95); got != 150 {
		t.Errorf("p95 = %f", got)
	}
	// Percentiles ignore failed runs.
	if got := b.PercentileCycleTime(1); got == 400 {
		t.Error("failed run leaked into percentile")
	}
	empty := &Batch{Runs: []Run{{CycleTimeMs: 9, Succeeded: false}}}
	if got := empty.PercentileCycleTime(0.5); got != 0 {
		t.Errorf("all-failed percentile = %f", got)
	}
}

func TestOpSummary(t *testing.T) {
	b := &Batch{Runs: []Run{
		{Ops: []OpStats{
			{Node: "a", Kind: 1, TimeMs: 10, RowsIn: 100},
			{Node: "b", Kind: 2, TimeMs: 30, RowsIn: 90, Failures: 1},
		}},
		{Ops: []OpStats{
			{Node: "a", Kind: 1, TimeMs: 20, RowsIn: 100},
			{Node: "b", Kind: 2, TimeMs: 30, RowsIn: 90, Failures: 2},
		}},
	}}
	sum := b.OpSummary()
	if len(sum) != 2 {
		t.Fatalf("ops = %d", len(sum))
	}
	// Bottleneck first: b has mean 30 vs a's 15.
	if sum[0].Node != "b" {
		t.Errorf("bottleneck = %s", sum[0].Node)
	}
	if sum[0].MeanTimeMs != 30 || sum[1].MeanTimeMs != 15 {
		t.Errorf("means = %f, %f", sum[0].MeanTimeMs, sum[1].MeanTimeMs)
	}
	if sum[0].Failures != 3 {
		t.Errorf("failures = %d", sum[0].Failures)
	}
	if sum[0].MeanRowsIn != 90 {
		t.Errorf("rows = %f", sum[0].MeanRowsIn)
	}
	wantShare := 30.0 / 45.0
	if diff := sum[0].TimeShare - wantShare; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("share = %f, want %f", sum[0].TimeShare, wantShare)
	}
	if got := (&Batch{}).OpSummary(); len(got) != 0 {
		t.Error("empty batch should summarise to nothing")
	}
}

func TestMean(t *testing.T) {
	b := batch()
	got := b.Mean(func(r Run) float64 { return float64(r.Seq) })
	if got != 1.5 {
		t.Errorf("mean seq = %f", got)
	}
	if got := (&Batch{}).Mean(func(Run) float64 { return 1 }); got != 0 {
		t.Errorf("empty mean = %f", got)
	}
}
