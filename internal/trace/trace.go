// Package trace defines the run-trace records that the simulator produces
// and the measure estimation consumes. The paper distinguishes measures that
// "derive directly from the static structure of the process model" from
// "those that are obtained from analysis of historical traces capturing the
// runtime behaviour of ETL components"; this package is the schema of those
// historical traces.
package trace

import (
	"math"
	"sort"

	"poiesis/internal/etl"
)

// OpStats captures the runtime behaviour of one operation during one run.
type OpStats struct {
	Node    etl.NodeID
	Kind    etl.OpKind
	RowsIn  int
	RowsOut int
	// TimeMs is the busy time of the operation (cost units ~ milliseconds).
	TimeMs float64
	// MemRows is the peak number of rows materialised by blocking operations.
	MemRows int
	// Failures counts how many times this operation failed in the run
	// (each failure triggers a retry from the nearest upstream recovery
	// point).
	Failures int
}

// Run is the trace of one end-to-end execution of an ETL flow.
type Run struct {
	Flow string
	// Seq is the ordinal of the run within a Monte-Carlo batch.
	Seq int
	// CycleTimeMs is the total wall-clock makespan including failure
	// recovery re-execution.
	CycleTimeMs float64
	// FirstPassMs is the makespan a failure-free execution would take.
	FirstPassMs float64
	// RecoveryMs is the extra time spent re-executing after failures.
	RecoveryMs float64
	// RowsLoaded is the number of rows delivered to all sinks.
	RowsLoaded int
	// Succeeded reports whether the run finished within its retry budget.
	Succeeded bool
	// FailureCount is the number of operation failures encountered.
	FailureCount int
	// CheckpointsUsed counts recoveries that could restart from a savepoint
	// instead of from the sources.
	CheckpointsUsed int
	// Ops holds per-operation statistics keyed in flow topological order.
	Ops []OpStats

	// Output quality, observed at the sinks.
	OutRows      int
	OutNullCells int
	OutDupRows   int
	OutErrRows   int
	// OutCells is OutRows * attribute count, the denominator for
	// completeness.
	OutCells int
}

// Batch is a set of runs of the same flow under the same configuration,
// i.e. the "historical traces" for one design alternative.
type Batch struct {
	Flow string
	Runs []Run
	// SourceUpdatesPerHour is the (max) refresh frequency of the flow's
	// sources; the freshness measures need it.
	SourceUpdatesPerHour float64
	// PeriodMinutes is the recurrence period of the process (how often the
	// ETL flow runs); graph-wide patterns may tune it.
	PeriodMinutes float64
}

// SuccessRate returns the fraction of runs that succeeded.
func (b *Batch) SuccessRate() float64 {
	if len(b.Runs) == 0 {
		return 0
	}
	ok := 0
	for _, r := range b.Runs {
		if r.Succeeded {
			ok++
		}
	}
	return float64(ok) / float64(len(b.Runs))
}

// MeanCycleTime returns the mean makespan over successful runs; if no run
// succeeded it falls back to all runs.
func (b *Batch) MeanCycleTime() float64 {
	sum, n := 0.0, 0
	for _, r := range b.Runs {
		if r.Succeeded {
			sum += r.CycleTimeMs
			n++
		}
	}
	if n == 0 {
		for _, r := range b.Runs {
			sum += r.CycleTimeMs
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MeanRecoveryTime returns the mean time spent in failure recovery.
func (b *Batch) MeanRecoveryTime() float64 {
	if len(b.Runs) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range b.Runs {
		sum += r.RecoveryMs
	}
	return sum / float64(len(b.Runs))
}

// WithinDeadlineRate returns the fraction of runs that succeeded with a
// cycle time not exceeding deadlineMs. It is the paper's reliability (%)
// axis: the probability the process delivers on time.
func (b *Batch) WithinDeadlineRate(deadlineMs float64) float64 {
	if len(b.Runs) == 0 {
		return 0
	}
	ok := 0
	for _, r := range b.Runs {
		if r.Succeeded && r.CycleTimeMs <= deadlineMs {
			ok++
		}
	}
	return float64(ok) / float64(len(b.Runs))
}

// PercentileCycleTime returns the p-quantile (0 < p <= 1) of cycle time
// over successful runs, using nearest-rank. Returns 0 when no run succeeded.
// Tail latency (p95/p99) is what delivery deadlines are really set against.
func (b *Batch) PercentileCycleTime(p float64) float64 {
	var times []float64
	for _, r := range b.Runs {
		if r.Succeeded {
			times = append(times, r.CycleTimeMs)
		}
	}
	if len(times) == 0 {
		return 0
	}
	sort.Float64s(times)
	if p <= 0 {
		return times[0]
	}
	if p >= 1 {
		return times[len(times)-1]
	}
	rank := int(math.Ceil(p*float64(len(times)))) - 1
	if rank < 0 {
		rank = 0
	}
	return times[rank]
}

// Mean aggregates an arbitrary per-run metric.
func (b *Batch) Mean(f func(Run) float64) float64 {
	if len(b.Runs) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range b.Runs {
		sum += f(r)
	}
	return sum / float64(len(b.Runs))
}

// OpAgg aggregates one operation's behaviour over a batch of runs: the
// bottleneck view an operator dashboard would show.
type OpAgg struct {
	Node       etl.NodeID
	Kind       etl.OpKind
	MeanTimeMs float64
	MeanRowsIn float64
	// Failures is the total failure count across all runs.
	Failures int
	// TimeShare is the operation's share of total busy time (0..1).
	TimeShare float64
}

// OpSummary aggregates per-operation statistics across the batch, ordered by
// descending mean busy time (bottlenecks first). Runs that ended early (after
// a budget-exhausting failure) contribute the operations they reached.
func (b *Batch) OpSummary() []OpAgg {
	type acc struct {
		agg  OpAgg
		n    int
		time float64
		rows float64
	}
	accs := map[etl.NodeID]*acc{}
	var order []etl.NodeID
	for _, r := range b.Runs {
		for _, op := range r.Ops {
			a := accs[op.Node]
			if a == nil {
				a = &acc{agg: OpAgg{Node: op.Node, Kind: op.Kind}}
				accs[op.Node] = a
				order = append(order, op.Node)
			}
			a.n++
			a.time += op.TimeMs
			a.rows += float64(op.RowsIn)
			a.agg.Failures += op.Failures
		}
	}
	total := 0.0
	out := make([]OpAgg, 0, len(order))
	for _, id := range order {
		a := accs[id]
		a.agg.MeanTimeMs = a.time / float64(a.n)
		a.agg.MeanRowsIn = a.rows / float64(a.n)
		total += a.agg.MeanTimeMs
		out = append(out, a.agg)
	}
	if total > 0 {
		for i := range out {
			out[i].TimeShare = out[i].MeanTimeMs / total
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].MeanTimeMs != out[j].MeanTimeMs {
			return out[i].MeanTimeMs > out[j].MeanTimeMs
		}
		return out[i].Node < out[j].Node
	})
	return out
}
