package server

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"poiesis/internal/core"
)

// sessionState is one live analyst session: the underlying core.Session plus
// the service-level metadata (identity, defaults, liveness).
type sessionState struct {
	id      string
	name    string
	created time.Time

	sess *core.Session
	// regKey canonicalizes the custom patterns of the session's creation
	// config: core.PlanKey sees only Options, not the pattern registry, so
	// plans made with custom patterns must be cache-partitioned by this
	// suffix or sessions with different registries would share results.
	regKey string

	// opMu serializes state-changing HTTP operations (plan, select) on this
	// session at the handler layer: plan holds it for the whole run, and a
	// concurrent plan/select fails fast with 409 instead of queueing. The
	// core.Session's own guard remains as the library-level backstop.
	opMu sync.Mutex

	// mu guards the mutable metadata below.
	mu       sync.Mutex
	lastUsed time.Time
	plans    int
}

func (st *sessionState) touch(now time.Time) {
	st.mu.Lock()
	st.lastUsed = now
	st.mu.Unlock()
}

func (st *sessionState) meta() (lastUsed time.Time, plans int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.lastUsed, st.plans
}

// planDone records a completed plan and refreshes liveness: a long run must
// not leave lastUsed pointing at the request's start, or the session would
// look idle for the whole run's duration.
func (st *sessionState) planDone(now time.Time) {
	st.mu.Lock()
	st.plans++
	st.lastUsed = now
	st.mu.Unlock()
}

// errTooManySessions is returned when the store is at capacity and nothing
// is expired.
var errTooManySessions = errors.New("server: session limit reached")

// sessionStore is the concurrency-safe in-memory session registry with TTL
// eviction: a session idle (no HTTP operation) for longer than ttl is
// dropped on the next store access. Eviction is opportunistic — every store
// operation sweeps — which keeps the store dependency-free and makes expiry
// deterministic under an injected clock in tests.
type sessionStore struct {
	ttl time.Duration
	max int
	now func() time.Time

	mu sync.Mutex
	m  map[string]*sessionState
}

func newSessionStore(ttl time.Duration, max int, now func() time.Time) *sessionStore {
	return &sessionStore{ttl: ttl, max: max, now: now, m: map[string]*sessionState{}}
}

// sweepLocked drops sessions idle past the TTL. Callers hold s.mu. A
// session whose opMu is held is mid-operation (e.g. a plan running longer
// than the TTL) and is never evicted — deleting it would orphan the run's
// result and history. Lock order is store.mu → opMu (try-only); handlers
// never acquire store.mu while holding opMu, so this cannot deadlock.
func (s *sessionStore) sweepLocked(now time.Time) {
	if s.ttl <= 0 {
		return
	}
	for id, st := range s.m {
		lastUsed, _ := st.meta()
		if now.Sub(lastUsed) <= s.ttl {
			continue
		}
		if !st.opMu.TryLock() {
			continue
		}
		st.opMu.Unlock()
		delete(s.m, id)
	}
}

func (s *sessionStore) add(st *sessionState) error {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked(now)
	if s.max > 0 && len(s.m) >= s.max {
		return errTooManySessions
	}
	st.created = now
	st.lastUsed = now
	s.m[st.id] = st
	return nil
}

// get returns the session and refreshes its liveness; ok is false for
// unknown or expired IDs.
func (s *sessionStore) get(id string) (*sessionState, bool) {
	now := s.now()
	s.mu.Lock()
	s.sweepLocked(now)
	st, ok := s.m[id]
	s.mu.Unlock()
	if ok {
		st.touch(now)
	}
	return st, ok
}

func (s *sessionStore) remove(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[id]; !ok {
		return false
	}
	delete(s.m, id)
	return true
}

// list returns the live sessions sorted by creation time (stable ties by ID).
func (s *sessionStore) list() []*sessionState {
	now := s.now()
	s.mu.Lock()
	s.sweepLocked(now)
	out := make([]*sessionState, 0, len(s.m))
	for _, st := range s.m {
		out = append(out, st)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].created.Equal(out[j].created) {
			return out[i].created.Before(out[j].created)
		}
		return out[i].id < out[j].id
	})
	return out
}

func (s *sessionStore) len() int {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked(now)
	return len(s.m)
}

// newSessionID returns a 128-bit random hex identifier.
func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("server: reading random session id: %v", err))
	}
	return hex.EncodeToString(b[:])
}
