package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"poiesis/internal/config"
	"poiesis/internal/core"
	"poiesis/internal/obs"
)

// sessionState is one live analyst session: the underlying core.Session plus
// the service-level metadata (identity, defaults, liveness).
type sessionState struct {
	id      string
	name    string
	created time.Time

	sess *core.Session
	// cfgDoc is the creation config document; it is persisted with the
	// session record so a restore can rebuild the planner (and regKey).
	cfgDoc *config.Document
	// regKey canonicalizes the custom patterns of the session's creation
	// config: core.PlanKey sees only Options, not the pattern registry, so
	// plans made with custom patterns must be cache-partitioned by this
	// suffix or sessions with different registries would share results.
	regKey string

	// opMu serializes state-changing HTTP operations (plan, select) on this
	// session at the handler layer: plan holds it for the whole run, and a
	// concurrent plan/select fails fast with 409 instead of queueing. The
	// core.Session's own guard remains as the library-level backstop.
	opMu sync.Mutex

	// lastUsedNanos is the liveness timestamp as Unix nanoseconds. It is
	// atomic, not mutex-guarded, so the TTL sweep can read the whole live
	// map without taking a per-session lock per entry — at 10k+ sessions
	// those acquisitions dominated every sweep.
	lastUsedNanos atomic.Int64

	// mu guards the mutable metadata below.
	mu    sync.Mutex
	plans int

	// traces is a ring of the most recent plan runs served for this session
	// (newest last), the /v1/sessions/{id}/trace timeline. Runtime-only: it
	// is deliberately not persisted — a restored session starts with an
	// empty timeline.
	traceMu sync.Mutex
	traces  []planTrace
}

// maxPlanTraces bounds the per-session trace ring.
const maxPlanTraces = 16

// planTrace records one plan request served for the session: identity for
// cross-referencing logs, the outcome, and — for runs computed locally —
// the planner stage spans.
type planTrace struct {
	RequestID string
	Start     time.Time
	Duration  time.Duration
	// Cached marks responses served from the cache tier (local hit or peer
	// fetch); their Stages describe the original computing run, carried on
	// the cached result, or are absent for peer-shipped results.
	Cached    bool
	Err       string
	Evaluated int
	Skyline   int
	Stages    []core.StageTiming
}

// recordTrace appends one trace, evicting the oldest past maxPlanTraces.
func (st *sessionState) recordTrace(t planTrace) {
	st.traceMu.Lock()
	defer st.traceMu.Unlock()
	if len(st.traces) >= maxPlanTraces {
		n := copy(st.traces, st.traces[1:])
		st.traces = st.traces[:n]
	}
	st.traces = append(st.traces, t)
}

// traceList snapshots the trace ring, newest last.
func (st *sessionState) traceList() []planTrace {
	st.traceMu.Lock()
	defer st.traceMu.Unlock()
	return append([]planTrace(nil), st.traces...)
}

func (st *sessionState) touch(now time.Time) {
	st.lastUsedNanos.Store(now.UnixNano())
}

func (st *sessionState) lastUsed() time.Time {
	return time.Unix(0, st.lastUsedNanos.Load())
}

func (st *sessionState) meta() (lastUsed time.Time, plans int) {
	st.mu.Lock()
	p := st.plans
	st.mu.Unlock()
	return st.lastUsed(), p
}

// planDone records a completed plan and refreshes liveness: a long run must
// not leave lastUsed pointing at the request's start, or the session would
// look idle for the whole run's duration.
func (st *sessionState) planDone(now time.Time) {
	st.mu.Lock()
	st.plans++
	st.mu.Unlock()
	st.touch(now)
}

// record builds the persistence record of the session's current state.
// Callers hold st.opMu (or own the state exclusively, as add does), so the
// underlying core.Session cannot be mid-mutation.
func (st *sessionState) record() (*SessionRecord, error) {
	snap, err := st.sess.Snapshot()
	if err != nil {
		return nil, err
	}
	lastUsed, plans := st.meta()
	return &SessionRecord{
		Version:  SessionRecordVersion,
		ID:       st.id,
		Name:     st.name,
		Created:  st.created,
		LastUsed: lastUsed,
		Plans:    plans,
		Config:   st.cfgDoc,
		Session:  snap,
	}, nil
}

// errTooManySessions is returned when the store is at capacity and nothing
// is expired.
var errTooManySessions = errors.New("server: session limit reached")

// sessionStore is the concurrency-safe session registry with TTL eviction: a
// session idle (no HTTP operation) for longer than ttl is dropped by the
// next store access that observes it. Expiry stays exact — get never hands
// out a session past its TTL, and list/len never report one — but the cost
// is no longer O(live sessions) on every get: a lookup checks only the
// requested session's liveness inline, and the full reclaiming sweep of the
// map runs at most once per sweepEvery (list and len, which must enumerate
// the map anyway, sweep on every call). Everything is driven by the injected
// clock, so expiry is deterministic in tests.
//
// Live sessions are held in memory, so reads (get, list) never touch the
// persistence layer; every state change writes a fresh record through to the
// SessionBackend, and startup restores whatever records the backend kept.
//
// Backend record deletion for TTL-evicted sessions is handed to a bounded
// background worker instead of running on the request path: with the disk
// backend each delete is an fsync'd unlink, and a get that evicts thousands
// of expired sessions must not stall behind that I/O. Explicit DELETEs
// (remove) stay synchronous — the client was promised the record is gone.
type sessionStore struct {
	ttl     time.Duration
	max     int
	now     func() time.Time
	backend SessionBackend
	log     *slog.Logger
	// tracer roots detached traces for background work (the eviction
	// worker's backend deletes); nil when tracing is disabled.
	tracer *obs.Tracer

	// sweepEvery bounds how often the full map sweep runs on the get path;
	// derived from the TTL (ttl/16, clamped to [1s, 30s]). Tests override.
	sweepEvery time.Duration

	// persistErrs counts write-through failures: the store stays available
	// on a failed backend write (the in-memory state is still correct), but
	// the degradation is surfaced in /v1/stats.
	persistErrs atomic.Int64

	// Eviction worker state: evictCh feeds TTL-evicted session IDs to one
	// background goroutine that deletes their backend records. evictDepth
	// tracks the queue backlog and evictDropped the IDs discarded because
	// the queue was full (their stale records are reclaimed by the startup
	// sweep — they are past the TTL by definition); both are surfaced in
	// /v1/stats. evictsDone counts completed deletes, for tests and stats.
	evictCh      chan string
	evictDepth   atomic.Int64
	evictDropped atomic.Int64
	evictsDone   atomic.Int64
	workerDone   chan struct{}
	closeOnce    sync.Once

	mu        sync.Mutex
	lastSweep time.Time
	m         map[string]*sessionState
}

// evictQueueCap bounds the eviction worker's backlog.
const evictQueueCap = 1024

func newSessionStore(ttl time.Duration, max int, now func() time.Time, backend SessionBackend, log *slog.Logger, tracer *obs.Tracer) *sessionStore {
	if backend == nil {
		backend = NewMemoryBackend()
	}
	if log == nil {
		log = defaultLogger
	}
	sweepEvery := ttl / 16
	if sweepEvery < time.Second {
		sweepEvery = time.Second
	}
	if sweepEvery > 30*time.Second {
		sweepEvery = 30 * time.Second
	}
	s := &sessionStore{
		ttl: ttl, max: max, now: now, backend: backend, log: log, tracer: tracer,
		sweepEvery: sweepEvery,
		evictCh:    make(chan string, evictQueueCap),
		workerDone: make(chan struct{}),
		m:          map[string]*sessionState{},
	}
	go s.evictWorker()
	return s
}

// evictWorker drains TTL-evicted session IDs and deletes their backend
// records off the request path. One worker keeps backend deletes serialized,
// mirroring the old synchronous order. Each delete runs under a detached
// trace (there is no originating request to parent it on), so slow
// eviction I/O shows up in /v1/traces like any other backend work.
func (s *sessionStore) evictWorker() {
	defer close(s.workerDone)
	for id := range s.evictCh {
		s.evictOne(id)
		s.evictDepth.Add(-1)
		s.evictsDone.Add(1)
	}
}

// evictOne deletes one evicted session's backend record under its own
// detached trace.
func (s *sessionStore) evictOne(id string) {
	// The eviction worker legitimately outlives every request: its deletes
	// were queued by requests that have long since returned.
	//lint:ignore ctxpropagate background eviction worker, no request to inherit from
	ctx, span := s.tracer.StartDetached(context.Background(), "evict.session")
	defer span.End()
	span.SetAttr("session", id)
	start := time.Now()
	err := s.backend.Delete(id)
	if obs.Traced(ctx) {
		obs.RecordSpan(ctx, "backend.delete", start, time.Since(start),
			obs.String("backend", s.backend.Name()))
	}
	if err != nil {
		s.persistErrs.Add(1)
		span.Fail(err)
		s.log.Warn("server: evicting session from backend failed",
			"session", id, "backend", s.backend.Name(), "err", err)
	}
}

// close stops the eviction worker after draining the queued deletes. Safe to
// call more than once.
func (s *sessionStore) close() {
	s.closeOnce.Do(func() { close(s.evictCh) })
	<-s.workerDone
}

// sweepLocked drops sessions idle past the TTL from the live map and
// returns their IDs; callers hand the IDs to the eviction worker *after*
// releasing s.mu (queueEvictions), so the global lock is never held across
// backend I/O. The scan itself is one atomic liveness load per entry —
// per-session mutexes are never taken here. A session whose opMu is held is
// mid-operation (e.g. a plan running longer than the TTL) and is never
// evicted — deleting it would orphan the run's result and history. Lock
// order is store.mu → opMu (try-only); handlers never acquire store.mu while
// holding opMu, so this cannot deadlock.
func (s *sessionStore) sweepLocked(now time.Time) (evicted []string) {
	if s.ttl <= 0 {
		return nil
	}
	s.lastSweep = now
	for id, st := range s.m {
		if !s.expiredLocked(st, now) {
			continue
		}
		delete(s.m, id)
		evicted = append(evicted, id)
	}
	return evicted
}

// maybeSweepLocked runs the full sweep at most once per sweepEvery — the get
// path's amortization. Expired sessions the interval leaves behind are still
// invisible: get checks its own target inline, and list/len always sweep.
func (s *sessionStore) maybeSweepLocked(now time.Time) []string {
	if s.ttl <= 0 || now.Sub(s.lastSweep) < s.sweepEvery {
		return nil
	}
	return s.sweepLocked(now)
}

// expiredLocked reports whether st is past the TTL and not mid-operation
// (an opMu holder keeps its session alive regardless of idle time).
func (s *sessionStore) expiredLocked(st *sessionState, now time.Time) bool {
	if s.ttl <= 0 || now.Sub(st.lastUsed()) <= s.ttl {
		return false
	}
	if !st.opMu.TryLock() {
		return false
	}
	st.opMu.Unlock()
	return true
}

// queueEvictions hands freshly evicted sessions' IDs to the background
// worker. Called without s.mu held. When the queue is full the ID is dropped
// and counted: the stale record is reclaimed by the next startup sweep (it
// is past the TTL by definition), and the same holds should the process
// crash before the worker gets to a queued delete.
func (s *sessionStore) queueEvictions(ids []string) {
	for _, id := range ids {
		// Increment before the send so the depth counter never dips negative:
		// it reads as queued + in-flight deletes.
		s.evictDepth.Add(1)
		select {
		case s.evictCh <- id:
		default:
			s.evictDepth.Add(-1)
			s.evictDropped.Add(1)
			s.log.Warn("server: eviction queue full; leaving session record for the startup sweep", "session", id)
		}
	}
}

// add registers a new session, writing its initial record through to the
// backend first: a session the backend refused to persist is never admitted,
// so the store can't hold sessions that would silently vanish on restart.
// The snapshot and backend write happen without holding the store lock — st
// is not shared yet — and only after a capacity pre-check, so a full server
// rejects creates cheaply instead of paying a snapshot plus durable write
// per 503. The insert re-checks capacity authoritatively; in the rare race
// where the store filled in between, the just-written record is rolled back.
func (s *sessionStore) add(ctx context.Context, st *sessionState) error {
	now := s.now()
	if s.atCapacity(now) {
		return errTooManySessions
	}
	st.created = now
	st.touch(now)
	rec, err := st.record()
	if err == nil {
		err = s.backendPut(ctx, rec)
	}
	if err != nil {
		s.persistErrs.Add(1)
		return fmt.Errorf("persisting session: %w", err)
	}

	s.mu.Lock()
	full := s.max > 0 && len(s.m) >= s.max
	if !full {
		s.m[st.id] = st
	}
	s.mu.Unlock()
	if full {
		if err := s.backend.Delete(st.id); err != nil {
			s.persistErrs.Add(1)
			s.log.Warn("server: rolling back record of rejected session failed", "session", st.id, "err", err)
		}
		return errTooManySessions
	}
	return nil
}

// backendPut writes one record, recording a backend.put span on the
// request's trace (attribute construction is skipped entirely untraced).
func (s *sessionStore) backendPut(ctx context.Context, rec *SessionRecord) error {
	start := time.Now()
	err := s.backend.Put(rec)
	if obs.Traced(ctx) {
		obs.RecordSpan(ctx, "backend.put", start, time.Since(start),
			obs.String("backend", s.backend.Name()), obs.String("session", rec.ID))
	}
	return err
}

// atCapacity sweeps and reports whether the store is full. The sweep here is
// always a full one: a create must reclaim every expired slot before it is
// refused, whatever the amortization interval says.
func (s *sessionStore) atCapacity(now time.Time) bool {
	s.mu.Lock()
	evicted := s.sweepLocked(now)
	full := s.max > 0 && len(s.m) >= s.max
	s.mu.Unlock()
	s.queueEvictions(evicted)
	return full
}

// adopt inserts a session restored from a backend record without writing it
// back (the backend already holds exactly this state). created/lastUsed come
// from the record.
func (s *sessionStore) adopt(st *sessionState) {
	s.mu.Lock()
	s.m[st.id] = st
	s.mu.Unlock()
}

// get returns the session and refreshes its liveness; ok is false for
// unknown or expired IDs. The expiry check is inline and O(1): only the
// requested session's liveness is examined (and the session evicted right
// here if it is past the TTL), so a lookup no longer scans the whole live
// map — the full reclaiming sweep runs at most once per sweepEvery. The
// touch happens while the store lock is held: refreshing after releasing it
// would let a concurrent sweep observe the stale lastUsed and evict the
// session between the unlock and the touch, handing the caller a session
// that is no longer in the store.
func (s *sessionStore) get(id string) (*sessionState, bool) {
	now := s.now()
	s.mu.Lock()
	evicted := s.maybeSweepLocked(now)
	st, ok := s.m[id]
	if ok && s.expiredLocked(st, now) {
		delete(s.m, id)
		evicted = append(evicted, id)
		st, ok = nil, false
	}
	if ok {
		st.touch(now)
	}
	s.mu.Unlock()
	s.queueEvictions(evicted)
	return st, ok
}

func (s *sessionStore) remove(ctx context.Context, id string) bool {
	s.mu.Lock()
	_, ok := s.m[id]
	if ok {
		delete(s.m, id)
	}
	s.mu.Unlock()
	if !ok {
		return false
	}
	// Backend delete outside s.mu; the caller holds the session's opMu, so
	// no plan/select can re-persist the record concurrently.
	start := time.Now()
	err := s.backend.Delete(id)
	if obs.Traced(ctx) {
		obs.RecordSpan(ctx, "backend.delete", start, time.Since(start),
			obs.String("backend", s.backend.Name()), obs.String("session", id))
	}
	if err != nil {
		s.persistErrs.Add(1)
		s.log.Warn("server: deleting session from backend failed",
			"session", id, "backend", s.backend.Name(), "err", err)
	}
	return true
}

// persist writes the session's current state through to the backend after a
// state-changing operation (plan completion, select). Callers hold st.opMu,
// which excludes concurrent deletion and TTL eviction (both only act on
// sessions whose opMu they can acquire), so a persisted record can never
// resurrect a session that was just removed. Write-through failures degrade
// durability, not availability: the error is counted and logged, and the
// in-memory session keeps serving.
func (s *sessionStore) persist(ctx context.Context, st *sessionState) error {
	rec, err := st.record()
	if err == nil {
		err = s.backendPut(ctx, rec)
	}
	if err != nil {
		s.persistErrs.Add(1)
		withCtx(s.log, ctx).Warn("server: persisting session to backend failed",
			"session", st.id, "backend", s.backend.Name(), "err", err)
	}
	return err
}

// list returns the live sessions sorted by creation time (stable ties by
// ID). Listing must visit every entry anyway, so it doubles as a full sweep
// — expired sessions are reclaimed, never returned.
func (s *sessionStore) list() []*sessionState {
	now := s.now()
	s.mu.Lock()
	evicted := s.sweepLocked(now)
	out := make([]*sessionState, 0, len(s.m))
	for _, st := range s.m {
		out = append(out, st)
	}
	s.mu.Unlock()
	s.queueEvictions(evicted)
	sort.Slice(out, func(i, j int) bool {
		if !out[i].created.Equal(out[j].created) {
			return out[i].created.Before(out[j].created)
		}
		return out[i].id < out[j].id
	})
	return out
}

// len reports the live session count; like list it sweeps fully, so the
// count never includes expired sessions.
func (s *sessionStore) len() int {
	now := s.now()
	s.mu.Lock()
	evicted := s.sweepLocked(now)
	n := len(s.m)
	s.mu.Unlock()
	s.queueEvictions(evicted)
	return n
}

// newSessionID returns a 128-bit random hex identifier.
func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("server: reading random session id: %v", err))
	}
	return hex.EncodeToString(b[:])
}
