package server

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"log"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"poiesis/internal/config"
	"poiesis/internal/core"
)

// sessionState is one live analyst session: the underlying core.Session plus
// the service-level metadata (identity, defaults, liveness).
type sessionState struct {
	id      string
	name    string
	created time.Time

	sess *core.Session
	// cfgDoc is the creation config document; it is persisted with the
	// session record so a restore can rebuild the planner (and regKey).
	cfgDoc *config.Document
	// regKey canonicalizes the custom patterns of the session's creation
	// config: core.PlanKey sees only Options, not the pattern registry, so
	// plans made with custom patterns must be cache-partitioned by this
	// suffix or sessions with different registries would share results.
	regKey string

	// opMu serializes state-changing HTTP operations (plan, select) on this
	// session at the handler layer: plan holds it for the whole run, and a
	// concurrent plan/select fails fast with 409 instead of queueing. The
	// core.Session's own guard remains as the library-level backstop.
	opMu sync.Mutex

	// mu guards the mutable metadata below.
	mu       sync.Mutex
	lastUsed time.Time
	plans    int
}

func (st *sessionState) touch(now time.Time) {
	st.mu.Lock()
	st.lastUsed = now
	st.mu.Unlock()
}

func (st *sessionState) meta() (lastUsed time.Time, plans int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.lastUsed, st.plans
}

// planDone records a completed plan and refreshes liveness: a long run must
// not leave lastUsed pointing at the request's start, or the session would
// look idle for the whole run's duration.
func (st *sessionState) planDone(now time.Time) {
	st.mu.Lock()
	st.plans++
	st.lastUsed = now
	st.mu.Unlock()
}

// record builds the persistence record of the session's current state.
// Callers hold st.opMu (or own the state exclusively, as add does), so the
// underlying core.Session cannot be mid-mutation.
func (st *sessionState) record() (*SessionRecord, error) {
	snap, err := st.sess.Snapshot()
	if err != nil {
		return nil, err
	}
	lastUsed, plans := st.meta()
	return &SessionRecord{
		Version:  SessionRecordVersion,
		ID:       st.id,
		Name:     st.name,
		Created:  st.created,
		LastUsed: lastUsed,
		Plans:    plans,
		Config:   st.cfgDoc,
		Session:  snap,
	}, nil
}

// errTooManySessions is returned when the store is at capacity and nothing
// is expired.
var errTooManySessions = errors.New("server: session limit reached")

// sessionStore is the concurrency-safe session registry with TTL eviction: a
// session idle (no HTTP operation) for longer than ttl is dropped on the next
// store access. Eviction is opportunistic — every store operation sweeps —
// which keeps the store dependency-free and makes expiry deterministic under
// an injected clock in tests.
//
// Live sessions are held in memory, so reads (get, list) never touch the
// persistence layer; every state change writes a fresh record through to the
// SessionBackend, and startup restores whatever records the backend kept.
type sessionStore struct {
	ttl     time.Duration
	max     int
	now     func() time.Time
	backend SessionBackend
	logf    func(format string, args ...any)

	// persistErrs counts write-through failures: the store stays available
	// on a failed backend write (the in-memory state is still correct), but
	// the degradation is surfaced in /v1/stats.
	persistErrs atomic.Int64

	mu sync.Mutex
	m  map[string]*sessionState
}

func newSessionStore(ttl time.Duration, max int, now func() time.Time, backend SessionBackend, logf func(string, ...any)) *sessionStore {
	if backend == nil {
		backend = NewMemoryBackend()
	}
	if logf == nil {
		logf = log.Printf
	}
	return &sessionStore{ttl: ttl, max: max, now: now, backend: backend, logf: logf, m: map[string]*sessionState{}}
}

// sweepLocked drops sessions idle past the TTL from the live map and
// returns their IDs; callers delete the backend records *after* releasing
// s.mu (evictRecords), so the global lock is never held across backend I/O.
// A session whose opMu is held is mid-operation (e.g. a plan running longer
// than the TTL) and is never evicted — deleting it would orphan the run's
// result and history. Lock order is store.mu → opMu (try-only); handlers
// never acquire store.mu while holding opMu, so this cannot deadlock.
func (s *sessionStore) sweepLocked(now time.Time) (evicted []string) {
	if s.ttl <= 0 {
		return nil
	}
	for id, st := range s.m {
		lastUsed, _ := st.meta()
		if now.Sub(lastUsed) <= s.ttl {
			continue
		}
		if !st.opMu.TryLock() {
			continue
		}
		st.opMu.Unlock()
		delete(s.m, id)
		evicted = append(evicted, id)
	}
	return evicted
}

// evictRecords removes freshly evicted sessions' records from the backend.
// Called without s.mu held. Should the process crash between the in-memory
// eviction and this delete, the startup sweep purges the record anyway (it
// is past the TTL by definition).
func (s *sessionStore) evictRecords(ids []string) {
	for _, id := range ids {
		if err := s.backend.Delete(id); err != nil {
			s.persistErrs.Add(1)
			s.logf("server: evicting session %s from %s backend: %v", id, s.backend.Name(), err)
		}
	}
}

// add registers a new session, writing its initial record through to the
// backend first: a session the backend refused to persist is never admitted,
// so the store can't hold sessions that would silently vanish on restart.
// The snapshot and backend write happen without holding the store lock — st
// is not shared yet — and only after a capacity pre-check, so a full server
// rejects creates cheaply instead of paying a snapshot plus durable write
// per 503. The insert re-checks capacity authoritatively; in the rare race
// where the store filled in between, the just-written record is rolled back.
func (s *sessionStore) add(st *sessionState) error {
	now := s.now()
	if s.atCapacity(now) {
		return errTooManySessions
	}
	st.created = now
	st.lastUsed = now
	rec, err := st.record()
	if err == nil {
		err = s.backend.Put(rec)
	}
	if err != nil {
		s.persistErrs.Add(1)
		return fmt.Errorf("persisting session: %w", err)
	}

	s.mu.Lock()
	full := s.max > 0 && len(s.m) >= s.max
	if !full {
		s.m[st.id] = st
	}
	s.mu.Unlock()
	if full {
		if err := s.backend.Delete(st.id); err != nil {
			s.persistErrs.Add(1)
			s.logf("server: rolling back record of rejected session %s: %v", st.id, err)
		}
		return errTooManySessions
	}
	return nil
}

// atCapacity sweeps and reports whether the store is full.
func (s *sessionStore) atCapacity(now time.Time) bool {
	s.mu.Lock()
	evicted := s.sweepLocked(now)
	full := s.max > 0 && len(s.m) >= s.max
	s.mu.Unlock()
	s.evictRecords(evicted)
	return full
}

// adopt inserts a session restored from a backend record without writing it
// back (the backend already holds exactly this state). created/lastUsed come
// from the record.
func (s *sessionStore) adopt(st *sessionState) {
	s.mu.Lock()
	s.m[st.id] = st
	s.mu.Unlock()
}

// get returns the session and refreshes its liveness; ok is false for
// unknown or expired IDs. The touch happens while the store lock is held:
// refreshing after releasing it would let a concurrent sweep observe the
// stale lastUsed and evict the session between the unlock and the touch,
// handing the caller a session that is no longer in the store.
func (s *sessionStore) get(id string) (*sessionState, bool) {
	now := s.now()
	s.mu.Lock()
	evicted := s.sweepLocked(now)
	st, ok := s.m[id]
	if ok {
		st.touch(now)
	}
	s.mu.Unlock()
	s.evictRecords(evicted)
	return st, ok
}

func (s *sessionStore) remove(id string) bool {
	s.mu.Lock()
	_, ok := s.m[id]
	if ok {
		delete(s.m, id)
	}
	s.mu.Unlock()
	if !ok {
		return false
	}
	// Backend delete outside s.mu; the caller holds the session's opMu, so
	// no plan/select can re-persist the record concurrently.
	if err := s.backend.Delete(id); err != nil {
		s.persistErrs.Add(1)
		s.logf("server: deleting session %s from %s backend: %v", id, s.backend.Name(), err)
	}
	return true
}

// persist writes the session's current state through to the backend after a
// state-changing operation (plan completion, select). Callers hold st.opMu,
// which excludes concurrent deletion and TTL eviction (both only act on
// sessions whose opMu they can acquire), so a persisted record can never
// resurrect a session that was just removed. Write-through failures degrade
// durability, not availability: the error is counted and logged, and the
// in-memory session keeps serving.
func (s *sessionStore) persist(st *sessionState) error {
	rec, err := st.record()
	if err == nil {
		err = s.backend.Put(rec)
	}
	if err != nil {
		s.persistErrs.Add(1)
		s.logf("server: persisting session %s to %s backend: %v", st.id, s.backend.Name(), err)
	}
	return err
}

// list returns the live sessions sorted by creation time (stable ties by ID).
func (s *sessionStore) list() []*sessionState {
	now := s.now()
	s.mu.Lock()
	evicted := s.sweepLocked(now)
	out := make([]*sessionState, 0, len(s.m))
	for _, st := range s.m {
		out = append(out, st)
	}
	s.mu.Unlock()
	s.evictRecords(evicted)
	sort.Slice(out, func(i, j int) bool {
		if !out[i].created.Equal(out[j].created) {
			return out[i].created.Before(out[j].created)
		}
		return out[i].id < out[j].id
	})
	return out
}

func (s *sessionStore) len() int {
	now := s.now()
	s.mu.Lock()
	evicted := s.sweepLocked(now)
	n := len(s.m)
	s.mu.Unlock()
	s.evictRecords(evicted)
	return n
}

// newSessionID returns a 128-bit random hex identifier.
func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("server: reading random session id: %v", err))
	}
	return hex.EncodeToString(b[:])
}
