// Package server exposes the POIESIS explore-select loop as a multi-session
// HTTP service: the paper describes an interactive tool where an analyst
// uploads an ETL flow, explores quality-improved alternatives and
// iteratively selects redesigns from the Pareto frontier — this package
// serves that loop to many concurrent analysts from one process.
//
// Architecture:
//
//	session store — concurrency-safe in-memory registry of live sessions
//	                with TTL eviction; state-changing operations on one
//	                session serialize (concurrent ones fail fast with 409),
//	                so the underlying core.Session is never raced;
//	plan cache    — fingerprint-keyed (flow fingerprint + canonicalized
//	                options + binding, see core.PlanKey): identical plans
//	                across sessions are served from cache instead of
//	                recomputed, and concurrent identical requests collapse
//	                onto one computation;
//	handlers      — REST + Server-Sent Events: per-alternative progress
//	                streams over SSE, and a dropped client cancels its
//	                in-flight run through the request context.
//
// Endpoints (all under /v1):
//
//	GET    /v1/healthz                  liveness
//	GET    /v1/stats                    service counters (cache, sessions)
//	GET    /v1/patterns                 the pattern palette
//	GET    /v1/flows                    builtin flow names
//	POST   /v1/sessions                 create a session from a flow upload
//	GET    /v1/sessions                 list sessions
//	GET    /v1/sessions/{id}            session detail + history
//	DELETE /v1/sessions/{id}            drop a session
//	POST   /v1/sessions/{id}/plan       run one exploration (SSE optional)
//	GET    /v1/sessions/{id}/result     full last result as JSON
//	GET    /v1/sessions/{id}/skyline    frontier with full measure reports
//	GET    /v1/sessions/{id}/flow       current design (json|dot|xlm|ktr)
//	POST   /v1/sessions/{id}/select     integrate a skyline design
package server

import (
	"net/http"
	"sync/atomic"
	"time"
)

// Config tunes the service.
type Config struct {
	// SessionTTL evicts sessions idle longer than this. Default 30m; <0
	// disables eviction.
	SessionTTL time.Duration
	// MaxSessions caps live sessions (creation returns 503 beyond it).
	// Default 1024.
	MaxSessions int
	// CacheCapacity bounds the plan cache entry count (secondary LRU bound).
	// Default 128.
	CacheCapacity int
	// CacheMaxBytes bounds the plan cache by estimated result size: entries
	// weigh alternatives × (graph + report) bytes, so one huge exploration
	// cannot pin hundreds of small ones out — nor vice versa. Default 64 MiB.
	CacheMaxBytes int64
	// Now is the clock; tests inject a fake. Default time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.SessionTTL == 0 {
		c.SessionTTL = 30 * time.Minute
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.CacheCapacity <= 0 {
		c.CacheCapacity = 128
	}
	if c.CacheMaxBytes <= 0 {
		c.CacheMaxBytes = 64 << 20
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Server is the POIESIS planning service. It implements http.Handler; mount
// it directly on an http.Server.
type Server struct {
	cfg   Config
	store *sessionStore
	cache *planCache
	mux   *http.ServeMux

	plansComputed atomic.Int64
	plansCached   atomic.Int64
	evaluations   atomic.Int64
}

// New builds the service.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ttl := cfg.SessionTTL
	if ttl < 0 {
		ttl = 0 // sessionStore treats 0 as "no eviction"
	}
	s := &Server{
		cfg:   cfg,
		store: newSessionStore(ttl, cfg.MaxSessions, cfg.Now),
		cache: newPlanCache(cfg.CacheCapacity, cfg.CacheMaxBytes),
		mux:   http.NewServeMux(),
	}
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/patterns", s.handlePatterns)
	s.mux.HandleFunc("GET /v1/flows", s.handleFlows)
	s.mux.HandleFunc("POST /v1/sessions", s.handleCreateSession)
	s.mux.HandleFunc("GET /v1/sessions", s.handleListSessions)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleGetSession)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDeleteSession)
	s.mux.HandleFunc("POST /v1/sessions/{id}/plan", s.handlePlan)
	s.mux.HandleFunc("GET /v1/sessions/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/sessions/{id}/skyline", s.handleSkyline)
	s.mux.HandleFunc("GET /v1/sessions/{id}/flow", s.handleFlow)
	s.mux.HandleFunc("POST /v1/sessions/{id}/select", s.handleSelect)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Sessions reports the number of live sessions (after TTL sweep).
func (s *Server) Sessions() int { return s.store.len() }
