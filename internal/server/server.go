// Package server exposes the POIESIS explore-select loop as a multi-session
// HTTP service: the paper describes an interactive tool where an analyst
// uploads an ETL flow, explores quality-improved alternatives and
// iteratively selects redesigns from the Pareto frontier — this package
// serves that loop to many concurrent analysts from one process.
//
// Architecture:
//
//	session store — concurrency-safe registry of live sessions with TTL
//	                eviction; state-changing operations on one session
//	                serialize (concurrent ones fail fast with 409), so the
//	                underlying core.Session is never raced; reads are served
//	                from memory, while every state change writes a versioned
//	                session record through to a pluggable SessionBackend
//	                (in-memory by default, crash-safe disk snapshots via
//	                NewDiskBackend) and startup restores the backend's
//	                records, so sessions survive restarts;
//	plan cache    — fingerprint-keyed (flow fingerprint + canonicalized
//	                options + binding, see core.PlanKey): identical plans
//	                across sessions are served from cache instead of
//	                recomputed, and concurrent identical requests collapse
//	                onto one computation;
//	handlers      — REST + Server-Sent Events: per-alternative progress
//	                streams over SSE, and a dropped client cancels its
//	                in-flight run through the request context.
//
// In cluster mode (Config.Cluster) the server is one shard-aware replica:
// session requests route by consistent-hash ownership of the session ID
// (remote ones are proxied to the owner, one hop at most), the plan cache
// gains a shared tier keyed by canonical plan-key ownership, and startup
// restores only the backend records the ring assigns to this replica.
//
// Every request carries a request ID (X-Poiesis-Request-ID, minted when the
// client sends none) that is echoed on the response, propagated on cluster
// forwards and intra-cluster cache calls, stamped on the request-scoped log
// lines, and written to the structured access log (Config.AccessLogf) — so a
// slow forwarded request is greppable on every replica it touched. /metrics
// exposes the service's counters, gauges and latency histograms in the
// Prometheus text format.
//
// Endpoints:
//
//	GET    /metrics                     Prometheus text exposition
//	GET    /v1/traces                   index of retained distributed traces
//	GET    /v1/traces/{id}              one trace's span tree, merged across
//	                                    replicas (?format=chrome for Chrome
//	                                    trace-event JSON; ?local=1 for this
//	                                    replica's fragment only)
//	GET    /v1/healthz                  liveness + build info
//	GET    /v1/readyz                   readiness (restored + ring configured)
//	GET    /v1/cluster                  membership, ring and per-peer counters
//	GET    /v1/cache/{key}              peer cache fetch (intra-cluster)
//	PUT    /v1/cache/{key}              peer cache write-through (intra-cluster)
//	GET    /v1/stats                    service counters (cache, sessions)
//	GET    /v1/patterns                 the pattern palette
//	GET    /v1/flows                    builtin flow names
//	POST   /v1/sessions                 create a session from a flow upload
//	GET    /v1/sessions                 list sessions
//	GET    /v1/sessions/{id}            session detail + history
//	DELETE /v1/sessions/{id}            drop a session
//	POST   /v1/sessions/{id}/plan       run one exploration (SSE optional)
//	GET    /v1/sessions/{id}/trace      recent plan-run traces (stage spans)
//	GET    /v1/sessions/{id}/result     full last result as JSON
//	GET    /v1/sessions/{id}/skyline    frontier with full measure reports
//	GET    /v1/sessions/{id}/flow       current design (json|dot|xlm|ktr)
//	POST   /v1/sessions/{id}/select     integrate a skyline design
package server

import (
	"errors"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"poiesis/internal/cluster"
	"poiesis/internal/core"
	"poiesis/internal/obs"
)

// Config tunes the service.
type Config struct {
	// SessionTTL evicts sessions idle longer than this. Default 30m; <0
	// disables eviction.
	SessionTTL time.Duration
	// MaxSessions caps live sessions (creation returns 503 beyond it).
	// Default 1024.
	MaxSessions int
	// CacheCapacity bounds the plan cache entry count (secondary LRU bound).
	// Default 128.
	CacheCapacity int
	// CacheMaxBytes bounds the plan cache by estimated result size: entries
	// weigh alternatives × (graph + report) bytes, so one huge exploration
	// cannot pin hundreds of small ones out — nor vice versa. Default 64 MiB.
	CacheMaxBytes int64
	// Backend persists session records. Nil uses the in-memory backend
	// (sessions die with the process); NewDiskBackend gives crash-safe disk
	// snapshots that New restores on startup. The backend must have a single
	// writing server process.
	Backend SessionBackend
	// Cluster makes this server one shard-aware replica: sessions route to
	// the replica their ID hashes to (requests for remote sessions are
	// transparently forwarded, one hop at most), and the plan cache gains a
	// shared tier — on a local miss the key's owning replica is asked before
	// evaluating, and results are written through to the owner. Nil (the
	// default) is single-node mode, byte-for-byte the pre-cluster behavior.
	Cluster *cluster.Cluster
	// SSEKeepAlive is the interval between `: keepalive` comments on SSE
	// plan streams, so intermediary proxies don't drop a connection that is
	// silent between alternatives on a slow plan. Default 15s; <0 disables.
	SSEKeepAlive time.Duration
	// sseTick overrides the keepalive ticker; tests inject a channel they
	// drive by hand. Returns the tick channel and a stop function.
	sseTick func() (<-chan time.Time, func())
	// Logf reports restore progress, skipped snapshots and write-through
	// failures. Default log.Printf.
	Logf func(format string, args ...any)
	// AccessLogf, when non-nil, receives one structured line per served
	// request (request ID, method, path, route, status, duration, bytes).
	// Nil (the default) disables access logging — benchmarks and tests
	// should not drown in per-request lines; `poiesis serve` wires it to
	// the process logger.
	AccessLogf func(format string, args ...any)
	// TraceSample controls head sampling for distributed traces: one in N
	// root requests is retained (0 and 1 both mean every trace). The first
	// root and any errored trace are always retained regardless of N.
	// Negative disables tracing entirely: no spans are created and the
	// request path allocates nothing for it.
	TraceSample int
	// TraceBuffer bounds the in-process ring of retained traces served by
	// /v1/traces. Default 128.
	TraceBuffer int
	// Now is the clock; tests inject a fake. Default time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.SessionTTL == 0 {
		c.SessionTTL = 30 * time.Minute
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.CacheCapacity <= 0 {
		c.CacheCapacity = 128
	}
	if c.CacheMaxBytes <= 0 {
		c.CacheMaxBytes = 64 << 20
	}
	if c.Backend == nil {
		c.Backend = NewMemoryBackend()
	}
	if c.SSEKeepAlive == 0 {
		c.SSEKeepAlive = 15 * time.Second
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	// A backend's own warnings (skipped snapshots or rows, temp-file
	// cleanup) must reach the same sink as the server's, unless the caller
	// already routed them elsewhere. The logger is injected on a derived
	// view sharing the backend's state — never written onto the caller's
	// struct, which may be shared with another server (two New calls
	// racing on one backend's Logf field).
	if db, ok := c.Backend.(*DiskBackend); ok && db.Logf == nil {
		c.Backend = db.WithLogf(c.Logf)
	}
	if sb, ok := c.Backend.(*SQLBackend); ok && sb.Logf == nil {
		c.Backend = sb.WithLogf(c.Logf)
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Server is the POIESIS planning service. It implements http.Handler; mount
// it directly on an http.Server.
type Server struct {
	cfg     Config
	store   *sessionStore
	cache   *planCache
	mux     *http.ServeMux
	cluster *cluster.Cluster
	metrics *serverMetrics
	// tracer collects distributed trace span trees; nil when Config
	// disabled tracing (TraceSample < 0).
	tracer *obs.Tracer
	// logger is the structured face of Config.Logf: every server log line
	// flows through it so request-scoped lines carry rid/trace_id/span_id.
	logger *slog.Logger

	plansComputed atomic.Int64
	plansCached   atomic.Int64
	evaluations   atomic.Int64
	// restored counts sessions recovered from the backend at startup.
	restored int
	// skippedForeign counts backend records left alone at startup because
	// the ring assigns them to another replica.
	skippedForeign int
}

// New builds the service. When the configured backend holds session records
// from a previous run (the disk backend after a restart), every non-expired
// session is restored before the first request is served; corrupted or
// unloadable records are skipped with a logged warning rather than aborting
// startup.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	metrics := newServerMetrics()
	// Every backend op — including the restore List/Sweep below and the
	// eviction worker's deletes — flows through the metrics decorator.
	cfg.Backend = newObsBackend(cfg.Backend, metrics.reg)
	ttl := cfg.SessionTTL
	if ttl < 0 {
		ttl = 0 // sessionStore treats 0 as "no eviction"
	}
	var tracer *obs.Tracer
	if cfg.TraceSample >= 0 {
		service := "poiesis"
		if cfg.Cluster != nil {
			service = cfg.Cluster.Self()
		}
		sample := cfg.TraceSample
		if sample == 0 {
			sample = 1
		}
		tracer = obs.NewTracer(service, sample, cfg.TraceBuffer)
	}
	logger := obs.NewLogfLogger(cfg.Logf)
	s := &Server{
		cfg:     cfg,
		store:   newSessionStore(ttl, cfg.MaxSessions, cfg.Now, cfg.Backend, logger, tracer),
		cache:   newPlanCache(cfg.CacheCapacity, cfg.CacheMaxBytes),
		mux:     http.NewServeMux(),
		cluster: cfg.Cluster,
		metrics: metrics,
		tracer:  tracer,
		logger:  logger,
	}
	if s.cluster != nil {
		s.cluster.SetObserver(func(peer, op string, d time.Duration, failed bool) {
			metrics.peerOps.With(peer, op).Observe(d)
			if failed {
				metrics.peerErrs.With(peer, op).Inc()
			}
		})
	}
	s.restoreSessions(ttl)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/traces", s.handleTraceIndex)
	s.mux.HandleFunc("GET /v1/traces/{id}", s.handleTraceGet)
	s.mux.HandleFunc("GET /v1/sessions/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /v1/cluster", s.handleCluster)
	s.mux.HandleFunc("GET /v1/cache/{key}", s.handleCacheGet)
	s.mux.HandleFunc("PUT /v1/cache/{key}", s.handleCachePut)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/patterns", s.handlePatterns)
	s.mux.HandleFunc("GET /v1/flows", s.handleFlows)
	s.mux.HandleFunc("POST /v1/sessions", s.handleCreateSession)
	s.mux.HandleFunc("GET /v1/sessions", s.handleListSessions)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleGetSession)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDeleteSession)
	s.mux.HandleFunc("POST /v1/sessions/{id}/plan", s.handlePlan)
	s.mux.HandleFunc("GET /v1/sessions/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/sessions/{id}/skyline", s.handleSkyline)
	s.mux.HandleFunc("GET /v1/sessions/{id}/flow", s.handleFlow)
	s.mux.HandleFunc("POST /v1/sessions/{id}/select", s.handleSelect)
	return s
}

// restoreSessions reloads the backend's session records into the live store:
// records that expired while the service was down are purged, the rest are
// rebuilt (planner from the persisted config document, analyst state from
// the core snapshot) and adopted without a redundant write-back. A record
// that fails to load — corrupted snapshot, unknown future format, invalid
// flow — is skipped with a warning; one bad record must not take down the
// service or the healthy sessions next to it.
func (s *Server) restoreSessions(ttl time.Duration) {
	backend := s.cfg.Backend
	if ttl > 0 {
		cutoff := s.cfg.Now().Add(-ttl)
		// Sweep is best-effort per record: a partial error still comes with
		// the IDs that were removed, so report both.
		expired, err := backend.Sweep(cutoff)
		if err != nil {
			s.logger.Warn("server: sweeping expired session records failed", "err", err)
		}
		if len(expired) > 0 {
			s.logger.Info("server: dropped session records that expired while down", "count", len(expired))
		}
	}
	recs, err := backend.List()
	if err != nil {
		s.logger.Warn("server: listing session records failed; starting empty", "err", err)
		return
	}
	// If more records survive than the session cap admits, keep the most
	// recently used ones — the sessions analysts are most likely to return
	// to — not whichever IDs sort first.
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].LastUsed.After(recs[j].LastUsed) })
	for _, rec := range recs {
		if s.cfg.MaxSessions > 0 && s.restored >= s.cfg.MaxSessions {
			s.logger.Warn("server: session restore stopped at the session cap (most recently used kept)", "cap", s.cfg.MaxSessions)
			break
		}
		// In cluster mode each replica restores only the sessions the ring
		// assigns to it. Records owned by other replicas stay untouched in
		// the backend: session snapshots are self-contained, so moving a
		// record into the owner's backend is all a rebalance takes.
		if s.cluster != nil && !s.cluster.IsLocal(cluster.SessionKey(rec.ID)) {
			s.skippedForeign++
			continue
		}
		st, err := restoreState(rec)
		if err != nil {
			s.logger.Warn("server: skipping session record", "session", rec.ID, "err", err)
			continue
		}
		s.store.adopt(st)
		s.restored++
	}
	if s.restored > 0 {
		s.logger.Info("server: restored sessions from backend", "count", s.restored, "backend", backend.Name())
	}
	if s.skippedForeign > 0 {
		s.logger.Info("server: left session records owned by other replicas in the backend", "count", s.skippedForeign)
	}
}

// restoreState rebuilds a live sessionState from its persisted record.
func restoreState(rec *SessionRecord) (*sessionState, error) {
	if rec.ID == "" || rec.Session == nil {
		return nil, errNoSessionSnapshot
	}
	planner, err := plannerFromDoc(rec.Config)
	if err != nil {
		return nil, fmt.Errorf("rebuilding planner: %w", err)
	}
	sess, err := core.RestoreSession(planner, rec.Session)
	if err != nil {
		return nil, err
	}
	st := &sessionState{
		id:      rec.ID,
		name:    rec.Name,
		created: rec.Created,
		sess:    sess,
		cfgDoc:  rec.Config,
		regKey:  registryKeyFromDoc(rec.Config),
	}
	st.touch(rec.LastUsed)
	st.plans = rec.Plans
	return st, nil
}

var errNoSessionSnapshot = errors.New("server: record carries no session snapshot")

// ServeHTTP implements http.Handler. Every request first passes the
// observability middleware: a request ID is adopted from X-Poiesis-Request-ID
// (or minted), set back into the request headers — cluster forwards clone
// them, so the ID rides to the owning replica — attached to the context for
// request-scoped logging, and echoed on the response; route metrics and the
// access log are recorded when the handler returns. The middleware also
// roots the request's trace: an inbound traceparent (a cluster forward, or
// an instrumented client) is continued, anything else starts a fresh trace
// subject to head sampling, and the trace ID is echoed in
// X-Poiesis-Trace-ID so a slow response links straight to /v1/traces/{id}.
// In cluster mode, requests for sessions another replica owns are
// transparently proxied there before routing; everything else — and every
// request that already arrived forwarded — is served locally.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rid := r.Header.Get(obs.RequestIDHeader)
	if !obs.ValidRequestID(rid) {
		rid = obs.NewRequestID()
		r.Header.Set(obs.RequestIDHeader, rid)
	}
	w.Header().Set(obs.RequestIDHeader, rid)
	ctx := obs.ContextWithRequestID(r.Context(), rid)
	ctx, span := s.tracer.StartRequest(ctx, r.Header.Get(obs.TraceParentHeader), "http")
	defer span.End()
	if span != nil {
		// Restamp the header so a forward (which clones request headers)
		// parents the owner's fragment under this replica's root span.
		r.Header.Set(obs.TraceParentHeader, span.TraceParent())
		w.Header().Set(obs.TraceIDHeader, span.TraceIDString())
	}
	r = r.WithContext(ctx)

	ww, sw := wrapWriter(w)
	route := "forward"
	if !s.interceptForward(ww, r) {
		if _, pattern := s.mux.Handler(r); pattern != "" {
			route = pattern
		} else {
			route = "unmatched"
		}
		s.mux.ServeHTTP(ww, r)
	}
	status := sw.status
	if status == 0 {
		status = http.StatusOK
	}
	elapsed := time.Since(start)
	s.metrics.httpRequests.With(route, r.Method, codeClass(status)).Inc()
	if span != nil {
		// Route patterns already carry the method ("POST /v1/..."); the
		// fallback routes ("forward", "unmatched") get it from the attr.
		span.SetName("http " + route)
		span.SetAttr("method", r.Method)
		span.SetAttr("route", route)
		span.SetAttr("status", codeClass(status))
		span.SetAttr("rid", rid)
		if status >= 500 {
			span.FailMsg("http " + codeClass(status))
		}
		s.metrics.httpLatency.With(route).ObserveEx(elapsed, span.TraceIDString())
	} else {
		s.metrics.httpLatency.With(route).Observe(elapsed)
	}
	if s.cfg.AccessLogf != nil {
		tid := ""
		if span != nil {
			// The sampled request's line links straight to /v1/traces/{id}.
			tid = " trace_id=" + span.TraceIDString()
		}
		s.cfg.AccessLogf("access rid=%s%s method=%s path=%s route=%q status=%d dur=%s bytes=%d remote=%s",
			rid, tid, r.Method, r.URL.Path, route, status, elapsed.Round(time.Microsecond), sw.bytes, r.RemoteAddr)
	}
}

// Close retires the server's background machinery: the session store's
// eviction worker is stopped after draining its queued backend deletes.
// Call it after the HTTP listener has shut down — requests arriving during
// Close may race the worker teardown. In-memory state is untouched.
func (s *Server) Close() error {
	s.store.close()
	return nil
}

// Sessions reports the number of live sessions (after TTL sweep).
func (s *Server) Sessions() int { return s.store.len() }

// RestoredSessions reports how many sessions were recovered from the backend
// at startup.
func (s *Server) RestoredSessions() int { return s.restored }
