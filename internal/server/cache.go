package server

import (
	"container/list"
	"context"
	"sync"

	"poiesis/internal/core"
)

// planCache is the fingerprint-keyed result cache: planning is deterministic
// in (flow fingerprint, canonical options, binding) — the key produced by
// core.PlanKey — so identical plans across sessions are served from cache
// instead of recomputed. Entries are kept LRU-bounded, and concurrent
// requests for the same key are collapsed: one leader computes while waiters
// block, then share the leader's result. If the leader fails (e.g. its
// client disconnected, cancelling the run), one waiter takes over as the new
// leader rather than inheriting the failure.
//
// Cached Results are shared by reference. This is safe because planning and
// selection treat result graphs as read-only (patterns apply to clones); see
// core.Session.AdoptResult.
type planCache struct {
	max int

	mu       sync.Mutex
	ll       *list.List // front = most recently used
	entries  map[string]*list.Element
	inflight map[string]chan struct{}
	hits     int64
	misses   int64
}

type cacheEntry struct {
	key string
	res *core.Result
	// memo holds the derived response payload for the result, built at most
	// once per entry: serving a cache hit must not re-derive explanations,
	// pattern usage and the full-space scatter projection per request.
	memoOnce sync.Once
	memo     any
}

func newPlanCache(max int) *planCache {
	if max <= 0 {
		max = 128
	}
	return &planCache{
		max:      max,
		ll:       list.New(),
		entries:  map[string]*list.Element{},
		inflight: map[string]chan struct{}{},
	}
}

// do returns the cached result for key, or runs compute to produce it.
// hit reports whether the result was served from cache (directly, or by
// waiting on a concurrent leader computing the same key). On compute failure
// the error is returned and nothing is cached.
func (c *planCache) do(ctx context.Context, key string, compute func() (*core.Result, error)) (res *core.Result, hit bool, err error) {
	for {
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			c.ll.MoveToFront(e)
			c.hits++
			res := e.Value.(*cacheEntry).res
			c.mu.Unlock()
			return res, true, nil
		}
		if ch, ok := c.inflight[key]; ok {
			// Another request is computing this key: wait for it, then loop —
			// on its success the entry is present; on its failure we take over.
			c.mu.Unlock()
			select {
			case <-ch:
				continue
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		}
		ch := make(chan struct{})
		c.inflight[key] = ch
		c.misses++
		c.mu.Unlock()

		res, err = compute()

		c.mu.Lock()
		delete(c.inflight, key)
		if err == nil {
			c.addLocked(key, res)
		}
		c.mu.Unlock()
		close(ch)
		return res, false, err
	}
}

// memo returns the entry's derived payload, building it once via build; ok
// is false when the entry has been evicted (the caller then derives the
// payload itself). The once-guard means concurrent first hits block on one
// build instead of all paying for it.
func (c *planCache) memo(key string, build func(*core.Result) any) (any, bool) {
	c.mu.Lock()
	e, found := c.entries[key]
	c.mu.Unlock()
	if !found {
		return nil, false
	}
	ce := e.Value.(*cacheEntry)
	ce.memoOnce.Do(func() { ce.memo = build(ce.res) })
	return ce.memo, true
}

// addLocked inserts a freshly computed entry. The key cannot already be
// present: do() registers an inflight marker before computing, so concurrent
// requests for the key either hit the existing entry or wait on the marker —
// which also makes cacheEntry immutable after insertion, the property
// memo()'s unlocked e.Value read relies on.
func (c *planCache) addLocked(key string, res *core.Result) {
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

func (c *planCache) stats() (hits, misses int64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}
