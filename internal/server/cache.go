package server

import (
	"container/list"
	"context"
	"sync"

	"poiesis/internal/core"
)

// planCache is the fingerprint-keyed result cache: planning is deterministic
// in (flow fingerprint, canonical options, binding) — the key produced by
// core.PlanKey — so identical plans across sessions are served from cache
// instead of recomputed. Entries are LRU-evicted against a byte budget
// (large results weigh what they cost), with a secondary entry-count bound,
// and concurrent requests for the same key are collapsed: one leader
// computes while waiters block, then share the leader's result. If the
// leader fails (e.g. its client disconnected, cancelling the run), one
// waiter takes over as the new leader rather than inheriting the failure.
//
// Cached Results are shared by reference. This is safe because planning and
// selection treat result graphs as read-only (patterns apply to clones); see
// core.Session.AdoptResult.
type planCache struct {
	max      int
	maxBytes int64

	mu       sync.Mutex
	ll       *list.List // front = most recently used
	entries  map[string]*list.Element
	inflight map[string]chan struct{}
	bytes    int64
	hits     int64
	misses   int64
}

type cacheEntry struct {
	key    string
	res    *core.Result
	weight int64
	// memoed records (under planCache.mu) that the memo payload has been
	// built and charged against the byte budget, so eviction releases the
	// right amount.
	memoed bool
	// memo holds the derived response payload for the result, built at most
	// once per entry: serving a cache hit must not re-derive explanations,
	// pattern usage and the full-space scatter projection per request.
	memoOnce sync.Once
	memo     any
}

func newPlanCache(max int, maxBytes int64) *planCache {
	if max <= 0 {
		max = 128
	}
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	return &planCache{
		max:      max,
		maxBytes: maxBytes,
		ll:       list.New(),
		entries:  map[string]*list.Element{},
		inflight: map[string]chan struct{}{},
	}
}

// resultWeight estimates the resident size of a cached planning result in
// bytes. It scales with what actually dominates a Result — alternatives ×
// (graph size + measure-report size) — so one MaxAlternatives=4096 run
// weighs thousands of times more than a depth-1 exploration, instead of both
// counting as "one entry". The constants are deliberately round: the budget
// needs proportionality, not byte-exactness, and copy-on-write node sharing
// between alternative graphs makes an exact figure ill-defined anyway.
func resultWeight(res *core.Result) int64 {
	const (
		entryOverhead = 2 << 10
		perAlt        = 256 // Alternative struct, label, skyline bookkeeping
		perNode       = 256 // Node + schema attrs + params (amortized, shared)
		perEdge       = 48
		perMeasure    = 128 // Measure struct + name/unit string headers
	)
	w := int64(entryOverhead)
	weigh := func(a *core.Alternative) {
		w += perAlt
		if a.Graph != nil {
			w += int64(a.Graph.Len())*perNode + int64(a.Graph.EdgeCount())*perEdge
		}
		w += int64(len(a.Applications)) * perAlt
		if a.Report != nil {
			n := 0
			for ci := range a.Report.Chars {
				for mi := range a.Report.Chars[ci].Measures {
					n += 1 + len(a.Report.Chars[ci].Measures[mi].Detail)
				}
			}
			w += int64(n) * perMeasure
		}
	}
	weigh(&res.Initial)
	for i := range res.Alternatives {
		weigh(&res.Alternatives[i])
	}
	return w
}

// do returns the cached result for key, or runs compute to produce it.
// hit reports whether the result was served from cache (directly, or by
// waiting on a concurrent leader computing the same key). On compute failure
// the error is returned and nothing is cached.
func (c *planCache) do(ctx context.Context, key string, compute func() (*core.Result, error)) (res *core.Result, hit bool, err error) {
	for {
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			c.ll.MoveToFront(e)
			c.hits++
			res := e.Value.(*cacheEntry).res
			c.mu.Unlock()
			return res, true, nil
		}
		if ch, ok := c.inflight[key]; ok {
			// Another request is computing this key: wait for it, then loop —
			// on its success the entry is present; on its failure we take over.
			c.mu.Unlock()
			select {
			case <-ch:
				continue
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		}
		ch := make(chan struct{})
		c.inflight[key] = ch
		c.misses++
		c.mu.Unlock()

		res, err = compute()

		c.mu.Lock()
		delete(c.inflight, key)
		if err == nil {
			c.addLocked(key, res)
		}
		c.mu.Unlock()
		close(ch)
		return res, false, err
	}
}

// lookup returns the cached result for key without computing anything. When
// wait is true and another request is currently computing the key, lookup
// blocks for that computation and serves its result — the behavior the
// peer-facing cache endpoint wants: a peer asking the owner mid-computation
// should share the in-flight run, not start a redundant one. A miss (or a
// cancelled wait, or a failed leader) reports ok false.
func (c *planCache) lookup(ctx context.Context, key string, wait bool) (*core.Result, bool) {
	for {
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			c.ll.MoveToFront(e)
			c.hits++
			res := e.Value.(*cacheEntry).res
			c.mu.Unlock()
			return res, true
		}
		ch, inflight := c.inflight[key]
		if !inflight || !wait {
			c.misses++
			c.mu.Unlock()
			return nil, false
		}
		c.mu.Unlock()
		select {
		case <-ch:
			// Leader finished: on success the entry is resident now; on
			// failure the next loop reports the miss (no waiter takeover
			// here — peers must not compute for the owner).
		case <-ctx.Done():
			return nil, false
		}
	}
}

// put inserts an externally produced result — a peer's write-through — and
// evicts as usual. A key already resident or currently being computed
// locally is left alone: the local computation is at least as fresh, and
// addLocked's invariant (insert only absent keys) must hold.
func (c *planCache) put(key string, res *core.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return
	}
	if _, ok := c.inflight[key]; ok {
		return
	}
	c.addLocked(key, res)
}

// memo returns the entry's derived payload, building it once via build; ok
// is false when the entry has been evicted (the caller then derives the
// payload itself). The once-guard means concurrent first hits block on one
// build instead of all paying for it. The payload pins per-alternative
// explanations, pattern usage and the scatter projection — comparable in
// size to the result itself — so building it charges the entry's weight
// against the byte budget a second time and may trigger eviction of older
// entries.
func (c *planCache) memo(key string, build func(*core.Result) any) (any, bool) {
	c.mu.Lock()
	e, found := c.entries[key]
	c.mu.Unlock()
	if !found {
		return nil, false
	}
	ce := e.Value.(*cacheEntry)
	built := false
	ce.memoOnce.Do(func() {
		ce.memo = build(ce.res)
		built = true
	})
	if built {
		c.mu.Lock()
		// The entry may have been evicted while we built; only charge (and
		// mark) entries still resident. The caller gets the payload either
		// way.
		if _, still := c.entries[key]; still && !ce.memoed {
			ce.memoed = true
			c.bytes += ce.weight
			c.evictLocked()
		}
		c.mu.Unlock()
	}
	return ce.memo, true
}

// addLocked inserts a freshly computed entry and evicts least-recently-used
// entries until the byte budget (and the secondary entry cap) holds again.
// The newest entry itself is never evicted, so a single result larger than
// the whole budget still serves its waiters. The key cannot already be
// present: do() registers an inflight marker before computing, so concurrent
// requests for the key either hit the existing entry or wait on the marker —
// which also makes cacheEntry immutable after insertion, the property
// memo()'s unlocked e.Value read relies on.
func (c *planCache) addLocked(key string, res *core.Result) {
	w := resultWeight(res)
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, res: res, weight: w})
	c.bytes += w
	c.evictLocked()
}

// evictLocked drops least-recently-used entries until the byte budget and
// the entry cap hold, always keeping at least one entry resident.
func (c *planCache) evictLocked() {
	for c.ll.Len() > 1 && (c.bytes > c.maxBytes || c.ll.Len() > c.max) {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		victim := oldest.Value.(*cacheEntry)
		c.bytes -= victim.weight
		if victim.memoed {
			c.bytes -= victim.weight
		}
		delete(c.entries, victim.key)
	}
}

func (c *planCache) stats() (hits, misses int64, size int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len(), c.bytes
}
