package server

import (
	"encoding/json"
	"fmt"

	"poiesis/internal/etl"
	"poiesis/internal/pdi"
	"poiesis/internal/workloads"
	"poiesis/internal/xlm"
)

// flowSpec is the wire format for uploading a flow: exactly one of the
// fields must be set. Builtin names a demo flow; XLM and KTR carry a full
// document inline; Graph carries the JSON wire format of internal/etl.
type flowSpec struct {
	Builtin string          `json:"builtin,omitempty"`
	XLM     string          `json:"xlm,omitempty"`
	KTR     string          `json:"ktr,omitempty"`
	Graph   json.RawMessage `json:"graph,omitempty"`
}

// resolve materialises the flow a spec describes.
func (f flowSpec) resolve() (*etl.Graph, error) {
	set := 0
	for _, present := range []bool{f.Builtin != "", f.XLM != "", f.KTR != "", len(f.Graph) > 0} {
		if present {
			set++
		}
	}
	if set != 1 {
		return nil, fmt.Errorf("flow: exactly one of builtin, xlm, ktr, graph required")
	}
	switch {
	case f.Builtin != "":
		g, ok := workloads.Get(f.Builtin)
		if !ok {
			return nil, fmt.Errorf("flow: unknown builtin %q (have %v)", f.Builtin, workloads.Names())
		}
		return g, nil
	case f.XLM != "":
		return xlm.Decode([]byte(f.XLM))
	case f.KTR != "":
		return pdi.Decode([]byte(f.KTR))
	default:
		var g etl.Graph
		if err := g.UnmarshalJSON(f.Graph); err != nil {
			return nil, err
		}
		return &g, nil
	}
}
