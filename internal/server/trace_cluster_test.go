package server

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"poiesis/internal/cluster"
	"poiesis/internal/obs"
)

// traceDoc mirrors the GET /v1/traces/{id} body for assertions.
type traceDoc struct {
	ID       string         `json:"id"`
	Root     string         `json:"root"`
	Services []string       `json:"services"`
	Spans    []obs.SpanData `json:"spans"`
}

func fetchTrace(t *testing.T, url, id string) (traceDoc, int) {
	t.Helper()
	code, b := httpDo(t, "GET", url+"/v1/traces/"+id, "")
	var doc traceDoc
	if code == http.StatusOK {
		if err := json.Unmarshal(b, &doc); err != nil {
			t.Fatalf("trace document from %s: %v\n%s", url, err, b)
		}
	}
	return doc, code
}

// TestClusterForwardedPlanSingleTrace is the acceptance property of the
// tracing tentpole: a plan request through a non-owning replica yields ONE
// trace, retrievable from any replica, whose tree holds both replicas'
// fragments — the proxy's http root with the cluster.forward hop under it,
// and the owner's http fragment grafted under the hop, with the planner,
// per-alternative, and simulator children inside.
func TestClusterForwardedPlanSingleTrace(t *testing.T) {
	servers, urls := startReplicas(t, 3, nil)
	id := clusterCreateSession(t, urls[0], "traced")
	if owner := servers[0].cluster.Owner(cluster.SessionKey(id)); owner != "n0" {
		// startReplicas draws session IDs until the creator owns them; the
		// ownership check in TestClusterForwardedSessionAccess guards this.
		t.Skipf("session unexpectedly owned by %s", owner)
	}

	// Plan through replica 1: not the owner, so the request forwards to n0.
	req, err := http.NewRequest("POST", urls[1]+"/v1/sessions/"+id+"/plan", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded plan: %d", resp.StatusCode)
	}
	tid := resp.Header.Get(obs.TraceIDHeader)
	if !obs.ValidTraceID(tid) {
		t.Fatalf("forwarded plan response carries no valid trace ID: %q", tid)
	}

	// The merged tree must be retrievable from EVERY replica: the proxy and
	// the owner each hold a fragment, n2 holds nothing and assembles the
	// whole trace from its peers.
	for i, url := range urls {
		doc, code := fetchTrace(t, url, tid)
		if code != http.StatusOK {
			t.Fatalf("replica %d: GET /v1/traces/%s -> %d", i, tid, code)
		}
		if doc.ID != tid {
			t.Fatalf("replica %d returned trace %s, want %s", i, doc.ID, tid)
		}
		assertForwardedTraceShape(t, i, doc)
	}
}

func assertForwardedTraceShape(t *testing.T, replica int, doc traceDoc) {
	t.Helper()
	services := map[string]bool{}
	for _, s := range doc.Services {
		services[s] = true
	}
	if !services["n0"] || !services["n1"] {
		t.Errorf("replica %d: merged trace spans services %v, want both n0 and n1", replica, doc.Services)
	}

	byID := map[string]obs.SpanData{}
	for _, sp := range doc.Spans {
		byID[sp.SpanID] = sp
	}
	var roots, forward, ownerHTTP []obs.SpanData
	names := map[string]int{}
	for _, sp := range doc.Spans {
		names[sp.Name]++
		if _, ok := byID[sp.ParentID]; !ok {
			roots = append(roots, sp)
		}
		if sp.Name == "cluster.forward" {
			forward = append(forward, sp)
		}
		if sp.Service == "n0" && strings.HasPrefix(sp.Name, "http ") {
			ownerHTTP = append(ownerHTTP, sp)
		}
	}
	if len(roots) != 1 {
		t.Fatalf("replica %d: %d root spans, want 1 (spans %v)", replica, len(roots), names)
	}
	if roots[0].Service != "n1" || !strings.HasPrefix(roots[0].Name, "http ") {
		t.Errorf("replica %d: root is %q on %s, want the proxy's http span on n1",
			replica, roots[0].Name, roots[0].Service)
	}
	if len(forward) != 1 {
		t.Fatalf("replica %d: %d cluster.forward spans, want 1", replica, len(forward))
	}
	if forward[0].Service != "n1" || forward[0].ParentID != roots[0].SpanID {
		t.Errorf("replica %d: forward hop on %s under %s, want under the n1 root",
			replica, forward[0].Service, forward[0].ParentID)
	}
	if len(ownerHTTP) != 1 {
		t.Fatalf("replica %d: %d owner http fragments, want 1 (spans %v)", replica, len(ownerHTTP), names)
	}
	if ownerHTTP[0].ParentID != forward[0].SpanID {
		t.Errorf("replica %d: owner fragment parents %s, want the forward hop %s",
			replica, ownerHTTP[0].ParentID, forward[0].SpanID)
	}
	// The owner's fragment must hold the instrumented planner interior:
	// stage budgets, per-alternative evaluations, and their simulator runs.
	for _, want := range []string{"planner.plan", "planner.alternative", "sim.evaluate", "planner.baseline"} {
		if names[want] == 0 {
			t.Errorf("replica %d: trace lacks %q spans (have %v)", replica, want, names)
		}
	}
	// Depth: root http -> forward -> owner http -> planner.plan -> ... is at
	// least four layers before the planner interior even counts.
	depth := 0
	for _, sp := range doc.Spans {
		d, cur := 1, sp
		for {
			p, ok := byID[cur.ParentID]
			if !ok || d > len(doc.Spans) {
				break
			}
			cur, d = p, d+1
		}
		if d > depth {
			depth = d
		}
	}
	if depth < 4 {
		t.Errorf("replica %d: span tree depth %d, want >= 4", replica, depth)
	}
}

// TestClusterTracingDisabled: with sampling off (TraceSample < 0) the
// forwarded-plan path must still work, respond without a trace header, 404
// the trace endpoints, and start spans without allocating.
func TestClusterTracingDisabled(t *testing.T) {
	_, urls := startReplicas(t, 3, func(i int, cfg *Config) { cfg.TraceSample = -1 })
	id := clusterCreateSession(t, urls[0], "untraced")

	req, err := http.NewRequest("POST", urls[1]+"/v1/sessions/"+id+"/plan", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded plan with tracing disabled: %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.TraceIDHeader); got != "" {
		t.Errorf("tracing disabled but response carries trace ID %q", got)
	}
	if code, _ := httpDo(t, "GET", urls[0]+"/v1/traces", ""); code != http.StatusNotFound {
		t.Errorf("GET /v1/traces with tracing disabled: %d, want 404", code)
	}

	// The disabled hot path must not touch the collector at all: starting a
	// child span on an untraced context is a no-op without allocations.
	ctx := context.Background()
	var tr *obs.Tracer
	allocs := testing.AllocsPerRun(100, func() {
		c, sp := tr.StartRequest(ctx, "", "http")
		_, sp2 := obs.StartSpan(c, "planner.plan")
		sp2.SetAttr("k", "v")
		sp2.End()
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("disabled tracing allocates %.1f per request on the span path, want 0", allocs)
	}
}
