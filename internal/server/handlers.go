package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"poiesis/internal/cluster"
	"poiesis/internal/config"
	"poiesis/internal/core"
	"poiesis/internal/etl"
	"poiesis/internal/fcp"
	"poiesis/internal/obs"
	"poiesis/internal/pdi"
	"poiesis/internal/sim"
	"poiesis/internal/workloads"
	"poiesis/internal/xlm"
)

// maxBodyBytes bounds uploaded payloads (flows can be large, plans cannot).
const maxBodyBytes = 16 << 20

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorJSON{Error: fmt.Sprintf(format, args...)})
}

// lintFlowConfig statically validates a flow against the planner's declared
// constraint bounds (etl.Lint: structural defects plus unachievable
// constraint sets). On findings it writes the 422 response and reports true.
// 422 rather than 400: the request is syntactically well-formed — the flow
// and constraints are individually valid — but semantically unprocessable.
func lintFlowConfig(w http.ResponseWriter, g *etl.Graph, planner *core.Planner) bool {
	ds := etl.Lint(g, planner.Options().LintBounds())
	if len(ds) == 0 {
		return false
	}
	out := lintErrorJSON{
		Error:       fmt.Sprintf("flow/constraint lint failed: %d problem(s)", len(ds)),
		Diagnostics: make([]diagnosticJSON, 0, len(ds)),
	}
	for _, d := range ds {
		out.Diagnostics = append(out.Diagnostics, diagnosticJSON{Check: d.Check, Pos: d.Pos, Message: d.Message})
	}
	writeJSON(w, http.StatusUnprocessableEntity, out)
	return true
}

// decodeBody decodes a JSON body into v; an empty body leaves v untouched.
func decodeBody(r *http.Request, v any) error {
	b, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	if err != nil {
		return fmt.Errorf("reading body: %w", err)
	}
	if len(b) == 0 {
		return nil
	}
	if err := json.Unmarshal(b, v); err != nil {
		return fmt.Errorf("parsing body: %w", err)
	}
	return nil
}

// writeBodyError maps a decodeBody failure to its status: an upload past the
// MaxBytesReader limit is 413 with the limit spelled out, not a generic 400.
func writeBodyError(w http.ResponseWriter, err error) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		writeError(w, http.StatusRequestEntityTooLarge,
			"request body exceeds the %d-byte limit", tooLarge.Limit)
		return
	}
	writeError(w, http.StatusBadRequest, "%v", err)
}

// plannerFromDoc materialises a planner from a configuration document; a nil
// document yields the default planner.
func plannerFromDoc(doc *config.Document) (*core.Planner, error) {
	if doc == nil {
		return core.NewPlanner(nil, core.Options{}), nil
	}
	reg, err := doc.Registry()
	if err != nil {
		return nil, err
	}
	opts, err := doc.Options()
	if err != nil {
		return nil, err
	}
	return core.NewPlanner(reg, opts), nil
}

// registryKeyFromDoc canonicalizes the part of a configuration document that
// shapes the pattern registry rather than the Options — the custom pattern
// declarations. core.PlanKey cannot see the registry, so this string
// partitions the plan cache: documents without custom patterns share the
// empty suffix (the default registry), documents with them only match
// identical declarations. CustomPatternDoc is plain data (encoding/json
// sorts the Params map keys), so the serialization is deterministic.
func registryKeyFromDoc(doc *config.Document) string {
	if doc == nil || len(doc.CustomPatterns) == 0 {
		return ""
	}
	b, err := json.Marshal(doc.CustomPatterns)
	if err != nil {
		// Unserializable declarations cannot be canonicalized; a random
		// nonce keeps the request out of every other request's cache slot. A
		// pointer-derived suffix would not: a later document allocated at a
		// recycled address would silently share the slot.
		return uncacheableKey()
	}
	return string(b)
}

// uncacheableKey returns a cache-key suffix that matches nothing else, ever.
func uncacheableKey() string {
	var nonce [16]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		panic(fmt.Sprintf("server: reading random cache nonce: %v", err))
	}
	return "uncacheable:" + hex.EncodeToString(nonce[:])
}

// Liveness, service stats, palette and builtin listings -----------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	version, revision := obs.BuildInfo()
	writeJSON(w, http.StatusOK, healthzJSON{Status: "ok", Version: version, Revision: revision})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	hits, misses, size, bytes := s.cache.stats()
	out := serverStatsJSON{
		Sessions:         s.store.len(),
		Backend:          s.store.backend.Name(),
		SessionsRestored: s.restored,
		PersistErrors:    s.store.persistErrs.Load(),
		EvictQueue:       s.store.evictDepth.Load(),
		Evictions:        s.store.evictsDone.Load(),
		EvictDropped:     s.store.evictDropped.Load(),
		PlansComputed:    s.plansComputed.Load(),
		PlansCached:      s.plansCached.Load(),
		Evaluations:      s.evaluations.Load(),
		CacheHits:        hits,
		CacheMisses:      misses,
		CacheSize:        size,
		CacheBytes:       bytes,
	}
	if s.cluster != nil {
		st := s.cluster.Stats()
		out.Cluster = &st
	}
	if s.tracer != nil {
		ts := s.tracer.Stats()
		out.Tracing = &ts
		// Peek (no reset): scrape-window resets belong to /metrics alone.
		out.Exemplars = s.metrics.reg.Exemplars()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handlePatterns(w http.ResponseWriter, r *http.Request) {
	type patternJSON struct {
		Name     string `json:"name"`
		Kind     string `json:"kind"`
		Improves string `json:"improves"`
	}
	reg := fcp.DefaultRegistry()
	var out []patternJSON
	for _, name := range reg.Names() {
		p, _ := reg.Get(name)
		out = append(out, patternJSON{
			Name:     p.Name(),
			Kind:     fmt.Sprint(p.Kind()),
			Improves: fmt.Sprint(p.Improves()),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"patterns": out})
}

func (s *Server) handleFlows(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"flows": workloads.Names()})
}

// Session lifecycle -----------------------------------------------------------

type createSessionRequest struct {
	Name string   `json:"name,omitempty"`
	Flow flowSpec `json:"flow"`
	// Scale and Seed drive the synthetic source binding (sim.AutoBinding).
	Scale int    `json:"scale,omitempty"`
	Seed  uint64 `json:"seed,omitempty"`
	// Config is the session's default planning configuration; per-request
	// documents on POST .../plan replace it for that request.
	Config *config.Document `json:"config,omitempty"`
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req createSessionRequest
	if err := decodeBody(r, &req); err != nil {
		writeBodyError(w, err)
		return
	}
	g, err := req.Flow.resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := g.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid flow: %v", err)
		return
	}
	planner, err := plannerFromDoc(req.Config)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if lintFlowConfig(w, g, planner) {
		return
	}
	scale := req.Scale
	if scale <= 0 {
		scale = 2000
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	st := &sessionState{
		id:     s.newOwnedSessionID(),
		name:   req.Name,
		sess:   core.NewSession(planner, g, sim.AutoBinding(g, scale, seed)),
		cfgDoc: req.Config,
		regKey: registryKeyFromDoc(req.Config),
	}
	if err := s.store.add(r.Context(), st); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, errTooManySessions) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "%v", err)
		return
	}
	w.Header().Set("Location", "/v1/sessions/"+st.id)
	writeJSON(w, http.StatusCreated, toSessionJSON(st, true))
}

func (s *Server) handleListSessions(w http.ResponseWriter, r *http.Request) {
	states := s.store.list()
	out := make([]sessionJSON, 0, len(states))
	for _, st := range states {
		out = append(out, toSessionJSON(st, false))
	}
	writeJSON(w, http.StatusOK, map[string]any{"sessions": out})
}

func (s *Server) session(w http.ResponseWriter, r *http.Request) (*sessionState, bool) {
	id := r.PathValue("id")
	st, ok := s.store.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session %q", id)
		return nil, false
	}
	return st, true
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	st, ok := s.session(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, toSessionJSON(st, true))
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	st, ok := s.session(w, r)
	if !ok {
		return
	}
	// Like the TTL sweep, never remove a session mid-operation: deleting
	// under an in-flight plan would orphan the run's result and history.
	// (Acquiring store.mu while holding opMu is safe: the sweep only ever
	// TryLocks opMu, so the reversed order cannot deadlock.)
	if !st.opMu.TryLock() {
		writeError(w, http.StatusConflict, "session busy: another plan or select is in flight")
		return
	}
	defer st.opMu.Unlock()
	if !s.store.remove(r.Context(), st.id) {
		writeError(w, http.StatusNotFound, "unknown session %q", st.id)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// Planning --------------------------------------------------------------------

type planRequest struct {
	// Config, when present, replaces the session's default configuration for
	// this run only (per-request options, constraints and goals).
	Config *config.Document `json:"config,omitempty"`
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	st, ok := s.session(w, r)
	if !ok {
		return
	}
	var req planRequest
	if err := decodeBody(r, &req); err != nil {
		writeBodyError(w, err)
		return
	}
	base := st.sess.Planner()
	regKey := st.regKey
	if req.Config != nil {
		var err error
		if base, err = plannerFromDoc(req.Config); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		// The session's flow was linted at create time against the session
		// config; a per-request config brings new constraint bounds, and the
		// flow may have evolved through selections — re-lint the pair.
		if lintFlowConfig(w, st.sess.Current(), base) {
			return
		}
		regKey = registryKeyFromDoc(req.Config)
	}

	// One state-changing operation per session at a time: a concurrent plan
	// or select fails fast instead of queueing behind a long run.
	if !st.opMu.TryLock() {
		writeError(w, http.StatusConflict, "session busy: another plan or select is in flight")
		return
	}
	defer st.opMu.Unlock()

	// A dropped client cancels the in-flight run through the request context.
	ctx := r.Context()
	planStart := time.Now()
	startWall := s.cfg.Now()

	var stream *sseWriter
	if wantsSSE(r) {
		sse, ok := newSSEWriter(w)
		if !ok {
			writeError(w, http.StatusInternalServerError, "response writer does not support streaming")
			return
		}
		stream = sse
		s.metrics.sseStreams.Inc()
		defer s.metrics.sseStreams.Dec()
		// Keep the connection visibly alive through quiet stretches of the
		// plan (slow alternatives emit no events for their whole runtime).
		stopKeepAlive := s.keepAlive(stream)
		defer stopKeepAlive()
	}

	// The per-request planner is always a fresh instance so installing the
	// progress callback never mutates a planner shared with other requests.
	planner := core.NewPlanner(base.Registry(), base.Options())
	if stream != nil {
		every := 1
		if n, err := strconv.Atoi(r.URL.Query().Get("every")); err == nil && n > 1 {
			every = n
		}
		planner.WithProgress(func(e core.ProgressEvent) {
			if e.Seq%every != 0 {
				return
			}
			errStr := ""
			if e.Err != nil {
				errStr = e.Err.Error()
			}
			_ = stream.event("progress", progressJSON{
				Seq:         e.Seq,
				Label:       e.Label,
				Error:       errStr,
				Generated:   e.Generated,
				Evaluated:   e.Evaluated,
				Kept:        e.Kept,
				SkylineSize: e.SkylineSize,
				StageNs: stageNsJSON{
					PatternApplication: e.StageNs.PatternApplication,
					Evaluation:         e.StageNs.Evaluation,
					ConstraintFilter:   e.StageNs.ConstraintFilter,
					SkylineMerge:       e.StageNs.SkylineMerge,
				},
			})
		})
	}

	key, cacheable := core.PlanKey(st.sess.Current(), st.sess.Binding(), planner.Options())
	// Partition the cache by registry shape: PlanKey canonicalizes Options
	// only, so custom-pattern declarations must contribute to the key.
	key += "|" + regKey
	run := func() (*core.Result, error) {
		res, err := st.sess.ExploreWith(ctx, planner)
		if err != nil {
			return nil, err
		}
		s.plansComputed.Add(1)
		s.evaluations.Add(int64(res.Stats.Evaluated))
		return res, nil
	}

	// Shared cache tier: when another replica owns this plan key, a local
	// miss first asks the owner (one GET, at most one hop) and a local
	// evaluation writes its result through to the owner — so cluster-wide,
	// each fingerprint is evaluated once and then served from caches.
	compute := run
	var fetchedFromPeer bool
	if cacheable && s.cluster != nil {
		if owner := s.cluster.Owner(cluster.CacheKey(key)); owner != s.cluster.Self() {
			compute = func() (*core.Result, error) {
				if res, ok := s.fetchPeerResult(ctx, owner, key); ok {
					fetchedFromPeer = true
					return res, nil
				}
				res, err := run()
				if err == nil {
					s.pushPeerResult(ctx, owner, key, res)
				}
				return res, err
			}
		}
	}

	var res *core.Result
	var hit bool
	var err error
	if cacheable {
		res, hit, err = s.cache.do(ctx, key, compute)
		// A peer-fetched result was not produced by this session's own
		// exploration, so it needs the same adoption as a local cache hit.
		if err == nil && (hit || fetchedFromPeer) {
			s.plansCached.Add(1)
			err = st.sess.AdoptResult(res)
		}
	} else {
		res, err = run()
	}
	if err != nil {
		st.recordTrace(planTrace{
			RequestID: obs.RequestIDFrom(ctx),
			Start:     startWall,
			Duration:  time.Since(planStart),
			Err:       err.Error(),
		})
		s.planError(w, stream, ctx, err)
		return
	}
	hit = hit || fetchedFromPeer
	if sp := obs.SpanFrom(ctx); sp != nil {
		sp.SetBool("plan.cacheable", cacheable)
		sp.SetBool("plan.cached", hit)
		sp.SetBool("plan.peer_fetch", fetchedFromPeer)
		sp.SetInt("plan.evaluated", int64(res.Stats.Evaluated))
		sp.SetInt("plan.skyline", int64(len(res.SkylineIdx)))
	}
	if !hit {
		// This request computed the run locally: feed its stage spans into
		// the service-wide stage histograms.
		for _, sp := range res.Stages {
			s.metrics.stageSpans.With(sp.Stage).Observe(sp.Duration())
		}
	}
	st.recordTrace(planTrace{
		RequestID: obs.RequestIDFrom(ctx),
		Start:     startWall,
		Duration:  time.Since(planStart),
		Cached:    hit,
		Evaluated: res.Stats.Evaluated,
		Skyline:   len(res.SkylineIdx),
		Stages:    res.Stages,
	})
	st.planDone(s.cfg.Now())
	// Write the new state (result, plan count, liveness) through to the
	// backend while opMu still excludes deletion and eviction. A failed
	// write degrades durability only — it is counted, logged, and the
	// response still serves the in-memory result.
	_ = s.store.persist(ctx, st)

	payload := s.planPayload(key, cacheable, res)
	payload.Cached = hit
	if stream != nil {
		_ = stream.event("result", payload)
		return
	}
	writeJSON(w, http.StatusOK, payload)
}

// planPayload derives the response body for a plan result. For cacheable
// results the derivation (skyline explanations, pattern usage, full-space
// scatter) is memoized on the cache entry, so the steady-state hot path —
// repeated cache hits — pays only a shallow copy plus encoding.
func (s *Server) planPayload(key string, cacheable bool, res *core.Result) resultJSON {
	if cacheable {
		if m, ok := s.cache.memo(key, func(r *core.Result) any {
			p := toResultJSON(r, false)
			return &p
		}); ok {
			return *(m.(*resultJSON))
		}
	}
	return toResultJSON(res, false)
}

// planError reports a failed plan on whichever channel is open. When the
// client is already gone (context cancelled) nothing useful can be written;
// the attempt is best-effort.
func (s *Server) planError(w http.ResponseWriter, stream *sseWriter, ctx context.Context, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, core.ErrSessionBusy):
		status = http.StatusConflict
	case errors.Is(err, core.ErrInvalidFlow):
		status = http.StatusUnprocessableEntity
	case ctx.Err() != nil:
		// Client disconnect cancelled the run.
		status = statusClientClosedRequest
	}
	if stream != nil {
		_ = stream.event("error", errorJSON{Error: err.Error()})
		return
	}
	writeError(w, status, "%v", err)
}

// statusClientClosedRequest is nginx's non-standard 499 — the run was
// cancelled because the client went away, so nobody will read this anyway.
const statusClientClosedRequest = 499

// Results ---------------------------------------------------------------------

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	st, ok := s.session(w, r)
	if !ok {
		return
	}
	res := st.sess.LastResult()
	if res == nil {
		writeError(w, http.StatusNotFound, "no planning result; POST /v1/sessions/%s/plan first", st.id)
		return
	}
	includeReports := r.URL.Query().Get("reports") == "1"
	writeJSON(w, http.StatusOK, toResultJSON(res, includeReports))
}

// handleTrace serves the session's recent plan-run timeline: one entry per
// plan request (newest last) with its request ID, duration, cache outcome
// and — for locally computed runs — the planner stage spans.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	st, ok := s.session(w, r)
	if !ok {
		return
	}
	traces := st.traceList()
	out := make([]traceJSON, 0, len(traces))
	for _, t := range traces {
		out = append(out, traceJSON{
			RequestID:   t.RequestID,
			Start:       t.Start,
			DurationNs:  int64(t.Duration),
			Cached:      t.Cached,
			Error:       t.Err,
			Evaluated:   t.Evaluated,
			SkylineSize: t.Skyline,
			Stages:      t.Stages,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"session": st.id, "traces": out})
}

func (s *Server) handleSkyline(w http.ResponseWriter, r *http.Request) {
	st, ok := s.session(w, r)
	if !ok {
		return
	}
	res := st.sess.LastResult()
	if res == nil {
		writeError(w, http.StatusNotFound, "no planning result; POST /v1/sessions/%s/plan first", st.id)
		return
	}
	// Lean path: the frontier is small, so don't pay for the full-space
	// scatter projection and pattern-usage analysis on every poll.
	writeJSON(w, http.StatusOK, map[string]any{
		"dims":           dimsOf(res.Dims),
		"skyline":        skylineEntries(res, true),
		"frontierSpread": frontierSpreadJSON(res),
	})
}

func (s *Server) handleFlow(w http.ResponseWriter, r *http.Request) {
	st, ok := s.session(w, r)
	if !ok {
		return
	}
	g := st.sess.Current()
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "json"
	}
	var b []byte
	var err error
	contentType := "application/json"
	switch format {
	case "json":
		b, err = g.MarshalJSON()
	case "dot":
		b, contentType = []byte(g.DOT()), "text/vnd.graphviz"
	case "xlm":
		b, err = xlm.Encode(g)
		contentType = "application/xml"
	case "ktr":
		b, err = pdi.Encode(g)
		contentType = "application/xml"
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (want json, dot, xlm or ktr)", format)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", contentType)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b)
}

// Selection -------------------------------------------------------------------

type selectRequest struct {
	// Index is the skyline position reported by plan/skyline responses.
	Index int `json:"index"`
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	st, ok := s.session(w, r)
	if !ok {
		return
	}
	req := selectRequest{Index: -1}
	if err := decodeBody(r, &req); err != nil {
		writeBodyError(w, err)
		return
	}
	if !st.opMu.TryLock() {
		writeError(w, http.StatusConflict, "session busy: another plan or select is in flight")
		return
	}
	defer st.opMu.Unlock()

	before := st.sess.Current()
	alt, err := st.sess.Select(req.Index)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, core.ErrSessionBusy) {
			status = http.StatusConflict
		}
		writeError(w, status, "%v", err)
		return
	}
	st.touch(s.cfg.Now())
	// Integrating a selection rewrites the current design and history: write
	// it through under opMu, same contract as the plan path.
	_ = s.store.persist(r.Context(), st)
	history := st.sess.History()
	rec := history[len(history)-1]
	writeJSON(w, http.StatusOK, selectResponseJSON{
		Selection: selectionJSON{
			Iteration:   rec.Iteration,
			Label:       rec.Label,
			ScoreBefore: rec.ScoreBefore,
			ScoreAfter:  rec.ScoreAfter,
		},
		Delta: etl.DiffFlows(before, alt.Graph).String(),
		Flow:  alt.Graph.Name,
		Nodes: alt.Graph.Len(),
		Edges: alt.Graph.EdgeCount(),
	})
}
