package server

import (
	"net/http"
	"time"

	"poiesis/internal/obs"
)

// serverMetrics bundles the server's metric registry with the handles its
// hot paths use. Handles are resolved once at construction — request serving
// never takes the registry's family locks beyond the label-child lookup.
type serverMetrics struct {
	reg *obs.Registry

	httpRequests *obs.CounterVec   // route, method, code class
	httpLatency  *obs.HistogramVec // route
	sseStreams   *obs.Gauge
	stageSpans   *obs.HistogramVec // planner stage, one observation per plan run
	peerOps      *obs.HistogramVec // peer, op
	peerErrs     *obs.CounterVec   // peer, op

	// Mirrors of counters that live elsewhere (server atomics, plan cache,
	// session store): synced by syncMetrics at scrape time instead of
	// double-counting on the hot path.
	plansComputed *obs.Counter
	plansCached   *obs.Counter
	evaluations   *obs.Counter
	cacheHits     *obs.Counter
	cacheMisses   *obs.Counter
	cacheEntries  *obs.Gauge
	cacheBytes    *obs.Gauge
	sessions      *obs.Gauge
	restored      *obs.Gauge
	persistErrs   *obs.Counter
	evictQueue    *obs.Gauge
	evictions     *obs.Counter
	evictDropped  *obs.Counter
}

func newServerMetrics() *serverMetrics {
	reg := obs.NewRegistry()
	m := &serverMetrics{
		reg: reg,
		httpRequests: reg.CounterVec("poiesis_http_requests_total",
			"HTTP requests served, by route pattern, method and status class.",
			"route", "method", "code"),
		httpLatency: reg.HistogramVec("poiesis_http_request_duration_seconds",
			"HTTP request latency by route pattern.", nil, "route"),
		sseStreams: reg.Gauge("poiesis_sse_streams",
			"SSE plan streams currently open."),
		stageSpans: reg.HistogramVec("poiesis_planner_stage_duration_seconds",
			"Planner stage span per locally computed plan run (wall time summed across the stage's workers).",
			nil, "stage"),
		peerOps: reg.HistogramVec("poiesis_cluster_peer_op_duration_seconds",
			"Outbound cluster call latency by peer and op (forward, cache_get, cache_put).",
			nil, "peer", "op"),
		peerErrs: reg.CounterVec("poiesis_cluster_peer_op_errors_total",
			"Failed outbound cluster calls by peer and op.", "peer", "op"),
		plansComputed: reg.Counter("poiesis_plans_computed_total",
			"Plan runs computed locally (cache misses)."),
		plansCached: reg.Counter("poiesis_plans_cached_total",
			"Plan requests served from the cache tier (local hit or peer fetch)."),
		evaluations: reg.Counter("poiesis_evaluations_total",
			"Alternative flows evaluated by the simulation engine."),
		cacheHits: reg.Counter("poiesis_plan_cache_hits_total",
			"Plan cache lookups that hit."),
		cacheMisses: reg.Counter("poiesis_plan_cache_misses_total",
			"Plan cache lookups that missed."),
		cacheEntries: reg.Gauge("poiesis_plan_cache_entries",
			"Entries resident in the plan cache."),
		cacheBytes: reg.Gauge("poiesis_plan_cache_bytes",
			"Estimated bytes resident in the plan cache."),
		sessions: reg.Gauge("poiesis_sessions",
			"Live sessions (after TTL sweep)."),
		restored: reg.Gauge("poiesis_sessions_restored",
			"Sessions restored from the backend at startup."),
		persistErrs: reg.Counter("poiesis_session_persist_errors_total",
			"Failed session write-throughs to the backend."),
		evictQueue: reg.Gauge("poiesis_session_evict_queue",
			"Backend deletes queued for the eviction worker."),
		evictions: reg.Counter("poiesis_session_evictions_total",
			"Backend deletes completed by the eviction worker."),
		evictDropped: reg.Counter("poiesis_session_evict_dropped_total",
			"Evictions dropped because the eviction queue was full."),
	}
	version, revision := obs.BuildInfo()
	reg.GaugeVec("poiesis_build_info",
		"Build identity of this replica; always 1.", "version", "revision").
		With(version, revision).Set(1)
	return m
}

// syncMetrics refreshes the mirrored counters and gauges from their sources
// of truth. Called once per /metrics scrape, so the serving paths keep their
// existing single atomic increments.
func (s *Server) syncMetrics() {
	m := s.metrics
	m.plansComputed.Set(s.plansComputed.Load())
	m.plansCached.Set(s.plansCached.Load())
	m.evaluations.Set(s.evaluations.Load())
	hits, misses, size, bytes := s.cache.stats()
	m.cacheHits.Set(hits)
	m.cacheMisses.Set(misses)
	m.cacheEntries.Set(int64(size))
	m.cacheBytes.Set(bytes)
	m.sessions.Set(int64(s.store.len()))
	m.restored.Set(int64(s.restored))
	m.persistErrs.Set(s.store.persistErrs.Load())
	m.evictQueue.Set(s.store.evictDepth.Load())
	m.evictions.Set(s.store.evictsDone.Load())
	m.evictDropped.Set(s.store.evictDropped.Load())
}

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.syncMetrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.reg.WritePrometheus(w)
}

// statusWriter captures the response status (and whether a header was ever
// written) for the request metrics and access log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(b)
	sw.bytes += int64(n)
	return n, err
}

// flushStatusWriter adds Flush for underlying writers that support it, so
// SSE streaming and chunk-flushed forwarding still work through the metrics
// wrapper. Writers without Flush get a bare statusWriter, preserving the
// handler's "does this writer stream?" type assertion.
type flushStatusWriter struct {
	*statusWriter
	f http.Flusher
}

func (fw *flushStatusWriter) Flush() {
	if fw.statusWriter.status == 0 {
		fw.statusWriter.status = http.StatusOK
	}
	fw.f.Flush()
}

// wrapWriter wraps w for status capture, preserving http.Flusher exactly
// when the underlying writer has it.
func wrapWriter(w http.ResponseWriter) (http.ResponseWriter, *statusWriter) {
	sw := &statusWriter{ResponseWriter: w}
	if f, ok := w.(http.Flusher); ok {
		return &flushStatusWriter{statusWriter: sw, f: f}, sw
	}
	return sw, sw
}

// codeClass buckets a status code for the request counter ("2xx", "4xx"...).
func codeClass(status int) string {
	switch {
	case status >= 500:
		return "5xx"
	case status >= 400:
		return "4xx"
	case status >= 300:
		return "3xx"
	case status >= 200:
		return "2xx"
	default:
		return "1xx"
	}
}

// obsBackend decorates a SessionBackend with per-operation latency and
// error metrics labeled by the inner backend's name. It is also how the
// server keeps its hands off the caller's backend struct: the decorator is
// server-owned, so nothing server-scoped is ever written onto a backend
// that might be shared with another server.
type obsBackend struct {
	inner SessionBackend
	errs  *obs.CounterVec
	put   *obs.Histogram
	get   *obs.Histogram
	del   *obs.Histogram
	list  *obs.Histogram
	sweep *obs.Histogram
}

func newObsBackend(inner SessionBackend, reg *obs.Registry) *obsBackend {
	ops := reg.HistogramVec("poiesis_backend_op_duration_seconds",
		"Session backend operation latency by backend name and op.",
		nil, "backend", "op")
	name := inner.Name()
	return &obsBackend{
		inner: inner,
		errs: reg.CounterVec("poiesis_backend_op_errors_total",
			"Failed session backend operations by backend name and op.",
			"backend", "op"),
		put:   ops.With(name, "put"),
		get:   ops.With(name, "get"),
		del:   ops.With(name, "delete"),
		list:  ops.With(name, "list"),
		sweep: ops.With(name, "sweep"),
	}
}

func (b *obsBackend) observe(h *obs.Histogram, op string, start time.Time, err error) {
	h.Observe(time.Since(start))
	if err != nil {
		b.errs.With(b.inner.Name(), op).Inc()
	}
}

func (b *obsBackend) Put(rec *SessionRecord) error {
	start := time.Now()
	err := b.inner.Put(rec)
	b.observe(b.put, "put", start, err)
	return err
}

func (b *obsBackend) Get(id string) (*SessionRecord, error) {
	start := time.Now()
	rec, err := b.inner.Get(id)
	b.observe(b.get, "get", start, err)
	return rec, err
}

func (b *obsBackend) Delete(id string) error {
	start := time.Now()
	err := b.inner.Delete(id)
	b.observe(b.del, "delete", start, err)
	return err
}

func (b *obsBackend) List() ([]*SessionRecord, error) {
	start := time.Now()
	recs, err := b.inner.List()
	b.observe(b.list, "list", start, err)
	return recs, err
}

func (b *obsBackend) Sweep(cutoff time.Time) ([]string, error) {
	start := time.Now()
	ids, err := b.inner.Sweep(cutoff)
	b.observe(b.sweep, "sweep", start, err)
	return ids, err
}

func (b *obsBackend) Name() string { return b.inner.Name() }
