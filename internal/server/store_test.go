package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"poiesis/internal/core"
	"poiesis/internal/sim"
	"poiesis/internal/tpcds"
)

// bg saves the tests from threading a context through every store call.
var bg = context.Background()

func testState(id string) *sessionState {
	g := tpcds.PurchasesFlow()
	return &sessionState{
		id:   id,
		sess: core.NewSession(core.NewPlanner(nil, core.Options{}), g, sim.AutoBinding(g, 100, 1)),
	}
}

func testStore(ttl time.Duration, max int, now func() time.Time) *sessionStore {
	return newSessionStore(ttl, max, now, NewMemoryBackend(), nil, nil)
}

func TestStoreTTLEviction(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	store := testStore(time.Minute, 10, clock)

	if err := store.add(bg, testState("a")); err != nil {
		t.Fatal(err)
	}
	if err := store.add(bg, testState("b")); err != nil {
		t.Fatal(err)
	}

	// Touch "a" halfway through the TTL; "b" stays idle.
	now = now.Add(40 * time.Second)
	if _, ok := store.get("a"); !ok {
		t.Fatal("a disappeared early")
	}

	// At +70s from creation, "b" (idle 70s) is evicted, "a" (idle 30s) lives.
	now = now.Add(30 * time.Second)
	if _, ok := store.get("b"); ok {
		t.Error("b not evicted after TTL")
	}
	if _, ok := store.get("a"); !ok {
		t.Error("a evicted despite recent use")
	}
	if got := store.len(); got != 1 {
		t.Errorf("store size %d, want 1", got)
	}
	// Eviction reaches the backend too (asynchronously, via the worker): a
	// restart must not resurrect "b".
	waitBackendDeleted(t, store, "b")
	if _, err := store.backend.Get("a"); err != nil {
		t.Errorf("live session missing from backend: %v", err)
	}
}

// waitBackendDeleted blocks until the eviction worker has removed id's
// backend record — backend deletes for TTL evictions are asynchronous.
func waitBackendDeleted(t *testing.T, store *sessionStore, id string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := store.backend.Get(id); err != nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("evicted session %s still recorded in backend", id)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestStoreNoTTL(t *testing.T) {
	now := time.Unix(1000, 0)
	store := testStore(0, 10, func() time.Time { return now })
	if err := store.add(bg, testState("a")); err != nil {
		t.Fatal(err)
	}
	now = now.Add(1000 * time.Hour)
	if _, ok := store.get("a"); !ok {
		t.Error("TTL 0 must disable eviction")
	}
}

func TestStoreCapacity(t *testing.T) {
	now := time.Unix(1000, 0)
	store := testStore(time.Minute, 2, func() time.Time { return now })
	if err := store.add(bg, testState("a")); err != nil {
		t.Fatal(err)
	}
	if err := store.add(bg, testState("b")); err != nil {
		t.Fatal(err)
	}
	if err := store.add(bg, testState("c")); err == nil {
		t.Fatal("third session admitted past the cap")
	}
	// Capacity frees up when an idle session expires.
	now = now.Add(2 * time.Minute)
	if err := store.add(bg, testState("c")); err != nil {
		t.Errorf("add after expiry: %v", err)
	}
}

func TestStoreListOrder(t *testing.T) {
	now := time.Unix(1000, 0)
	store := testStore(time.Hour, 10, func() time.Time { return now })
	for _, id := range []string{"z", "m", "a"} {
		if err := store.add(bg, testState(id)); err != nil {
			t.Fatal(err)
		}
		now = now.Add(time.Second)
	}
	got := store.list()
	if len(got) != 3 || got[0].id != "z" || got[1].id != "m" || got[2].id != "a" {
		t.Errorf("list order wrong: %v", ids(got))
	}
	if !store.remove(bg, "m") {
		t.Error("remove existing failed")
	}
	if store.remove(bg, "m") {
		t.Error("double remove succeeded")
	}
	if _, err := store.backend.Get("m"); err == nil {
		t.Error("removed session still recorded in backend")
	}
}

// TestStoreGetTouchNotRacedBySweep is the regression test for the liveness
// race fixed in get: the touch used to happen after the store lock was
// released, so a sweep running between the unlock and the touch could read
// the stale lastUsed and evict the very session get was about to hand out.
// With the touch inside the critical section the invariant is: whenever get
// returns ok, the session's lastUsed equals the get's observation time, so a
// sweep using any cutoff at or before that time cannot evict it.
func TestStoreGetTouchNotRacedBySweep(t *testing.T) {
	const ttl = time.Minute
	var nowNanos atomic.Int64
	base := time.Unix(1000, 0)
	nowNanos.Store(0)
	clock := func() time.Time { return base.Add(time.Duration(nowNanos.Load())) }
	store := testStore(ttl, 10, clock)

	for iter := 0; iter < 300; iter++ {
		st := testState("s")
		if err := store.add(bg, st); err != nil {
			t.Fatal(err)
		}
		// Make the session exactly TTL-stale, so the next sweep evicts it
		// unless a concurrent get refreshes it first.
		st.touch(clock().Add(-ttl - time.Nanosecond))

		var (
			wg    sync.WaitGroup
			getOK atomic.Bool
		)
		wg.Add(2)
		go func() {
			defer wg.Done()
			_, ok := store.get("s")
			getOK.Store(ok)
		}()
		go func() {
			defer wg.Done()
			store.len() // sweeps under the store lock
		}()
		wg.Wait()

		// Whatever the interleaving, the outcome must be coherent: a
		// successful get implies the session is (still) in the store, because
		// its touch was atomic with the membership check.
		if getOK.Load() {
			if _, ok := store.get("s"); !ok {
				t.Fatalf("iter %d: get returned a session the sweep evicted", iter)
			}
		}
		store.remove(bg, "s")
		// Advance the clock between rounds so records never collide in time.
		nowNanos.Add(int64(time.Second))
	}
}

// TestStoreExpiryExactBetweenSweeps pins the amortized-sweep semantics: even
// when the full map sweep is deferred, get never returns an expired session
// (the inline check evicts it), and once the interval elapses the deferred
// sweep reclaims expired sessions that were never looked up again.
func TestStoreExpiryExactBetweenSweeps(t *testing.T) {
	now := time.Unix(1000, 0)
	store := testStore(time.Minute, 0, func() time.Time { return now })
	store.sweepEvery = time.Hour // park the full sweep far in the future

	if err := store.add(bg, testState("a")); err != nil {
		t.Fatal(err)
	}
	if err := store.add(bg, testState("b")); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Minute) // both sessions are now past the TTL

	// No full sweep can have run (interval not elapsed), yet the expired
	// session must be invisible: the inline check evicts exactly the target.
	if _, ok := store.get("b"); ok {
		t.Fatal("get returned an expired session between sweeps")
	}
	store.mu.Lock()
	_, aStillMapped := store.m["a"]
	store.mu.Unlock()
	if !aStillMapped {
		t.Fatal("amortization did not defer the full sweep ('a' reclaimed early)")
	}

	// Once the interval elapses, any get reclaims the leftovers.
	store.sweepEvery = time.Second
	if _, ok := store.get("nope"); ok {
		t.Fatal("unknown id returned")
	}
	store.mu.Lock()
	n := len(store.m)
	store.mu.Unlock()
	if n != 0 {
		t.Errorf("deferred sweep left %d expired sessions in the map", n)
	}
	waitBackendDeleted(t, store, "a")
	waitBackendDeleted(t, store, "b")
}

// TestStoreBusySessionSurvivesExpiry: a session whose opMu is held (a plan
// outliving the TTL) is never evicted — by the inline check or the sweep —
// matching the pre-amortization behavior.
func TestStoreBusySessionSurvivesExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	store := testStore(time.Minute, 0, func() time.Time { return now })
	st := testState("s")
	if err := store.add(bg, st); err != nil {
		t.Fatal(err)
	}
	st.opMu.Lock()
	now = now.Add(5 * time.Minute)
	if _, ok := store.get("s"); !ok {
		t.Fatal("mid-operation session evicted by get")
	}
	if got := store.len(); got != 1 {
		t.Fatalf("mid-operation session swept: len %d", got)
	}
	st.opMu.Unlock()
	// The get above refreshed liveness; expire it again, now unlocked.
	now = now.Add(5 * time.Minute)
	if _, ok := store.get("s"); ok {
		t.Fatal("idle expired session survived once unlocked")
	}
}

// gatedBackend blocks Delete until the gate channel yields, so tests can pin
// the eviction worker mid-delete and fill its queue deterministically.
type gatedBackend struct {
	SessionBackend
	gate chan struct{}
}

func (b *gatedBackend) Delete(id string) error {
	<-b.gate
	return b.SessionBackend.Delete(id)
}

// TestStoreEvictionWorkerBounded floods the eviction queue while the worker
// is pinned inside a backend delete: the request path must not block, excess
// IDs are dropped and counted, and once the backend unblocks the worker
// drains the backlog.
func TestStoreEvictionWorkerBounded(t *testing.T) {
	const sessions = evictQueueCap + 80
	now := time.Unix(1000, 0)
	gated := &gatedBackend{SessionBackend: NewMemoryBackend(), gate: make(chan struct{})}
	store := newSessionStore(time.Minute, 0, func() time.Time { return now }, gated, nil, nil)
	defer store.close()

	for i := 0; i < sessions; i++ {
		st := testState(fmt.Sprintf("s%04d", i))
		st.touch(now)
		store.adopt(st)
	}
	now = now.Add(2 * time.Minute)

	// len() full-sweeps: every session expires at once. The worker is stuck
	// on the gate, so at most evictQueueCap+1 IDs can be absorbed (queue plus
	// the one in the worker's hands); the rest must be dropped, not waited on.
	if got := store.len(); got != 0 {
		t.Fatalf("expired sessions still counted: %d", got)
	}
	dropped := store.evictDropped.Load()
	if dropped == 0 {
		t.Fatal("queue overflow not counted as drops")
	}
	if depth := store.evictDepth.Load(); depth > evictQueueCap+1 {
		t.Fatalf("eviction backlog %d exceeds the bound", depth)
	}

	close(gated.gate) // unblock every delete
	deadline := time.Now().Add(5 * time.Second)
	for store.evictDepth.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("worker never drained: depth %d", store.evictDepth.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if done := store.evictsDone.Load(); done+dropped != sessions {
		t.Errorf("deletes %d + drops %d != %d evictions", done, dropped, sessions)
	}
}

func ids(states []*sessionState) []string {
	out := make([]string, len(states))
	for i, st := range states {
		out[i] = st.id
	}
	return out
}
