package server

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"poiesis/internal/core"
	"poiesis/internal/sim"
	"poiesis/internal/tpcds"
)

func testState(id string) *sessionState {
	g := tpcds.PurchasesFlow()
	return &sessionState{
		id:   id,
		sess: core.NewSession(core.NewPlanner(nil, core.Options{}), g, sim.AutoBinding(g, 100, 1)),
	}
}

func testStore(ttl time.Duration, max int, now func() time.Time) *sessionStore {
	return newSessionStore(ttl, max, now, NewMemoryBackend(), func(string, ...any) {})
}

func TestStoreTTLEviction(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	store := testStore(time.Minute, 10, clock)

	if err := store.add(testState("a")); err != nil {
		t.Fatal(err)
	}
	if err := store.add(testState("b")); err != nil {
		t.Fatal(err)
	}

	// Touch "a" halfway through the TTL; "b" stays idle.
	now = now.Add(40 * time.Second)
	if _, ok := store.get("a"); !ok {
		t.Fatal("a disappeared early")
	}

	// At +70s from creation, "b" (idle 70s) is evicted, "a" (idle 30s) lives.
	now = now.Add(30 * time.Second)
	if _, ok := store.get("b"); ok {
		t.Error("b not evicted after TTL")
	}
	if _, ok := store.get("a"); !ok {
		t.Error("a evicted despite recent use")
	}
	if got := store.len(); got != 1 {
		t.Errorf("store size %d, want 1", got)
	}
	// Eviction reaches the backend too: a restart must not resurrect "b".
	if _, err := store.backend.Get("b"); err == nil {
		t.Error("evicted session still recorded in backend")
	}
	if _, err := store.backend.Get("a"); err != nil {
		t.Errorf("live session missing from backend: %v", err)
	}
}

func TestStoreNoTTL(t *testing.T) {
	now := time.Unix(1000, 0)
	store := testStore(0, 10, func() time.Time { return now })
	if err := store.add(testState("a")); err != nil {
		t.Fatal(err)
	}
	now = now.Add(1000 * time.Hour)
	if _, ok := store.get("a"); !ok {
		t.Error("TTL 0 must disable eviction")
	}
}

func TestStoreCapacity(t *testing.T) {
	now := time.Unix(1000, 0)
	store := testStore(time.Minute, 2, func() time.Time { return now })
	if err := store.add(testState("a")); err != nil {
		t.Fatal(err)
	}
	if err := store.add(testState("b")); err != nil {
		t.Fatal(err)
	}
	if err := store.add(testState("c")); err == nil {
		t.Fatal("third session admitted past the cap")
	}
	// Capacity frees up when an idle session expires.
	now = now.Add(2 * time.Minute)
	if err := store.add(testState("c")); err != nil {
		t.Errorf("add after expiry: %v", err)
	}
}

func TestStoreListOrder(t *testing.T) {
	now := time.Unix(1000, 0)
	store := testStore(time.Hour, 10, func() time.Time { return now })
	for _, id := range []string{"z", "m", "a"} {
		if err := store.add(testState(id)); err != nil {
			t.Fatal(err)
		}
		now = now.Add(time.Second)
	}
	got := store.list()
	if len(got) != 3 || got[0].id != "z" || got[1].id != "m" || got[2].id != "a" {
		t.Errorf("list order wrong: %v", ids(got))
	}
	if !store.remove("m") {
		t.Error("remove existing failed")
	}
	if store.remove("m") {
		t.Error("double remove succeeded")
	}
	if _, err := store.backend.Get("m"); err == nil {
		t.Error("removed session still recorded in backend")
	}
}

// TestStoreGetTouchNotRacedBySweep is the regression test for the liveness
// race fixed in get: the touch used to happen after the store lock was
// released, so a sweep running between the unlock and the touch could read
// the stale lastUsed and evict the very session get was about to hand out.
// With the touch inside the critical section the invariant is: whenever get
// returns ok, the session's lastUsed equals the get's observation time, so a
// sweep using any cutoff at or before that time cannot evict it.
func TestStoreGetTouchNotRacedBySweep(t *testing.T) {
	const ttl = time.Minute
	var nowNanos atomic.Int64
	base := time.Unix(1000, 0)
	nowNanos.Store(0)
	clock := func() time.Time { return base.Add(time.Duration(nowNanos.Load())) }
	store := testStore(ttl, 10, clock)

	for iter := 0; iter < 300; iter++ {
		st := testState("s")
		if err := store.add(st); err != nil {
			t.Fatal(err)
		}
		// Make the session exactly TTL-stale, so the next sweep evicts it
		// unless a concurrent get refreshes it first.
		st.touch(clock().Add(-ttl - time.Nanosecond))

		var (
			wg    sync.WaitGroup
			getOK atomic.Bool
		)
		wg.Add(2)
		go func() {
			defer wg.Done()
			_, ok := store.get("s")
			getOK.Store(ok)
		}()
		go func() {
			defer wg.Done()
			store.len() // sweeps under the store lock
		}()
		wg.Wait()

		// Whatever the interleaving, the outcome must be coherent: a
		// successful get implies the session is (still) in the store, because
		// its touch was atomic with the membership check.
		if getOK.Load() {
			if _, ok := store.get("s"); !ok {
				t.Fatalf("iter %d: get returned a session the sweep evicted", iter)
			}
		}
		store.remove("s")
		// Advance the clock between rounds so records never collide in time.
		nowNanos.Add(int64(time.Second))
	}
}

func ids(states []*sessionState) []string {
	out := make([]string, len(states))
	for i, st := range states {
		out[i] = st.id
	}
	return out
}
