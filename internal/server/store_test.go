package server

import (
	"testing"
	"time"

	"poiesis/internal/core"
	"poiesis/internal/sim"
	"poiesis/internal/tpcds"
)

func testState(id string) *sessionState {
	g := tpcds.PurchasesFlow()
	return &sessionState{
		id:   id,
		sess: core.NewSession(core.NewPlanner(nil, core.Options{}), g, sim.AutoBinding(g, 100, 1)),
	}
}

func TestStoreTTLEviction(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	store := newSessionStore(time.Minute, 10, clock)

	if err := store.add(testState("a")); err != nil {
		t.Fatal(err)
	}
	if err := store.add(testState("b")); err != nil {
		t.Fatal(err)
	}

	// Touch "a" halfway through the TTL; "b" stays idle.
	now = now.Add(40 * time.Second)
	if _, ok := store.get("a"); !ok {
		t.Fatal("a disappeared early")
	}

	// At +70s from creation, "b" (idle 70s) is evicted, "a" (idle 30s) lives.
	now = now.Add(30 * time.Second)
	if _, ok := store.get("b"); ok {
		t.Error("b not evicted after TTL")
	}
	if _, ok := store.get("a"); !ok {
		t.Error("a evicted despite recent use")
	}
	if got := store.len(); got != 1 {
		t.Errorf("store size %d, want 1", got)
	}
}

func TestStoreNoTTL(t *testing.T) {
	now := time.Unix(1000, 0)
	store := newSessionStore(0, 10, func() time.Time { return now })
	if err := store.add(testState("a")); err != nil {
		t.Fatal(err)
	}
	now = now.Add(1000 * time.Hour)
	if _, ok := store.get("a"); !ok {
		t.Error("TTL 0 must disable eviction")
	}
}

func TestStoreCapacity(t *testing.T) {
	now := time.Unix(1000, 0)
	store := newSessionStore(time.Minute, 2, func() time.Time { return now })
	if err := store.add(testState("a")); err != nil {
		t.Fatal(err)
	}
	if err := store.add(testState("b")); err != nil {
		t.Fatal(err)
	}
	if err := store.add(testState("c")); err == nil {
		t.Fatal("third session admitted past the cap")
	}
	// Capacity frees up when an idle session expires.
	now = now.Add(2 * time.Minute)
	if err := store.add(testState("c")); err != nil {
		t.Errorf("add after expiry: %v", err)
	}
}

func TestStoreListOrder(t *testing.T) {
	now := time.Unix(1000, 0)
	store := newSessionStore(time.Hour, 10, func() time.Time { return now })
	for _, id := range []string{"z", "m", "a"} {
		if err := store.add(testState(id)); err != nil {
			t.Fatal(err)
		}
		now = now.Add(time.Second)
	}
	got := store.list()
	if len(got) != 3 || got[0].id != "z" || got[1].id != "m" || got[2].id != "a" {
		t.Errorf("list order wrong: %v", ids(got))
	}
	if !store.remove("m") {
		t.Error("remove existing failed")
	}
	if store.remove("m") {
		t.Error("double remove succeeded")
	}
}

func ids(states []*sessionState) []string {
	out := make([]string, len(states))
	for i, st := range states {
		out[i] = st.id
	}
	return out
}
