package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"poiesis/internal/cluster"
)

// startReplicas boots n shard-aware replicas listening on real sockets (the
// forwarder dials peers over HTTP). Membership URLs must exist before the
// servers do, so each httptest server late-binds its handler. All replicas
// share one frozen clock: responses carrying timestamps must be
// byte-identical no matter which replica served them.
func startReplicas(t *testing.T, n int, mutate func(i int, cfg *Config)) ([]*Server, []string) {
	t.Helper()
	handlers := make([]atomic.Pointer[Server], n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		i := i
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			h := handlers[i].Load()
			if h == nil {
				http.Error(w, "starting", http.StatusServiceUnavailable)
				return
			}
			h.ServeHTTP(w, r)
		}))
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	members := make([]cluster.Member, n)
	for i := range members {
		members[i] = cluster.Member{ID: fmt.Sprintf("n%d", i), URL: urls[i]}
	}
	t0 := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	clock := func() time.Time { return t0 }
	servers := make([]*Server, n)
	for i := 0; i < n; i++ {
		cl, err := cluster.New(cluster.Config{
			Self:    fmt.Sprintf("n%d", i),
			Members: members,
			Logf:    t.Logf,
			Now:     clock,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Cluster: cl, Logf: t.Logf, Now: clock}
		if mutate != nil {
			mutate(i, &cfg)
		}
		servers[i] = New(cfg)
		handlers[i].Store(servers[i])
	}
	return servers, urls
}

// httpDo issues a real HTTP request and returns status and body.
func httpDo(t testing.TB, method, url, body string) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func clusterCreateSession(t testing.TB, url, name string) string {
	t.Helper()
	code, b := httpDo(t, "POST", url+"/v1/sessions", fastPlanBody(name))
	if code != http.StatusCreated {
		t.Fatalf("create on %s: %d %s", url, code, b)
	}
	var sj sessionJSON
	if err := json.Unmarshal(b, &sj); err != nil || sj.ID == "" {
		t.Fatalf("create response %s (err %v)", b, err)
	}
	return sj.ID
}

func replicaStats(t testing.TB, url string) serverStatsJSON {
	t.Helper()
	code, b := httpDo(t, "GET", url+"/v1/stats", "")
	if code != 200 {
		t.Fatalf("stats on %s: %d", url, code)
	}
	var st serverStatsJSON
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

func peerCounters(st serverStatsJSON, peerID string) cluster.PeerStats {
	if st.Cluster == nil {
		return cluster.PeerStats{}
	}
	for _, p := range st.Cluster.Peers {
		if p.ID == peerID {
			return p
		}
	}
	return cluster.PeerStats{}
}

// TestClusterForwardedSessionAccess is the headline property: a session
// created on replica A is usable through any replica, with responses
// byte-identical to A's own, and the per-peer forward counters record the
// traffic.
func TestClusterForwardedSessionAccess(t *testing.T) {
	servers, urls := startReplicas(t, 3, nil)
	id := clusterCreateSession(t, urls[0], "alice")

	// The creating replica owns the session: its ID was drawn until it
	// landed on n0's arc of the ring.
	if owner := servers[0].cluster.Owner(cluster.SessionKey(id)); owner != "n0" {
		t.Fatalf("creator does not own the session: owner %s", owner)
	}
	if servers[0].Sessions() != 1 || servers[1].Sessions() != 0 || servers[2].Sessions() != 0 {
		t.Fatalf("session not homed on n0: %d/%d/%d",
			servers[0].Sessions(), servers[1].Sessions(), servers[2].Sessions())
	}

	// GET through every replica: same bytes.
	code0, direct := httpDo(t, "GET", urls[0]+"/v1/sessions/"+id, "")
	if code0 != 200 {
		t.Fatalf("direct get: %d %s", code0, direct)
	}
	for i := 1; i < 3; i++ {
		code, via := httpDo(t, "GET", urls[i]+"/v1/sessions/"+id, "")
		if code != 200 {
			t.Fatalf("get via replica %d: %d %s", i, code, via)
		}
		if !bytes.Equal(direct, via) {
			t.Errorf("replica %d response differs:\n%s\nvs direct:\n%s", i, via, direct)
		}
	}

	// Plan through replica 1 (forwarded to the owner), select through
	// replica 2: the whole explore-select loop works from any replica.
	if code, b := httpDo(t, "POST", urls[1]+"/v1/sessions/"+id+"/plan", ""); code != 200 {
		t.Fatalf("plan via replica 1: %d %s", code, b)
	}
	code0, res0 := httpDo(t, "GET", urls[0]+"/v1/sessions/"+id+"/result?reports=1", "")
	code2, res2 := httpDo(t, "GET", urls[2]+"/v1/sessions/"+id+"/result?reports=1", "")
	if code0 != 200 || code2 != 200 || !bytes.Equal(res0, res2) {
		t.Errorf("forwarded result differs (%d/%d)", code0, code2)
	}
	if code, b := httpDo(t, "POST", urls[2]+"/v1/sessions/"+id+"/select", `{"index":0}`); code != 200 {
		t.Fatalf("select via replica 2: %d %s", code, b)
	}
	var sj sessionJSON
	_, b := httpDo(t, "GET", urls[1]+"/v1/sessions/"+id, "")
	if err := json.Unmarshal(b, &sj); err != nil || sj.Iterations != 1 {
		t.Errorf("iteration not visible through replica 1: %s (err %v)", b, err)
	}

	// Counter evidence: replica 1 forwarded to n0; replica 0 saw requests
	// arrive forwarded from n1 and n2.
	if got := peerCounters(replicaStats(t, urls[1]), "n0").Forwarded; got < 1 {
		t.Errorf("replica 1 forwarded-to-n0 = %d, want >= 1", got)
	}
	st0 := replicaStats(t, urls[0])
	if in := peerCounters(st0, "n1").ForwardedIn + peerCounters(st0, "n2").ForwardedIn; in < 3 {
		t.Errorf("replica 0 forwarded-in = %d, want >= 3", in)
	}
}

// TestClusterExactlyOneEvaluation: planning the same flow on all three
// replicas performs exactly one evaluation cluster-wide — the others are
// served via the shared cache tier (peer fetch or write-through), proven by
// the /v1/stats counters.
func TestClusterExactlyOneEvaluation(t *testing.T) {
	_, urls := startReplicas(t, 3, nil)

	ids := make([]string, 3)
	for i := range urls {
		ids[i] = clusterCreateSession(t, urls[i], fmt.Sprintf("analyst-%d", i))
	}
	var results [][]byte
	for i, url := range urls {
		code, b := httpDo(t, "POST", url+"/v1/sessions/"+ids[i]+"/plan", "")
		if code != 200 {
			t.Fatalf("plan on replica %d: %d %s", i, code, b)
		}
		_, res := httpDo(t, "GET", url+"/v1/sessions/"+ids[i]+"/result?reports=1", "")
		results = append(results, res)
	}
	for i := 1; i < 3; i++ {
		if !bytes.Equal(results[0], results[i]) {
			t.Errorf("replica %d result differs from replica 0", i)
		}
	}

	var computed, cached, evals, cacheGets, cacheHitsOrPuts int64
	for _, url := range urls {
		st := replicaStats(t, url)
		computed += st.PlansComputed
		cached += st.PlansCached
		evals += st.Evaluations
		if st.Cluster != nil {
			for _, p := range st.Cluster.Peers {
				cacheGets += p.CacheGets
				cacheHitsOrPuts += p.CacheHits + p.CachePuts
			}
		}
	}
	if computed != 1 {
		t.Errorf("plansComputed cluster-wide = %d, want exactly 1", computed)
	}
	if cached != 2 {
		t.Errorf("plansCached cluster-wide = %d, want 2", cached)
	}
	if evals == 0 {
		t.Error("the one computed plan reports zero evaluations")
	}
	if cacheGets < 1 {
		t.Errorf("no peer cache traffic at all (gets=%d)", cacheGets)
	}
	if cacheHitsOrPuts < 1 {
		t.Errorf("cache tier never shared a result (hits+puts=%d)", cacheHitsOrPuts)
	}

	// The cache tier only talks to known peers: a client without a peer's
	// forwarded marker cannot read or write cached results.
	if code, b := httpDo(t, "GET", urls[0]+"/v1/cache/abcd", ""); code != http.StatusForbidden {
		t.Errorf("cache get without peer marker: %d %s", code, b)
	}
	if code, b := httpDo(t, "PUT", urls[0]+"/v1/cache/abcd", `{}`); code != http.StatusForbidden {
		t.Errorf("cache put without peer marker: %d %s", code, b)
	}

	// A repeat plan anywhere stays served from cache: still one evaluation.
	if code, _ := httpDo(t, "POST", urls[1]+"/v1/sessions/"+ids[1]+"/plan", ""); code != 200 {
		t.Fatal("repeat plan failed")
	}
	var computedAfter int64
	for _, url := range urls {
		computedAfter += replicaStats(t, url).PlansComputed
	}
	if computedAfter != 1 {
		t.Errorf("repeat plan recomputed: cluster-wide plansComputed = %d", computedAfter)
	}
}

// TestClusterForwardedSSE: an SSE plan stream through a non-owning replica
// relays progress and result events live.
func TestClusterForwardedSSE(t *testing.T) {
	_, urls := startReplicas(t, 2, nil)
	id := clusterCreateSession(t, urls[0], "")

	req, err := http.NewRequest("POST", urls[1]+"/v1/sessions/"+id+"/plan", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	events := parseSSE(t, string(body))
	var progress, results int
	for _, e := range events {
		switch e.name {
		case "progress":
			progress++
		case "result":
			results++
		}
	}
	if progress == 0 || results != 1 {
		t.Errorf("forwarded SSE stream: %d progress, %d results", progress, results)
	}
}

// TestClusterRestoreOwnershipSplit makes the PR 4 "self-contained records"
// property load-bearing: records written by a single-node deployment are
// dropped into two replicas' store dirs; each replica restores exactly the
// sessions the ring assigns to it, and every session is reachable through
// either replica via forwarding.
func TestClusterRestoreOwnershipSplit(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	backendA, err := NewDiskBackend(dirA)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	single := New(Config{Backend: backendA, Logf: t.Logf, Now: func() time.Time { return t0 }})
	const sessions = 6
	ids := make([]string, sessions)
	for i := range ids {
		ids[i] = createSession(t, single, fmt.Sprintf("pre-cluster-%d", i))
	}

	// "Rebalance": copy every record into the second replica's dir, as an
	// operator would when splitting a node. Each replica then restores only
	// what it owns.
	entries, err := os.ReadDir(dirA)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(dirA, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dirB, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	servers, urls := startReplicas(t, 2, func(i int, cfg *Config) {
		dir := dirA
		if i == 1 {
			dir = dirB
		}
		backend, err := NewDiskBackend(dir)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Backend = backend
	})
	restored := servers[0].RestoredSessions() + servers[1].RestoredSessions()
	if restored != sessions {
		t.Fatalf("restored %d+%d sessions, want %d total",
			servers[0].RestoredSessions(), servers[1].RestoredSessions(), sessions)
	}
	if servers[0].Sessions()+servers[1].Sessions() != sessions {
		t.Fatalf("live %d+%d, want %d", servers[0].Sessions(), servers[1].Sessions(), sessions)
	}
	for _, id := range ids {
		_, via0 := httpDo(t, "GET", urls[0]+"/v1/sessions/"+id, "")
		code, via1 := httpDo(t, "GET", urls[1]+"/v1/sessions/"+id, "")
		if code != 200 {
			t.Fatalf("session %s unreachable via replica 1: %d", id, code)
		}
		if !bytes.Equal(via0, via1) {
			t.Errorf("session %s: replicas disagree:\n%s\nvs\n%s", id, via0, via1)
		}
	}
}

// TestClusterDeadReplica: requests for a dead replica's sessions fail fast
// with 503 + Retry-After instead of hanging, and the live replica stays
// healthy throughout.
func TestClusterDeadReplica(t *testing.T) {
	handlers := make([]atomic.Pointer[Server], 2)
	var tss [2]*httptest.Server
	var urls [2]string
	for i := 0; i < 2; i++ {
		i := i
		tss[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			handlers[i].Load().ServeHTTP(w, r)
		}))
		urls[i] = tss[i].URL
	}
	defer tss[0].Close()
	members := []cluster.Member{{ID: "n0", URL: urls[0]}, {ID: "n1", URL: urls[1]}}
	servers := make([]*Server, 2)
	for i := 0; i < 2; i++ {
		cl, err := cluster.New(cluster.Config{Self: fmt.Sprintf("n%d", i), Members: members, Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = New(Config{Cluster: cl, Logf: t.Logf})
		handlers[i].Store(servers[i])
	}

	id := clusterCreateSession(t, urls[1], "doomed")
	tss[1].Close() // replica n1 dies with the session

	code, b := httpDo(t, "GET", urls[0]+"/v1/sessions/"+id, "")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("dead owner: %d %s", code, b)
	}
	req, _ := http.NewRequest("GET", urls[0]+"/v1/sessions/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("second request: %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	// The live replica keeps serving its own traffic.
	if code, _ := httpDo(t, "GET", urls[0]+"/v1/healthz", ""); code != 200 {
		t.Error("live replica unhealthy")
	}
	if code, _ := httpDo(t, "GET", urls[0]+"/v1/readyz", ""); code != 200 {
		t.Error("live replica not ready")
	}
}

// TestClusterConcurrentSameFlowPlans hammers the shared cache tier from all
// replicas at once: every request must succeed with identical results and
// at most one evaluation per replica (no wasted work within a replica, no
// corruption across them). Run under -race in CI.
func TestClusterConcurrentSameFlowPlans(t *testing.T) {
	_, urls := startReplicas(t, 3, nil)
	ids := make([]string, 3)
	for i := range urls {
		ids[i] = clusterCreateSession(t, urls[i], "")
	}
	var wg sync.WaitGroup
	errs := make(chan error, 3)
	for i := range urls {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, b := httpDo(t, "POST", urls[i]+"/v1/sessions/"+ids[i]+"/plan", "")
			if code != 200 {
				errs <- fmt.Errorf("replica %d: %d %s", i, code, b)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	var results [][]byte
	var computed int64
	for i, url := range urls {
		_, res := httpDo(t, "GET", url+"/v1/sessions/"+ids[i]+"/result?reports=1", "")
		results = append(results, res)
		computed += replicaStats(t, url).PlansComputed
	}
	for i := 1; i < 3; i++ {
		if !bytes.Equal(results[0], results[i]) {
			t.Errorf("concurrent plan: replica %d result differs", i)
		}
	}
	if computed < 1 || computed > 3 {
		t.Errorf("cluster-wide plansComputed = %d, want in [1,3]", computed)
	}
}

// TestSingleNodeUnchanged: without a Cluster, the new endpoints degrade
// gracefully and the stats carry no cluster section — single-node serve
// behaves exactly as before.
func TestSingleNodeUnchanged(t *testing.T) {
	s := newTestServer(t)
	var ready readyzJSON
	if rr := do(t, s, "GET", "/v1/readyz", "", &ready); rr.Code != 200 || ready.Status != "ready" || ready.Cluster {
		t.Errorf("readyz: %+v", ready)
	}
	var info clusterInfoJSON
	if rr := do(t, s, "GET", "/v1/cluster", "", &info); rr.Code != 200 || info.Enabled {
		t.Errorf("cluster info: %+v", info)
	}
	var raw map[string]json.RawMessage
	do(t, s, "GET", "/v1/stats", "", &raw)
	if _, present := raw["cluster"]; present {
		t.Error("single-node stats carry a cluster section")
	}
	// The peer-facing cache tier does not exist outside cluster mode: no
	// new writable surface on a single-node deployment.
	if rr := do(t, s, "GET", "/v1/cache/abcd", "", nil); rr.Code != 404 {
		t.Errorf("single-node cache get: %d", rr.Code)
	}
	if rr := do(t, s, "PUT", "/v1/cache/abcd", `{}`, nil); rr.Code != 404 {
		t.Errorf("single-node cache put: %d", rr.Code)
	}
	// Session IDs need no ownership loop and sessions stay local.
	id := createSession(t, s, "solo")
	if rr := do(t, s, "GET", "/v1/sessions/"+id, "", nil); rr.Code != 200 {
		t.Errorf("get: %d", rr.Code)
	}
}
