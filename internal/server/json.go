package server

import (
	"encoding/json"
	"math"
	"time"

	"poiesis/internal/cluster"
	"poiesis/internal/core"
	"poiesis/internal/measures"
	"poiesis/internal/obs"
	"poiesis/internal/viz"
)

// Wire DTOs. The JSON shapes are the service's public contract; internal
// types are mapped explicitly so core refactors don't silently change the
// API.

type errorJSON struct {
	Error string `json:"error"`
}

// diagnosticJSON is one static-analysis finding (etl.Lint) on the wire. The
// shape mirrors internal/lint/diag.Diagnostic's JSON tags so the HTTP API and
// the poiesis-lint CLI emit interchangeable diagnostics.
type diagnosticJSON struct {
	Check   string `json:"check"`
	Pos     string `json:"pos"`
	Message string `json:"message"`
}

// lintErrorJSON is the 422 body for statically invalid flow/constraint
// pairs: the summary error plus every individual finding.
type lintErrorJSON struct {
	Error       string           `json:"error"`
	Diagnostics []diagnosticJSON `json:"diagnostics"`
}

type sessionJSON struct {
	ID         string            `json:"id"`
	Name       string            `json:"name,omitempty"`
	Flow       string            `json:"flow"`
	Nodes      int               `json:"nodes"`
	Edges      int               `json:"edges"`
	Created    string            `json:"created"`
	LastUsed   string            `json:"lastUsed"`
	Plans      int               `json:"plans"`
	HasResult  bool              `json:"hasResult"`
	Iterations int               `json:"iterations"`
	History    []selectionJSON   `json:"history,omitempty"`
	Links      map[string]string `json:"links,omitempty"`
}

type selectionJSON struct {
	Iteration   int     `json:"iteration"`
	Label       string  `json:"label"`
	ScoreBefore float64 `json:"scoreBefore"`
	ScoreAfter  float64 `json:"scoreAfter"`
}

type measureJSON struct {
	Name           string        `json:"name"`
	Value          float64       `json:"value"`
	Unit           string        `json:"unit,omitempty"`
	HigherIsBetter bool          `json:"higherIsBetter"`
	Detail         []measureJSON `json:"detail,omitempty"`
}

type charJSON struct {
	Characteristic string        `json:"characteristic"`
	Score          float64       `json:"score"`
	Measures       []measureJSON `json:"measures,omitempty"`
}

type reportJSON struct {
	Flow        string     `json:"flow"`
	Fingerprint string     `json:"fingerprint"`
	Chars       []charJSON `json:"characteristics"`
}

func toReportJSON(r *measures.Report) *reportJSON {
	if r == nil {
		return nil
	}
	out := &reportJSON{Flow: r.Flow, Fingerprint: r.Fingerprint}
	for _, cr := range r.Chars {
		jc := charJSON{Characteristic: string(cr.Characteristic), Score: cr.Score}
		for _, m := range cr.Measures {
			jc.Measures = append(jc.Measures, toMeasureJSON(m))
		}
		out.Chars = append(out.Chars, jc)
	}
	return out
}

func toMeasureJSON(m measures.Measure) measureJSON {
	jm := measureJSON{Name: m.Name, Value: m.Value, Unit: m.Unit, HigherIsBetter: m.HigherIsBetter}
	for _, d := range m.Detail {
		jm.Detail = append(jm.Detail, toMeasureJSON(d))
	}
	return jm
}

type skylineEntryJSON struct {
	// Index is the handle POST .../select accepts: the position within the
	// skyline (Result.SkylineIdx order).
	Index     int                `json:"index"`
	Label     string             `json:"label"`
	Scores    map[string]float64 `json:"scores"`
	LeadsOn   []string           `json:"leadsOn,omitempty"`
	WeakestOn string             `json:"weakestOn,omitempty"`
	Delta     string             `json:"delta,omitempty"`
	Report    *reportJSON        `json:"report,omitempty"`
}

type statsJSON struct {
	CandidatesSeen     int  `json:"candidatesSeen"`
	Generated          int  `json:"generated"`
	Deduped            int  `json:"deduped"`
	Evaluated          int  `json:"evaluated"`
	ConstraintRejected int  `json:"constraintRejected"`
	StaticPruned       int  `json:"staticPruned,omitempty"`
	Capped             bool `json:"capped"`
}

// resultJSON deliberately omits planner stage timings: the result body must
// be byte-identical whether it was computed here, restored from a snapshot
// or fetched from a peer's cache. Timings live in GET .../trace.
type resultJSON struct {
	Cached         bool                  `json:"cached"`
	Dims           []string              `json:"dims"`
	Stats          statsJSON             `json:"stats"`
	Initial        skylineEntryJSON      `json:"initial"`
	Alternatives   int                   `json:"alternatives"`
	SkylineSize    int                   `json:"skylineSize"`
	Skyline        []skylineEntryJSON    `json:"skyline"`
	FrontierSpread map[string][2]float64 `json:"frontierSpread,omitempty"`
	PatternUsage   []patternUsageJSON    `json:"patternUsage,omitempty"`
	Scatter        json.RawMessage       `json:"scatter,omitempty"`
}

type patternUsageJSON struct {
	Pattern      string `json:"pattern"`
	Applications int    `json:"applications"`
	InSkyline    int    `json:"inSkyline"`
}

type selectResponseJSON struct {
	Selection selectionJSON `json:"selection"`
	// Delta summarises what integrating the selection changed structurally.
	Delta string `json:"delta"`
	Flow  string `json:"flow"`
	Nodes int    `json:"nodes"`
	Edges int    `json:"edges"`
}

type progressJSON struct {
	Seq         int    `json:"seq"`
	Label       string `json:"label"`
	Error       string `json:"error,omitempty"`
	Generated   int    `json:"generated"`
	Evaluated   int    `json:"evaluated"`
	Kept        int    `json:"kept"`
	SkylineSize int    `json:"skylineSize"`
	// StageNs summarises cumulative planner stage time (nanoseconds) at the
	// moment the event was emitted.
	StageNs stageNsJSON `json:"stageNs"`
}

// stageNsJSON mirrors core.StageNanos on the wire.
type stageNsJSON struct {
	PatternApplication int64 `json:"patternApplication"`
	Evaluation         int64 `json:"evaluation"`
	ConstraintFilter   int64 `json:"constraintFilter"`
	SkylineMerge       int64 `json:"skylineMerge"`
}

// healthzJSON is the liveness probe body, carrying build identity.
type healthzJSON struct {
	Status   string `json:"status"`
	Version  string `json:"version"`
	Revision string `json:"revision"`
}

// traceJSON is one recorded plan run in GET .../trace, newest last.
type traceJSON struct {
	RequestID   string    `json:"requestId"`
	Start       time.Time `json:"start"`
	DurationNs  int64     `json:"durationNs"`
	Cached      bool      `json:"cached"`
	Error       string    `json:"error,omitempty"`
	Evaluated   int       `json:"evaluated"`
	SkylineSize int       `json:"skylineSize"`
	// Stages describe the run that originally computed the result: a cache
	// hit repeats the computing run's spans, and results restored from a
	// snapshot or fetched from a peer carry none (timings don't serialize).
	Stages []core.StageTiming `json:"stages,omitempty"`
}

type serverStatsJSON struct {
	Sessions         int    `json:"sessions"`
	Backend          string `json:"backend"`
	SessionsRestored int    `json:"sessionsRestored"`
	PersistErrors    int64  `json:"persistErrors"`
	// Eviction-worker health: backlog of queued backend deletes, completed
	// deletes, and IDs dropped because the queue was full (their records
	// wait for the startup sweep).
	EvictQueue    int64 `json:"evictQueue"`
	Evictions     int64 `json:"evictions"`
	EvictDropped  int64 `json:"evictDropped"`
	PlansComputed int64 `json:"plansComputed"`
	PlansCached   int64 `json:"plansCached"`
	Evaluations   int64 `json:"evaluations"`
	CacheHits     int64 `json:"cacheHits"`
	CacheMisses   int64 `json:"cacheMisses"`
	CacheSize     int   `json:"cacheSize"`
	CacheBytes    int64 `json:"cacheBytes"`
	// Cluster carries the per-peer forward and cache-tier counters; absent
	// in single-node mode.
	Cluster *cluster.Stats `json:"cluster,omitempty"`
	// Tracing carries the span collector's counters; absent when tracing
	// is disabled. Exemplars maps latency histogram buckets to the trace
	// ID of the slowest observation in the current scrape window.
	Tracing   *obs.TracerStats     `json:"tracing,omitempty"`
	Exemplars []obs.ExemplarSample `json:"exemplars,omitempty"`
}

// readyzJSON is the readiness probe body.
type readyzJSON struct {
	Status           string `json:"status"`
	Backend          string `json:"backend,omitempty"`
	SessionsRestored int    `json:"sessionsRestored,omitempty"`
	Cluster          bool   `json:"cluster,omitempty"`
	Node             string `json:"node,omitempty"`
}

// clusterInfoJSON is the GET /v1/cluster body.
type clusterInfoJSON struct {
	Enabled bool                `json:"enabled"`
	Self    string              `json:"self,omitempty"`
	VNodes  int                 `json:"vnodes,omitempty"`
	Members []cluster.Member    `json:"members,omitempty"`
	Peers   []cluster.PeerStats `json:"peers,omitempty"`
}

// dimsOf renders characteristic dims as strings.
func dimsOf(dims []measures.Characteristic) []string {
	out := make([]string, len(dims))
	for i, d := range dims {
		out[i] = string(d)
	}
	return out
}

// scoresOf maps a report's composite scores over the result dimensions.
func scoresOf(r *measures.Report, dims []measures.Characteristic) map[string]float64 {
	out := make(map[string]float64, len(dims))
	for _, d := range dims {
		out[string(d)] = r.Score(d)
	}
	return out
}

// toResultJSON builds the planning response (Cached false; the plan handler
// stamps it per response). includeReports attaches the full measure tree to
// every skyline entry (GET .../result?reports=1); the plan response keeps
// entries lean.
func toResultJSON(res *core.Result, includeReports bool) resultJSON {
	out := resultJSON{
		Dims:         dimsOf(res.Dims),
		Alternatives: len(res.Alternatives),
		SkylineSize:  len(res.SkylineIdx),
		Stats: statsJSON{
			CandidatesSeen:     res.Stats.CandidatesSeen,
			Generated:          res.Stats.Generated,
			Deduped:            res.Stats.Deduped,
			Evaluated:          res.Stats.Evaluated,
			ConstraintRejected: res.Stats.ConstraintRejected,
			StaticPruned:       res.Stats.StaticPruned,
			Capped:             res.Stats.Capped,
		},
		Initial: skylineEntryJSON{
			Index:  -1,
			Label:  res.Initial.Label(),
			Scores: scoresOf(res.Initial.Report, res.Dims),
		},
	}
	out.Skyline = skylineEntries(res, includeReports)
	out.FrontierSpread = frontierSpreadJSON(res)
	for _, u := range core.AnalyzePatternUsage(res) {
		out.PatternUsage = append(out.PatternUsage, patternUsageJSON{
			Pattern:      u.Pattern,
			Applications: u.Applications,
			InSkyline:    u.InSkyline,
		})
	}
	if scatter, err := viz.ScatterJSON(scatterPoints(res), scatterConfig(res)); err == nil {
		out.Scatter = scatter
	}
	return out
}

// skylineEntries builds the frontier entries of a result, with their
// explanations (leading dimensions, trade-off, structural delta) and
// optionally the full measure trees. Shared by the plan response and the
// lean skyline endpoint.
func skylineEntries(res *core.Result, includeReports bool) []skylineEntryJSON {
	explanations := core.ExplainSkyline(res)
	out := make([]skylineEntryJSON, 0, len(res.SkylineIdx))
	for i, alt := range res.Skyline() {
		entry := skylineEntryJSON{
			Index:  i,
			Label:  alt.Label(),
			Scores: scoresOf(alt.Report, res.Dims),
		}
		if i < len(explanations) {
			e := explanations[i]
			entry.LeadsOn = dimsOf(e.LeadsOn)
			entry.WeakestOn = string(e.WeakestOn)
			entry.Delta = e.Delta.String()
		}
		if includeReports {
			entry.Report = toReportJSON(alt.Report)
		}
		out = append(out, entry)
	}
	return out
}

func frontierSpreadJSON(res *core.Result) map[string][2]float64 {
	out := map[string][2]float64{}
	for dim, span := range core.FrontierSpread(res) {
		out[string(dim)] = span
	}
	return out
}

// scatterPoints projects the full alternative space onto the skyline
// dimensions for the Fig. 4 scatter export.
func scatterPoints(res *core.Result) []viz.ScatterPoint {
	sky := map[int]bool{}
	for _, i := range res.SkylineIdx {
		sky[i] = true
	}
	pts := make([]viz.ScatterPoint, 0, len(res.Alternatives))
	for i := range res.Alternatives {
		a := &res.Alternatives[i]
		v := a.Report.Vector(res.Dims)
		// NaN marks "no third dimension" for the viz exporters; a plain 0
		// would serialize a bogus z axis for two-dimensional skylines.
		p := viz.ScatterPoint{Label: a.Label(), Skyline: sky[i], Z: math.NaN()}
		if len(v) > 0 {
			p.X = v[0]
		}
		if len(v) > 1 {
			p.Y = v[1]
		}
		if len(v) > 2 {
			p.Z = v[2]
		}
		pts = append(pts, p)
	}
	return pts
}

func scatterConfig(res *core.Result) viz.ScatterConfig {
	cfg := viz.ScatterConfig{Title: "Alternative ETL flows"}
	if len(res.Dims) > 0 {
		cfg.XLabel = string(res.Dims[0])
	}
	if len(res.Dims) > 1 {
		cfg.YLabel = string(res.Dims[1])
	}
	if len(res.Dims) > 2 {
		cfg.ZLabel = string(res.Dims[2])
	}
	return cfg
}

func toSessionJSON(st *sessionState, includeHistory bool) sessionJSON {
	g := st.sess.Current()
	lastUsed, plans := st.meta()
	out := sessionJSON{
		ID:        st.id,
		Name:      st.name,
		Flow:      g.Name,
		Nodes:     g.Len(),
		Edges:     g.EdgeCount(),
		Created:   st.created.UTC().Format("2006-01-02T15:04:05Z"),
		LastUsed:  lastUsed.UTC().Format("2006-01-02T15:04:05Z"),
		Plans:     plans,
		HasResult: st.sess.LastResult() != nil,
	}
	history := st.sess.History()
	out.Iterations = len(history)
	if includeHistory {
		for _, rec := range history {
			out.History = append(out.History, selectionJSON{
				Iteration:   rec.Iteration,
				Label:       rec.Label,
				ScoreBefore: rec.ScoreBefore,
				ScoreAfter:  rec.ScoreAfter,
			})
		}
		base := "/v1/sessions/" + st.id
		out.Links = map[string]string{
			"plan":    base + "/plan",
			"result":  base + "/result",
			"skyline": base + "/skyline",
			"select":  base + "/select",
			"flow":    base + "/flow",
			"trace":   base + "/trace",
		}
	}
	return out
}
