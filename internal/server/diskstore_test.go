package server

import (
	"errors"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestDiskSweepBestEffort plants an entry the filesystem refuses to unlink
// between two removable expired records: the sweep must delete everything it
// can, aggregate (not abort on) the failure, and leave the live record
// alone. The old behavior returned on the first failed os.Remove, leaving
// every later expired record on disk until the next restart.
func TestDiskSweepBestEffort(t *testing.T) {
	b, err := NewDiskBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var logMu sync.Mutex
	var logs []string
	b.Logf = func(format string, args ...any) {
		logMu.Lock()
		logs = append(logs, format)
		logMu.Unlock()
	}

	base := time.Unix(5000, 0).UTC()
	// IDs sort a1 < m2 < z3, so the unremovable middle one exercises the
	// continue-past-failure path for z3.
	for _, id := range []string{"a1", "m2", "z3"} {
		if err := b.Put(testRecord(id, base)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Put(testRecord("live", base.Add(time.Hour))); err != nil {
		t.Fatal(err)
	}

	stuck := errors.New("operation not permitted")
	b.removeFile = func(path string) error {
		if strings.HasSuffix(path, "m2"+snapshotExt) {
			return stuck
		}
		return os.Remove(path)
	}

	removed, err := b.Sweep(base.Add(time.Minute))
	if err == nil || !errors.Is(err, stuck) {
		t.Fatalf("sweep error %v, want the aggregated unlink failure", err)
	}
	if len(removed) != 2 || removed[0] != "a1" || removed[1] != "z3" {
		t.Fatalf("removed %v, want [a1 z3] despite the stuck middle entry", removed)
	}
	logMu.Lock()
	logged := strings.Join(logs, "\n")
	logMu.Unlock()
	if !strings.Contains(logged, "sweep skipping") {
		t.Errorf("stuck entry not logged: %q", logged)
	}

	// Once the filesystem recovers, the next sweep reclaims the leftover.
	b.removeFile = nil
	removed, err = b.Sweep(base.Add(time.Minute))
	if err != nil {
		t.Fatalf("recovered sweep: %v", err)
	}
	if len(removed) != 1 || removed[0] != "m2" {
		t.Fatalf("recovered sweep removed %v, want [m2]", removed)
	}
	// The live record survived both sweeps — with real unlinks this time.
	recs, err := b.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ID != "live" {
		t.Fatalf("directory after sweeps: %v", recordIDs(recs))
	}
}
