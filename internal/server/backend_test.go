package server

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"poiesis/internal/core"
)

// backends enumerates the SessionBackend implementations; every suite below
// runs against all of them, so the memory, disk, and SQL paths stay
// behaviourally identical.
func backends(t *testing.T) map[string]func(t *testing.T) SessionBackend {
	t.Helper()
	return map[string]func(t *testing.T) SessionBackend{
		"memory": func(t *testing.T) SessionBackend { return NewMemoryBackend() },
		"disk": func(t *testing.T) SessionBackend {
			b, err := NewDiskBackend(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			b.Logf = t.Logf
			return b
		},
		"sql": func(t *testing.T) SessionBackend {
			b, err := NewSQLBackend("", filepath.Join(t.TempDir(), "sessions.db"))
			if err != nil {
				t.Fatal(err)
			}
			b.Logf = t.Logf
			t.Cleanup(func() { b.Close() })
			return b
		},
	}
}

func testRecord(id string, lastUsed time.Time) *SessionRecord {
	return &SessionRecord{
		Version:  SessionRecordVersion,
		ID:       id,
		Name:     "rec-" + id,
		Created:  lastUsed.Add(-time.Minute),
		LastUsed: lastUsed,
		Plans:    2,
		Session:  &core.SessionSnapshot{Version: core.SnapshotFormatVersion},
	}
}

// TestBackendContract exercises put/get/delete/list/sweep identically on
// both backends.
func TestBackendContract(t *testing.T) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			b := mk(t)
			base := time.Unix(5000, 0).UTC()

			if _, err := b.Get("missing0000"); err != ErrRecordNotFound {
				t.Errorf("Get missing: %v, want ErrRecordNotFound", err)
			}
			if err := b.Delete("missing0000"); err != nil {
				t.Errorf("Delete missing must be idempotent: %v", err)
			}

			for i, id := range []string{"c3", "a1", "b2"} {
				if err := b.Put(testRecord(id, base.Add(time.Duration(i)*time.Hour))); err != nil {
					t.Fatalf("Put %s: %v", id, err)
				}
			}
			got, err := b.Get("a1")
			if err != nil {
				t.Fatalf("Get: %v", err)
			}
			if got.Name != "rec-a1" || got.Plans != 2 || !got.LastUsed.Equal(base.Add(time.Hour)) {
				t.Errorf("record did not round-trip: %+v", got)
			}

			// Put replaces.
			upd := testRecord("a1", base.Add(2*time.Hour))
			upd.Plans = 9
			if err := b.Put(upd); err != nil {
				t.Fatal(err)
			}
			if got, _ = b.Get("a1"); got.Plans != 9 {
				t.Errorf("Put did not replace: %+v", got)
			}

			recs, err := b.List()
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 3 || recs[0].ID != "a1" || recs[1].ID != "b2" || recs[2].ID != "c3" {
				t.Errorf("List wrong: %v", recordIDs(recs))
			}

			// Sweep drops records last used strictly before the cutoff:
			// c3 sits at base, a1 (updated) and b2 at base+2h.
			removed, err := b.Sweep(base.Add(90 * time.Minute))
			if err != nil {
				t.Fatal(err)
			}
			if len(removed) != 1 || removed[0] != "c3" {
				t.Errorf("Sweep removed %v, want [c3]", removed)
			}
			if recs, _ = b.List(); len(recs) != 2 || recs[0].ID != "a1" || recs[1].ID != "b2" {
				t.Errorf("after sweep: %v", recordIDs(recs))
			}

			for _, id := range []string{"a1", "b2"} {
				if err := b.Delete(id); err != nil {
					t.Fatal(err)
				}
			}
			if recs, _ = b.List(); len(recs) != 0 {
				t.Errorf("after delete: %v", recordIDs(recs))
			}
		})
	}
}

func recordIDs(recs []*SessionRecord) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.ID
	}
	return out
}

// TestServerLifecycleBothBackends runs the full explore-select HTTP loop
// against every backend: the responses must be backend-independent.
func TestServerLifecycleBothBackends(t *testing.T) {
	type capture struct{ create, get, plan, sel, list string }
	runs := map[string]capture{}
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := New(Config{Backend: mk(t), Logf: t.Logf, Now: func() time.Time { return time.Unix(7000, 0) }})
			var c capture

			var sj sessionJSON
			rr := do(t, s, "POST", "/v1/sessions", fastPlanBody("case"), &sj)
			if rr.Code != http.StatusCreated {
				t.Fatalf("create: %d %s", rr.Code, rr.Body.String())
			}
			id := sj.ID
			c.create = stripID(rr.Body.String(), id)

			if rr = do(t, s, "POST", "/v1/sessions/"+id+"/plan", "", nil); rr.Code != 200 {
				t.Fatalf("plan: %d %s", rr.Code, rr.Body.String())
			}
			c.plan = rr.Body.String()

			if rr = do(t, s, "POST", "/v1/sessions/"+id+"/select", `{"index":0}`, nil); rr.Code != 200 {
				t.Fatalf("select: %d %s", rr.Code, rr.Body.String())
			}
			c.sel = rr.Body.String()

			if rr = do(t, s, "GET", "/v1/sessions/"+id, "", nil); rr.Code != 200 {
				t.Fatalf("get: %d", rr.Code)
			}
			c.get = stripID(rr.Body.String(), id)

			if rr = do(t, s, "GET", "/v1/sessions", "", nil); rr.Code != 200 {
				t.Fatalf("list: %d", rr.Code)
			}
			c.list = stripID(rr.Body.String(), id)

			if rr = do(t, s, "DELETE", "/v1/sessions/"+id, "", nil); rr.Code != http.StatusNoContent {
				t.Fatalf("delete: %d", rr.Code)
			}
			runs[name] = c
		})
	}
	for name, c := range runs {
		if name == "memory" {
			continue
		}
		if c != runs["memory"] {
			t.Errorf("memory and %s lifecycles diverge:\nmemory %+v\n%s %+v", name, runs["memory"], name, c)
		}
	}
}

// stripID normalises random session IDs out of a response body so runs are
// comparable.
func stripID(body, id string) string { return strings.ReplaceAll(body, id, "SID") }

// TestRestartDurability is the end-to-end crash-safety check: a server over
// a disk backend is stopped (dropped) after create+plan+select+plan, a new
// server starts over the same directory, and the restored session must be
// byte-for-byte identical — detail, history, skyline, full last result —
// and still accept a select.
func TestRestartDurability(t *testing.T) {
	dir := t.TempDir()
	clock := func() time.Time { return time.Unix(9000, 0) }
	open := func() *Server {
		b, err := NewDiskBackend(dir)
		if err != nil {
			t.Fatal(err)
		}
		b.Logf = t.Logf
		return New(Config{Backend: b, Logf: t.Logf, Now: clock})
	}

	s1 := open()
	id := createSession(t, s1, "durable")
	if rr := do(t, s1, "POST", "/v1/sessions/"+id+"/plan", "", nil); rr.Code != 200 {
		t.Fatalf("plan: %d %s", rr.Code, rr.Body.String())
	}
	if rr := do(t, s1, "POST", "/v1/sessions/"+id+"/select", `{"index":0}`, nil); rr.Code != 200 {
		t.Fatalf("select: %d %s", rr.Code, rr.Body.String())
	}
	if rr := do(t, s1, "POST", "/v1/sessions/"+id+"/plan", "", nil); rr.Code != 200 {
		t.Fatalf("second plan: %d %s", rr.Code, rr.Body.String())
	}
	before := map[string]string{}
	for _, path := range []string{
		"/v1/sessions",
		"/v1/sessions/" + id,
		"/v1/sessions/" + id + "/result?reports=1",
		"/v1/sessions/" + id + "/skyline",
		"/v1/sessions/" + id + "/flow",
	} {
		rr := do(t, s1, "GET", path, "", nil)
		if rr.Code != 200 {
			t.Fatalf("GET %s: %d", path, rr.Code)
		}
		before[path] = rr.Body.String()
	}

	// "Kill" s1 (no shutdown hook exists or is needed: every state change
	// was written through synchronously) and restart over the directory.
	s2 := open()
	if got := s2.RestoredSessions(); got != 1 {
		t.Fatalf("restored %d sessions, want 1", got)
	}
	for path, want := range before {
		rr := do(t, s2, "GET", path, "", nil)
		if rr.Code != 200 {
			t.Fatalf("after restart GET %s: %d", path, rr.Code)
		}
		if got := rr.Body.String(); got != want {
			t.Errorf("GET %s differs after restart:\nbefore %s\nafter  %s", path, want, got)
		}
	}
	// The restored session is live, not a read-only fossil: selecting from
	// the restored skyline works and the explore-select loop continues.
	if rr := do(t, s2, "POST", "/v1/sessions/"+id+"/select", `{"index":0}`, nil); rr.Code != 200 {
		t.Fatalf("select after restart: %d %s", rr.Code, rr.Body.String())
	}
}

// TestRestartDurabilitySQL is the SQL twin of TestRestartDurability: the
// backend is closed (flushing the embedded engine's log) and reopened over
// the same file, forcing a full replay, and the restored session must answer
// identically and stay live.
func TestRestartDurabilitySQL(t *testing.T) {
	dsn := filepath.Join(t.TempDir(), "sessions.db")
	clock := func() time.Time { return time.Unix(9000, 0) }
	var b *SQLBackend
	open := func() *Server {
		var err error
		b, err = NewSQLBackend("", dsn)
		if err != nil {
			t.Fatal(err)
		}
		b.Logf = t.Logf
		return New(Config{Backend: b, Logf: t.Logf, Now: clock})
	}

	s1 := open()
	id := createSession(t, s1, "durable")
	for _, step := range []string{"/plan", "/select", "/plan"} {
		body := ""
		if step == "/select" {
			body = `{"index":0}`
		}
		if rr := do(t, s1, "POST", "/v1/sessions/"+id+step, body, nil); rr.Code != 200 {
			t.Fatalf("POST %s: %d %s", step, rr.Code, rr.Body.String())
		}
	}
	paths := []string{
		"/v1/sessions",
		"/v1/sessions/" + id,
		"/v1/sessions/" + id + "/result?reports=1",
		"/v1/sessions/" + id + "/skyline",
	}
	before := map[string]string{}
	for _, path := range paths {
		rr := do(t, s1, "GET", path, "", nil)
		if rr.Code != 200 {
			t.Fatalf("GET %s: %d", path, rr.Code)
		}
		before[path] = rr.Body.String()
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := open()
	if got := s2.RestoredSessions(); got != 1 {
		t.Fatalf("restored %d sessions from SQL, want 1", got)
	}
	for _, path := range paths {
		rr := do(t, s2, "GET", path, "", nil)
		if rr.Code != 200 {
			t.Fatalf("after restart GET %s: %d", path, rr.Code)
		}
		if got := rr.Body.String(); got != before[path] {
			t.Errorf("GET %s differs after SQL restart:\nbefore %s\nafter  %s", path, before[path], got)
		}
	}
	if rr := do(t, s2, "POST", "/v1/sessions/"+id+"/select", `{"index":0}`, nil); rr.Code != 200 {
		t.Fatalf("select after restart: %d %s", rr.Code, rr.Body.String())
	}
}

// TestRestartSkipsCorruptedSnapshots plants broken files next to a healthy
// snapshot: startup must log and skip them, restore the healthy session, and
// clean up partial temp files.
func TestRestartSkipsCorruptedSnapshots(t *testing.T) {
	dir := t.TempDir()
	clock := func() time.Time { return time.Unix(9000, 0) }
	var logMu sync.Mutex
	var logs []string
	logf := func(format string, args ...any) {
		logMu.Lock()
		logs = append(logs, fmt.Sprintf(format, args...))
		logMu.Unlock()
	}
	open := func() *Server {
		b, err := NewDiskBackend(dir)
		if err != nil {
			t.Fatal(err)
		}
		b.Logf = logf
		return New(Config{Backend: b, Logf: logf, Now: clock})
	}

	s1 := open()
	id := createSession(t, s1, "survivor")
	if rr := do(t, s1, "POST", "/v1/sessions/"+id+"/plan", "", nil); rr.Code != 200 {
		t.Fatalf("plan: %d", rr.Code)
	}

	// Corruption menagerie: truncated JSON, non-JSON garbage, a partial
	// temp file from an interrupted write, a record whose ID contradicts its
	// filename, and a record from a future format version.
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("truncated00.json", `{"version":1,"id":"truncated00","session":{"ver`)
	write("garbage0000.json", "\x00\x01not json at all")
	write(".tmp-partial0000.json", `{"version":1`)
	write("mismatch000.json", `{"version":1,"id":"other","session":{"version":1}}`)
	write("future00000.json", fmt.Sprintf(`{"version":%d,"id":"future00000","session":{"version":%d}}`,
		SessionRecordVersion+5, core.SnapshotFormatVersion+5))

	s2 := open()
	if got := s2.RestoredSessions(); got != 1 {
		t.Fatalf("restored %d sessions, want exactly the healthy one", got)
	}
	if rr := do(t, s2, "GET", "/v1/sessions/"+id, "", nil); rr.Code != 200 {
		t.Errorf("healthy session lost: %d", rr.Code)
	}
	if _, err := os.Stat(filepath.Join(dir, ".tmp-partial0000.json")); !os.IsNotExist(err) {
		t.Error("partial temp file not cleaned up")
	}
	logMu.Lock()
	joined := strings.Join(logs, "\n")
	logMu.Unlock()
	for _, want := range []string{"truncated00", "garbage0000", "partial0000", "mismatch000", "future00000"} {
		if !strings.Contains(joined, want) {
			t.Errorf("no warning logged about %s; logs:\n%s", want, joined)
		}
	}
}

// TestRestartDropsExpiredRecords: sessions that out-idled the TTL while the
// service was down are purged at startup, not resurrected.
func TestRestartDropsExpiredRecords(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(9000, 0)
	open := func() *Server {
		b, err := NewDiskBackend(dir)
		if err != nil {
			t.Fatal(err)
		}
		b.Logf = t.Logf
		return New(Config{Backend: b, Logf: t.Logf, Now: func() time.Time { return now }, SessionTTL: time.Minute})
	}
	s1 := open()
	createSession(t, s1, "stale")

	now = now.Add(2 * time.Minute) // "downtime" beyond the TTL
	s2 := open()
	if got := s2.RestoredSessions(); got != 0 {
		t.Errorf("restored %d expired sessions, want 0", got)
	}
	if entries, _ := os.ReadDir(dir); len(entries) != 0 {
		t.Errorf("expired records left on disk: %d entries", len(entries))
	}
}

// TestRestoreCapKeepsMostRecent: when more records survive than MaxSessions
// admits, the most recently used sessions win — not the first IDs in sort
// order.
func TestRestoreCapKeepsMostRecent(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(9000, 0)
	open := func(max int) *Server {
		b, err := NewDiskBackend(dir)
		if err != nil {
			t.Fatal(err)
		}
		return New(Config{Backend: b, Logf: t.Logf, Now: func() time.Time { return now }, MaxSessions: max})
	}
	s1 := open(10)
	var ids []string
	for i := 0; i < 3; i++ {
		ids = append(ids, createSession(t, s1, fmt.Sprintf("s%d", i)))
		now = now.Add(time.Minute)
	}
	// Touch the oldest session last so recency order differs from creation
	// (and from ID) order: a plan refreshes the persisted lastUsed.
	if rr := do(t, s1, "POST", "/v1/sessions/"+ids[0]+"/plan", "", nil); rr.Code != 200 {
		t.Fatalf("plan: %d", rr.Code)
	}

	s2 := open(2)
	if got := s2.RestoredSessions(); got != 2 {
		t.Fatalf("restored %d, want 2", got)
	}
	for _, id := range []string{ids[0], ids[2]} { // most recently used pair
		if rr := do(t, s2, "GET", "/v1/sessions/"+id, "", nil); rr.Code != 200 {
			t.Errorf("recently-used session %s not restored: %d", id, rr.Code)
		}
	}
	if rr := do(t, s2, "GET", "/v1/sessions/"+ids[1], "", nil); rr.Code != http.StatusNotFound {
		t.Errorf("least-recently-used session restored past the cap: %d", rr.Code)
	}
}

// TestOversizedBodyIs413: an upload past the MaxBytesReader limit reports
// 413 with the limit in the message, not a generic 400.
func TestOversizedBodyIs413(t *testing.T) {
	s := newTestServer(t)
	huge := `{"pad":"` + strings.Repeat("x", maxBodyBytes+1) + `"}`
	rr := do(t, s, "POST", "/v1/sessions", huge, nil)
	if rr.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", rr.Code)
	}
	if !strings.Contains(rr.Body.String(), fmt.Sprint(maxBodyBytes)) {
		t.Errorf("413 body does not state the limit: %s", rr.Body.String())
	}
}

// TestUncacheableKeyUnique: the fallback cache suffix for unserializable
// pattern registries must never collide (the old pointer-based key could,
// when an allocation reused an address).
func TestUncacheableKeyUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		k := uncacheableKey()
		if !strings.HasPrefix(k, "uncacheable:") {
			t.Fatalf("unexpected shape: %q", k)
		}
		if seen[k] {
			t.Fatalf("nonce collided after %d draws: %q", i, k)
		}
		seen[k] = true
	}
}

// TestDiskBackendWriteThroughRace hammers the disk write-through path from
// concurrent sessions (create, plan, select, delete), keeping -race coverage
// over the persistence layer.
func TestDiskBackendWriteThroughRace(t *testing.T) {
	b, err := NewDiskBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b.Logf = t.Logf
	s := New(Config{Backend: b, Logf: t.Logf})

	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2; i++ {
				id := createSession(t, s, fmt.Sprintf("w%d-%d", w, i))
				if rr := do(t, s, "POST", "/v1/sessions/"+id+"/plan", "", nil); rr.Code != 200 {
					t.Errorf("plan: %d %s", rr.Code, rr.Body.String())
					return
				}
				if rr := do(t, s, "POST", "/v1/sessions/"+id+"/select", `{"index":0}`, nil); rr.Code != 200 {
					t.Errorf("select: %d %s", rr.Code, rr.Body.String())
					return
				}
				if i%2 == 1 {
					do(t, s, "DELETE", "/v1/sessions/"+id, "", nil)
				}
			}
		}(w)
	}
	wg.Wait()

	// On-disk records and live sessions must agree when the dust settles.
	recs, err := b.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != s.Sessions() {
		t.Errorf("disk has %d records, store has %d sessions", len(recs), s.Sessions())
	}
}

// TestStatsReportBackend: /v1/stats names the backend and surfaces restore
// and persist-error counters.
func TestStatsReportBackend(t *testing.T) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := New(Config{Backend: mk(t), Logf: t.Logf})
			var stats serverStatsJSON
			if rr := do(t, s, "GET", "/v1/stats", "", &stats); rr.Code != 200 {
				t.Fatalf("stats: %d", rr.Code)
			}
			if stats.Backend != name {
				t.Errorf("backend %q, want %q", stats.Backend, name)
			}
			if stats.PersistErrors != 0 || stats.SessionsRestored != 0 {
				t.Errorf("fresh server counters non-zero: %+v", stats)
			}
		})
	}
}
