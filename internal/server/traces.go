// Trace export: the collector's ring is served over HTTP so an analyst (or
// the CI smoke test) can pull the span tree of a recent request. In cluster
// mode the handler assembles the full distributed tree: the local fragment
// plus every peer's fragment of the same trace ID, merged into one document,
// so any replica can answer for a request that hopped through several.
package server

import (
	"encoding/json"
	"net/http"

	"poiesis/internal/obs"
)

// traceIndexJSON is the GET /v1/traces body: newest-first summaries of the
// locally retained traces plus collector counters.
type traceIndexJSON struct {
	Service string          `json:"service"`
	Stats   obs.TracerStats `json:"stats"`
	Traces  []obs.Trace     `json:"traces"`
}

// traceDocJSON is the GET /v1/traces/{id} body: the flat span list (the
// embedded Trace) plus the same spans nested as a tree and the set of
// replica services that contributed spans.
type traceDocJSON struct {
	obs.Trace
	Services []string        `json:"services"`
	Tree     []*spanNodeJSON `json:"tree"`
}

// spanNodeJSON is one span with its children nested, for consumers that
// want the tree shape without re-linking parent IDs.
type spanNodeJSON struct {
	obs.SpanData
	Children []*spanNodeJSON `json:"children,omitempty"`
}

func (s *Server) handleTraceIndex(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		writeError(w, http.StatusNotFound, "tracing is disabled on this replica")
		return
	}
	writeJSON(w, http.StatusOK, traceIndexJSON{
		Service: s.tracer.Service(),
		Stats:   s.tracer.Stats(),
		Traces:  s.tracer.Traces(),
	})
}

func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		writeError(w, http.StatusNotFound, "tracing is disabled on this replica")
		return
	}
	id := r.PathValue("id")
	if !obs.ValidTraceID(id) {
		writeError(w, http.StatusBadRequest, "malformed trace id %q: want 32 lowercase hex digits", id)
		return
	}
	// ?local=1 answers from the local ring only; it is also how peers ask
	// each other for fragments, so assembly never recurses.
	localOnly := s.cluster == nil || r.URL.Query().Get("local") != ""

	frags := make([]obs.Trace, 0, 2)
	if tr, ok := s.tracer.Trace(id); ok {
		frags = append(frags, tr)
	}
	if !localOnly {
		for _, m := range s.cluster.Members() {
			if m.ID == s.cluster.Self() {
				continue
			}
			payload, ok := s.cluster.FetchTrace(r.Context(), m.ID, id)
			if !ok {
				continue
			}
			var frag obs.Trace
			if err := json.Unmarshal(payload, &frag); err != nil || frag.ID != id {
				s.logCtx(r.Context()).Warn("discarding malformed trace fragment",
					"peer", m.ID, "trace_id", id)
				continue
			}
			frags = append(frags, frag)
		}
	}
	if len(frags) == 0 {
		writeError(w, http.StatusNotFound,
			"trace %s not found: never collected, sampled out, or already evicted", id)
		return
	}
	merged := obs.MergeTraces(frags...)

	switch r.URL.Query().Get("format") {
	case "", "json":
		writeJSON(w, http.StatusOK, traceDocJSON{
			Trace:    merged,
			Services: spanServices(merged.Spans),
			Tree:     buildSpanTree(merged.Spans),
		})
	case "chrome":
		writeChromeTrace(w, merged)
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q: want json or chrome", r.URL.Query().Get("format"))
	}
}

// spanServices lists the distinct replica services contributing spans, in
// first-appearance order (the local root's replica first for merged traces,
// since spans arrive sorted by start time).
func spanServices(spans []obs.SpanData) []string {
	seen := make(map[string]bool, 2)
	out := make([]string, 0, 2)
	for i := range spans {
		if svc := spans[i].Service; svc != "" && !seen[svc] {
			seen[svc] = true
			out = append(out, svc)
		}
	}
	return out
}

// buildSpanTree nests spans under their parents. Spans whose parent is not
// in the document (true roots, and orphans whose parent was dropped or lives
// on an unreachable replica) become top-level nodes. Input order (start
// time) is preserved among siblings.
func buildSpanTree(spans []obs.SpanData) []*spanNodeJSON {
	nodes := make(map[string]*spanNodeJSON, len(spans))
	ordered := make([]*spanNodeJSON, len(spans))
	for i := range spans {
		n := &spanNodeJSON{SpanData: spans[i]}
		ordered[i] = n
		nodes[spans[i].SpanID] = n
	}
	var roots []*spanNodeJSON
	for _, n := range ordered {
		if parent := nodes[n.ParentID]; n.ParentID != "" && parent != nil && parent != n {
			parent.Children = append(parent.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	return roots
}

// writeChromeTrace renders the trace in Chrome trace-event JSON, loadable in
// about:tracing or Perfetto. Each span is an "X" (complete) event; each
// contributing replica becomes a process row via a process_name metadata
// event, so cluster hops render as parallel swimlanes.
func writeChromeTrace(w http.ResponseWriter, tr obs.Trace) {
	type chromeEvent map[string]any
	events := make([]chromeEvent, 0, len(tr.Spans)+2)
	pids := make(map[string]int, 2)
	pidOf := func(service string) int {
		if service == "" {
			service = "poiesis"
		}
		if pid, ok := pids[service]; ok {
			return pid
		}
		pid := len(pids) + 1
		pids[service] = pid
		events = append(events, chromeEvent{
			"name": "process_name", "ph": "M", "pid": pid, "tid": 1,
			"args": map[string]any{"name": service},
		})
		return pid
	}
	for i := range tr.Spans {
		sp := &tr.Spans[i]
		args := make(map[string]any, len(sp.Attrs)+3)
		args["spanId"] = sp.SpanID
		if sp.ParentID != "" {
			args["parentId"] = sp.ParentID
		}
		for _, a := range sp.Attrs {
			args[a.Key] = a.Value
		}
		if sp.Err != "" {
			args["error"] = sp.Err
		}
		events = append(events, chromeEvent{
			"name": sp.Name, "cat": "poiesis", "ph": "X",
			"ts":  float64(sp.Start.UnixNano()) / 1e3,
			"dur": float64(sp.Duration.Nanoseconds()) / 1e3,
			"pid": pidOf(sp.Service), "tid": 1,
			"args": args,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
	})
}
