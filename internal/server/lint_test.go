package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// unachievableBody is a session-create payload whose constraint set no flow
// in the pattern space can satisfy: tpcds-purchases starts above the
// flow_size cap, and every pattern application grows the flow.
const unachievableBody = `{
	"name": "doomed",
	"flow": {"builtin": "tpcds-purchases"},
	"config": {
		"policy": "greedy", "topK": 1, "depth": 1,
		"constraints": [
			{"characteristic": "manageability", "measure": "flow_size", "max": 2}
		]
	}
}`

func TestCreateSessionRejectsUnachievableConstraints(t *testing.T) {
	s := newTestServer(t)
	rr := do(t, s, "POST", "/v1/sessions", unachievableBody, nil)
	if rr.Code != http.StatusUnprocessableEntity {
		t.Fatalf("create with unachievable constraints: %d %s", rr.Code, rr.Body.String())
	}
	var out lintErrorJSON
	if err := json.Unmarshal(rr.Body.Bytes(), &out); err != nil {
		t.Fatalf("decoding 422 body %q: %v", rr.Body.String(), err)
	}
	if out.Error == "" || len(out.Diagnostics) == 0 {
		t.Fatalf("422 body lacks diagnostics: %+v", out)
	}
	d := out.Diagnostics[0]
	if d.Check != "constraint/achievability" {
		t.Errorf("check = %q, want constraint/achievability", d.Check)
	}
	if !strings.HasPrefix(d.Pos, "constraint:") || d.Message == "" {
		t.Errorf("diagnostic incomplete: %+v", d)
	}
	// The rejected session must not exist.
	var list struct {
		Sessions []sessionJSON `json:"sessions"`
	}
	do(t, s, "GET", "/v1/sessions", "", &list)
	if len(list.Sessions) != 0 {
		t.Errorf("rejected session was stored: %+v", list.Sessions)
	}
}

func TestPlanRejectsUnachievablePerRequestConfig(t *testing.T) {
	s := newTestServer(t)
	id := createSession(t, s, "alice")
	body := `{"config": {
		"policy": "greedy", "topK": 1, "depth": 1,
		"constraints": [
			{"characteristic": "manageability", "measure": "longest_path", "max": 1}
		]
	}}`
	rr := do(t, s, "POST", "/v1/sessions/"+id+"/plan", body, nil)
	if rr.Code != http.StatusUnprocessableEntity {
		t.Fatalf("plan with unachievable constraints: %d %s", rr.Code, rr.Body.String())
	}
	var out lintErrorJSON
	if err := json.Unmarshal(rr.Body.Bytes(), &out); err != nil {
		t.Fatalf("decoding 422 body: %v", err)
	}
	if len(out.Diagnostics) == 0 || out.Diagnostics[0].Check != "constraint/achievability" {
		t.Fatalf("unexpected diagnostics: %+v", out.Diagnostics)
	}
}

func TestCreateSessionAcceptsAchievableConstraints(t *testing.T) {
	s := newTestServer(t)
	body := `{
		"name": "fine",
		"flow": {"builtin": "tpcds-purchases"},
		"config": {
			"policy": "greedy", "topK": 1, "depth": 1, "sim": {"runs": 4, "defaultRows": 100},
			"constraints": [
				{"characteristic": "manageability", "measure": "flow_size", "max": 64}
			]
		}
	}`
	if rr := do(t, s, "POST", "/v1/sessions", body, nil); rr.Code != http.StatusCreated {
		t.Fatalf("create with achievable constraints: %d %s", rr.Code, rr.Body.String())
	}
}
