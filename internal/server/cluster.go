package server

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"io"
	"net/http"
	"strings"

	"poiesis/internal/cluster"
	"poiesis/internal/core"
)

// Cluster glue: which requests shard by which keys.
//
// Sessions shard by ID: ServeHTTP intercepts /v1/sessions/{id}... paths and
// proxies them to the ring owner (session IDs are generated to be owned by
// the creating replica, so a session's home never moves while membership is
// stable). Plan-cache entries shard by canonical plan key: the owner is
// asked on a local miss and handed the result after a local evaluation, via
// the /v1/cache endpoints below.

// sessionPathID extracts the session ID from /v1/sessions/{id}[/...] paths;
// empty for everything else (including the collection endpoints).
func sessionPathID(path string) string {
	const prefix = "/v1/sessions/"
	if !strings.HasPrefix(path, prefix) {
		return ""
	}
	id := path[len(prefix):]
	if i := strings.IndexByte(id, '/'); i >= 0 {
		id = id[:i]
	}
	return id
}

// interceptForward forwards the request to its owning replica when session
// sharding says it lives elsewhere. It reports whether the request was
// handled (forwarded); false means "serve locally". A request already
// carrying the forwarded marker is always served locally — the single-hop
// guarantee — and counted against its origin peer.
func (s *Server) interceptForward(w http.ResponseWriter, r *http.Request) bool {
	if s.cluster == nil {
		return false
	}
	id := sessionPathID(r.URL.Path)
	if id == "" {
		return false
	}
	if origin := r.Header.Get(cluster.ForwardedHeader); origin != "" {
		s.cluster.NoteForwardedIn(origin)
		return false
	}
	owner := s.cluster.Owner(cluster.SessionKey(id))
	if owner == s.cluster.Self() {
		return false
	}
	s.cluster.Forward(w, r, owner)
	return true
}

// newOwnedSessionID draws session IDs until one lands on this replica's arc
// of the ring, so the session's creator is its owner and every other replica
// forwards to it. The expected number of draws is the cluster size; the odds
// of even 64 consecutive misses in an 8-replica cluster are (7/8)^64 ≈ 2e-4,
// and each draw costs one rand read plus one hash.
func (s *Server) newOwnedSessionID() string {
	id := newSessionID()
	if s.cluster == nil {
		return id
	}
	for !s.cluster.IsLocal(cluster.SessionKey(id)) {
		id = newSessionID()
	}
	return id
}

// wireCacheKey encodes a raw plan-cache key for use as a URL path element.
// Raw keys are a hex digest plus the registry-partition suffix, which may
// hold arbitrary JSON bytes; base64url carries both safely.
func wireCacheKey(key string) string {
	return base64.RawURLEncoding.EncodeToString([]byte(key))
}

// Readiness and cluster introspection -----------------------------------------

// handleReadyz is the readiness probe: 200 once the backend's sessions are
// restored and (in cluster mode) the ring is configured — both of which New
// completes before it returns the handler, so a replica that answers at all
// answers ready. The endpoint still matters operationally: load balancers
// gate traffic on it (a booting replica mid-restore simply doesn't accept
// connections yet), and a peer's forwarder probes it to decide a
// cooled-down replica is worth forwarding to again. /v1/healthz remains
// pure liveness.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	out := readyzJSON{Status: "ready", Backend: s.store.backend.Name(), SessionsRestored: s.restored}
	if s.cluster != nil {
		out.Cluster = true
		out.Node = s.cluster.Self()
	}
	writeJSON(w, http.StatusOK, out)
}

// handleCluster reports the replica's view of the cluster: membership, ring
// parameters, per-peer health and traffic counters.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		writeJSON(w, http.StatusOK, clusterInfoJSON{Enabled: false})
		return
	}
	st := s.cluster.Stats()
	out := clusterInfoJSON{
		Enabled: true,
		Self:    st.Self,
		VNodes:  st.VNodes,
		Members: s.cluster.Members(),
		Peers:   st.Peers,
	}
	writeJSON(w, http.StatusOK, out)
}

// Shared plan-cache tier: peer-facing endpoints --------------------------------

// maxCachePutBytes bounds a write-through payload. Deliberately far above
// the 16 MiB upload limit: a serialized Result carries the full evaluated
// space and legitimately dwarfs any flow upload.
const maxCachePutBytes = 256 << 20

// requireClusterPeer gates the peer-facing cache endpoints: they exist only
// in cluster mode (404 otherwise — single-node serve exposes exactly the
// pre-cluster surface) and only for callers presenting a known peer's node
// ID in the forwarded marker. The marker is not a credential — replicas are
// expected to be network-isolated together — but it stops stray clients
// from reading, and above all writing, cached plan results by accident.
func (s *Server) requireClusterPeer(w http.ResponseWriter, r *http.Request) (origin string, ok bool) {
	if s.cluster == nil {
		writeError(w, http.StatusNotFound, "not a cluster replica")
		return "", false
	}
	origin = r.Header.Get(cluster.ForwardedHeader)
	if !s.cluster.KnownPeer(origin) {
		writeError(w, http.StatusForbidden, "cache tier is peer-to-peer only (unknown origin %q)", origin)
		return "", false
	}
	return origin, true
}

// handleCacheGet serves this replica's plan cache to its peers. When the key
// is mid-computation here, the response waits for that computation instead
// of reporting a miss — a peer asking while the owner's own request is still
// evaluating would otherwise start a second, redundant evaluation.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	origin, ok := s.requireClusterPeer(w, r)
	if !ok {
		return
	}
	s.cluster.NoteCacheGetIn(origin)
	raw, err := base64.RawURLEncoding.DecodeString(r.PathValue("key"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "malformed cache key: %v", err)
		return
	}
	res, ok := s.cache.lookup(r.Context(), string(raw), true)
	if !ok {
		writeError(w, http.StatusNotFound, "no cached result for this key")
		return
	}
	snap, err := core.SnapshotResult(res)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "serializing cached result: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleCachePut accepts a peer's write-through: a result the peer evaluated
// for a key this replica owns. The entry lands in the local cache (unless
// already present or being computed) and is served to every later asker.
func (s *Server) handleCachePut(w http.ResponseWriter, r *http.Request) {
	origin, ok := s.requireClusterPeer(w, r)
	if !ok {
		return
	}
	s.cluster.NoteCachePutIn(origin)
	raw, err := base64.RawURLEncoding.DecodeString(r.PathValue("key"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "malformed cache key: %v", err)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxCachePutBytes))
	if err != nil {
		writeBodyError(w, err)
		return
	}
	var snap core.ResultSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		writeError(w, http.StatusBadRequest, "parsing result snapshot: %v", err)
		return
	}
	res, err := core.RestoreResult(&snap)
	if err != nil {
		writeError(w, http.StatusBadRequest, "restoring result snapshot: %v", err)
		return
	}
	s.cache.put(string(raw), res)
	w.WriteHeader(http.StatusNoContent)
}

// Shared plan-cache tier: requesting side --------------------------------------

// fetchPeerResult asks the key's owning replica for a cached result and
// rebuilds it. ok is false on any miss or failure — never an error for the
// analyst's request, only a lost sharing opportunity.
func (s *Server) fetchPeerResult(ctx context.Context, ownerID, key string) (*core.Result, bool) {
	payload, ok := s.cluster.FetchCachedResult(ctx, ownerID, wireCacheKey(key))
	if !ok {
		return nil, false
	}
	var snap core.ResultSnapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		s.logfFor(ctx)("server: parsing peer cache payload from %s: %v", ownerID, err)
		return nil, false
	}
	res, err := core.RestoreResult(&snap)
	if err != nil {
		s.logfFor(ctx)("server: restoring peer cache payload from %s: %v", ownerID, err)
		return nil, false
	}
	return res, true
}

// pushPeerResult writes a locally evaluated result through to the key's
// owner. Best-effort and synchronous: the handler still holds the session's
// opMu, and a deterministic write-through is what lets a test (or an
// operator) observe "evaluate once, then every replica hits" without races.
func (s *Server) pushPeerResult(ctx context.Context, ownerID, key string, res *core.Result) {
	snap, err := core.SnapshotResult(res)
	if err != nil {
		s.logfFor(ctx)("server: serializing result for peer cache %s: %v", ownerID, err)
		return
	}
	payload, err := json.Marshal(snap)
	if err != nil {
		s.logfFor(ctx)("server: encoding result for peer cache %s: %v", ownerID, err)
		return
	}
	if err := s.cluster.PushCachedResult(ctx, ownerID, wireCacheKey(key), payload); err != nil {
		s.logfFor(ctx)("server: pushing result to peer cache %s: %v", ownerID, err)
	}
}
