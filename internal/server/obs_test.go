package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"poiesis/internal/obs"
)

// scrape fetches /metrics through the handler and parses the exposition.
func scrape(t testing.TB, s *Server) map[string]obs.Sample {
	t.Helper()
	rr := do(t, s, "GET", "/metrics", "", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("GET /metrics: %d %s", rr.Code, rr.Body.String())
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("GET /metrics content type %q", ct)
	}
	samples, err := obs.ParseText(rr.Body)
	if err != nil {
		t.Fatalf("parsing exposition: %v\n%s", err, rr.Body.String())
	}
	out := make(map[string]obs.Sample, len(samples))
	for _, sm := range samples {
		out[sm.Key()] = sm
	}
	return out
}

// sampleValue sums every series of one metric name, across label sets.
func sampleValue(samples map[string]obs.Sample, name string) (float64, bool) {
	var total float64
	found := false
	for _, sm := range samples {
		if sm.Name == name {
			total += sm.Value
			found = true
		}
	}
	return total, found
}

// TestMetricsExposition drives real traffic through the handler and asserts
// the scrape covers every layer: HTTP routes, planner stages, plan cache,
// session backend and build identity — and that the format round-trips
// through the strict parser.
func TestMetricsExposition(t *testing.T) {
	s := newTestServer(t)
	id := createSession(t, s, "obs")
	if rr := do(t, s, "POST", "/v1/sessions/"+id+"/plan", "", nil); rr.Code != http.StatusOK {
		t.Fatalf("plan: %d %s", rr.Code, rr.Body.String())
	}
	// Same key: the second plan must be a cache hit.
	if rr := do(t, s, "POST", "/v1/sessions/"+id+"/plan", "", nil); rr.Code != http.StatusOK {
		t.Fatalf("replan: %d %s", rr.Code, rr.Body.String())
	}
	samples := scrape(t, s)

	if v, ok := sampleValue(samples, "poiesis_http_requests_total"); !ok || v < 3 {
		t.Errorf("poiesis_http_requests_total = %v (found %v), want >= 3", v, ok)
	}
	// The plan route must be labeled by its mux pattern, not the raw path.
	route := `route="POST /v1/sessions/{id}/plan"`
	foundRoute := false
	for key := range samples {
		if strings.Contains(key, route) {
			foundRoute = true
			break
		}
	}
	if !foundRoute {
		t.Errorf("no sample labeled %s in scrape", route)
	}
	for _, stage := range []string{"pattern_application", "evaluation", "constraint_filter", "skyline_merge"} {
		key := fmt.Sprintf(`poiesis_planner_stage_duration_seconds_count{stage=%q}`, stage)
		sm, ok := samples[key]
		if !ok || sm.Value < 1 {
			t.Errorf("stage span %s: sample %+v (found %v), want count >= 1", stage, sm, ok)
		}
	}
	if v, ok := sampleValue(samples, "poiesis_plan_cache_hits_total"); !ok || v != 1 {
		t.Errorf("poiesis_plan_cache_hits_total = %v (found %v), want 1", v, ok)
	}
	if v, ok := sampleValue(samples, "poiesis_plans_computed_total"); !ok || v != 1 {
		t.Errorf("poiesis_plans_computed_total = %v (found %v), want 1", v, ok)
	}
	if v, ok := sampleValue(samples, "poiesis_backend_op_duration_seconds_count"); !ok || v < 1 {
		t.Errorf("backend op count = %v (found %v), want >= 1", v, ok)
	}
	if _, ok := samples[`poiesis_backend_op_duration_seconds_count{backend="memory",op="put"}`]; !ok {
		t.Error("no memory-backend put histogram in scrape")
	}
	if v, ok := sampleValue(samples, "poiesis_build_info"); !ok || v != 1 {
		t.Errorf("poiesis_build_info = %v (found %v), want 1", v, ok)
	}
	if v, ok := sampleValue(samples, "poiesis_evaluations_total"); !ok || v < 1 {
		t.Errorf("poiesis_evaluations_total = %v (found %v), want >= 1", v, ok)
	}
}

// TestStatsGoldenKeys pins the exact top-level key set of /v1/stats: new
// fields must be added here deliberately, and removals are API breaks.
func TestStatsGoldenKeys(t *testing.T) {
	s := newTestServer(t)
	id := createSession(t, s, "stats")
	if rr := do(t, s, "POST", "/v1/sessions/"+id+"/plan", "", nil); rr.Code != http.StatusOK {
		t.Fatalf("plan: %d", rr.Code)
	}
	rr := do(t, s, "GET", "/v1/stats", "", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("stats: %d", rr.Code)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(rr.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	got := make([]string, 0, len(raw))
	for k := range raw {
		got = append(got, k)
	}
	sort.Strings(got)
	// "cluster" is omitempty and absent in single-node mode. "exemplars"
	// and "tracing" are omitempty too but present here: the test server
	// traces every request, so the plan above left collector stats and a
	// latency exemplar.
	want := []string{
		"backend", "cacheBytes", "cacheHits", "cacheMisses", "cacheSize",
		"evaluations", "evictDropped", "evictQueue", "evictions", "exemplars",
		"persistErrors", "plansCached", "plansComputed", "sessions",
		"sessionsRestored", "tracing",
	}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("stats keys drifted:\n got %v\nwant %v", got, want)
	}
}

// TestHealthzBuildInfo asserts the liveness probe carries build identity
// (unstamped test binaries report the "unknown" placeholders, never "").
func TestHealthzBuildInfo(t *testing.T) {
	s := newTestServer(t)
	var hz healthzJSON
	if rr := do(t, s, "GET", "/v1/healthz", "", &hz); rr.Code != http.StatusOK {
		t.Fatalf("healthz: %d", rr.Code)
	}
	if hz.Status != "ok" || hz.Version == "" || hz.Revision == "" {
		t.Errorf("healthz body incomplete: %+v", hz)
	}
}

// TestRequestIDHeader covers the middleware contract: a minted ID on bare
// requests, echo of a valid caller ID, and replacement of an invalid one.
func TestRequestIDHeader(t *testing.T) {
	s := newTestServer(t)
	rr := do(t, s, "GET", "/v1/healthz", "", nil)
	if rid := rr.Header().Get(obs.RequestIDHeader); !obs.ValidRequestID(rid) {
		t.Errorf("minted request ID %q is invalid", rid)
	}

	req := httptest.NewRequest("GET", "/v1/healthz", nil)
	req.Header.Set(obs.RequestIDHeader, "caller-chose.this_1")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if got := rec.Header().Get(obs.RequestIDHeader); got != "caller-chose.this_1" {
		t.Errorf("valid caller ID not echoed: got %q", got)
	}

	req = httptest.NewRequest("GET", "/v1/healthz", nil)
	req.Header.Set(obs.RequestIDHeader, "bad id\nwith junk")
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if got := rec.Header().Get(obs.RequestIDHeader); !obs.ValidRequestID(got) || got == "bad id\nwith junk" {
		t.Errorf("invalid caller ID not replaced: got %q", got)
	}
}

// TestPlanTrace exercises GET .../trace: a computed run records its stage
// spans, a cache hit records cached=true, and both carry request IDs.
func TestPlanTrace(t *testing.T) {
	s := newTestServer(t)
	id := createSession(t, s, "trace")
	req := httptest.NewRequest("POST", "/v1/sessions/"+id+"/plan", nil)
	req.Header.Set(obs.RequestIDHeader, "trace-run-1")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("plan: %d %s", rec.Code, rec.Body.String())
	}
	if rr := do(t, s, "POST", "/v1/sessions/"+id+"/plan", "", nil); rr.Code != http.StatusOK {
		t.Fatalf("replan: %d", rr.Code)
	}

	var body struct {
		Session string      `json:"session"`
		Traces  []traceJSON `json:"traces"`
	}
	if rr := do(t, s, "GET", "/v1/sessions/"+id+"/trace", "", &body); rr.Code != http.StatusOK {
		t.Fatalf("trace: %d %s", rr.Code, rr.Body.String())
	}
	if body.Session != id || len(body.Traces) != 2 {
		t.Fatalf("trace body: session %q, %d traces", body.Session, len(body.Traces))
	}
	first, second := body.Traces[0], body.Traces[1]
	if first.Cached || first.RequestID != "trace-run-1" {
		t.Errorf("first trace: %+v", first)
	}
	if len(first.Stages) != 4 {
		t.Errorf("first trace has %d stages, want 4: %+v", len(first.Stages), first.Stages)
	}
	if !second.Cached {
		t.Errorf("second trace not cached: %+v", second)
	}
	if second.RequestID == "" || second.RequestID == first.RequestID {
		t.Errorf("second trace request ID %q (first %q)", second.RequestID, first.RequestID)
	}
	if first.Evaluated == 0 || first.SkylineSize == 0 || first.DurationNs <= 0 {
		t.Errorf("first trace counters: %+v", first)
	}
}

// TestClusterForwardRequestID boots two replicas with captured access logs
// and sends a session request to the replica that does NOT own it. Exactly
// one request ID must appear end-to-end: on the response, in the proxying
// replica's access log, and in the owner's access log.
func TestClusterForwardRequestID(t *testing.T) {
	var mu sync.Mutex
	logs := make([][]string, 2)
	_, urls := startReplicas(t, 2, func(i int, cfg *Config) {
		cfg.AccessLogf = func(format string, args ...any) {
			mu.Lock()
			logs[i] = append(logs[i], fmt.Sprintf(format, args...))
			mu.Unlock()
		}
	})

	id := clusterCreateSession(t, urls[0], "fwd")
	// The creating replica owns the session, so the other replica forwards.
	req, err := http.NewRequest("GET", urls[1]+"/v1/sessions/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.RequestIDHeader, "xcluster-rid-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded get: %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.RequestIDHeader); got != "xcluster-rid-7" {
		t.Errorf("response request ID %q, want the caller's", got)
	}
	// Exactly once: the proxy drops its own copy before relaying the
	// upstream's, so a forwarded response must not double the header.
	if vs := resp.Header.Values(obs.RequestIDHeader); len(vs) != 1 {
		t.Errorf("forwarded response carries %d request-ID headers (%q), want 1", len(vs), vs)
	}

	mu.Lock()
	defer mu.Unlock()
	ridLine := regexp.MustCompile(`rid=xcluster-rid-7\b`)
	for i, replica := range logs {
		found := false
		for _, line := range replica {
			if ridLine.MatchString(line) && strings.Contains(line, "/v1/sessions/"+id) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("replica %d access log has no line for rid=xcluster-rid-7:\n%s",
				i, strings.Join(replica, "\n"))
		}
	}
	// The proxying replica must label the request as a forward, not a route.
	foundForward := false
	for _, line := range logs[1] {
		if ridLine.MatchString(line) && strings.Contains(line, `route="forward"`) {
			foundForward = true
		}
	}
	if !foundForward {
		t.Errorf("proxying replica never logged route=\"forward\":\n%s", strings.Join(logs[1], "\n"))
	}
}

// TestMetricsScrapeUnderLoad hammers /metrics while plans run — the scrape
// path locks the registry families the hot path writes through, so this is
// the -race coverage for the whole instrumentation layer.
func TestMetricsScrapeUnderLoad(t *testing.T) {
	s := newTestServer(t)
	ids := make([]string, 4)
	for i := range ids {
		ids[i] = createSession(t, s, fmt.Sprintf("load-%d", i))
	}
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				do(t, s, "POST", "/v1/sessions/"+id+"/plan", "", nil)
				do(t, s, "GET", "/v1/sessions/"+id, "", nil)
			}
		}(id)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				scrape(t, s)
				do(t, s, "GET", "/v1/stats", "", nil)
			}
		}()
	}
	wg.Wait()
	// One final scrape must still parse and reflect the traffic.
	samples := scrape(t, s)
	if v, ok := sampleValue(samples, "poiesis_http_requests_total"); !ok || v < 12 {
		t.Errorf("after load, poiesis_http_requests_total = %v (found %v)", v, ok)
	}
}
