// Logging: every sink in the server tree — Config.Logf, the session
// store, the disk/SQL backends' Logf views, and the old bare log.Printf
// fallbacks — funnels through one obs.NewLogfLogger handler, so a warning
// from any layer renders the same "msg key=val" shape and request-scoped
// lines carry rid/trace_id/span_id.
package server

import (
	"context"
	"fmt"
	"log"
	"log/slog"

	"poiesis/internal/obs"
)

// defaultLogger is the process-wide fallback used when a component has no
// configured sink: structured rendering over the stdlib logger.
var defaultLogger = obs.NewLogfLogger(log.Printf)

// defaultLogf is the printf-compatible view of defaultLogger, for the
// backends' Logf fields which keep their printf signature.
func defaultLogf(format string, args ...any) {
	defaultLogger.Info(fmt.Sprintf(format, args...))
}

// withCtx returns lg with the context's request identity (rid, trace_id,
// span_id) attached; lg unchanged when the context carries none.
func withCtx(lg *slog.Logger, ctx context.Context) *slog.Logger {
	attrs := obs.CtxAttrs(ctx)
	if len(attrs) == 0 {
		return lg
	}
	args := make([]any, len(attrs))
	for i, a := range attrs {
		args[i] = a
	}
	return lg.With(args...)
}

// logCtx is the server's structured logger scoped to one request.
func (s *Server) logCtx(ctx context.Context) *slog.Logger {
	return withCtx(s.logger, ctx)
}

// logfFor returns a printf-style view of the request-scoped logger, for
// call sites that still format their message inline. The rendered line
// carries rid/trace_id/span_id like every other structured line.
func (s *Server) logfFor(ctx context.Context) func(format string, args ...any) {
	lg := s.logCtx(ctx)
	return func(format string, args ...any) {
		lg.Info(fmt.Sprintf(format, args...))
	}
}
