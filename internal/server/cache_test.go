package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"poiesis/internal/core"
)

func resultStub(n int) *core.Result {
	return &core.Result{Stats: core.Stats{Evaluated: n}}
}

// cached probes whether key is in the cache through the public do path: a
// probe that would compute fails instead, leaving the cache untouched (a
// probe hit still counts as use for the LRU order, like any real hit).
func cached(t testing.TB, c *planCache, key string) bool {
	t.Helper()
	computed := false
	_, hit, _ := c.do(context.Background(), key, func() (*core.Result, error) {
		computed = true
		return nil, errors.New("probe miss")
	})
	return hit && !computed
}

func TestCacheHitMiss(t *testing.T) {
	c := newPlanCache(4)
	ctx := context.Background()

	var computes int
	res, hit, err := c.do(ctx, "k1", func() (*core.Result, error) {
		computes++
		return resultStub(1), nil
	})
	if err != nil || hit || res.Stats.Evaluated != 1 {
		t.Fatalf("first do: res=%+v hit=%v err=%v", res, hit, err)
	}
	res, hit, err = c.do(ctx, "k1", func() (*core.Result, error) {
		computes++
		return resultStub(2), nil
	})
	if err != nil || !hit || res.Stats.Evaluated != 1 {
		t.Fatalf("second do: res=%+v hit=%v err=%v", res, hit, err)
	}
	if computes != 1 {
		t.Errorf("computed %d times, want 1", computes)
	}
	hits, misses, size := c.stats()
	if hits != 1 || misses != 1 || size != 1 {
		t.Errorf("stats: hits=%d misses=%d size=%d", hits, misses, size)
	}
}

func TestCacheComputeErrorNotCached(t *testing.T) {
	c := newPlanCache(4)
	ctx := context.Background()
	boom := errors.New("boom")
	if _, _, err := c.do(ctx, "k", func() (*core.Result, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if cached(t, c, "k") {
		t.Error("failed compute was cached")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newPlanCache(2)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("k%d", i)
		if i == 2 {
			// Touch k0 so k1 is the LRU victim.
			if !cached(t, c, "k0") {
				t.Fatal("k0 missing before eviction")
			}
		}
		_, _, err := c.do(ctx, key, func() (*core.Result, error) { return resultStub(i), nil })
		if err != nil {
			t.Fatal(err)
		}
	}
	if cached(t, c, "k1") {
		t.Error("LRU entry k1 not evicted")
	}
	if !cached(t, c, "k0") {
		t.Error("recently used k0 evicted")
	}
	if !cached(t, c, "k2") {
		t.Error("newest k2 evicted")
	}
}

// Concurrent requests for one key collapse onto a single computation, and
// every caller gets the same result.
func TestCacheSingleflight(t *testing.T) {
	c := newPlanCache(4)
	ctx := context.Background()
	var computes atomic.Int64
	gate := make(chan struct{})

	const callers = 8
	var wg sync.WaitGroup
	results := make([]*core.Result, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, _, err := c.do(ctx, "k", func() (*core.Result, error) {
				computes.Add(1)
				<-gate
				return resultStub(7), nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			results[i] = res
		}(i)
	}
	close(gate)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Errorf("computed %d times, want 1", got)
	}
	for i, res := range results {
		if res != results[0] {
			t.Errorf("caller %d got a different result pointer", i)
		}
	}
}

// When the leader fails (e.g. its client disconnected, cancelling the run),
// a waiter takes over instead of inheriting the failure.
func TestCacheLeaderFailureHandsOver(t *testing.T) {
	c := newPlanCache(4)
	ctx := context.Background()

	leaderIn := make(chan struct{})
	leaderFail := make(chan struct{})
	var leaderDone sync.WaitGroup
	leaderDone.Add(1)
	go func() {
		defer leaderDone.Done()
		_, _, err := c.do(ctx, "k", func() (*core.Result, error) {
			close(leaderIn)
			<-leaderFail
			return nil, context.Canceled
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("leader err = %v", err)
		}
	}()

	<-leaderIn
	waiterComputed := false
	done := make(chan struct{})
	go func() {
		defer close(done)
		res, hit, err := c.do(ctx, "k", func() (*core.Result, error) {
			waiterComputed = true
			return resultStub(9), nil
		})
		if err != nil || hit || res.Stats.Evaluated != 9 {
			t.Errorf("waiter: res=%+v hit=%v err=%v", res, hit, err)
		}
	}()
	close(leaderFail)
	leaderDone.Wait()
	<-done
	if !waiterComputed {
		t.Error("waiter did not take over after leader failure")
	}
}

// A waiter whose own context dies while waiting gives up with that error.
func TestCacheWaiterContextCancel(t *testing.T) {
	c := newPlanCache(4)

	leaderIn := make(chan struct{})
	leaderOut := make(chan struct{})
	go func() {
		_, _, _ = c.do(context.Background(), "k", func() (*core.Result, error) {
			close(leaderIn)
			<-leaderOut
			return resultStub(1), nil
		})
	}()
	<-leaderIn

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.do(ctx, "k", func() (*core.Result, error) {
		t.Error("cancelled waiter must not compute")
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("waiter err = %v", err)
	}
	close(leaderOut)
}
