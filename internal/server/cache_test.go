package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"poiesis/internal/core"
	"poiesis/internal/tpcds"
)

func resultStub(n int) *core.Result {
	return &core.Result{Stats: core.Stats{Evaluated: n}}
}

// cached probes whether key is in the cache through the public do path: a
// probe that would compute fails instead, leaving the cache untouched (a
// probe hit still counts as use for the LRU order, like any real hit).
func cached(t testing.TB, c *planCache, key string) bool {
	t.Helper()
	computed := false
	_, hit, _ := c.do(context.Background(), key, func() (*core.Result, error) {
		computed = true
		return nil, errors.New("probe miss")
	})
	return hit && !computed
}

func TestCacheHitMiss(t *testing.T) {
	c := newPlanCache(4, 0)
	ctx := context.Background()

	var computes int
	res, hit, err := c.do(ctx, "k1", func() (*core.Result, error) {
		computes++
		return resultStub(1), nil
	})
	if err != nil || hit || res.Stats.Evaluated != 1 {
		t.Fatalf("first do: res=%+v hit=%v err=%v", res, hit, err)
	}
	res, hit, err = c.do(ctx, "k1", func() (*core.Result, error) {
		computes++
		return resultStub(2), nil
	})
	if err != nil || !hit || res.Stats.Evaluated != 1 {
		t.Fatalf("second do: res=%+v hit=%v err=%v", res, hit, err)
	}
	if computes != 1 {
		t.Errorf("computed %d times, want 1", computes)
	}
	hits, misses, size, _ := c.stats()
	if hits != 1 || misses != 1 || size != 1 {
		t.Errorf("stats: hits=%d misses=%d size=%d", hits, misses, size)
	}
}

func TestCacheComputeErrorNotCached(t *testing.T) {
	c := newPlanCache(4, 0)
	ctx := context.Background()
	boom := errors.New("boom")
	if _, _, err := c.do(ctx, "k", func() (*core.Result, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if cached(t, c, "k") {
		t.Error("failed compute was cached")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newPlanCache(2, 0)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("k%d", i)
		if i == 2 {
			// Touch k0 so k1 is the LRU victim.
			if !cached(t, c, "k0") {
				t.Fatal("k0 missing before eviction")
			}
		}
		_, _, err := c.do(ctx, key, func() (*core.Result, error) { return resultStub(i), nil })
		if err != nil {
			t.Fatal(err)
		}
	}
	if cached(t, c, "k1") {
		t.Error("LRU entry k1 not evicted")
	}
	if !cached(t, c, "k0") {
		t.Error("recently used k0 evicted")
	}
	if !cached(t, c, "k2") {
		t.Error("newest k2 evicted")
	}
}

// Concurrent requests for one key collapse onto a single computation, and
// every caller gets the same result.
func TestCacheSingleflight(t *testing.T) {
	c := newPlanCache(4, 0)
	ctx := context.Background()
	var computes atomic.Int64
	gate := make(chan struct{})

	const callers = 8
	var wg sync.WaitGroup
	results := make([]*core.Result, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, _, err := c.do(ctx, "k", func() (*core.Result, error) {
				computes.Add(1)
				<-gate
				return resultStub(7), nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			results[i] = res
		}(i)
	}
	close(gate)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Errorf("computed %d times, want 1", got)
	}
	for i, res := range results {
		if res != results[0] {
			t.Errorf("caller %d got a different result pointer", i)
		}
	}
}

// When the leader fails (e.g. its client disconnected, cancelling the run),
// a waiter takes over instead of inheriting the failure.
func TestCacheLeaderFailureHandsOver(t *testing.T) {
	c := newPlanCache(4, 0)
	ctx := context.Background()

	leaderIn := make(chan struct{})
	leaderFail := make(chan struct{})
	var leaderDone sync.WaitGroup
	leaderDone.Add(1)
	go func() {
		defer leaderDone.Done()
		_, _, err := c.do(ctx, "k", func() (*core.Result, error) {
			close(leaderIn)
			<-leaderFail
			return nil, context.Canceled
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("leader err = %v", err)
		}
	}()

	<-leaderIn
	waiterComputed := false
	done := make(chan struct{})
	go func() {
		defer close(done)
		res, hit, err := c.do(ctx, "k", func() (*core.Result, error) {
			waiterComputed = true
			return resultStub(9), nil
		})
		if err != nil || hit || res.Stats.Evaluated != 9 {
			t.Errorf("waiter: res=%+v hit=%v err=%v", res, hit, err)
		}
	}()
	close(leaderFail)
	leaderDone.Wait()
	<-done
	if !waiterComputed {
		t.Error("waiter did not take over after leader failure")
	}
}

// A waiter whose own context dies while waiting gives up with that error.
func TestCacheWaiterContextCancel(t *testing.T) {
	c := newPlanCache(4, 0)

	leaderIn := make(chan struct{})
	leaderOut := make(chan struct{})
	go func() {
		_, _, _ = c.do(context.Background(), "k", func() (*core.Result, error) {
			close(leaderIn)
			<-leaderOut
			return resultStub(1), nil
		})
	}()
	<-leaderIn

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.do(ctx, "k", func() (*core.Result, error) {
		t.Error("cancelled waiter must not compute")
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("waiter err = %v", err)
	}
	close(leaderOut)
}

// bigResult builds a result whose weight scales with the alternative count,
// like a real MaxAlternatives-heavy exploration.
func bigResult(alts int) *core.Result {
	res := &core.Result{}
	g := tpcds.PurchasesFlow()
	for i := 0; i < alts; i++ {
		res.Alternatives = append(res.Alternatives, core.Alternative{Graph: g})
	}
	return res
}

func TestCacheWeightsBySize(t *testing.T) {
	small := resultWeight(resultStub(1))
	large := resultWeight(bigResult(512))
	if large < 100*small {
		t.Errorf("512-alternative result should weigh far more than an empty one: %d vs %d", large, small)
	}
}

// Eviction is driven by the byte budget, not the entry count: many small
// entries fit, one oversized arrival evicts them.
func TestCacheByteBudgetEviction(t *testing.T) {
	ctx := context.Background()
	budget := 4 * resultWeight(resultStub(0))
	c := newPlanCache(1024, budget)

	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("small%d", i)
		if _, _, err := c.do(ctx, key, func() (*core.Result, error) { return resultStub(i), nil }); err != nil {
			t.Fatal(err)
		}
	}
	_, _, size, bytes := c.stats()
	if size != 4 || bytes > budget {
		t.Fatalf("4 small entries should fit: size=%d bytes=%d budget=%d", size, bytes, budget)
	}

	// A heavy result blows the budget: the small entries are evicted
	// oldest-first, but the newcomer itself stays resident.
	if _, _, err := c.do(ctx, "big", func() (*core.Result, error) { return bigResult(256), nil }); err != nil {
		t.Fatal(err)
	}
	if !cached(t, c, "big") {
		t.Error("over-budget newest entry must stay resident")
	}
	if cached(t, c, "small0") || cached(t, c, "small1") || cached(t, c, "small2") {
		t.Error("byte budget did not evict older entries")
	}
	_, _, size, bytes = c.stats()
	if size != 1 {
		t.Errorf("size = %d after oversized insert, want 1", size)
	}
	if bytes != resultWeight(bigResult(256)) {
		t.Errorf("bytes accounting drifted: %d", bytes)
	}

	// Small entries cycle back in normally afterwards.
	if _, _, err := c.do(ctx, "after", func() (*core.Result, error) { return resultStub(5), nil }); err != nil {
		t.Fatal(err)
	}
	if !cached(t, c, "after") {
		t.Error("cache stuck after oversized entry")
	}
}
