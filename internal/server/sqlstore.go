package server

import (
	"database/sql"
	"errors"
	"fmt"
	"time"

	"poiesis/internal/sqlite"
)

// SQLBackend is the networked SessionBackend: session records live in a
// single SQL table reached through database/sql, so any driver speaking the
// small dialect below (a real sqlite build, PostgreSQL, MySQL) can hold the
// session tier. The default driver is the embedded dependency-free
// sqlite.DriverName engine, which makes "sql" usable out of the box with a
// file or in-memory DSN.
//
// Schema: one row per session, the encoded record as a blob next to the
// columns queries filter on —
//
//	poiesis_sessions(id TEXT PRIMARY KEY, version INTEGER,
//	                 last_used INTEGER /* UnixNano */, record BLOB)
//
// The version column mirrors the record's format version for operator
// visibility; decode still happens via decodeRecord, with the same
// skip-and-log policy as the disk backend for rows written by a future
// format. last_used is duplicated out of the blob so Sweep is one indexed
// range DELETE instead of a full decode pass.
type SQLBackend struct {
	db *sql.DB
	// Logf reports rows skipped during List; nil uses the log package
	// default. server.New derives a logging view via WithLogf instead of
	// writing here.
	Logf func(format string, args ...any)
}

// WithLogf returns a view of the same backend — shared connection pool —
// whose warnings go to logf. The receiver is not modified, so a backend
// shared between two servers never races on Logf.
func (b *SQLBackend) WithLogf(logf func(format string, args ...any)) *SQLBackend {
	return &SQLBackend{db: b.db, Logf: logf}
}

const sqlSessionsSchema = `CREATE TABLE IF NOT EXISTS poiesis_sessions (` +
	`id TEXT PRIMARY KEY, version INTEGER, last_used INTEGER, record BLOB)`

// NewSQLBackend opens (creating the table if needed) a SQL session store.
// driverName "" selects the embedded engine; dsn is driver-specific — for
// the embedded engine, ":memory:" or a log-file path.
func NewSQLBackend(driverName, dsn string) (*SQLBackend, error) {
	if driverName == "" {
		driverName = sqlite.DriverName
	}
	db, err := sql.Open(driverName, dsn)
	if err != nil {
		return nil, fmt.Errorf("server: opening SQL session store: %w", err)
	}
	// One writer plus background sweeps is the store's whole concurrency; a
	// small pool keeps the embedded engine's connector semantics simple.
	db.SetMaxOpenConns(4)
	if _, err := db.Exec(sqlSessionsSchema); err != nil {
		db.Close()
		return nil, fmt.Errorf("server: preparing SQL session table: %w", err)
	}
	return &SQLBackend{db: db}, nil
}

func (b *SQLBackend) Name() string { return "sql" }

// Close releases the database pool (and, for the embedded engine, flushes
// and closes the backing log file).
func (b *SQLBackend) Close() error { return b.db.Close() }

func (b *SQLBackend) logf(format string, args ...any) {
	if b.Logf != nil {
		b.Logf(format, args...)
		return
	}
	// No configured sink: render through the shared structured fallback so
	// backend warnings match the server's "msg key=val" line shape.
	defaultLogf(format, args...)
}

func (b *SQLBackend) Put(rec *SessionRecord) error {
	if err := validRecordID(rec.ID); err != nil {
		return err
	}
	blob, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	_, err = b.db.Exec(`INSERT OR REPLACE INTO poiesis_sessions (id, version, last_used, record) VALUES (?, ?, ?, ?)`,
		rec.ID, int64(SessionRecordVersion), rec.LastUsed.UnixNano(), blob)
	if err != nil {
		return fmt.Errorf("server: writing session row %s: %w", rec.ID, err)
	}
	return nil
}

func (b *SQLBackend) Get(id string) (*SessionRecord, error) {
	if err := validRecordID(id); err != nil {
		return nil, err
	}
	var blob []byte
	err := b.db.QueryRow(`SELECT record FROM poiesis_sessions WHERE id = ?`, id).Scan(&blob)
	if errors.Is(err, sql.ErrNoRows) {
		return nil, ErrRecordNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("server: reading session row %s: %w", id, err)
	}
	rec, err := decodeRecord(blob)
	if err != nil {
		return nil, err
	}
	if rec.ID != id {
		return nil, fmt.Errorf("server: session row %s records ID %s", id, rec.ID)
	}
	return rec, nil
}

func (b *SQLBackend) Delete(id string) error {
	if err := validRecordID(id); err != nil {
		return err
	}
	if _, err := b.db.Exec(`DELETE FROM poiesis_sessions WHERE id = ?`, id); err != nil {
		return fmt.Errorf("server: deleting session row %s: %w", id, err)
	}
	return nil
}

// List loads every decodable row ordered by ID. Undecodable rows — written
// by a future format version or torn by an operator's manual edit — are
// skipped with a logged warning, same as the disk backend, so one bad row
// cannot block a restart.
func (b *SQLBackend) List() ([]*SessionRecord, error) {
	rows, err := b.db.Query(`SELECT id, record FROM poiesis_sessions ORDER BY id`)
	if err != nil {
		return nil, fmt.Errorf("server: listing session rows: %w", err)
	}
	defer rows.Close()
	var out []*SessionRecord
	for rows.Next() {
		var id string
		var blob []byte
		if err := rows.Scan(&id, &blob); err != nil {
			return nil, fmt.Errorf("server: scanning session row: %w", err)
		}
		rec, err := decodeRecord(blob)
		if err == nil && rec.ID != id {
			err = fmt.Errorf("row keyed %s records ID %s", id, rec.ID)
		}
		if err != nil {
			b.logf("server: session store: skipping row %s: %v", id, err)
			continue
		}
		out = append(out, rec)
	}
	if err := rows.Err(); err != nil {
		return nil, fmt.Errorf("server: listing session rows: %w", err)
	}
	return out, nil
}

// Sweep deletes every row whose last_used column is strictly before cutoff
// and reports the affected IDs, without decoding any records.
func (b *SQLBackend) Sweep(cutoff time.Time) ([]string, error) {
	rows, err := b.db.Query(`SELECT id FROM poiesis_sessions WHERE last_used < ? ORDER BY id`, cutoff.UnixNano())
	if err != nil {
		return nil, fmt.Errorf("server: sweeping session rows: %w", err)
	}
	var removed []string
	for rows.Next() {
		var id string
		if err := rows.Scan(&id); err != nil {
			rows.Close()
			return nil, fmt.Errorf("server: sweeping session rows: %w", err)
		}
		removed = append(removed, id)
	}
	if err := rows.Close(); err != nil {
		return nil, fmt.Errorf("server: sweeping session rows: %w", err)
	}
	if err := rows.Err(); err != nil {
		return nil, fmt.Errorf("server: sweeping session rows: %w", err)
	}
	if len(removed) == 0 {
		return nil, nil
	}
	if _, err := b.db.Exec(`DELETE FROM poiesis_sessions WHERE last_used < ?`, cutoff.UnixNano()); err != nil {
		return nil, fmt.Errorf("server: sweeping session rows: %w", err)
	}
	return removed, nil
}
