package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fastPlanBody is a session-creation payload whose plans finish in
// milliseconds: tiny flow, shallow search, few Monte-Carlo runs.
func fastPlanBody(name string) string {
	return fmt.Sprintf(`{
		"name": %q,
		"flow": {"builtin": "tpcds-purchases"},
		"scale": 100,
		"config": {"policy": "greedy", "topK": 1, "depth": 1, "sim": {"runs": 4, "defaultRows": 100}}
	}`, name)
}

func newTestServer(t testing.TB) *Server {
	t.Helper()
	return New(Config{})
}

// do runs one request through the handler and decodes the JSON body into out
// (when out is non-nil).
func do(t testing.TB, s *Server, method, path, body string, out any) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, req)
	if out != nil && rr.Code < 300 {
		if err := json.Unmarshal(rr.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, path, rr.Body.String(), err)
		}
	}
	return rr
}

func createSession(t testing.TB, s *Server, name string) string {
	t.Helper()
	var sj sessionJSON
	rr := do(t, s, "POST", "/v1/sessions", fastPlanBody(name), &sj)
	if rr.Code != http.StatusCreated {
		t.Fatalf("create session: %d %s", rr.Code, rr.Body.String())
	}
	if sj.ID == "" {
		t.Fatal("create session: empty id")
	}
	return sj.ID
}

func TestHealthAndListings(t *testing.T) {
	s := newTestServer(t)
	if rr := do(t, s, "GET", "/v1/healthz", "", nil); rr.Code != 200 {
		t.Errorf("healthz: %d", rr.Code)
	}
	var flows struct {
		Flows []string `json:"flows"`
	}
	do(t, s, "GET", "/v1/flows", "", &flows)
	if len(flows.Flows) != 5 {
		t.Errorf("flows: got %v", flows.Flows)
	}
	var pats struct {
		Patterns []struct{ Name string } `json:"patterns"`
	}
	do(t, s, "GET", "/v1/patterns", "", &pats)
	if len(pats.Patterns) == 0 {
		t.Error("no patterns listed")
	}
}

func TestSessionLifecycle(t *testing.T) {
	s := newTestServer(t)
	id := createSession(t, s, "alice")

	var got sessionJSON
	if rr := do(t, s, "GET", "/v1/sessions/"+id, "", &got); rr.Code != 200 {
		t.Fatalf("get session: %d", rr.Code)
	}
	if got.Flow == "" || got.Nodes == 0 || got.Name != "alice" {
		t.Errorf("session detail incomplete: %+v", got)
	}

	var list struct {
		Sessions []sessionJSON `json:"sessions"`
	}
	do(t, s, "GET", "/v1/sessions", "", &list)
	if len(list.Sessions) != 1 || list.Sessions[0].ID != id {
		t.Errorf("list: %+v", list)
	}

	if rr := do(t, s, "DELETE", "/v1/sessions/"+id, "", nil); rr.Code != http.StatusNoContent {
		t.Errorf("delete: %d", rr.Code)
	}
	if rr := do(t, s, "GET", "/v1/sessions/"+id, "", nil); rr.Code != http.StatusNotFound {
		t.Errorf("get after delete: %d", rr.Code)
	}
}

func TestNotFoundAndBadPayloads(t *testing.T) {
	s := newTestServer(t)
	cases := []struct {
		method, path, body string
		want               int
	}{
		{"GET", "/v1/sessions/nope", "", 404},
		{"POST", "/v1/sessions/nope/plan", "", 404},
		{"POST", "/v1/sessions/nope/select", `{"index":0}`, 404},
		{"GET", "/v1/sessions/nope/result", "", 404},
		{"GET", "/v1/sessions/nope/skyline", "", 404},
		{"GET", "/v1/sessions/nope/flow", "", 404},
		{"DELETE", "/v1/sessions/nope", "", 404},
		{"POST", "/v1/sessions", `{"flow": {}}`, 400},
		{"POST", "/v1/sessions", `{"flow": {"builtin": "no-such-flow"}}`, 400},
		{"POST", "/v1/sessions", `{"flow": {"builtin": "tpcds-purchases", "xlm": "<x/>"}}`, 400},
		{"POST", "/v1/sessions", `not json`, 400},
		{"POST", "/v1/sessions", `{"flow": {"builtin": "tpcds-purchases"}, "config": {"policy": "bogus"}}`, 400},
		{"POST", "/v1/sessions", `{"flow": {"graph": {"name": "x", "nodes": [], "edges": []}}}`, 400},
	}
	for _, c := range cases {
		rr := do(t, s, c.method, c.path, c.body, nil)
		if rr.Code != c.want {
			t.Errorf("%s %s: got %d want %d (%s)", c.method, c.path, rr.Code, c.want, rr.Body.String())
		}
		if rr.Code >= 400 {
			var e errorJSON
			if err := json.Unmarshal(rr.Body.Bytes(), &e); err != nil || e.Error == "" {
				t.Errorf("%s %s: error body not JSON: %q", c.method, c.path, rr.Body.String())
			}
		}
	}
}

// TestExploreSelectLoop drives the full loop over HTTP: create → plan →
// skyline → select → re-plan, the acceptance path of the service.
func TestExploreSelectLoop(t *testing.T) {
	s := newTestServer(t)
	id := createSession(t, s, "")

	var res resultJSON
	if rr := do(t, s, "POST", "/v1/sessions/"+id+"/plan", "", &res); rr.Code != 200 {
		t.Fatalf("plan: %d %s", rr.Code, rr.Body.String())
	}
	if res.Cached {
		t.Error("first plan reported cached")
	}
	if res.Alternatives == 0 || res.SkylineSize == 0 || len(res.Skyline) != res.SkylineSize {
		t.Fatalf("implausible result: %+v", res)
	}
	if res.Stats.Evaluated == 0 {
		t.Error("no evaluations recorded")
	}
	if len(res.Scatter) == 0 {
		t.Error("no scatter export")
	}

	var sky struct {
		Skyline []skylineEntryJSON `json:"skyline"`
	}
	if rr := do(t, s, "GET", "/v1/sessions/"+id+"/skyline", "", &sky); rr.Code != 200 {
		t.Fatalf("skyline: %d", rr.Code)
	}
	if len(sky.Skyline) != res.SkylineSize {
		t.Fatalf("skyline size mismatch: %d vs %d", len(sky.Skyline), res.SkylineSize)
	}
	if sky.Skyline[0].Report == nil || len(sky.Skyline[0].Report.Chars) == 0 {
		t.Error("skyline endpoint lacks measure reports")
	}

	var full resultJSON
	if rr := do(t, s, "GET", "/v1/sessions/"+id+"/result?reports=1", "", &full); rr.Code != 200 {
		t.Fatalf("result: %d", rr.Code)
	}
	if full.Skyline[0].Report == nil {
		t.Error("result?reports=1 lacks reports")
	}

	var sel selectResponseJSON
	if rr := do(t, s, "POST", "/v1/sessions/"+id+"/select", `{"index": 0}`, &sel); rr.Code != 200 {
		t.Fatalf("select: %d %s", rr.Code, rr.Body.String())
	}
	if sel.Selection.Iteration != 1 || sel.Selection.Label == "" || sel.Delta == "" {
		t.Errorf("selection response incomplete: %+v", sel)
	}

	// Result is consumed by the selection.
	if rr := do(t, s, "GET", "/v1/sessions/"+id+"/result", "", nil); rr.Code != 404 {
		t.Errorf("result after select: %d", rr.Code)
	}
	// Bad selects.
	if rr := do(t, s, "POST", "/v1/sessions/"+id+"/select", `{"index": 0}`, nil); rr.Code != 400 {
		t.Errorf("select without result: %d", rr.Code)
	}

	// Re-plan from the integrated design: the flow changed, so this is a
	// cache miss, and the session history shows one iteration.
	var res2 resultJSON
	if rr := do(t, s, "POST", "/v1/sessions/"+id+"/plan", "", &res2); rr.Code != 200 {
		t.Fatalf("re-plan: %d %s", rr.Code, rr.Body.String())
	}
	if res2.Cached {
		t.Error("re-plan after select reported cached; the flow changed")
	}
	var detail sessionJSON
	do(t, s, "GET", "/v1/sessions/"+id, "", &detail)
	if detail.Iterations != 1 || detail.Plans != 2 {
		t.Errorf("session detail after loop: %+v", detail)
	}

	// Select out of range on the fresh result.
	if rr := do(t, s, "POST", "/v1/sessions/"+id+"/select", `{"index": 9999}`, nil); rr.Code != 400 {
		t.Errorf("select out of range: %d", rr.Code)
	}
}

func TestFlowExportFormats(t *testing.T) {
	s := newTestServer(t)
	id := createSession(t, s, "")
	for format, needle := range map[string]string{
		"json": `"nodes"`,
		"dot":  "digraph",
		"xlm":  "<",
		"ktr":  "<",
	} {
		rr := do(t, s, "GET", "/v1/sessions/"+id+"/flow?format="+format, "", nil)
		if rr.Code != 200 || !strings.Contains(rr.Body.String(), needle) {
			t.Errorf("flow format %s: %d %.80s", format, rr.Code, rr.Body.String())
		}
	}
	if rr := do(t, s, "GET", "/v1/sessions/"+id+"/flow?format=bogus", "", nil); rr.Code != 400 {
		t.Errorf("bogus format: %d", rr.Code)
	}
}

// TestPlanCacheAcrossSessions is the acceptance test for the plan cache: two
// sessions planning the same flow with the same options — the second request
// is served from cache and performs no new evaluations.
func TestPlanCacheAcrossSessions(t *testing.T) {
	s := newTestServer(t)
	idA := createSession(t, s, "a")
	idB := createSession(t, s, "b")

	var resA resultJSON
	if rr := do(t, s, "POST", "/v1/sessions/"+idA+"/plan", "", &resA); rr.Code != 200 {
		t.Fatalf("plan A: %d %s", rr.Code, rr.Body.String())
	}
	var stats1 serverStatsJSON
	do(t, s, "GET", "/v1/stats", "", &stats1)
	if stats1.PlansComputed != 1 || stats1.Evaluations == 0 {
		t.Fatalf("after first plan: %+v", stats1)
	}

	var resB resultJSON
	if rr := do(t, s, "POST", "/v1/sessions/"+idB+"/plan", "", &resB); rr.Code != 200 {
		t.Fatalf("plan B: %d %s", rr.Code, rr.Body.String())
	}
	if !resB.Cached {
		t.Error("second session's identical plan not served from cache")
	}
	var stats2 serverStatsJSON
	do(t, s, "GET", "/v1/stats", "", &stats2)
	if stats2.Evaluations != stats1.Evaluations {
		t.Errorf("cache hit performed new evaluations: %d -> %d", stats1.Evaluations, stats2.Evaluations)
	}
	if stats2.PlansComputed != 1 || stats2.PlansCached != 1 || stats2.CacheHits != 1 {
		t.Errorf("stats after cache hit: %+v", stats2)
	}
	if resA.Alternatives != resB.Alternatives || resA.SkylineSize != resB.SkylineSize {
		t.Errorf("cached result differs: %+v vs %+v", resA.Stats, resB.Stats)
	}

	// The cached result is fully usable: session B can select from it.
	if rr := do(t, s, "POST", "/v1/sessions/"+idB+"/select", `{"index": 0}`, nil); rr.Code != 200 {
		t.Errorf("select from cached result: %d", rr.Code)
	}

	// Different per-request options → different key → cache miss.
	var resC resultJSON
	body := `{"config": {"policy": "greedy", "topK": 2, "depth": 1, "sim": {"runs": 4, "defaultRows": 100}}}`
	if rr := do(t, s, "POST", "/v1/sessions/"+idA+"/plan", body, &resC); rr.Code != 200 {
		t.Fatalf("plan with overrides: %d %s", rr.Code, rr.Body.String())
	}
	if resC.Cached {
		t.Error("different options served from cache")
	}
}

// TestPlanCacheRegistryPartition guards the cache against registry
// cross-contamination: core.PlanKey canonicalizes Options only, so a config
// with custom patterns must not share a cache entry with a default-registry
// plan of the same flow and options — and two different custom-pattern
// declarations must not share one either.
func TestPlanCacheRegistryPartition(t *testing.T) {
	s := newTestServer(t)
	id := createSession(t, s, "")

	if rr := do(t, s, "POST", "/v1/sessions/"+id+"/plan", "", nil); rr.Code != 200 {
		t.Fatalf("baseline plan: %d %s", rr.Code, rr.Body.String())
	}
	withPattern := `{"config": {
		"policy": "greedy", "topK": 1, "depth": 1, "sim": {"runs": 4, "defaultRows": 100},
		"customPatterns": [{"name": "EnableRBAC", "kind": "graph", "improves": "manageability", "params": {"security.rbac": "%s"}}]
	}}`
	var res resultJSON
	if rr := do(t, s, "POST", "/v1/sessions/"+id+"/plan", fmt.Sprintf(withPattern, "1"), &res); rr.Code != 200 {
		t.Fatalf("custom-pattern plan: %d %s", rr.Code, rr.Body.String())
	}
	if res.Cached {
		t.Error("custom-pattern plan served from the default-registry cache entry")
	}
	// Same declaration again: now it may (and should) hit its own entry.
	if rr := do(t, s, "POST", "/v1/sessions/"+id+"/plan", fmt.Sprintf(withPattern, "1"), &res); rr.Code != 200 {
		t.Fatalf("repeat custom-pattern plan: %d", rr.Code)
	}
	if !res.Cached {
		t.Error("identical custom-pattern plan not cached")
	}
	// A different declaration is a different registry: no sharing.
	if rr := do(t, s, "POST", "/v1/sessions/"+id+"/plan", fmt.Sprintf(withPattern, "2"), &res); rr.Code != 200 {
		t.Fatalf("variant custom-pattern plan: %d", rr.Code)
	}
	if res.Cached {
		t.Error("different custom-pattern declarations shared a cache entry")
	}
}

// TestPlanSSE exercises the Server-Sent Events progress stream: progress
// events arrive per alternative, then one result event terminates the
// stream.
func TestPlanSSE(t *testing.T) {
	s := newTestServer(t)
	id := createSession(t, s, "")

	req := httptest.NewRequest("POST", "/v1/sessions/"+id+"/plan", nil)
	req.Header.Set("Accept", "text/event-stream")
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, req)

	if ct := rr.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	events := parseSSE(t, rr.Body.String())
	var progress, results int
	var lastProgress progressJSON
	for _, e := range events {
		switch e.name {
		case "progress":
			progress++
			if err := json.Unmarshal([]byte(e.data), &lastProgress); err != nil {
				t.Fatalf("progress payload: %v", err)
			}
		case "result":
			results++
			var res resultJSON
			if err := json.Unmarshal([]byte(e.data), &res); err != nil {
				t.Fatalf("result payload: %v", err)
			}
			if res.Alternatives == 0 {
				t.Error("SSE result empty")
			}
		default:
			t.Errorf("unexpected event %q", e.name)
		}
	}
	if progress == 0 {
		t.Error("no progress events streamed")
	}
	if results != 1 {
		t.Errorf("got %d result events, want 1", results)
	}
	if lastProgress.Evaluated == 0 {
		t.Errorf("last progress event shows no evaluations: %+v", lastProgress)
	}
	// Cached SSE plan: a fresh session over the same flow+options streams
	// only the result event.
	id2 := createSession(t, s, "")
	req2 := httptest.NewRequest("POST", "/v1/sessions/"+id2+"/plan?stream=sse", nil)
	rr2 := httptest.NewRecorder()
	s.ServeHTTP(rr2, req2)
	events2 := parseSSE(t, rr2.Body.String())
	if len(events2) != 1 {
		t.Fatalf("cached SSE stream: %d events, want 1 (result only)", len(events2))
	}
	if events2[0].name != "result" {
		t.Fatalf("cached SSE stream: first event %q, want result", events2[0].name)
	}
	var cached resultJSON
	if err := json.Unmarshal([]byte(events2[0].data), &cached); err != nil || !cached.Cached {
		t.Errorf("cached SSE result not flagged cached (err %v)", err)
	}
}

type sseEvent struct{ name, data string }

func parseSSE(t testing.TB, body string) []sseEvent {
	t.Helper()
	var out []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.name != "" || cur.data != "" {
				out = append(out, cur)
				cur = sseEvent{}
			}
		}
	}
	return out
}

// TestClientDisconnectCancelsPlan verifies that a dropped client cancels its
// in-flight run through the request context: the plan never completes, is
// not cached, and the session becomes usable again once the pipeline drains.
func TestClientDisconnectCancelsPlan(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	// A deliberately heavy plan (big space, many Monte-Carlo runs) so the
	// disconnect reliably lands mid-run.
	body := `{
		"name": "heavy",
		"flow": {"builtin": "tpcds-sales"},
		"scale": 4000,
		"config": {"policy": "exhaustive", "depth": 2, "maxAlternatives": 3000, "sim": {"runs": 256, "defaultRows": 4000}}
	}`
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sj sessionJSON
	if err := json.NewDecoder(resp.Body).Decode(&sj); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Start the plan as SSE and drop the connection after the first byte.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/sessions/"+sj.ID+"/plan?stream=sse", nil)
	planResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := planResp.Body.Read(buf); err != nil {
		t.Fatalf("reading first SSE byte: %v", err)
	}
	planResp.Body.Close() // client walks away

	// The run must drain and release the session: a cheap follow-up plan
	// eventually succeeds (409 while the cancelled run is still draining).
	cheap := `{"config": {"policy": "greedy", "topK": 1, "depth": 1, "sim": {"runs": 2, "defaultRows": 50}}}`
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Post(ts.URL+"/v1/sessions/"+sj.ID+"/plan", "application/json", strings.NewReader(cheap))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("follow-up plan: %d %s", resp.StatusCode, b)
		}
		if time.Now().After(deadline) {
			t.Fatal("cancelled plan never released the session")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The cancelled heavy plan must not have been counted or cached.
	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats serverStatsJSON
	if err := json.NewDecoder(statsResp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	statsResp.Body.Close()
	if stats.PlansComputed != 1 {
		t.Errorf("plansComputed = %d, want 1 (only the cheap follow-up)", stats.PlansComputed)
	}
}

// TestConcurrentSessionsStress drives many sessions in parallel through the
// full loop; run under -race this is the concurrency acceptance test for the
// store, cache and session serialization.
func TestConcurrentSessionsStress(t *testing.T) {
	s := newTestServer(t)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Half the workers share one plan key (exercising the cache and
			// its singleflight), half use a distinct seed each.
			body := fastPlanBody(fmt.Sprintf("w%d", w))
			if w%2 == 1 {
				body = strings.Replace(body, `"scale": 100`, fmt.Sprintf(`"scale": %d`, 100+w), 1)
			}
			var sj sessionJSON
			rr := do(t, s, "POST", "/v1/sessions", body, &sj)
			if rr.Code != http.StatusCreated {
				t.Errorf("w%d create: %d", w, rr.Code)
				return
			}
			for i := 0; i < 2; i++ {
				rr := do(t, s, "POST", "/v1/sessions/"+sj.ID+"/plan", "", nil)
				if rr.Code != 200 && rr.Code != http.StatusConflict {
					t.Errorf("w%d plan: %d %s", w, rr.Code, rr.Body.String())
					return
				}
				if rr.Code == 200 {
					do(t, s, "POST", "/v1/sessions/"+sj.ID+"/select", `{"index": 0}`, nil)
				}
				do(t, s, "GET", "/v1/sessions/"+sj.ID, "", nil)
				do(t, s, "GET", "/v1/sessions", "", nil)
				do(t, s, "GET", "/v1/stats", "", nil)
			}
		}(w)
	}
	wg.Wait()
	var stats serverStatsJSON
	do(t, s, "GET", "/v1/stats", "", &stats)
	if stats.Sessions != workers {
		t.Errorf("sessions = %d, want %d", stats.Sessions, workers)
	}
	if stats.PlansComputed == 0 {
		t.Error("no plans computed")
	}
}

// TestPlanConflict asserts the per-session serialization: a second plan
// while one is in flight returns 409 instead of queueing or racing.
func TestPlanConflict(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	body := `{
		"flow": {"builtin": "tpcds-sales"},
		"scale": 2000,
		"config": {"policy": "exhaustive", "depth": 2, "maxAlternatives": 2000, "sim": {"runs": 128, "defaultRows": 2000}}
	}`
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sj sessionJSON
	if err := json.NewDecoder(resp.Body).Decode(&sj); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	req, _ := http.NewRequest("POST", ts.URL+"/v1/sessions/"+sj.ID+"/plan?stream=sse", nil)
	planResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer planResp.Body.Close()
	buf := make([]byte, 1)
	if _, err := planResp.Body.Read(buf); err != nil {
		t.Fatal(err)
	}

	// While the heavy plan runs, a second plan and a select must 409.
	resp2, err := http.Post(ts.URL+"/v1/sessions/"+sj.ID+"/plan", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Errorf("concurrent plan: %d, want 409", resp2.StatusCode)
	}
	resp3, err := http.Post(ts.URL+"/v1/sessions/"+sj.ID+"/select", "application/json", bytes.NewReader([]byte(`{"index":0}`)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusConflict {
		t.Errorf("select during plan: %d, want 409", resp3.StatusCode)
	}
	// Deleting a session mid-plan would orphan the run: must 409 too.
	delReq, _ := http.NewRequest("DELETE", ts.URL+"/v1/sessions/"+sj.ID, nil)
	resp4, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp4.Body)
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusConflict {
		t.Errorf("delete during plan: %d, want 409", resp4.StatusCode)
	}
}
