package server

import (
	"fmt"
	"testing"
	"time"

	"poiesis/internal/core"
	"poiesis/internal/sim"
	"poiesis/internal/tpcds"
)

// populatedStore builds a store holding n live sessions. The states share one
// core.Session (get never touches it) and enter via adopt, so setup cost is
// the map inserts, not n snapshots.
func populatedStore(n int, now func() time.Time) (*sessionStore, []string) {
	store := testStore(time.Hour, 0, now)
	g := tpcds.PurchasesFlow()
	sess := core.NewSession(core.NewPlanner(nil, core.Options{}), g, sim.AutoBinding(g, 100, 1))
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("s%06d", i)
		st := &sessionState{id: id, sess: sess, created: now()}
		st.touch(now())
		store.adopt(st)
		ids[i] = id
	}
	return store, ids
}

// BenchmarkSessionStoreGet measures the per-request cost of a session lookup
// as the number of live sessions grows. Before the amortized sweep, every get
// scanned the whole live map under the store mutex (locking each session's
// metadata on the way), so this benchmark scaled O(n) — ~25x from 1k to 50k
// sessions — which is exactly the tail-latency cliff the load harness hits at
// 10k+ live sessions. With the inline expiry check the lookup is O(1).
func BenchmarkSessionStoreGet(b *testing.B) {
	for _, n := range []int{1000, 10000, 50000} {
		b.Run(fmt.Sprintf("sessions=%d", n), func(b *testing.B) {
			now := time.Unix(1000, 0)
			store, ids := populatedStore(n, func() time.Time { return now })
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := store.get(ids[i%n]); !ok {
					b.Fatal("live session missing")
				}
			}
		})
	}
}

// BenchmarkSessionStoreGetParallel is the contended variant: concurrent
// readers all serialize on the store mutex, so any O(n) work inside the
// critical section multiplies across every in-flight request.
func BenchmarkSessionStoreGetParallel(b *testing.B) {
	for _, n := range []int{10000} {
		b.Run(fmt.Sprintf("sessions=%d", n), func(b *testing.B) {
			now := time.Unix(1000, 0)
			store, ids := populatedStore(n, func() time.Time { return now })
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if _, ok := store.get(ids[i%n]); !ok {
						b.Fatal("live session missing")
					}
					i++
				}
			})
		})
	}
}
