package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"
)

// sseWriter emits Server-Sent Events. Event writes come from one goroutine
// at a time (the planner's progress callback during a plan, the handler for
// the terminal event), but keepalive comments arrive from the handler's
// ticker goroutine concurrently with either — the mutex keeps frames whole.
type sseWriter struct {
	mu      sync.Mutex
	w       http.ResponseWriter
	flusher http.Flusher
}

// newSSEWriter prepares the response for an event stream; ok is false when
// the ResponseWriter cannot flush (SSE needs incremental delivery).
func newSSEWriter(w http.ResponseWriter) (*sseWriter, bool) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		return nil, false
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	return &sseWriter{w: w, flusher: flusher}, true
}

// event writes one named event with a JSON payload and flushes it.
func (s *sseWriter) event(name string, payload any) error {
	b, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	// JSON never contains raw newlines, but guard anyway: a newline would
	// break SSE framing.
	data := strings.ReplaceAll(string(b), "\n", "")
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := fmt.Fprintf(s.w, "event: %s\ndata: %s\n\n", name, data); err != nil {
		return err
	}
	s.flusher.Flush()
	return nil
}

// comment writes an SSE comment line (": text"). Clients ignore comments by
// spec, which makes them the idiomatic keepalive: traffic that holds idle
// proxy connections open without polluting the event stream.
func (s *sseWriter) comment(text string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := fmt.Fprintf(s.w, ": %s\n\n", text); err != nil {
		return err
	}
	s.flusher.Flush()
	return nil
}

// keepAlive emits `: keepalive` comments on the stream every SSEKeepAlive
// interval until the returned stop function is called. A slow plan can go
// tens of seconds between progress events (one alternative may simulate for
// a long time, and `every=N` thins events further); intermediary proxies
// routinely drop connections that idle that long, so the stream must carry
// traffic on its own clock. stop waits for the ticker goroutine to exit, so
// no write can land after the handler returns.
func (s *Server) keepAlive(stream *sseWriter) (stop func()) {
	if s.cfg.SSEKeepAlive < 0 {
		return func() {}
	}
	var ch <-chan time.Time
	var cancel func()
	if s.cfg.sseTick != nil {
		ch, cancel = s.cfg.sseTick()
	} else {
		t := time.NewTicker(s.cfg.SSEKeepAlive)
		ch, cancel = t.C, t.Stop
	}
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		for {
			select {
			case <-done:
				return
			case <-ch:
				// A write error means the client is gone; the plan's own
				// context handles cancellation, the ticker just stops.
				if stream.comment("keepalive") != nil {
					return
				}
			}
		}
	}()
	return func() {
		close(done)
		cancel()
		<-exited
	}
}

// wantsSSE reports whether the client asked for an event stream, via either
// the Accept header or the stream=sse query parameter.
func wantsSSE(r *http.Request) bool {
	if r.URL.Query().Get("stream") == "sse" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}
