package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// sseWriter emits Server-Sent Events. Writes happen from at most one
// goroutine at a time by construction: during a plan only the planner's
// progress callback writes (delivered from a single goroutine, see
// core.ProgressEvent), and the handler writes the terminal event only after
// the plan returns.
type sseWriter struct {
	w       http.ResponseWriter
	flusher http.Flusher
}

// newSSEWriter prepares the response for an event stream; ok is false when
// the ResponseWriter cannot flush (SSE needs incremental delivery).
func newSSEWriter(w http.ResponseWriter) (*sseWriter, bool) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		return nil, false
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	return &sseWriter{w: w, flusher: flusher}, true
}

// event writes one named event with a JSON payload and flushes it.
func (s *sseWriter) event(name string, payload any) error {
	b, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	// JSON never contains raw newlines, but guard anyway: a newline would
	// break SSE framing.
	data := strings.ReplaceAll(string(b), "\n", "")
	if _, err := fmt.Fprintf(s.w, "event: %s\ndata: %s\n\n", name, data); err != nil {
		return err
	}
	s.flusher.Flush()
	return nil
}

// wantsSSE reports whether the client asked for an event stream, via either
// the Accept header or the stream=sse query parameter.
func wantsSSE(r *http.Request) bool {
	if r.URL.Query().Get("stream") == "sse" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}
