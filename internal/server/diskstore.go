package server

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// DiskBackend is the crash-safe SessionBackend: each session is one
// versioned JSON snapshot file `<dir>/<id>.json`. Writes go to a temp file
// in the same directory, are fsync'd, and replace the live file with an
// atomic rename (followed by a directory fsync), so a crash at any point
// leaves either the previous snapshot or the new one — never a torn record.
// Partial temp files from interrupted writes are cleaned up on List (i.e. at
// startup restore).
//
// One DiskBackend instance is safe for concurrent use; one *directory*
// assumes a single writing process (see SessionBackend's single-writer
// contract). Per-file operations (Put, Delete) only share-lock, so
// independent sessions fsync in parallel — the store already serializes
// writes to any one session via its opMu, and each session is its own file.
// Directory scans (List, Sweep) take the lock exclusively because they
// remove orphaned temp files, which must not race an in-flight Put.
type DiskBackend struct {
	dir string
	// Logf reports skipped records and cleanup actions during List; nil uses
	// log.Printf. Set it before the backend is shared across goroutines;
	// server.New derives a logging view via WithLogf instead of writing here.
	Logf func(format string, args ...any)

	// removeFile unlinks one path; tests inject failures here. Nil uses
	// os.Remove.
	removeFile func(path string) error

	// mu is behind a pointer so WithLogf views of one backend share the
	// same lock (and struct copies stay legal).
	mu *sync.RWMutex
}

// NewDiskBackend opens (creating if needed) a snapshot directory.
func NewDiskBackend(dir string) (*DiskBackend, error) {
	if dir == "" {
		return nil, errors.New("server: disk backend needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: creating session store dir: %w", err)
	}
	return &DiskBackend{dir: dir, mu: new(sync.RWMutex)}, nil
}

// WithLogf returns a view of the same backend — shared directory, lock and
// state — whose warnings go to logf. The receiver is not modified, so a
// backend shared between two servers never races on Logf.
func (b *DiskBackend) WithLogf(logf func(format string, args ...any)) *DiskBackend {
	nb := *b
	nb.Logf = logf
	return &nb
}

func (b *DiskBackend) Name() string { return "disk" }

// Dir returns the snapshot directory.
func (b *DiskBackend) Dir() string { return b.dir }

func (b *DiskBackend) logf(format string, args ...any) {
	if b.Logf != nil {
		b.Logf(format, args...)
		return
	}
	// No configured sink: render through the shared structured fallback so
	// backend warnings match the server's "msg key=val" line shape.
	defaultLogf(format, args...)
}

const (
	snapshotExt = ".json"
	tempPrefix  = ".tmp-"
)

// validRecordID gates IDs before they become file names: session IDs are
// 32-char hex, but the backend is a public seam, so reject anything that
// could escape the directory or collide with temp files.
func validRecordID(id string) error {
	if id == "" {
		return errors.New("server: empty session record ID")
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '-', c == '_':
		default:
			return fmt.Errorf("server: session record ID %q contains unsafe character %q", id, c)
		}
	}
	return nil
}

func (b *DiskBackend) path(id string) string {
	return filepath.Join(b.dir, id+snapshotExt)
}

func (b *DiskBackend) Put(rec *SessionRecord) error {
	if err := validRecordID(rec.ID); err != nil {
		return err
	}
	blob, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	// The read side of b.mu is a gate, not a critical section: concurrent
	// Puts write distinct files in parallel, while the exclusive side
	// (List/Sweep) needs the directory quiescent. Holding it across the file
	// I/O is the design, so the lock-I/O findings here are waived.
	b.mu.RLock()
	defer b.mu.RUnlock()
	tmp := filepath.Join(b.dir, tempPrefix+rec.ID+snapshotExt)
	if err := writeFileSync(tmp, blob); err != nil {
		//lint:ignore nolockio shared-mode directory gate, see comment on RLock above
		_ = os.Remove(tmp)
		return fmt.Errorf("server: writing session snapshot %s: %w", rec.ID, err)
	}
	//lint:ignore nolockio shared-mode directory gate, see comment on RLock above
	if err := os.Rename(tmp, b.path(rec.ID)); err != nil {
		//lint:ignore nolockio shared-mode directory gate, see comment on RLock above
		_ = os.Remove(tmp)
		return fmt.Errorf("server: committing session snapshot %s: %w", rec.ID, err)
	}
	return syncDir(b.dir)
}

// writeFileSync writes data and fsyncs the file before closing, so the
// following rename publishes fully durable bytes.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a rename within it survives a crash.
// Filesystems that cannot sync directories (some network mounts) degrade to
// best-effort.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, fs.ErrInvalid) {
		return fmt.Errorf("server: syncing session store dir: %w", err)
	}
	return nil
}

func (b *DiskBackend) Get(id string) (*SessionRecord, error) {
	if err := validRecordID(id); err != nil {
		return nil, err
	}
	blob, err := os.ReadFile(b.path(id))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, ErrRecordNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("server: reading session snapshot %s: %w", id, err)
	}
	rec, err := decodeRecord(blob)
	if err != nil {
		return nil, err
	}
	if rec.ID != id {
		return nil, fmt.Errorf("server: session snapshot %s records ID %s", id, rec.ID)
	}
	return rec, nil
}

func (b *DiskBackend) Delete(id string) error {
	if err := validRecordID(id); err != nil {
		return err
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if err := b.remove(b.path(id)); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("server: deleting session snapshot %s: %w", id, err)
	}
	// The unlink must be as durable as Put's rename: without the directory
	// fsync a crash could resurrect a session the client was told is gone.
	return syncDir(b.dir)
}

// List loads every decodable snapshot in the directory. Corrupted or partial
// snapshots — truncated JSON, future format versions, ID/filename mismatches
// — are skipped with a logged warning instead of failing the listing, so one
// bad file cannot prevent a restart from restoring the healthy sessions.
// Orphaned temp files from interrupted writes are removed.
func (b *DiskBackend) List() ([]*SessionRecord, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.listLocked()
}

func (b *DiskBackend) listLocked() ([]*SessionRecord, error) {
	entries, err := os.ReadDir(b.dir)
	if err != nil {
		return nil, fmt.Errorf("server: listing session store: %w", err)
	}
	var out []*SessionRecord
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if strings.HasPrefix(name, tempPrefix) {
			b.logf("server: session store: removing partial snapshot %s", name)
			_ = os.Remove(filepath.Join(b.dir, name))
			continue
		}
		if !strings.HasSuffix(name, snapshotExt) {
			continue
		}
		id := strings.TrimSuffix(name, snapshotExt)
		rec, err := b.Get(id)
		if err != nil {
			b.logf("server: session store: skipping snapshot %s: %v", name, err)
			continue
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

func (b *DiskBackend) remove(path string) error {
	if b.removeFile != nil {
		return b.removeFile(path)
	}
	return os.Remove(path)
}

// Sweep removes every expired snapshot it can, best-effort per file: one
// unremovable entry must not shield later expired records until the next
// restart (the old behavior aborted on the first failed unlink). Failures
// are logged and aggregated into one returned error — the same
// skip-and-report policy List applies to undecodable snapshots — while the
// removed IDs are still reported, so callers learn both what was reclaimed
// and that the directory needs attention.
func (b *DiskBackend) Sweep(cutoff time.Time) ([]string, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	recs, err := b.listLocked()
	if err != nil {
		return nil, err
	}
	var removed []string
	var errs []error
	for _, rec := range recs {
		if !rec.LastUsed.Before(cutoff) {
			continue
		}
		if err := b.remove(b.path(rec.ID)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			b.logf("server: session store: sweep skipping snapshot %s: %v", rec.ID, err)
			errs = append(errs, fmt.Errorf("server: deleting session snapshot %s: %w", rec.ID, err))
			continue
		}
		removed = append(removed, rec.ID)
	}
	if len(removed) > 0 {
		if err := syncDir(b.dir); err != nil {
			errs = append(errs, err)
		}
	}
	return removed, errors.Join(errs...)
}
