package server

import (
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestSSEKeepAlive drives the keepalive ticker by hand: a feeder goroutine
// sends on an unbuffered channel, so every delivered tick is provably
// received by the keepalive goroutine (which then writes its comment) while
// the plan is still running. The stream must carry `: keepalive` comments
// interleaved with — but never corrupting — the event frames.
func TestSSEKeepAlive(t *testing.T) {
	tick := make(chan time.Time)
	stopFeed := make(chan struct{})
	var delivered atomic.Int64
	go func() {
		for {
			select {
			case tick <- time.Time{}:
				delivered.Add(1)
			case <-stopFeed:
				return
			}
		}
	}()
	defer close(stopFeed)

	var tickerStopped atomic.Bool
	s := New(Config{
		sseTick: func() (<-chan time.Time, func()) {
			return tick, func() { tickerStopped.Store(true) }
		},
	})
	id := createSession(t, s, "")

	req := httptest.NewRequest("POST", "/v1/sessions/"+id+"/plan?stream=sse", nil)
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, req)

	body := rr.Body.String()
	if n := strings.Count(body, ": keepalive\n\n"); n == 0 {
		t.Fatalf("no keepalive comments in stream (delivered %d ticks):\n%s", delivered.Load(), body)
	}
	if !tickerStopped.Load() {
		t.Error("keepalive ticker not stopped when the handler finished")
	}

	// Comments must be invisible to event parsing: the progress/result
	// protocol is intact around them.
	events := parseSSE(t, body)
	var results int
	for _, e := range events {
		if e.name == "result" {
			results++
		}
		if e.name != "progress" && e.name != "result" {
			t.Errorf("unexpected event %q", e.name)
		}
	}
	if results != 1 {
		t.Errorf("got %d result events, want 1", results)
	}
}

// TestSSEKeepAliveDisabled: a negative interval turns the keepalive off.
func TestSSEKeepAliveDisabled(t *testing.T) {
	s := New(Config{
		SSEKeepAlive: -1,
		sseTick: func() (<-chan time.Time, func()) {
			t.Error("ticker constructed despite SSEKeepAlive < 0")
			return make(chan time.Time), func() {}
		},
	})
	id := createSession(t, s, "")
	req := httptest.NewRequest("POST", "/v1/sessions/"+id+"/plan?stream=sse", nil)
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, req)
	if strings.Contains(rr.Body.String(), ": keepalive") {
		t.Error("keepalive emitted while disabled")
	}
}
