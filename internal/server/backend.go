package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"poiesis/internal/config"
	"poiesis/internal/core"
)

// SessionRecord is the unit of session persistence: the service-level
// metadata (identity, liveness, plan count, the creation config document the
// planner is rebuilt from) wrapped around the core.SessionSnapshot that
// carries the analyst's actual state. Records are immutable once handed to a
// backend — every write-through builds a fresh record — which is what lets
// backends hand them out without copying.
type SessionRecord struct {
	Version  int                   `json:"version"`
	ID       string                `json:"id"`
	Name     string                `json:"name,omitempty"`
	Created  time.Time             `json:"created"`
	LastUsed time.Time             `json:"lastUsed"`
	Plans    int                   `json:"plans,omitempty"`
	Config   *config.Document      `json:"config,omitempty"`
	Session  *core.SessionSnapshot `json:"session"`
}

// ErrRecordNotFound is returned by SessionBackend.Get for unknown IDs.
var ErrRecordNotFound = errors.New("server: session record not found")

// SessionBackend is the pluggable persistence layer of the session registry.
// The server keeps live sessions in memory for fast reads and writes a fresh
// record through to the backend on every state-changing operation (create,
// plan completion, select, delete); at startup it restores all records the
// backend still holds. Implementations must be safe for concurrent use.
//
// The service assumes a single writer per backend: two server processes
// sharing one disk directory would overwrite each other's records. Sharding
// sessions across replicas by ID (each ID owned by exactly one process)
// preserves the single-writer property.
type SessionBackend interface {
	// Put stores rec under rec.ID, replacing any previous record.
	Put(rec *SessionRecord) error
	// Get returns the record for id, or ErrRecordNotFound.
	Get(id string) (*SessionRecord, error)
	// Delete removes the record for id; deleting an absent id is not an
	// error (eviction and explicit deletion may race benignly).
	Delete(id string) error
	// List returns every stored record, sorted by ID. Backends skip records
	// they cannot decode (reporting them through their own logging) rather
	// than failing the whole listing.
	List() ([]*SessionRecord, error)
	// Sweep removes records last used before cutoff and returns their IDs —
	// the startup path for purging sessions that expired while the service
	// was down.
	Sweep(cutoff time.Time) ([]string, error)
	// Name identifies the backend in stats and logs ("memory", "disk").
	Name() string
}

// memoryBackend is the in-process SessionBackend: the pre-existing in-memory
// session map, now behind the backend interface. Records are stored as the
// pointers Put received — no JSON encoding — because records are immutable
// by contract. The default configuration therefore pays one core snapshot
// (graph + report marshaling, proportional to the result size) per
// state-changing request and no byte copies; that uniform write-through is
// deliberate, keeping the memory and disk paths behaviourally identical and
// making a remote backend a drop-in, at a cost amortized against the plan
// computation that precedes it. Serialization fidelity is covered by the
// disk backend's parameterized suite, which stores real bytes.
type memoryBackend struct {
	mu sync.RWMutex
	m  map[string]*SessionRecord
}

// NewMemoryBackend returns the in-memory SessionBackend (the default).
// Records do not survive the process; use NewDiskBackend for durability.
func NewMemoryBackend() SessionBackend {
	return &memoryBackend{m: map[string]*SessionRecord{}}
}

func (b *memoryBackend) Name() string { return "memory" }

func (b *memoryBackend) Put(rec *SessionRecord) error {
	if rec.ID == "" {
		return errors.New("server: session record without ID")
	}
	b.mu.Lock()
	b.m[rec.ID] = rec
	b.mu.Unlock()
	return nil
}

func (b *memoryBackend) Get(id string) (*SessionRecord, error) {
	b.mu.RLock()
	rec, ok := b.m[id]
	b.mu.RUnlock()
	if !ok {
		return nil, ErrRecordNotFound
	}
	return rec, nil
}

func (b *memoryBackend) Delete(id string) error {
	b.mu.Lock()
	delete(b.m, id)
	b.mu.Unlock()
	return nil
}

func (b *memoryBackend) List() ([]*SessionRecord, error) {
	b.mu.RLock()
	out := make([]*SessionRecord, 0, len(b.m))
	for _, rec := range b.m {
		out = append(out, rec)
	}
	b.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

func (b *memoryBackend) Sweep(cutoff time.Time) ([]string, error) {
	var removed []string
	b.mu.Lock()
	for id, rec := range b.m {
		if rec.LastUsed.Before(cutoff) {
			delete(b.m, id)
			removed = append(removed, id)
		}
	}
	b.mu.Unlock()
	sort.Strings(removed)
	return removed, nil
}

// encodeRecord serializes a record for storage, stamping the current format
// version.
func encodeRecord(rec *SessionRecord) ([]byte, error) {
	if rec.ID == "" {
		return nil, errors.New("server: session record without ID")
	}
	blob, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("server: encoding session record %s: %w", rec.ID, err)
	}
	return blob, nil
}

// decodeRecord parses a stored record, rejecting formats newer than this
// build understands (a downgraded binary must not half-load future records).
func decodeRecord(blob []byte) (*SessionRecord, error) {
	var rec SessionRecord
	if err := json.Unmarshal(blob, &rec); err != nil {
		return nil, fmt.Errorf("server: decoding session record: %w", err)
	}
	if rec.ID == "" {
		return nil, errors.New("server: session record without ID")
	}
	if rec.Version > SessionRecordVersion {
		return nil, fmt.Errorf("server: session record %s has format version %d (this build supports up to %d)",
			rec.ID, rec.Version, SessionRecordVersion)
	}
	return &rec, nil
}

// SessionRecordVersion is the current record format; it wraps (and moves in
// lockstep with) core.SnapshotFormatVersion.
const SessionRecordVersion = 1
