package xlm

import (
	"flag"
	"os"
	"testing"

	"poiesis/internal/tpcds"
)

var regen = flag.Bool("regen", false, "regenerate golden fixtures from the exporters")

// TestRegenGolden rewrites testdata/purchases.xlm from the xLM exporter when
// run with -regen; otherwise it verifies the committed fixture is exactly
// what the exporter produces today, so encoder drift is caught explicitly
// rather than only through decode failures.
func TestRegenGolden(t *testing.T) {
	want, err := Encode(tpcds.PurchasesFlow())
	if err != nil {
		t.Fatal(err)
	}
	if *regen {
		if err := os.WriteFile("testdata/purchases.xlm", want, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	got, err := os.ReadFile("testdata/purchases.xlm")
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/xlm -run TestRegenGolden -regen` to create it)", err)
	}
	if string(got) != string(want) {
		t.Error("testdata/purchases.xlm no longer matches the exporter output; rerun with -regen if the format change is intentional")
	}
}
