package xlm

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"poiesis/internal/etl"
	"poiesis/internal/tpcds"
	"poiesis/internal/tpch"
)

func TestRoundTripPurchases(t *testing.T) {
	roundTrip(t, tpcds.PurchasesFlow())
}

func TestRoundTripSales(t *testing.T) {
	roundTrip(t, tpcds.SalesETL())
}

func TestRoundTripRevenue(t *testing.T) {
	roundTrip(t, tpch.RevenueETL())
}

func roundTrip(t *testing.T, g *etl.Graph) {
	t.Helper()
	b, err := Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Decode(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if g2.Name != g.Name {
		t.Errorf("name %q != %q", g2.Name, g.Name)
	}
	if g2.Len() != g.Len() || g2.EdgeCount() != g.EdgeCount() {
		t.Errorf("structure changed: %d/%d vs %d/%d nodes/edges",
			g2.Len(), g2.EdgeCount(), g.Len(), g.EdgeCount())
	}
	// Full fidelity: canonical fingerprints agree.
	if g.Fingerprint() != g2.Fingerprint() {
		t.Error("round trip changed the canonical fingerprint")
	}
	// Spot-check one node completely.
	for _, n := range g.Nodes() {
		m := g2.Node(n.ID)
		if m == nil {
			t.Fatalf("node %s lost", n.ID)
		}
		if m.Kind != n.Kind || m.Name != n.Name || m.Parallelism != n.Parallelism {
			t.Errorf("node %s metadata changed", n.ID)
		}
		if !m.Out.Equal(n.Out) {
			t.Errorf("node %s schema changed: %v vs %v", n.ID, m.Out, n.Out)
		}
		if m.Cost != n.Cost {
			t.Errorf("node %s cost changed: %+v vs %+v", n.ID, m.Cost, n.Cost)
		}
		for k, v := range n.Params {
			if m.Param(k) != v {
				t.Errorf("node %s param %s changed", n.ID, k)
			}
		}
	}
}

func TestRoundTripGeneratedNodes(t *testing.T) {
	g := tpcds.PurchasesFlow()
	cp := etl.NewNode(g.FreshID("sp"), "savepoint", etl.OpCheckpoint, g.Node("flt_current").Out)
	cp.PatternName = "AddCheckpoint"
	if err := g.InsertOnEdge("flt_current", "split_req", cp); err != nil {
		t.Fatal(err)
	}
	b, err := Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	n := g2.Node(cp.ID)
	if n == nil || !n.Generated || n.PatternName != "AddCheckpoint" {
		t.Error("generated-node provenance lost in round trip")
	}
}

func TestWriteRead(t *testing.T) {
	g := tpcds.PurchasesFlow()
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "<?xml") {
		t.Error("missing XML header")
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Fingerprint() != g.Fingerprint() {
		t.Error("Write/Read round trip broken")
	}
}

func TestGoldenFixture(t *testing.T) {
	// The committed fixture pins the wire format: if the codec drifts, this
	// golden file stops loading or stops matching the in-code builder.
	b, err := os.ReadFile("testdata/purchases.xlm")
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	want := tpcds.PurchasesFlow()
	if g.Fingerprint() != want.Fingerprint() {
		t.Error("golden fixture no longer matches the builder flow")
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string]string{
		"garbage": "not xml at all",
		"no name": `<xlm version="1.0"><design></design></xlm>`,
		"no node id": `<xlm version="1.0"><design name="d">
			<node name="x" type="extract"/></design></xlm>`,
		"bad type": `<xlm version="1.0"><design name="d">
			<node id="a" name="x" type="teleport"/></design></xlm>`,
		"bad edge": `<xlm version="1.0"><design name="d">
			<node id="a" name="x" type="extract"/>
			<edge from="a" to="zz"/></design></xlm>`,
		"invalid flow": `<xlm version="1.0"><design name="d">
			<node id="a" name="x" type="filter"/></design></xlm>`,
	}
	for label, doc := range cases {
		if _, err := Decode([]byte(doc)); err == nil {
			t.Errorf("%s: expected error", label)
		}
	}
}

func TestDecodeMinimalDocument(t *testing.T) {
	doc := `<?xml version="1.0"?>
<xlm version="1.0">
  <design name="mini">
    <node id="in" name="src" type="extract">
      <schema>
        <attribute name="id" type="int" key="true"/>
        <attribute name="v" type="string" nullable="true"/>
      </schema>
      <properties><property key="table" value="t1"/></properties>
    </node>
    <node id="out" name="dw" type="load"/>
    <edge from="in" to="out"/>
  </design>
</xlm>`
	g, err := Decode([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 || g.EdgeCount() != 1 {
		t.Errorf("structure = %d/%d", g.Len(), g.EdgeCount())
	}
	n := g.Node("in")
	if n.Param("table") != "t1" {
		t.Error("property lost")
	}
	a, ok := n.Out.Attr("id")
	if !ok || !a.Key || a.Type != etl.TypeInt {
		t.Errorf("attr = %+v %v", a, ok)
	}
	if v, _ := n.Out.Attr("v"); !v.Nullable {
		t.Error("nullable lost")
	}
	// Default cost from kind when <cost> absent.
	if n.Cost != etl.DefaultCost(etl.OpExtract) {
		t.Errorf("default cost not applied: %+v", n.Cost)
	}
}
