// Package xlm reads and writes ETL flows in an xLM-style XML logical model.
// xLM (Wilkinson, Simitsis, Castellanos, Dayal: "Leveraging business process
// models for ETL design", ER 2010) represents an ETL process as a graph of
// typed operation nodes and transition edges; POIESIS "currently supports
// the loading of xLM and PDI" (§3). This codec covers the subset the Planner
// needs: node identity, operation type, schemata, properties, cost metadata
// and parallelism.
package xlm

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"

	"poiesis/internal/etl"
)

// xmlDoc is the root <xlm> document.
type xmlDoc struct {
	XMLName xml.Name  `xml:"xlm"`
	Version string    `xml:"version,attr"`
	Design  xmlDesign `xml:"design"`
}

type xmlDesign struct {
	Name  string    `xml:"name,attr"`
	Nodes []xmlNode `xml:"node"`
	Edges []xmlEdge `xml:"edge"`
}

type xmlNode struct {
	ID          string        `xml:"id,attr"`
	Name        string        `xml:"name,attr"`
	Type        string        `xml:"type,attr"`
	Parallelism int           `xml:"parallelism,attr,omitempty"`
	Generated   bool          `xml:"generated,attr,omitempty"`
	Pattern     string        `xml:"pattern,attr,omitempty"`
	Schema      []xmlAttr     `xml:"schema>attribute"`
	Properties  []xmlProperty `xml:"properties>property"`
	Cost        *xmlCost      `xml:"cost"`
}

type xmlAttr struct {
	Name     string `xml:"name,attr"`
	Type     string `xml:"type,attr"`
	Nullable bool   `xml:"nullable,attr,omitempty"`
	Key      bool   `xml:"key,attr,omitempty"`
}

type xmlProperty struct {
	Key   string `xml:"key,attr"`
	Value string `xml:"value,attr"`
}

type xmlCost struct {
	Startup     float64 `xml:"startup,attr"`
	PerTuple    float64 `xml:"perTuple,attr"`
	Selectivity float64 `xml:"selectivity,attr"`
	FailureRate float64 `xml:"failureRate,attr"`
	MemPerTuple float64 `xml:"memPerTuple,attr"`
}

// Version is the document version this codec writes.
const Version = "1.0"

// Encode serialises a flow to xLM.
func Encode(g *etl.Graph) ([]byte, error) {
	doc := xmlDoc{Version: Version, Design: xmlDesign{Name: g.Name}}
	for _, n := range g.Nodes() {
		xn := xmlNode{
			ID:          string(n.ID),
			Name:        n.Name,
			Type:        n.Kind.String(),
			Parallelism: n.Parallelism,
			Generated:   n.Generated,
			Pattern:     n.PatternName,
			Cost: &xmlCost{
				Startup:     n.Cost.Startup,
				PerTuple:    n.Cost.PerTuple,
				Selectivity: n.Cost.Selectivity,
				FailureRate: n.Cost.FailureRate,
				MemPerTuple: n.Cost.MemPerTuple,
			},
		}
		for _, a := range n.Out.Attrs {
			xn.Schema = append(xn.Schema, xmlAttr{
				Name: a.Name, Type: a.Type.String(), Nullable: a.Nullable, Key: a.Key,
			})
		}
		keys := make([]string, 0, len(n.Params))
		for k := range n.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			xn.Properties = append(xn.Properties, xmlProperty{Key: k, Value: n.Params[k]})
		}
		doc.Design.Nodes = append(doc.Design.Nodes, xn)
	}
	for _, e := range g.Edges() {
		doc.Design.Edges = append(doc.Design.Edges, xmlEdge{
			From: string(e.From), To: string(e.To),
		})
	}
	out, err := xml.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("xlm: %w", err)
	}
	return append([]byte(xml.Header), out...), nil
}

type xmlEdge struct {
	From string `xml:"from,attr"`
	To   string `xml:"to,attr"`
}

// Write encodes a flow onto w.
func Write(w io.Writer, g *etl.Graph) error {
	b, err := Encode(g)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// Decode parses an xLM document into a flow and validates it.
func Decode(b []byte) (*etl.Graph, error) {
	var doc xmlDoc
	if err := xml.Unmarshal(b, &doc); err != nil {
		return nil, fmt.Errorf("xlm: parsing: %w", err)
	}
	return build(doc)
}

// Read decodes a flow from r.
func Read(r io.Reader) (*etl.Graph, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("xlm: reading: %w", err)
	}
	return Decode(b)
}

func build(doc xmlDoc) (*etl.Graph, error) {
	if doc.Design.Name == "" {
		return nil, fmt.Errorf("xlm: design has no name")
	}
	g := etl.New(doc.Design.Name)
	for _, xn := range doc.Design.Nodes {
		if xn.ID == "" {
			return nil, fmt.Errorf("xlm: node without id (name %q)", xn.Name)
		}
		kind := etl.ParseOpKind(xn.Type)
		if kind == etl.OpUnknown {
			return nil, fmt.Errorf("xlm: node %s has unknown type %q", xn.ID, xn.Type)
		}
		var schema etl.Schema
		for _, a := range xn.Schema {
			schema.Attrs = append(schema.Attrs, etl.Attribute{
				Name:     a.Name,
				Type:     etl.ParseAttrType(a.Type),
				Nullable: a.Nullable,
				Key:      a.Key,
			})
		}
		n := etl.NewNode(etl.NodeID(xn.ID), xn.Name, kind, schema)
		if xn.Parallelism > 0 {
			n.Parallelism = xn.Parallelism
		}
		n.Generated = xn.Generated
		n.PatternName = xn.Pattern
		if xn.Cost != nil {
			n.Cost = etl.Cost{
				Startup:     xn.Cost.Startup,
				PerTuple:    xn.Cost.PerTuple,
				Selectivity: xn.Cost.Selectivity,
				FailureRate: xn.Cost.FailureRate,
				MemPerTuple: xn.Cost.MemPerTuple,
			}
		}
		for _, p := range xn.Properties {
			n.SetParam(p.Key, p.Value)
		}
		if err := g.AddNode(n); err != nil {
			return nil, fmt.Errorf("xlm: %w", err)
		}
	}
	for _, e := range doc.Design.Edges {
		if err := g.AddEdge(etl.NodeID(e.From), etl.NodeID(e.To)); err != nil {
			return nil, fmt.Errorf("xlm: %w", err)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("xlm: invalid flow: %w", err)
	}
	return g, nil
}
