package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"poiesis/internal/measures"
	"poiesis/internal/policy"
	"poiesis/internal/tpcds"
	"poiesis/internal/tpch"
)

// planBoth runs the same options through the streaming pipeline and the
// sequential oracle on the given flow and returns both results.
func planBoth(t *testing.T, flow string, opts Options) (stream, seq *Result) {
	t.Helper()
	var g = tpcds.PurchasesFlow()
	bind := tpcds.Binding(g, 800, 1)
	if flow == "tpch" {
		g = tpch.RevenueETL()
		bind = tpch.Binding(g, 800, 1)
	}
	opts.Streaming = StreamingOn
	stream, err := NewPlanner(nil, opts).Plan(g, bind)
	if err != nil {
		t.Fatal(err)
	}
	opts.Streaming = StreamingOff
	seq, err = NewPlanner(nil, opts).Plan(g, bind)
	if err != nil {
		t.Fatal(err)
	}
	return stream, seq
}

// requireEquivalent asserts the streaming planner reproduced the sequential
// oracle exactly: same stats, same alternatives in the same order with the
// same measure vectors, same skyline.
func requireEquivalent(t *testing.T, stream, seq *Result) {
	t.Helper()
	if stream.Stats != seq.Stats {
		t.Errorf("stats diverge: streaming %+v, sequential %+v", stream.Stats, seq.Stats)
	}
	if len(stream.Alternatives) != len(seq.Alternatives) {
		t.Fatalf("alternative count: streaming %d, sequential %d",
			len(stream.Alternatives), len(seq.Alternatives))
	}
	for i := range seq.Alternatives {
		sa, qa := &stream.Alternatives[i], &seq.Alternatives[i]
		if sa.Label() != qa.Label() {
			t.Fatalf("alternative %d label: streaming %q, sequential %q", i, sa.Label(), qa.Label())
		}
		if sa.Graph.Fingerprint() != qa.Graph.Fingerprint() {
			t.Errorf("alternative %d fingerprint diverges", i)
		}
		sv := sa.Report.Vector(stream.Dims)
		qv := qa.Report.Vector(seq.Dims)
		if !reflect.DeepEqual(sv, qv) {
			t.Errorf("alternative %d vector: streaming %v, sequential %v", i, sv, qv)
		}
	}
	if !reflect.DeepEqual(stream.SkylineIdx, seq.SkylineIdx) {
		t.Errorf("skyline: streaming %v, sequential %v", stream.SkylineIdx, seq.SkylineIdx)
	}
}

func TestStreamingMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		name string
		flow string
		opts Options
	}{
		{"greedy/tpcds", "tpcds", Options{Policy: policy.Greedy{TopK: 2}, Depth: 2, Sim: fastSim()}},
		{"exhaustive/tpcds", "tpcds", Options{Policy: policy.Exhaustive{}, Depth: 2, Sim: fastSim()}},
		{"greedy/tpch", "tpch", Options{Policy: policy.Greedy{TopK: 3}, Depth: 2, Sim: fastSim()}},
		{"random/tpcds", "tpcds", Options{Policy: policy.RandomSample{N: 12, Seed: 5}, Depth: 2, Sim: fastSim()}},
		{"capped", "tpcds", Options{Policy: policy.Exhaustive{}, Depth: 2, MaxAlternatives: 20, Sim: fastSim()}},
		{"nodedup", "tpcds", Options{Policy: policy.Greedy{TopK: 2}, Depth: 2, DisableDedup: true, Sim: fastSim()}},
		{"oneworker", "tpcds", Options{Policy: policy.Greedy{TopK: 2}, Depth: 2, Workers: 1, Sim: fastSim()}},
		{"constrained", "tpcds", Options{
			Policy: policy.Greedy{TopK: 2}, Depth: 2, Sim: fastSim(),
			Constraints: []policy.Constraint{policy.MinScore(measures.Performance, 0.4)},
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			stream, seq := planBoth(t, tc.flow, tc.opts)
			requireEquivalent(t, stream, seq)
		})
	}
}

func TestStreamingDeterministicAcrossRuns(t *testing.T) {
	opts := smallOptions()
	a := plan(t, opts)
	b := plan(t, opts)
	requireEquivalent(t, a, b)
}

func TestPlanContextCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := tpcds.PurchasesFlow()
	for _, mode := range []StreamingMode{StreamingOn, StreamingOff} {
		opts := smallOptions()
		opts.Streaming = mode
		p := NewPlanner(nil, opts)
		res, err := p.PlanContext(ctx, g, tpcds.Binding(g, 800, 1))
		if !errors.Is(err, context.Canceled) {
			t.Errorf("mode %v: err = %v, want context.Canceled", mode, err)
		}
		if res != nil {
			t.Errorf("mode %v: result returned despite cancellation", mode)
		}
	}
}

func TestPlanContextCancelMidRun(t *testing.T) {
	g := tpcds.PurchasesFlow()
	bind := tpcds.Binding(g, 800, 1)
	for _, mode := range []StreamingMode{StreamingOn, StreamingOff} {
		mode := mode
		t.Run(fmt.Sprintf("mode=%d", mode), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			opts := Options{Policy: policy.Exhaustive{}, Depth: 2, Sim: fastSim(), Streaming: mode}
			var once sync.Once
			// Cancel from inside the run: the first progress event (streaming)
			// proves work was in flight when the context died.
			opts.Progress = func(ProgressEvent) { once.Do(cancel) }
			if mode == StreamingOff {
				// The sequential path emits no events; cancel on a timer tuned
				// well below the full run time instead.
				time.AfterFunc(10*time.Millisecond, func() { once.Do(cancel) })
			}
			p := NewPlanner(nil, opts)
			start := time.Now()
			res, err := p.PlanContext(ctx, g, bind)
			if !errors.Is(err, context.Canceled) {
				// A fast machine may legitimately finish before the timer on
				// the sequential path; only the streaming path is strict.
				if mode == StreamingOn || err != nil {
					t.Fatalf("err = %v, res = %v after %v", err, res != nil, time.Since(start))
				}
			}
			if err != nil && res != nil {
				t.Error("both result and error returned")
			}
		})
	}
}

func TestPlanContextDeadline(t *testing.T) {
	g := tpcds.PurchasesFlow()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	opts := Options{Policy: policy.Exhaustive{}, Depth: 3, Sim: fastSim()}
	_, err := NewPlanner(nil, opts).PlanContext(ctx, g, tpcds.Binding(g, 2000, 1))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestProgressEvents(t *testing.T) {
	g := tpcds.PurchasesFlow()
	opts := smallOptions()
	var mu sync.Mutex
	var events []ProgressEvent
	opts.Progress = func(e ProgressEvent) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	}
	res, err := NewPlanner(nil, opts).Plan(g, tpcds.Binding(g, 800, 1))
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	// One event per generated alternative, in generation order.
	want := res.Stats.Generated - res.Stats.Deduped
	if len(events) != want {
		t.Fatalf("got %d events, want %d", len(events), want)
	}
	for i, e := range events {
		if e.Seq != i {
			t.Fatalf("event %d has Seq %d; events out of order", i, e.Seq)
		}
		if e.Label == "" {
			t.Errorf("event %d has empty label", i)
		}
	}
	last := events[len(events)-1]
	if last.Evaluated != res.Stats.Evaluated {
		t.Errorf("final event Evaluated = %d, want %d", last.Evaluated, res.Stats.Evaluated)
	}
	if last.Kept != len(res.Alternatives) {
		t.Errorf("final event Kept = %d, want %d", last.Kept, len(res.Alternatives))
	}
	if last.SkylineSize != len(res.SkylineIdx) {
		t.Errorf("final event SkylineSize = %d, want %d", last.SkylineSize, len(res.SkylineIdx))
	}
}

func TestSessionExploreContext(t *testing.T) {
	g := tpcds.PurchasesFlow()
	p := NewPlanner(nil, smallOptions())
	s := NewSession(p, g, tpcds.Binding(g, 800, 1))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.ExploreContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	// The session survives a cancelled exploration.
	res, err := s.Explore()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SkylineIdx) == 0 {
		t.Fatal("no skyline after recovery")
	}
}

// TestFingerprintSetConcurrentProducers hammers the sharded set from many
// goroutines with overlapping keys; run with -race. Exactly one Add per
// distinct key may win.
func TestFingerprintSetConcurrentProducers(t *testing.T) {
	s := newFingerprintSet()
	const producers = 16
	const keys = 500
	wins := make([]int64, keys)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < keys; k++ {
				fp := fmt.Sprintf("fp-%d", k)
				_ = s.Contains(fp)
				if s.Add(fp) {
					mu.Lock()
					wins[k]++
					mu.Unlock()
				}
				if !s.Contains(fp) {
					t.Error("Contains false after Add")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for k, n := range wins {
		if n != 1 {
			t.Fatalf("key %d added %d times, want exactly 1", k, n)
		}
	}
	if s.Len() != keys {
		t.Fatalf("Len = %d, want %d", s.Len(), keys)
	}
}

func TestFingerprintSetBasics(t *testing.T) {
	s := newFingerprintSet()
	if s.Contains("a") {
		t.Error("empty set contains a")
	}
	if !s.Add("a") {
		t.Error("first Add returned false")
	}
	if s.Add("a") {
		t.Error("second Add returned true")
	}
	if !s.Contains("a") || s.Len() != 1 {
		t.Errorf("Contains/Len wrong after Add")
	}
}

// TestStreamingDedupUnderLoad runs the full streaming planner with many
// workers repeatedly; combined with -race this exercises the apply workers'
// concurrent Contains probes against the committer's Adds.
func TestStreamingDedupUnderLoad(t *testing.T) {
	g := tpcds.PurchasesFlow()
	bind := tpcds.Binding(g, 400, 1)
	opts := Options{Policy: policy.Exhaustive{}, Depth: 2, Workers: 8, Sim: fastSim()}
	var base *Result
	for i := 0; i < 3; i++ {
		res, err := NewPlanner(nil, opts).Plan(g, bind)
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res
			continue
		}
		requireEquivalent(t, res, base)
	}
	if base.Stats.Deduped == 0 {
		t.Error("exhaustive depth-2 run produced no duplicates; dedup untested")
	}
}
