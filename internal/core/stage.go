package core

import (
	"sync/atomic"
	"time"
)

// Planner stage names, as reported in Result.Stages and exported by the
// service's /metrics and per-session trace endpoints.
const (
	StagePatternApplication = "pattern_application"
	StageEvaluation         = "evaluation"
	StageConstraintFilter   = "constraint_filter"
	StageSkylineMerge       = "skyline_merge"
)

// StageTiming is the span one planner stage accumulated over a run: Nanos of
// wall time summed across the workers that executed it, over Count timed
// operations (batches for pattern application, alternatives for the rest).
type StageTiming struct {
	Stage string `json:"stage"`
	Count int64  `json:"count"`
	Nanos int64  `json:"nanos"`
}

// Duration returns the accumulated span.
func (t StageTiming) Duration() time.Duration { return time.Duration(t.Nanos) }

// StageNanos is the compact cumulative view of the four stage spans carried
// on ProgressEvents, so SSE consumers can watch where a run's time is going
// while it streams.
type StageNanos struct {
	PatternApplication int64
	Evaluation         int64
	ConstraintFilter   int64
	SkylineMerge       int64
}

// stage indices into stageClock.
const (
	siApply = iota
	siEval
	siFilter
	siMerge
	siCount
)

var stageNames = [siCount]string{
	StagePatternApplication, StageEvaluation, StageConstraintFilter, StageSkylineMerge,
}

// stageClock accumulates per-stage wall time for one planning run. Writers
// are the pipeline's concurrent workers, hence atomics; the collector reads
// it live for progress events and PlanContext snapshots it into
// Result.Stages at the end.
type stageClock struct {
	nanos  [siCount]atomic.Int64
	counts [siCount]atomic.Int64
}

// observe records one timed operation in stage i, started at start.
func (c *stageClock) observe(i int, start time.Time) {
	c.nanos[i].Add(int64(time.Since(start)))
	c.counts[i].Add(1)
}

// snapshot returns the cumulative stage nanos for progress events.
func (c *stageClock) snapshot() StageNanos {
	return StageNanos{
		PatternApplication: c.nanos[siApply].Load(),
		Evaluation:         c.nanos[siEval].Load(),
		ConstraintFilter:   c.nanos[siFilter].Load(),
		SkylineMerge:       c.nanos[siMerge].Load(),
	}
}

// timings renders the clock as Result.Stages, always all four stages in
// pipeline order so consumers see a stable shape.
func (c *stageClock) timings() []StageTiming {
	out := make([]StageTiming, siCount)
	for i := range out {
		out[i] = StageTiming{
			Stage: stageNames[i],
			Count: c.counts[i].Load(),
			Nanos: c.nanos[i].Load(),
		}
	}
	return out
}
