package core

import "testing"

// TestStageTimings asserts both pipelines report the four stage spans in
// order, with evaluation (the dominant stage) having counted every
// alternative plus the baseline.
func TestStageTimings(t *testing.T) {
	stream, seq := planBoth(t, "tpcds", Options{Depth: 1, Workers: 4, Sim: fastSim()})
	for name, res := range map[string]*Result{"streaming": stream, "sequential": seq} {
		if len(res.Stages) != siCount {
			t.Fatalf("%s: %d stages, want %d", name, len(res.Stages), siCount)
		}
		for i, st := range res.Stages {
			if st.Stage != stageNames[i] {
				t.Errorf("%s: stage[%d] = %q, want %q", name, i, st.Stage, stageNames[i])
			}
			if st.Nanos < 0 || st.Count < 0 {
				t.Errorf("%s: stage %s negative: %+v", name, st.Stage, st)
			}
		}
		evals := res.Stages[siEval]
		wantEvals := int64(res.Stats.Evaluated) + 1 // + baseline
		if evals.Count < wantEvals {
			t.Errorf("%s: evaluation count %d < %d", name, evals.Count, wantEvals)
		}
		if evals.Nanos <= 0 {
			t.Errorf("%s: evaluation span empty: %+v", name, evals)
		}
		apply := res.Stages[siApply]
		if apply.Count == 0 || apply.Nanos <= 0 {
			t.Errorf("%s: pattern application span empty: %+v", name, apply)
		}
	}
}
