// Package core implements the POIESIS Planner: the component that takes an
// initial ETL flow and user-defined configurations, automatically generates
// and applies Flow Component Patterns "in varying positions and combinations
// ... resulting to thousands of alternative ETL flows", estimates quality
// measures for every alternative, and returns the Pareto frontier of the
// design space (Fig. 3).
//
// The Planner separates the three architecture stages:
//
//	Pattern Generation  — enumerate valid (pattern, point) candidates per
//	                      deployment policy,
//	Pattern Application — clone the flow and weave candidates in, breadth
//	                      first over combination depth, deduplicated by
//	                      canonical fingerprint,
//	Measures Estimation — execute + Monte-Carlo sample every alternative on
//	                      a bounded worker pool (substituting the paper's
//	                      background cloud nodes) and score it.
//
// By default the three stages run as one concurrent streaming pipeline
// (Options.Streaming): candidate application feeds a bounded channel of
// freshly woven alternatives, the evaluation pool consumes them as they
// appear — so estimation overlaps generation instead of waiting for the
// complete space — constraint filtering happens in-stream, and the Pareto
// frontier is maintained incrementally (skyline.Incremental) rather than in
// one O(n²) pass at the end. StreamingOff restores the strictly sequential
// stage order for ablations; both paths produce identical results.
//
// PlanContext supports cancellation mid-run, and Options.Progress streams
// one event per processed alternative to the caller.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"poiesis/internal/etl"
	"poiesis/internal/fcp"
	"poiesis/internal/measures"
	"poiesis/internal/obs"
	"poiesis/internal/policy"
	"poiesis/internal/sim"
	"poiesis/internal/skyline"
	"poiesis/internal/trace"
)

// Options configures one planning run.
type Options struct {
	// Palette selects patterns by name from the registry; empty means the
	// whole registry (demo part P2 lets the user pick a subset).
	Palette []string
	// Policy decides which candidate applications are explored per round.
	// Default: Greedy{TopK: 3}.
	Policy policy.Policy
	// Depth is the number of pattern-addition rounds ("this process can be
	// repeated an arbitrary number of times"). Default 2.
	Depth int
	// MaxAlternatives caps the generated space. Default 4096.
	MaxAlternatives int
	// Dims are the skyline dimensions (Fig. 4 axes). Default: performance,
	// data quality, reliability.
	Dims []measures.Characteristic
	// Constraints reject alternatives violating measure bounds.
	Constraints []policy.Constraint
	// Workers sizes the evaluation pool. Default: GOMAXPROCS.
	Workers int
	// Sim configures the execution engine.
	Sim sim.Config
	// DisableDedup turns fingerprint deduplication off (ablation A3).
	DisableDedup bool
	// CustomMeasures extends the estimator with user-defined quality
	// metrics (P3); they appear in every report of the run.
	CustomMeasures []measures.CustomMeasure
	// Streaming selects the execution pipeline. The zero value (StreamingOn)
	// runs the concurrent streaming pipeline; StreamingOff keeps the
	// sequential three-stage path for the A-series ablations. Both produce
	// identical alternative sets, stats and skylines.
	Streaming StreamingMode
	// DeltaEval selects the per-alternative evaluation strategy. The zero
	// value (DeltaOn) shares one sim.EvalCache across the run, so each
	// candidate re-simulates only the dirty cone downstream of its pattern
	// application point; DeltaOff re-executes every flow from its sources
	// (the oracle for the A5 ablation). Both produce identical results.
	DeltaEval DeltaMode
	// Columnar selects the simulation engine's data representation. The zero
	// value (ColumnarOn) executes flows over typed column batches with
	// selection vectors and column-wise hashing; ColumnarOff keeps the
	// row-at-a-time oracle engine (the A8 ablation baseline). Both produce
	// byte-identical results, and both representations share one EvalCache.
	Columnar ColumnarMode
	// StaticPrune selects constraint-achievability pruning. The zero value
	// (PruneOn) statically drops generated flows — and their whole
	// pattern-combination subtrees — that provably violate a Max bound on a
	// monotone structural measure, before any evaluation (see staticPruner
	// for the soundness argument). Alternatives and the skyline are
	// identical either way as long as MaxAlternatives does not cap the run;
	// Stats differ (StaticPruned vs Evaluated+ConstraintRejected), which is
	// why PlanKey keys on the mode. PruneOff is the oracle/ablation path.
	StaticPrune PruneMode
	// Progress, when non-nil, receives one event per alternative as the
	// streaming pipeline finishes processing it, in generation order from a
	// single goroutine. The sequential path does not emit events.
	Progress func(ProgressEvent)
}

func (o Options) withDefaults() Options {
	if o.Policy == nil {
		o.Policy = policy.Greedy{TopK: 3}
	}
	if o.Depth <= 0 {
		o.Depth = 2
	}
	if o.MaxAlternatives <= 0 {
		o.MaxAlternatives = 4096
	}
	if len(o.Dims) == 0 {
		o.Dims = []measures.Characteristic{
			measures.Performance, measures.DataQuality, measures.Reliability,
		}
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Sim.Runs == 0 {
		o.Sim = sim.DefaultConfig()
	}
	return o
}

// Alternative is one generated design with its provenance and estimate.
type Alternative struct {
	// Graph is the rewritten flow.
	Graph *etl.Graph
	// Applications is the deployment history relative to the initial flow.
	Applications []fcp.Application
	// Report holds the estimated measures (nil until evaluated).
	Report *measures.Report
	// Err records an evaluation failure, leaving Report nil.
	Err error
}

// Label renders the application history, e.g.
// "AddCheckpoint@edge:drv->ld3 + FilterNullValues@edge:src->flt".
func (a *Alternative) Label() string {
	if len(a.Applications) == 0 {
		return "initial"
	}
	s := ""
	for i, app := range a.Applications {
		if i > 0 {
			s += " + "
		}
		s += app.String()
	}
	return s
}

// Stats summarises one planning run.
type Stats struct {
	// CandidatesSeen counts every (pattern, point) candidate proposed.
	CandidatesSeen int
	// Generated counts flows produced by applications (before dedup).
	Generated int
	// Deduped counts flows dropped as fingerprint duplicates.
	Deduped int
	// Evaluated counts flows whose measures were estimated.
	Evaluated int
	// ConstraintRejected counts evaluated flows that violated constraints.
	ConstraintRejected int
	// StaticPruned counts flows dropped before evaluation because they — and
	// their whole pattern subtree — provably violate a constraint
	// (Options.StaticPrune).
	StaticPruned int
	// Capped reports whether MaxAlternatives stopped generation early.
	Capped bool
}

// Result is the outcome of one planning run.
type Result struct {
	// Initial is the evaluated initial flow (the Fig. 5 baseline).
	Initial Alternative
	// Alternatives are the evaluated, constraint-satisfying designs.
	Alternatives []Alternative
	// SkylineIdx indexes Alternatives: the Pareto frontier presented to the
	// user (Fig. 4).
	SkylineIdx []int
	// Dims are the characteristics the skyline was computed over.
	Dims []measures.Characteristic
	// Stats describes the run.
	Stats Stats
	// Stages are the planner stage spans of this run (pattern application,
	// evaluation, constraint filter, skyline merge) in pipeline order —
	// wall time summed across the workers that executed each stage. They
	// describe the run that computed this result and are not part of the
	// snapshot wire format: a restored or cache-shipped Result has no
	// Stages.
	Stages []StageTiming
}

// Skyline returns the frontier alternatives in index order.
func (r *Result) Skyline() []*Alternative {
	out := make([]*Alternative, 0, len(r.SkylineIdx))
	for _, i := range r.SkylineIdx {
		out = append(out, &r.Alternatives[i])
	}
	return out
}

// Best returns the skyline alternative maximising the goals' utility; falls
// back to the initial design when the frontier is empty.
func (r *Result) Best(goals policy.Goals) *Alternative {
	best := &r.Initial
	bestU := goals.Utility(r.Initial.Report)
	for _, a := range r.Skyline() {
		if a.Report == nil {
			continue
		}
		if u := goals.Utility(a.Report); u > bestU {
			best, bestU = a, u
		}
	}
	return best
}

// Planner generates and evaluates alternative ETL designs.
type Planner struct {
	reg  *fcp.Registry
	opts Options
}

// NewPlanner builds a planner over a pattern registry. A nil registry uses
// the default palette.
func NewPlanner(reg *fcp.Registry, opts Options) *Planner {
	if reg == nil {
		reg = fcp.DefaultRegistry()
	}
	return &Planner{reg: reg, opts: opts.withDefaults()}
}

// Registry exposes the pattern repository (for palette listing and custom
// pattern registration).
func (p *Planner) Registry() *fcp.Registry { return p.reg }

// Options returns the effective options after defaulting.
func (p *Planner) Options() Options { return p.opts }

// WithProgress installs the per-alternative progress callback after
// construction (the CLI uses it on planners materialised from configuration
// documents). It returns the planner for chaining and must not be called
// concurrently with Plan.
func (p *Planner) WithProgress(fn func(ProgressEvent)) *Planner {
	p.opts.Progress = fn
	return p
}

// ErrInvalidFlow wraps validation failures of the input flow.
var ErrInvalidFlow = errors.New("core: invalid initial flow")

// Plan runs one full generate-apply-estimate cycle on the initial flow.
func (p *Planner) Plan(initial *etl.Graph, bind sim.Binding) (*Result, error) {
	return p.PlanContext(context.Background(), initial, bind)
}

// PlanContext runs one full generate-apply-estimate cycle on the initial
// flow, honouring context cancellation: when ctx is cancelled mid-run, the
// pipeline drains its workers and returns ctx's error instead of a result.
func (p *Planner) PlanContext(ctx context.Context, initial *etl.Graph, bind sim.Binding) (*Result, error) {
	ctx, span := obs.StartSpan(ctx, "planner.plan")
	defer span.End()
	res, err := p.planContext(ctx, span, initial, bind)
	if err != nil {
		span.Fail(err)
	}
	return res, err
}

func (p *Planner) planContext(ctx context.Context, span *obs.Span, initial *etl.Graph, bind sim.Binding) (*Result, error) {
	planStart := time.Now()
	if err := initial.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidFlow, err)
	}
	palette, err := p.reg.Palette(p.opts.Palette...)
	if err != nil {
		return nil, err
	}
	engine := sim.NewEngine(p.opts.Sim)
	if p.opts.Columnar == ColumnarOff {
		engine = sim.NewRowEngine(p.opts.Sim)
	}
	ev := newEvaluator(engine, p.opts.DeltaEval)
	clock := &stageClock{}

	// Baseline evaluation anchors the measure normalisation and Fig. 5
	// relative changes — and, under delta evaluation, seeds the shared cache
	// with the initial flow's cones, the common prefix of every alternative.
	baseStart := time.Now()
	var baseES *sim.ExecStats
	if span != nil {
		baseES = &sim.ExecStats{}
	}
	baseProfile, baseBatch, err := ev.evaluate(initial, bind, baseES)
	clock.observe(siEval, baseStart)
	if err != nil {
		return nil, fmt.Errorf("core: evaluating initial flow: %w", err)
	}
	if span != nil {
		span.Record("planner.baseline", baseStart, time.Since(baseStart),
			obs.Int("nodes", int64(baseES.Nodes)),
			obs.Int("executed", int64(baseES.Executed)),
			obs.Int("cone_hits", int64(baseES.ConeHits)))
	}
	est := measures.NewEstimator(measures.BaselineConfig(initial, baseProfile, baseBatch))
	for _, cm := range p.opts.CustomMeasures {
		est.WithCustomMeasure(cm)
	}
	res := &Result{Dims: p.opts.Dims}
	res.Initial = Alternative{
		Graph:  initial,
		Report: est.Estimate(initial, baseProfile, baseBatch),
	}

	if p.opts.Streaming == StreamingOff {
		err = p.planSequential(ctx, initial, bind, palette, ev, est, res, clock)
	} else {
		err = p.planStream(ctx, initial, bind, palette, ev, est, res, clock)
	}
	if err != nil {
		return nil, err
	}
	res.Stages = clock.timings()
	if span != nil {
		span.SetBool("streaming", p.opts.Streaming == StreamingOn)
		span.SetBool("delta", p.opts.DeltaEval == DeltaOn)
		span.SetBool("columnar", p.opts.Columnar == ColumnarOn)
		span.SetInt("candidates_seen", int64(res.Stats.CandidatesSeen))
		span.SetInt("generated", int64(res.Stats.Generated))
		span.SetInt("deduped", int64(res.Stats.Deduped))
		span.SetInt("static_pruned", int64(res.Stats.StaticPruned))
		span.SetInt("evaluated", int64(res.Stats.Evaluated))
		span.SetInt("constraint_rejected", int64(res.Stats.ConstraintRejected))
		span.SetInt("skyline", int64(len(res.SkylineIdx)))
		// Stage clocks sum wall time across workers, so these spans carry
		// the plan's start time and a summed duration — they are budget
		// bars, not intervals (two stages can "overlap" in the rendering).
		for _, st := range res.Stages {
			if st.Count == 0 {
				continue
			}
			span.Record("stage."+st.Stage, planStart, st.Duration(),
				obs.Int("count", st.Count),
				obs.String("time", "summed-across-workers"))
		}
	}
	return res, nil
}

// evaluator binds an engine to the run's evaluation strategy: under DeltaOn
// it carries the run-scoped sim.EvalCache every evaluation worker shares, so
// alternatives re-simulate only the cones their pattern applications dirtied.
// One evaluator serves exactly one (engine config, binding) pair — the
// cache-sharing contract of sim.EvalCache.
type evaluator struct {
	engine *sim.Engine
	cache  *sim.EvalCache
}

func newEvaluator(engine *sim.Engine, mode DeltaMode) *evaluator {
	ev := &evaluator{engine: engine}
	if mode == DeltaOn {
		ev.cache = sim.NewEvalCache()
	}
	return ev
}

func (ev *evaluator) evaluate(g *etl.Graph, bind sim.Binding, stats *sim.ExecStats) (*sim.Profile, *trace.Batch, error) {
	return ev.engine.EvaluateDeltaStats(g, bind, ev.cache, stats)
}

// recordAlternative files the tracing spans for one evaluated alternative:
// a planner.alternative span annotated with the flow fingerprint and the
// evaluation strategy, and the simulation itself as a sim.evaluate child
// carrying the cone-splice accounting (how much of the flow was served from
// the delta cache versus actually re-simulated). A nil sp is the untraced
// path and costs nothing.
func recordAlternative(sp *obs.Span, a *Alternative, delta bool, es *sim.ExecStats, start time.Time) {
	if sp == nil {
		return
	}
	d := time.Since(start)
	attrs := []obs.Attr{
		obs.String("fingerprint", shortFingerprint(a.Graph)),
		obs.Bool("delta", delta),
	}
	if a.Err != nil {
		attrs = append(attrs, obs.String("error", a.Err.Error()))
	}
	altID := sp.Record("planner.alternative", start, d, attrs...)
	if es == nil {
		es = &sim.ExecStats{}
	}
	sp.RecordChildOf(altID, "sim.evaluate", start, d,
		obs.Int("nodes", int64(es.Nodes)),
		obs.Int("executed", int64(es.Executed)),
		obs.Int("cone_hits", int64(es.ConeHits)))
}

// shortFingerprint truncates a flow fingerprint to a span-attribute-sized
// prefix: enough to correlate alternatives across spans and log lines.
func shortFingerprint(g *etl.Graph) string {
	fp := g.Fingerprint()
	if len(fp) > 16 {
		fp = fp[:16]
	}
	return fp
}

// planSequential runs the three stages strictly in order: full generation,
// then pooled evaluation, then constraint filtering and one skyline pass.
// It is the behavioural oracle for the streaming pipeline.
func (p *Planner) planSequential(ctx context.Context, initial *etl.Graph, bind sim.Binding, palette []fcp.Pattern, ev *evaluator, est *measures.Estimator, res *Result, clock *stageClock) error {
	// Pattern generation + application: breadth-first over rounds.
	applyStart := time.Now()
	alts, stats, err := p.generate(ctx, initial, palette)
	clock.observe(siApply, applyStart)
	if err != nil {
		return err
	}
	res.Stats = stats

	// Measures estimation on the worker pool.
	if err := p.evaluate(ctx, alts, bind, ev, est, &res.Stats, clock); err != nil {
		return err
	}

	// Constraint filtering.
	filterStart := time.Now()
	kept := alts[:0]
	for i := range alts {
		a := alts[i]
		if a.Err != nil || a.Report == nil {
			continue
		}
		if ok, _ := policy.CheckAll(a.Report, p.opts.Constraints); !ok {
			res.Stats.ConstraintRejected++
			continue
		}
		kept = append(kept, a)
	}
	res.Alternatives = kept
	clock.observe(siFilter, filterStart)

	// Skyline over the chosen dimensions.
	mergeStart := time.Now()
	vecs := make([][]float64, len(res.Alternatives))
	for i := range res.Alternatives {
		vecs[i] = res.Alternatives[i].Report.Vector(p.opts.Dims)
	}
	res.SkylineIdx = skyline.Compute(vecs)
	clock.observe(siMerge, mergeStart)
	return nil
}

// generate builds the alternative space: each round applies every proposed
// candidate to every frontier design.
func (p *Planner) generate(ctx context.Context, initial *etl.Graph, palette []fcp.Pattern) ([]Alternative, Stats, error) {
	var stats Stats
	seen := map[string]bool{initial.Fingerprint(): true}
	frontier := []Alternative{{Graph: initial}}
	pruner := newStaticPruner(p.opts)
	var out []Alternative

	for round := 0; round < p.opts.Depth; round++ {
		var next []Alternative
		for _, cur := range frontier {
			if err := ctx.Err(); err != nil {
				return nil, stats, err
			}
			cands := p.opts.Policy.Propose(cur.Graph, palette)
			stats.CandidatesSeen += len(cands)
			for _, c := range cands {
				if len(out) >= p.opts.MaxAlternatives {
					stats.Capped = true
					return out, stats, nil
				}
				clone := cur.Graph.Clone()
				app, err := c.Pattern.Apply(clone, c.Point)
				if err != nil {
					// The candidate was valid at proposal time; application
					// can only fail on programming errors, which tests catch.
					continue
				}
				stats.Generated++
				if !p.opts.DisableDedup {
					fp := clone.Fingerprint()
					if seen[fp] {
						stats.Deduped++
						continue
					}
					seen[fp] = true
				}
				// After dedup, before evaluation: a statically infeasible
				// flow is dropped together with its whole subtree (it joins
				// neither the output nor the next frontier).
				if pruner.prune(clone) {
					stats.StaticPruned++
					continue
				}
				alt := Alternative{
					Graph:        clone,
					Applications: append(append([]fcp.Application(nil), cur.Applications...), app),
				}
				next = append(next, alt)
				out = append(out, alt)
			}
		}
		if len(next) == 0 {
			break
		}
		frontier = next
	}
	return out, stats, nil
}

// evaluate estimates measures for all alternatives on a bounded worker pool
// — the stand-in for the paper's elastic cloud evaluation nodes. Results
// land at their input index, keeping the output deterministic regardless of
// scheduling. On cancellation the remaining jobs are drained without work
// and ctx's error is returned.
func (p *Planner) evaluate(ctx context.Context, alts []Alternative, bind sim.Binding, ev *evaluator, est *measures.Estimator, stats *Stats, clock *stageClock) error {
	jobs := make(chan int)
	var wg sync.WaitGroup
	workers := p.opts.Workers
	if workers > len(alts) && len(alts) > 0 {
		workers = len(alts)
	}
	sp := obs.SpanFrom(ctx)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				if ctx.Err() != nil {
					continue
				}
				a := &alts[idx]
				start := time.Now()
				var es *sim.ExecStats
				if sp != nil {
					es = &sim.ExecStats{}
				}
				profile, batch, err := ev.evaluate(a.Graph, bind, es)
				if err != nil {
					a.Err = err
				} else {
					a.Report = est.Estimate(a.Graph, profile, batch)
				}
				clock.observe(siEval, start)
				recordAlternative(sp, a, ev.cache != nil, es, start)
			}
		}()
	}
	for i := range alts {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for i := range alts {
		if alts[i].Err == nil && alts[i].Report != nil {
			stats.Evaluated++
		}
	}
	return nil
}

// CountApplicationPoints returns, per pattern name, how many valid
// application points exist on the flow. Benchmark S1 uses it to reproduce
// the "complexity ... is factorial to the size of the graph" claim.
func CountApplicationPoints(reg *fcp.Registry, g *etl.Graph, palette ...string) (map[string]int, error) {
	if reg == nil {
		reg = fcp.DefaultRegistry()
	}
	pats, err := reg.Palette(palette...)
	if err != nil {
		return nil, err
	}
	out := make(map[string]int, len(pats))
	for _, pat := range pats {
		out[pat.Name()] = len(fcp.ApplicationPoints(pat, g))
	}
	return out, nil
}

// SortAlternativesByUtility orders alternatives best-first under the goals
// (stable; ties by label).
func SortAlternativesByUtility(alts []Alternative, goals policy.Goals) {
	sort.SliceStable(alts, func(i, j int) bool {
		ui, uj := 0.0, 0.0
		if alts[i].Report != nil {
			ui = goals.Utility(alts[i].Report)
		}
		if alts[j].Report != nil {
			uj = goals.Utility(alts[j].Report)
		}
		if ui != uj {
			return ui > uj
		}
		return alts[i].Label() < alts[j].Label()
	})
}
