package core

import (
	"poiesis/internal/etl"
	"poiesis/internal/measures"
	"poiesis/internal/policy"
)

// PruneMode selects static achievability pruning (Options.StaticPrune).
type PruneMode int

const (
	// PruneOn (the zero value, hence the default) drops generated
	// alternatives that provably violate a constraint before evaluating
	// them, and prunes their entire subtree from the pattern-combination
	// frontier. See staticPruner for the soundness argument.
	PruneOn PruneMode = iota
	// PruneOff evaluates every generated alternative and leaves rejection to
	// the post-evaluation constraint filter — the behavioural oracle the
	// pruning path is tested against, and the ablation baseline.
	PruneOff
)

// staticPruner decides, without simulating, that a generated flow — and
// every flow derivable from it by further pattern applications — will be
// rejected by the constraint filter.
//
// The decision uses the achievability argument of etl.Lint (after
// Chirkova/Doyle/Reutter, arXiv:1703.09141) one level down: the structural
// manageability measures (flow size, longest path, merge elements,
// cyclomatic complexity) are computed by the estimator exactly from the
// graph, and every pattern in the space moves them monotonically — builtin
// patterns insert nodes, edit only node parameters, or swap two
// chain-adjacent single-input/single-output nodes, and custom patterns
// insert one operation; none of those moves shrinks any of the four. So
// once a flow exceeds a Max bound on one of them, every descendant does
// too: the whole subtree is statically infeasible and need never be
// evaluated.
//
// Soundness of the result: a pruned flow would have been evaluated and then
// constraint-rejected, so Result.Alternatives and the skyline are
// byte-identical with pruning on or off. (Only Min bounds cannot prune — a
// too-small value can still grow into range deeper in the tree.) Two
// caveats, both documented on Options.StaticPrune: Stats differ between
// modes (pruned flows are not Generated-for-evaluation, so Evaluated,
// ConstraintRejected, Deduped and StaticPruned shift — which is why PlanKey
// includes the mode), and when MaxAlternatives caps the run the two modes
// may cap at different points of the generation order.
type staticPruner struct {
	// bounds holds only Max bounds on monotone structural manageability
	// measures; everything else is ignored.
	bounds []policy.Bound
}

// newStaticPruner extracts the prunable bounds of the run's constraints.
// Returns nil (prune nothing) when pruning is off or no constraint is
// statically decidable.
func newStaticPruner(opts Options) *staticPruner {
	if opts.StaticPrune == PruneOff {
		return nil
	}
	structural := map[string]bool{}
	for _, m := range etl.StructuralMeasures() {
		structural[m] = true
	}
	var bounds []policy.Bound
	for _, b := range policy.BoundsOf(opts.Constraints) {
		if b.Max != nil && b.Characteristic == measures.Manageability && structural[b.Measure] {
			bounds = append(bounds, b)
		}
	}
	if len(bounds) == 0 {
		return nil
	}
	return &staticPruner{bounds: bounds}
}

// prune reports whether g provably violates one of the prunable bounds.
// A nil pruner prunes nothing.
func (sp *staticPruner) prune(g *etl.Graph) bool {
	if sp == nil {
		return false
	}
	for _, b := range sp.bounds {
		if v, ok := g.StructuralValue(b.Measure); ok && v > *b.Max {
			return true
		}
	}
	return false
}

// LintBounds converts the options' declared constraint bounds into the
// string-typed form etl.Lint consumes, so callers (the server's session
// create, the CLI) can statically validate a flow/constraint pair with the
// exact bounds the planner will enforce.
func (o Options) LintBounds() []etl.QualityBound {
	var out []etl.QualityBound
	for _, b := range policy.BoundsOf(o.Constraints) {
		out = append(out, etl.QualityBound{
			Characteristic: string(b.Characteristic),
			Measure:        b.Measure,
			Min:            b.Min,
			Max:            b.Max,
			Label:          b.Label,
		})
	}
	return out
}
