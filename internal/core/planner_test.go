package core

import (
	"strings"
	"testing"

	"poiesis/internal/etl"
	"poiesis/internal/fcp"
	"poiesis/internal/measures"
	"poiesis/internal/policy"
	"poiesis/internal/sim"
	"poiesis/internal/skyline"
	"poiesis/internal/tpcds"
	"poiesis/internal/trace"
)

func fastSim() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.DefaultRows = 400
	cfg.Runs = 24
	return cfg
}

func smallOptions() Options {
	return Options{
		Policy: policy.Greedy{TopK: 2},
		Depth:  2,
		Sim:    fastSim(),
	}
}

func plan(t testing.TB, opts Options) *Result {
	t.Helper()
	g := tpcds.PurchasesFlow()
	p := NewPlanner(nil, opts)
	res, err := p.Plan(g, tpcds.Binding(g, 800, 1))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPlanProducesAlternatives(t *testing.T) {
	res := plan(t, smallOptions())
	if res.Initial.Report == nil {
		t.Fatal("initial flow not evaluated")
	}
	if len(res.Alternatives) == 0 {
		t.Fatal("no alternatives generated")
	}
	if len(res.SkylineIdx) == 0 {
		t.Fatal("empty skyline")
	}
	if len(res.SkylineIdx) > len(res.Alternatives) {
		t.Error("skyline bigger than space")
	}
	for _, a := range res.Alternatives {
		if a.Report == nil {
			t.Error("unevaluated alternative in result")
		}
		if len(a.Applications) == 0 || len(a.Applications) > 2 {
			t.Errorf("application history length %d with depth 2", len(a.Applications))
		}
		if err := a.Graph.Validate(); err != nil {
			t.Errorf("alternative %s invalid: %v", a.Label(), err)
		}
	}
	if res.Stats.Evaluated != len(res.Alternatives)+res.Stats.ConstraintRejected {
		t.Errorf("stats inconsistent: %+v vs %d alternatives",
			res.Stats, len(res.Alternatives))
	}
}

func TestPlanDeterministic(t *testing.T) {
	a := plan(t, smallOptions())
	b := plan(t, smallOptions())
	if len(a.Alternatives) != len(b.Alternatives) {
		t.Fatalf("space sizes differ: %d vs %d", len(a.Alternatives), len(b.Alternatives))
	}
	for i := range a.Alternatives {
		if a.Alternatives[i].Label() != b.Alternatives[i].Label() {
			t.Fatal("alternative order not deterministic")
		}
		ra, rb := a.Alternatives[i].Report, b.Alternatives[i].Report
		for _, c := range measures.AllCharacteristics() {
			if ra.Score(c) != rb.Score(c) {
				t.Fatalf("scores differ for %s on %s", a.Alternatives[i].Label(), c)
			}
		}
	}
	if len(a.SkylineIdx) != len(b.SkylineIdx) {
		t.Fatal("skylines differ")
	}
}

func TestPlanSkylineIsParetoFrontier(t *testing.T) {
	res := plan(t, smallOptions())
	vecs := make([][]float64, len(res.Alternatives))
	for i, a := range res.Alternatives {
		vecs[i] = a.Report.Vector(res.Dims)
	}
	in := map[int]bool{}
	for _, i := range res.SkylineIdx {
		in[i] = true
	}
	// "for one design ETL1, if there exists at least one alternative design
	// ETL2 offering the same or better performance and data quality, and at
	// the same time better reliability, then ETL1 will not be presented".
	for _, i := range res.SkylineIdx {
		for j := range vecs {
			if i != j && skyline.Dominates(vecs[j], vecs[i]) {
				t.Errorf("skyline member %d dominated by %d", i, j)
			}
		}
	}
	for i := range vecs {
		if in[i] {
			continue
		}
		dominated := false
		for _, j := range res.SkylineIdx {
			if skyline.Dominates(vecs[j], vecs[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			t.Errorf("non-skyline member %d not dominated", i)
		}
	}
}

func TestPlanDepthGrowsSpace(t *testing.T) {
	o1 := smallOptions()
	o1.Depth = 1
	o2 := smallOptions()
	o2.Depth = 2
	r1, r2 := plan(t, o1), plan(t, o2)
	if len(r2.Alternatives) <= len(r1.Alternatives) {
		t.Errorf("depth 2 (%d) not larger than depth 1 (%d)",
			len(r2.Alternatives), len(r1.Alternatives))
	}
	for _, a := range r1.Alternatives {
		if len(a.Applications) != 1 {
			t.Error("depth 1 should apply exactly one pattern")
		}
	}
}

func TestPlanMaxAlternativesCap(t *testing.T) {
	o := smallOptions()
	o.MaxAlternatives = 3
	o.Policy = policy.Exhaustive{}
	res := plan(t, o)
	if len(res.Alternatives) > 3 {
		t.Errorf("cap ignored: %d alternatives", len(res.Alternatives))
	}
	if !res.Stats.Capped {
		t.Error("capped flag not set")
	}
}

func TestPlanDedup(t *testing.T) {
	o := smallOptions()
	o.Policy = policy.Exhaustive{}
	o.Depth = 2
	res := plan(t, o)
	if res.Stats.Deduped == 0 {
		t.Error("depth-2 exhaustive space should contain duplicate designs (A@e1+B@e2 == B@e2+A@e1)")
	}
	// Fingerprints of surviving alternatives are unique.
	seen := map[string]bool{}
	for _, a := range res.Alternatives {
		fp := a.Report.Fingerprint
		if seen[fp] {
			t.Errorf("duplicate design in result: %s", a.Label())
		}
		seen[fp] = true
	}

	o.DisableDedup = true
	res2 := plan(t, o)
	if res2.Stats.Deduped != 0 {
		t.Error("dedup disabled but still counted")
	}
	if len(res2.Alternatives) <= len(res.Alternatives) {
		t.Error("disabling dedup should enlarge the raw space")
	}
}

func TestPlanPaletteSubset(t *testing.T) {
	o := smallOptions()
	o.Palette = []string{fcp.NameAddCheckpoint}
	res := plan(t, o)
	for _, a := range res.Alternatives {
		for _, app := range a.Applications {
			if app.Pattern != fcp.NameAddCheckpoint {
				t.Errorf("foreign pattern %s with restricted palette", app.Pattern)
			}
		}
	}
	p := NewPlanner(nil, Options{Palette: []string{"nope"}, Sim: fastSim()})
	if _, err := p.Plan(tpcds.PurchasesFlow(), nil); err == nil {
		t.Error("unknown palette name should fail")
	}
}

func TestPlanConstraints(t *testing.T) {
	o := smallOptions()
	// Demand data quality score no worse than the initial flow's; the
	// crosscheck/cleaning patterns pass, pure perf rewrites that leave
	// defects untouched still pass, but nothing should violate score>=0.
	o.Constraints = []policy.Constraint{
		policy.MinScore(measures.DataQuality, 0.99),
	}
	res := plan(t, o)
	if res.Stats.ConstraintRejected == 0 {
		t.Error("a 0.99 data-quality bar should reject some designs")
	}
	for _, a := range res.Alternatives {
		if a.Report.Score(measures.DataQuality) < 0.99 {
			t.Error("constraint-violating design survived")
		}
	}
}

func TestPlanInvalidFlow(t *testing.T) {
	g := etl.New("broken")
	g.MustAddNode(etl.NewNode("only", "x", etl.OpFilter, etl.Schema{}))
	p := NewPlanner(nil, smallOptions())
	if _, err := p.Plan(g, nil); err == nil {
		t.Error("invalid flow should fail")
	}
}

func TestAlternativeLabels(t *testing.T) {
	res := plan(t, smallOptions())
	if res.Initial.Label() != "initial" {
		t.Errorf("initial label = %q", res.Initial.Label())
	}
	for _, a := range res.Alternatives {
		if a.Label() == "" || a.Label() == "initial" {
			t.Errorf("bad label %q", a.Label())
		}
		if len(a.Applications) == 2 && !strings.Contains(a.Label(), " + ") {
			t.Errorf("two-application label = %q", a.Label())
		}
	}
}

func TestBestByGoals(t *testing.T) {
	res := plan(t, smallOptions())
	perfGoals := policy.NewGoals(map[measures.Characteristic]float64{
		measures.Performance: 1,
	})
	best := res.Best(perfGoals)
	if best == nil || best.Report == nil {
		t.Fatal("no best alternative")
	}
	// Best must be at least as good as the initial design on utility.
	if perfGoals.Utility(best.Report) < perfGoals.Utility(res.Initial.Report) {
		t.Error("best has lower utility than baseline")
	}
	// And no skyline member may beat it.
	for _, a := range res.Skyline() {
		if perfGoals.Utility(a.Report) > perfGoals.Utility(best.Report) {
			t.Error("Best missed a better skyline member")
		}
	}
}

func TestWorkerCountInvariance(t *testing.T) {
	o := smallOptions()
	o.Workers = 1
	seq := plan(t, o)
	o.Workers = 8
	par := plan(t, o)
	if len(seq.Alternatives) != len(par.Alternatives) {
		t.Fatal("worker count changed the space")
	}
	for i := range seq.Alternatives {
		a, b := seq.Alternatives[i], par.Alternatives[i]
		if a.Label() != b.Label() {
			t.Fatal("worker count changed ordering")
		}
		if a.Report.Score(measures.Performance) != b.Report.Score(measures.Performance) {
			t.Fatal("worker count changed scores")
		}
	}
}

func TestCountApplicationPoints(t *testing.T) {
	g := tpcds.PurchasesFlow()
	counts, err := CountApplicationPoints(nil, g)
	if err != nil {
		t.Fatal(err)
	}
	if counts[fcp.NameAddCheckpoint] == 0 {
		t.Error("no checkpoint points on the purchases flow")
	}
	if counts[fcp.NameParallelizeTask] != 1 {
		t.Errorf("parallelize points = %d, want 1 (the heavy derive)", counts[fcp.NameParallelizeTask])
	}
	if _, err := CountApplicationPoints(nil, g, "bogus"); err == nil {
		t.Error("unknown pattern should fail")
	}
}

func TestSortAlternativesByUtility(t *testing.T) {
	res := plan(t, smallOptions())
	goals := policy.NewGoals(map[measures.Characteristic]float64{
		measures.Reliability: 1,
	})
	alts := append([]Alternative(nil), res.Alternatives...)
	SortAlternativesByUtility(alts, goals)
	for i := 0; i+1 < len(alts); i++ {
		if goals.Utility(alts[i].Report) < goals.Utility(alts[i+1].Report) {
			t.Fatal("not sorted by utility")
		}
	}
}

func TestPlanWithCustomMeasures(t *testing.T) {
	o := smallOptions()
	o.CustomMeasures = []measures.CustomMeasure{{
		Characteristic: measures.Manageability,
		Name:           "generated_fraction",
		Unit:           "ratio",
		Compute: func(g *etl.Graph, _ *sim.Profile, _ *trace.Batch) float64 {
			if g.Len() == 0 {
				return 0
			}
			return float64(g.GeneratedCount()) / float64(g.Len())
		},
	}}
	res := plan(t, o)
	if _, ok := res.Initial.Report.MeasureValue(measures.Manageability, "generated_fraction"); !ok {
		t.Error("custom measure missing from baseline report")
	}
	for _, a := range res.Alternatives {
		v, ok := a.Report.MeasureValue(measures.Manageability, "generated_fraction")
		if !ok {
			t.Fatal("custom measure missing from alternative report")
		}
		// Graph-wide patterns only set parameters; structural patterns must
		// register generated nodes in the custom metric.
		structural := false
		for _, app := range a.Applications {
			if app.Point.Kind != fcp.GraphPoint {
				structural = true
			}
		}
		if structural && v <= 0 {
			t.Errorf("alternative %s should have generated nodes, fraction %f", a.Label(), v)
		}
	}
}

func TestSessionIterativeLoop(t *testing.T) {
	g := tpcds.PurchasesFlow()
	p := NewPlanner(nil, smallOptions())
	s := NewSession(p, g, tpcds.Binding(g, 800, 1))
	if s.Current() != g {
		t.Fatal("session current != initial")
	}
	if _, err := s.Select(0); err == nil {
		t.Error("Select before Explore should fail")
	}
	res, err := s.Explore()
	if err != nil {
		t.Fatal(err)
	}
	if s.LastResult() != res {
		t.Error("LastResult mismatch")
	}
	if _, err := s.Select(len(res.SkylineIdx)); err == nil {
		t.Error("out-of-range selection should fail")
	}
	alt, err := s.Select(0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Current() != alt.Graph {
		t.Error("selection did not become current design")
	}
	hist := s.History()
	if len(hist) != 1 || hist[0].Iteration != 1 || hist[0].Label == "" {
		t.Errorf("history = %+v", hist)
	}
	// Second iteration starts from the selected design.
	res2, err := s.Explore()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Initial.Graph != alt.Graph {
		t.Error("second iteration did not start from selection")
	}
	// Deeper designs now may carry prior generated nodes.
	if alt.Graph.GeneratedCount() == 0 {
		t.Error("selected design should contain generated nodes")
	}
}
