package core

import (
	"fmt"
	"reflect"
	"testing"

	"poiesis/internal/fcp"
	"poiesis/internal/policy"
	"poiesis/internal/sim"
	"poiesis/internal/workloads"
)

// TestColumnarEquivalenceMatrix is the acceptance oracle for the columnar
// engine: over every builtin workload × every registry pattern × depths 1–2,
// planning with the columnar engine and with the row oracle must produce
// identical Results — same stats, same alternatives with byte-identical
// measure reports, same skyline.
func TestColumnarEquivalenceMatrix(t *testing.T) {
	patterns := fcp.DefaultRegistry().Names()
	for _, wl := range workloads.Names() {
		for _, pat := range patterns {
			for depth := 1; depth <= 2; depth++ {
				wl, pat, depth := wl, pat, depth
				t.Run(fmt.Sprintf("%s/%s/depth=%d", wl, pat, depth), func(t *testing.T) {
					t.Parallel()
					flow, ok := workloads.Get(wl)
					if !ok {
						t.Fatalf("unknown workload %s", wl)
					}
					bind := sim.AutoBinding(flow, 80, 1)
					run := func(mode ColumnarMode) *Result {
						planner := NewPlanner(nil, Options{
							Palette:         []string{pat},
							Policy:          policy.Exhaustive{},
							Depth:           depth,
							MaxAlternatives: 48,
							Sim:             deltaMatrixSim(),
							Streaming:       StreamingOff,
							Columnar:        mode,
						})
						res, err := planner.Plan(flow, bind)
						if err != nil {
							t.Fatal(err)
						}
						return res
					}
					on, off := run(ColumnarOn), run(ColumnarOff)
					if !reflect.DeepEqual(signatureOf(on), signatureOf(off)) {
						t.Errorf("ColumnarOn and ColumnarOff disagree:\non:  %+v\noff: %+v",
							signatureOf(on), signatureOf(off))
					}
				})
			}
		}
	}
}

// TestColumnarEquivalenceStreaming closes the 2x2x2: the production default
// (streaming, delta evaluation, columnar engine) equals the sequential full
// row-engine evaluation (the triple oracle) on a multi-pattern space.
func TestColumnarEquivalenceStreaming(t *testing.T) {
	flow, _ := workloads.Get("tpcds-purchases")
	bind := sim.AutoBinding(flow, 120, 1)
	run := func(s StreamingMode, d DeltaMode, c ColumnarMode) *Result {
		planner := NewPlanner(nil, Options{
			Policy:    policy.Exhaustive{},
			Depth:     2,
			Sim:       deltaMatrixSim(),
			Streaming: s,
			DeltaEval: d,
			Columnar:  c,
		})
		res, err := planner.Plan(flow, bind)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := signatureOf(run(StreamingOff, DeltaOff, ColumnarOff))
	for _, c := range []struct {
		name string
		s    StreamingMode
		d    DeltaMode
		c    ColumnarMode
	}{
		{"stream+delta+columnar", StreamingOn, DeltaOn, ColumnarOn},
		{"stream+full+columnar", StreamingOn, DeltaOff, ColumnarOn},
		{"sequential+delta+columnar", StreamingOff, DeltaOn, ColumnarOn},
		{"stream+delta+row", StreamingOn, DeltaOn, ColumnarOff},
	} {
		if got := signatureOf(run(c.s, c.d, c.c)); !reflect.DeepEqual(got, want) {
			t.Errorf("%s differs from sequential full row-engine evaluation", c.name)
		}
	}
}

// TestColumnarSharedCacheRace drives the default streaming pipeline — whose
// evaluation workers share one sim.EvalCache, now holding columnar cone
// records — with more workers than cores repeatedly; the CI -race run of this
// package is the actual assertion.
func TestColumnarSharedCacheRace(t *testing.T) {
	flow, _ := workloads.Get("tpch-revenue")
	bind := sim.AutoBinding(flow, 60, 1)
	for rep := 0; rep < 3; rep++ {
		planner := NewPlanner(nil, Options{
			Policy:    policy.Exhaustive{},
			Depth:     2,
			Workers:   16,
			Sim:       deltaMatrixSim(),
			DeltaEval: DeltaOn,
			Columnar:  ColumnarOn,
		})
		if _, err := planner.Plan(flow, bind); err != nil {
			t.Fatal(err)
		}
	}
}
